/**
 * @file
 * Unit tests for the {start, stop, step} range mask (paper §III-B).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "uarch/range.hpp"

using namespace pypim;

TEST(Range, CountSingle)
{
    EXPECT_EQ(Range::single(5).count(), 1u);
    EXPECT_EQ(Range(0, 0, 1).count(), 1u);
}

TEST(Range, CountStrided)
{
    EXPECT_EQ(Range(0, 30, 2).count(), 16u);
    EXPECT_EQ(Range(3, 3 + 7 * 5, 5).count(), 8u);
    EXPECT_EQ(Range::all(1024).count(), 1024u);
}

TEST(Range, Contains)
{
    const Range r(4, 20, 4);
    EXPECT_TRUE(r.contains(4));
    EXPECT_TRUE(r.contains(12));
    EXPECT_TRUE(r.contains(20));
    EXPECT_FALSE(r.contains(5));
    EXPECT_FALSE(r.contains(0));
    EXPECT_FALSE(r.contains(24));
}

TEST(Range, At)
{
    const Range r(10, 40, 10);
    EXPECT_EQ(r.at(0), 10u);
    EXPECT_EQ(r.at(3), 40u);
}

TEST(Range, ForEachVisitsAllAscending)
{
    const Range r(1, 13, 3);
    std::vector<uint32_t> seen;
    r.forEach([&](uint32_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, (std::vector<uint32_t>{1, 4, 7, 10, 13}));
}

TEST(Range, ValidateRejectsBadRanges)
{
    EXPECT_THROW(Range(0, 10, 0).validate(16, "t"), Error);
    EXPECT_THROW(Range(5, 4, 1).validate(16, "t"), Error);
    EXPECT_THROW(Range(0, 16, 1).validate(16, "t"), Error);
    EXPECT_THROW(Range(0, 10, 3).validate(16, "t"), Error);  // 3 !| 10
    EXPECT_NO_THROW(Range(0, 15, 3).validate(16, "t"));
}

TEST(Range, ExpandMatchesContains)
{
    const Range r(2, 62, 4);
    const auto words = r.expand(70);
    ASSERT_EQ(words.size(), 2u);
    for (uint32_t i = 0; i < 70; ++i) {
        const bool bit = (words[i / 64] >> (i % 64)) & 1;
        EXPECT_EQ(bit, r.contains(i)) << "bit " << i;
    }
}

TEST(Range, ExpandPartialWord)
{
    const auto words = Range::all(10).expand(10);
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0], 0x3FFull);
}

TEST(Range, Equality)
{
    EXPECT_EQ(Range(1, 5, 2), Range(1, 5, 2));
    EXPECT_NE(Range(1, 5, 2), Range(1, 5, 1));
}
