/**
 * @file
 * Gate-level IEEE-754 float32 arithmetic verified bit-exactly against
 * host SSE floats (round-to-nearest-even): randomised sweeps over
 * normal values, fully random bit patterns (covering subnormals,
 * infinities and NaNs), and directed edge cases. NaN results compare
 * as "is NaN" (payloads are canonicalised by the gate FPU).
 */
#include <gtest/gtest.h>

#include <cfenv>

#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::bitsFloat;
using pypim::test::DriverFixture;
using pypim::test::floatBits;
using pypim::test::floatBitsMatch;

namespace
{

class FloatArith : public DriverFixture
{
  protected:
    void
    checkBinary(ROp op, float (*host)(float, float),
                const std::vector<uint32_t> &a,
                const std::vector<uint32_t> &b)
    {
        loadReg(0, a);
        loadReg(1, b);
        run(op, DType::Float32, 2, 0, 1);
        const auto got = readReg(2);
        for (uint32_t i = 0; i < threads(); ++i) {
            const float fa = bitsFloat(a[i]);
            const float fb = bitsFloat(b[i]);
            ASSERT_TRUE(floatBitsMatch(host(fa, fb), got[i]))
                << ropName(op) << "(" << fa << " [0x" << std::hex << a[i]
                << "], " << fb << " [0x" << b[i] << "]) thread "
                << std::dec << i;
        }
    }

    std::vector<uint32_t>
    normals(float lo, float hi, uint64_t seed)
    {
        Rng r(seed);
        std::vector<uint32_t> v(threads());
        for (auto &x : v)
            x = floatBits(r.floatIn(lo, hi));
        return v;
    }

    std::vector<uint32_t>
    rawPatterns(uint64_t seed)
    {
        Rng r(seed);
        std::vector<uint32_t> v(threads());
        for (auto &x : v)
            x = r.word();
        return v;
    }

    std::vector<uint32_t>
    edgePatterns(uint64_t salt)
    {
        static const uint32_t edges[] = {
            0x00000000u, 0x80000000u,  // +-0
            0x7F800000u, 0xFF800000u,  // +-inf
            0x7FC00000u, 0xFFC00001u,  // NaNs
            0x00000001u, 0x80000001u,  // smallest subnormals
            0x007FFFFFu, 0x807FFFFFu,  // largest subnormals
            0x00800000u, 0x80800000u,  // smallest normals
            0x7F7FFFFFu, 0xFF7FFFFFu,  // largest finite
            0x3F800000u, 0xBF800000u,  // +-1
            0x3F800001u, 0x34000000u,  // 1+ulp, 2^-23
            0x33FFFFFFu, 0x4B800000u,  // just below 2^-23, 2^24
        };
        std::vector<uint32_t> v(threads());
        for (uint32_t i = 0; i < threads(); ++i) {
            v[i] = edges[(i + salt * 7) % std::size(edges)];
        }
        return v;
    }
};

float hostAdd(float a, float b) { return a + b; }
float hostSub(float a, float b) { return a - b; }
float hostMul(float a, float b) { return a * b; }
float hostDiv(float a, float b) { return a / b; }

} // namespace

TEST_F(FloatArith, AddNormals)
{
    checkBinary(ROp::Add, hostAdd, normals(-1e6f, 1e6f, 1),
                normals(-1e6f, 1e6f, 2));
}

TEST_F(FloatArith, AddMixedMagnitudes)
{
    // Exercise long alignment shifts: tiny + huge.
    std::vector<uint32_t> a(threads()), b(threads());
    Rng r(3);
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = floatBits(r.floatIn(-1e30f, 1e30f));
        b[i] = floatBits(r.floatIn(-1e-30f, 1e-30f));
        if (i % 2)
            std::swap(a[i], b[i]);
    }
    checkBinary(ROp::Add, hostAdd, a, b);
}

TEST_F(FloatArith, AddCancellation)
{
    // Nearby values with opposite signs: deep normalisation shifts.
    std::vector<uint32_t> a(threads()), b(threads());
    Rng r(4);
    for (uint32_t i = 0; i < threads(); ++i) {
        const float x = r.floatIn(1.0f, 2.0f);
        a[i] = floatBits(x);
        const uint32_t nudged = floatBits(x) + (r.word() % 5);
        b[i] = floatBits(-bitsFloat(nudged));
    }
    checkBinary(ROp::Add, hostAdd, a, b);
}

TEST_F(FloatArith, AddRawPatterns)
{
    checkBinary(ROp::Add, hostAdd, rawPatterns(5), rawPatterns(6));
}

TEST_F(FloatArith, AddEdgeCombinations)
{
    for (uint64_t salt = 0; salt < 8; ++salt)
        checkBinary(ROp::Add, hostAdd, edgePatterns(salt),
                    edgePatterns(salt + 3));
}

TEST_F(FloatArith, SubNormalsAndRaw)
{
    checkBinary(ROp::Sub, hostSub, normals(-1e8f, 1e8f, 7),
                normals(-1e8f, 1e8f, 8));
    checkBinary(ROp::Sub, hostSub, rawPatterns(9), rawPatterns(10));
}

TEST_F(FloatArith, SubEdgeCombinations)
{
    for (uint64_t salt = 0; salt < 8; ++salt)
        checkBinary(ROp::Sub, hostSub, edgePatterns(salt),
                    edgePatterns(salt + 5));
}

TEST_F(FloatArith, MulNormals)
{
    checkBinary(ROp::Mul, hostMul, normals(-1e4f, 1e4f, 11),
                normals(-1e4f, 1e4f, 12));
}

TEST_F(FloatArith, MulSubnormalResults)
{
    // Products dropping into the subnormal range.
    std::vector<uint32_t> a(threads()), b(threads());
    Rng r(13);
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = floatBits(r.floatIn(-1e-20f, 1e-20f));
        b[i] = floatBits(r.floatIn(-1e-20f, 1e-20f));
    }
    checkBinary(ROp::Mul, hostMul, a, b);
}

TEST_F(FloatArith, MulOverflowToInfinity)
{
    std::vector<uint32_t> a(threads()), b(threads());
    Rng r(14);
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = floatBits(r.floatIn(1e25f, 3e38f));
        b[i] = floatBits(r.floatIn(1e25f, 3e38f));
        if (i % 3 == 0)
            a[i] ^= 0x80000000u;
    }
    checkBinary(ROp::Mul, hostMul, a, b);
}

TEST_F(FloatArith, MulRawPatterns)
{
    checkBinary(ROp::Mul, hostMul, rawPatterns(15), rawPatterns(16));
}

TEST_F(FloatArith, MulEdgeCombinations)
{
    for (uint64_t salt = 0; salt < 8; ++salt)
        checkBinary(ROp::Mul, hostMul, edgePatterns(salt),
                    edgePatterns(salt + 7));
}

TEST_F(FloatArith, DivNormals)
{
    checkBinary(ROp::Div, hostDiv, normals(-1e6f, 1e6f, 17),
                normals(-1e6f, 1e6f, 18));
}

TEST_F(FloatArith, DivRawPatterns)
{
    checkBinary(ROp::Div, hostDiv, rawPatterns(19), rawPatterns(20));
}

TEST_F(FloatArith, DivSubnormalOperandsAndResults)
{
    std::vector<uint32_t> a(threads()), b(threads());
    Rng r(21);
    for (uint32_t i = 0; i < threads(); ++i) {
        // Subnormal numerators and huge denominators (and vice versa).
        a[i] = (i % 2) ? (r.word() & 0x007FFFFFu)
                       : floatBits(r.floatIn(-1e-30f, 1e-30f));
        b[i] = (i % 3) ? floatBits(r.floatIn(1e20f, 1e38f))
                       : (r.word() & 0x807FFFFFu);
    }
    checkBinary(ROp::Div, hostDiv, a, b);
}

TEST_F(FloatArith, DivEdgeCombinations)
{
    for (uint64_t salt = 0; salt < 8; ++salt)
        checkBinary(ROp::Div, hostDiv, edgePatterns(salt),
                    edgePatterns(salt + 11));
}

TEST_F(FloatArith, NegAbsZeroSign)
{
    auto a = rawPatterns(22);
    loadReg(0, a);
    run(ROp::Neg, DType::Float32, 1, 0);
    run(ROp::Abs, DType::Float32, 2, 0);
    run(ROp::Zero, DType::Float32, 3, 0);
    run(ROp::Sign, DType::Float32, 4, 0);
    const auto neg = readReg(1);
    const auto abs = readReg(2);
    const auto zro = readReg(3);
    const auto sgn = readReg(4);
    for (uint32_t i = 0; i < threads(); ++i) {
        // Neg and Abs are pure sign-bit ops in IEEE-754 (NaN included).
        ASSERT_EQ(neg[i], a[i] ^ 0x80000000u) << "neg thread " << i;
        ASSERT_EQ(abs[i], a[i] & 0x7FFFFFFFu) << "abs thread " << i;
        const bool isZero = (a[i] & 0x7FFFFFFFu) == 0;
        ASSERT_EQ(zro[i], isZero ? 1u : 0u) << "zero thread " << i;
        const float x = bitsFloat(a[i]);
        uint32_t expSign;
        if (std::isnan(x))
            expSign = 0x7FC00000u;
        else if (isZero)
            expSign = a[i];  // signed zero preserved
        else
            expSign = floatBits(x > 0 ? 1.0f : -1.0f);
        if (std::isnan(x))
            ASSERT_TRUE(std::isnan(bitsFloat(sgn[i])));
        else
            ASSERT_EQ(sgn[i], expSign) << "sign thread " << i;
    }
}

TEST_F(FloatArith, RoundToNearestEvenTies)
{
    // 1 + 2^-24 is an exact tie: rounds to 1 (even); 1 + 3*2^-24
    // rounds up to 1 + 2^-23.
    std::vector<uint32_t> a(threads(), floatBits(1.0f));
    std::vector<uint32_t> b(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        const float t = std::ldexp(1.0f + (i % 7), -24 - (i % 3));
        b[i] = floatBits(t);
    }
    checkBinary(ROp::Add, hostAdd, a, b);
}

TEST_F(FloatArith, ChainedPolynomialMatchesHost)
{
    // r = a*b + a (the paper's myFunc, Fig. 2/12) over random normals.
    auto a = normals(-100.f, 100.f, 23);
    auto b = normals(-100.f, 100.f, 24);
    loadReg(0, a);
    loadReg(1, b);
    run(ROp::Mul, DType::Float32, 2, 0, 1);
    run(ROp::Add, DType::Float32, 3, 2, 0);
    const auto got = readReg(3);
    for (uint32_t i = 0; i < threads(); ++i) {
        const float expect =
            bitsFloat(a[i]) * bitsFloat(b[i]) + bitsFloat(a[i]);
        ASSERT_TRUE(floatBitsMatch(expect, got[i])) << "thread " << i;
    }
}
