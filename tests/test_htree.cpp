/**
 * @file
 * H-tree interconnect model tests (paper §III-F, Fig. 9).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/htree.hpp"

using namespace pypim;

TEST(HTree, LevelsFromCrossbarCount)
{
    EXPECT_EQ(HTree(1).levels(), 0u);
    EXPECT_EQ(HTree(4).levels(), 1u);
    EXPECT_EQ(HTree(16).levels(), 2u);
    EXPECT_EQ(HTree(64).levels(), 3u);
    EXPECT_EQ(HTree(65536).levels(), 8u);
}

TEST(HTree, RejectsNonPow4)
{
    EXPECT_THROW(HTree(8), Error);
    EXPECT_THROW(HTree(2), Error);
    EXPECT_THROW(HTree(0), Error);
}

TEST(HTree, LcaLevel)
{
    EXPECT_EQ(HTree::lcaLevel(5, 5), 0u);
    // Same group of 4: one level.
    EXPECT_EQ(HTree::lcaLevel(0, 3), 1u);
    EXPECT_EQ(HTree::lcaLevel(4, 7), 1u);
    // Adjacent groups: two levels.
    EXPECT_EQ(HTree::lcaLevel(3, 4), 2u);
    EXPECT_EQ(HTree::lcaLevel(0, 15), 2u);
    EXPECT_EQ(HTree::lcaLevel(0, 16), 3u);
}

TEST(HTree, CanonicalPatternIsFullyParallel)
{
    // Paper III-F: crossbars xx01 -> xx10 for all xx. Each pair stays
    // inside its own level-1 group: 2 cycles, no contention.
    const HTree ht(16);
    const Range src(1, 13, 4);  // 0001, 0101, 1001, 1101
    EXPECT_EQ(ht.moveCycles(src, 1), 2u);
}

TEST(HTree, RootContentionSerialises)
{
    // Fold the upper half of 64 crossbars onto the lower half: all 32
    // transfers cross the root; two uplinks carry 16 each.
    const HTree ht(64);
    const Range src(32, 63, 1);
    const uint64_t c = ht.moveCycles(src, -32);
    // 2 * maxLevel + (maxLoad - 1) = 6 + 15.
    EXPECT_EQ(c, 21u);
}

TEST(HTree, SingleTransferCostsPathLength)
{
    const HTree ht(64);
    EXPECT_EQ(ht.moveCycles(Range::single(0), 1), 2u);    // level 1
    EXPECT_EQ(ht.moveCycles(Range::single(0), 5), 4u);    // level 2
    EXPECT_EQ(ht.moveCycles(Range::single(0), 21), 6u);   // level 3
}

TEST(HTree, DegenerateSameCrossbarMove)
{
    const HTree ht(16);
    EXPECT_EQ(ht.moveCycles(Range::single(3), 0), 1u);
}

TEST(HTree, GroupLocalFoldBeatsRootFold)
{
    // Folding pairwise inside level-1 groups must be much cheaper than
    // folding across the root (basis of the H-tree-aware reduction).
    const HTree ht(64);
    // Neighbour fold: crossbars x1 -> x0 within each group of 4.
    const uint64_t local = ht.moveCycles(Range(1, 61, 4), -1);
    const uint64_t root = ht.moveCycles(Range(32, 63, 1), -32);
    EXPECT_LT(local, root);
    EXPECT_EQ(local, 2u);
}

TEST(HTree, CacheReturnsConsistentValues)
{
    const HTree ht(64);
    const Range src(0, 31, 1);
    const uint64_t a = ht.moveCycles(src, 32);
    const uint64_t b = ht.moveCycles(src, 32);
    EXPECT_EQ(a, b);
    // Different query invalidates the single-entry cache.
    const uint64_t c = ht.moveCycles(Range::single(0), 1);
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(ht.moveCycles(src, 32), a);
}
