/**
 * @file
 * Theory-model tests: the theoretical bound must be a true lower bound
 * on measured cycles, close for lane-optimised ops, and consistent
 * between the stats-based and instruction-based entry points.
 */
#include <gtest/gtest.h>

#include "pim_test_util.hpp"
#include "theory/model.hpp"

using namespace pypim;
using pypim::test::DriverFixture;

namespace
{

class TheoryTest : public DriverFixture
{
  protected:
    TheoryTest() : DriverFixture(Driver::Mode::Serial) {}

    /** Measured cycles and theory bound for one full-mask op. */
    std::pair<uint64_t, uint64_t>
    measuredVsTheory(ROp op, DType dt)
    {
        loadReg(0, std::vector<uint32_t>(threads(), 1234567));
        loadReg(1, std::vector<uint32_t>(threads(), 89));
        sim.stats().clear();
        run(op, dt, 2, 0, 1);
        const Stats s = sim.stats();
        return {s.totalCycles(), theory::theoreticalCycles(s, geo)};
    }
};

} // namespace

TEST_F(TheoryTest, TheoryIsALowerBoundForEveryOp)
{
    for (DType dt : {DType::Int32, DType::Float32}) {
        for (ROp op : {ROp::Add, ROp::Sub, ROp::Mul, ROp::Div, ROp::Lt,
                       ROp::Eq, ROp::BitXor, ROp::Abs, ROp::Sign}) {
            const auto [measured, bound] = measuredVsTheory(op, dt);
            EXPECT_LE(bound, measured)
                << ropName(op) << " " << dtypeName(dt);
            EXPECT_GT(bound, 0u) << ropName(op);
        }
    }
}

TEST_F(TheoryTest, LaneOptimisedOpsSitNearTheBound)
{
    // Serial int add: 288 gates + 9 amortised inits vs 301 measured.
    const auto [measured, bound] = measuredVsTheory(ROp::Add,
                                                    DType::Int32);
    EXPECT_LE(measured, bound + bound / 10)
        << "int add should be within 10% of theory";
}

TEST_F(TheoryTest, InstructionCyclesMatchesStatsPath)
{
    const auto [measured, bound] = measuredVsTheory(ROp::Mul,
                                                    DType::Int32);
    (void)measured;
    const uint64_t viaInstr = theory::instructionCycles(
        geo, /*parallelMode=*/false, ROp::Mul, DType::Int32);
    EXPECT_EQ(viaInstr, bound);
}

TEST_F(TheoryTest, ParallelBoundBelowSerialBound)
{
    const uint64_t serial = theory::instructionCycles(
        geo, false, ROp::Add, DType::Int32);
    const uint64_t parallel = theory::instructionCycles(
        geo, true, ROp::Add, DType::Int32);
    EXPECT_LT(parallel, serial);
}

TEST_F(TheoryTest, ThroughputEquation)
{
    // Paper Eq. (1): parallelism / latency * frequency.
    Geometry dep = tableIIIGeometry();
    const double tput = theory::throughput(300, dep.totalRows(), dep);
    EXPECT_DOUBLE_EQ(tput, static_cast<double>(dep.totalRows()) *
                               dep.clockHz / 300.0);
    EXPECT_EQ(theory::throughput(0, 100, dep), 0.0);
}

TEST_F(TheoryTest, MovesAndIoCountedInBound)
{
    sim.stats().clear();
    sim.perform(MicroOp::crossbarMask(Range::single(0)));
    sim.perform(MicroOp::move(1, 0, 0, 0, 0));  // 2 cycles at level 1
    sim.perform(MicroOp::rowMask(Range::single(0)));
    sim.perform(MicroOp::write(0, 7));
    const uint64_t bound = theory::theoreticalCycles(sim.stats(), geo);
    EXPECT_EQ(bound, 2u + 1u);  // move cycles + write, masks excluded
}
