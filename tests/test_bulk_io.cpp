/**
 * @file
 * Bulk tensor I/O tests (sim/bulk_io.hpp): the batched
 * gather/scatter transfer path must be bit-identical to the
 * element-wise oracle in VALUES and in architectural Stats —
 * per-crossbar (fuzzed gather/scatter vs read/writeRow on both
 * storage modes, block seams, absent blocks, elision preservation)
 * and end-to-end (full tensor programs on bulk-on vs bulk-off
 * devices across storage x device-count x engine x sync/pipelined),
 * plus the drain contract (ONE pipeline drain per transfer per
 * sub-device) and the equal-value run coalescing shared by both knob
 * settings.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "driver/driver.hpp"
#include "pim/pypim.hpp"
#include "sim/crossbar.hpp"
#include "sim/simulator.hpp"

using namespace pypim;

namespace
{

Geometry
multiGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;  // 4 level-1 H-tree groups of 4
    return g;
}

// --- crossbar-level kernel parity ----------------------------------------

TEST(CrossbarBulk, FuzzedGatherMatchesScalarRead)
{
    for (XbarStorage st : {XbarStorage::Dense, XbarStorage::Paged}) {
        const Geometry g = testGeometry();
        Crossbar xb(g, st);
        Rng rng(123);
        for (int k = 0; k < 200; ++k)
            xb.writeRow(rng.word() % g.slots(), rng.word(),
                        rng.word() % g.rows);
        for (int it = 0; it < 400; ++it) {
            const uint32_t slot = rng.word() % g.slots();
            const uint32_t row = rng.word() % g.rows;
            const uint32_t count = 1 + rng.word() % (g.rows - row);
            std::vector<uint32_t> out(count, 0xdeadbeef);
            xb.gatherRows(slot, row, count, out.data());
            for (uint32_t i = 0; i < count; ++i)
                ASSERT_EQ(out[i], xb.read(slot, row + i))
                    << xbarStorageName(st) << " slot " << slot
                    << " row " << row + i << " of [" << row << ", "
                    << row + count << ")";
        }
    }
}

TEST(CrossbarBulk, FuzzedScatterMatchesScalarWrite)
{
    for (XbarStorage st : {XbarStorage::Dense, XbarStorage::Paged}) {
        const Geometry g = testGeometry();
        Crossbar bulk(g, st);
        Crossbar oracle(g, XbarStorage::Dense);
        Rng rng(321);
        for (int k = 0; k < 100; ++k) {
            const uint32_t slot = rng.word() % g.slots();
            const uint32_t row = rng.word() % g.rows;
            const uint32_t v = rng.word();
            bulk.writeRow(slot, v, row);
            oracle.writeRow(slot, v, row);
        }
        for (int it = 0; it < 300; ++it) {
            const uint32_t slot = rng.word() % g.slots();
            const uint32_t row = rng.word() % g.rows;
            const uint32_t count = 1 + rng.word() % (g.rows - row);
            // Bias towards zeros so the elision fast paths (all-zero
            // windows, clear-only planes) are exercised.
            std::vector<uint32_t> vals(count);
            const bool allZero = rng.word() % 4 == 0;
            for (uint32_t i = 0; i < count; ++i)
                vals[i] = allZero || rng.word() % 3 == 0 ? 0
                                                         : rng.word();
            bulk.scatterRows(slot, row, count, vals.data());
            for (uint32_t i = 0; i < count; ++i)
                oracle.writeRow(slot, vals[i], row + i);
        }
        EXPECT_TRUE(bulk.sameState(oracle)) << xbarStorageName(st);
    }
}

TEST(CrossbarBulk, PagedBlockSeamsAndAbsentBlocks)
{
    // 2048 rows = 4 paged blocks per column; populate only blocks 1
    // and 3 so gathers and scatters cross absent/present seams.
    Geometry g = testGeometry();
    g.rows = 2048;
    Crossbar paged(g, XbarStorage::Paged);
    Crossbar oracle(g, XbarStorage::Dense);
    Rng rng(9);
    for (uint32_t row = 512; row < 1024; row += 7) {
        const uint32_t v = rng.word();
        paged.writeRow(3, v, row);
        oracle.writeRow(3, v, row);
    }
    for (uint32_t row = 1536; row < 2048; row += 5) {
        const uint32_t v = rng.word();
        paged.writeRow(3, v, row);
        oracle.writeRow(3, v, row);
    }
    // Gather over an all-absent region zero-fills without a single
    // transpose (and, being const, cannot densify anything).
    std::vector<uint32_t> buf(g.rows, 0xdeadbeef);
    EXPECT_EQ(paged.gatherRows(3, 0, 256, buf.data()), 0u);
    for (uint32_t i = 0; i < 256; ++i)
        ASSERT_EQ(buf[i], 0u);
    // Windows crossing the 512-row block seam, and the full column.
    for (auto [row, count] : {std::pair<uint32_t, uint32_t>{400, 300},
                              {1000, 600},
                              {1530, 20},
                              {0, 2048}}) {
        paged.gatherRows(3, row, count, buf.data());
        for (uint32_t i = 0; i < count; ++i)
            ASSERT_EQ(buf[i], oracle.read(3, row + i))
                << "row " << row + i;
    }
    // Scatter across the seam into an absent block densifies exactly
    // the touched region and matches the scalar oracle.
    std::vector<uint32_t> vals(700);
    for (auto &v : vals)
        v = rng.word();
    paged.scatterRows(3, 300, 700, vals.data());
    for (uint32_t i = 0; i < 700; ++i)
        oracle.writeRow(3, vals[i], 300 + i);
    EXPECT_TRUE(paged.sameState(oracle));
}

TEST(CrossbarBulk, ScatterZerosPreservesElision)
{
    const Geometry g = testGeometry();
    Crossbar xb(g, XbarStorage::Paged);
    std::vector<uint32_t> zeros(g.rows, 0);
    // An all-zero upload to a pristine crossbar transposes nothing
    // and materialises nothing.
    EXPECT_EQ(xb.scatterRows(2, 0, g.rows, zeros.data()), 0u);
    EXPECT_EQ(xb.storageGauges().blocksPresent, 0u);
    // After densification an all-zero scatter only clears in place.
    xb.writeRow(2, 0xffffffffu, 5);
    EXPECT_GT(xb.storageGauges().blocksPresent, 0u);
    xb.scatterRows(2, 0, g.rows, zeros.data());
    for (uint32_t r = 0; r < g.rows; ++r)
        ASSERT_EQ(xb.read(2, r), 0u);
}

// --- driver-level seam ---------------------------------------------------

TEST(DriverBulk, ReadFallsBackUntilMasksAreKnown)
{
    const Geometry g = testGeometry();
    Simulator sim(g);
    Driver drv(sim, g);
    std::vector<uint32_t> buf(4, 0);
    // A fresh builder has no cached masks: the read planner cannot
    // replicate readWord's dedup decisions, so the driver declines.
    EXPECT_FALSE(drv.readBulk(0, 0, 0, 1, 4, buf.data()));
    EXPECT_EQ(drv.stats().bulkReads, 0u);
    WriteInstr w;
    w.reg = 0;
    w.value = 7;
    w.warps = Range::all(g.numCrossbars);
    w.rows = Range::all(g.rows);
    drv.execute(w);
    EXPECT_TRUE(drv.readBulk(0, 0, 0, 1, 4, buf.data()));
    for (uint32_t v : buf)
        EXPECT_EQ(v, 7u);
    EXPECT_EQ(drv.stats().bulkReads, 1u);
    EXPECT_EQ(drv.stats().ioDrains, 1u);
}

TEST(DriverBulk, WriteWorksWithUnknownMasks)
{
    const Geometry g = testGeometry();
    Simulator sim(g);
    Driver drv(sim, g);
    const std::vector<uint32_t> vals = {1, 2, 3, 4, 5};
    drv.writeBulk(3, 1, 10, 1, vals.size(), vals.data());
    for (uint32_t i = 0; i < vals.size(); ++i)
        EXPECT_EQ(sim.crossbar(1).read(3, 10 + i), vals[i]);
    EXPECT_EQ(drv.stats().bulkWrites, 1u);
    EXPECT_EQ(drv.stats().instructions, vals.size());
}

// --- end-to-end parity: bulk on vs the element-wise oracle ---------------

struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"serial", EngineConfig::serial()},
        {"trace", EngineConfig::trace()},
        {"sharded", EngineConfig::sharded(2)},
        {"serial+pipe", EngineConfig::serial().withPipeline()},
        {"trace+pipe", EngineConfig::trace().withPipeline()},
        {"sharded+pipe", EngineConfig::sharded(2).withPipeline()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 6;

/**
 * One representative tensor program: random uploads, arithmetic, a
 * full readback, a strided-view readback, a strided-view upload and
 * a final readback. The length is chosen to end mid-warp AND
 * mid-transpose-window (partial final windows on every path).
 */
std::vector<int32_t>
runProgram(Device &dev, uint64_t seed, uint64_t n)
{
    Rng rng(seed);
    std::vector<int32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.word());
        b[i] = static_cast<int32_t>(rng.word());
    }
    Tensor ta = Tensor::fromVector(a, &dev);
    Tensor tb = Tensor::fromVector(b, &dev);
    Tensor tc = ta + tb;
    std::vector<int32_t> out = tc.toIntVector();
    Tensor view = tc.every(3, 1);
    const std::vector<int32_t> vv = view.toIntVector();
    out.insert(out.end(), vv.begin(), vv.end());
    std::vector<int32_t> upd(vv.size());
    for (size_t i = 0; i < vv.size(); ++i)
        upd[i] = vv[i] ^ 0x5a5a;
    view.setVector(upd);
    const std::vector<int32_t> fin = tc.toIntVector();
    out.insert(out.end(), fin.begin(), fin.end());
    return out;
}

class BulkIoParity : public ::testing::TestWithParam<size_t>
{
};

TEST_P(BulkIoParity, BulkMatchesElementwiseEverywhere)
{
    const EngineCase &ec = engineCase(GetParam());
    const Geometry g = multiGeometry();
    for (XbarStorage st : {XbarStorage::Dense, XbarStorage::Paged}) {
        for (uint32_t devices : {1u, 2u, 4u}) {
            EngineConfig on =
                ec.cfg.withDevices(devices).withStorage(st);
            on.bulkIo = true;
            EngineConfig off = on;
            off.bulkIo = false;
            Device devOn(g, Driver::Mode::Parallel, on);
            Device devOff(g, Driver::Mode::Parallel, off);
            const auto got = runProgram(devOn, 77, 700);
            const auto want = runProgram(devOff, 77, 700);
            // The element loop's final mask restore is still batched
            // in the driver; stats compare at a flush point.
            devOn.flush();
            devOff.flush();
            ASSERT_EQ(got, want)
                << ec.name << " x" << devices << " "
                << xbarStorageName(st);
            // Architectural statistics are bit-identical: the bulk
            // path records exactly what the element loop executes.
            EXPECT_EQ(devOn.stats(), devOff.stats())
                << ec.name << " x" << devices << " "
                << xbarStorageName(st);
            // Driver accounting: count instructions either way.
            EXPECT_EQ(devOn.driver().stats().instructions,
                      devOff.driver().stats().instructions);
            EXPECT_GT(devOn.driver().stats().bulkReads, 0u);
            EXPECT_GT(devOn.driver().stats().bulkWrites, 0u);
            EXPECT_EQ(devOff.driver().stats().bulkReads, 0u);
            EXPECT_EQ(devOff.driver().stats().bulkWrites, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, BulkIoParity,
                         ::testing::Range<size_t>(0, numEngineCases));

// --- drain contract and coalescing ---------------------------------------

TEST(BulkIoDrains, OneDrainPerTransferPerSubDevice)
{
    const Geometry g = multiGeometry();
    const EngineConfig cfg =
        EngineConfig::trace().withPipeline().withDevices(2);
    Device dev(g, Driver::Mode::Parallel, cfg);
    std::vector<int32_t> v(300);
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<int32_t>(i * 2654435761u);
    Tensor t = Tensor::fromVector(v, &dev);
    const Stats &ds = dev.driver().stats();
    EXPECT_EQ(ds.bulkWrites, 1u);
    EXPECT_EQ(ds.ioDrains, 2u);  // one drain per sub-device
    EXPECT_EQ(t.toIntVector(), v);
    EXPECT_EQ(ds.bulkReads, 1u);
    EXPECT_EQ(ds.ioDrains, 4u);
    EXPECT_GT(ds.ioWordsTransposed, 0u);
}

TEST(BulkIoCoalescing, ConstantUploadCostsRunsNotElements)
{
    const Geometry g = multiGeometry();
    for (bool bulk : {true, false}) {
        EngineConfig cfg;
        cfg.bulkIo = bulk;
        Device dev(g, Driver::Mode::Parallel, cfg);
        const std::vector<int32_t> v(
            static_cast<size_t>(g.rows) * g.numCrossbars, 42);
        const uint64_t before = dev.driver().stats().instructions;
        Tensor t = Tensor::fromVector(v, &dev);
        // Equal consecutive values coalesce into one masked Range
        // write per warp — on BOTH knob settings (shared planner).
        EXPECT_EQ(dev.driver().stats().instructions - before,
                  g.numCrossbars)
            << "bulk=" << bulk;
        EXPECT_EQ(t.toIntVector(), v) << "bulk=" << bulk;
    }
}

} // namespace
