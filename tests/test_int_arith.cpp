/**
 * @file
 * Integer arithmetic tests: serial (ripple/schoolbook) and parallel
 * (carry-lookahead / carry-save) implementations verified against
 * host int32 arithmetic on randomised and directed per-thread values.
 * Parameterised over the driver mode so both algorithm families run
 * through the identical property sweeps (paper Fig. 4).
 */
#include <gtest/gtest.h>

#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::DriverFixture;

namespace
{

class IntArith : public DriverFixture,
                 public ::testing::WithParamInterface<Driver::Mode>
{
  protected:
    IntArith() : DriverFixture(GetParam()) {}

    /** Random operands with a sprinkle of directed edge values. */
    std::vector<uint32_t>
    operands(uint64_t salt)
    {
        static const uint32_t edges[] = {
            0u, 1u, 0xFFFFFFFFu,              // 0, 1, -1
            0x7FFFFFFFu, 0x80000000u,          // INT_MAX, INT_MIN
            2u, 0xFFFFFFFEu, 0x55555555u, 0xAAAAAAAAu,
        };
        Rng r(0xC0FFEE ^ salt);
        std::vector<uint32_t> v(threads());
        for (size_t i = 0; i < v.size(); ++i) {
            v[i] = (i < std::size(edges) * std::size(edges))
                ? edges[(salt + i / std::size(edges)) % std::size(edges)]
                : r.word();
        }
        return v;
    }

    void
    checkBinary(ROp op, uint32_t (*host)(uint32_t, uint32_t),
                std::vector<uint32_t> a, std::vector<uint32_t> b)
    {
        loadReg(0, a);
        loadReg(1, b);
        run(op, DType::Int32, 2, 0, 1);
        const auto got = readReg(2);
        for (uint32_t i = 0; i < threads(); ++i)
            ASSERT_EQ(got[i], host(a[i], b[i]))
                << ropName(op) << "(" << static_cast<int32_t>(a[i])
                << ", " << static_cast<int32_t>(b[i]) << ") thread " << i;
    }
};

uint32_t hostAdd(uint32_t a, uint32_t b) { return a + b; }
uint32_t hostSub(uint32_t a, uint32_t b) { return a - b; }
uint32_t hostMul(uint32_t a, uint32_t b) { return a * b; }

uint32_t
hostDiv(uint32_t a, uint32_t b)
{
    return static_cast<uint32_t>(static_cast<int64_t>(static_cast<int32_t>(a)) /
                                 static_cast<int32_t>(b));
}

uint32_t
hostMod(uint32_t a, uint32_t b)
{
    return static_cast<uint32_t>(static_cast<int64_t>(static_cast<int32_t>(a)) %
                                 static_cast<int32_t>(b));
}

} // namespace

TEST_P(IntArith, AddMatchesHost)
{
    checkBinary(ROp::Add, hostAdd, operands(1), operands(2));
}

TEST_P(IntArith, SubMatchesHost)
{
    checkBinary(ROp::Sub, hostSub, operands(3), operands(4));
}

TEST_P(IntArith, MulMatchesHostTruncated)
{
    checkBinary(ROp::Mul, hostMul, operands(5), operands(6));
}

TEST_P(IntArith, AddCarriesRippleAcrossAllBits)
{
    // 0xFFFFFFFF + 1 and friends: the longest carry chains.
    std::vector<uint32_t> a(threads()), b(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = (i % 2) ? 0xFFFFFFFFu : (0xFFFFFFFFu >> (i % 31));
        b[i] = (i % 3) ? 1u : (1u << (i % 32));
    }
    checkBinary(ROp::Add, hostAdd, a, b);
}

TEST_P(IntArith, DivMatchesCTruncation)
{
    // Signed division truncates toward zero; avoid division by zero
    // and the INT_MIN / -1 overflow (UB in C).
    std::vector<uint32_t> a = operands(7);
    std::vector<uint32_t> b(threads());
    Rng r(99);
    for (uint32_t i = 0; i < threads(); ++i) {
        int32_t d = r.int32In(-1000, 1000);
        if (d == 0)
            d = 7;
        if (static_cast<int32_t>(a[i]) == INT32_MIN && d == -1)
            d = 3;
        b[i] = static_cast<uint32_t>(d);
    }
    checkBinary(ROp::Div, hostDiv, a, b);
}

TEST_P(IntArith, ModMatchesC)
{
    std::vector<uint32_t> a = operands(8);
    std::vector<uint32_t> b(threads());
    Rng r(77);
    for (uint32_t i = 0; i < threads(); ++i) {
        int32_t d = r.int32In(-99999, 99999);
        if (d == 0)
            d = 13;
        if (static_cast<int32_t>(a[i]) == INT32_MIN && d == -1)
            d = 5;
        b[i] = static_cast<uint32_t>(d);
    }
    checkBinary(ROp::Mod, hostMod, a, b);
}

TEST_P(IntArith, DivLargeDivisors)
{
    std::vector<uint32_t> a = operands(9);
    std::vector<uint32_t> b = operands(10);
    for (uint32_t i = 0; i < threads(); ++i) {
        if (b[i] == 0)
            b[i] = 0x10001;
        if (static_cast<int32_t>(a[i]) == INT32_MIN &&
            static_cast<int32_t>(b[i]) == -1)
            b[i] = 2;
    }
    checkBinary(ROp::Div, hostDiv, a, b);
}

TEST_P(IntArith, NegAbsSign)
{
    auto a = operands(11);
    // Avoid INT_MIN for abs/neg UB in the host reference only.
    loadReg(0, a);
    run(ROp::Neg, DType::Int32, 1, 0);
    run(ROp::Abs, DType::Int32, 2, 0);
    run(ROp::Sign, DType::Int32, 3, 0);
    run(ROp::Zero, DType::Int32, 4, 0);
    const auto neg = readReg(1);
    const auto abs = readReg(2);
    const auto sgn = readReg(3);
    const auto zro = readReg(4);
    for (uint32_t i = 0; i < threads(); ++i) {
        const int32_t x = static_cast<int32_t>(a[i]);
        ASSERT_EQ(neg[i], static_cast<uint32_t>(-static_cast<int64_t>(x)))
            << "neg " << x;
        const uint32_t expAbs = x == INT32_MIN
            ? 0x80000000u
            : static_cast<uint32_t>(x < 0 ? -x : x);
        ASSERT_EQ(abs[i], expAbs) << "abs " << x;
        const uint32_t expSign =
            x == 0 ? 0u : (x < 0 ? 0xFFFFFFFFu : 1u);
        ASSERT_EQ(sgn[i], expSign) << "sign " << x;
        ASSERT_EQ(zro[i], x == 0 ? 1u : 0u) << "zero " << x;
    }
}

TEST_P(IntArith, MultiInstructionProgram)
{
    // (a + b) * (a - b) == a^2 - b^2 (mod 2^32) — composition across
    // instructions with intermediate registers.
    auto a = operands(12);
    auto b = operands(13);
    loadReg(0, a);
    loadReg(1, b);
    run(ROp::Add, DType::Int32, 2, 0, 1);
    run(ROp::Sub, DType::Int32, 3, 0, 1);
    run(ROp::Mul, DType::Int32, 4, 2, 3);
    const auto got = readReg(4);
    for (uint32_t i = 0; i < threads(); ++i) {
        const uint32_t expect = (a[i] + b[i]) * (a[i] - b[i]);
        ASSERT_EQ(got[i], expect) << "thread " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, IntArith,
                         ::testing::Values(Driver::Mode::Serial,
                                           Driver::Mode::Parallel),
                         [](const auto &info) {
                             return info.param == Driver::Mode::Serial
                                 ? "Serial" : "Parallel";
                         });

namespace
{

class IntArithCounts : public DriverFixture
{
  protected:
    IntArithCounts() : DriverFixture(Driver::Mode::Serial) {}

    uint64_t
    opsFor(Driver::Mode m, ROp op)
    {
        drv.setMode(m);
        loadReg(0, std::vector<uint32_t>(threads(), 12345));
        loadReg(1, std::vector<uint32_t>(threads(), 678));
        sim.stats().clear();
        run(op, DType::Int32, 2, 0, 1);
        return sim.stats().totalOps();
    }
};

} // namespace

TEST_F(IntArithCounts, ParallelAddIsFarCheaperThanSerial)
{
    const uint64_t serial = opsFor(Driver::Mode::Serial, ROp::Add);
    const uint64_t parallel = opsFor(Driver::Mode::Parallel, ROp::Add);
    // Serial is Theta(N), parallel Theta(log N): expect >= 2x at N=32.
    EXPECT_GT(serial, 2 * parallel)
        << "serial=" << serial << " parallel=" << parallel;
}

TEST_F(IntArithCounts, ParallelMulIsFarCheaperThanSerial)
{
    const uint64_t serial = opsFor(Driver::Mode::Serial, ROp::Mul);
    const uint64_t parallel = opsFor(Driver::Mode::Parallel, ROp::Mul);
    // Serial is Theta(N^2), parallel Theta(N log N): expect >= 2.5x at
    // N = 32 (AritPIM reports 14x against a partition-free serial
    // baseline; our serial already bulk-initialises via partitions).
    EXPECT_GT(serial * 2, 5 * parallel)
        << "serial=" << serial << " parallel=" << parallel;
}

TEST_F(IntArithCounts, SerialAddOpCountNearTheoreticalMinimum)
{
    // 9 gates per full adder (AritPIM): 9N plus small bookkeeping.
    const uint64_t ops = opsFor(Driver::Mode::Serial, ROp::Add);
    const uint32_t n = geo.wordBits;
    EXPECT_GE(ops, 9ull * n);
    EXPECT_LE(ops, 9ull * n + 32);
}
