/**
 * @file
 * Engine-parity tests (the non-reference backends' correctness
 * contract): for fuzzed valid micro-op streams, directed
 * mask-interleaved segments and driver-level tensor programs, the
 * ShardedEngine (at 1, 2 and 8 threads) and the TraceEngine must
 * leave every crossbar in a bit-identical state and produce identical
 * architectural Stats compared to the op-major SerialEngine.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/sharded_engine.hpp"

using namespace pypim;

namespace
{

Geometry
parityGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;  // enough crossbars for 8 shards to matter
    return g;
}

/**
 * The candidate backends tested against the serial oracle: sharded at
 * the contract's thread counts, plus the serial trace engine (which
 * exercises decode-once replay and INIT+gate fusion without
 * threading).
 */
struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"sharded", EngineConfig::sharded(1)},
        {"sharded", EngineConfig::sharded(2)},
        {"sharded", EngineConfig::sharded(8)},
        {"trace", EngineConfig::trace()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 4;

/** Seed both simulators with identical random register contents. */
void
seedState(Simulator &a, Simulator &b, Rng &rng)
{
    const Geometry &g = a.geometry();
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
        for (uint32_t row = 0; row < g.rows; ++row) {
            for (uint32_t slot = 0; slot < g.slots(); ++slot) {
                const uint32_t v = rng.word();
                a.crossbar(xb).writeRow(slot, v, row);
                b.crossbar(xb).writeRow(slot, v, row);
            }
        }
    }
}

::testing::AssertionResult
sameCrossbarState(const Simulator &a, const Simulator &b)
{
    for (uint32_t xb = 0; xb < a.geometry().numCrossbars; ++xb) {
        if (!a.crossbar(xb).sameState(b.crossbar(xb)))
            return ::testing::AssertionFailure()
                   << "crossbar " << xb << " state diverged";
    }
    return ::testing::AssertionSuccess();
}

/** Random valid Range over [0, limit). */
Range
randomRange(Rng &rng, uint32_t limit)
{
    const uint32_t start = rng.word() % limit;
    const uint32_t step = 1 + rng.word() % 8;
    const uint32_t maxN = (limit - 1 - start) / step;
    const uint32_t span = (rng.word() % (maxN + 1)) * step;
    return Range(start, start + span, step);
}

/**
 * Generate a random valid micro-op stream over @p g. Tracks the mask
 * state it sets up so that reads and moves are emitted legally.
 * Interleaves mask ops freely with Write/LogicH/LogicV, including the
 * driver's canonical INIT1+NOR/NOT pairs (the trace builder's fusion
 * candidates) with and without mask changes in between.
 */
std::vector<Word>
randomStream(Rng &rng, const Geometry &g, size_t len)
{
    std::vector<Word> ops;
    ops.reserve(len + 2);
    Range xbMask = Range::all(g.numCrossbars);
    const auto setXbMask = [&](Range r) {
        xbMask = r;
        ops.push_back(MicroOp::crossbarMask(r).encode());
    };
    while (ops.size() < len) {
        switch (rng.word() % 13) {
          case 0:
            setXbMask(randomRange(rng, g.numCrossbars));
            break;
          case 1:
            ops.push_back(
                MicroOp::rowMask(randomRange(rng, g.rows)).encode());
            break;
          case 2:
          case 3:
            ops.push_back(MicroOp::write(rng.word() % g.slots(),
                                         rng.word()).encode());
            break;
          case 4: {
            // INIT a whole slot across all partitions.
            const uint32_t out = g.column(rng.word() % g.slots(), 0);
            ops.push_back(
                MicroOp::logicH(rng.word() % 2 ? Gate::Init1
                                               : Gate::Init0,
                                0, 0, out, g.partitions - 1, 1)
                    .encode());
            break;
          }
          case 5:
          case 6: {
            // Periodic NOR/NOT between distinct slot columns, the
            // driver's canonical full-width pattern.
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          g.column(c, 0),
                                          g.partitions - 1, 1)
                              .encode());
            break;
          }
          case 7: {
            static const Gate kVGates[] = {Gate::Init0, Gate::Init1,
                                           Gate::Not};
            ops.push_back(MicroOp::logicV(kVGates[rng.word() % 3],
                                          rng.word() % g.rows,
                                          rng.word() % g.rows,
                                          rng.word() % g.slots())
                              .encode());
            break;
          }
          case 8: {
            // Read: needs single-crossbar single-row masks.
            setXbMask(Range::single(rng.word() % g.numCrossbars));
            ops.push_back(
                MicroOp::rowMask(Range::single(rng.word() % g.rows))
                    .encode());
            ops.push_back(
                MicroOp::read(rng.word() % g.slots()).encode());
            break;
          }
          case 9: {
            // INIT1 immediately followed by NOR/NOT of the same
            // output slot (the fusion candidate), optionally with a
            // mask op in between (which may or may not defeat
            // fusion — both paths must stay bit-identical).
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const uint32_t out = g.column(c, 0);
            ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, out,
                                          g.partitions - 1, 1)
                              .encode());
            if (rng.word() % 3 == 0)
                ops.push_back(
                    MicroOp::rowMask(randomRange(rng, g.rows))
                        .encode());
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          out, g.partitions - 1, 1)
                              .encode());
            break;
          }
          default: {
            // Move: contiguous source block shifted within bounds.
            const uint32_t n = 1 + rng.word() % (g.numCrossbars / 2);
            const uint32_t src = rng.word() % (g.numCrossbars - n + 1);
            const uint32_t dst = rng.word() % (g.numCrossbars - n + 1);
            setXbMask(Range(src, src + n - 1, 1));
            ops.push_back(MicroOp::move(dst, rng.word() % g.rows,
                                        rng.word() % g.rows,
                                        rng.word() % g.slots(),
                                        rng.word() % g.slots())
                              .encode());
            break;
          }
        }
    }
    return ops;
}

class EngineParity : public ::testing::TestWithParam<
                         std::tuple<uint64_t, size_t>>
{
};

} // namespace

TEST_P(EngineParity, FuzzedStreamsBitIdentical)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = parityGeometry();
    Simulator serial(g);
    Simulator other(g, ec.cfg);
    ASSERT_STREQ(serial.engine().name(), "serial");
    ASSERT_STREQ(other.engine().name(), ec.name);

    Rng rng(seed);
    seedState(serial, other, rng);
    const std::vector<Word> ops = randomStream(rng, g, 600);

    // Feed both engines the identical stream in identical random-size
    // batches, so segmenting boundaries vary across seeds.
    size_t i = 0;
    while (i < ops.size()) {
        const size_t n =
            std::min<size_t>(1 + rng.word() % 64, ops.size() - i);
        serial.performBatch(ops.data() + i, n);
        other.performBatch(ops.data() + i, n);
        i += n;
    }

    EXPECT_TRUE(sameCrossbarState(serial, other));
    EXPECT_EQ(serial.stats(), other.stats())
        << "serial:\n" << serial.stats().summary()
        << ec.name << ":\n" << other.stats().summary();
    EXPECT_EQ(serial.crossbarMask(), other.crossbarMask());
    EXPECT_EQ(serial.rowMask(), other.rowMask());
}

TEST_P(EngineParity, ReadsReturnIdenticalValues)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = parityGeometry();
    Simulator serial(g);
    Simulator other(g, ec.cfg);
    Rng rng(seed ^ 0xBEEF);
    seedState(serial, other, rng);
    const std::vector<Word> ops = randomStream(rng, g, 200);
    serial.performBatch(ops.data(), ops.size());
    other.performBatch(ops.data(), ops.size());
    for (int i = 0; i < 50; ++i) {
        const uint32_t xb = rng.word() % g.numCrossbars;
        const uint32_t row = rng.word() % g.rows;
        const uint32_t slot = rng.word() % g.slots();
        const std::vector<Word> sel = {
            MicroOp::crossbarMask(Range::single(xb)).encode(),
            MicroOp::rowMask(Range::single(row)).encode(),
        };
        serial.performBatch(sel.data(), sel.size());
        other.performBatch(sel.data(), sel.size());
        EXPECT_EQ(serial.performRead(enc::read(slot)),
                  other.performRead(enc::read(slot)));
    }
}

TEST_P(EngineParity, EngineSwapPreservesState)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = parityGeometry();
    Simulator oracle(g);
    Simulator swapped(g);  // starts serial, swaps mid-stream
    Rng rng(seed * 7 + 5);
    seedState(oracle, swapped, rng);
    const std::vector<Word> ops = randomStream(rng, g, 400);
    const size_t half = ops.size() / 2;

    oracle.performBatch(ops.data(), ops.size());
    swapped.performBatch(ops.data(), half);
    swapped.setEngine(ec.cfg);
    swapped.performBatch(ops.data() + half, ops.size() - half);

    EXPECT_TRUE(sameCrossbarState(oracle, swapped));
    EXPECT_EQ(oracle.stats(), swapped.stats());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEngines, EngineParity,
    ::testing::Combine(::testing::Values(11ull, 404ull, 90210ull),
                       ::testing::Range<size_t>(0, numEngineCases)));

namespace
{

/**
 * One directed batch interleaving mask ops with Write/LogicH/LogicV
 * inside single segments: strided masks, fusable and fusion-defeated
 * INIT1+NOR pairs, an input-aliases-output NOR (must not fuse), and a
 * barrier in the middle. Deterministic — every engine must reproduce
 * the serial oracle bit for bit.
 */
std::vector<Word>
maskInterleavedBatch(const Geometry &g)
{
    std::vector<Word> ops;
    const auto slotCol = [&](uint32_t s) { return g.column(s, 0); };
    const uint32_t pEnd = g.partitions - 1;

    // Segment 1: strided crossbar mask, full rows.
    ops.push_back(
        MicroOp::crossbarMask(Range(1, g.numCrossbars - 3, 2))
            .encode());
    ops.push_back(MicroOp::write(0, 0xA5A5A5A5u).encode());
    // Fusable INIT1+NOR pair (same masks, same outputs).
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(4),
                                  pEnd, 1).encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, slotCol(0), slotCol(1),
                                  slotCol(4), pEnd, 1).encode());
    // INIT1+NOT pair split by a row-mask change: must NOT fuse, and
    // the NOT must see the new (strided) row mask.
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(5),
                                  pEnd, 1).encode());
    ops.push_back(
        MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode());
    ops.push_back(MicroOp::logicH(Gate::Not, slotCol(2), slotCol(2),
                                  slotCol(5), pEnd, 1).encode());
    // INIT1+NOR whose input aliases the initialised output: the
    // fusion guard must fall back to two sequential passes.
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(6),
                                  pEnd, 1).encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, slotCol(6), slotCol(3),
                                  slotCol(6), pEnd, 1).encode());
    // Vertical logic and a crossbar-mask change mid-segment.
    ops.push_back(
        MicroOp::logicV(Gate::Init1, 0, 3, 7).encode());
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 4, 4))
            .encode());
    ops.push_back(
        MicroOp::logicV(Gate::Not, 3, 5, 7).encode());
    ops.push_back(MicroOp::write(1, 0x0F0F0F0Fu).encode());

    // Barrier: H-tree move splits the batch into two segments.
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode());
    ops.push_back(
        MicroOp::move(g.numCrossbars / 2, 1, 2, 0, 1).encode());

    // Segment 2: INIT1+NOR pair with a re-issued identical crossbar
    // mask in between (fusion must survive no-op mask traffic), then
    // a re-issued identical row mask before a write (row-snapshot
    // reuse inside the trace builder).
    ops.push_back(
        MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode());
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(8),
                                  pEnd, 1).encode());
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, slotCol(1), slotCol(2),
                                  slotCol(8), pEnd, 1).encode());
    ops.push_back(
        MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode());
    ops.push_back(MicroOp::write(9, 0xDEADBEEFu).encode());
    return ops;
}

} // namespace

TEST(EngineParityDirected, MaskInterleavedSegments)
{
    const Geometry g = parityGeometry();
    const std::vector<Word> ops = maskInterleavedBatch(g);
    for (size_t c = 0; c < numEngineCases; ++c) {
        const EngineCase &ec = engineCase(c);
        Simulator serial(g);
        Simulator other(g, ec.cfg);
        Rng seedRng(2024);
        seedState(serial, other, seedRng);
        serial.performBatch(ops.data(), ops.size());
        other.performBatch(ops.data(), ops.size());
        EXPECT_TRUE(sameCrossbarState(serial, other)) << ec.name;
        EXPECT_EQ(serial.stats(), other.stats()) << ec.name;
    }
}

TEST(EngineParityWork, ShardWorkCountsEveryApplication)
{
    // Under full masks every work op applies to every crossbar, so
    // the merged per-shard diagnostics must equal the architectural
    // op counts scaled by the crossbar count. The stream alternates
    // Write and INIT1 (no fusion), so applications map 1:1 to ops.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4));
    std::vector<Word> ops;
    for (int i = 0; i < 10; ++i) {
        ops.push_back(MicroOp::write(0, 42u + i).encode());
        ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(1, 0),
                                      g.partitions - 1, 1).encode());
    }
    sim.performBatch(ops.data(), ops.size());
    const auto &eng =
        static_cast<const ShardedEngine &>(sim.engine());
    const Stats merged = Stats::merged(eng.shardWork());
    EXPECT_EQ(merged.opCount[size_t(OpClass::Write)],
              10ull * g.numCrossbars);
    EXPECT_EQ(merged.opCount[size_t(OpClass::LogicH)],
              10ull * g.numCrossbars);
    // Contiguous shards over 16 crossbars at 4 threads: 4 each.
    for (const Stats &w : eng.shardWork())
        EXPECT_EQ(w.totalOps(), 20ull * (g.numCrossbars / 4));
}

TEST(EngineParityWork, FusedPairsCountBothApplications)
{
    // A fusable INIT1+NOR pair replays as one pass but represents two
    // architectural ops; the work diagnostic must count both, keeping
    // merged work == architectural ops * crossbars.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4));
    std::vector<Word> ops;
    for (int i = 0; i < 8; ++i) {
        ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(4, 0),
                                      g.partitions - 1, 1).encode());
        ops.push_back(MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                      g.column(1, 0), g.column(4, 0),
                                      g.partitions - 1, 1).encode());
    }
    sim.performBatch(ops.data(), ops.size());
    const auto &eng =
        static_cast<const ShardedEngine &>(sim.engine());
    const Stats merged = Stats::merged(eng.shardWork());
    EXPECT_EQ(merged.opCount[size_t(OpClass::LogicH)],
              16ull * g.numCrossbars);
}

namespace
{

/** Driver-level program parity: full tensor ops through both engines. */
void
runDriverProgram(Device &dev)
{
    const uint64_t n = 3 * dev.geometry().rows;  // spans 3 crossbars
    std::vector<int32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i * 2654435761u);
        b[i] = static_cast<int32_t>((i + 7) * 40503u);
    }
    Tensor ta = Tensor::fromVector(a, &dev);
    Tensor tb = Tensor::fromVector(b, &dev);
    Tensor sum = ta + tb;
    Tensor prod = ta * tb;
    Tensor sel = where(isZero(ta - ta), sum, prod);
    (void)sel.toIntVector();
}

} // namespace

TEST(EngineParityDriver, TensorProgramsMatchSerial)
{
    const Geometry g = parityGeometry();
    Device serialDev(g, Driver::Mode::Parallel,
                     EngineConfig::serial());
    runDriverProgram(serialDev);
    for (size_t c = 0; c < numEngineCases; ++c) {
        const EngineCase &ec = engineCase(c);
        Device otherDev(g, Driver::Mode::Parallel, ec.cfg);
        if (ec.cfg.kind == EngineKind::Sharded) {
            EXPECT_EQ(otherDev.simulator().engine().threads(),
                      std::min(ec.cfg.threads, g.numCrossbars));
        }
        runDriverProgram(otherDev);
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
            ASSERT_TRUE(serialDev.simulator().crossbar(xb).sameState(
                otherDev.simulator().crossbar(xb)))
                << "crossbar " << xb << " under " << ec.name
                << " engine";
        }
        EXPECT_EQ(serialDev.stats(), otherDev.stats()) << ec.name;
    }
}
