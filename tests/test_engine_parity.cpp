/**
 * @file
 * Engine-parity tests (the sharded backend's correctness contract):
 * for fuzzed valid micro-op streams and for driver-level tensor
 * programs, the ShardedEngine must leave every crossbar in a
 * bit-identical state and produce identical architectural Stats
 * compared to the SerialEngine, at 1, 2 and 8 threads.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/sharded_engine.hpp"

using namespace pypim;

namespace
{

Geometry
parityGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;  // enough crossbars for 8 shards to matter
    return g;
}

/** Seed both simulators with identical random register contents. */
void
seedState(Simulator &a, Simulator &b, Rng &rng)
{
    const Geometry &g = a.geometry();
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
        for (uint32_t row = 0; row < g.rows; ++row) {
            for (uint32_t slot = 0; slot < g.slots(); ++slot) {
                const uint32_t v = rng.word();
                a.crossbar(xb).writeRow(slot, v, row);
                b.crossbar(xb).writeRow(slot, v, row);
            }
        }
    }
}

::testing::AssertionResult
sameCrossbarState(const Simulator &a, const Simulator &b)
{
    for (uint32_t xb = 0; xb < a.geometry().numCrossbars; ++xb) {
        if (!a.crossbar(xb).sameState(b.crossbar(xb)))
            return ::testing::AssertionFailure()
                   << "crossbar " << xb << " state diverged";
    }
    return ::testing::AssertionSuccess();
}

/** Random valid Range over [0, limit). */
Range
randomRange(Rng &rng, uint32_t limit)
{
    const uint32_t start = rng.word() % limit;
    const uint32_t step = 1 + rng.word() % 8;
    const uint32_t maxN = (limit - 1 - start) / step;
    const uint32_t span = (rng.word() % (maxN + 1)) * step;
    return Range(start, start + span, step);
}

/**
 * Generate a random valid micro-op stream over @p g. Tracks the mask
 * state it sets up so that reads and moves are emitted legally.
 */
std::vector<Word>
randomStream(Rng &rng, const Geometry &g, size_t len)
{
    std::vector<Word> ops;
    ops.reserve(len + 2);
    Range xbMask = Range::all(g.numCrossbars);
    const auto setXbMask = [&](Range r) {
        xbMask = r;
        ops.push_back(MicroOp::crossbarMask(r).encode());
    };
    while (ops.size() < len) {
        switch (rng.word() % 12) {
          case 0:
            setXbMask(randomRange(rng, g.numCrossbars));
            break;
          case 1:
            ops.push_back(
                MicroOp::rowMask(randomRange(rng, g.rows)).encode());
            break;
          case 2:
          case 3:
            ops.push_back(MicroOp::write(rng.word() % g.slots(),
                                         rng.word()).encode());
            break;
          case 4: {
            // INIT a whole slot across all partitions.
            const uint32_t out = g.column(rng.word() % g.slots(), 0);
            ops.push_back(
                MicroOp::logicH(rng.word() % 2 ? Gate::Init1
                                               : Gate::Init0,
                                0, 0, out, g.partitions - 1, 1)
                    .encode());
            break;
          }
          case 5:
          case 6: {
            // Periodic NOR/NOT between distinct slot columns, the
            // driver's canonical full-width pattern.
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          g.column(c, 0),
                                          g.partitions - 1, 1)
                              .encode());
            break;
          }
          case 7: {
            static const Gate kVGates[] = {Gate::Init0, Gate::Init1,
                                           Gate::Not};
            ops.push_back(MicroOp::logicV(kVGates[rng.word() % 3],
                                          rng.word() % g.rows,
                                          rng.word() % g.rows,
                                          rng.word() % g.slots())
                              .encode());
            break;
          }
          case 8: {
            // Read: needs single-crossbar single-row masks.
            setXbMask(Range::single(rng.word() % g.numCrossbars));
            ops.push_back(
                MicroOp::rowMask(Range::single(rng.word() % g.rows))
                    .encode());
            ops.push_back(
                MicroOp::read(rng.word() % g.slots()).encode());
            break;
          }
          default: {
            // Move: contiguous source block shifted within bounds.
            const uint32_t n = 1 + rng.word() % (g.numCrossbars / 2);
            const uint32_t src = rng.word() % (g.numCrossbars - n + 1);
            const uint32_t dst = rng.word() % (g.numCrossbars - n + 1);
            setXbMask(Range(src, src + n - 1, 1));
            ops.push_back(MicroOp::move(dst, rng.word() % g.rows,
                                        rng.word() % g.rows,
                                        rng.word() % g.slots(),
                                        rng.word() % g.slots())
                              .encode());
            break;
          }
        }
    }
    return ops;
}

class EngineParity : public ::testing::TestWithParam<
                         std::tuple<uint64_t, uint32_t>>
{
};

} // namespace

TEST_P(EngineParity, FuzzedStreamsBitIdentical)
{
    const auto [seed, threads] = GetParam();
    const Geometry g = parityGeometry();
    Simulator serial(g);
    Simulator sharded(g, EngineConfig::sharded(threads));
    ASSERT_STREQ(serial.engine().name(), "serial");
    ASSERT_STREQ(sharded.engine().name(), "sharded");

    Rng rng(seed);
    seedState(serial, sharded, rng);
    const std::vector<Word> ops = randomStream(rng, g, 600);

    // Feed both engines the identical stream in identical random-size
    // batches, so segmenting boundaries vary across seeds.
    size_t i = 0;
    while (i < ops.size()) {
        const size_t n =
            std::min<size_t>(1 + rng.word() % 64, ops.size() - i);
        serial.performBatch(ops.data() + i, n);
        sharded.performBatch(ops.data() + i, n);
        i += n;
    }

    EXPECT_TRUE(sameCrossbarState(serial, sharded));
    EXPECT_EQ(serial.stats(), sharded.stats())
        << "serial:\n" << serial.stats().summary()
        << "sharded:\n" << sharded.stats().summary();
    EXPECT_EQ(serial.crossbarMask(), sharded.crossbarMask());
    EXPECT_EQ(serial.rowMask(), sharded.rowMask());
}

TEST_P(EngineParity, ReadsReturnIdenticalValues)
{
    const auto [seed, threads] = GetParam();
    const Geometry g = parityGeometry();
    Simulator serial(g);
    Simulator sharded(g, EngineConfig::sharded(threads));
    Rng rng(seed ^ 0xBEEF);
    seedState(serial, sharded, rng);
    const std::vector<Word> ops = randomStream(rng, g, 200);
    serial.performBatch(ops.data(), ops.size());
    sharded.performBatch(ops.data(), ops.size());
    for (int i = 0; i < 50; ++i) {
        const uint32_t xb = rng.word() % g.numCrossbars;
        const uint32_t row = rng.word() % g.rows;
        const uint32_t slot = rng.word() % g.slots();
        const std::vector<Word> sel = {
            MicroOp::crossbarMask(Range::single(xb)).encode(),
            MicroOp::rowMask(Range::single(row)).encode(),
        };
        serial.performBatch(sel.data(), sel.size());
        sharded.performBatch(sel.data(), sel.size());
        EXPECT_EQ(serial.performRead(enc::read(slot)),
                  sharded.performRead(enc::read(slot)));
    }
}

TEST_P(EngineParity, EngineSwapPreservesState)
{
    const auto [seed, threads] = GetParam();
    const Geometry g = parityGeometry();
    Simulator oracle(g);
    Simulator swapped(g);  // starts serial, swaps mid-stream
    Rng rng(seed * 7 + 5);
    seedState(oracle, swapped, rng);
    const std::vector<Word> ops = randomStream(rng, g, 400);
    const size_t half = ops.size() / 2;

    oracle.performBatch(ops.data(), ops.size());
    swapped.performBatch(ops.data(), half);
    swapped.setEngine(EngineConfig::sharded(threads));
    swapped.performBatch(ops.data() + half, ops.size() - half);

    EXPECT_TRUE(sameCrossbarState(oracle, swapped));
    EXPECT_EQ(oracle.stats(), swapped.stats());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, EngineParity,
    ::testing::Combine(::testing::Values(11ull, 404ull, 90210ull),
                       ::testing::Values(1u, 2u, 8u)));

TEST(EngineParityWork, ShardWorkCountsEveryApplication)
{
    // Under full masks every work op applies to every crossbar, so
    // the merged per-shard diagnostics must equal the architectural
    // op counts scaled by the crossbar count.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4));
    std::vector<Word> ops;
    for (int i = 0; i < 10; ++i) {
        ops.push_back(MicroOp::write(0, 42u + i).encode());
        ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(1, 0),
                                      g.partitions - 1, 1).encode());
    }
    sim.performBatch(ops.data(), ops.size());
    const auto &eng =
        static_cast<const ShardedEngine &>(sim.engine());
    const Stats merged = Stats::merged(eng.shardWork());
    EXPECT_EQ(merged.opCount[size_t(OpClass::Write)],
              10ull * g.numCrossbars);
    EXPECT_EQ(merged.opCount[size_t(OpClass::LogicH)],
              10ull * g.numCrossbars);
    // Contiguous shards over 16 crossbars at 4 threads: 4 each.
    for (const Stats &w : eng.shardWork())
        EXPECT_EQ(w.totalOps(), 20ull * (g.numCrossbars / 4));
}

namespace
{

/** Driver-level program parity: full tensor ops through both engines. */
void
runDriverProgram(Device &dev)
{
    const uint64_t n = 3 * dev.geometry().rows;  // spans 3 crossbars
    std::vector<int32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i * 2654435761u);
        b[i] = static_cast<int32_t>((i + 7) * 40503u);
    }
    Tensor ta = Tensor::fromVector(a, &dev);
    Tensor tb = Tensor::fromVector(b, &dev);
    Tensor sum = ta + tb;
    Tensor prod = ta * tb;
    Tensor sel = where(isZero(ta - ta), sum, prod);
    (void)sel.toIntVector();
}

} // namespace

TEST(EngineParityDriver, TensorProgramsMatchSerial)
{
    const Geometry g = parityGeometry();
    for (uint32_t threads : {1u, 2u, 8u}) {
        Device serialDev(g, Driver::Mode::Parallel,
                         EngineConfig::serial());
        Device shardedDev(g, Driver::Mode::Parallel,
                          EngineConfig::sharded(threads));
        EXPECT_EQ(shardedDev.simulator().engine().threads(),
                  std::min(threads, g.numCrossbars));
        runDriverProgram(serialDev);
        runDriverProgram(shardedDev);
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
            ASSERT_TRUE(serialDev.simulator().crossbar(xb).sameState(
                shardedDev.simulator().crossbar(xb)))
                << "crossbar " << xb << " at " << threads
                << " threads";
        EXPECT_EQ(serialDev.stats(), shardedDev.stats());
    }
}
