/**
 * @file
 * Engine-parity tests (the non-reference backends' correctness
 * contract): for fuzzed valid micro-op streams, directed
 * mask-interleaved segments and driver-level tensor programs, the
 * ShardedEngine (at 1, 2 and 8 threads), the TraceEngine, and all
 * three engines behind the asynchronous pipeline must leave every
 * crossbar in a bit-identical state and produce identical
 * architectural Stats compared to the synchronous op-major
 * SerialEngine. Pipelined cases stream batches through submitBatch
 * (genuinely asynchronous; state compares drain), plus directed tests
 * for flush ordering around performRead/readback and for the
 * report-at-submit error contract.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/sharded_engine.hpp"

using namespace pypim;

namespace
{

Geometry
parityGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;  // enough crossbars for 8 shards to matter
    return g;
}

/**
 * The candidate backends tested against the serial oracle: sharded at
 * the contract's thread counts, the serial trace engine (which
 * exercises decode-once replay and INIT+gate fusion without
 * threading), and pipelined variants of all three engine kinds
 * (asynchronous submit on the caller thread, replay on the consumer).
 */
struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"sharded", EngineConfig::sharded(1)},
        {"sharded", EngineConfig::sharded(2)},
        {"sharded", EngineConfig::sharded(8)},
        {"trace", EngineConfig::trace()},
        {"serial", EngineConfig::serial().withPipeline()},
        {"trace", EngineConfig::trace().withPipeline()},
        {"sharded", EngineConfig::sharded(2).withPipeline()},
        {"sharded", EngineConfig::sharded(8).withPipeline()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 8;

/** Seed both simulators with identical random register contents. */
void
seedState(Simulator &a, Simulator &b, Rng &rng)
{
    const Geometry &g = a.geometry();
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
        for (uint32_t row = 0; row < g.rows; ++row) {
            for (uint32_t slot = 0; slot < g.slots(); ++slot) {
                const uint32_t v = rng.word();
                a.crossbar(xb).writeRow(slot, v, row);
                b.crossbar(xb).writeRow(slot, v, row);
            }
        }
    }
}

::testing::AssertionResult
sameCrossbarState(const Simulator &a, const Simulator &b)
{
    for (uint32_t xb = 0; xb < a.geometry().numCrossbars; ++xb) {
        if (!a.crossbar(xb).sameState(b.crossbar(xb)))
            return ::testing::AssertionFailure()
                   << "crossbar " << xb << " state diverged";
    }
    return ::testing::AssertionSuccess();
}

/** Random valid Range over [0, limit). */
Range
randomRange(Rng &rng, uint32_t limit)
{
    const uint32_t start = rng.word() % limit;
    const uint32_t step = 1 + rng.word() % 8;
    const uint32_t maxN = (limit - 1 - start) / step;
    const uint32_t span = (rng.word() % (maxN + 1)) * step;
    return Range(start, start + span, step);
}

/**
 * Generate a random valid micro-op stream over @p g. Tracks the mask
 * state it sets up so that reads and moves are emitted legally.
 * Interleaves mask ops freely with Write/LogicH/LogicV, including the
 * driver's canonical INIT1+NOR/NOT pairs (the trace builder's fusion
 * candidates) with and without mask changes in between.
 */
std::vector<Word>
randomStream(Rng &rng, const Geometry &g, size_t len)
{
    std::vector<Word> ops;
    ops.reserve(len + 2);
    Range xbMask = Range::all(g.numCrossbars);
    const auto setXbMask = [&](Range r) {
        xbMask = r;
        ops.push_back(MicroOp::crossbarMask(r).encode());
    };
    while (ops.size() < len) {
        switch (rng.word() % 13) {
          case 0:
            setXbMask(randomRange(rng, g.numCrossbars));
            break;
          case 1:
            ops.push_back(
                MicroOp::rowMask(randomRange(rng, g.rows)).encode());
            break;
          case 2:
          case 3:
            ops.push_back(MicroOp::write(rng.word() % g.slots(),
                                         rng.word()).encode());
            break;
          case 4: {
            // INIT a whole slot across all partitions.
            const uint32_t out = g.column(rng.word() % g.slots(), 0);
            ops.push_back(
                MicroOp::logicH(rng.word() % 2 ? Gate::Init1
                                               : Gate::Init0,
                                0, 0, out, g.partitions - 1, 1)
                    .encode());
            break;
          }
          case 5:
          case 6: {
            // Periodic NOR/NOT between distinct slot columns, the
            // driver's canonical full-width pattern.
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          g.column(c, 0),
                                          g.partitions - 1, 1)
                              .encode());
            break;
          }
          case 7: {
            static const Gate kVGates[] = {Gate::Init0, Gate::Init1,
                                           Gate::Not};
            ops.push_back(MicroOp::logicV(kVGates[rng.word() % 3],
                                          rng.word() % g.rows,
                                          rng.word() % g.rows,
                                          rng.word() % g.slots())
                              .encode());
            break;
          }
          case 8: {
            // Read: needs single-crossbar single-row masks.
            setXbMask(Range::single(rng.word() % g.numCrossbars));
            ops.push_back(
                MicroOp::rowMask(Range::single(rng.word() % g.rows))
                    .encode());
            ops.push_back(
                MicroOp::read(rng.word() % g.slots()).encode());
            break;
          }
          case 9: {
            // INIT1 immediately followed by NOR/NOT of the same
            // output slot (the fusion candidate), optionally with a
            // mask op in between (which may or may not defeat
            // fusion — both paths must stay bit-identical).
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const uint32_t out = g.column(c, 0);
            ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, out,
                                          g.partitions - 1, 1)
                              .encode());
            if (rng.word() % 3 == 0)
                ops.push_back(
                    MicroOp::rowMask(randomRange(rng, g.rows))
                        .encode());
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          out, g.partitions - 1, 1)
                              .encode());
            break;
          }
          default: {
            // Move: contiguous source block shifted within bounds.
            const uint32_t n = 1 + rng.word() % (g.numCrossbars / 2);
            const uint32_t src = rng.word() % (g.numCrossbars - n + 1);
            const uint32_t dst = rng.word() % (g.numCrossbars - n + 1);
            setXbMask(Range(src, src + n - 1, 1));
            ops.push_back(MicroOp::move(dst, rng.word() % g.rows,
                                        rng.word() % g.rows,
                                        rng.word() % g.slots(),
                                        rng.word() % g.slots())
                              .encode());
            break;
          }
        }
    }
    return ops;
}

class EngineParity : public ::testing::TestWithParam<
                         std::tuple<uint64_t, size_t>>
{
};

} // namespace

TEST_P(EngineParity, FuzzedStreamsBitIdentical)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = parityGeometry();
    Simulator serial(g);
    Simulator other(g, ec.cfg);
    ASSERT_STREQ(serial.engine().name(), "serial");
    ASSERT_STREQ(other.engine().name(), ec.name);

    Rng rng(seed);
    seedState(serial, other, rng);
    const std::vector<Word> ops = randomStream(rng, g, 600);

    // Feed both engines the identical stream in identical random-size
    // batches, so segmenting boundaries vary across seeds. The
    // candidate streams through submitBatch: for pipelined cases the
    // batches queue up asynchronously (no drain between them), for
    // synchronous cases it is identical to performBatch.
    size_t i = 0;
    while (i < ops.size()) {
        const size_t n =
            std::min<size_t>(1 + rng.word() % 64, ops.size() - i);
        serial.performBatch(ops.data() + i, n);
        other.submitBatch(ops.data() + i, n);
        i += n;
    }
    other.flush();

    EXPECT_TRUE(sameCrossbarState(serial, other));
    EXPECT_EQ(serial.stats(), other.stats())
        << "serial:\n" << serial.stats().summary()
        << ec.name << ":\n" << other.stats().summary();
    EXPECT_EQ(serial.crossbarMask(), other.crossbarMask());
    EXPECT_EQ(serial.rowMask(), other.rowMask());
}

TEST_P(EngineParity, ReadsReturnIdenticalValues)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = parityGeometry();
    Simulator serial(g);
    Simulator other(g, ec.cfg);
    Rng rng(seed ^ 0xBEEF);
    seedState(serial, other, rng);
    const std::vector<Word> ops = randomStream(rng, g, 200);
    serial.performBatch(ops.data(), ops.size());
    other.submitBatch(ops.data(), ops.size());
    for (int i = 0; i < 50; ++i) {
        const uint32_t xb = rng.word() % g.numCrossbars;
        const uint32_t row = rng.word() % g.rows;
        const uint32_t slot = rng.word() % g.slots();
        const std::vector<Word> sel = {
            MicroOp::crossbarMask(Range::single(xb)).encode(),
            MicroOp::rowMask(Range::single(row)).encode(),
        };
        // performRead is an implicit flush, so no explicit drain is
        // needed between the submitted batches and the reads.
        serial.performBatch(sel.data(), sel.size());
        other.submitBatch(sel.data(), sel.size());
        EXPECT_EQ(serial.performRead(enc::read(slot)),
                  other.performRead(enc::read(slot)));
    }
}

TEST_P(EngineParity, EngineSwapPreservesState)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = parityGeometry();
    Simulator oracle(g);
    Simulator swapped(g);  // starts serial, swaps mid-stream
    Rng rng(seed * 7 + 5);
    seedState(oracle, swapped, rng);
    const std::vector<Word> ops = randomStream(rng, g, 400);
    const size_t half = ops.size() / 2;

    oracle.performBatch(ops.data(), ops.size());
    swapped.performBatch(ops.data(), half);
    swapped.setEngine(ec.cfg);
    swapped.performBatch(ops.data() + half, ops.size() - half);

    EXPECT_TRUE(sameCrossbarState(oracle, swapped));
    EXPECT_EQ(oracle.stats(), swapped.stats());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEngines, EngineParity,
    ::testing::Combine(::testing::Values(11ull, 404ull, 90210ull),
                       ::testing::Range<size_t>(0, numEngineCases)));

namespace
{

/**
 * A fuzzed stream in the shape the trace cache requires: both masks
 * re-established before the first work op (self-contained), so
 * Simulator::prepareTrace accepts it.
 */
std::vector<Word>
cacheableStream(Rng &rng, const Geometry &g, size_t len)
{
    std::vector<Word> ops = {
        MicroOp::crossbarMask(Range::all(g.numCrossbars)).encode(),
        MicroOp::rowMask(Range::all(g.rows)).encode(),
    };
    const std::vector<Word> body = randomStream(rng, g, len);
    ops.insert(ops.end(), body.begin(), body.end());
    return ops;
}

} // namespace

class CachedTraceParity : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CachedTraceParity, ReplayBitIdenticalAndWorkConserving)
{
    // The trace-cache contract over fuzzed streams: prepareTrace +
    // submitTrace must equal an uncached submitBatch of the same
    // stream — bit-identical crossbar state, identical architectural
    // stats — at every sharded thread count, and with fusion OFF the
    // applied work must be conserved exactly (same trace, same
    // applications). Fused traces keep state and stats identical
    // while applying at most as much work.
    const uint64_t seed = GetParam();
    const Geometry g = parityGeometry();
    Rng rng(seed);
    Simulator oracle(g);
    {
        Simulator seedSim(g);
        seedState(oracle, seedSim, rng);  // oracle seeded; throwaway
    }
    Rng streamRng(seed ^ 0x5EED);
    const std::vector<Word> ops = cacheableStream(streamRng, g, 400);
    oracle.performBatch(ops.data(), ops.size());

    for (const uint32_t threads : {1u, 2u, 8u}) {
        Simulator uncached(g, EngineConfig::sharded(threads));
        Simulator cached(g, EngineConfig::sharded(threads));
        Simulator fused(g, EngineConfig::sharded(threads));
        {
            Rng r1(seed), r2(seed);
            seedState(uncached, cached, r1);
            Simulator tmp(g);
            seedState(fused, tmp, r2);
        }
        uncached.submitBatch(ops.data(), ops.size());

        const auto plain =
            cached.prepareTrace(ops.data(), ops.size(), false);
        ASSERT_TRUE(plain != nullptr);
        cached.submitTrace(plain);

        const auto opt =
            fused.prepareTrace(ops.data(), ops.size(), true);
        ASSERT_TRUE(opt != nullptr);
        fused.submitTrace(opt);

        for (Simulator *cand : {&cached, &fused}) {
            EXPECT_TRUE(sameCrossbarState(oracle, *cand))
                << "threads=" << threads;
            EXPECT_EQ(oracle.stats(), cand->stats())
                << "threads=" << threads;
            EXPECT_EQ(oracle.crossbarMask(), cand->crossbarMask());
            EXPECT_EQ(oracle.rowMask(), cand->rowMask());
        }

        // Work conservation: without the window pass the cached trace
        // is the same trace the uncached path built internally.
        const Stats wUncached = Stats::merged(
            static_cast<const ShardedEngine &>(uncached.engine())
                .shardWork());
        const Stats wCached = Stats::merged(
            static_cast<const ShardedEngine &>(cached.engine())
                .shardWork());
        const Stats wFused = Stats::merged(
            static_cast<const ShardedEngine &>(fused.engine())
                .shardWork());
        EXPECT_EQ(wUncached, wCached) << "threads=" << threads;
        EXPECT_LE(wFused.totalOps(), wCached.totalOps())
            << "threads=" << threads;
    }

    // Pipelined cached replay: the same shared trace, streamed
    // asynchronously several times, must match the oracle replaying
    // the raw stream the same number of times.
    {
        Simulator piped(g, EngineConfig::sharded(2).withPipeline());
        {
            Rng r(seed);
            Simulator tmp(g);
            seedState(piped, tmp, r);
        }
        const auto trace =
            piped.prepareTrace(ops.data(), ops.size(), true);
        ASSERT_TRUE(trace != nullptr);
        Simulator oracle3(g);
        {
            Rng r(seed);
            Simulator tmp(g);
            seedState(oracle3, tmp, r);
        }
        for (int rep = 0; rep < 3; ++rep) {
            piped.submitTrace(trace);
            oracle3.performBatch(ops.data(), ops.size());
        }
        piped.flush();
        EXPECT_TRUE(sameCrossbarState(oracle3, piped));
        EXPECT_EQ(oracle3.stats(), piped.stats());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedTraceParity,
                         ::testing::Values(7ull, 1234ull, 987654ull));

namespace
{

/**
 * One directed batch interleaving mask ops with Write/LogicH/LogicV
 * inside single segments: strided masks, fusable and fusion-defeated
 * INIT1+NOR pairs, an input-aliases-output NOR (must not fuse), and a
 * barrier in the middle. Deterministic — every engine must reproduce
 * the serial oracle bit for bit.
 */
std::vector<Word>
maskInterleavedBatch(const Geometry &g)
{
    std::vector<Word> ops;
    const auto slotCol = [&](uint32_t s) { return g.column(s, 0); };
    const uint32_t pEnd = g.partitions - 1;

    // Segment 1: strided crossbar mask, full rows.
    ops.push_back(
        MicroOp::crossbarMask(Range(1, g.numCrossbars - 3, 2))
            .encode());
    ops.push_back(MicroOp::write(0, 0xA5A5A5A5u).encode());
    // Fusable INIT1+NOR pair (same masks, same outputs).
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(4),
                                  pEnd, 1).encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, slotCol(0), slotCol(1),
                                  slotCol(4), pEnd, 1).encode());
    // INIT1+NOT pair split by a row-mask change: must NOT fuse, and
    // the NOT must see the new (strided) row mask.
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(5),
                                  pEnd, 1).encode());
    ops.push_back(
        MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode());
    ops.push_back(MicroOp::logicH(Gate::Not, slotCol(2), slotCol(2),
                                  slotCol(5), pEnd, 1).encode());
    // INIT1+NOR whose input aliases the initialised output: the
    // fusion guard must fall back to two sequential passes.
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(6),
                                  pEnd, 1).encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, slotCol(6), slotCol(3),
                                  slotCol(6), pEnd, 1).encode());
    // Vertical logic and a crossbar-mask change mid-segment.
    ops.push_back(
        MicroOp::logicV(Gate::Init1, 0, 3, 7).encode());
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 4, 4))
            .encode());
    ops.push_back(
        MicroOp::logicV(Gate::Not, 3, 5, 7).encode());
    ops.push_back(MicroOp::write(1, 0x0F0F0F0Fu).encode());

    // Barrier: H-tree move splits the batch into two segments.
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode());
    ops.push_back(
        MicroOp::move(g.numCrossbars / 2, 1, 2, 0, 1).encode());

    // Segment 2: INIT1+NOR pair with a re-issued identical crossbar
    // mask in between (fusion must survive no-op mask traffic), then
    // a re-issued identical row mask before a write (row-snapshot
    // reuse inside the trace builder).
    ops.push_back(
        MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode());
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, slotCol(8),
                                  pEnd, 1).encode());
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, slotCol(1), slotCol(2),
                                  slotCol(8), pEnd, 1).encode());
    ops.push_back(
        MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode());
    ops.push_back(MicroOp::write(9, 0xDEADBEEFu).encode());
    return ops;
}

} // namespace

TEST(EngineParityDirected, MaskInterleavedSegments)
{
    const Geometry g = parityGeometry();
    const std::vector<Word> ops = maskInterleavedBatch(g);
    for (size_t c = 0; c < numEngineCases; ++c) {
        const EngineCase &ec = engineCase(c);
        Simulator serial(g);
        Simulator other(g, ec.cfg);
        Rng seedRng(2024);
        seedState(serial, other, seedRng);
        serial.performBatch(ops.data(), ops.size());
        other.performBatch(ops.data(), ops.size());
        EXPECT_TRUE(sameCrossbarState(serial, other)) << ec.name;
        EXPECT_EQ(serial.stats(), other.stats()) << ec.name;
    }
}

TEST(EngineParityWork, ShardWorkCountsEveryApplication)
{
    // Under full masks every work op applies to every crossbar, so
    // the merged per-worker diagnostics must equal the architectural
    // op counts scaled by the crossbar count. The stream alternates
    // Write and INIT1 (no fusion), so applications map 1:1 to ops.
    // Which worker claims which chunk is scheduling-dependent under
    // the work-stealing schedule, so only the merged total is exact.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4));
    std::vector<Word> ops;
    for (int i = 0; i < 10; ++i) {
        ops.push_back(MicroOp::write(0, 42u + i).encode());
        ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(1, 0),
                                      g.partitions - 1, 1).encode());
    }
    sim.performBatch(ops.data(), ops.size());
    const auto &eng =
        static_cast<const ShardedEngine &>(sim.engine());
    const Stats merged = Stats::merged(eng.shardWork());
    EXPECT_EQ(merged.opCount[size_t(OpClass::Write)],
              10ull * g.numCrossbars);
    EXPECT_EQ(merged.opCount[size_t(OpClass::LogicH)],
              10ull * g.numCrossbars);
}

TEST(EngineParityWork, StridedMaskWorkCoversSelectedCrossbarsOnly)
{
    // A strided crossbar mask (the schedule the fixed contiguous
    // blocks balanced worst) must apply each op to exactly the
    // selected crossbars, and the work-stealing claim must account
    // for every application exactly once across the workers.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4));
    const Range strided(1, g.numCrossbars - 3, 2);
    std::vector<Word> ops;
    ops.push_back(MicroOp::crossbarMask(strided).encode());
    for (int i = 0; i < 12; ++i)
        ops.push_back(MicroOp::write(0, 7u * i).encode());
    sim.performBatch(ops.data(), ops.size());
    const auto &eng =
        static_cast<const ShardedEngine &>(sim.engine());
    const Stats merged = Stats::merged(eng.shardWork());
    EXPECT_EQ(merged.opCount[size_t(OpClass::Write)],
              12ull * strided.count());
}

TEST(EngineParityWork, FusedPairsCountBothApplications)
{
    // A fusable INIT1+NOR pair replays as one pass but represents two
    // architectural ops; the work diagnostic must count both, keeping
    // merged work == architectural ops * crossbars.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4));
    std::vector<Word> ops;
    for (int i = 0; i < 8; ++i) {
        ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(4, 0),
                                      g.partitions - 1, 1).encode());
        ops.push_back(MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                      g.column(1, 0), g.column(4, 0),
                                      g.partitions - 1, 1).encode());
    }
    sim.performBatch(ops.data(), ops.size());
    const auto &eng =
        static_cast<const ShardedEngine &>(sim.engine());
    const Stats merged = Stats::merged(eng.shardWork());
    EXPECT_EQ(merged.opCount[size_t(OpClass::LogicH)],
              16ull * g.numCrossbars);
}

namespace
{

/** Driver-level program parity: full tensor ops through both engines. */
void
runDriverProgram(Device &dev)
{
    const uint64_t n = 3 * dev.geometry().rows;  // spans 3 crossbars
    std::vector<int32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i * 2654435761u);
        b[i] = static_cast<int32_t>((i + 7) * 40503u);
    }
    Tensor ta = Tensor::fromVector(a, &dev);
    Tensor tb = Tensor::fromVector(b, &dev);
    Tensor sum = ta + tb;
    Tensor prod = ta * tb;
    Tensor sel = where(isZero(ta - ta), sum, prod);
    (void)sel.toIntVector();
}

} // namespace

TEST(EngineParityDriver, TensorProgramsMatchSerial)
{
    const Geometry g = parityGeometry();
    Device serialDev(g, Driver::Mode::Parallel,
                     EngineConfig::serial());
    runDriverProgram(serialDev);
    for (size_t c = 0; c < numEngineCases; ++c) {
        const EngineCase &ec = engineCase(c);
        Device otherDev(g, Driver::Mode::Parallel, ec.cfg);
        if (ec.cfg.kind == EngineKind::Sharded) {
            EXPECT_EQ(otherDev.simulator().engine().threads(),
                      std::min(ec.cfg.threads, g.numCrossbars));
        }
        EXPECT_EQ(otherDev.simulator().pipelined(), ec.cfg.pipeline);
        runDriverProgram(otherDev);
        // No explicit flush: crossbar() and stats() drain the
        // pipeline themselves, and a Device::flush here would push
        // builder-buffered mask ops the serial oracle never flushed.
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
            ASSERT_TRUE(serialDev.simulator().crossbar(xb).sameState(
                otherDev.simulator().crossbar(xb)))
                << "crossbar " << xb << " under " << ec.name
                << " engine";
        }
        EXPECT_EQ(serialDev.stats(), otherDev.stats()) << ec.name;
    }
}

namespace
{

/**
 * Directed LogicV-run batch: consecutive vertical ops on the same
 * intra-partition index (the column-major run-replay path), broken up
 * by index changes and a crossbar-mask change mid-run (ops not
 * selecting a crossbar must be skipped without disturbing run order).
 */
std::vector<Word>
logicVRunBatch(const Geometry &g)
{
    std::vector<Word> ops;
    // Seed two source rows, then a long Init1/Not chain on slot 3.
    ops.push_back(MicroOp::logicV(Gate::Init1, 0, 1, 3).encode());
    ops.push_back(MicroOp::logicV(Gate::Init0, 0, 2, 3).encode());
    for (uint32_t r = 3; r < 12; ++r)
        ops.push_back(
            MicroOp::logicV(Gate::Not, r - 2, r, 3).encode());
    // Mask change mid-run: the tail applies to half the crossbars.
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 2, 2))
            .encode());
    for (uint32_t r = 12; r < 20; ++r)
        ops.push_back(
            MicroOp::logicV(Gate::Not, r - 1, r, 3).encode());
    // Index change splits the run.
    ops.push_back(MicroOp::logicV(Gate::Init1, 0, 5, 4).encode());
    ops.push_back(MicroOp::logicV(Gate::Not, 5, 6, 4).encode());
    ops.push_back(MicroOp::logicV(Gate::Not, 6, 7, 3).encode());
    return ops;
}

} // namespace

TEST(EngineParityDirected, LogicVRunsBitIdentical)
{
    const Geometry g = parityGeometry();
    const std::vector<Word> ops = logicVRunBatch(g);
    for (size_t c = 0; c < numEngineCases; ++c) {
        const EngineCase &ec = engineCase(c);
        Simulator serial(g);
        Simulator other(g, ec.cfg);
        Rng seedRng(77);
        seedState(serial, other, seedRng);
        serial.performBatch(ops.data(), ops.size());
        other.submitBatch(ops.data(), ops.size());
        other.flush();
        EXPECT_TRUE(sameCrossbarState(serial, other)) << ec.name;
        EXPECT_EQ(serial.stats(), other.stats()) << ec.name;
    }
}

TEST(EnginePipelineFlush, ReadDrainsAllSubmittedBatches)
{
    // Flush ordering around performRead: several asynchronously
    // submitted batches write successive values; a read without any
    // explicit flush must observe the last one.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(4).withPipeline());
    for (uint32_t v = 1; v <= 8; ++v) {
        const std::vector<Word> batch = {
            MicroOp::write(2, 1000u + v).encode(),
        };
        sim.submitBatch(batch.data(), batch.size());
    }
    const std::vector<Word> sel = {
        MicroOp::crossbarMask(Range::single(1)).encode(),
        MicroOp::rowMask(Range::single(3)).encode(),
    };
    sim.submitBatch(sel.data(), sel.size());
    EXPECT_EQ(sim.performRead(enc::read(2)), 1008u);
    // Stats queries drain too and cover every submitted batch.
    EXPECT_EQ(sim.stats().opCount[size_t(OpClass::Write)], 8u);
}

TEST(EnginePipelineFlush, TensorReadbackDrainsPipeline)
{
    // Host readback (pim/io.cpp) goes through performRead, which is
    // an implicit flush: a pipelined device must return the same
    // vectors as a synchronous serial one with no explicit flush.
    const Geometry g = parityGeometry();
    Device sync(g, Driver::Mode::Parallel, EngineConfig::serial());
    Device piped(g, Driver::Mode::Parallel,
                 EngineConfig::sharded(4).withPipeline());
    for (Device *dev : {&sync, &piped}) {
        const uint64_t n = 2 * g.rows;
        std::vector<int32_t> a(n), b(n);
        for (uint64_t i = 0; i < n; ++i) {
            a[i] = static_cast<int32_t>(i * 7 + 1);
            b[i] = static_cast<int32_t>(i * 3 + 2);
        }
        Tensor ta = Tensor::fromVector(a, dev);
        Tensor tb = Tensor::fromVector(b, dev);
        Tensor sum = ta + tb;
        const std::vector<int32_t> out = sum.toIntVector();
        for (uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], a[i] + b[i]) << "element " << i;
    }
}

TEST(EnginePipelineErrors, MalformedOpReportedAtSubmit)
{
    // The pipelined path validates in the pre-pass on the caller
    // thread: a malformed op must throw at the submitBatch that
    // contained it (not at a later flush), and nothing from that
    // batch — not even its valid prefix — may touch a crossbar.
    const Geometry g = parityGeometry();
    Simulator sim(g, EngineConfig::sharded(2).withPipeline());
    Simulator before(g);
    Rng rng(5150);
    seedState(sim, before, rng);

    const std::vector<Word> good = {
        MicroOp::write(1, 0x1234u).encode(),
    };
    sim.submitBatch(good.data(), good.size());
    before.performBatch(good.data(), good.size());

    const std::vector<Word> bad = {
        MicroOp::write(2, 0x5678u).encode(),  // valid prefix
        MicroOp::write(g.slots(), 0u).encode(),  // slot out of range
    };
    EXPECT_THROW(sim.submitBatch(bad.data(), bad.size()), Error);

    // The earlier good batch applied; the bad batch left no trace.
    EXPECT_TRUE(sameCrossbarState(sim, before));
    // The pipeline stays usable after the rejected submit. The
    // architectural counters include the rejected batch's valid
    // prefix — exactly like the synchronous trace engines, whose
    // pre-pass also records ops up to the point of failure.
    sim.submitBatch(good.data(), good.size());
    sim.flush();
    EXPECT_EQ(sim.stats().opCount[size_t(OpClass::Write)], 3u);
}
