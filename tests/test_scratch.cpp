/**
 * @file
 * Scratch allocator tests: lane/bit allocation, partition placement
 * constraints, exhaustion, reset.
 */
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/error.hpp"
#include "driver/scratch.hpp"

using namespace pypim;

namespace
{

class ScratchTest : public ::testing::Test
{
  protected:
    ScratchTest() : geo(testGeometry()), pool(geo) {}

    uint32_t partOf(uint32_t col) { return col / geo.partitionWidth(); }
    uint32_t slotOf(uint32_t col) { return col % geo.partitionWidth(); }

    Geometry geo;
    ScratchPool pool;
};

} // namespace

TEST_F(ScratchTest, LanesComeFromScratchRegion)
{
    const uint32_t lane = pool.allocLane();
    EXPECT_GE(lane, geo.userRegs);
    EXPECT_LT(lane, geo.slots());
    pool.freeLane(lane);
    EXPECT_EQ(pool.slotsInUse(), 0u);
}

TEST_F(ScratchTest, LanesAreDistinct)
{
    std::vector<uint32_t> lanes;
    for (uint32_t i = 0; i < geo.scratchSlots(); ++i)
        lanes.push_back(pool.allocLane());
    std::sort(lanes.begin(), lanes.end());
    EXPECT_EQ(std::unique(lanes.begin(), lanes.end()), lanes.end());
}

TEST_F(ScratchTest, ExhaustionPanics)
{
    for (uint32_t i = 0; i < geo.scratchSlots(); ++i)
        pool.allocLane();
    EXPECT_THROW(pool.allocLane(), InternalError);
}

TEST_F(ScratchTest, BitAllocationInRequestedPartition)
{
    const uint32_t c = pool.allocBitIn(7);
    EXPECT_EQ(partOf(c), 7u);
    EXPECT_GE(slotOf(c), geo.userRegs);
}

TEST_F(ScratchTest, BitsInSamePartitionShareASlotLane)
{
    const uint32_t a = pool.allocBitIn(3);
    const uint32_t b = pool.allocBitIn(4);
    // Different partitions of the same backing slot: only 1 slot used.
    EXPECT_EQ(slotOf(a), slotOf(b));
    EXPECT_EQ(pool.slotsInUse(), 1u);
    const uint32_t c = pool.allocBitIn(3);
    // Partition 3 already used in that slot: new backing slot.
    EXPECT_NE(slotOf(c), slotOf(a));
    EXPECT_EQ(pool.slotsInUse(), 2u);
}

TEST_F(ScratchTest, AllocBitOutsideAvoidsOpenInterval)
{
    for (int i = 0; i < 200; ++i) {
        const uint32_t c = pool.allocBitOutside(5, 20);
        const uint32_t p = partOf(c);
        EXPECT_TRUE(p <= 5 || p >= 20) << "partition " << p;
    }
}

TEST_F(ScratchTest, FreeBitReleasesSlotWhenEmpty)
{
    const uint32_t a = pool.allocBitIn(0);
    const uint32_t b = pool.allocBitIn(1);
    EXPECT_EQ(pool.slotsInUse(), 1u);
    pool.freeBit(a);
    EXPECT_EQ(pool.slotsInUse(), 1u);
    pool.freeBit(b);
    EXPECT_EQ(pool.slotsInUse(), 0u);
}

TEST_F(ScratchTest, DoubleFreePanics)
{
    const uint32_t a = pool.allocBitIn(0);
    pool.freeBit(a);
    EXPECT_THROW(pool.freeBit(a), InternalError);
}

TEST_F(ScratchTest, MixedLaneAndBitSlotsDoNotCollide)
{
    const uint32_t lane = pool.allocLane();
    const uint32_t bit = pool.allocBitIn(0);
    EXPECT_NE(lane, slotOf(bit));
    EXPECT_THROW(pool.freeBit(geo.column(0, lane)), InternalError);
    EXPECT_THROW(pool.freeLane(slotOf(bit)), InternalError);
}

TEST_F(ScratchTest, ResetReleasesEverything)
{
    pool.allocLane();
    pool.allocBitIn(2);
    pool.allocBitOutside(0, 0);
    pool.reset();
    EXPECT_EQ(pool.slotsInUse(), 0u);
    // All slots allocatable again.
    for (uint32_t i = 0; i < geo.scratchSlots(); ++i)
        pool.allocLane();
}

TEST_F(ScratchTest, HighWaterTracksPeak)
{
    const uint32_t a = pool.allocLane();
    const uint32_t b = pool.allocLane();
    pool.freeLane(a);
    pool.freeLane(b);
    EXPECT_EQ(pool.highWater(), 2u);
    EXPECT_EQ(pool.slotsInUse(), 0u);
}
