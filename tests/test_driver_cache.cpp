/**
 * @file
 * Driver stream-cache tests: replayed streams must be byte-identical
 * to fresh translations, produce identical simulator state, keep the
 * mask bookkeeping consistent, and respect mode/partition switches in
 * the signature. Plus failure-injection tests for malformed
 * micro-operation streams fed directly to the simulator.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pim/pypim.hpp"
#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::DriverFixture;

namespace
{

class StreamCacheTest : public DriverFixture
{
  protected:
    StreamCacheTest() : DriverFixture(Driver::Mode::Serial) {}
};

} // namespace

TEST_F(StreamCacheTest, ReplayMatchesFreshTranslation)
{
    std::vector<uint32_t> va(threads()), vb(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        va[i] = rng.word();
        vb[i] = rng.word();
    }
    loadReg(0, va);
    loadReg(1, vb);
    // First execution records; second replays from the cache.
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    const auto first = readReg(2);
    EXPECT_EQ(drv.streamCacheSize(), 1u);
    // Change the data: the replayed stream must compute on new values.
    for (auto &x : va)
        x ^= 0xA5A5A5A5u;
    loadReg(0, va);
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.streamCacheSize(), 1u) << "same signature must hit";
    const auto second = readReg(2);
    for (uint32_t i = 0; i < threads(); ++i)
        ASSERT_EQ(second[i], va[i] * vb[i]) << "thread " << i;
    (void)first;
}

TEST_F(StreamCacheTest, CachedAndUncachedStreamsAgree)
{
    std::vector<uint32_t> va(threads()), vb(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        va[i] = rng.word();
        vb[i] = rng.word() | 1;
    }
    loadReg(0, va);
    loadReg(1, vb);
    run(ROp::Div, DType::Int32, 2, 0, 1);   // cached path
    drv.setStreamCacheEnabled(false);
    run(ROp::Div, DType::Int32, 3, 0, 1);   // fresh path
    EXPECT_EQ(readReg(2), readReg(3));
}

TEST_F(StreamCacheTest, DistinctSignaturesDistinctEntries)
{
    loadReg(0, std::vector<uint32_t>(threads(), 5));
    loadReg(1, std::vector<uint32_t>(threads(), 3));
    run(ROp::Add, DType::Int32, 2, 0, 1);
    run(ROp::Add, DType::Int32, 3, 0, 1);   // different rd
    run(ROp::Sub, DType::Int32, 4, 0, 1);   // different op
    RTypeInstr in;
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::single(1);            // different masks
    in.rows = Range::all(geo.rows);
    drv.execute(in);
    EXPECT_EQ(drv.streamCacheSize(), 4u);
}

TEST_F(StreamCacheTest, ModeChangesMissTheCache)
{
    loadReg(0, std::vector<uint32_t>(threads(), 1000));
    loadReg(1, std::vector<uint32_t>(threads(), 999));
    run(ROp::Add, DType::Int32, 2, 0, 1);
    drv.setMode(Driver::Mode::Parallel);
    run(ROp::Add, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.streamCacheSize(), 2u);
    EXPECT_EQ(readReg(2),
              std::vector<uint32_t>(threads(), 1999u));
}

TEST_F(StreamCacheTest, MaskStateConsistentAfterReplay)
{
    loadReg(0, std::vector<uint32_t>(threads(), 2));
    loadReg(1, std::vector<uint32_t>(threads(), 3));
    // Masked instruction, twice (second replays), then a read that
    // depends on correct mask bookkeeping in the builder.
    RTypeInstr in;
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::single(2);
    in.rows = Range(4, 20, 8);
    drv.execute(in);
    drv.execute(in);
    ReadInstr rd;
    rd.reg = 2;
    rd.warp = 2;
    rd.row = 12;
    EXPECT_EQ(drv.execute(rd), 5u);
    // Unselected thread untouched.
    rd.row = 5;
    EXPECT_EQ(drv.execute(rd), 0u);
    // A subsequent full-mask instruction must re-emit masks correctly.
    run(ROp::Add, DType::Int32, 3, 0, 1);
    EXPECT_EQ(readReg(3), std::vector<uint32_t>(threads(), 5u));
}

TEST_F(StreamCacheTest, TraceCacheHitsReplayPrebuiltTraces)
{
    // The trace cache is on by default: the first execution of a
    // signature builds (one miss), every further execution submits
    // the shared pre-built handle (hits) — and still computes on the
    // live data.
    std::vector<uint32_t> va(threads()), vb(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        va[i] = rng.word();
        vb[i] = rng.word();
    }
    loadReg(0, va);
    loadReg(1, vb);
    ASSERT_TRUE(drv.traceCacheEnabled());
    run(ROp::Add, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.stats().traceCacheMisses, 1u);
    EXPECT_EQ(drv.stats().traceCacheHits, 0u);
    for (auto &x : va)
        x = ~x;
    loadReg(0, va);
    run(ROp::Add, DType::Int32, 2, 0, 1);
    run(ROp::Add, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.stats().traceCacheMisses, 1u);
    EXPECT_EQ(drv.stats().traceCacheHits, 2u);
    const auto out = readReg(2);
    for (uint32_t i = 0; i < threads(); ++i)
        ASSERT_EQ(out[i], va[i] + vb[i]) << "thread " << i;
}

TEST_F(StreamCacheTest, TraceCacheDisabledFallsBackToStreams)
{
    drv.setTraceCacheEnabled(false);
    loadReg(0, std::vector<uint32_t>(threads(), 21));
    loadReg(1, std::vector<uint32_t>(threads(), 2));
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.stats().traceCacheMisses, 0u);
    EXPECT_EQ(drv.stats().traceCacheHits, 0u);
    EXPECT_EQ(readReg(2), std::vector<uint32_t>(threads(), 42u));
    // Enabling later builds the trace lazily on the next hit.
    drv.setTraceCacheEnabled(true);
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.stats().traceCacheMisses, 1u);
    EXPECT_EQ(readReg(2), std::vector<uint32_t>(threads(), 42u));
}

TEST_F(StreamCacheTest, FusionToggleRebuildsTraces)
{
    loadReg(0, std::vector<uint32_t>(threads(), 1000));
    loadReg(1, std::vector<uint32_t>(threads(), 2000));
    run(ROp::Add, DType::Int32, 2, 0, 1);
    const uint64_t missesBefore = drv.stats().traceCacheMisses;
    EXPECT_EQ(missesBefore, 1u);
    drv.setTraceFusionEnabled(false);
    run(ROp::Add, DType::Int32, 2, 0, 1);  // handle dropped: rebuild
    EXPECT_EQ(drv.stats().traceCacheMisses, 2u);
    EXPECT_EQ(drv.stats().instructions, 2u);
    EXPECT_EQ(readReg(2), std::vector<uint32_t>(threads(), 3000u));
}

TEST(TraceCacheDevice, EngineConfigKnobReachesDriver)
{
    const Geometry g = testGeometry();
    EngineConfig off;
    off.traceCache = false;
    Device devOff(g, Driver::Mode::Serial, off);
    EXPECT_FALSE(devOff.driver().traceCacheEnabled());
    Device devOn(g, Driver::Mode::Serial, EngineConfig::serial());
    EXPECT_TRUE(devOn.driver().traceCacheEnabled());
}

TEST(TraceCacheDevice, PipelinedCachedRepliesMatchSynchronousSerial)
{
    // Warm-cache replay through the asynchronous pipeline: repeated
    // instructions stream shared trace handles through the hand-off
    // queue; results must match the synchronous serial device.
    const Geometry g = testGeometry();
    Device sync(g, Driver::Mode::Parallel, EngineConfig::serial());
    Device piped(g, Driver::Mode::Parallel,
                 EngineConfig::sharded(2).withPipeline());
    const uint64_t n = g.rows * g.numCrossbars;
    std::vector<int32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(i * 2654435761u);
        b[i] = static_cast<int32_t>(i * 40503u + 9);
    }
    for (Device *dev : {&sync, &piped}) {
        Tensor ta = Tensor::fromVector(a, dev);
        Tensor tb = Tensor::fromVector(b, dev);
        Tensor s = ta + tb;
        for (int rep = 0; rep < 4; ++rep)
            s = s * tb;  // same signature: warm trace-cache hits
        const std::vector<int32_t> out = s.toIntVector();
        std::vector<int32_t> expect(n);
        for (uint64_t i = 0; i < n; ++i) {
            int32_t v = a[i] + b[i];
            for (int rep = 0; rep < 4; ++rep)
                v = static_cast<int32_t>(
                    static_cast<int64_t>(v) * b[i]);
            expect[i] = v;
        }
        EXPECT_EQ(out, expect);
    }
}

TEST(TraceCacheDevice, PipelinedWarmHitsGoThroughSharedHandles)
{
    const Geometry g = testGeometry();
    Device dev(g, Driver::Mode::Parallel,
               EngineConfig::sharded(2).withPipeline());
    RTypeInstr in;
    in.op = ROp::Mul;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::all(g.numCrossbars);
    in.rows = Range::all(g.rows);
    for (int i = 0; i < 5; ++i)
        dev.driver().execute(in);
    dev.flush();
    EXPECT_EQ(dev.driver().stats().traceCacheMisses, 1u);
    EXPECT_EQ(dev.driver().stats().traceCacheHits, 4u);
}

TEST(TraceCacheDevice, ClearMidFlightKeepsQueuedReplaysAlive)
{
    // The refcounting contract: clearing the driver's cache while
    // pipelined shared-trace replays are still queued must not free
    // the traces under the consumer — results stay correct, and the
    // next execution re-records (a fresh miss).
    const Geometry g = testGeometry();
    Device piped(g, Driver::Mode::Serial,
                 EngineConfig::sharded(2).withPipeline());
    Device oracle(g, Driver::Mode::Serial, EngineConfig::serial());
    const uint64_t n = g.rows * g.numCrossbars;
    std::vector<uint32_t> a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = static_cast<uint32_t>(i * 2654435761u);
        b[i] = static_cast<uint32_t>(i * 40503u + 9);
    }
    RTypeInstr in;
    in.op = ROp::Mul;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::all(g.numCrossbars);
    in.rows = Range::all(g.rows);
    for (Device *dev : {&piped, &oracle}) {
        for (uint32_t w = 0; w < g.numCrossbars; ++w)
            for (uint32_t r = 0; r < g.rows; ++r) {
                dev->simulator().crossbar(w).writeRow(
                    0, a[w * g.rows + r], r);
                dev->simulator().crossbar(w).writeRow(
                    1, b[w * g.rows + r], r);
            }
    }
    // Queue several warm hits asynchronously, then clear the cache
    // with the replays (potentially) still in flight — no flush.
    for (int i = 0; i < 6; ++i)
        piped.driver().execute(in);
    piped.driver().clearStreamCache();
    EXPECT_EQ(piped.driver().streamCacheSize(), 0u);
    oracle.driver().execute(in);
    for (uint32_t w = 0; w < g.numCrossbars; ++w)
        ASSERT_TRUE(piped.simulator().crossbar(w).sameState(
            oracle.simulator().crossbar(w)))
            << "crossbar " << w;
    // Next execution of the same signature re-records: a fresh miss.
    const uint64_t misses = piped.driver().stats().traceCacheMisses;
    piped.driver().execute(in);
    piped.flush();
    EXPECT_EQ(piped.driver().stats().traceCacheMisses, misses + 1);
}

namespace
{

class FailureInjection : public pypim::test::PimFixture
{
};

} // namespace

TEST_F(FailureInjection, ForgottenInitComputesDeviceAccurateGarbage)
{
    // Stateful logic can only switch 1 -> 0: NOR into a stale-0 cell
    // must stay 0 even when the true NOR value is 1.
    const uint32_t a = builder.pool().allocBitIn(0);
    const uint32_t b = builder.pool().allocBitIn(1);
    const uint32_t out = builder.pool().allocBitIn(2);
    sim.crossbar(0).setBit(0, a, false);
    sim.crossbar(0).setBit(0, b, false);
    sim.crossbar(0).setBit(0, out, false);  // stale 0, no INIT
    builder.norInto(a, b, out, /*init=*/false);
    builder.flush();
    EXPECT_FALSE(peekCell(0, 0, out))
        << "missing INIT must yield device-accurate garbage, not NOR";
}

TEST_F(FailureInjection, MalformedPartitionPatternsPanic)
{
    const uint32_t pw = geo.partitionWidth();
    // Inner input outside the gate span.
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    EXPECT_THROW(sim.perform(MicroOp::logicH(Gate::Nor, 1 * pw, 9 * pw,
                                             5 * pw, 5, 0)),
                 InternalError);
    // Overlapping repetition.
    EXPECT_THROW(sim.perform(MicroOp::logicH(Gate::Nor, 0, 2 * pw,
                                             2 * pw, 30, 2)),
                 InternalError);
    // Repetition leaving the partition range.
    EXPECT_THROW(sim.perform(MicroOp::logicH(Gate::Nor, 0, 1, 2,
                                             40, 1)),
                 InternalError);
}

TEST_F(FailureInjection, IllegalMaskStatesAreUserErrors)
{
    // Reads with wide masks, out-of-range masks, bad move steps: all
    // fatal (user-class) errors, not internal panics.
    sim.perform(MicroOp::crossbarMask(Range::all(geo.numCrossbars)));
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    EXPECT_THROW(sim.read(MicroOp::read(0)), Error);
    EXPECT_THROW(sim.perform(MicroOp::rowMask(
                     Range(0, geo.rows, 1))), Error);
    EXPECT_THROW(sim.perform(MicroOp::crossbarMask(
                     Range(0, geo.numCrossbars, 1))), Error);
    sim.perform(MicroOp::crossbarMask(Range(0, 3, 3)));
    EXPECT_THROW(sim.perform(MicroOp::move(1, 0, 0, 0, 0)), Error);
}

TEST_F(FailureInjection, SimulatorStateSurvivesRejectedOps)
{
    pokeWord(1, 3, 0, 0xCAFEF00D);
    try {
        sim.perform(MicroOp::logicH(Gate::Nor, 0, 300, 150, 4, 0));
    } catch (const InternalError &) {
    }
    EXPECT_EQ(peekWord(1, 3, 0), 0xCAFEF00Du)
        << "rejected op must not corrupt memory";
    // The simulator still works afterwards.
    sim.perform(MicroOp::crossbarMask(Range::single(1)));
    sim.perform(MicroOp::rowMask(Range::single(3)));
    EXPECT_EQ(sim.read(MicroOp::read(0)), 0xCAFEF00Du);
}
