/**
 * @file
 * Driver stream-cache tests: replayed streams must be byte-identical
 * to fresh translations, produce identical simulator state, keep the
 * mask bookkeeping consistent, and respect mode/partition switches in
 * the signature. Plus failure-injection tests for malformed
 * micro-operation streams fed directly to the simulator.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::DriverFixture;

namespace
{

class StreamCacheTest : public DriverFixture
{
  protected:
    StreamCacheTest() : DriverFixture(Driver::Mode::Serial) {}
};

} // namespace

TEST_F(StreamCacheTest, ReplayMatchesFreshTranslation)
{
    std::vector<uint32_t> va(threads()), vb(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        va[i] = rng.word();
        vb[i] = rng.word();
    }
    loadReg(0, va);
    loadReg(1, vb);
    // First execution records; second replays from the cache.
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    const auto first = readReg(2);
    EXPECT_EQ(drv.streamCacheSize(), 1u);
    // Change the data: the replayed stream must compute on new values.
    for (auto &x : va)
        x ^= 0xA5A5A5A5u;
    loadReg(0, va);
    run(ROp::Mul, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.streamCacheSize(), 1u) << "same signature must hit";
    const auto second = readReg(2);
    for (uint32_t i = 0; i < threads(); ++i)
        ASSERT_EQ(second[i], va[i] * vb[i]) << "thread " << i;
    (void)first;
}

TEST_F(StreamCacheTest, CachedAndUncachedStreamsAgree)
{
    std::vector<uint32_t> va(threads()), vb(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        va[i] = rng.word();
        vb[i] = rng.word() | 1;
    }
    loadReg(0, va);
    loadReg(1, vb);
    run(ROp::Div, DType::Int32, 2, 0, 1);   // cached path
    drv.setStreamCacheEnabled(false);
    run(ROp::Div, DType::Int32, 3, 0, 1);   // fresh path
    EXPECT_EQ(readReg(2), readReg(3));
}

TEST_F(StreamCacheTest, DistinctSignaturesDistinctEntries)
{
    loadReg(0, std::vector<uint32_t>(threads(), 5));
    loadReg(1, std::vector<uint32_t>(threads(), 3));
    run(ROp::Add, DType::Int32, 2, 0, 1);
    run(ROp::Add, DType::Int32, 3, 0, 1);   // different rd
    run(ROp::Sub, DType::Int32, 4, 0, 1);   // different op
    RTypeInstr in;
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::single(1);            // different masks
    in.rows = Range::all(geo.rows);
    drv.execute(in);
    EXPECT_EQ(drv.streamCacheSize(), 4u);
}

TEST_F(StreamCacheTest, ModeChangesMissTheCache)
{
    loadReg(0, std::vector<uint32_t>(threads(), 1000));
    loadReg(1, std::vector<uint32_t>(threads(), 999));
    run(ROp::Add, DType::Int32, 2, 0, 1);
    drv.setMode(Driver::Mode::Parallel);
    run(ROp::Add, DType::Int32, 2, 0, 1);
    EXPECT_EQ(drv.streamCacheSize(), 2u);
    EXPECT_EQ(readReg(2),
              std::vector<uint32_t>(threads(), 1999u));
}

TEST_F(StreamCacheTest, MaskStateConsistentAfterReplay)
{
    loadReg(0, std::vector<uint32_t>(threads(), 2));
    loadReg(1, std::vector<uint32_t>(threads(), 3));
    // Masked instruction, twice (second replays), then a read that
    // depends on correct mask bookkeeping in the builder.
    RTypeInstr in;
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::single(2);
    in.rows = Range(4, 20, 8);
    drv.execute(in);
    drv.execute(in);
    ReadInstr rd;
    rd.reg = 2;
    rd.warp = 2;
    rd.row = 12;
    EXPECT_EQ(drv.execute(rd), 5u);
    // Unselected thread untouched.
    rd.row = 5;
    EXPECT_EQ(drv.execute(rd), 0u);
    // A subsequent full-mask instruction must re-emit masks correctly.
    run(ROp::Add, DType::Int32, 3, 0, 1);
    EXPECT_EQ(readReg(3), std::vector<uint32_t>(threads(), 5u));
}

namespace
{

class FailureInjection : public pypim::test::PimFixture
{
};

} // namespace

TEST_F(FailureInjection, ForgottenInitComputesDeviceAccurateGarbage)
{
    // Stateful logic can only switch 1 -> 0: NOR into a stale-0 cell
    // must stay 0 even when the true NOR value is 1.
    const uint32_t a = builder.pool().allocBitIn(0);
    const uint32_t b = builder.pool().allocBitIn(1);
    const uint32_t out = builder.pool().allocBitIn(2);
    sim.crossbar(0).setBit(0, a, false);
    sim.crossbar(0).setBit(0, b, false);
    sim.crossbar(0).setBit(0, out, false);  // stale 0, no INIT
    builder.norInto(a, b, out, /*init=*/false);
    builder.flush();
    EXPECT_FALSE(peekCell(0, 0, out))
        << "missing INIT must yield device-accurate garbage, not NOR";
}

TEST_F(FailureInjection, MalformedPartitionPatternsPanic)
{
    const uint32_t pw = geo.partitionWidth();
    // Inner input outside the gate span.
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    EXPECT_THROW(sim.perform(MicroOp::logicH(Gate::Nor, 1 * pw, 9 * pw,
                                             5 * pw, 5, 0)),
                 InternalError);
    // Overlapping repetition.
    EXPECT_THROW(sim.perform(MicroOp::logicH(Gate::Nor, 0, 2 * pw,
                                             2 * pw, 30, 2)),
                 InternalError);
    // Repetition leaving the partition range.
    EXPECT_THROW(sim.perform(MicroOp::logicH(Gate::Nor, 0, 1, 2,
                                             40, 1)),
                 InternalError);
}

TEST_F(FailureInjection, IllegalMaskStatesAreUserErrors)
{
    // Reads with wide masks, out-of-range masks, bad move steps: all
    // fatal (user-class) errors, not internal panics.
    sim.perform(MicroOp::crossbarMask(Range::all(geo.numCrossbars)));
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    EXPECT_THROW(sim.read(MicroOp::read(0)), Error);
    EXPECT_THROW(sim.perform(MicroOp::rowMask(
                     Range(0, geo.rows, 1))), Error);
    EXPECT_THROW(sim.perform(MicroOp::crossbarMask(
                     Range(0, geo.numCrossbars, 1))), Error);
    sim.perform(MicroOp::crossbarMask(Range(0, 3, 3)));
    EXPECT_THROW(sim.perform(MicroOp::move(1, 0, 0, 0, 0)), Error);
}

TEST_F(FailureInjection, SimulatorStateSurvivesRejectedOps)
{
    pokeWord(1, 3, 0, 0xCAFEF00D);
    try {
        sim.perform(MicroOp::logicH(Gate::Nor, 0, 300, 150, 4, 0));
    } catch (const InternalError &) {
    }
    EXPECT_EQ(peekWord(1, 3, 0), 0xCAFEF00Du)
        << "rejected op must not corrupt memory";
    // The simulator still works afterwards.
    sim.perform(MicroOp::crossbarMask(Range::single(1)));
    sim.perform(MicroOp::rowMask(Range::single(3)));
    EXPECT_EQ(sim.read(MicroOp::read(0)), 0xCAFEF00Du);
}
