/**
 * @file
 * Compiled replay program tests (sim/replay_program.hpp).
 *
 * The compiled path must be an invisible optimisation: for any
 * self-contained stream, a trace prepared with
 * EngineConfig::compiledReplay replays BIT-IDENTICALLY to the
 * interpreter — same crossbar state, same architectural Stats, same
 * applied-work totals in the sharded engine's diagnostics — across
 * every engine, sync and pipelined, at 1/2/4 devices and on both
 * storage representations. The fuzzed suite pins that equivalence
 * against the serial raw-stream oracle; the directed tests pin the
 * COMPILER's decisions — when LogicH ops may and may not merge into
 * one pass (mask change, section capacity, stateful-gate aliasing),
 * how stripes and LogicV runs chunk, and when the all-ones mask
 * specialisation may fire.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/device_group.hpp"
#include "sim/replay_program.hpp"
#include "sim/sharded_engine.hpp"

using namespace pypim;

namespace
{

Geometry
fuzzGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;
    return g;
}

struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"serial", EngineConfig::serial()},
        {"trace", EngineConfig::trace()},
        {"sharded", EngineConfig::sharded(2)},
        {"serial+pipe", EngineConfig::serial().withPipeline()},
        {"trace+pipe", EngineConfig::trace().withPipeline()},
        {"sharded+pipe", EngineConfig::sharded(2).withPipeline()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 6;

/** Random valid Range over [0, limit). */
Range
randomRange(Rng &rng, uint32_t limit)
{
    const uint32_t start = rng.word() % limit;
    const uint32_t step = 1 + rng.word() % 8;
    const uint32_t maxN = (limit - 1 - start) / step;
    const uint32_t span = (rng.word() % (maxN + 1)) * step;
    return Range(start, start + span, step);
}

/**
 * Random SELF-CONTAINED stream (both masks lead, no Moves — the shape
 * prepareTrace caches on a device group). Biased towards runs of
 * LogicH under a stable mask so pass merging actually fires, with a
 * mix of full, partial and re-issued-identical row masks to cross the
 * specialisation boundary, plus stripes of Writes and LogicV runs.
 */
std::vector<Word>
randomTraceStream(Rng &rng, const Geometry &g, size_t len)
{
    std::vector<Word> ops;
    ops.reserve(len + 2);
    ops.push_back(
        MicroOp::crossbarMask(randomRange(rng, g.numCrossbars))
            .encode());
    ops.push_back(
        MicroOp::rowMask(Range(0, g.rows - 1, 1)).encode());
    while (ops.size() < len) {
        switch (rng.word() % 12) {
          case 0:
            ops.push_back(
                MicroOp::crossbarMask(randomRange(rng, g.numCrossbars))
                    .encode());
            break;
          case 1:
            // Full : partial : random = the mask population the
            // compiler's maskFull flag partitions.
            switch (rng.word() % 3) {
              case 0:
                ops.push_back(
                    MicroOp::rowMask(Range(0, g.rows - 1, 1))
                        .encode());
                break;
              case 1:
                ops.push_back(
                    MicroOp::rowMask(Range(0, g.rows / 2 - 1, 1))
                        .encode());
                break;
              default:
                ops.push_back(
                    MicroOp::rowMask(randomRange(rng, g.rows))
                        .encode());
                break;
            }
            break;
          case 2:
          case 3: {
            // Short Write bursts over distinct slots: stripe fodder.
            const uint32_t n = 1 + rng.word() % 4;
            const uint32_t base = rng.word() % g.slots();
            for (uint32_t k = 0; k < n; ++k)
                ops.push_back(
                    MicroOp::write((base + k) % g.slots(), rng.word())
                        .encode());
            break;
          }
          case 4:
          case 5: {
            const uint32_t out = g.column(rng.word() % g.slots(), 0);
            ops.push_back(
                MicroOp::logicH(rng.word() % 2 ? Gate::Init1
                                               : Gate::Init0,
                                0, 0, out, g.partitions - 1, 1)
                    .encode());
            break;
          }
          case 6:
          case 7:
          case 8: {
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          g.column(c, 0),
                                          g.partitions - 1, 1)
                              .encode());
            break;
          }
          case 9:
          case 10: {
            // LogicV run on one slot (the VRun chunking unit).
            static const Gate kVGates[] = {Gate::Init0, Gate::Init1,
                                           Gate::Not};
            const uint32_t slot = rng.word() % g.slots();
            const uint32_t n = 1 + rng.word() % 3;
            for (uint32_t k = 0; k < n; ++k)
                ops.push_back(MicroOp::logicV(kVGates[rng.word() % 3],
                                              rng.word() % g.rows,
                                              rng.word() % g.rows,
                                              slot)
                                  .encode());
            break;
          }
          default: {
            // Data-less Read (single-crossbar, single-row masks).
            ops.push_back(MicroOp::crossbarMask(Range::single(
                                                    rng.word() %
                                                    g.numCrossbars))
                              .encode());
            ops.push_back(
                MicroOp::rowMask(Range::single(rng.word() % g.rows))
                    .encode());
            ops.push_back(
                MicroOp::read(rng.word() % g.slots()).encode());
            break;
          }
        }
    }
    return ops;
}

/** Seed every sink with identical random register contents. */
template <typename Sink>
void
seedState(Sink &s, uint64_t seed, const Geometry &g)
{
    Rng rng(seed);
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        for (uint32_t row = 0; row < g.rows; ++row)
            for (uint32_t slot = 0; slot < g.slots(); ++slot)
                s.crossbar(xb).writeRow(slot, rng.word(), row);
}

/**
 * Directed-stream helper: full crossbar mask + the given row mask,
 * then @p body, compiled through prepareTrace on a serial simulator.
 */
std::shared_ptr<const BatchTrace>
compileStream(const Geometry &g, const Range &rowMask,
              const std::vector<Word> &body, bool fuse = false)
{
    std::vector<Word> ops;
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 1, 1))
            .encode());
    ops.push_back(MicroOp::rowMask(rowMask).encode());
    ops.insert(ops.end(), body.begin(), body.end());
    Simulator sim(g, EngineConfig::serial());
    auto trace = sim.prepareTrace(ops.data(), ops.size(), fuse);
    EXPECT_NE(trace, nullptr);
    return trace;
}

Word
initH(const Geometry &g, Gate gate, uint32_t slot)
{
    return MicroOp::logicH(gate, 0, 0, g.column(slot, 0),
                           g.partitions - 1, 1)
        .encode();
}

Word
norH(const Geometry &g, uint32_t a, uint32_t b, uint32_t out)
{
    return MicroOp::logicH(Gate::Nor, g.column(a, 0), g.column(b, 0),
                           g.column(out, 0), g.partitions - 1, 1)
        .encode();
}

class ReplayProgramFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>>
{
};

} // namespace

TEST_P(ReplayProgramFuzz, CompiledReplayBitIdenticalToInterpreter)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = fuzzGeometry();
    Rng streamRng(seed);
    const std::vector<Word> ops = randomTraceStream(streamRng, g, 140);
    constexpr int kReplays = 3;

    for (XbarStorage storage : {XbarStorage::Dense, XbarStorage::Paged}) {
        for (uint32_t devices : {1u, 2u, 4u}) {
            const EngineConfig base =
                ec.cfg.withStorage(storage).withDevices(devices);
            // Raw-stream serial reference, interpreter replay, and
            // compiled replay of ONE stream from ONE seeded state.
            Simulator oracle(g);
            SimulatorGroup interp(g, base.withCompiledReplay(false));
            SimulatorGroup compiled(g, base.withCompiledReplay(true));
            seedState(oracle, seed, g);
            seedState(interp, seed, g);
            seedState(compiled, seed, g);

            auto ti = interp.prepareTrace(ops.data(), ops.size(), true);
            auto tc =
                compiled.prepareTrace(ops.data(), ops.size(), true);
            ASSERT_NE(ti, nullptr);
            ASSERT_NE(tc, nullptr);
            // The knob decides at freeze: programs only when on.
            EXPECT_TRUE(ti->programs.empty());
            ASSERT_EQ(tc->programs.size(), tc->used);

            for (int rep = 0; rep < kReplays; ++rep) {
                oracle.performBatch(ops.data(), ops.size());
                interp.submitTrace(ti);
                compiled.submitTrace(tc);
            }
            interp.flush();
            compiled.flush();
            for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
                ASSERT_TRUE(oracle.crossbar(xb).sameState(
                    interp.crossbar(xb)))
                    << ec.name << " interp crossbar " << xb;
                ASSERT_TRUE(oracle.crossbar(xb).sameState(
                    compiled.crossbar(xb)))
                    << ec.name << " compiled crossbar " << xb;
            }
            EXPECT_EQ(oracle.stats(), interp.stats()) << ec.name;
            EXPECT_EQ(oracle.stats(), compiled.stats()) << ec.name;
            for (uint32_t d = 1; d < devices; ++d)
                EXPECT_EQ(compiled.sub(0).stats(),
                          compiled.sub(d).stats())
                    << ec.name << " sub " << d;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, ReplayProgramFuzz,
    ::testing::Combine(::testing::Values(101ull, 211ull, 307ull),
                       ::testing::Range<size_t>(0, numEngineCases)));

TEST(ReplayProgramWork, ShardedDiagnosticsConservedAcrossCompilation)
{
    // The compiled path charges the work-stealing diagnostics through
    // precomputed per-instruction (or per-crossbar) counts; the
    // merged total must equal the interpreter's per-op accounting
    // exactly. Which worker claims which chunk is scheduling-
    // dependent, so only the merged totals compare.
    const Geometry g = fuzzGeometry();
    Rng rng(4242);
    const std::vector<Word> ops = randomTraceStream(rng, g, 200);
    Stats totals[2];
    for (bool on : {false, true}) {
        Simulator sim(
            g, EngineConfig::sharded(3).withCompiledReplay(on));
        seedState(sim, 4242, g);
        auto trace = sim.prepareTrace(ops.data(), ops.size(), true);
        ASSERT_NE(trace, nullptr);
        for (int rep = 0; rep < 2; ++rep)
            sim.submitTrace(trace);
        const auto &eng =
            dynamic_cast<const ShardedEngine &>(sim.engine());
        Stats merged;
        for (const Stats &w : eng.shardWork())
            merged += w;
        totals[on ? 1 : 0] = merged;
    }
    EXPECT_EQ(totals[0], totals[1]);
    EXPECT_GT(totals[1].opCount[static_cast<size_t>(OpClass::LogicH)],
              0u);
}

TEST(ReplayProgramCompile, IndependentGatesMergeIntoOnePass)
{
    // INIT1 s0; NOR(s1,s2)->s3; NOT(s4)->s5 under one full mask:
    // pairwise column-disjoint, so ONE pass of 3 x partitions
    // sections carrying the work of three architectural ops.
    const Geometry g = testGeometry();
    const auto t = compileStream(
        g, Range(0, g.rows - 1, 1),
        {initH(g, Gate::Init1, 0), norH(g, 1, 2, 3),
         MicroOp::logicH(Gate::Not, g.column(4, 0), g.column(4, 0),
                         g.column(5, 0), g.partitions - 1, 1)
             .encode()});
    ASSERT_EQ(t->programs.size(), 1u);
    const ReplayProgram &p = t->programs[0];
    ASSERT_EQ(p.instrs.size(), 1u);
    EXPECT_EQ(p.instrs[0].kind, ReplayProgram::Kind::HPass);
    EXPECT_EQ(p.instrs[0].count, 3 * g.partitions);
    EXPECT_EQ(p.instrs[0].work, 3u);
    EXPECT_TRUE(p.allMasksFull);
    EXPECT_TRUE(p.uniformXb);
    EXPECT_EQ(p.workLogicH, 3u);
}

TEST(ReplayProgramCompile, MaskChangeBreaksThePass)
{
    // A DIFFERENT row mask between two otherwise-mergeable gates
    // forces a second pass; re-issuing the IDENTICAL mask does not
    // (snapshots dedup by content, so the merge sees one mask id).
    const Geometry g = testGeometry();
    std::vector<Word> changed = {
        initH(g, Gate::Init0, 0),
        MicroOp::rowMask(Range(0, g.rows / 2 - 1, 1)).encode(),
        initH(g, Gate::Init0, 1)};
    const auto tChanged =
        compileStream(g, Range(0, g.rows - 1, 1), changed);
    ASSERT_EQ(tChanged->programs[0].instrs.size(), 2u);
    EXPECT_FALSE(tChanged->programs[0].allMasksFull);
    EXPECT_EQ(tChanged->programs[0].instrs[1].maskFull, 0u);

    std::vector<Word> reissued = {
        initH(g, Gate::Init0, 0),
        MicroOp::rowMask(Range(0, g.rows - 1, 1)).encode(),
        initH(g, Gate::Init0, 1)};
    const auto tSame =
        compileStream(g, Range(0, g.rows - 1, 1), reissued);
    EXPECT_EQ(tSame->programs[0].instrs.size(), 1u);
}

TEST(ReplayProgramCompile, StatefulGateAliasingBreaksThePass)
{
    const Geometry g = testGeometry();
    // Read-after-write: the second NOR reads the first's output.
    const auto raw = compileStream(g, Range(0, g.rows - 1, 1),
                                   {norH(g, 0, 1, 2), norH(g, 2, 3, 4)});
    EXPECT_EQ(raw->programs[0].instrs.size(), 2u);
    // Write-after-write: both drive the same output column (a
    // stateful NOR also reads its own output, so order matters).
    const auto waw = compileStream(g, Range(0, g.rows - 1, 1),
                                   {norH(g, 0, 1, 2), norH(g, 3, 4, 2)});
    EXPECT_EQ(waw->programs[0].instrs.size(), 2u);
    // Write-after-read: the INIT would clobber a column the open
    // pass's NOR read.
    const auto war =
        compileStream(g, Range(0, g.rows - 1, 1),
                      {norH(g, 0, 1, 2), initH(g, Gate::Init1, 0)});
    EXPECT_EQ(war->programs[0].instrs.size(), 2u);
    // Disjoint reads are NOT aliasing: two NORs sharing inputs merge.
    const auto shared =
        compileStream(g, Range(0, g.rows - 1, 1),
                      {norH(g, 0, 1, 2), norH(g, 0, 1, 3)});
    EXPECT_EQ(shared->programs[0].instrs.size(), 1u);
}

TEST(ReplayProgramCompile, SectionCapacitySplitsThePass)
{
    // 9 disjoint full-width INITs = 9 x 32 sections; the 256-section
    // pass budget admits exactly 8 of them.
    const Geometry g = testGeometry();
    std::vector<Word> body;
    for (uint32_t s = 0; s < 9; ++s)
        body.push_back(initH(g, Gate::Init0, s));
    const auto t = compileStream(g, Range(0, g.rows - 1, 1), body);
    const ReplayProgram &p = t->programs[0];
    ASSERT_EQ(p.instrs.size(), 2u);
    EXPECT_EQ(p.instrs[0].count, 256u);
    EXPECT_EQ(p.instrs[0].work, 8u);
    EXPECT_EQ(p.instrs[1].count, g.partitions);
    EXPECT_EQ(p.instrs[1].work, 1u);
}

TEST(ReplayProgramCompile, ShortRowsNeverFlagFull)
{
    // rows < 64: even the all-rows mask realizes a partial tail word.
    // Flagging it full would let the fill kernels set padding bits
    // that raw-word state comparison (and gather) would then observe.
    Geometry g = testGeometry();
    g.rows = 32;
    const auto t = compileStream(g, Range(0, g.rows - 1, 1),
                                 {initH(g, Gate::Init1, 0)});
    const ReplayProgram &p = t->programs[0];
    EXPECT_FALSE(p.allMasksFull);
    EXPECT_EQ(p.instrs[0].maskFull, 0u);
}

TEST(ReplayProgramCompile, StripesAndVRunsArePrechunked)
{
    const Geometry g = testGeometry();
    // 4 distinct-slot Writes fuse into one stripe; the compiled form
    // carries the pairs inline with work = stripe width.
    std::vector<Word> body;
    for (uint32_t s = 0; s < 4; ++s)
        body.push_back(MicroOp::write(s, 0xA0 + s).encode());
    const auto tw =
        compileStream(g, Range(0, g.rows - 1, 1), body, true);
    const ReplayProgram &pw = tw->programs[0];
    ASSERT_EQ(pw.instrs.size(), 1u);
    EXPECT_EQ(pw.instrs[0].kind, ReplayProgram::Kind::WStripe);
    EXPECT_EQ(pw.instrs[0].count, 4u);
    EXPECT_EQ(pw.instrs[0].work, 4u);
    EXPECT_EQ(pw.workWrites, 4u);

    // Same-slot LogicV ops chain into one run; a crossbar-mask change
    // in between starts a new one.
    std::vector<Word> vbody = {
        MicroOp::logicV(Gate::Init1, 1, 2, 5).encode(),
        MicroOp::logicV(Gate::Not, 2, 3, 5).encode(),
        MicroOp::logicV(Gate::Init0, 0, 1, 5).encode(),
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 2, 2))
            .encode(),
        MicroOp::logicV(Gate::Init1, 4, 5, 5).encode()};
    const auto tv = compileStream(g, Range(0, g.rows - 1, 1), vbody);
    const ReplayProgram &pv = tv->programs[0];
    ASSERT_EQ(pv.instrs.size(), 2u);
    EXPECT_EQ(pv.instrs[0].kind, ReplayProgram::Kind::VRun);
    EXPECT_EQ(pv.instrs[0].count, 3u);
    EXPECT_EQ(pv.instrs[1].count, 1u);
    EXPECT_FALSE(pv.uniformXb);
    EXPECT_EQ(pv.workLogicV, 4u);
}

TEST(ReplayProgramCompile, KnobOffLeavesTraceUncompiled)
{
    const Geometry g = testGeometry();
    std::vector<Word> ops = {
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 1, 1))
            .encode(),
        MicroOp::rowMask(Range(0, g.rows - 1, 1)).encode(),
        initH(g, Gate::Init1, 0)};
    Simulator sim(g,
                  EngineConfig::serial().withCompiledReplay(false));
    auto trace = sim.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_NE(trace, nullptr);
    EXPECT_TRUE(trace->programs.empty());
    // setEngine re-applies the knob: a swap to a compiled config
    // makes the NEXT prepare compile.
    sim.setEngine(EngineConfig::serial().withCompiledReplay(true));
    auto trace2 = sim.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_NE(trace2, nullptr);
    EXPECT_EQ(trace2->programs.size(), trace2->used);
}

TEST(ReplayProgramStats, RecordNMatchesRepeatedRecord)
{
    Stats a, b;
    a.recordN(OpClass::Write, 5);
    a.recordN(OpClass::LogicH, 0);
    for (int i = 0; i < 5; ++i)
        b.record(OpClass::Write);
    EXPECT_EQ(a, b);
}
