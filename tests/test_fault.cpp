/**
 * @file
 * Fault-injection and recovery tests (sim/fault.hpp,
 * sim/checkpoint.hpp): the FaultSpec parser rejects typos loudly;
 * with PYPIM_VERIFY_STATE on, every injected transient fault is
 * DETECTED at a checksum point and RECOVERED by journaled
 * retry-with-restore, leaving final state and architectural Stats
 * bit-identical to a fault-free run; without verification an injected
 * replay failure surfaces as the pipeline's sticky error at EVERY
 * sync point until Device::restore clears it; and unrecoverable
 * stuck-at damage exhausts the retry cap into a sticky terminal
 * error — never silent corruption.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/checkpoint.hpp"
#include "sim/fault.hpp"
#include "sim/serialize.hpp"

using namespace pypim;

namespace
{

Geometry
faultGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;
    return g;
}

struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"serial", EngineConfig::serial()},
        {"trace", EngineConfig::trace()},
        {"sharded", EngineConfig::sharded(2)},
        {"serial+pipe", EngineConfig::serial().withPipeline()},
        {"trace+pipe", EngineConfig::trace().withPipeline()},
        {"sharded+pipe", EngineConfig::sharded(2).withPipeline()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 6;

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(::testing::TempDir() + "pypim_" + tag + "_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) +
                ".ckpt")
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Tensor program with readbacks interleaved between compute steps,
 *  so detection points (drains) pepper the run. */
std::vector<int32_t>
runProgram(Device &dev, uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<int32_t> va(n), vb(n);
    for (size_t i = 0; i < n; ++i) {
        va[i] = static_cast<int32_t>(rng.word());
        vb[i] = static_cast<int32_t>(rng.word() | 1);
    }
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    Tensor c = a * b + a;
    std::vector<int32_t> out = c.toIntVector();  // mid-run drain
    Tensor d = (c ^ b) - a;
    const std::vector<int32_t> tail = d.toIntVector();
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
}

::testing::AssertionResult
sameDeviceState(Device &a, Device &b)
{
    a.flush();
    b.flush();
    if (a.group().remote() || b.group().remote()) {
        // Worker processes own the crossbars under the socket
        // transport; the canonical checkpoint image is the
        // transport-transparent identity (byte-equal iff state is)
        // once the informational source-config fields are
        // normalized.
        auto stateBytes = [](const SimulatorGroup &grp) {
            CheckpointImage img = buildGroupImage(grp);
            img.storage = XbarStorage::Paged;
            img.deviceCount = 1;
            return encodeCheckpoint(img);
        };
        if (stateBytes(a.group()) != stateBytes(b.group()))
            return ::testing::AssertionFailure()
                   << "canonical state images diverged";
    } else {
        for (uint32_t xb = 0; xb < a.geometry().numCrossbars; ++xb)
            if (!a.group().crossbar(xb).sameState(
                    b.group().crossbar(xb)))
                return ::testing::AssertionFailure()
                       << "crossbar " << xb << " diverged";
    }
    if (!(a.stats() == b.stats()))
        return ::testing::AssertionFailure()
               << "architectural stats diverged";
    return ::testing::AssertionSuccess();
}

class FaultRecovery : public ::testing::TestWithParam<size_t>
{
};

} // namespace

// --- spec parsing ---------------------------------------------------------

TEST(FaultSpec_, ParsesEveryKey)
{
    const FaultSpec s = FaultSpec::parse(
        "seed=7:flip=25:stuck=2:fail=3:poison=5:dev=1");
    EXPECT_EQ(s.seed, 7u);
    EXPECT_EQ(s.flipPct, 25u);
    EXPECT_EQ(s.stuckBits, 2u);
    EXPECT_EQ(s.failAtBatch, 3u);
    EXPECT_EQ(s.poisonAtBatch, 5u);
    EXPECT_EQ(s.device, 1);
    EXPECT_TRUE(s.any());
    EXPECT_FALSE(FaultSpec::parse("").any());
    EXPECT_FALSE(FaultSpec::parse("seed=9").any());
}

TEST(FaultSpec_, TyposThrowLoudly)
{
    for (const char *bad :
         {"flip", "flip=", "flip=abc", "flip=101", "flip=-1",
          "flips=1", "stuck=2000", "seed=1:junk=2", "fail=1x",
          "dev=99999999999", "=5", "seed==3"}) {
        EXPECT_THROW(FaultSpec::parse(bad), Error) << "'" << bad << "'";
    }
}

TEST(FaultSpec_, TypoThrowsAtDeviceConstruction)
{
    const Geometry g = faultGeometry();
    EXPECT_THROW(Device(g, Driver::Mode::Parallel,
                        EngineConfig::serial().withFaults("flop=1")),
                 Error);
}

// --- detect-and-recover: transient faults --------------------------------

TEST_P(FaultRecovery, FlipsAndPoisonRecoverBitIdentical)
{
    const EngineCase &ec = engineCase(GetParam());
    const Geometry g = faultGeometry();
    for (const char *spec :
         {"seed=5:flip=35", "seed=9:poison=2", "seed=3:flip=20:poison=4"}) {
        Device faulty(g, Driver::Mode::Parallel,
                      ec.cfg.withFaults(spec).withVerifyState());
        Device clean(g, Driver::Mode::Parallel, ec.cfg);
        const auto got = runProgram(faulty, 1234, 400);
        const auto want = runProgram(clean, 1234, 400);
        // Values the host read back are NEVER from corrupted state:
        // detection at the drain precedes every readback.
        ASSERT_EQ(got, want) << ec.name << " " << spec;
        // Final state and architectural Stats bit-identical to the
        // fault-free run — recovery re-replay re-records exactly the
        // journaled history.
        ASSERT_TRUE(sameDeviceState(faulty, clean))
            << ec.name << " " << spec;
        const Stats fs = faulty.faultStats();
        EXPECT_GT(fs.faultsInjected, 0u) << ec.name << " " << spec;
        EXPECT_GT(fs.faultsDetected, 0u) << ec.name << " " << spec;
        EXPECT_GT(fs.recoveries, 0u) << ec.name << " " << spec;
        EXPECT_EQ(clean.faultStats().faultsInjected, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultRecovery,
                         ::testing::Range<size_t>(0, numEngineCases));

// --- sticky error contract without verification ---------------------------

TEST(FaultSticky, PipelineErrorRethrownAtEverySyncUntilRestore)
{
    // Injection WITHOUT verification: the injected replay abort
    // surfaces as the pipeline's sticky error (the PR 3 contract) and
    // keeps rethrowing at every sync point; Device::restore is the
    // recovery that clears it.
    const Geometry g = faultGeometry();
    Device dev(g, Driver::Mode::Parallel,
               EngineConfig::trace()
                   .withPipeline()
                   .withFaults("seed=1:fail=2"));
    TempFile f("sticky");
    dev.checkpoint(f.path());  // pre-fault baseline

    const Geometry &geo = dev.geometry();
    RTypeInstr in;
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::all(geo.numCrossbars);
    in.rows = Range::all(geo.rows);
    // Feed batches until the injected abort lands in the consumer.
    auto poke = [&] {
        dev.driver().execute(in);
        dev.flush();
    };
    bool threw = false;
    for (int i = 0; i < 8 && !threw; ++i) {
        try {
            poke();
        } catch (const InjectedFault &) {
            threw = true;
        }
    }
    ASSERT_TRUE(threw) << "fail=2 never fired";
    // Sticky: EVERY subsequent sync point rethrows the same fault.
    EXPECT_THROW(dev.flush(), InjectedFault);
    EXPECT_THROW(dev.flush(), InjectedFault);
    EXPECT_THROW(poke(), InjectedFault);

    // Restore clears the sticky error; the device is healthy again
    // (the one-shot abort does not re-fire) and computes correctly.
    dev.restore(f.path());
    std::vector<int32_t> v(64);
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<int32_t>(i * 2654435761u);
    Tensor a = Tensor::fromVector(v, &dev);
    Tensor b = a + a;
    std::vector<int32_t> want(v);
    for (auto &x : want)
        x = static_cast<int32_t>(2 * static_cast<uint32_t>(x));
    EXPECT_EQ(b.toIntVector(), want);
}

// --- unrecoverable damage: retry cap and terminal error -------------------

TEST(FaultTerminal, StuckPinsExhaustRetriesIntoStickyTerminal)
{
    // Stuck-at pins re-corrupt every recovery re-replay (hardware
    // damage does not heal because the host retried), so the retry
    // cap exhausts into a terminal error — sticky at every later
    // call, never silent corruption.
    const Geometry g = faultGeometry();
    Device dev(g, Driver::Mode::Parallel,
               EngineConfig::serial()
                   .withFaults("seed=2:stuck=8")
                   .withVerifyState());
    EXPECT_THROW(runProgram(dev, 77, 400), DeviceFault);
    // Terminal: subsequent calls rethrow without touching the device.
    EXPECT_THROW(dev.flush(), DeviceFault);
    EXPECT_THROW(runProgram(dev, 78, 64), DeviceFault);
    const Stats fs = dev.faultStats();
    EXPECT_GE(fs.faultsDetected, RecoverySink::kRetryCap);
}

// --- CI soak: randomized fault campaigns ----------------------------------

TEST(FaultSoak, EverySeedRecoversOrFailsLoudly)
{
    // Honours the CI matrix knobs (PYPIM_ENGINE / PYPIM_PIPELINE /
    // PYPIM_DEVICES / PYPIM_XBAR_STORAGE) as the base configuration;
    // fault spec and verification are pinned per iteration.
    EngineConfig base = EngineConfig::fromEnv();
    base.faults.clear();  // spec pinned per iteration below
    base.verifyState = false;
    const Geometry g = faultGeometry();
    uint64_t injectedTotal = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        const std::string spec =
            "seed=" + std::to_string(seed) + ":flip=30:poison=3";
        Device faulty(g, Driver::Mode::Parallel,
                      base.withFaults(spec).withVerifyState());
        Device clean(g, Driver::Mode::Parallel, base);
        const auto got = runProgram(faulty, seed * 101, 300);
        const auto want = runProgram(clean, seed * 101, 300);
        ASSERT_EQ(got, want) << "seed " << seed;
        ASSERT_TRUE(sameDeviceState(faulty, clean)) << "seed " << seed;
        injectedTotal += faulty.faultStats().faultsInjected;
        EXPECT_EQ(faulty.faultStats().faultsDetected == 0,
                  faulty.faultStats().faultsInjected == 0)
            << "seed " << seed << ": injected faults must be detected";
    }
    EXPECT_GT(injectedTotal, 0u) << "soak injected nothing";
}
