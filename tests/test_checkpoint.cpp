/**
 * @file
 * Checkpoint/restore tests (sim/serialize.hpp, sim/checkpoint.hpp,
 * Device::checkpoint/restore): fuzzed round trips must be
 * bit-identical in crossbar state, mask state and architectural Stats
 * across every engine x sync/pipelined x storage combination —
 * including restores into a DIFFERENT sub-device count than the
 * checkpoint was taken from — with the canonical encoding producing
 * byte-identical files from dense and paged sources, corrupt files
 * failing loudly, COW snapshots surviving compact(), and the
 * busy-flag assert refusing snapshots of a mid-replay crossbar.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/checkpoint.hpp"
#include "sim/serialize.hpp"

using namespace pypim;

namespace
{

Geometry
ckptGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;  // shardable to 1/2/4 sub-devices
    return g;
}

struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"serial", EngineConfig::serial()},
        {"trace", EngineConfig::trace()},
        {"sharded", EngineConfig::sharded(2)},
        {"serial+pipe", EngineConfig::serial().withPipeline()},
        {"trace+pipe", EngineConfig::trace().withPipeline()},
        {"sharded+pipe", EngineConfig::sharded(2).withPipeline()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 6;

/** Unique scratch file per test, removed by the guard. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(::testing::TempDir() + "pypim_" + tag + "_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) +
                ".ckpt")
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A tensor program leaving non-trivial state behind (live
 *  allocations, warm stream cache, advanced masks and stats). */
std::vector<int32_t>
runProgram(Device &dev, uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<int32_t> va(n), vb(n);
    for (size_t i = 0; i < n; ++i) {
        va[i] = static_cast<int32_t>(rng.word());
        vb[i] = static_cast<int32_t>(rng.word() | 1);
    }
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    Tensor c = a * b + a;
    Tensor d = c - (a & b);
    return d.toIntVector();
}

/** Driver-level continuation that needs no allocator (fixed regs),
 *  exercising the restored stream cache and mask state. */
std::vector<uint32_t>
runContinuation(Device &dev)
{
    const Geometry &g = dev.geometry();
    RTypeInstr in;
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::all(g.numCrossbars);
    in.rows = Range::all(g.rows);
    dev.driver().execute(in);
    in.op = ROp::Mul;
    in.rd = 3;
    in.rb = 2;
    dev.driver().execute(in);
    dev.flush();
    std::vector<uint32_t> out;
    out.reserve(static_cast<size_t>(g.numCrossbars) * g.rows);
    for (uint32_t w = 0; w < g.numCrossbars; ++w)
        for (uint32_t r = 0; r < g.rows; ++r)
            out.push_back(dev.group().crossbar(w).read(3, r));
    return out;
}

::testing::AssertionResult
sameDeviceState(Device &a, Device &b)
{
    a.flush();
    b.flush();
    if (a.group().remote() || b.group().remote()) {
        // Worker processes own the crossbars under the socket
        // transport; the canonical checkpoint image (which carries
        // mask state too) is the transport-transparent identity once
        // the informational source-config header fields are
        // normalized.
        auto stateBytes = [](const SimulatorGroup &grp) {
            CheckpointImage img = buildGroupImage(grp);
            img.storage = XbarStorage::Paged;
            img.deviceCount = 1;
            return encodeCheckpoint(img);
        };
        if (stateBytes(a.group()) != stateBytes(b.group()))
            return ::testing::AssertionFailure()
                   << "canonical state images diverged";
    } else {
        for (uint32_t xb = 0; xb < a.geometry().numCrossbars; ++xb)
            if (!a.group().crossbar(xb).sameState(
                    b.group().crossbar(xb)))
                return ::testing::AssertionFailure()
                       << "crossbar " << xb << " diverged";
        if (a.simulator().crossbarMask() !=
                b.simulator().crossbarMask() ||
            a.simulator().rowMask() != b.simulator().rowMask())
            return ::testing::AssertionFailure()
                   << "mask state diverged";
    }
    if (!(a.stats() == b.stats()))
        return ::testing::AssertionFailure()
               << "architectural stats diverged";
    return ::testing::AssertionSuccess();
}

class CheckpointRoundTrip : public ::testing::TestWithParam<size_t>
{
};

} // namespace

// --- fuzzed round trips ---------------------------------------------------

TEST_P(CheckpointRoundTrip, BitIdenticalAcrossDeviceCountsAndStorage)
{
    const EngineCase &ec = engineCase(GetParam());
    const Geometry g = ckptGeometry();
    for (XbarStorage srcSt : {XbarStorage::Dense, XbarStorage::Paged}) {
        for (uint32_t srcDev : {1u, 2u, 4u}) {
            Device src(g, Driver::Mode::Parallel,
                       ec.cfg.withDevices(srcDev).withStorage(srcSt));
            runProgram(src, 42 + srcDev, 600);
            TempFile f("roundtrip");
            const uint64_t bytes = src.checkpoint(f.path());
            EXPECT_GT(bytes, 0u);
            EXPECT_EQ(src.faultStats().checkpointBytes, bytes);

            // Restore into the OTHER storage mode and every device
            // count — the image is canonical and global-coordinate.
            const XbarStorage dstSt = srcSt == XbarStorage::Dense
                                          ? XbarStorage::Paged
                                          : XbarStorage::Dense;
            for (uint32_t dstDev : {1u, 2u, 4u}) {
                Device dst(g, Driver::Mode::Parallel,
                           ec.cfg.withDevices(dstDev)
                               .withStorage(dstSt));
                dst.restore(f.path());
                ASSERT_TRUE(sameDeviceState(src, dst))
                    << ec.name << " " << srcDev << "->" << dstDev;
                // Host layers came along: allocator occupancy and
                // the memoised driver translations.
                EXPECT_EQ(dst.allocator().liveAllocations(),
                          src.allocator().liveAllocations());
                EXPECT_EQ(dst.allocator().slotsInUse(),
                          src.allocator().slotsInUse());
                EXPECT_EQ(dst.driver().streamCacheSize(),
                          src.driver().streamCacheSize());
                EXPECT_EQ(dst.driver().stats().instructions,
                          src.driver().stats().instructions);
            }
            // Divergence check: the restored device must CONTINUE
            // identically, not just compare equal at the instant.
            Device cont(g, Driver::Mode::Parallel,
                        ec.cfg.withDevices(srcDev == 4 ? 1 : 4)
                            .withStorage(dstSt));
            cont.restore(f.path());
            EXPECT_EQ(runContinuation(cont), runContinuation(src))
                << ec.name;
            EXPECT_TRUE(sameDeviceState(src, cont)) << ec.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, CheckpointRoundTrip,
                         ::testing::Range<size_t>(0, numEngineCases));

// --- canonical encoding ---------------------------------------------------

TEST(CheckpointEncoding, DenseAndPagedProduceIdenticalBytes)
{
    const Geometry g = ckptGeometry();
    for (uint32_t devices : {1u, 2u}) {
        EngineConfig cfg = EngineConfig::trace().withDevices(devices);
        Device dense(g, Driver::Mode::Parallel,
                     cfg.withStorage(XbarStorage::Dense));
        Device paged(g, Driver::Mode::Parallel,
                     cfg.withStorage(XbarStorage::Paged));
        runProgram(dense, 7, 500);
        runProgram(paged, 7, 500);
        dense.flush();
        paged.flush();
        CheckpointImage di = buildGroupImage(dense.group());
        CheckpointImage pi = buildGroupImage(paged.group());
        // The storage byte is informational source metadata — align
        // it so the comparison targets the canonical payload.
        di.storage = pi.storage;
        EXPECT_EQ(encodeCheckpoint(di), encodeCheckpoint(pi))
            << "devices=" << devices;
    }
}

TEST(CheckpointEncoding, ImageIsPresentBlocksOnly)
{
    // A near-empty device encodes to O(live data), not O(geometry):
    // one touched register out of a 16-crossbar space stays small.
    const Geometry g = ckptGeometry();
    Device dev(g);
    Tensor t = Tensor::full(4ull, static_cast<int32_t>(9), &dev);
    dev.flush();
    const CheckpointImage img = buildGroupImage(dev.group());
    size_t words = 0;
    for (const CrossbarImage &ci : img.crossbars)
        for (const BlockRecord &b : ci.blocks)
            words += b.words.size();
    const size_t denseWords = static_cast<size_t>(g.numCrossbars) *
                              g.cols * ((g.rows + 63) / 64);
    EXPECT_LT(words, denseWords / 8)
        << "image should elide untouched state";
}

// --- loud failure on damage -----------------------------------------------

TEST(CheckpointCorruption, DamagedFilesFailLoudly)
{
    const Geometry g = ckptGeometry();
    Device dev(g);
    runProgram(dev, 3, 400);
    TempFile f("corrupt");
    const uint64_t bytes = dev.checkpoint(f.path());
    ASSERT_GT(bytes, 64u);

    auto readAll = [&] {
        FILE *fp = std::fopen(f.path().c_str(), "rb");
        EXPECT_NE(fp, nullptr);
        std::vector<uint8_t> buf(bytes);
        EXPECT_EQ(std::fread(buf.data(), 1, bytes, fp), bytes);
        std::fclose(fp);
        return buf;
    };
    auto writeAll = [&](const std::vector<uint8_t> &buf) {
        FILE *fp = std::fopen(f.path().c_str(), "wb");
        ASSERT_NE(fp, nullptr);
        ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), fp),
                  buf.size());
        std::fclose(fp);
    };
    const std::vector<uint8_t> good = readAll();

    // Flipped payload byte -> CRC failure.
    std::vector<uint8_t> bad = good;
    bad[bad.size() / 2] ^= 0x40;
    writeAll(bad);
    EXPECT_THROW(loadCheckpoint(f.path()), Error);

    // Truncation -> loud failure.
    bad = good;
    bad.resize(bad.size() - 9);
    writeAll(bad);
    EXPECT_THROW(loadCheckpoint(f.path()), Error);

    // Bad magic -> loud failure.
    bad = good;
    bad[0] ^= 0xFF;
    writeAll(bad);
    EXPECT_THROW(loadCheckpoint(f.path()), Error);

    // Trailing junk -> loud failure.
    bad = good;
    bad.push_back(0);
    writeAll(bad);
    EXPECT_THROW(loadCheckpoint(f.path()), Error);

    // The original still loads and restores.
    writeAll(good);
    Device fresh(g);
    fresh.restore(f.path());
    EXPECT_TRUE(sameDeviceState(dev, fresh));

    // Geometry mismatch is refused before any state is touched.
    Geometry other = g;
    other.numCrossbars = 4;
    Device wrong(other);
    EXPECT_THROW(wrong.restore(f.path()), Error);
}

TEST(CheckpointCorruption, DecodeRejectsGarbage)
{
    EXPECT_THROW(decodeCheckpoint({}), Error);
    EXPECT_THROW(decodeCheckpoint({1, 2, 3, 4, 5, 6, 7, 8}), Error);
    EXPECT_THROW(loadCheckpoint("/nonexistent/path/x.ckpt"), Error);
}

// --- busy-flag assert (pipeline-quiesced snapshot contract) ---------------

TEST(CheckpointBusyFlag, SnapshotOfMidReplayCrossbarPanics)
{
    const Geometry g = testGeometry();
    Crossbar xb(g);
    std::atomic<bool> busy{false};
    xb.setBusyFlag(&busy);
    // Quiesced: snapshot and restore work.
    xb.writeRow(0, 0xABCD, 3);
    const Crossbar::Snapshot snap = xb.snapshot();
    xb.restore(snap);
    // Mid-replay: both refuse — a torn image must be unreachable.
    busy.store(true);
    EXPECT_THROW(xb.snapshot(), InternalError);
    EXPECT_THROW(xb.restore(snap), InternalError);
    busy.store(false);
    EXPECT_EQ(xb.read(0, 3), 0xABCDu);
}

TEST(CheckpointBusyFlag, CheckpointQuiescesLivePipelines)
{
    // Checkpoint mid-stream under the pipeline: the drain contract
    // must quiesce every consumer before any snapshot is taken.
    const Geometry g = ckptGeometry();
    Device dev(g, Driver::Mode::Parallel,
               EngineConfig::trace().withPipeline().withDevices(2));
    for (int round = 0; round < 4; ++round) {
        const auto want = runProgram(dev, 100 + round, 500);
        TempFile f("live");
        dev.checkpoint(f.path());
        Device back(g, Driver::Mode::Parallel,
                    EngineConfig::trace().withPipeline());
        back.restore(f.path());
        EXPECT_TRUE(sameDeviceState(dev, back)) << "round " << round;
    }
}

// --- compact() under live COW snapshots -----------------------------------

TEST(CheckpointCompact, CompactUnderLiveSnapshotsPreservesImages)
{
    const Geometry g = ckptGeometry();
    for (uint32_t devices : {2u, 4u}) {
        Device dev(g, Driver::Mode::Parallel,
                   EngineConfig::serial()
                       .withDevices(devices)
                       .withStorage(XbarStorage::Paged));
        runProgram(dev, 11, 800);
        dev.flush();

        // Live COW snapshots of every crossbar, held across the
        // mutation + compact below.
        std::vector<Crossbar::Snapshot> snaps;
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
            snaps.push_back(dev.group().crossbar(xb).snapshot());
        const CheckpointImage before = buildGroupImage(dev.group());

        // Decay state back to zero (blocks eligible for re-elision),
        // then compact under the live snapshots.
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
            for (uint32_t r = 0; r < g.rows; ++r)
                for (uint32_t s = 0; s < 4; ++s)
                    dev.group().crossbar(xb).writeRow(s, 0, r);
        dev.group().compactStorage();

        // The held snapshots still carry the pre-compact state.
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
            dev.group().crossbar(xb).restore(snaps[xb]);
            ASSERT_TRUE(
                dev.group().crossbar(xb).sameState(snaps[xb]))
                << "devices=" << devices << " xb=" << xb;
        }
        // And the image built from them equals the pre-mutation one.
        const CheckpointImage after = buildGroupImage(dev.group());
        EXPECT_EQ(encodeCheckpoint(before), encodeCheckpoint(after))
            << "devices=" << devices;
    }
}
