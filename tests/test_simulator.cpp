/**
 * @file
 * Simulator-level tests: mask state machine, broadcast semantics,
 * read/write constraints, moves, and statistics (paper §III, §VI).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::PimFixture;

namespace
{

class SimulatorTest : public PimFixture
{
};

} // namespace

TEST_F(SimulatorTest, WriteBroadcastsAcrossMaskedWarpsAndRows)
{
    sim.perform(MicroOp::crossbarMask(Range(0, 2, 2)));
    sim.perform(MicroOp::rowMask(Range(4, 12, 4)));
    sim.perform(MicroOp::write(3, 0xABCD1234));
    for (uint32_t xb : {0u, 2u}) {
        EXPECT_EQ(peekWord(xb, 4, 3), 0xABCD1234u);
        EXPECT_EQ(peekWord(xb, 8, 3), 0xABCD1234u);
        EXPECT_EQ(peekWord(xb, 12, 3), 0xABCD1234u);
        EXPECT_EQ(peekWord(xb, 5, 3), 0u);
    }
    EXPECT_EQ(peekWord(1, 4, 3), 0u) << "unmasked crossbar written";
    EXPECT_EQ(peekWord(3, 8, 3), 0u);
}

TEST_F(SimulatorTest, ReadRequiresSingleWarpSingleRow)
{
    sim.perform(MicroOp::crossbarMask(Range::all(geo.numCrossbars)));
    sim.perform(MicroOp::rowMask(Range::single(0)));
    EXPECT_THROW(sim.read(MicroOp::read(0)), Error);
    sim.perform(MicroOp::crossbarMask(Range::single(1)));
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    EXPECT_THROW(sim.read(MicroOp::read(0)), Error);
}

TEST_F(SimulatorTest, ReadReturnsWrittenValue)
{
    pokeWord(2, 7, 5, 0xFEEDF00D);
    sim.perform(MicroOp::crossbarMask(Range::single(2)));
    sim.perform(MicroOp::rowMask(Range::single(7)));
    EXPECT_EQ(sim.read(MicroOp::read(5)), 0xFEEDF00Du);
}

TEST_F(SimulatorTest, LogicBroadcastsToMaskedCrossbarsOnly)
{
    for (uint32_t xb = 0; xb < geo.numCrossbars; ++xb)
        pokeWord(xb, 0, 2, 0xFFFFFFFF);
    sim.perform(MicroOp::crossbarMask(Range(1, 3, 2)));
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    // INIT0 slot 2 across all partitions.
    sim.perform(MicroOp::logicH(Gate::Init0, 0, 0, geo.column(2, 0),
                                geo.partitions - 1, 1));
    EXPECT_EQ(peekWord(0, 0, 2), 0xFFFFFFFFu);
    EXPECT_EQ(peekWord(1, 0, 2), 0u);
    EXPECT_EQ(peekWord(2, 0, 2), 0xFFFFFFFFu);
    EXPECT_EQ(peekWord(3, 0, 2), 0u);
}

TEST_F(SimulatorTest, MoveTransfersBetweenCrossbars)
{
    pokeWord(0, 9, 4, 111);
    pokeWord(1, 9, 4, 222);
    sim.perform(MicroOp::crossbarMask(Range(0, 1, 1)));
    // dstStart = 2: crossbar 0 -> 2, crossbar 1 -> 3.
    sim.perform(MicroOp::move(2, 9, 30, 4, 6));
    EXPECT_EQ(peekWord(2, 30, 6), 111u);
    EXPECT_EQ(peekWord(3, 30, 6), 222u);
}

TEST_F(SimulatorTest, MoveOverlappingShiftChain)
{
    // Read-all-then-write-all: shifting a chain by one crossbar must
    // not cascade the first value through the chain.
    pokeWord(0, 0, 0, 10);
    pokeWord(1, 0, 0, 20);
    pokeWord(2, 0, 0, 30);
    sim.perform(MicroOp::crossbarMask(Range(0, 2, 1)));
    sim.perform(MicroOp::move(1, 0, 0, 0, 0));
    EXPECT_EQ(peekWord(1, 0, 0), 10u);
    EXPECT_EQ(peekWord(2, 0, 0), 20u);
    EXPECT_EQ(peekWord(3, 0, 0), 30u);
}

TEST_F(SimulatorTest, MoveRejectsNonPow4Step)
{
    sim.perform(MicroOp::crossbarMask(Range(0, 3, 3)));
    EXPECT_THROW(sim.perform(MicroOp::move(1, 0, 0, 0, 0)), Error);
}

TEST_F(SimulatorTest, MoveRejectsOutOfRangeDestination)
{
    sim.perform(MicroOp::crossbarMask(Range::single(3)));
    EXPECT_THROW(sim.perform(MicroOp::move(4, 0, 0, 0, 0)), Error);
}

TEST_F(SimulatorTest, StatsCountOpsByClass)
{
    sim.stats().clear();
    sim.perform(MicroOp::crossbarMask(Range::all(geo.numCrossbars)));
    sim.perform(MicroOp::rowMask(Range::all(geo.rows)));
    sim.perform(MicroOp::write(0, 42));
    sim.perform(MicroOp::logicH(Gate::Init1, 0, 0, geo.column(1, 0),
                                geo.partitions - 1, 1));
    sim.perform(MicroOp::logicV(Gate::Init1, 0, 1, 0));
    const Stats &s = sim.stats();
    EXPECT_EQ(s.opCount[size_t(OpClass::CrossbarMask)], 1u);
    EXPECT_EQ(s.opCount[size_t(OpClass::RowMask)], 1u);
    EXPECT_EQ(s.opCount[size_t(OpClass::Write)], 1u);
    EXPECT_EQ(s.opCount[size_t(OpClass::LogicH)], 1u);
    EXPECT_EQ(s.opCount[size_t(OpClass::LogicV)], 1u);
    EXPECT_EQ(s.totalOps(), 5u);
    EXPECT_EQ(s.totalCycles(), 5u);
}

TEST_F(SimulatorTest, MoveCyclesUseHTreeModel)
{
    sim.stats().clear();
    pokeWord(0, 0, 0, 1);
    sim.perform(MicroOp::crossbarMask(Range::single(0)));
    sim.perform(MicroOp::move(1, 0, 0, 0, 0));  // level-1 transfer
    EXPECT_EQ(sim.stats().cycleCount[size_t(OpClass::Move)], 2u);
}

TEST_F(SimulatorTest, BatchInterfaceMatchesDecodedPath)
{
    std::vector<Word> ops = {
        MicroOp::crossbarMask(Range::single(1)).encode(),
        MicroOp::rowMask(Range::single(6)).encode(),
        MicroOp::write(2, 777).encode(),
    };
    sim.performBatch(ops.data(), ops.size());
    EXPECT_EQ(peekWord(1, 6, 2), 777u);
    EXPECT_EQ(sim.performRead(enc::read(2)), 777u);
}

TEST_F(SimulatorTest, VerticalOpAppliesToMaskedCrossbars)
{
    pokeWord(0, 3, 1, 0x0000BEEF);
    pokeWord(1, 3, 1, 0x0000BEEF);
    sim.perform(MicroOp::crossbarMask(Range::single(0)));
    sim.perform(MicroOp::logicV(Gate::Init1, 0, 50, 1));
    sim.perform(MicroOp::logicV(Gate::Not, 3, 50, 1));
    EXPECT_EQ(peekWord(0, 50, 1), ~0x0000BEEFu);
    EXPECT_EQ(peekWord(1, 50, 1), 0u) << "unmasked crossbar affected";
}

TEST_F(SimulatorTest, GeometryValidationRejectsBadConfigs)
{
    Geometry g = testGeometry();
    g.numCrossbars = 8;  // not a power of four
    EXPECT_THROW(Simulator s(g), Error);
    g = testGeometry();
    g.wordBits = 16;  // must equal partitions
    EXPECT_THROW(Simulator s(g), Error);
    g = testGeometry();
    g.userRegs = 31;  // leaves < 4 scratch slots
    EXPECT_THROW(Simulator s(g), Error);
}
