/**
 * @file
 * Bitonic sorting tests (paper §VI "Sorting"): intra-warp and
 * inter-warp (multi-crossbar) sorts on int and float tensors, views,
 * and validation.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

namespace
{

class SortTest : public ::testing::Test
{
  protected:
    SortTest() : dev(testGeometry()) {}

    Device dev;
    Rng rng;
};

} // namespace

TEST_F(SortTest, SmallIntSort)
{
    std::vector<int32_t> v = {5, -3, 8, 0, -3, 2, 7, 1};
    Tensor t = Tensor::fromVector(v, &dev);
    t.sort();
    std::sort(v.begin(), v.end());
    EXPECT_EQ(t.toIntVector(), v);
}

TEST_F(SortTest, IntraWarpFloatSort)
{
    const uint64_t n = dev.geometry().rows;  // one full warp
    std::vector<float> v = rng.floatVec(n, -1e4f, 1e4f);
    Tensor t = Tensor::fromVector(v, &dev);
    t.sort();
    std::sort(v.begin(), v.end());
    EXPECT_EQ(t.toFloatVector(), v);
}

TEST_F(SortTest, InterWarpSortAcrossCrossbars)
{
    const uint64_t n = dev.geometry().rows * dev.geometry().numCrossbars;
    std::vector<int32_t> v(n);
    for (auto &x : v)
        x = rng.int32();
    Tensor t = Tensor::fromVector(v, &dev);
    t.sort();
    std::sort(v.begin(), v.end());
    EXPECT_EQ(t.toIntVector(), v);
}

TEST_F(SortTest, TwoWarpSort)
{
    const uint64_t n = dev.geometry().rows * 2;
    std::vector<float> v = rng.floatVec(n, -1.f, 1.f);
    Tensor t = Tensor::fromVector(v, &dev);
    t.sort();
    std::sort(v.begin(), v.end());
    EXPECT_EQ(t.toFloatVector(), v);
}

TEST_F(SortTest, SortedIsNonDestructive)
{
    std::vector<int32_t> v = {4, 1, 3, 2};
    Tensor t = Tensor::fromVector(v, &dev);
    Tensor s = t.sorted();
    EXPECT_EQ(t.toIntVector(), v);
    EXPECT_EQ(s.toIntVector(), (std::vector<int32_t>{1, 2, 3, 4}));
}

TEST_F(SortTest, SortThroughView)
{
    // The artifact's x[::2].sort() example (§G).
    std::vector<float> v = {0.f, 0.f, 2.5f, 1.25f, 2.25f, 0.f, 0.f, 0.f};
    Tensor x = Tensor::fromVector(v, &dev);
    Tensor view = x.every(2);
    view.sort();
    EXPECT_EQ(view.toFloatVector(),
              (std::vector<float>{0.f, 0.f, 2.25f, 2.5f}));
    // Odd elements untouched.
    EXPECT_EQ(x.getF(1), 0.f);
    EXPECT_EQ(x.getF(3), 1.25f);
}

TEST_F(SortTest, AlreadySortedAndReversed)
{
    std::vector<int32_t> inc(64), dec(64);
    for (int i = 0; i < 64; ++i) {
        inc[i] = i;
        dec[i] = 63 - i;
    }
    Tensor a = Tensor::fromVector(inc, &dev);
    a.sort();
    EXPECT_EQ(a.toIntVector(), inc);
    Tensor b = Tensor::fromVector(dec, &dev);
    b.sort();
    EXPECT_EQ(b.toIntVector(), inc);
}

TEST_F(SortTest, DuplicatesAndNegatives)
{
    std::vector<int32_t> v(128);
    for (auto &x : v)
        x = rng.int32In(-3, 3);
    Tensor t = Tensor::fromVector(v, &dev);
    t.sort();
    std::sort(v.begin(), v.end());
    EXPECT_EQ(t.toIntVector(), v);
}

TEST_F(SortTest, RejectsNonPowerOfTwo)
{
    Tensor t = Tensor::zeros(12, DType::Int32, &dev);
    EXPECT_THROW(t.sort(), Error);
}

TEST_F(SortTest, TrivialLengths)
{
    Tensor one = Tensor::fromVector(std::vector<int32_t>{9}, &dev);
    one.sort();
    EXPECT_EQ(one.getI(0), 9);
    Tensor two = Tensor::fromVector(std::vector<int32_t>{7, -7}, &dev);
    two.sort();
    EXPECT_EQ(two.toIntVector(), (std::vector<int32_t>{-7, 7}));
}

TEST_F(SortTest, NoStorageLeaks)
{
    std::vector<int32_t> v(64);
    for (auto &x : v)
        x = rng.int32();
    Tensor t = Tensor::fromVector(v, &dev);
    const uint32_t before = dev.allocator().liveAllocations();
    t.sort();
    EXPECT_EQ(dev.allocator().liveAllocations(), before);
}
