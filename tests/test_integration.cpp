/**
 * @file
 * End-to-end integration tests reproducing the paper's example
 * programs: the Fig. 12 application (myFunc = a*b + a, tensor writes,
 * even-index view reduction printing 32.0) and the artifact §G
 * interactive transcript (allocation, writes, views, sum, sort).
 * Also checks the end-to-end stack only interacts with the simulator
 * through micro-operations and that profiling windows behave.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "pim/pypim.hpp"

using namespace pypim;

namespace
{

class Integration : public ::testing::Test
{
  protected:
    Integration() : dev(testGeometry()) {}

    /** The paper's myFunc (Fig. 2 / Fig. 12). */
    static Tensor
    myFunc(const Tensor &a, const Tensor &b)
    {
        return a * b + a;
    }

    Device dev;
};

} // namespace

TEST_F(Integration, Figure12Program)
{
    // x = pim.zeros(n, float32); y = pim.zeros(n, float32)
    const uint64_t n = 128;  // scaled-down 2**20
    Tensor x = Tensor::zeros(n, DType::Float32, &dev);
    Tensor y = Tensor::zeros(n, DType::Float32, &dev);
    // x[4], y[4] = 8.0, 0.5 ; x[5], y[5] = 20.0, 1.0 ;
    // x[8], y[8] = 10.0, 1.0
    x.set(4, 8.0f);
    y.set(4, 0.5f);
    x.set(5, 20.0f);
    y.set(5, 1.0f);
    x.set(8, 10.0f);
    y.set(8, 1.0f);
    // z = myFunc(x, y)
    Tensor z = myFunc(x, y);
    EXPECT_EQ(z.getF(4), 8.0f * 0.5f + 8.0f);    // 12.0
    EXPECT_EQ(z.getF(5), 20.0f * 1.0f + 20.0f);  // 40.0
    EXPECT_EQ(z.getF(8), 10.0f * 1.0f + 10.0f);  // 20.0
    EXPECT_EQ(z.getF(0), 0.0f);
    // print(z[::2].sum())  ->  32.0 = 8*1.5 + 10*2
    EXPECT_EQ(z.every(2).sum<float>(), 32.0f);
}

TEST_F(Integration, ArtifactInteractiveTranscript)
{
    // >>> x = pim.zeros(8, dtype=pim.float32)
    Tensor x = Tensor::zeros(8, DType::Float32, &dev);
    EXPECT_EQ(x.toFloatVector(),
              (std::vector<float>{0, 0, 0, 0, 0, 0, 0, 0}));
    // >>> x[2] = 2.5 ; x[3] = 1.25 ; x[4] = 2.25
    x.set(2, 2.5f);
    x.set(3, 1.25f);
    x.set(4, 2.25f);
    EXPECT_EQ(x.toFloatVector(),
              (std::vector<float>{0, 0, 2.5f, 1.25f, 2.25f, 0, 0, 0}));
    // >>> x[::2]
    Tensor view = x.every(2);
    EXPECT_TRUE(view.isView());
    EXPECT_EQ(view.toFloatVector(),
              (std::vector<float>{0, 2.5f, 2.25f, 0}));
    // >>> x[::2].sum()  ->  4.75
    EXPECT_EQ(view.sum<float>(), 4.75f);
    // >>> x[::2].sort() -> [0.0, 0.0, 2.25, 2.5]
    view.sort();
    EXPECT_EQ(view.toFloatVector(),
              (std::vector<float>{0, 0, 2.25f, 2.5f}));
    // Odd elements are untouched by the view sort.
    EXPECT_EQ(x.getF(3), 1.25f);
}

TEST_F(Integration, HybridIntPipeline)
{
    // A small "application": clamp negatives to zero, then dot product.
    const uint64_t n = 64;
    std::vector<int32_t> va(n), vb(n);
    int64_t expect = 0;
    for (uint64_t i = 0; i < n; ++i) {
        va[i] = static_cast<int32_t>(i * 7) - 200;
        vb[i] = static_cast<int32_t>(i) - 30;
        const int32_t relu = va[i] < 0 ? 0 : va[i];
        expect += static_cast<int64_t>(relu) * vb[i];
    }
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    Tensor zero = Tensor::zeros(n, DType::Int32, &dev);
    Tensor relu = where(a < zero, zero, a);
    const int32_t dot = (relu * b).sum<int32_t>();
    EXPECT_EQ(dot, static_cast<int32_t>(expect));
}

TEST_F(Integration, ProfilerWindowsCount)
{
    Tensor a = Tensor::ones(64, DType::Float32, &dev);
    Tensor b = Tensor::ones(64, DType::Float32, &dev);
    Profiler prof(dev);
    Tensor c = a * b;
    const uint64_t mulOps = prof.microOps();
    EXPECT_GT(mulOps, 0u);
    EXPECT_GT(prof.cycles(), 0u);
    EXPECT_GT(prof.pimSeconds(), 0.0);
    prof.reset();
    EXPECT_EQ(prof.microOps(), 0u);
    Tensor d = c + a;
    EXPECT_GT(prof.microOps(), 0u);
    EXPECT_LT(prof.microOps(), mulOps)
        << "float add should be cheaper than float mul";
}

TEST_F(Integration, DriverIsOnlyMicroOpInterface)
{
    // The library must drive the chip exclusively through micro-ops:
    // total simulator ops grow with every tensor operation.
    const uint64_t before = dev.stats().totalOps();
    Tensor a = Tensor::full(32, 3.0f, &dev);
    Tensor b = a * a;
    (void)b.getF(7);
    EXPECT_GT(dev.stats().totalOps(), before);
}

TEST_F(Integration, CordicSineMatchesStdSin)
{
    // CORDIC rotation-mode sine (paper §VI "CORDIC Sine/Cosine"),
    // written purely with tensor ops, checked against std::sin.
    const uint64_t n = 64;
    std::vector<float> angles(n);
    for (uint64_t i = 0; i < n; ++i)
        angles[i] = -1.5f + 3.0f * static_cast<float>(i) / (n - 1);
    Tensor z = Tensor::fromVector(angles, &dev);

    const int iters = 20;
    // Precomputed CORDIC gain 1/K and atan table.
    double kinv = 1.0;
    for (int k = 0; k < iters; ++k)
        kinv *= std::sqrt(1.0 + std::ldexp(1.0, -2 * k));
    Tensor x = Tensor::full(n, static_cast<float>(1.0 / kinv), &dev);
    Tensor y = Tensor::zeros(n, DType::Float32, &dev);
    Tensor zero = Tensor::zeros(n, DType::Float32, &dev);
    for (int k = 0; k < iters; ++k) {
        const float angle =
            static_cast<float>(std::atan(std::ldexp(1.0, -k)));
        const float p2 = static_cast<float>(std::ldexp(1.0, -k));
        Tensor d = z >= 0.0f;  // rotate towards zero residual angle
        Tensor xs = x * p2;
        Tensor ys = y * p2;
        Tensor xn = where(d, x - ys, x + ys);
        Tensor yn = where(d, y + xs, y - xs);
        Tensor zn = where(d, z - angle, z + angle);
        x = xn;
        y = yn;
        z = zn;
        (void)zero;
    }
    const auto sines = y.toFloatVector();
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_NEAR(sines[i], std::sin(angles[i]), 2e-4)
            << "angle " << angles[i];
}
