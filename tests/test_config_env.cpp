/**
 * @file
 * Directed tests for the environment-knob parser
 * (EngineConfig::fromEnv): malformed or out-of-range values of
 * PYPIM_THREADS / PYPIM_DEVICES must throw a clear pypim::Error
 * instead of silently misconfiguring the stack (atol-style parsing
 * read "abc" as 0 and "12abc" as 12), and the boolean knobs must
 * reject anything but on|off|1|0.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/config.hpp"
#include "common/error.hpp"

using namespace pypim;

namespace
{

/** Scoped setter restoring the previous value on destruction. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~EnvVar()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

} // namespace

TEST(ConfigEnv, ThreadsRejectsNonNumeric)
{
    for (const char *bad : {"abc", "12abc", "1.5", "0x8", "", " 4",
                            "\n8", "\r8", "\t8", "+4", "-1",
                            "99999999999999999999"}) {
        EnvVar v("PYPIM_THREADS", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_THREADS='" << bad << "'";
    }
}

TEST(ConfigEnv, ThreadsRejectsOutOfRange)
{
    EnvVar v("PYPIM_THREADS", "1048577");  // > 2^20
    EXPECT_THROW(EngineConfig::fromEnv(), Error);
}

TEST(ConfigEnv, ThreadsParsesValidValues)
{
    {
        EnvVar v("PYPIM_THREADS", "0");
        EXPECT_EQ(EngineConfig::fromEnv().threads, 0u);
    }
    {
        EnvVar v("PYPIM_THREADS", "16");
        EXPECT_EQ(EngineConfig::fromEnv().threads, 16u);
    }
}

TEST(ConfigEnv, DevicesRejectsMalformedAndNonPow2)
{
    for (const char *bad : {"abc", "2x", "0", "3", "6", "-2", ""}) {
        EnvVar v("PYPIM_DEVICES", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_DEVICES='" << bad << "'";
    }
}

TEST(ConfigEnv, DevicesParsesPowersOfTwo)
{
    for (uint32_t n : {1u, 2u, 4u, 16u}) {
        EnvVar v("PYPIM_DEVICES", std::to_string(n).c_str());
        EXPECT_EQ(EngineConfig::fromEnv().devices, n);
    }
}

TEST(ConfigEnv, SwitchKnobsRejectJunk)
{
    {
        EnvVar v("PYPIM_PIPELINE", "yes");
        EXPECT_THROW(EngineConfig::fromEnv(), Error);
    }
    {
        EnvVar v("PYPIM_TRACE_CACHE", "2");
        EXPECT_THROW(EngineConfig::fromEnv(), Error);
    }
    {
        EnvVar v("PYPIM_AFFINITY", "true");
        EXPECT_THROW(EngineConfig::fromEnv(), Error);
    }
}

TEST(ConfigEnv, AffinityParses)
{
    {
        EnvVar v("PYPIM_AFFINITY", "on");
        EXPECT_TRUE(EngineConfig::fromEnv().affinity);
    }
    {
        EnvVar v("PYPIM_AFFINITY", "0");
        EXPECT_FALSE(EngineConfig::fromEnv().affinity);
    }
}

TEST(ConfigEnv, XbarStorageParses)
{
    {
        EnvVar v("PYPIM_XBAR_STORAGE", "dense");
        EXPECT_EQ(EngineConfig::fromEnv().storage,
                  XbarStorage::Dense);
    }
    {
        EnvVar v("PYPIM_XBAR_STORAGE", "paged");
        EXPECT_EQ(EngineConfig::fromEnv().storage,
                  XbarStorage::Paged);
    }
}

TEST(ConfigEnv, XbarStorageRejectsJunk)
{
    // Case-sensitive exact match only: a typo must fail loudly, not
    // silently run the whole process on the wrong representation.
    for (const char *bad :
         {"Dense", "PAGED", "sparse", "1", "on", " paged", "paged "}) {
        EnvVar v("PYPIM_XBAR_STORAGE", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_XBAR_STORAGE='" << bad << "'";
    }
}

TEST(ConfigEnv, BulkIoParses)
{
    {
        EnvVar v("PYPIM_BULK_IO", "on");
        EXPECT_TRUE(EngineConfig::fromEnv().bulkIo);
    }
    {
        EnvVar v("PYPIM_BULK_IO", "1");
        EXPECT_TRUE(EngineConfig::fromEnv().bulkIo);
    }
    {
        EnvVar v("PYPIM_BULK_IO", "off");
        EXPECT_FALSE(EngineConfig::fromEnv().bulkIo);
    }
    {
        EnvVar v("PYPIM_BULK_IO", "0");
        EXPECT_FALSE(EngineConfig::fromEnv().bulkIo);
    }
}

TEST(ConfigEnv, BulkIoRejectsJunk)
{
    for (const char *bad : {"yes", "true", "2", "ON", " on"}) {
        EnvVar v("PYPIM_BULK_IO", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_BULK_IO='" << bad << "'";
    }
}

TEST(ConfigEnv, CompiledReplayParses)
{
    {
        EnvVar v("PYPIM_COMPILED_REPLAY", "on");
        EXPECT_TRUE(EngineConfig::fromEnv().compiledReplay);
    }
    {
        EnvVar v("PYPIM_COMPILED_REPLAY", "off");
        EXPECT_FALSE(EngineConfig::fromEnv().compiledReplay);
    }
    {
        EnvVar v("PYPIM_COMPILED_REPLAY", "0");
        EXPECT_FALSE(EngineConfig::fromEnv().compiledReplay);
    }
    for (const char *bad : {"yes", "true", "ON", " off"}) {
        EnvVar v("PYPIM_COMPILED_REPLAY", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_COMPILED_REPLAY='" << bad << "'";
    }
}

TEST(ConfigEnv, DefaultsWhenUnset)
{
    ::unsetenv("PYPIM_DEVICES");
    ::unsetenv("PYPIM_AFFINITY");
    ::unsetenv("PYPIM_XBAR_STORAGE");
    ::unsetenv("PYPIM_BULK_IO");
    ::unsetenv("PYPIM_COMPILED_REPLAY");
    const EngineConfig c = EngineConfig::fromEnv();
    EXPECT_EQ(c.devices, 1u);
    EXPECT_FALSE(c.affinity);
    EXPECT_EQ(c.storage, XbarStorage::Paged)
        << "paged is the default representation; dense is the "
           "opt-in parity oracle";
    EXPECT_TRUE(c.bulkIo)
        << "bulk I/O is the default; the element-wise path is the "
           "opt-in parity oracle";
    EXPECT_TRUE(c.compiledReplay)
        << "compiled trace replay is the default; the interpreter is "
           "the opt-in parity oracle";
}

TEST(ConfigEnv, TransportParses)
{
    {
        EnvVar v("PYPIM_TRANSPORT", "inproc");
        EXPECT_EQ(EngineConfig::fromEnv().transport,
                  TransportKind::Inproc);
    }
    {
        EnvVar v("PYPIM_TRANSPORT", "socket");
        EXPECT_EQ(EngineConfig::fromEnv().transport,
                  TransportKind::Socket);
    }
}

TEST(ConfigEnv, TransportRejectsJunk)
{
    // Case-sensitive exact match only: a typo must fail loudly, not
    // silently keep the sub-devices in-process.
    for (const char *bad : {"Socket", "INPROC", "tcp", "1", "on",
                            " socket", "socket ", "sockets", ""}) {
        EnvVar v("PYPIM_TRANSPORT", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_TRANSPORT='" << bad << "'";
    }
}

TEST(ConfigEnv, TransportDefaultsToInproc)
{
    ::unsetenv("PYPIM_TRANSPORT");
    EXPECT_EQ(EngineConfig::fromEnv().transport, TransportKind::Inproc);
}

TEST(ConfigEnv, FaultsForwardedVerbatim)
{
    // The spec is stored raw and validated at device construction
    // (sim/fault.hpp), so fromEnv itself accepts any string.
    EnvVar v("PYPIM_FAULTS", "seed=7:flip=25:stuck=2");
    EXPECT_EQ(EngineConfig::fromEnv().faults, "seed=7:flip=25:stuck=2");
}

TEST(ConfigEnv, VerifyStateParses)
{
    {
        EnvVar v("PYPIM_VERIFY_STATE", "on");
        EXPECT_TRUE(EngineConfig::fromEnv().verifyState);
    }
    {
        EnvVar v("PYPIM_VERIFY_STATE", "0");
        EXPECT_FALSE(EngineConfig::fromEnv().verifyState);
    }
    for (const char *bad : {"yes", "true", "ON", " on"}) {
        EnvVar v("PYPIM_VERIFY_STATE", bad);
        EXPECT_THROW(EngineConfig::fromEnv(), Error)
            << "PYPIM_VERIFY_STATE='" << bad << "'";
    }
}

TEST(ConfigEnv, FaultDefaultsWhenUnset)
{
    ::unsetenv("PYPIM_FAULTS");
    ::unsetenv("PYPIM_VERIFY_STATE");
    const EngineConfig c = EngineConfig::fromEnv();
    EXPECT_TRUE(c.faults.empty())
        << "no injection unless explicitly requested";
    EXPECT_FALSE(c.verifyState)
        << "verification is opt-in (O(resident data) per batch)";
}
