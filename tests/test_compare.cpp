/**
 * @file
 * Comparison tests (Table II): signed int32 and IEEE float32 ordered
 * predicates, including NaN (all ordered predicates false, != true)
 * and signed-zero equality.
 */
#include <gtest/gtest.h>

#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::bitsFloat;
using pypim::test::DriverFixture;
using pypim::test::floatBits;

namespace
{

class CompareTest : public DriverFixture
{
  protected:
    template <typename HostFn>
    void
    checkInt(ROp op, HostFn host, const std::vector<uint32_t> &a,
             const std::vector<uint32_t> &b)
    {
        loadReg(0, a);
        loadReg(1, b);
        run(op, DType::Int32, 2, 0, 1);
        const auto got = readReg(2);
        for (uint32_t i = 0; i < threads(); ++i) {
            const int32_t x = static_cast<int32_t>(a[i]);
            const int32_t y = static_cast<int32_t>(b[i]);
            ASSERT_EQ(got[i], host(x, y) ? 1u : 0u)
                << ropName(op) << "(" << x << ", " << y << ")";
        }
    }

    template <typename HostFn>
    void
    checkFloat(ROp op, HostFn host, const std::vector<uint32_t> &a,
               const std::vector<uint32_t> &b)
    {
        loadReg(0, a);
        loadReg(1, b);
        run(op, DType::Float32, 2, 0, 1);
        const auto got = readReg(2);
        for (uint32_t i = 0; i < threads(); ++i) {
            const float x = bitsFloat(a[i]);
            const float y = bitsFloat(b[i]);
            ASSERT_EQ(got[i], host(x, y) ? 1u : 0u)
                << ropName(op) << "(" << x << ", " << y << ") bits 0x"
                << std::hex << a[i] << ", 0x" << b[i];
        }
    }

    std::vector<uint32_t>
    mixedInts(uint64_t seed)
    {
        Rng r(seed);
        std::vector<uint32_t> v(threads());
        for (uint32_t i = 0; i < threads(); ++i) {
            switch (i % 4) {
              case 0: v[i] = r.word(); break;
              case 1: v[i] = static_cast<uint32_t>(r.int32In(-5, 5)); break;
              case 2: v[i] = 0x80000000u + i; break;
              default: v[i] = 0x7FFFFFFFu - i; break;
            }
        }
        return v;
    }

    std::vector<uint32_t>
    mixedFloats(uint64_t seed)
    {
        static const uint32_t edges[] = {
            0x00000000u, 0x80000000u, 0x7F800000u, 0xFF800000u,
            0x7FC00000u, 0x3F800000u, 0xBF800000u, 0x00000001u,
        };
        Rng r(seed);
        std::vector<uint32_t> v(threads());
        for (uint32_t i = 0; i < threads(); ++i) {
            v[i] = (i % 3 == 0) ? edges[(i / 3 + seed) % std::size(edges)]
                                : r.word();
        }
        return v;
    }
};

} // namespace

TEST_F(CompareTest, IntAllPredicates)
{
    const auto a = mixedInts(1);
    auto b = mixedInts(2);
    // Force exact equality on a subset.
    for (uint32_t i = 0; i < threads(); i += 5)
        b[i] = a[i];
    checkInt(ROp::Lt, [](int32_t x, int32_t y) { return x < y; }, a, b);
    checkInt(ROp::Le, [](int32_t x, int32_t y) { return x <= y; }, a, b);
    checkInt(ROp::Gt, [](int32_t x, int32_t y) { return x > y; }, a, b);
    checkInt(ROp::Ge, [](int32_t x, int32_t y) { return x >= y; }, a, b);
    checkInt(ROp::Eq, [](int32_t x, int32_t y) { return x == y; }, a, b);
    checkInt(ROp::Ne, [](int32_t x, int32_t y) { return x != y; }, a, b);
}

TEST_F(CompareTest, IntSignBoundaries)
{
    std::vector<uint32_t> a(threads()), b(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = (i % 2) ? 0x80000000u : 0x7FFFFFFFu;
        b[i] = (i % 4 < 2) ? 0u : 0xFFFFFFFFu;
    }
    checkInt(ROp::Lt, [](int32_t x, int32_t y) { return x < y; }, a, b);
    checkInt(ROp::Ge, [](int32_t x, int32_t y) { return x >= y; }, a, b);
}

TEST_F(CompareTest, FloatAllPredicates)
{
    const auto a = mixedFloats(3);
    auto b = mixedFloats(4);
    for (uint32_t i = 0; i < threads(); i += 7)
        b[i] = a[i];
    checkFloat(ROp::Lt, [](float x, float y) { return x < y; }, a, b);
    checkFloat(ROp::Le, [](float x, float y) { return x <= y; }, a, b);
    checkFloat(ROp::Gt, [](float x, float y) { return x > y; }, a, b);
    checkFloat(ROp::Ge, [](float x, float y) { return x >= y; }, a, b);
    checkFloat(ROp::Eq, [](float x, float y) { return x == y; }, a, b);
    checkFloat(ROp::Ne, [](float x, float y) { return x != y; }, a, b);
}

TEST_F(CompareTest, FloatNaNSemantics)
{
    std::vector<uint32_t> a(threads(), 0x7FC00000u);  // NaN
    auto b = mixedFloats(5);
    checkFloat(ROp::Lt, [](float x, float y) { return x < y; }, a, b);
    checkFloat(ROp::Le, [](float x, float y) { return x <= y; }, a, b);
    checkFloat(ROp::Eq, [](float x, float y) { return x == y; }, a, b);
    checkFloat(ROp::Ne, [](float x, float y) { return x != y; }, a, b);
    // And NaN on the right side.
    checkFloat(ROp::Gt, [](float x, float y) { return x > y; }, b, a);
    checkFloat(ROp::Ge, [](float x, float y) { return x >= y; }, b, a);
}

TEST_F(CompareTest, FloatSignedZeroEquality)
{
    std::vector<uint32_t> a(threads()), b(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = (i % 2) ? 0x80000000u : 0u;           // -0 / +0
        b[i] = (i % 4 < 2) ? 0u : 0x80000000u;
    }
    checkFloat(ROp::Eq, [](float x, float y) { return x == y; }, a, b);
    checkFloat(ROp::Lt, [](float x, float y) { return x < y; }, a, b);
    checkFloat(ROp::Ge, [](float x, float y) { return x >= y; }, a, b);
}

TEST_F(CompareTest, FloatOrderingAcrossSignsAndMagnitudes)
{
    Rng r(6);
    std::vector<uint32_t> a(threads()), b(threads());
    for (uint32_t i = 0; i < threads(); ++i) {
        a[i] = floatBits(r.floatIn(-1e20f, 1e20f));
        b[i] = floatBits(r.floatIn(-1e-20f, 1e-20f));
        if (i % 2)
            std::swap(a[i], b[i]);
    }
    checkFloat(ROp::Lt, [](float x, float y) { return x < y; }, a, b);
    checkFloat(ROp::Gt, [](float x, float y) { return x > y; }, a, b);
}
