/**
 * @file
 * Reduction tests (paper §VI "Reduction" benchmark): logarithmic
 * sum/prod/min/max over int and float tensors, including strided views
 * and multi-warp tensors that exercise the inter-warp H-tree folds.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

namespace
{

class ReduceTest : public ::testing::Test
{
  protected:
    ReduceTest() : dev(testGeometry()) {}

    Device dev;
    Rng rng;
};

} // namespace

TEST_F(ReduceTest, IntSumSmall)
{
    std::vector<int32_t> v(37);
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<int32_t>(i) - 5;
    Tensor t = Tensor::fromVector(v, &dev);
    EXPECT_EQ(t.sum<int32_t>(),
              std::accumulate(v.begin(), v.end(), int32_t{0}));
}

TEST_F(ReduceTest, IntSumMultiWarp)
{
    const uint64_t n = dev.geometry().rows * 3 + 17;
    std::vector<int32_t> v(n);
    int32_t expect = 0;
    for (size_t i = 0; i < v.size(); ++i) {
        v[i] = rng.int32In(-10000, 10000);
        expect += v[i];
    }
    Tensor t = Tensor::fromVector(v, &dev);
    EXPECT_EQ(t.sum<int32_t>(), expect);
}

TEST_F(ReduceTest, FloatSumMatchesSequentialFoldOrder)
{
    // The PIM reduction folds pairwise (tree order); emulate the same
    // tree on the host for bit-exact comparison.
    const uint64_t n = 64;
    std::vector<float> v = rng.floatVec(n, -100.f, 100.f);
    Tensor t = Tensor::fromVector(v, &dev);
    std::vector<float> host = v;
    while (host.size() > 1) {
        const size_t half = (host.size() + 1) / 2;
        const size_t hiLen = host.size() - half;
        std::vector<float> next(half);
        for (size_t i = 0; i < hiLen; ++i)
            next[i] = host[i] + host[half + i];
        for (size_t i = hiLen; i < half; ++i)
            next[i] = host[i];
        host = next;
    }
    EXPECT_EQ(t.sum<float>(), host[0]);
}

TEST_F(ReduceTest, FloatSumApproximatesTotal)
{
    const uint64_t n = dev.geometry().rows * 2;
    std::vector<float> v = rng.floatVec(n, 0.f, 1.f);
    Tensor t = Tensor::fromVector(v, &dev);
    const double expect =
        std::accumulate(v.begin(), v.end(), 0.0);
    EXPECT_NEAR(t.sum<float>(), expect, 1e-2);
}

TEST_F(ReduceTest, ProdIntExact)
{
    std::vector<int32_t> v = {3, -2, 5, 1, 7, 2};
    Tensor t = Tensor::fromVector(v, &dev);
    EXPECT_EQ(t.prod<int32_t>(), 3 * -2 * 5 * 1 * 7 * 2);
}

TEST_F(ReduceTest, ProdFloat)
{
    std::vector<float> v = {1.5f, -2.0f, 0.25f, 8.0f, 3.0f};
    Tensor t = Tensor::fromVector(v, &dev);
    // Powers of two and small factors: exact in float for any order.
    EXPECT_EQ(t.prod<float>(), 1.5f * -2.0f * 0.25f * 8.0f * 3.0f);
}

TEST_F(ReduceTest, MinMaxIntAndFloat)
{
    const uint64_t n = dev.geometry().rows + 13;
    std::vector<int32_t> vi(n);
    for (auto &x : vi)
        x = rng.int32();
    Tensor ti = Tensor::fromVector(vi, &dev);
    EXPECT_EQ(ti.min<int32_t>(), *std::min_element(vi.begin(), vi.end()));
    EXPECT_EQ(ti.max<int32_t>(), *std::max_element(vi.begin(), vi.end()));

    std::vector<float> vf = rng.floatVec(n, -1e6f, 1e6f);
    Tensor tf = Tensor::fromVector(vf, &dev);
    EXPECT_EQ(tf.min<float>(), *std::min_element(vf.begin(), vf.end()));
    EXPECT_EQ(tf.max<float>(), *std::max_element(vf.begin(), vf.end()));
}

TEST_F(ReduceTest, SumOfStridedView)
{
    // The paper's Fig. 12: z[::2].sum().
    std::vector<float> v(64, 0.0f);
    v[4] = 8.0f * 1.5f;
    v[8] = 10.0f * 2.0f;
    v[5] = 123.0f;  // odd index: excluded
    Tensor t = Tensor::fromVector(v, &dev);
    EXPECT_EQ(t.every(2).sum<float>(), 32.0f);
}

TEST_F(ReduceTest, SingleElementAndIdentities)
{
    Tensor t = Tensor::fromVector(std::vector<int32_t>{42}, &dev);
    EXPECT_EQ(t.sum<int32_t>(), 42);
    EXPECT_EQ(t.min<int32_t>(), 42);
    Tensor ones = Tensor::ones(33, DType::Int32, &dev);
    EXPECT_EQ(ones.sum<int32_t>(), 33);
    EXPECT_EQ(ones.prod<int32_t>(), 1);
}

TEST_F(ReduceTest, ReductionDoesNotDisturbInput)
{
    std::vector<int32_t> v(100);
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<int32_t>(i);
    Tensor t = Tensor::fromVector(v, &dev);
    (void)t.sum<int32_t>();
    EXPECT_EQ(t.toIntVector(), v);
}

TEST_F(ReduceTest, NoStorageLeaksAcrossReductions)
{
    Tensor t = Tensor::ones(dev.geometry().rows * 2, DType::Int32, &dev);
    const uint32_t before = dev.allocator().liveAllocations();
    for (int i = 0; i < 3; ++i)
        (void)t.sum<int32_t>();
    EXPECT_EQ(dev.allocator().liveAllocations(), before);
}
