/**
 * @file
 * Tensor library tests: factories, host I/O, views, elementwise
 * operators (with alignment fall-backs), scalar broadcasts, where/abs/
 * sign, and storage lifetime.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

namespace
{

class TensorTest : public ::testing::Test
{
  protected:
    TensorTest() : dev(testGeometry()) {}

    std::vector<float>
    randFloats(size_t n, float lo = -100.f, float hi = 100.f)
    {
        return rng.floatVec(n, lo, hi);
    }

    std::vector<int32_t>
    randInts(size_t n, int32_t lo = -1000, int32_t hi = 1000)
    {
        std::vector<int32_t> v(n);
        for (auto &x : v)
            x = rng.int32In(lo, hi);
        return v;
    }

    Device dev;
    Rng rng;
};

} // namespace

TEST_F(TensorTest, ZerosAndFull)
{
    Tensor z = Tensor::zeros(100, DType::Float32, &dev);
    EXPECT_EQ(z.size(), 100u);
    EXPECT_EQ(z.dtype(), DType::Float32);
    for (uint64_t i : {0ull, 50ull, 99ull})
        EXPECT_EQ(z.getF(i), 0.0f);
    Tensor f = Tensor::full(80, 2.5f, &dev);
    for (uint64_t i : {0ull, 79ull})
        EXPECT_EQ(f.getF(i), 2.5f);
    Tensor n = Tensor::full(10, int32_t{-7}, &dev);
    EXPECT_EQ(n.getI(3), -7);
}

TEST_F(TensorTest, MultiWarpFactories)
{
    const uint64_t n = dev.geometry().rows * 3 + 5;
    Tensor f = Tensor::full(n, 1.5f, &dev);
    EXPECT_EQ(f.getF(0), 1.5f);
    EXPECT_EQ(f.getF(n - 1), 1.5f);
    EXPECT_EQ(f.getF(dev.geometry().rows * 2), 1.5f);
}

TEST_F(TensorTest, FromToVectorRoundTrip)
{
    const auto v = randFloats(150);
    Tensor t = Tensor::fromVector(v, &dev);
    EXPECT_EQ(t.toFloatVector(), v);
    const auto w = randInts(150);
    Tensor u = Tensor::fromVector(w, &dev);
    EXPECT_EQ(u.toIntVector(), w);
}

TEST_F(TensorTest, SetGetElementwise)
{
    Tensor t = Tensor::zeros(8, DType::Float32, &dev);
    t.set(4, 8.0f);
    t.set(5, 20.0f);
    EXPECT_EQ(t.getF(4), 8.0f);
    EXPECT_EQ(t.getF(5), 20.0f);
    EXPECT_EQ(t.getF(0), 0.0f);
}

TEST_F(TensorTest, IotaSingleAndMultiWarp)
{
    Tensor small = Tensor::iota(50, &dev);
    for (uint64_t i : {0ull, 17ull, 49ull})
        EXPECT_EQ(small.getI(i), static_cast<int32_t>(i));
    const uint64_t n = dev.geometry().rows * 2 + 9;
    Tensor big = Tensor::iota(n, &dev);
    const auto v = big.toIntVector();
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(v[i], static_cast<int32_t>(i)) << "i=" << i;
}

TEST_F(TensorTest, ElementwiseFloatArithmetic)
{
    const auto va = randFloats(200);
    const auto vb = randFloats(200);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto sum = (a + b).toFloatVector();
    const auto dif = (a - b).toFloatVector();
    const auto prd = (a * b).toFloatVector();
    const auto quo = (a / b).toFloatVector();
    for (size_t i = 0; i < va.size(); ++i) {
        ASSERT_EQ(sum[i], va[i] + vb[i]) << i;
        ASSERT_EQ(dif[i], va[i] - vb[i]) << i;
        ASSERT_EQ(prd[i], va[i] * vb[i]) << i;
        ASSERT_EQ(quo[i], va[i] / vb[i]) << i;
    }
}

TEST_F(TensorTest, ElementwiseIntArithmetic)
{
    const auto va = randInts(200);
    auto vb = randInts(200);
    for (auto &x : vb)
        if (x == 0)
            x = 3;
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto sum = (a + b).toIntVector();
    const auto prd = (a * b).toIntVector();
    const auto quo = (a / b).toIntVector();
    const auto rem = (a % b).toIntVector();
    const auto neg = (-a).toIntVector();
    for (size_t i = 0; i < va.size(); ++i) {
        ASSERT_EQ(sum[i], va[i] + vb[i]) << i;
        ASSERT_EQ(prd[i], va[i] * vb[i]) << i;
        ASSERT_EQ(quo[i], va[i] / vb[i]) << i;
        ASSERT_EQ(rem[i], va[i] % vb[i]) << i;
        ASSERT_EQ(neg[i], -va[i]) << i;
    }
}

TEST_F(TensorTest, ScalarBroadcasts)
{
    const auto va = randFloats(64);
    Tensor a = Tensor::fromVector(va, &dev);
    const auto r1 = (a * 2.0f).toFloatVector();
    const auto r2 = (1.0f + a).toFloatVector();
    const auto r3 = (a - 0.5f).toFloatVector();
    const auto r4 = (10.0f / a).toFloatVector();
    for (size_t i = 0; i < va.size(); ++i) {
        ASSERT_EQ(r1[i], va[i] * 2.0f);
        ASSERT_EQ(r2[i], 1.0f + va[i]);
        ASSERT_EQ(r3[i], va[i] - 0.5f);
        ASSERT_EQ(r4[i], 10.0f / va[i]);
    }
}

TEST_F(TensorTest, ComparisonsAndWhere)
{
    const auto va = randFloats(128);
    const auto vb = randFloats(128);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto lt = (a < b).toIntVector();
    const auto ge = (a >= b).toIntVector();
    const auto sel = where(a < b, a, b).toFloatVector();  // min
    const auto mx = maximum(a, b).toFloatVector();
    for (size_t i = 0; i < va.size(); ++i) {
        ASSERT_EQ(lt[i], va[i] < vb[i] ? 1 : 0);
        ASSERT_EQ(ge[i], va[i] >= vb[i] ? 1 : 0);
        ASSERT_EQ(sel[i], std::min(va[i], vb[i]));
        ASSERT_EQ(mx[i], std::max(va[i], vb[i]));
    }
}

TEST_F(TensorTest, AbsSignZero)
{
    auto va = randFloats(96);
    va[0] = 0.0f;
    va[1] = -0.0f;
    Tensor a = Tensor::fromVector(va, &dev);
    const auto ab = abs(a).toFloatVector();
    const auto zz = isZero(a).toIntVector();
    for (size_t i = 0; i < va.size(); ++i) {
        ASSERT_EQ(ab[i], std::fabs(va[i]));
        ASSERT_EQ(zz[i], va[i] == 0.0f ? 1 : 0);
    }
}

TEST_F(TensorTest, SliceViewsReadThrough)
{
    const auto v = randFloats(100);
    Tensor t = Tensor::fromVector(v, &dev);
    Tensor even = t.every(2);
    EXPECT_EQ(even.size(), 50u);
    EXPECT_TRUE(even.isView());
    for (uint64_t i = 0; i < 50; ++i)
        ASSERT_EQ(even.getF(i), v[2 * i]);
    Tensor mid = t.slice(10, 40, 3);
    EXPECT_EQ(mid.size(), 10u);
    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_EQ(mid.getF(i), v[10 + 3 * i]);
    // Writing through a view hits the underlying storage.
    even.set(3, 999.0f);
    EXPECT_EQ(t.getF(6), 999.0f);
}

TEST_F(TensorTest, AlignedViewArithmeticUsesRowMasks)
{
    const auto v = randFloats(128);
    Tensor t = Tensor::fromVector(v, &dev);
    Tensor u = Tensor::fromVector(v, &dev);
    // Same slicing pattern on both: directly maskable, no moves.
    const auto got = (t.every(2) * u.every(2)).toFloatVector();
    for (uint64_t i = 0; i < 64; ++i)
        ASSERT_EQ(got[i], v[2 * i] * v[2 * i]);
}

TEST_F(TensorTest, MisalignedViewArithmeticFallsBackToMoves)
{
    const auto v = randFloats(128);
    Tensor t = Tensor::fromVector(v, &dev);
    // x[::2] + x[1::2]: the paper's Fig. 2 example — requires moving
    // the odd elements onto the even rows first.
    const auto got = (t.every(2) + t.every(2, 1)).toFloatVector();
    for (uint64_t i = 0; i < 64; ++i)
        ASSERT_EQ(got[i], v[2 * i] + v[2 * i + 1]) << "i=" << i;
}

TEST_F(TensorTest, CrossWarpViewArithmetic)
{
    const uint64_t rows = dev.geometry().rows;
    const auto v = randFloats(rows * 4);
    Tensor t = Tensor::fromVector(v, &dev);
    // First half + second half: operands live in different warps.
    Tensor lo = t.slice(0, rows * 2);
    Tensor hi = t.slice(rows * 2, rows * 4);
    const auto got = (lo + hi).toFloatVector();
    for (uint64_t i = 0; i < rows * 2; ++i)
        ASSERT_EQ(got[i], v[i] + v[rows * 2 + i]) << "i=" << i;
}

TEST_F(TensorTest, CloneAndAssignFrom)
{
    const auto v = randFloats(64);
    Tensor t = Tensor::fromVector(v, &dev);
    Tensor c = t.every(2).clone();
    EXPECT_FALSE(c.isView());
    for (uint64_t i = 0; i < 32; ++i)
        ASSERT_EQ(c.getF(i), v[2 * i]);
    // Scatter back through a view.
    Tensor z = Tensor::zeros(32, DType::Float32, &dev);
    t.every(2).assignFrom(z);
    for (uint64_t i = 0; i < 64; ++i)
        ASSERT_EQ(t.getF(i), i % 2 ? v[i] : 0.0f) << "i=" << i;
}

TEST_F(TensorTest, StorageFreedWhenHandlesDie)
{
    const uint32_t before = dev.allocator().liveAllocations();
    {
        Tensor a = Tensor::zeros(10, DType::Int32, &dev);
        Tensor view = a.every(2);  // shares storage
        Tensor b = a + a.every(1);
        EXPECT_GT(dev.allocator().liveAllocations(), before);
    }
    EXPECT_EQ(dev.allocator().liveAllocations(), before);
}

TEST_F(TensorTest, DtypeAndSizeValidation)
{
    Tensor f = Tensor::zeros(10, DType::Float32, &dev);
    Tensor i = Tensor::zeros(10, DType::Int32, &dev);
    Tensor s = Tensor::zeros(5, DType::Float32, &dev);
    EXPECT_THROW(f + i, Error);
    EXPECT_THROW(f + s, Error);
    EXPECT_THROW(f % f, Error);   // Mod is int-only (Table II)
    EXPECT_NO_THROW(f & f);       // bitwise is dtype-agnostic (Table II)
    EXPECT_THROW(f + int32_t{1}, Error);
    EXPECT_THROW(i + 1.0f, Error);
    EXPECT_THROW(f.getI(0), Error);
    EXPECT_THROW(f.slice(0, 11), Error);
    EXPECT_THROW(f.slice(3, 3), Error);
}

TEST_F(TensorTest, ToStringShape)
{
    Tensor t = Tensor::fromVector(std::vector<float>{1.f, 2.f, 3.f},
                                  &dev);
    const std::string s = t.toString();
    EXPECT_NE(s.find("shape=(3,)"), std::string::npos);
    EXPECT_NE(s.find("float32"), std::string::npos);
    EXPECT_NE(t.every(2).toString().find("TensorView"),
              std::string::npos);
}
