/**
 * @file
 * Tests for the half-gates expansion (paper §III-D, Table I):
 * per-partition opcodes, deduced transistor selects, dynamic sections,
 * and rejection of patterns outside the restricted partition model.
 */
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/error.hpp"
#include "uarch/partition.hpp"

using namespace pypim;

namespace
{

Geometry
geo()
{
    return testGeometry();  // 32 partitions, 32-column partitions
}

/** Column address of (partition, intra index) for the test geometry. */
uint32_t
col(uint32_t part, uint32_t idx)
{
    return part * 32 + idx;
}

const Section *
sectionWithOutput(const HalfGates &hg, uint32_t outCol)
{
    for (uint32_t i = 0; i < hg.numSections; ++i)
        if (hg.sections[i].outCol == static_cast<int32_t>(outCol))
            return &hg.sections[i];
    return nullptr;
}

} // namespace

TEST(Partition, SingleIntraPartitionGate)
{
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(3, 0), col(3, 1), col(3, 2), 3, 0);
    const HalfGates hg = expandLogicH(op, g);
    EXPECT_EQ(hg.numGates, 1u);
    // Partition 3 applies all three voltages: opcode (InA, InB) -> Out.
    EXPECT_EQ(hg.opcodes[3],
              halfgate::inA | halfgate::inB | halfgate::out);
    const Section *sec = sectionWithOutput(hg, col(3, 2));
    ASSERT_NE(sec, nullptr);
    EXPECT_EQ(sec->numIn, 2u);
}

TEST(Partition, CrossPartitionGateLeftToRight)
{
    // Paper Fig. 8(c): inputs in partition 0 (InA) and 1 (InB), output
    // in partition 1 (span [0, 1]).
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(0, 0), col(1, 1), col(1, 3), 1, 0);
    const HalfGates hg = expandLogicH(op, g);
    EXPECT_EQ(hg.opcodes[0], halfgate::inA);
    EXPECT_EQ(hg.opcodes[1], halfgate::inB | halfgate::out);
    // Transistor 0 (between partitions 0 and 1) must conduct; the one
    // right of partition 1 must be cut (partition 1 has an Out half).
    EXPECT_TRUE(hg.conducting[0]);
    EXPECT_FALSE(hg.conducting[1]);
    const Section *sec = sectionWithOutput(hg, col(1, 3));
    ASSERT_NE(sec, nullptr);
    EXPECT_EQ(sec->begin, 0u);
    EXPECT_EQ(sec->end, 2u);
    EXPECT_EQ(sec->numIn, 2u);
}

TEST(Partition, RightToLeftGate)
{
    // Inputs in partition 5, output in partition 2 (reverse direction).
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(5, 0), col(5, 1), col(2, 3), 2, 0);
    const HalfGates hg = expandLogicH(op, g);
    const Section *sec = sectionWithOutput(hg, col(2, 3));
    ASSERT_NE(sec, nullptr);
    EXPECT_EQ(sec->begin, 2u);
    EXPECT_EQ(sec->end, 6u);
    // Cut left of partition 2 and right of partition 5.
    EXPECT_FALSE(hg.conducting[1]);
    EXPECT_FALSE(hg.conducting[5]);
    EXPECT_TRUE(hg.conducting[2]);
    EXPECT_TRUE(hg.conducting[3]);
    EXPECT_TRUE(hg.conducting[4]);
}

TEST(Partition, FullyParallelPattern)
{
    // Per-partition gate repeated across all 32 partitions (paper
    // Fig. 7(b)): one section per partition.
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(0, 0), col(0, 1), col(0, 2), 31, 1);
    const HalfGates hg = expandLogicH(op, g);
    EXPECT_EQ(hg.numGates, 32u);
    for (uint32_t t = 0; t + 1 < 32; ++t)
        EXPECT_FALSE(hg.conducting[t]) << "transistor " << t;
    uint32_t active = 0;
    for (uint32_t i = 0; i < hg.numSections; ++i)
        if (hg.sections[i].active())
            ++active;
    EXPECT_EQ(active, 32u);
}

TEST(Partition, SemiParallelPattern)
{
    // Paper Fig. 7(c)-style: gates (p -> p+2) repeated with stride 4:
    // (0 -> 2), (4 -> 6), ..., non-intersecting sections.
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(0, 0), col(2, 1), col(2, 3), 30, 4);
    const HalfGates hg = expandLogicH(op, g);
    EXPECT_EQ(hg.numGates, 8u);
    for (uint32_t k = 0; k < 8; ++k) {
        const Section *sec = sectionWithOutput(hg, col(4 * k + 2, 3));
        ASSERT_NE(sec, nullptr) << "gate " << k;
        EXPECT_EQ(sec->numIn, 2u);
        EXPECT_EQ(sec->inCol[0], static_cast<int32_t>(col(4 * k, 0)));
        EXPECT_EQ(sec->inCol[1], static_cast<int32_t>(col(4 * k + 2, 1)));
    }
}

TEST(Partition, PeriodicInitPattern)
{
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Init1, 0, 0, col(0, 7), 31, 1);
    const HalfGates hg = expandLogicH(op, g);
    EXPECT_EQ(hg.numGates, 32u);
    for (uint32_t p = 0; p < 32; ++p)
        EXPECT_EQ(hg.opcodes[p], halfgate::out);
}

TEST(Partition, NotGateHasSingleInputHalf)
{
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Not, col(4, 0), col(4, 0), col(7, 1), 7, 0);
    const HalfGates hg = expandLogicH(op, g);
    EXPECT_EQ(hg.opcodes[4], halfgate::inA);
    EXPECT_EQ(hg.opcodes[7], halfgate::out);
    const Section *sec = sectionWithOutput(hg, col(7, 1));
    ASSERT_NE(sec, nullptr);
    EXPECT_EQ(sec->numIn, 1u);
}

TEST(Partition, RejectsInnerInputOutsideSpan)
{
    // inB strictly outside [min(pA, pOut), max(pA, pOut)] cannot be
    // expressed by the deduced transistor selects.
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(2, 0), col(9, 1), col(5, 3), 5, 0);
    EXPECT_THROW(expandLogicH(op, g), InternalError);
}

TEST(Partition, RejectsOverlappingRepetition)
{
    // Span is 3 partitions but the stride is 2: repeated gates overlap.
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(0, 0), col(2, 1), col(2, 3), 30, 2);
    EXPECT_THROW(expandLogicH(op, g), InternalError);
}

TEST(Partition, RejectsRepetitionLeavingRange)
{
    const Geometry g = geo();
    // pEnd = 33 > 31: repeated gate would leave the partition range
    // (pEnd itself is range-checked through the claimed partitions).
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(0, 0), col(0, 1), col(0, 2), 33, 1);
    EXPECT_THROW(expandLogicH(op, g), InternalError);
}

TEST(Partition, RejectsStepNotDividingSpan)
{
    const Geometry g = geo();
    const MicroOp op =
        MicroOp::logicH(Gate::Nor, col(0, 0), col(0, 1), col(0, 2), 31, 3);
    EXPECT_THROW(expandLogicH(op, g), InternalError);
}

TEST(Partition, GateCountsMatchParallelismForms)
{
    const Geometry g = geo();
    // Serial (Fig. 7(a)): one gate.
    EXPECT_EQ(expandLogicH(MicroOp::logicH(Gate::Nor, col(0, 0),
                                           col(11, 1), col(31, 2), 31, 0),
                           g).numGates, 1u);
    // Parallel (Fig. 7(b)): N gates.
    EXPECT_EQ(expandLogicH(MicroOp::logicH(Gate::Nor, col(0, 0),
                                           col(0, 1), col(0, 2), 31, 1),
                           g).numGates, 32u);
    // Semi-parallel (Fig. 7(c)): N/4 gates at stride 4.
    EXPECT_EQ(expandLogicH(MicroOp::logicH(Gate::Nor, col(0, 0),
                                           col(1, 1), col(1, 2), 29, 4),
                           g).numGates, 8u);
}
