/**
 * @file
 * Shared fixtures and helpers for the PyPIM test suite.
 */
#ifndef PYPIM_TESTS_PIM_TEST_UTIL_HPP
#define PYPIM_TESTS_PIM_TEST_UTIL_HPP

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "driver/bitvec.hpp"
#include "driver/driver.hpp"
#include "driver/gatebuilder.hpp"
#include "sim/simulator.hpp"

namespace pypim::test
{

/** Simulator + builder + BV ops over the small test geometry. */
class PimFixture : public ::testing::Test
{
  protected:
    PimFixture() : PimFixture(testGeometry()) {}

    explicit PimFixture(const Geometry &g)
        : geo(g),
          sim(geo),
          builder(sim, geo),
          bv(builder)
    {
        builder.setMasks(Range::all(geo.numCrossbars),
                         Range::all(geo.rows));
        builder.flush();
    }

    /** Write @p value to register @p slot of (warp, row) directly. */
    void
    pokeWord(uint32_t warp, uint32_t row, uint32_t slot, uint32_t value)
    {
        sim.crossbar(warp).writeRow(slot, value, row);
    }

    /** Read register @p slot of (warp, row) directly. */
    uint32_t
    peekWord(uint32_t warp, uint32_t row, uint32_t slot)
    {
        return sim.crossbar(warp).read(slot, row);
    }

    /** Read the cells of a BV in one (warp, row) as an integer. */
    uint64_t
    peekBV(uint32_t warp, uint32_t row, const BV &x)
    {
        uint64_t v = 0;
        for (uint32_t j = 0; j < x.width(); ++j)
            if (sim.crossbar(warp).bit(row, x[j]))
                v |= 1ull << j;
        return v;
    }

    /** Write an integer into the cells of a BV in one (warp, row). */
    void
    pokeBV(uint32_t warp, uint32_t row, const BV &x, uint64_t v)
    {
        for (uint32_t j = 0; j < x.width(); ++j)
            sim.crossbar(warp).setBit(row, x[j], (v >> j) & 1);
    }

    /** Read a single cell in one (warp, row). */
    bool
    peekCell(uint32_t warp, uint32_t row, uint32_t cell)
    {
        return sim.crossbar(warp).bit(row, cell);
    }

    Geometry geo;
    Simulator sim;
    GateBuilder builder;
    BVOps bv;
    Rng rng;
};

/** Simulator + Driver fixture: executes macro-instructions end to end. */
class DriverFixture : public ::testing::Test
{
  protected:
    explicit DriverFixture(Driver::Mode mode = Driver::Mode::Serial,
                           const Geometry &g = testGeometry())
        : geo(g),
          sim(geo),
          drv(sim, geo, mode)
    {
    }

    /** Total threads = rows * warps (one test value per thread). */
    uint32_t threads() const { return geo.rows * geo.numCrossbars; }

    /** Load one value per thread into a register (direct poke). */
    void
    loadReg(uint32_t slot, const std::vector<uint32_t> &vals)
    {
        ASSERT_EQ(vals.size(), threads());
        for (uint32_t w = 0; w < geo.numCrossbars; ++w)
            for (uint32_t r = 0; r < geo.rows; ++r)
                sim.crossbar(w).writeRow(slot, vals[w * geo.rows + r], r);
    }

    /** Read one value per thread from a register. */
    std::vector<uint32_t>
    readReg(uint32_t slot)
    {
        std::vector<uint32_t> out(threads());
        for (uint32_t w = 0; w < geo.numCrossbars; ++w)
            for (uint32_t r = 0; r < geo.rows; ++r)
                out[w * geo.rows + r] = sim.crossbar(w).read(slot, r);
        return out;
    }

    /** Execute op on all threads of all warps. */
    void
    run(ROp op, DType dtype, uint8_t rd, uint8_t ra, uint8_t rb = 0,
        uint8_t rc = 0)
    {
        RTypeInstr in;
        in.op = op;
        in.dtype = dtype;
        in.rd = rd;
        in.ra = ra;
        in.rb = rb;
        in.rc = rc;
        in.warps = Range::all(geo.numCrossbars);
        in.rows = Range::all(geo.rows);
        drv.execute(in);
    }

    Geometry geo;
    Simulator sim;
    Driver drv;
    Rng rng;
};

inline uint32_t
floatBits(float f)
{
    return std::bit_cast<uint32_t>(f);
}

inline float
bitsFloat(uint32_t u)
{
    return std::bit_cast<float>(u);
}

/**
 * Compare an expected float against produced bits: NaNs compare as
 * "both NaN" (payloads differ between x86 and the canonical gate
 * implementation), everything else bit-exact (covers ±0, subnormals,
 * infinities).
 */
inline ::testing::AssertionResult
floatBitsMatch(float expected, uint32_t gotBits)
{
    if (std::isnan(expected)) {
        if (std::isnan(bitsFloat(gotBits)))
            return ::testing::AssertionSuccess();
        return ::testing::AssertionFailure()
               << "expected NaN, got " << bitsFloat(gotBits)
               << " (0x" << std::hex << gotBits << ")";
    }
    if (floatBits(expected) == gotBits)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "expected " << expected << " (0x" << std::hex
           << floatBits(expected) << "), got " << bitsFloat(gotBits)
           << " (0x" << gotBits << ")";
}

} // namespace pypim::test

#endif // PYPIM_TESTS_PIM_TEST_UTIL_HPP
