/**
 * @file
 * Dynamic memory manager tests (paper §V-A): aligned allocation,
 * reference hints, exhaustion, release.
 */
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/error.hpp"
#include "pim/alloc.hpp"

using namespace pypim;

namespace
{

class AllocTest : public ::testing::Test
{
  protected:
    AllocTest() : geo(testGeometry()), mm(geo) {}

    Geometry geo;
    MemoryManager mm;
};

} // namespace

TEST_F(AllocTest, SingleWarpAllocation)
{
    const Allocation a = mm.alloc(10);
    EXPECT_EQ(a.warpCount, 1u);
    EXPECT_EQ(a.elements, 10u);
    EXPECT_LT(a.reg, geo.userRegs);
}

TEST_F(AllocTest, MultiWarpAllocation)
{
    const Allocation a = mm.alloc(geo.rows * 3);
    EXPECT_EQ(a.warpCount, 3u);
}

TEST_F(AllocTest, PartialLastWarp)
{
    const Allocation a = mm.alloc(geo.rows + 1);
    EXPECT_EQ(a.warpCount, 2u);
}

TEST_F(AllocTest, HintAlignsWarpRanges)
{
    const Allocation a = mm.alloc(geo.rows * 2);
    const Allocation b = mm.alloc(geo.rows * 2, &a);
    EXPECT_TRUE(b.sameWarpRange(a));
    EXPECT_NE(b.reg, a.reg);
}

TEST_F(AllocTest, HintHonouredForSmallerTensors)
{
    Allocation big = mm.alloc(geo.rows * 3);
    const Allocation small = mm.alloc(geo.rows, &big);
    EXPECT_EQ(small.warpStart, big.warpStart);
    EXPECT_EQ(small.warpCount, 1u);
}

TEST_F(AllocTest, AllocAtExactRange)
{
    const Allocation a = mm.allocAt(2, 2, geo.rows * 2);
    EXPECT_EQ(a.warpStart, 2u);
    EXPECT_EQ(a.warpCount, 2u);
    // All registers over that range eventually exhaust.
    for (uint32_t i = 1; i < geo.userRegs; ++i)
        mm.allocAt(2, 2, 1);
    EXPECT_THROW(mm.allocAt(2, 2, 1), Error);
    // Other warps still available.
    EXPECT_NO_THROW(mm.allocAt(0, 2, 1));
}

TEST_F(AllocTest, ExhaustionAndRelease)
{
    std::vector<Allocation> all;
    for (uint32_t r = 0; r < geo.userRegs; ++r)
        all.push_back(mm.alloc(geo.rows * geo.numCrossbars));
    EXPECT_THROW(mm.alloc(1), Error);
    mm.free(all.back());
    all.pop_back();
    EXPECT_NO_THROW(mm.alloc(1));
}

TEST_F(AllocTest, OversizeRejected)
{
    EXPECT_THROW(mm.alloc(uint64_t(geo.rows) * geo.numCrossbars + 1),
                 Error);
    EXPECT_THROW(mm.alloc(0), Error);
}

TEST_F(AllocTest, LiveAccountingBalances)
{
    const Allocation a = mm.alloc(5);
    const Allocation b = mm.alloc(geo.rows * 2);
    EXPECT_EQ(mm.liveAllocations(), 2u);
    EXPECT_EQ(mm.slotsInUse(), 3u);
    mm.free(a);
    mm.free(b);
    EXPECT_EQ(mm.liveAllocations(), 0u);
    EXPECT_EQ(mm.slotsInUse(), 0u);
}

TEST_F(AllocTest, DistinctAllocationsNeverOverlap)
{
    std::vector<Allocation> all;
    for (int i = 0; i < 30; ++i)
        all.push_back(mm.alloc(1 + (i * 37) % (geo.rows * 2)));
    for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = i + 1; j < all.size(); ++j) {
            if (all[i].reg != all[j].reg)
                continue;
            const bool disjoint =
                all[i].warpStart + all[i].warpCount <= all[j].warpStart ||
                all[j].warpStart + all[j].warpCount <= all[i].warpStart;
            EXPECT_TRUE(disjoint) << "allocations " << i << "/" << j;
        }
    }
}
