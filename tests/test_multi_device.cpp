/**
 * @file
 * Multi-device sharding tests (sim/device_group.hpp): one logical
 * device split across 1/2/4 sub-device Simulators at H-tree group
 * boundaries must be indistinguishable from the monolithic simulator
 * — bit-identical crossbar state, readback and architectural Stats on
 * fuzzed micro-op streams (Moves included) and full driver tensor
 * programs, sync and pipelined, with the architectural counters
 * replicated across sub-devices and cross-device traffic consisting
 * solely of boundary-crossing Move transfers (directed H-tree
 * boundary tests assert intra-group traffic never leaves its slice).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/checkpoint.hpp"
#include "sim/device_group.hpp"
#include "sim/serialize.hpp"

using namespace pypim;

namespace
{

Geometry
multiGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;  // 4 level-1 H-tree groups of 4
    return g;
}

struct EngineCase
{
    const char *name;
    EngineConfig cfg;
};

const EngineCase &
engineCase(size_t i)
{
    static const EngineCase cases[] = {
        {"serial", EngineConfig::serial()},
        {"trace", EngineConfig::trace()},
        {"sharded", EngineConfig::sharded(2)},
        {"serial+pipe", EngineConfig::serial().withPipeline()},
        {"trace+pipe", EngineConfig::trace().withPipeline()},
        {"sharded+pipe", EngineConfig::sharded(2).withPipeline()},
    };
    return cases[i];
}
constexpr size_t numEngineCases = 6;

/** Random valid Range over [0, limit). */
Range
randomRange(Rng &rng, uint32_t limit)
{
    const uint32_t start = rng.word() % limit;
    const uint32_t step = 1 + rng.word() % 8;
    const uint32_t maxN = (limit - 1 - start) / step;
    const uint32_t span = (rng.word() % (maxN + 1)) * step;
    return Range(start, start + span, step);
}

/**
 * Random valid micro-op stream biased towards Moves (the multi-device
 * hot spot): contiguous source blocks shifted by arbitrary distances,
 * so transfers land intra-slice and across every slice boundary, plus
 * the usual masked Write/LogicH/LogicV mix and data-less Reads.
 */
std::vector<Word>
randomStream(Rng &rng, const Geometry &g, size_t len)
{
    std::vector<Word> ops;
    ops.reserve(len + 2);
    while (ops.size() < len) {
        switch (rng.word() % 10) {
          case 0:
            ops.push_back(
                MicroOp::crossbarMask(randomRange(rng, g.numCrossbars))
                    .encode());
            break;
          case 1:
            ops.push_back(
                MicroOp::rowMask(randomRange(rng, g.rows)).encode());
            break;
          case 2:
          case 3:
            ops.push_back(MicroOp::write(rng.word() % g.slots(),
                                         rng.word()).encode());
            break;
          case 4: {
            const uint32_t out = g.column(rng.word() % g.slots(), 0);
            ops.push_back(
                MicroOp::logicH(rng.word() % 2 ? Gate::Init1
                                               : Gate::Init0,
                                0, 0, out, g.partitions - 1, 1)
                    .encode());
            break;
          }
          case 5: {
            uint32_t a = rng.word() % g.slots();
            uint32_t b = rng.word() % g.slots();
            uint32_t c = rng.word() % g.slots();
            if (a == c)
                a = (a + 1) % g.slots();
            if (b == c)
                b = (b + 2) % g.slots();
            if (b == c)
                b = (b + 1) % g.slots();
            const bool isNot = rng.word() % 2;
            ops.push_back(MicroOp::logicH(isNot ? Gate::Not
                                                : Gate::Nor,
                                          g.column(a, 0),
                                          g.column(isNot ? a : b, 0),
                                          g.column(c, 0),
                                          g.partitions - 1, 1)
                              .encode());
            break;
          }
          case 6: {
            static const Gate kVGates[] = {Gate::Init0, Gate::Init1,
                                           Gate::Not};
            ops.push_back(MicroOp::logicV(kVGates[rng.word() % 3],
                                          rng.word() % g.rows,
                                          rng.word() % g.rows,
                                          rng.word() % g.slots())
                              .encode());
            break;
          }
          case 7: {
            // Data-less Read (single-crossbar, single-row masks).
            ops.push_back(MicroOp::crossbarMask(Range::single(
                                                    rng.word() %
                                                    g.numCrossbars))
                              .encode());
            ops.push_back(
                MicroOp::rowMask(Range::single(rng.word() % g.rows))
                    .encode());
            ops.push_back(
                MicroOp::read(rng.word() % g.slots()).encode());
            break;
          }
          default: {
            // Move: contiguous source block, arbitrary distance —
            // intra-slice and boundary-crossing alike, including
            // overlapping src/dst shift chains.
            const uint32_t n = 1 + rng.word() % (g.numCrossbars / 2);
            const uint32_t src =
                rng.word() % (g.numCrossbars - n + 1);
            const uint32_t dst =
                rng.word() % (g.numCrossbars - n + 1);
            ops.push_back(
                MicroOp::crossbarMask(Range(src, src + n - 1, 1))
                    .encode());
            ops.push_back(MicroOp::move(dst, rng.word() % g.rows,
                                        rng.word() % g.rows,
                                        rng.word() % g.slots(),
                                        rng.word() % g.slots())
                              .encode());
            break;
          }
        }
    }
    return ops;
}

/** Seed oracle and group with identical random register contents. */
void
seedState(Simulator &oracle, SimulatorGroup &grp, Rng &rng)
{
    const Geometry &g = oracle.geometry();
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb) {
        for (uint32_t row = 0; row < g.rows; ++row) {
            for (uint32_t slot = 0; slot < g.slots(); ++slot) {
                const uint32_t v = rng.word();
                oracle.crossbar(xb).writeRow(slot, v, row);
                grp.crossbar(xb).writeRow(slot, v, row);
            }
        }
    }
}

::testing::AssertionResult
sameState(Simulator &oracle, SimulatorGroup &grp)
{
    for (uint32_t xb = 0; xb < oracle.geometry().numCrossbars; ++xb) {
        if (!oracle.crossbar(xb).sameState(grp.crossbar(xb)))
            return ::testing::AssertionFailure()
                   << "crossbar " << xb << " state diverged (owned by "
                   << "sub-device " << grp.deviceOf(xb) << ")";
    }
    return ::testing::AssertionSuccess();
}

class MultiDeviceFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>>
{
};

} // namespace

TEST_P(MultiDeviceFuzz, StreamsBitIdenticalAcrossDeviceCounts)
{
    const auto [seed, caseIdx] = GetParam();
    const EngineCase &ec = engineCase(caseIdx);
    const Geometry g = multiGeometry();
    for (uint32_t devices : {2u, 4u}) {
        Simulator oracle(g);  // monolithic serial reference
        SimulatorGroup grp(g, ec.cfg.withDevices(devices));
        ASSERT_EQ(grp.devices(), devices);
        Rng seedRng(seed * 31 + devices);
        seedState(oracle, grp, seedRng);

        Rng rng(seed);
        for (int batch = 0; batch < 4; ++batch) {
            const std::vector<Word> ops = randomStream(rng, g, 160);
            oracle.performBatch(ops.data(), ops.size());
            grp.submitBatch(ops.data(), ops.size());
        }
        grp.flush();
        EXPECT_TRUE(sameState(oracle, grp))
            << ec.name << " x" << devices;
        EXPECT_EQ(oracle.stats(), grp.stats())
            << ec.name << " x" << devices;
        // The architectural counters are replicated on every
        // sub-device — each one observed the whole stream.
        for (uint32_t d = 1; d < devices; ++d)
            EXPECT_EQ(grp.sub(0).stats(), grp.sub(d).stats())
                << ec.name << " x" << devices << " sub " << d;
        // Cross-device traffic is Move transfers only, and only the
        // boundary-crossing subset of them.
        EXPECT_LE(grp.traffic().boundaryTransfers,
                  grp.traffic().moveTransfers);
        EXPECT_LE(grp.traffic().boundaryMoves, grp.traffic().moveOps);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, MultiDeviceFuzz,
    ::testing::Combine(::testing::Values(11ull, 23ull, 47ull),
                       ::testing::Range<size_t>(0, numEngineCases)));

TEST(MultiDeviceTraffic, SlicesNestAndTransfersAreConserved)
{
    // The same stream observes the same Move population at any device
    // count, and 2-device slices are unions of 4-device slices, so
    // every 2-device boundary crossing is also a 4-device one.
    const Geometry g = multiGeometry();
    Rng rng(99);
    const std::vector<Word> ops = randomStream(rng, g, 600);
    SimulatorGroup two(g, EngineConfig::serial().withDevices(2));
    SimulatorGroup four(g, EngineConfig::serial().withDevices(4));
    two.performBatch(ops.data(), ops.size());
    four.performBatch(ops.data(), ops.size());
    EXPECT_EQ(two.traffic().moveOps, four.traffic().moveOps);
    EXPECT_EQ(two.traffic().moveTransfers,
              four.traffic().moveTransfers);
    EXPECT_GE(four.traffic().boundaryTransfers,
              two.traffic().boundaryTransfers);
    EXPECT_GT(four.traffic().moveOps, 0u);
}

TEST(MultiDeviceDirected, IntraGroupMovesNeverLeaveTheirSubDevice)
{
    // The paper's canonical intra-group pattern (§III-F): crossbars
    // xx01 -> xx10 in every level-1 group. With one sub-device per
    // level-1 group (16 crossbars, 4 devices) every transfer stays
    // inside its slice: zero exchanges, zero boundary transfers.
    const Geometry g = multiGeometry();
    SimulatorGroup grp(g, EngineConfig::serial().withDevices(4));
    ASSERT_EQ(grp.crossbarsPerDevice(), 4u);
    std::vector<Word> ops;
    ops.push_back(
        MicroOp::crossbarMask(Range(1, 13, 4)).encode());  // xx01
    for (uint32_t r = 0; r < 8; ++r)
        ops.push_back(MicroOp::move(2, r, r, 0, 1).encode());  // ->xx10
    grp.performBatch(ops.data(), ops.size());
    EXPECT_EQ(grp.traffic().moveOps, 8u);
    EXPECT_EQ(grp.traffic().moveTransfers, 8u * 4);
    EXPECT_EQ(grp.traffic().boundaryMoves, 0u);
    EXPECT_EQ(grp.traffic().boundaryTransfers, 0u);
}

TEST(MultiDeviceDirected, BoundaryMovesAreExchangedExactly)
{
    // A full-mask shift by one crosses each of the three interior
    // slice boundaries exactly once per Move op; everything else is
    // local. Verify the counts and the data.
    const Geometry g = multiGeometry();
    Simulator oracle(g);
    SimulatorGroup grp(g, EngineConfig::serial().withDevices(4));
    Rng rng(7);
    seedState(oracle, grp, rng);
    std::vector<Word> ops;
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 2, 1))
            .encode());
    ops.push_back(MicroOp::move(1, 5, 9, 2, 3).encode());
    oracle.performBatch(ops.data(), ops.size());
    grp.performBatch(ops.data(), ops.size());
    EXPECT_EQ(grp.traffic().moveOps, 1u);
    EXPECT_EQ(grp.traffic().moveTransfers, 15u);
    EXPECT_EQ(grp.traffic().boundaryMoves, 1u);
    EXPECT_EQ(grp.traffic().boundaryTransfers, 3u);  // 3->4, 7->8, 11->12
    EXPECT_TRUE(sameState(oracle, grp));
    EXPECT_EQ(oracle.stats(), grp.stats());
}

TEST(MultiDeviceDirected, OverlappingShiftChainAcrossBoundary)
{
    // Shift chain through a slice boundary: read-all-then-write-all
    // means crossbar k's PRE-move value must land in k+1 even though
    // k is itself overwritten by k-1 — the exchange stages its reads
    // before any sub-device applies the Move.
    const Geometry g = multiGeometry();
    SimulatorGroup grp(g, EngineConfig::serial().withDevices(4));
    // Distinct marker per crossbar in slot 0, row 3.
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        grp.crossbar(xb).writeRow(0, 100 + xb, 3);
    std::vector<Word> ops;
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 2, 1))
            .encode());
    ops.push_back(MicroOp::move(1, 3, 3, 0, 0).encode());
    grp.performBatch(ops.data(), ops.size());
    for (uint32_t xb = 1; xb < g.numCrossbars; ++xb)
        EXPECT_EQ(grp.crossbar(xb).read(0, 3), 100 + xb - 1)
            << "crossbar " << xb;
    EXPECT_EQ(grp.crossbar(0).read(0, 3), 100u);  // source-only
}

namespace
{

/**
 * A driver/tensor program exercising every layer above the group:
 * arithmetic, comparisons, inter-warp moves (assignFrom between
 * tensors at different warp offsets — boundary-crossing at 4+
 * devices), a reduction and host readback.
 *
 * Tensor widths are a multiple of the narrowest slice under test
 * (4 warps), so the shard-aware allocator places them at the same
 * warp ranges at every device count — the precondition for the
 * bit-identical-Stats comparison (placement-dependent programs
 * produce identical VALUES at any device count, but different
 * placements mean different move distances and H-tree cycle counts;
 * MultiDeviceAlloc covers the placement policy itself).
 */
std::vector<int32_t>
runTensorProgram(Device &dev)
{
    const uint64_t n = 4 * dev.geometry().rows;  // exactly one slice
    std::vector<int32_t> av(n), bv(n);
    for (uint64_t i = 0; i < n; ++i) {
        av[i] = static_cast<int32_t>(i * 2654435761u);
        bv[i] = static_cast<int32_t>((i + 3) * 40503u);
    }
    Tensor a = Tensor::fromVector(av, &dev);
    Tensor b = Tensor::fromVector(bv, &dev);
    Tensor sum = a + b;
    Tensor prod = a * b;
    // Inter-warp moves: materialise prod's values onto sum's threads
    // (different register, then shifted warp range).
    Tensor moved = Tensor::fromVector(bv, &dev);
    moved.assignFrom(prod);
    Tensor sel = where(isZero(a - a), sum, moved);
    std::vector<int32_t> out = sel.toIntVector();
    out.push_back(sel.sum<int32_t>());
    return out;
}

} // namespace

TEST(MultiDeviceDriver, TensorProgramsBitIdenticalAcrossDevices)
{
    const Geometry g = multiGeometry();
    Device mono(g, Driver::Mode::Parallel, EngineConfig::serial());
    const std::vector<int32_t> expect = runTensorProgram(mono);
    for (size_t c = 0; c < numEngineCases; ++c) {
        const EngineCase &ec = engineCase(c);
        for (uint32_t devices : {2u, 4u}) {
            Device dev(g, Driver::Mode::Parallel,
                       ec.cfg.withDevices(devices));
            ASSERT_EQ(dev.deviceCount(), devices);
            const std::vector<int32_t> got = runTensorProgram(dev);
            EXPECT_EQ(expect, got) << ec.name << " x" << devices;
            EXPECT_EQ(mono.stats(), dev.stats())
                << ec.name << " x" << devices;
        }
    }
}

TEST(MultiDeviceDriver, WarmTraceCacheBroadcastsSharedHandles)
{
    // Steady-state: the driver's trace cache must keep hitting with
    // sharding on (one shared handle broadcast to all sub-devices),
    // and the results must match the monolithic device exactly.
    const Geometry g = multiGeometry();
    Device mono(g, Driver::Mode::Parallel, EngineConfig::serial());
    Device quad(g, Driver::Mode::Parallel,
                EngineConfig::serial().withDevices(4));
    const uint64_t n = g.numCrossbars * g.rows;
    std::vector<int32_t> av(n), bv(n);
    for (uint64_t i = 0; i < n; ++i) {
        av[i] = static_cast<int32_t>(i * 48271u);
        bv[i] = static_cast<int32_t>(i * 16807u + 5);
    }
    for (Device *dev : {&mono, &quad}) {
        Tensor a = Tensor::fromVector(av, dev);
        Tensor b = Tensor::fromVector(bv, dev);
        Tensor c = a * b;
        for (int rep = 0; rep < 4; ++rep)
            c.assignFrom(a * b);  // warm replays of one signature
    }
    EXPECT_GT(quad.driver().stats().traceCacheHits, 0u);
    EXPECT_EQ(mono.driver().stats().traceCacheHits,
              quad.driver().stats().traceCacheHits);
    EXPECT_EQ(mono.stats(), quad.stats());
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        ASSERT_TRUE(mono.group().crossbar(xb).sameState(
            quad.group().crossbar(xb)))
            << "crossbar " << xb;
}

TEST(MultiDeviceAlloc, TensorsPreferOneSubDeviceSlice)
{
    // Shard-aware allocation: tensors no wider than a slice must land
    // inside one sub-device even when a naive first fit would cross a
    // boundary; wider tensors stripe.
    const Geometry g = multiGeometry();
    MemoryManager mm(g, 4);
    ASSERT_EQ(mm.sliceWarps(), 4u);
    // 3-warp tensors: naive first fit would place the second at warps
    // [3, 6) across the 4|8 boundary; shard-aware placement skips to
    // the next slice.
    const uint64_t elems = 3 * g.rows;
    const Allocation a = mm.alloc(elems);
    const Allocation b = mm.alloc(elems);
    for (const Allocation *al : {&a, &b})
        EXPECT_EQ(al->warpStart / mm.sliceWarps(),
                  (al->warpStart + al->warpCount - 1) /
                      mm.sliceWarps())
            << "allocation crosses a slice boundary";
    // Wider than a slice: stripes by necessity.
    const Allocation wide = mm.alloc(6 * g.rows);
    EXPECT_NE(wide.warpStart / mm.sliceWarps(),
              (wide.warpStart + wide.warpCount - 1) / mm.sliceWarps());
    mm.free(a);
    mm.free(b);
    mm.free(wide);
    EXPECT_EQ(mm.liveAllocations(), 0u);
}

TEST(MultiDevicePaged, CowSnapshotsStayIsolatedUnderShardedReplay)
{
    // Copy-on-write snapshots under the most concurrent configuration
    // in the repo: 4 sub-devices, each with a pipelined 2-thread
    // sharded engine. Snapshots are taken at a drain point (the
    // crossbar() accessor drains the owning sub-device), then a heavy
    // random stream replays on the consumer/worker threads while the
    // main thread holds the frozen images. Replay must CLONE every
    // shared block it mutates — the snapshots keep the exact
    // pre-replay state — and restoring rewinds the group bit-exactly.
    // TSan-clean by the storage sync contract: the main thread only
    // holds (never reads or refcounts) the images while replay is in
    // flight.
    const Geometry g = multiGeometry();
    const EngineConfig cfg = EngineConfig::sharded(2)
                                 .withPipeline()
                                 .withDevices(4)
                                 .withStorage(XbarStorage::Paged);
    Simulator pre(g);     // frozen pre-replay reference (never run)
    Simulator oracle(g);  // serial monolithic oracle for the stream
    SimulatorGroup grp(g, cfg);
    Rng seedRng(52025);
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        for (uint32_t row = 0; row < g.rows; ++row)
            for (uint32_t slot = 0; slot < g.slots(); ++slot) {
                const uint32_t v = seedRng.word();
                pre.crossbar(xb).writeRow(slot, v, row);
                oracle.crossbar(xb).writeRow(slot, v, row);
                grp.crossbar(xb).writeRow(slot, v, row);
            }
    std::vector<Crossbar::Snapshot> snaps;
    snaps.reserve(g.numCrossbars);
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        snaps.push_back(grp.crossbar(xb).snapshot());
    // Every present block is now shared with its frozen image.
    EXPECT_GT(grp.storageGauges().cowShared, 0u);

    Rng rng(777);
    for (int batch = 0; batch < 4; ++batch) {
        const std::vector<Word> ops = randomStream(rng, g, 200);
        oracle.performBatch(ops.data(), ops.size());
        grp.submitBatch(ops.data(), ops.size());  // async replay
    }
    grp.flush();
    EXPECT_TRUE(sameState(oracle, grp));
    EXPECT_EQ(oracle.stats(), grp.stats());
    // The frozen images still hold the pre-replay state exactly.
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        ASSERT_TRUE(pre.crossbar(xb).sameState(snaps[xb]))
            << "snapshot of crossbar " << xb
            << " was mutated by concurrent replay";
    // And restoring them rewinds the whole group.
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        grp.crossbar(xb).restore(snaps[xb]);
    EXPECT_TRUE(sameState(pre, grp));
}

TEST(MultiDeviceGroup, DevicesClampToGeometryAndValidate)
{
    const Geometry g = testGeometry();  // 4 crossbars
    SimulatorGroup grp(g, EngineConfig::serial().withDevices(16));
    EXPECT_EQ(grp.devices(), 4u);  // clamped: one crossbar each
    EXPECT_EQ(grp.crossbarsPerDevice(), 1u);
    EXPECT_THROW(
        SimulatorGroup(g, EngineConfig::serial().withDevices(3)),
        Error);
}

TEST(MultiDeviceGroup, SubDeviceCrossbarAccessIsSliceChecked)
{
    const Geometry g = multiGeometry();
    SimulatorGroup grp(g, EngineConfig::serial().withDevices(4));
    EXPECT_EQ(grp.sub(1).sliceLo(), 4u);
    EXPECT_EQ(grp.sub(1).sliceCount(), 4u);
    EXPECT_TRUE(grp.sub(1).ownsCrossbar(5));
    EXPECT_FALSE(grp.sub(1).ownsCrossbar(3));
    EXPECT_THROW(grp.sub(1).crossbar(3), Error);
    EXPECT_NO_THROW(grp.crossbar(3));  // routed to sub-device 0
    // Slice bounds validate without unsigned wrap-around.
    EXPECT_THROW(Simulator(g, EngineConfig::serial(), 2,
                           g.numCrossbars),
                 Error);
    EXPECT_THROW(Simulator(g, EngineConfig::serial(), 0, 0), Error);
    EXPECT_THROW(Simulator(g, EngineConfig::serial(), g.numCrossbars,
                           1),
                 Error);
}

// --- socket transport parity ----------------------------------------------
// The cross-process fleet must be observationally identical to the
// in-process group: same architectural Stats, same Traffic split, same
// readback, same canonical checkpoint image — at 2 and 4 workers, for
// both crossbar storage representations. Fork-based, so skipped under
// TSan (the Release CI matrix runs these at PYPIM_TRANSPORT=socket).

#if defined(__SANITIZE_THREAD__)
#define PYPIM_SKIP_UNDER_TSAN() \
    GTEST_SKIP() << "fork-based transport tests do not run under TSan"
#else
#define PYPIM_SKIP_UNDER_TSAN() (void)0
#endif

namespace
{

/** Canonical state image bytes (drains the fleet first). */
std::vector<uint8_t>
imageBytes(SimulatorGroup &grp)
{
    return encodeCheckpoint(buildGroupImage(grp));
}

/** Self-contained stream (leads with both masks, no Moves): the shape
 *  the driver freezes into cacheable traces. @p salt varies the data
 *  so distinct salts produce distinct trace signatures. */
std::vector<Word>
cacheableStream(const Geometry &g, uint32_t salt)
{
    std::vector<Word> ops;
    ops.push_back(
        MicroOp::crossbarMask(Range::all(g.numCrossbars)).encode());
    ops.push_back(MicroOp::rowMask(Range::all(g.rows)).encode());
    for (uint32_t s = 0; s < 4; ++s)
        ops.push_back(
            MicroOp::write(s, salt * 0x9E3779B9u + s).encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                  g.column(1, 0), g.column(4, 0),
                                  g.partitions - 1, 1)
                      .encode());
    return ops;
}

::testing::AssertionResult
sameTraffic(const SimulatorGroup::Traffic &a,
            const SimulatorGroup::Traffic &b)
{
    if (a.moveOps != b.moveOps || a.moveTransfers != b.moveTransfers ||
        a.boundaryMoves != b.boundaryMoves ||
        a.boundaryTransfers != b.boundaryTransfers)
        return ::testing::AssertionFailure()
               << "traffic diverged: inproc " << a.moveOps << "/"
               << a.moveTransfers << "/" << a.boundaryMoves << "/"
               << a.boundaryTransfers << " vs socket " << b.moveOps
               << "/" << b.moveTransfers << "/" << b.boundaryMoves
               << "/" << b.boundaryTransfers;
    return ::testing::AssertionSuccess();
}

} // namespace

TEST(SocketParity, FuzzedMoveHeavyStreamsMatchInproc)
{
    PYPIM_SKIP_UNDER_TSAN();
    const Geometry g = multiGeometry();
    for (uint32_t devices : {2u, 4u}) {
        for (const XbarStorage st :
             {XbarStorage::Dense, XbarStorage::Paged}) {
            const EngineConfig base = EngineConfig::serial()
                                          .withDevices(devices)
                                          .withStorage(st);
            SimulatorGroup inproc(g, base);
            SimulatorGroup socket(
                g, base.withTransport(TransportKind::Socket));
            ASSERT_FALSE(inproc.remote());
            ASSERT_TRUE(socket.remote());
            ASSERT_EQ(socket.devices(), devices);

            Rng rng(401 + devices * 13 +
                    (st == XbarStorage::Paged ? 7 : 0));
            Rng rngTwin = rng;
            for (int batch = 0; batch < 3; ++batch) {
                const std::vector<Word> ops =
                    randomStream(rng, g, 160);
                const std::vector<Word> twin =
                    randomStream(rngTwin, g, 160);
                ASSERT_EQ(ops, twin);
                inproc.submitBatch(ops.data(), ops.size());
                socket.submitBatch(ops.data(), ops.size());
            }
            inproc.flush();
            socket.flush();

            // Readback parity at a directed mask point.
            std::vector<Word> mask;
            mask.push_back(
                MicroOp::crossbarMask(Range::single(5)).encode());
            mask.push_back(MicroOp::rowMask(Range::single(3)).encode());
            inproc.submitBatch(mask.data(), mask.size());
            socket.submitBatch(mask.data(), mask.size());
            for (uint32_t slot : {0u, 2u, 7u})
                EXPECT_EQ(inproc.performRead(enc::read(slot)),
                          socket.performRead(enc::read(slot)))
                    << "x" << devices << " slot " << slot;

            EXPECT_TRUE(inproc.stats() == socket.stats())
                << "x" << devices << " "
                << (st == XbarStorage::Paged ? "paged" : "dense");
            EXPECT_TRUE(sameTraffic(inproc.traffic(),
                                    socket.traffic()))
                << "x" << devices;
            EXPECT_GT(socket.traffic().boundaryMoves, 0u)
                << "stream did not exercise the exchange path";
            EXPECT_EQ(imageBytes(inproc), imageBytes(socket))
                << "x" << devices << " "
                << (st == XbarStorage::Paged ? "paged" : "dense");

            // The exchange phases really went over the wire.
            const WireTelemetry t = socket.wireTelemetry();
            EXPECT_GT(t.exchanges, 0u);
            EXPECT_GT(t.bytesTx, 0u);
            EXPECT_EQ(inproc.wireTelemetry().bytesTx, 0u);
        }
    }
}

TEST(SocketParity, WarmTraceCacheShipsEachSignatureOncePerWorker)
{
    PYPIM_SKIP_UNDER_TSAN();
    const Geometry g = multiGeometry();
    for (uint32_t devices : {2u, 4u}) {
        const EngineConfig base =
            EngineConfig::serial().withDevices(devices);
        SimulatorGroup inproc(g, base);
        SimulatorGroup socket(
            g, base.withTransport(TransportKind::Socket));

        // Two distinct signatures, each replayed three times from a
        // warm cache — the wire must carry each image exactly once per
        // worker, every further replay riding the 8-byte signature.
        constexpr int kReplays = 3;
        constexpr uint32_t kSigs = 2;
        for (uint32_t salt = 0; salt < kSigs; ++salt) {
            const std::vector<Word> ops = cacheableStream(g, salt);
            const std::shared_ptr<const BatchTrace> remote =
                socket.prepareTrace(ops.data(), ops.size(), true);
            const std::shared_ptr<const BatchTrace> local =
                inproc.prepareTrace(ops.data(), ops.size(), true);
            ASSERT_TRUE(remote);
            ASSERT_TRUE(local);
            for (int i = 0; i < kReplays; ++i) {
                socket.submitTrace(remote);
                inproc.submitTrace(local);
            }
        }
        inproc.flush();
        socket.flush();

        const WireTelemetry t = socket.wireTelemetry();
        EXPECT_EQ(t.traceInstalls, kSigs * devices)
            << "each signature crosses the wire once per worker";
        EXPECT_EQ(t.traceHits, kSigs * (kReplays - 1) * devices)
            << "warm replays must be served from the worker cache";
        EXPECT_TRUE(inproc.stats() == socket.stats()) << "x" << devices;
        EXPECT_EQ(imageBytes(inproc), imageBytes(socket))
            << "x" << devices;
    }
}

TEST(SocketParity, EnvSelectedSocketFleetMatchesInproc)
{
    PYPIM_SKIP_UNDER_TSAN();
    // The real opt-in path: PYPIM_TRANSPORT=socket via fromEnv, not a
    // hand-built config.
    ::setenv("PYPIM_TRANSPORT", "socket", 1);
    ::setenv("PYPIM_DEVICES", "2", 1);
    const EngineConfig cfg = EngineConfig::fromEnv();
    ::unsetenv("PYPIM_TRANSPORT");
    ::unsetenv("PYPIM_DEVICES");
    ASSERT_EQ(cfg.transport, TransportKind::Socket);
    ASSERT_EQ(cfg.devices, 2u);

    const Geometry g = multiGeometry();
    SimulatorGroup socket(g, cfg);
    SimulatorGroup inproc(
        g, cfg.withTransport(TransportKind::Inproc));
    ASSERT_TRUE(socket.remote());
    Rng rng(77);
    Rng rngTwin = rng;
    const std::vector<Word> ops = randomStream(rng, g, 200);
    const std::vector<Word> twin = randomStream(rngTwin, g, 200);
    ASSERT_EQ(ops, twin);
    socket.submitBatch(ops.data(), ops.size());
    inproc.submitBatch(twin.data(), twin.size());
    socket.flush();
    inproc.flush();
    EXPECT_TRUE(inproc.stats() == socket.stats());
    EXPECT_EQ(imageBytes(inproc), imageBytes(socket));
}
