/**
 * @file
 * Move-instruction tests: intra-warp (vertical logic lowering with
 * correct inversion parity) and inter-warp (H-tree) moves, including
 * warp-parallel broadcast behaviour and validation.
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::DriverFixture;

namespace
{

class MoveTest : public DriverFixture
{
};

} // namespace

TEST_F(MoveTest, IntraWarpMoveCopiesRegisterBetweenRows)
{
    for (uint32_t w = 0; w < geo.numCrossbars; ++w)
        sim.crossbar(w).writeRow(3, 0xA0B0C0D0u + w, 5);
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::IntraWarp;
    mv.srcReg = 3;
    mv.dstReg = 7;
    mv.srcRow = 5;
    mv.dstRow = 40;
    mv.warps = Range::all(geo.numCrossbars);
    drv.execute(mv);
    for (uint32_t w = 0; w < geo.numCrossbars; ++w) {
        EXPECT_EQ(sim.crossbar(w).read(7, 40), 0xA0B0C0D0u + w)
            << "warp " << w;
        // Source intact.
        EXPECT_EQ(sim.crossbar(w).read(3, 5), 0xA0B0C0D0u + w);
    }
}

TEST_F(MoveTest, IntraWarpMoveSameRowDifferentRegister)
{
    sim.crossbar(2).writeRow(1, 123456u, 9);
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::IntraWarp;
    mv.srcReg = 1;
    mv.dstReg = 2;
    mv.srcRow = 9;
    mv.dstRow = 9;
    mv.warps = Range::single(2);
    drv.execute(mv);
    EXPECT_EQ(sim.crossbar(2).read(2, 9), 123456u);
}

TEST_F(MoveTest, IntraWarpMoveRespectsWarpMask)
{
    for (uint32_t w = 0; w < geo.numCrossbars; ++w) {
        sim.crossbar(w).writeRow(0, 1000 + w, 0);
        sim.crossbar(w).writeRow(4, 77, 8);
    }
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::IntraWarp;
    mv.srcReg = 0;
    mv.dstReg = 4;
    mv.srcRow = 0;
    mv.dstRow = 8;
    mv.warps = Range(1, 3, 2);
    drv.execute(mv);
    EXPECT_EQ(sim.crossbar(0).read(4, 8), 77u);
    EXPECT_EQ(sim.crossbar(1).read(4, 8), 1001u);
    EXPECT_EQ(sim.crossbar(2).read(4, 8), 77u);
    EXPECT_EQ(sim.crossbar(3).read(4, 8), 1003u);
}

TEST_F(MoveTest, InterWarpMoveTransfersAcrossHTree)
{
    sim.crossbar(0).writeRow(2, 0x11111111u, 7);
    sim.crossbar(1).writeRow(2, 0x22222222u, 7);
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::InterWarp;
    mv.srcReg = 2;
    mv.dstReg = 5;
    mv.srcRow = 7;
    mv.dstRow = 13;
    mv.warps = Range(0, 1, 1);
    mv.dstStartWarp = 2;
    drv.execute(mv);
    EXPECT_EQ(sim.crossbar(2).read(5, 13), 0x11111111u);
    EXPECT_EQ(sim.crossbar(3).read(5, 13), 0x22222222u);
}

TEST_F(MoveTest, InterWarpMoveBackward)
{
    sim.crossbar(3).writeRow(1, 9999u, 0);
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::InterWarp;
    mv.srcReg = 1;
    mv.dstReg = 1;
    mv.srcRow = 0;
    mv.dstRow = 0;
    mv.warps = Range::single(3);
    mv.dstStartWarp = 0;
    drv.execute(mv);
    EXPECT_EQ(sim.crossbar(0).read(1, 0), 9999u);
}

TEST_F(MoveTest, InterWarpRejectsBadPatterns)
{
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::InterWarp;
    mv.warps = Range(0, 3, 3);  // step 3 is not a power of 4
    mv.dstStartWarp = 1;
    EXPECT_THROW(drv.execute(mv), Error);
    mv.warps = Range(0, 3, 1);
    mv.dstStartWarp = 2;  // 3 + 2 out of range
    EXPECT_THROW(drv.execute(mv), Error);
}

TEST_F(MoveTest, MoveCostsMatchHTreeModel)
{
    sim.stats().clear();
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::InterWarp;
    mv.srcReg = 0;
    mv.dstReg = 0;
    mv.srcRow = 0;
    mv.dstRow = 0;
    mv.warps = Range::single(0);
    mv.dstStartWarp = 1;  // same level-1 group: 2 cycles
    drv.execute(mv);
    EXPECT_EQ(sim.stats().cycleCount[size_t(OpClass::Move)], 2u);
    EXPECT_EQ(sim.stats().opCount[size_t(OpClass::Move)], 1u);
}

TEST_F(MoveTest, IntraWarpMovePreservesOtherRows)
{
    std::vector<uint32_t> before(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        before[r] = 0x5000 + r;
        sim.crossbar(0).writeRow(6, before[r], r);
    }
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::IntraWarp;
    mv.srcReg = 6;
    mv.dstReg = 6;
    mv.srcRow = 10;
    mv.dstRow = 20;
    mv.warps = Range::single(0);
    drv.execute(mv);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const uint32_t expect = r == 20 ? before[10] : before[r];
        EXPECT_EQ(sim.crossbar(0).read(6, r), expect) << "row " << r;
    }
}
