/**
 * @file
 * Randomised-program fuzzing: generate random tensor programs (mixed
 * ops, views, scalars, reductions) and execute them simultaneously on
 * the PIM stack and on a host-side reference interpreter, comparing
 * bit-exactly after every step. Also fuzzes the micro-op wire format
 * (decode(encode(x)) over random field values, and simulator behaviour
 * on arbitrary well-formed op streams).
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

namespace
{

/** Host-side reference value set mirroring one PIM tensor. */
struct Ref
{
    std::vector<uint32_t> bits;
};

class ProgramFuzz : public ::testing::TestWithParam<uint64_t>
{
  protected:
    ProgramFuzz() : dev(testGeometry()), rng(GetParam()) {}

    static float asF(uint32_t u) { return std::bit_cast<float>(u); }
    static uint32_t asU(float f) { return std::bit_cast<uint32_t>(f); }

    Device dev;
    Rng rng;
};

} // namespace

TEST_P(ProgramFuzz, RandomIntPrograms)
{
    const uint64_t n = 64 + rng.word() % 128;
    std::vector<Tensor> live;
    std::vector<Ref> refs;
    auto fresh = [&] {
        Ref r;
        r.bits.resize(n);
        for (auto &x : r.bits)
            x = rng.word();
        std::vector<int32_t> v(n);
        for (uint64_t i = 0; i < n; ++i)
            v[i] = static_cast<int32_t>(r.bits[i]);
        live.push_back(Tensor::fromVector(v, &dev));
        refs.push_back(std::move(r));
    };
    fresh();
    fresh();
    for (int step = 0; step < 24; ++step) {
        const uint32_t a = rng.word() % live.size();
        const uint32_t b = rng.word() % live.size();
        Tensor out;
        Ref ref;
        ref.bits.resize(n);
        switch (rng.word() % 7) {
          case 0:
            out = live[a] + live[b];
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = refs[a].bits[i] + refs[b].bits[i];
            break;
          case 1:
            out = live[a] - live[b];
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = refs[a].bits[i] - refs[b].bits[i];
            break;
          case 2:
            out = live[a] * live[b];
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = refs[a].bits[i] * refs[b].bits[i];
            break;
          case 3:
            out = live[a] ^ live[b];
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = refs[a].bits[i] ^ refs[b].bits[i];
            break;
          case 4:
            out = live[a] < live[b];
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = static_cast<int32_t>(refs[a].bits[i]) <
                                      static_cast<int32_t>(
                                          refs[b].bits[i])
                                  ? 1 : 0;
            break;
          case 5:
            out = -live[a];
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = 0u - refs[a].bits[i];
            break;
          default: {
            const uint32_t c = rng.word() % live.size();
            Tensor cond = isZero(live[c]);
            out = where(cond, live[a], live[b]);
            for (uint64_t i = 0; i < n; ++i)
                ref.bits[i] = refs[c].bits[i] == 0 ? refs[a].bits[i]
                                                   : refs[b].bits[i];
            break;
          }
        }
        // Keep the working set bounded (registers are finite).
        if (live.size() >= 6) {
            live.erase(live.begin());
            refs.erase(refs.begin());
        }
        live.push_back(out);
        refs.push_back(ref);
        const auto got = out.toIntVector();
        for (uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(static_cast<uint32_t>(got[i]),
                      refs.back().bits[i])
                << "seed " << GetParam() << " step " << step << " i "
                << i;
    }
}

TEST_P(ProgramFuzz, RandomFloatProgramsWithViews)
{
    const uint64_t n = 128;
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.floatIn(-1e3f, 1e3f);
    Tensor t = Tensor::fromVector(v, &dev);
    std::vector<float> ref = v;
    for (int step = 0; step < 10; ++step) {
        const uint32_t stride = 1 + rng.word() % 3;
        const uint32_t offset = rng.word() % stride;
        const float s = rng.floatIn(-3.f, 3.f);
        const bool isMul = rng.word() % 2;
        Tensor view = t.every(stride, offset);
        Tensor mod = isMul ? view * s : view + s;
        // Scatter back through the view and mirror on the host.
        view.assignFrom(mod);
        for (uint64_t i = offset; i < n; i += stride)
            ref[i] = isMul ? ref[i] * s : ref[i] + s;
        const auto all = t.toFloatVector();
        for (uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(all[i], ref[i])
                << "seed " << GetParam() << " step " << step;
    }
}

TEST_P(ProgramFuzz, MicroOpWireFormatTotalRoundTrip)
{
    Rng r(GetParam() * 31337 + 1);
    for (int i = 0; i < 5000; ++i) {
        // Any encodable decoded op must round-trip exactly.
        MicroOp op;
        switch (r.word() % 7) {
          case 0:
            op = MicroOp::crossbarMask(Range(r.word() % 65536,
                                             r.word() % 65536,
                                             r.word() % 65536));
            break;
          case 1:
            op = MicroOp::rowMask(Range(r.word() % 65536,
                                        r.word() % 65536,
                                        r.word() % 65536));
            break;
          case 2:
            op = MicroOp::read(r.word() % 64);
            break;
          case 3:
            op = MicroOp::write(r.word() % 64, r.word());
            break;
          case 4:
            op = MicroOp::logicH(static_cast<Gate>(r.word() % 4),
                                 r.word() % 1024, r.word() % 1024,
                                 r.word() % 1024, r.word() % 64,
                                 r.word() % 64);
            break;
          case 5:
            op = MicroOp::logicV(static_cast<Gate>(r.word() % 3),
                                 r.word() % 65536, r.word() % 65536,
                                 r.word() % 64);
            break;
          default:
            op = MicroOp::move(r.word() % 65536, r.word() % 65536,
                               r.word() % 65536, r.word() % 64,
                               r.word() % 64);
            break;
        }
        const Word w = op.encode();
        ASSERT_EQ(MicroOp::decode(w), op);
        ASSERT_EQ(MicroOp::decode(w).encode(), w);
    }
}

TEST_P(ProgramFuzz, SimulatorSurvivesArbitraryValidStreams)
{
    // Random well-formed mask/write/init/vertical streams must never
    // corrupt the simulator (logic values are data; we only assert no
    // crash and mask-respecting writes).
    Geometry g = testGeometry();
    Simulator sim(g);
    Rng r(GetParam() ^ 0xF00D);
    for (int i = 0; i < 400; ++i) {
        switch (r.word() % 5) {
          case 0: {
            const uint32_t a = r.word() % g.numCrossbars;
            const uint32_t b = a + r.word() % (g.numCrossbars - a);
            sim.perform(MicroOp::crossbarMask(
                Range(a, b, std::max(1u, (b - a) == 0 ? 1 : (b - a)))));
            break;
          }
          case 1: {
            const uint32_t a = r.word() % g.rows;
            sim.perform(MicroOp::rowMask(Range(a, g.rows - 1,
                                               std::max<uint32_t>(
                                                   1, (g.rows - 1 - a)
                                                          ? (g.rows - 1 -
                                                             a)
                                                          : 1))));
            break;
          }
          case 2:
            sim.perform(MicroOp::write(r.word() % g.slots(), r.word()));
            break;
          case 3:
            sim.perform(MicroOp::logicH(
                r.word() % 2 ? Gate::Init1 : Gate::Init0, 0, 0,
                g.column(r.word() % g.slots(), 0), g.partitions - 1,
                1));
            break;
          default:
            sim.perform(MicroOp::logicV(Gate::Init1, 0,
                                        r.word() % g.rows,
                                        r.word() % g.slots()));
            break;
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::Values(3ull, 99ull, 2024ull));
