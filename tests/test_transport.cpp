/**
 * @file
 * Shard-transport wire tests (sim/transport.hpp, sim/trace_wire.hpp):
 * the framed protocol must reject EVERY damaged message loudly —
 * single-bit flips anywhere in a frame, truncation at every length,
 * byte reorderings and trailing garbage all throw pypim::Error before
 * any state is applied; worker-side typed exceptions cross the wire
 * and rethrow as the matching error class; trace images survive a
 * round trip bit-exactly and reject corruption; and the live
 * fork/socketpair fleet ships each frozen trace once per worker,
 * surfaces a killed worker as a DeviceFault and rebuilds it through
 * checkpoint restore and journaled recovery.
 */
#include <gtest/gtest.h>

#include <csignal>
#include <dirent.h>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/batch_trace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/device_group.hpp"
#include "sim/htree.hpp"
#include "sim/serialize.hpp"
#include "sim/trace_wire.hpp"
#include "sim/transport.hpp"

using namespace pypim;

namespace
{

/** Small self-contained stream leading with both masks, as the trace
 *  wire codec requires of a frozen batch. */
std::vector<Word>
tracedStream(const Geometry &g)
{
    std::vector<Word> ops;
    ops.push_back(
        MicroOp::crossbarMask(Range::all(g.numCrossbars)).encode());
    ops.push_back(MicroOp::rowMask(Range::all(g.rows)).encode());
    ops.push_back(MicroOp::write(2, 0xDEADBEEFu).encode());
    ops.push_back(MicroOp::write(3, 41).encode());
    const uint32_t out = g.column(4, 0);
    ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, out,
                                  g.partitions - 1, 1)
                      .encode());
    ops.push_back(MicroOp::logicH(Gate::Nor, g.column(2, 0),
                                  g.column(3, 0), g.column(5, 0),
                                  g.partitions - 1, 1)
                      .encode());
    return ops;
}

/** Reference frame used by the fuzz battery. */
std::vector<uint8_t>
sampleFrame()
{
    std::vector<uint8_t> payload(48);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<uint8_t>(i * 37 + 5);
    return encodeFrame(kMsgSubmit, payload.data(), payload.size());
}

/** PIDs of every live child process (the forked shard workers), via
 *  /proc — empty when the kernel lacks CONFIG_PROC_CHILDREN. */
std::vector<pid_t>
liveChildren()
{
    std::vector<pid_t> pids;
    DIR *tasks = ::opendir("/proc/self/task");
    if (!tasks)
        return pids;
    while (struct dirent *e = ::readdir(tasks)) {
        if (e->d_name[0] == '.')
            continue;
        std::ifstream f(std::string("/proc/self/task/") + e->d_name +
                        "/children");
        pid_t p = 0;
        while (f >> p)
            pids.push_back(p);
    }
    ::closedir(tasks);
    return pids;
}

} // namespace

// --- frame codec ----------------------------------------------------------

TEST(WireFrame, RoundTripCarriesTypeAndPayload)
{
    const std::vector<uint8_t> payload = {9, 0, 255, 3, 128};
    const std::vector<uint8_t> bytes =
        encodeFrame(kMsgBulkRead, payload.data(), payload.size());
    ASSERT_EQ(bytes.size(), kFrameHeader + payload.size());
    const WireFrame f = decodeFrame(bytes.data(), bytes.size());
    EXPECT_EQ(f.type, kMsgBulkRead);
    EXPECT_EQ(f.payload, payload);
}

TEST(WireFrame, EmptyPayloadRoundTrips)
{
    const std::vector<uint8_t> bytes =
        encodeFrame(kMsgFlush, nullptr, 0);
    ASSERT_EQ(bytes.size(), kFrameHeader);
    const WireFrame f = decodeFrame(bytes.data(), bytes.size());
    EXPECT_EQ(f.type, kMsgFlush);
    EXPECT_TRUE(f.payload.empty());
}

TEST(WireFrame, EncodeRejectsUnknownType)
{
    EXPECT_THROW(encodeFrame(42, nullptr, 0), InternalError);
    EXPECT_THROW(encodeFrame(0, nullptr, 0), InternalError);
}

TEST(WireFrame, EveryBitFlipIsRejected)
{
    // The checksum covers header and payload: no single-bit flip may
    // decode, even one that lands on another valid type or length.
    const std::vector<uint8_t> frame = sampleFrame();
    for (size_t i = 0; i < frame.size(); ++i) {
        for (int b = 0; b < 8; ++b) {
            std::vector<uint8_t> bad = frame;
            bad[i] ^= static_cast<uint8_t>(1u << b);
            EXPECT_THROW(decodeFrame(bad.data(), bad.size()), Error)
                << "flip survived at byte " << i << " bit " << b;
        }
    }
}

TEST(WireFrame, EveryTruncationIsRejected)
{
    const std::vector<uint8_t> frame = sampleFrame();
    for (size_t n = 0; n < frame.size(); ++n)
        EXPECT_THROW(decodeFrame(frame.data(), n), Error)
            << "truncation to " << n << " bytes survived";
}

TEST(WireFrame, TrailingBytesAreRejected)
{
    std::vector<uint8_t> frame = sampleFrame();
    frame.push_back(0);
    EXPECT_THROW(decodeFrame(frame.data(), frame.size()), Error);
}

TEST(WireFrame, ByteReorderIsRejected)
{
    // Swapping any two differing bytes (a reordered wire) must fail
    // the checksum or a field guard — never decode.
    const std::vector<uint8_t> frame = sampleFrame();
    for (size_t i = 0; i < frame.size(); ++i) {
        for (size_t j = i + 1; j < frame.size(); ++j) {
            if (frame[i] == frame[j])
                continue;
            std::vector<uint8_t> bad = frame;
            std::swap(bad[i], bad[j]);
            EXPECT_THROW(decodeFrame(bad.data(), bad.size()), Error)
                << "swap " << i << "<->" << j << " survived";
        }
    }
}

// --- typed error forwarding -----------------------------------------------

TEST(WireError, KindsMapToTypedExceptions)
{
    const auto rethrow = [](uint8_t kind, const std::string &msg) {
        rethrowWireError(encodeWireError(kind, msg));
    };
    EXPECT_THROW(rethrow(kErrUser, "u"), Error);
    EXPECT_THROW(rethrow(kErrInternal, "i"), InternalError);
    EXPECT_THROW(rethrow(kErrFault, "f"), DeviceFault);
    EXPECT_THROW(rethrow(kErrCorruption, "c"), StateCorruption);
    EXPECT_THROW(rethrow(kErrInjected, "j"), InjectedFault);
    // Unknown kinds degrade to the base class, never to silence.
    EXPECT_THROW(rethrow(99, "x"), Error);
}

TEST(WireError, MessageSurvivesTheWire)
{
    try {
        rethrowWireError(
            encodeWireError(kErrCorruption, "crossbar 3 diverged"));
        FAIL() << "did not throw";
    } catch (const StateCorruption &e) {
        EXPECT_STREQ(e.what(), "crossbar 3 diverged");
    }
}

TEST(WireError, MalformedPayloadThrowsLoudly)
{
    const std::vector<uint8_t> good =
        encodeWireError(kErrUser, "boom");
    for (size_t n = 0; n < good.size(); ++n) {
        const std::vector<uint8_t> bad(good.begin(), good.begin() + n);
        EXPECT_THROW(rethrowWireError(bad), Error)
            << "truncation to " << n << " bytes survived";
    }
}

// --- trace wire format ----------------------------------------------------

TEST(TraceWire, SignatureIsContentAddressed)
{
    const Geometry g = testGeometry();
    const std::vector<Word> ops = tracedStream(g);
    const uint64_t sig = traceSignature(ops.data(), ops.size(), true);
    EXPECT_NE(sig, 0u);
    EXPECT_NE(sig, traceSignature(ops.data(), ops.size(), false))
        << "fusion flag must be part of the identity";
    std::vector<Word> other = ops;
    other[3] = MicroOp::write(3, 42).encode();
    EXPECT_NE(sig, traceSignature(other.data(), other.size(), true));
}

TEST(TraceWire, RoundTripRebuildsIdenticalTrace)
{
    const Geometry g = testGeometry();
    const HTree ht(g.numCrossbars);
    const std::vector<Word> ops = tracedStream(g);
    for (const bool compiled : {false, true}) {
        const std::shared_ptr<const BatchTrace> t = buildWireTrace(
            ops.data(), ops.size(), true, compiled, g, ht);
        ASSERT_TRUE(t);
        EXPECT_EQ(t->wireSig,
                  traceSignature(ops.data(), ops.size(), true));
        const std::vector<uint8_t> img = encodeTraceWire(*t);
        const std::shared_ptr<const BatchTrace> d =
            decodeTraceWire(img.data(), img.size(), g, ht);
        ASSERT_TRUE(d);
        EXPECT_EQ(d->wireSig, t->wireSig);
        EXPECT_TRUE(d->stats == t->stats);
        EXPECT_TRUE(d->finalXb == t->finalXb);
        EXPECT_TRUE(d->finalRow == t->finalRow);
    }
}

TEST(TraceWire, StreamWithoutLeadingMasksIsNotWireable)
{
    const Geometry g = testGeometry();
    const HTree ht(g.numCrossbars);
    const std::vector<Word> ops = {MicroOp::write(2, 7).encode()};
    EXPECT_EQ(buildWireTrace(ops.data(), ops.size(), true, true, g, ht),
              nullptr);
}

TEST(TraceWire, EveryBitFlipIsRejected)
{
    // Uncompiled image: every field is guarded (magic/version/geometry
    // checks, the signature over the source ops, and the architectural
    // epilogue cross-check against the rebuilt trace), so any
    // single-bit flip must throw.
    const Geometry g = testGeometry();
    const HTree ht(g.numCrossbars);
    const std::vector<Word> ops = tracedStream(g);
    const std::shared_ptr<const BatchTrace> t =
        buildWireTrace(ops.data(), ops.size(), true, false, g, ht);
    ASSERT_TRUE(t);
    const std::vector<uint8_t> img = encodeTraceWire(*t);
    for (size_t i = 0; i < img.size(); ++i) {
        for (int b = 0; b < 8; ++b) {
            std::vector<uint8_t> bad = img;
            bad[i] ^= static_cast<uint8_t>(1u << b);
            EXPECT_THROW(decodeTraceWire(bad.data(), bad.size(), g, ht),
                         Error)
                << "flip survived at byte " << i << " bit " << b;
        }
    }
}

TEST(TraceWire, EveryTruncationIsRejected)
{
    const Geometry g = testGeometry();
    const HTree ht(g.numCrossbars);
    const std::vector<Word> ops = tracedStream(g);
    const std::shared_ptr<const BatchTrace> t =
        buildWireTrace(ops.data(), ops.size(), true, true, g, ht);
    ASSERT_TRUE(t);
    std::vector<uint8_t> img = encodeTraceWire(*t);
    for (size_t n = 0; n < img.size(); ++n)
        EXPECT_THROW(decodeTraceWire(img.data(), n, g, ht), Error)
            << "truncation to " << n << " bytes survived";
    img.push_back(0);
    EXPECT_THROW(decodeTraceWire(img.data(), img.size(), g, ht), Error)
        << "trailing byte survived";
}

TEST(TraceWire, WrongGeometryIsRejected)
{
    const Geometry g = testGeometry();
    const HTree ht(g.numCrossbars);
    const std::vector<Word> ops = tracedStream(g);
    const std::shared_ptr<const BatchTrace> t =
        buildWireTrace(ops.data(), ops.size(), true, true, g, ht);
    ASSERT_TRUE(t);
    const std::vector<uint8_t> img = encodeTraceWire(*t);
    Geometry g2 = g;
    g2.numCrossbars *= 4;
    const HTree ht2(g2.numCrossbars);
    EXPECT_THROW(decodeTraceWire(img.data(), img.size(), g2, ht2),
                 Error);
}

// --- live fleet -----------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define PYPIM_SKIP_UNDER_TSAN() \
    GTEST_SKIP() << "fork-based transport tests do not run under TSan"
#else
#define PYPIM_SKIP_UNDER_TSAN() (void)0
#endif

TEST(SocketFleet, TraceCrossesTheWireOncePerWorker)
{
    PYPIM_SKIP_UNDER_TSAN();
    Geometry g = testGeometry();
    g.numCrossbars = 16;
    const EngineConfig cfg = EngineConfig::serial()
                                 .withDevices(2)
                                 .withTransport(TransportKind::Socket);
    SimulatorGroup grp(g, cfg);
    ASSERT_TRUE(grp.remote());
    const std::vector<Word> ops = tracedStream(g);
    const std::shared_ptr<const BatchTrace> trace =
        grp.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_TRUE(trace);
    for (int i = 0; i < 3; ++i)
        grp.submitTrace(trace);
    grp.flush();
    const WireTelemetry t = grp.wireTelemetry();
    EXPECT_EQ(t.traceInstalls, 2u)
        << "each signature must be transmitted at most once per worker";
    EXPECT_EQ(t.traceHits, 4u)
        << "replays after the first are install-free per worker";
    EXPECT_GT(t.bytesTx, 0u);
    EXPECT_GT(t.bytesRx, 0u);
    EXPECT_GT(t.roundTrips, 0u);

    // Same trace replayed by the in-process group: the architectural
    // stats and the canonical state image must be bit-identical (the
    // wire counters live OUTSIDE Stats precisely to keep this true).
    SimulatorGroup ref(g, EngineConfig::serial().withDevices(2));
    const std::shared_ptr<const BatchTrace> refTrace =
        ref.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_TRUE(refTrace);
    for (int i = 0; i < 3; ++i)
        ref.submitTrace(refTrace);
    ref.flush();
    EXPECT_TRUE(grp.stats() == ref.stats());
    EXPECT_EQ(encodeCheckpoint(buildGroupImage(grp)),
              encodeCheckpoint(buildGroupImage(ref)));
}

TEST(SocketFleet, KilledWorkerSurfacesAsDeviceFaultAndRestores)
{
    PYPIM_SKIP_UNDER_TSAN();
    Geometry g = testGeometry();
    g.numCrossbars = 16;
    const EngineConfig cfg = EngineConfig::serial()
                                 .withDevices(2)
                                 .withTransport(TransportKind::Socket);
    SimulatorGroup grp(g, cfg);
    const std::vector<Word> ops = tracedStream(g);
    grp.submitBatch(ops.data(), ops.size());
    grp.flush();
    const CheckpointImage img = buildGroupImage(grp);
    const std::vector<uint8_t> before = encodeCheckpoint(img);

    const std::vector<pid_t> workers = liveChildren();
    if (workers.empty())
        GTEST_SKIP() << "/proc/self/task/*/children unavailable";
    for (const pid_t p : workers)
        ::kill(p, SIGKILL);
    EXPECT_THROW(
        {
            // The broken pipe may surface on the send or the reply:
            // either way it must be the recoverable WorkerDied, a
            // DeviceFault — not a silent hang or a raw errno.
            grp.flush();
            (void)grp.stats();
        },
        DeviceFault);

    // Restore respawns the dead workers and replays the image; the
    // rebuilt fleet must serve the identical canonical state.
    restoreGroupImage(grp, img);
    EXPECT_EQ(encodeCheckpoint(buildGroupImage(grp)), before);
}

TEST(SocketFleet, InjectedFaultIsRecoveredAcrossTheWire)
{
    PYPIM_SKIP_UNDER_TSAN();
    Geometry g = testGeometry();
    g.numCrossbars = 16;
    const EngineConfig socket = EngineConfig::serial()
                                    .withDevices(2)
                                    .withTransport(TransportKind::Socket);
    // The worker hits fail=N, goes sticky, and replies a typed
    // InjectedFault at the next sync — which the host-side recovery
    // seam turns into restore + journal replay, exactly as in-process.
    Device faulty(g, Driver::Mode::Parallel,
                  socket.withFaults("seed=3:fail=4").withVerifyState());
    Device clean(g, Driver::Mode::Parallel, socket);
    const auto run = [](Device &dev) {
        Rng rng(99);
        std::vector<int32_t> va(64), vb(64);
        for (size_t i = 0; i < va.size(); ++i) {
            va[i] = static_cast<int32_t>(rng.word());
            vb[i] = static_cast<int32_t>(rng.word() | 1);
        }
        Tensor a = Tensor::fromVector(va, &dev);
        Tensor b = Tensor::fromVector(vb, &dev);
        Tensor c = a * b + a;
        std::vector<int32_t> out = c.toIntVector();
        Tensor d = (c ^ b) - a;
        const std::vector<int32_t> tail = d.toIntVector();
        out.insert(out.end(), tail.begin(), tail.end());
        return out;
    };
    EXPECT_EQ(run(faulty), run(clean));
    const Stats fs = faulty.faultStats();
    EXPECT_GE(fs.faultsDetected, 1u);
    EXPECT_GE(fs.recoveries, 1u);
    EXPECT_GE(fs.faultsInjected, 1u);
    EXPECT_GT(fs.wireBytesTx, 0u)
        << "transport telemetry must fold into the fault report";
    EXPECT_GT(fs.wireRoundTrips, 0u);
}
