/**
 * @file
 * Encode/decode round-trip tests for the 64-bit micro-op format
 * (paper Fig. 5).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "uarch/microop.hpp"

using namespace pypim;

namespace
{

void
roundTrip(const MicroOp &op)
{
    const Word w = op.encode();
    const MicroOp back = MicroOp::decode(w);
    EXPECT_EQ(op, back) << op.toString() << " vs " << back.toString();
    EXPECT_EQ(back.encode(), w);
}

} // namespace

TEST(MicroOp, CrossbarMaskRoundTrip)
{
    roundTrip(MicroOp::crossbarMask(Range(0, 65535, 1)));
    roundTrip(MicroOp::crossbarMask(Range(3, 1027, 4)));
    roundTrip(MicroOp::crossbarMask(Range::single(0)));
}

TEST(MicroOp, RowMaskRoundTrip)
{
    roundTrip(MicroOp::rowMask(Range(0, 1023, 1)));
    roundTrip(MicroOp::rowMask(Range(1, 1021, 2)));
}

TEST(MicroOp, ReadWriteRoundTrip)
{
    roundTrip(MicroOp::read(0));
    roundTrip(MicroOp::read(31));
    roundTrip(MicroOp::write(5, 0xDEADBEEF));
    roundTrip(MicroOp::write(0, 0));
    roundTrip(MicroOp::write(31, 0xFFFFFFFF));
}

TEST(MicroOp, LogicHRoundTrip)
{
    roundTrip(MicroOp::logicH(Gate::Nor, 10, 700, 1023, 31, 0));
    roundTrip(MicroOp::logicH(Gate::Nor, 0, 33, 65, 31, 2));
    roundTrip(MicroOp::logicH(Gate::Not, 5, 5, 37, 1, 0));
    roundTrip(MicroOp::logicH(Gate::Init0, 0, 0, 512, 31, 1));
    roundTrip(MicroOp::logicH(Gate::Init1, 0, 0, 0, 0, 0));
}

TEST(MicroOp, LogicHCanonicalisesUnusedInputs)
{
    // INIT has no inputs, NOT has one: factories canonicalise so that
    // encode(decode(w)) is stable.
    const MicroOp init = MicroOp::logicH(Gate::Init1, 77, 88, 9, 0, 0);
    EXPECT_EQ(init.inA, 0u);
    EXPECT_EQ(init.inB, 0u);
    const MicroOp n = MicroOp::logicH(Gate::Not, 77, 88, 9, 0, 0);
    EXPECT_EQ(n.inB, 77u);
}

TEST(MicroOp, LogicVRoundTrip)
{
    roundTrip(MicroOp::logicV(Gate::Not, 1023, 0, 31));
    roundTrip(MicroOp::logicV(Gate::Init1, 0, 55, 3));
    roundTrip(MicroOp::logicV(Gate::Init0, 0, 0, 0));
}

TEST(MicroOp, LogicVRejectsNor)
{
    EXPECT_THROW(MicroOp::logicV(Gate::Nor, 0, 1, 0), InternalError);
}

TEST(MicroOp, MoveRoundTrip)
{
    roundTrip(MicroOp::move(4096, 1023, 0, 31, 15));
    roundTrip(MicroOp::move(0, 0, 0, 0, 0));
}

TEST(MicroOp, FieldOverflowPanics)
{
    MicroOp op = MicroOp::write(64, 1);  // slot field is 6 bits
    EXPECT_THROW(op.encode(), InternalError);
    MicroOp l = MicroOp::logicH(Gate::Nor, 1024, 0, 0, 0, 0);
    EXPECT_THROW(l.encode(), InternalError);
}

TEST(MicroOp, TypePeekMatchesDecode)
{
    const Word w = MicroOp::logicH(Gate::Nor, 1, 2, 3, 0, 0).encode();
    EXPECT_EQ(enc::peekType(w), OpType::LogicH);
    const Word m = MicroOp::move(1, 2, 3, 4, 5).encode();
    EXPECT_EQ(enc::peekType(m), OpType::Move);
}

TEST(MicroOp, RandomisedLogicHRoundTrip)
{
    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
        const uint32_t inA = rng.word() % 1024;
        const uint32_t inB = rng.word() % 1024;
        const uint32_t out = rng.word() % 1024;
        const uint32_t pEnd = rng.word() % 64;
        const uint32_t pStep = rng.word() % 64;
        const Gate g = static_cast<Gate>(rng.word() % 4);
        roundTrip(MicroOp::logicH(g, inA, inB, out, pEnd, pStep));
    }
}

TEST(MicroOp, RandomisedMaskRoundTrip)
{
    Rng rng(321);
    for (int i = 0; i < 2000; ++i) {
        const uint32_t start = rng.word() % 65536;
        const uint32_t stop = rng.word() % 65536;
        const uint32_t step = rng.word() % 65536;
        roundTrip(MicroOp::crossbarMask(Range(start, stop, step)));
        roundTrip(MicroOp::rowMask(Range(start, stop, step)));
    }
}
