/**
 * @file
 * GateBuilder tests: logic primitives verified against truth tables on
 * the bit-level simulator, straddle fallback, lane ops, broadcasts,
 * mask handling. Rows of the crossbar enumerate input combinations so
 * that one emitted sequence checks every case at once — exactly the
 * element-parallel evaluation model.
 */
#include <gtest/gtest.h>

#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::PimFixture;

namespace
{

class GateBuilderTest : public PimFixture
{
  protected:
    /** Load bit @p value(r) into @p cell of every row r of warp 0. */
    template <typename Fn>
    void
    loadCell(uint32_t cell, Fn value)
    {
        for (uint32_t r = 0; r < geo.rows; ++r)
            sim.crossbar(0).setBit(r, cell, value(r));
    }
};

} // namespace

TEST_F(GateBuilderTest, NorTruthTableAllRows)
{
    const uint32_t a = builder.pool().allocBitIn(0);
    const uint32_t b = builder.pool().allocBitIn(0);
    loadCell(a, [](uint32_t r) { return r & 1; });
    loadCell(b, [](uint32_t r) { return (r >> 1) & 1; });
    const uint32_t out = builder.nor(a, b);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const bool expect = !((r & 1) || ((r >> 1) & 1));
        EXPECT_EQ(peekCell(0, r, out), expect) << "row " << r;
    }
}

TEST_F(GateBuilderTest, DerivedGatesMatchTruthTables)
{
    const uint32_t a = builder.pool().allocBitIn(2);
    const uint32_t b = builder.pool().allocBitIn(9);
    loadCell(a, [](uint32_t r) { return r & 1; });
    loadCell(b, [](uint32_t r) { return (r >> 1) & 1; });
    const uint32_t o_and = builder.and_(a, b);
    const uint32_t o_or = builder.or_(a, b);
    const uint32_t o_xor = builder.xor_(a, b);
    const uint32_t o_xnor = builder.xnor_(a, b);
    const uint32_t o_not = builder.not_(a);
    builder.flush();
    for (uint32_t r = 0; r < 4; ++r) {
        const bool av = r & 1, bv = (r >> 1) & 1;
        EXPECT_EQ(peekCell(0, r, o_and), av && bv);
        EXPECT_EQ(peekCell(0, r, o_or), av || bv);
        EXPECT_EQ(peekCell(0, r, o_xor), av != bv);
        EXPECT_EQ(peekCell(0, r, o_xnor), av == bv);
        EXPECT_EQ(peekCell(0, r, o_not), !av);
    }
}

TEST_F(GateBuilderTest, MuxSelectsPerRow)
{
    const uint32_t s = builder.pool().allocBitIn(5);
    const uint32_t a = builder.pool().allocBitIn(6);
    const uint32_t b = builder.pool().allocBitIn(7);
    loadCell(s, [](uint32_t r) { return r & 1; });
    loadCell(a, [](uint32_t r) { return (r >> 1) & 1; });
    loadCell(b, [](uint32_t r) { return (r >> 2) & 1; });
    const uint32_t out = builder.mux(s, a, b);
    builder.flush();
    for (uint32_t r = 0; r < 8; ++r) {
        const bool expect = (r & 1) ? ((r >> 1) & 1) : ((r >> 2) & 1);
        EXPECT_EQ(peekCell(0, r, out), expect) << "row " << r;
    }
}

TEST_F(GateBuilderTest, FullAdderExhaustive)
{
    const uint32_t a = builder.pool().allocBitIn(1);
    const uint32_t b = builder.pool().allocBitIn(1);
    const uint32_t c = builder.pool().allocBitIn(2);
    loadCell(a, [](uint32_t r) { return r & 1; });
    loadCell(b, [](uint32_t r) { return (r >> 1) & 1; });
    loadCell(c, [](uint32_t r) { return (r >> 2) & 1; });
    const uint32_t sum = builder.pool().allocBitIn(3);
    const uint32_t cout = builder.pool().allocBitIn(4);
    builder.fullAdder(a, b, c, sum, cout);
    builder.flush();
    for (uint32_t r = 0; r < 8; ++r) {
        const uint32_t total = (r & 1) + ((r >> 1) & 1) + ((r >> 2) & 1);
        EXPECT_EQ(peekCell(0, r, sum), total & 1) << "row " << r;
        EXPECT_EQ(peekCell(0, r, cout), total >> 1) << "row " << r;
    }
}

TEST_F(GateBuilderTest, StraddledOutputFallsBackToCopy)
{
    // Inputs in partitions 0 and 20, output pinned strictly between:
    // norInto must still produce NOR via the routed copy.
    const uint32_t a = builder.pool().allocBitIn(0);
    const uint32_t b = builder.pool().allocBitIn(20);
    const uint32_t out = builder.pool().allocBitIn(10);
    loadCell(a, [](uint32_t r) { return r & 1; });
    loadCell(b, [](uint32_t r) { return (r >> 1) & 1; });
    builder.norInto(a, b, out);
    builder.flush();
    for (uint32_t r = 0; r < 4; ++r) {
        const bool expect = !((r & 1) || ((r >> 1) & 1));
        EXPECT_EQ(peekCell(0, r, out), expect) << "row " << r;
    }
}

TEST_F(GateBuilderTest, CopyCellPreservesPolarity)
{
    const uint32_t src = builder.pool().allocBitIn(3);
    const uint32_t dst = builder.pool().allocBitIn(28);
    loadCell(src, [](uint32_t r) { return (r % 3) == 0; });
    builder.copyCell(src, dst);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekCell(0, r, dst), (r % 3) == 0) << "row " << r;
}

TEST_F(GateBuilderTest, LaneNorActsOnAllPartitionsInOneOp)
{
    pokeWord(0, 0, 0, 0x13572468);
    pokeWord(0, 0, 1, 0x0F0F00FF);
    const uint32_t dst = builder.pool().allocLane();
    sim.stats().clear();
    builder.laneNor(0, 1, dst);
    builder.flush();
    EXPECT_EQ(peekWord(0, 0, dst), ~(0x13572468u | 0x0F0F00FFu));
    // INIT + NOR: exactly two horizontal micro-ops.
    EXPECT_EQ(sim.stats().opCount[size_t(OpClass::LogicH)], 2u);
}

TEST_F(GateBuilderTest, LaneOpsSerialiseWithoutPartitions)
{
    builder.setPartitionsEnabled(false);
    pokeWord(0, 0, 0, 0xAAAAAAAA);
    const uint32_t dst = builder.pool().allocLane();
    sim.stats().clear();
    builder.laneNot(0, dst);
    builder.flush();
    EXPECT_EQ(peekWord(0, 0, dst), ~0xAAAAAAAAu);
    // One INIT + one NOT per partition.
    EXPECT_EQ(sim.stats().opCount[size_t(OpClass::LogicH)],
              2ull * geo.partitions);
}

TEST_F(GateBuilderTest, LaneCopy)
{
    pokeWord(0, 5, 2, 0xC0FFEE00);
    const uint32_t dst = builder.pool().allocLane();
    builder.laneCopy(2, dst);
    builder.flush();
    EXPECT_EQ(peekWord(0, 5, dst), 0xC0FFEE00u);
}

TEST_F(GateBuilderTest, BroadcastToLaneReplicatesCell)
{
    const uint32_t src = builder.pool().allocBitIn(13);
    loadCell(src, [](uint32_t r) { return r & 1; });
    const uint32_t lane = builder.pool().allocLane();
    builder.broadcastToLane(src, lane);
    builder.flush();
    for (uint32_t r = 0; r < 4; ++r)
        EXPECT_EQ(peekWord(0, r, lane), (r & 1) ? 0xFFFFFFFFu : 0u);
}

TEST_F(GateBuilderTest, MaskCachingSkipsRedundantMaskOps)
{
    sim.stats().clear();
    const Range w = Range::all(geo.numCrossbars);
    const Range r = Range::all(geo.rows);
    builder.setMasks(w, r);
    builder.setMasks(w, r);
    builder.setMasks(w, r);
    builder.flush();
    // Fixture already set these masks once; no new ops expected.
    EXPECT_EQ(sim.stats().totalOps(), 0u);
}

TEST_F(GateBuilderTest, RowMaskLimitsGateEffect)
{
    const uint32_t src = builder.pool().allocBitIn(0);
    const uint32_t dst = builder.pool().allocBitIn(0);
    loadCell(src, [](uint32_t) { return false; });
    loadCell(dst, [](uint32_t) { return false; });
    builder.setRowMask(Range(0, geo.rows - 2, 2));  // even rows
    builder.notInto(src, dst);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekCell(0, r, dst), r % 2 == 0) << "row " << r;
}

TEST_F(GateBuilderTest, ReadWordRestoresMasks)
{
    pokeWord(1, 3, 0, 4242);
    builder.setMasks(Range::all(geo.numCrossbars), Range::all(geo.rows));
    const uint32_t v = builder.readWord(1, 3, 0);
    EXPECT_EQ(v, 4242u);
    EXPECT_EQ(builder.warpMask(), Range::all(geo.numCrossbars));
    EXPECT_EQ(builder.rowMask(), Range::all(geo.rows));
    // A subsequent write must hit all warps again.
    builder.writeWord(7, 99);
    builder.flush();
    EXPECT_EQ(peekWord(0, 0, 7), 99u);
    EXPECT_EQ(peekWord(3, geo.rows - 1, 7), 99u);
}

TEST_F(GateBuilderTest, WritesAreVisibleOnAllWarps)
{
    builder.writeWord(9, 0x5A5A5A5A);
    builder.flush();
    for (uint32_t xb = 0; xb < geo.numCrossbars; ++xb)
        EXPECT_EQ(peekWord(xb, 11, 9), 0x5A5A5A5Au);
}
