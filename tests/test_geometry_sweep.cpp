/**
 * @file
 * Geometry sweep: the full stack (driver arithmetic, tensor ops,
 * views, reductions) must behave identically across memory shapes —
 * different row counts, crossbar counts, and register splits
 * (TEST_P / INSTANTIATE_TEST_SUITE_P over geometries). Catches hidden
 * assumptions about the default 64-row / 4-crossbar test shape.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/checkpoint.hpp"
#include "sim/serialize.hpp"

using namespace pypim;

namespace
{

struct GeoCase
{
    const char *name;
    uint32_t rows;
    uint32_t crossbars;
    uint32_t userRegs;
};

class GeometrySweep : public ::testing::TestWithParam<GeoCase>
{
  protected:
    GeometrySweep()
        : geo([] {
              Geometry g = testGeometry();
              g.rows = GetParam().rows;
              g.numCrossbars = GetParam().crossbars;
              g.userRegs = GetParam().userRegs;
              return g;
          }()),
          dev(geo)
    {
    }

    Geometry geo;
    Device dev;
    Rng rng;
};

} // namespace

TEST_P(GeometrySweep, ArithmeticAcrossWarpBoundaries)
{
    const uint64_t n = geo.totalRows();
    std::vector<int32_t> va(n), vb(n);
    for (uint64_t i = 0; i < n; ++i) {
        va[i] = rng.int32In(-100000, 100000);
        vb[i] = rng.int32In(-100000, 100000);
    }
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto sum = (a + b).toIntVector();
    const auto prd = (a * b).toIntVector();
    for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ(sum[i], va[i] + vb[i]) << "i=" << i;
        ASSERT_EQ(prd[i], va[i] * vb[i]) << "i=" << i;
    }
}

TEST_P(GeometrySweep, FloatAddStillBitExact)
{
    const uint64_t n = std::min<uint64_t>(geo.totalRows(), 512);
    std::vector<float> va = rng.floatVec(n, -1e6f, 1e6f);
    std::vector<float> vb = rng.floatVec(n, -1e-3f, 1e-3f);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto got = (a + b).toFloatVector();
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], va[i] + vb[i]) << "i=" << i;
}

TEST_P(GeometrySweep, StridedViewsAndReduction)
{
    const uint64_t n = geo.totalRows();
    std::vector<int32_t> v(n);
    std::iota(v.begin(), v.end(), -static_cast<int32_t>(n / 2));
    Tensor t = Tensor::fromVector(v, &dev);
    int64_t evens = 0, all = 0;
    for (uint64_t i = 0; i < n; ++i) {
        all += v[i];
        if (i % 2 == 0)
            evens += v[i];
    }
    EXPECT_EQ(t.sum<int32_t>(), static_cast<int32_t>(all));
    EXPECT_EQ(t.every(2).sum<int32_t>(), static_cast<int32_t>(evens));
    // Odd-stride views hit the per-warp segment path when the stride
    // does not divide the row count.
    Tensor s = t.every(3);
    int64_t third = 0;
    for (uint64_t i = 0; i < n; i += 3)
        third += v[i];
    EXPECT_EQ(s.sum<int32_t>(), static_cast<int32_t>(third));
}

TEST_P(GeometrySweep, SortFullMemory)
{
    const uint64_t n = geo.totalRows();  // power of two by geometry
    std::vector<int32_t> v(n);
    for (auto &x : v)
        x = rng.int32();
    Tensor t = Tensor::fromVector(v, &dev);
    if (geo.userRegs < 12) {
        // Bitonic sort holds ~11 live tensors per substage: with too
        // few ISA registers the allocator must fail cleanly, leaving
        // the input intact.
        EXPECT_THROW(t.sort(), Error);
        EXPECT_EQ(t.toIntVector(), v);
        return;
    }
    t.sort();
    std::sort(v.begin(), v.end());
    EXPECT_EQ(t.toIntVector(), v);
}

TEST_P(GeometrySweep, PagedStorageMatchesDenseFullStack)
{
    // The same program runs on a dense-storage and a paged-storage
    // device: readback AND the final bit-state of every crossbar must
    // be identical across every geometry shape (block-boundary row
    // counts, multi-crossbar spans, few-register splits).
    Device dense(geo, Driver::Mode::Parallel,
                 EngineConfig::fromEnv().withStorage(
                     XbarStorage::Dense));
    Device paged(geo, Driver::Mode::Parallel,
                 EngineConfig::fromEnv().withStorage(
                     XbarStorage::Paged));
    const uint64_t n = geo.totalRows();
    std::vector<int32_t> va(n), vb(n);
    for (uint64_t i = 0; i < n; ++i) {
        va[i] = rng.int32In(-100000, 100000);
        vb[i] = rng.int32In(-100000, 100000);
    }
    for (Device *dev : {&dense, &paged}) {
        Tensor a = Tensor::fromVector(va, dev);
        Tensor b = Tensor::fromVector(vb, dev);
        Tensor s = a + b;
        Tensor p = a * b;
        const auto sum = s.toIntVector();
        const auto prd = p.toIntVector();
        for (uint64_t i = 0; i < n; ++i) {
            ASSERT_EQ(sum[i], va[i] + vb[i]) << "i=" << i;
            ASSERT_EQ(prd[i], va[i] * vb[i]) << "i=" << i;
        }
        dev->flush();
    }
    // Canonical checkpoint images are byte-identical from dense and
    // paged sources once the informational source-mode header field
    // is normalized — and they are the only state comparator that
    // also works when PYPIM_TRANSPORT=socket puts the crossbars in
    // worker processes.
    auto stateBytes = [](const SimulatorGroup &grp) {
        CheckpointImage img = buildGroupImage(grp);
        img.storage = XbarStorage::Paged;
        return encodeCheckpoint(img);
    };
    ASSERT_EQ(stateBytes(dense.group()), stateBytes(paged.group()))
        << "state diverged between storage modes";
    // Architectural statistics are storage-independent by definition.
    EXPECT_EQ(dense.stats(), paged.stats());
}

TEST_P(GeometrySweep, MovesAcrossTheHTree)
{
    if (geo.numCrossbars < 4)
        GTEST_SKIP();
    const uint64_t rows = geo.rows;
    std::vector<float> v = rng.floatVec(rows * 4, -10.f, 10.f);
    Tensor t = Tensor::fromVector(v, &dev);
    Tensor lo = t.slice(0, rows * 2);
    Tensor hi = t.slice(rows * 2, rows * 4);
    const auto got = (lo * hi).toFloatVector();
    for (uint64_t i = 0; i < rows * 2; ++i)
        ASSERT_EQ(got[i], v[i] * v[rows * 2 + i]) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(GeoCase{"tiny", 64, 4, 14},
                      GeoCase{"tall", 256, 4, 14},
                      GeoCase{"wide", 64, 16, 14},
                      GeoCase{"fewRegs", 128, 4, 6},
                      GeoCase{"paperRows", 1024, 4, 14}),
    [](const auto &info) { return info.param.name; });
