/**
 * @file
 * Bit-level crossbar semantics: stateful logic (output switches only
 * 1 -> 0), strided read/write, vertical ops, row masking.
 */
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "sim/crossbar.hpp"
#include "uarch/partition.hpp"

using namespace pypim;

namespace
{

class CrossbarTest : public ::testing::Test
{
  protected:
    CrossbarTest()
        : geo(testGeometry()),
          xb(geo),
          fullMask(Range::all(geo.rows).expand(geo.rows))
    {
    }

    HalfGates
    gate(Gate g, uint32_t a, uint32_t b, uint32_t out)
    {
        const uint32_t pOut = out / geo.partitionWidth();
        return expandLogicH(MicroOp::logicH(g, a, b, out, pOut, 0), geo);
    }

    Geometry geo;
    Crossbar xb;
    std::vector<uint64_t> fullMask;
};

} // namespace

TEST_F(CrossbarTest, NorTruthTable)
{
    // Columns 0, 1 as inputs; column 2 as output; rows 0..3 hold the
    // four input combinations.
    for (uint32_t r = 0; r < 4; ++r) {
        xb.setBit(r, 0, r & 1);
        xb.setBit(r, 1, (r >> 1) & 1);
        xb.setBit(r, 2, true);  // INIT1
    }
    xb.logicH(gate(Gate::Nor, 0, 1, 2), fullMask);
    EXPECT_TRUE(xb.bit(0, 2));    // NOR(0,0) = 1
    EXPECT_FALSE(xb.bit(1, 2));   // NOR(1,0) = 0
    EXPECT_FALSE(xb.bit(2, 2));   // NOR(0,1) = 0
    EXPECT_FALSE(xb.bit(3, 2));   // NOR(1,1) = 0
}

TEST_F(CrossbarTest, StatefulOutputOnlySwitchesDown)
{
    // Output NOT initialised to 1: NOR(0,0) cannot switch it up.
    xb.setBit(0, 0, false);
    xb.setBit(0, 1, false);
    xb.setBit(0, 2, false);  // stale 0
    xb.logicH(gate(Gate::Nor, 0, 1, 2), fullMask);
    EXPECT_FALSE(xb.bit(0, 2)) << "stateful logic must not set 0 -> 1";
}

TEST_F(CrossbarTest, NotGate)
{
    xb.setBit(0, 5, true);
    xb.setBit(1, 5, false);
    xb.setBit(0, 9, true);
    xb.setBit(1, 9, true);
    xb.logicH(gate(Gate::Not, 5, 5, 9), fullMask);
    EXPECT_FALSE(xb.bit(0, 9));
    EXPECT_TRUE(xb.bit(1, 9));
}

TEST_F(CrossbarTest, InitGates)
{
    xb.setBit(0, 7, false);
    xb.logicH(gate(Gate::Init1, 0, 0, 7), fullMask);
    EXPECT_TRUE(xb.bit(0, 7));
    xb.logicH(gate(Gate::Init0, 0, 0, 7), fullMask);
    EXPECT_FALSE(xb.bit(0, 7));
}

TEST_F(CrossbarTest, RowMaskSkipsDeselectedRows)
{
    // Only even rows selected (isolation voltage on odd rows).
    const auto mask = Range(0, geo.rows - 2, 2).expand(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        xb.setBit(r, 0, true);
        xb.setBit(r, 2, true);
    }
    xb.logicH(gate(Gate::Not, 0, 0, 2), mask);
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(xb.bit(r, 2), r % 2 == 1) << "row " << r;
}

TEST_F(CrossbarTest, ParallelPatternActsPerPartition)
{
    // NOR(slot0, slot1) -> slot2 in all 32 partitions in one op.
    const HalfGates hg = expandLogicH(
        MicroOp::logicH(Gate::Nor, geo.column(0, 0), geo.column(1, 0),
                        geo.column(2, 0), geo.partitions - 1, 1), geo);
    xb.writeRow(0, 0x0F0F0F0F, 3);
    xb.writeRow(1, 0x00FF00FF, 3);
    xb.writeRow(2, 0xFFFFFFFF, 3);  // INIT1 all bits
    xb.logicH(hg, fullMask);
    EXPECT_EQ(xb.read(2, 3), ~(0x0F0F0F0Fu | 0x00FF00FFu));
}

TEST_F(CrossbarTest, StridedReadWriteRoundTrip)
{
    xb.writeRow(4, 0xCAFEBABE, 10);
    EXPECT_EQ(xb.read(4, 10), 0xCAFEBABEu);
    // Bit p of the word lives in partition p (paper Fig. 6).
    EXPECT_EQ(xb.bit(10, geo.column(4, 1)), (0xCAFEBABEu >> 1) & 1);
    EXPECT_EQ(xb.bit(10, geo.column(4, 31)), (0xCAFEBABEu >> 31) & 1);
}

TEST_F(CrossbarTest, MaskedWriteAffectsSelectedRowsOnly)
{
    const auto mask = Range(8, 24, 8).expand(geo.rows);
    xb.write(3, 0x12345678, mask);
    EXPECT_EQ(xb.read(3, 8), 0x12345678u);
    EXPECT_EQ(xb.read(3, 16), 0x12345678u);
    EXPECT_EQ(xb.read(3, 24), 0x12345678u);
    EXPECT_EQ(xb.read(3, 9), 0u);
}

TEST_F(CrossbarTest, VerticalNotTransfersBetweenRows)
{
    // Vertical NOT moves (inverted) slot data from row 2 to row 40.
    xb.writeRow(6, 0xA5A5A5A5, 2);
    xb.writeRow(6, 0xFFFFFFFF, 40);  // INIT1 destination
    xb.logicV(Gate::Not, 2, 40, 6);
    EXPECT_EQ(xb.read(6, 40), ~0xA5A5A5A5u);
    // Source row unchanged.
    EXPECT_EQ(xb.read(6, 2), 0xA5A5A5A5u);
}

TEST_F(CrossbarTest, VerticalInit)
{
    xb.logicV(Gate::Init1, 0, 17, 5);
    EXPECT_EQ(xb.read(5, 17), 0xFFFFFFFFu);
    xb.logicV(Gate::Init0, 0, 17, 5);
    EXPECT_EQ(xb.read(5, 17), 0u);
}

TEST_F(CrossbarTest, VerticalNotRespectsStatefulSemantics)
{
    xb.writeRow(6, 0xFFFFFFFF, 2);
    xb.writeRow(6, 0x0000FFFF, 40);  // half stale-0 destination
    xb.logicV(Gate::Not, 2, 40, 6);
    // NOT(1) = 0 everywhere; stale zeros stay zero.
    EXPECT_EQ(xb.read(6, 40), 0u);
    xb.writeRow(6, 0x00000000, 2);
    xb.writeRow(6, 0x0000FFFF, 40);
    xb.logicV(Gate::Not, 2, 40, 6);
    // NOT(0) = 1, but only pre-initialised cells can show it.
    EXPECT_EQ(xb.read(6, 40), 0x0000FFFFu);
}
