/**
 * @file
 * Bit-level crossbar semantics: stateful logic (output switches only
 * 1 -> 0), strided read/write, vertical ops, row masking — every
 * behavioural test runs under BOTH storage representations
 * (TEST_P over XbarStorage), so the dense slab stays the oracle the
 * paged mode is continuously checked against. The PagedCrossbar suite
 * adds the storage-specific surface: zero-block elision, transparent
 * densification, block-boundary addressing, compact() re-elision and
 * copy-on-write snapshot isolation.
 */
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "sim/crossbar.hpp"
#include "uarch/partition.hpp"

using namespace pypim;

namespace
{

HalfGates
gateOn(const Geometry &geo, Gate g, uint32_t a, uint32_t b,
       uint32_t out)
{
    const uint32_t pOut = out / geo.partitionWidth();
    return expandLogicH(MicroOp::logicH(g, a, b, out, pOut, 0), geo);
}

class CrossbarTest : public ::testing::TestWithParam<XbarStorage>
{
  protected:
    CrossbarTest()
        : geo(testGeometry()),
          xb(geo, GetParam()),
          fullMask(Range::all(geo.rows).expand(geo.rows))
    {
    }

    HalfGates
    gate(Gate g, uint32_t a, uint32_t b, uint32_t out)
    {
        return gateOn(geo, g, a, b, out);
    }

    Geometry geo;
    Crossbar xb;
    std::vector<uint64_t> fullMask;
};

} // namespace

TEST_P(CrossbarTest, NorTruthTable)
{
    // Columns 0, 1 as inputs; column 2 as output; rows 0..3 hold the
    // four input combinations.
    for (uint32_t r = 0; r < 4; ++r) {
        xb.setBit(r, 0, r & 1);
        xb.setBit(r, 1, (r >> 1) & 1);
        xb.setBit(r, 2, true);  // INIT1
    }
    xb.logicH(gate(Gate::Nor, 0, 1, 2), fullMask);
    EXPECT_TRUE(xb.bit(0, 2));    // NOR(0,0) = 1
    EXPECT_FALSE(xb.bit(1, 2));   // NOR(1,0) = 0
    EXPECT_FALSE(xb.bit(2, 2));   // NOR(0,1) = 0
    EXPECT_FALSE(xb.bit(3, 2));   // NOR(1,1) = 0
}

TEST_P(CrossbarTest, StatefulOutputOnlySwitchesDown)
{
    // Output NOT initialised to 1: NOR(0,0) cannot switch it up.
    xb.setBit(0, 0, false);
    xb.setBit(0, 1, false);
    xb.setBit(0, 2, false);  // stale 0
    xb.logicH(gate(Gate::Nor, 0, 1, 2), fullMask);
    EXPECT_FALSE(xb.bit(0, 2)) << "stateful logic must not set 0 -> 1";
}

TEST_P(CrossbarTest, NotGate)
{
    xb.setBit(0, 5, true);
    xb.setBit(1, 5, false);
    xb.setBit(0, 9, true);
    xb.setBit(1, 9, true);
    xb.logicH(gate(Gate::Not, 5, 5, 9), fullMask);
    EXPECT_FALSE(xb.bit(0, 9));
    EXPECT_TRUE(xb.bit(1, 9));
}

TEST_P(CrossbarTest, InitGates)
{
    xb.setBit(0, 7, false);
    xb.logicH(gate(Gate::Init1, 0, 0, 7), fullMask);
    EXPECT_TRUE(xb.bit(0, 7));
    xb.logicH(gate(Gate::Init0, 0, 0, 7), fullMask);
    EXPECT_FALSE(xb.bit(0, 7));
}

TEST_P(CrossbarTest, RowMaskSkipsDeselectedRows)
{
    // Only even rows selected (isolation voltage on odd rows).
    const auto mask = Range(0, geo.rows - 2, 2).expand(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        xb.setBit(r, 0, true);
        xb.setBit(r, 2, true);
    }
    xb.logicH(gate(Gate::Not, 0, 0, 2), mask);
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(xb.bit(r, 2), r % 2 == 1) << "row " << r;
}

TEST_P(CrossbarTest, ParallelPatternActsPerPartition)
{
    // NOR(slot0, slot1) -> slot2 in all 32 partitions in one op.
    const HalfGates hg = expandLogicH(
        MicroOp::logicH(Gate::Nor, geo.column(0, 0), geo.column(1, 0),
                        geo.column(2, 0), geo.partitions - 1, 1), geo);
    xb.writeRow(0, 0x0F0F0F0F, 3);
    xb.writeRow(1, 0x00FF00FF, 3);
    xb.writeRow(2, 0xFFFFFFFF, 3);  // INIT1 all bits
    xb.logicH(hg, fullMask);
    EXPECT_EQ(xb.read(2, 3), ~(0x0F0F0F0Fu | 0x00FF00FFu));
}

TEST_P(CrossbarTest, StridedReadWriteRoundTrip)
{
    xb.writeRow(4, 0xCAFEBABE, 10);
    EXPECT_EQ(xb.read(4, 10), 0xCAFEBABEu);
    // Bit p of the word lives in partition p (paper Fig. 6).
    EXPECT_EQ(xb.bit(10, geo.column(4, 1)), (0xCAFEBABEu >> 1) & 1);
    EXPECT_EQ(xb.bit(10, geo.column(4, 31)), (0xCAFEBABEu >> 31) & 1);
}

TEST_P(CrossbarTest, MaskedWriteAffectsSelectedRowsOnly)
{
    const auto mask = Range(8, 24, 8).expand(geo.rows);
    xb.write(3, 0x12345678, mask);
    EXPECT_EQ(xb.read(3, 8), 0x12345678u);
    EXPECT_EQ(xb.read(3, 16), 0x12345678u);
    EXPECT_EQ(xb.read(3, 24), 0x12345678u);
    EXPECT_EQ(xb.read(3, 9), 0u);
}

TEST_P(CrossbarTest, WriteStripeMatchesIndividualWrites)
{
    // One stripe writing three slots must equal three single writes
    // under the same mask — the replay form of merged Write ops.
    Crossbar ref(geo, GetParam());
    const auto mask = Range(4, 28, 4).expand(geo.rows);
    const StripeWrite ws[] = {
        {2, 0x11112222u}, {5, 0xDEADBEEFu}, {9, 0x0F0F0F0Fu}};
    for (const StripeWrite &w : ws)
        ref.write(w.slot, w.value, mask);
    xb.writeStripe(ws, mask);
    EXPECT_TRUE(xb.sameState(ref));
    EXPECT_EQ(xb.read(5, 8), 0xDEADBEEFu);
    EXPECT_EQ(xb.read(5, 9), 0u);
}

TEST_P(CrossbarTest, VerticalNotTransfersBetweenRows)
{
    // Vertical NOT moves (inverted) slot data from row 2 to row 40.
    xb.writeRow(6, 0xA5A5A5A5, 2);
    xb.writeRow(6, 0xFFFFFFFF, 40);  // INIT1 destination
    xb.logicV(Gate::Not, 2, 40, 6);
    EXPECT_EQ(xb.read(6, 40), ~0xA5A5A5A5u);
    // Source row unchanged.
    EXPECT_EQ(xb.read(6, 2), 0xA5A5A5A5u);
}

TEST_P(CrossbarTest, VerticalInit)
{
    xb.logicV(Gate::Init1, 0, 17, 5);
    EXPECT_EQ(xb.read(5, 17), 0xFFFFFFFFu);
    xb.logicV(Gate::Init0, 0, 17, 5);
    EXPECT_EQ(xb.read(5, 17), 0u);
}

TEST_P(CrossbarTest, VerticalNotRespectsStatefulSemantics)
{
    xb.writeRow(6, 0xFFFFFFFF, 2);
    xb.writeRow(6, 0x0000FFFF, 40);  // half stale-0 destination
    xb.logicV(Gate::Not, 2, 40, 6);
    // NOT(1) = 0 everywhere; stale zeros stay zero.
    EXPECT_EQ(xb.read(6, 40), 0u);
    xb.writeRow(6, 0x00000000, 2);
    xb.writeRow(6, 0x0000FFFF, 40);
    xb.logicV(Gate::Not, 2, 40, 6);
    // NOT(0) = 1, but only pre-initialised cells can show it.
    EXPECT_EQ(xb.read(6, 40), 0x0000FFFFu);
}

TEST_P(CrossbarTest, SnapshotRestoreRoundTrip)
{
    xb.writeRow(3, 0xABCD1234, 7);
    const Crossbar::Snapshot snap = xb.snapshot();
    xb.writeRow(3, 0x55555555, 7);
    xb.writeRow(4, 0xFFFFFFFF, 8);
    EXPECT_FALSE(xb.sameState(snap));
    EXPECT_EQ(snap.read(3, 7), 0xABCD1234u);  // image is frozen
    xb.restore(snap);
    EXPECT_TRUE(xb.sameState(snap));
    EXPECT_EQ(xb.read(3, 7), 0xABCD1234u);
    EXPECT_EQ(xb.read(4, 8), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Storage, CrossbarTest,
    ::testing::Values(XbarStorage::Dense, XbarStorage::Paged),
    [](const auto &info) { return xbarStorageName(info.param); });

// ---------------------------------------------------------------------
// Paged-specific storage semantics. A taller geometry gives each
// column multiple 512-row blocks, so block-table addressing, elision
// and boundary handling are all exercised.

namespace
{

Geometry
tallGeometry()
{
    Geometry g = testGeometry();
    g.rows = 2048;  // 32 words = 4 blocks per column
    return g;
}

/** 64-bit word from the 32-bit test RNG. */
uint64_t
word64(Rng &rng)
{
    return (static_cast<uint64_t>(rng.word()) << 32) | rng.word();
}

} // namespace

TEST(PagedCrossbar, UntouchedCrossbarIsResidentFree)
{
    const Geometry geo = tallGeometry();
    const Crossbar xb(geo, XbarStorage::Paged);
    const StorageGauges g = xb.storageGauges();
    EXPECT_EQ(g.blocksPresent, 0u);
    EXPECT_EQ(g.residentBytes, 0u) << "lazy table/pool: an untouched "
                                      "crossbar must cost no bytes";
    // Reads of never-touched state are architectural zeros.
    EXPECT_EQ(xb.read(0, 0), 0u);
    EXPECT_EQ(xb.read(3, geo.rows - 1), 0u);
    EXPECT_FALSE(xb.bit(600, 17));
}

TEST(PagedCrossbar, ZeroPreservingOpsStayElided)
{
    const Geometry geo = tallGeometry();
    Crossbar xb(geo, XbarStorage::Paged);
    const auto fullMask = Range::all(geo.rows).expand(geo.rows);
    // INIT0 and NOR/NOT over all-absent inputs into an absent output
    // are algebra on zeros: nothing may densify.
    xb.logicH(gateOn(geo, Gate::Init0, 0, 0, 9), fullMask);
    xb.logicH(gateOn(geo, Gate::Nor, 0, 1, 9), fullMask);
    xb.logicH(gateOn(geo, Gate::Not, 2, 2, 9), fullMask);
    xb.write(4, 0, fullMask);  // writing zeros is zero-preserving too
    EXPECT_EQ(xb.storageGauges().blocksPresent, 0u);
    // ... but the architectural state is what dense would hold: NOR
    // over a stale-0 output stays 0 even though NOR(0,0) = 1.
    EXPECT_FALSE(xb.bit(0, 9));
}

TEST(PagedCrossbar, DensificationTouchesOnlyMaskedBlocks)
{
    const Geometry geo = tallGeometry();
    Crossbar xb(geo, XbarStorage::Paged);
    // Rows 512..1023 are exactly block 1 of each touched column.
    const auto mask = Range(512, 1023, 1).expand(geo.rows);
    xb.write(5, 0xFFFFFFFFu, mask);
    const StorageGauges g = xb.storageGauges();
    // One 32-bit slot = 32 columns; each densified only in block 1.
    EXPECT_EQ(g.blocksPresent, 32u);
    EXPECT_EQ(xb.read(5, 512), 0xFFFFFFFFu);
    EXPECT_EQ(xb.read(5, 1023), 0xFFFFFFFFu);
    EXPECT_EQ(xb.read(5, 511), 0u);
    EXPECT_EQ(xb.read(5, 1024), 0u);
}

TEST(PagedCrossbar, BlockBoundaryRowsMatchDense)
{
    const Geometry geo = tallGeometry();
    Crossbar paged(geo, XbarStorage::Paged);
    Crossbar dense(geo, XbarStorage::Dense);
    // Straddle every 512-row block seam, including the last row.
    for (const uint32_t row : {0u, 511u, 512u, 1023u, 1024u, 1535u,
                               1536u, 2047u}) {
        paged.writeRow(2, 0xC0FFEE00u | row, row);
        dense.writeRow(2, 0xC0FFEE00u | row, row);
    }
    const auto seam = Range(511, 1536, 1).expand(geo.rows);
    paged.logicH(gateOn(geo, Gate::Init1, 0, 0, 33), seam);
    dense.logicH(gateOn(geo, Gate::Init1, 0, 0, 33), seam);
    paged.logicV(Gate::Not, 511, 512, 2);
    dense.logicV(Gate::Not, 511, 512, 2);
    EXPECT_TRUE(paged.sameState(dense));
    EXPECT_EQ(paged.read(2, 2047), 0xC0FFEE00u | 2047u);
}

TEST(PagedCrossbar, CompactReElidesDecayedBlocks)
{
    const Geometry geo = tallGeometry();
    Crossbar xb(geo, XbarStorage::Paged);
    const auto mask = Range(0, 511, 1).expand(geo.rows);
    // Densify block 0 of slot 6's columns with ones...
    const HalfGates init1 = expandLogicH(
        MicroOp::logicH(Gate::Init1, 0, 0, geo.column(6, 0),
                        geo.partitions - 1, 1), geo);
    xb.logicH(init1, mask);
    const uint64_t present = xb.storageGauges().blocksPresent;
    EXPECT_EQ(present, 32u);
    EXPECT_EQ(xb.compact(), 0u) << "live blocks must survive compact";
    // ... decay them back to zero: the blocks stay materialised (ops
    // never re-elide inline) until an explicit compact() sweep.
    const HalfGates init0 = expandLogicH(
        MicroOp::logicH(Gate::Init0, 0, 0, geo.column(6, 0),
                        geo.partitions - 1, 1), geo);
    xb.logicH(init0, mask);
    EXPECT_EQ(xb.storageGauges().blocksPresent, present);
    EXPECT_EQ(xb.compact(), present);
    const StorageGauges after = xb.storageGauges();
    EXPECT_EQ(after.blocksPresent, 0u);
    EXPECT_EQ(after.blocksElided, after.blocksTotal);
    // Round trip: the crossbar is architecturally unchanged and can
    // densify again.
    EXPECT_EQ(xb.read(6, 100), 0u);
    xb.writeRow(6, 0x5A5A5A5Au, 100);
    EXPECT_EQ(xb.read(6, 100), 0x5A5A5A5Au);
}

TEST(PagedCrossbar, SnapshotIsCopyOnWriteAndIsolated)
{
    const Geometry geo = tallGeometry();
    Crossbar xb(geo, XbarStorage::Paged);
    xb.writeRow(1, 0x11223344u, 10);
    xb.writeRow(1, 0x99887766u, 700);  // second block
    const Crossbar::Snapshot snap = xb.snapshot();
    {
        // Snapshot shares every present block rather than copying it.
        const StorageGauges g = xb.storageGauges();
        EXPECT_GT(g.cowShared, 0u);
        EXPECT_EQ(g.cowShared, g.blocksPresent);
    }
    // Writes after the snapshot clone only the touched blocks; the
    // frozen image must not see them.
    xb.writeRow(1, 0xFFFFFFFFu, 10);
    EXPECT_EQ(snap.read(1, 10), 0x11223344u);
    EXPECT_EQ(snap.read(1, 700), 0x99887766u);
    EXPECT_EQ(xb.read(1, 10), 0xFFFFFFFFu);
    EXPECT_FALSE(xb.sameState(snap));
    // Snapshot copies are independent refcounted images.
    const Crossbar::Snapshot copy = snap;
    xb.restore(copy);
    EXPECT_TRUE(xb.sameState(snap));
    EXPECT_EQ(xb.read(1, 10), 0x11223344u);
}

TEST(PagedCrossbar, FuzzedSparseParityWithDense)
{
    const Geometry geo = tallGeometry();
    Crossbar paged(geo, XbarStorage::Paged);
    Crossbar dense(geo, XbarStorage::Dense);
    Rng rng(20240604);
    const uint32_t maskWords = (geo.rows + 63) / 64;
    std::vector<uint64_t> mask(maskWords);
    const uint32_t slots = geo.slots();
    for (uint32_t iter = 0; iter < 400; ++iter) {
        // Sparse random row mask: mostly zero words, so ops keep
        // hitting absent/present block mixtures.
        for (auto &w : mask)
            w = rng.word() % 4 == 0 ? word64(rng) : 0;
        const uint32_t kind = rng.word() % 8;
        if (kind < 2) {
            const uint32_t slot = rng.word() % slots;
            const uint32_t v = rng.word();
            paged.write(slot, v, mask);
            dense.write(slot, v, mask);
        } else if (kind < 5) {
            const Gate g = kind == 2   ? Gate::Nor
                           : kind == 3 ? Gate::Init1
                                       : Gate::Init0;
            // Inputs must live in the gate's partition span: pick one
            // partition and three intra-partition columns.
            const uint32_t pw = geo.partitionWidth();
            const uint32_t base = (rng.word() % geo.partitions) * pw;
            const uint32_t a = base + rng.word() % pw;
            const uint32_t b = base + rng.word() % pw;
            const uint32_t out = base + rng.word() % pw;
            const HalfGates hg = gateOn(geo, g, a, b, out);
            paged.logicH(hg, mask);
            dense.logicH(hg, mask);
        } else if (kind < 6) {
            const uint32_t slot = rng.word() % slots;
            const uint32_t src = rng.word() % geo.rows;
            const uint32_t dst = rng.word() % geo.rows;
            if (src == dst)
                continue;
            paged.logicV(Gate::Not, src, dst, slot);
            dense.logicV(Gate::Not, src, dst, slot);
        } else if (kind == 6) {
            const uint32_t slot = rng.word() % slots;
            const uint32_t row = rng.word() % geo.rows;
            const uint32_t v = rng.word();
            paged.writeRow(slot, v, row);
            dense.writeRow(slot, v, row);
        } else {
            // Compaction and a snapshot/restore no-op round trip must
            // both be architecturally invisible.
            paged.compact();
            const Crossbar::Snapshot snap = paged.snapshot();
            EXPECT_TRUE(paged.sameState(snap));
            paged.restore(snap);
        }
        if (iter % 32 == 0)
            ASSERT_TRUE(paged.sameState(dense)) << "iter " << iter;
    }
    ASSERT_TRUE(paged.sameState(dense));
    // Spot-check strided readback through both paths.
    for (uint32_t slot = 0; slot < slots; slot += 5)
        for (uint32_t row = 0; row < geo.rows; row += 97)
            ASSERT_EQ(paged.read(slot, row), dense.read(slot, row))
                << "slot " << slot << " row " << row;
}
