/**
 * @file
 * BitVec layer tests: word-level combinational primitives verified
 * against host arithmetic on randomised rows (property-style sweeps).
 */
#include <gtest/gtest.h>

#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::PimFixture;

namespace
{

class BitVecTest : public PimFixture
{
  protected:
    /** Fill a BV with per-row values from @p fn on warp 0. */
    template <typename Fn>
    void
    load(const BV &x, Fn fn)
    {
        for (uint32_t r = 0; r < geo.rows; ++r)
            pokeBV(0, r, x, fn(r));
    }
};

} // namespace

TEST_F(BitVecTest, ConstantAndSetConst)
{
    BV x = bv.constant(32, 0xDEADBEEF);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekBV(0, r, x), 0xDEADBEEFull);
    bv.setConst(x, 0x00FF00FF);
    builder.flush();
    EXPECT_EQ(peekBV(0, 5, x), 0x00FF00FFull);
}

TEST_F(BitVecTest, BitwiseOpsMatchHost)
{
    BV a = bv.alloc(32), b = bv.alloc(32);
    std::vector<uint32_t> av(geo.rows), bvv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        av[r] = rng.word();
        bvv[r] = rng.word();
    }
    load(a, [&](uint32_t r) { return av[r]; });
    load(b, [&](uint32_t r) { return bvv[r]; });
    BV o_and = bv.and_(a, b);
    BV o_or = bv.or_(a, b);
    BV o_xor = bv.xor_(a, b);
    BV o_not = bv.not_(a);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        EXPECT_EQ(peekBV(0, r, o_and), (av[r] & bvv[r]));
        EXPECT_EQ(peekBV(0, r, o_or), (av[r] | bvv[r]));
        EXPECT_EQ(peekBV(0, r, o_xor), (av[r] ^ bvv[r]));
        EXPECT_EQ(peekBV(0, r, o_not), (~av[r]) & 0xFFFFFFFFull);
    }
}

TEST_F(BitVecTest, CopyAndViews)
{
    BV a = bv.alloc(24);
    load(a, [&](uint32_t r) { return (r * 0x9E3779B9u) & 0xFFFFFF; });
    BV c = bv.copy(a);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekBV(0, r, c), (r * 0x9E3779B9u) & 0xFFFFFFull);
    // Slices view the same cells.
    BV hi = BVOps::slice(c, 12, 24);
    EXPECT_EQ(peekBV(0, 3, hi),
              ((3 * 0x9E3779B9u) & 0xFFFFFFull) >> 12);
}

TEST_F(BitVecTest, AddMatchesHost)
{
    BV a = bv.alloc(32), b = bv.alloc(32), out = bv.alloc(32);
    std::vector<uint32_t> av(geo.rows), bvv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        av[r] = rng.word();
        bvv[r] = rng.word();
    }
    load(a, [&](uint32_t r) { return av[r]; });
    load(b, [&](uint32_t r) { return bvv[r]; });
    bv.addInto(a, b, out);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekBV(0, r, out),
                  (uint64_t(av[r]) + bvv[r]) & 0xFFFFFFFF)
            << "row " << r << ": " << av[r] << " + " << bvv[r];
}

TEST_F(BitVecTest, AddCarryInAndOut)
{
    BV a = bv.alloc(8), b = bv.alloc(8), out = bv.alloc(8);
    load(a, [&](uint32_t r) { return r; });
    load(b, [&](uint32_t r) { return 0xFF - r + (r % 2); });
    const uint32_t cin = bv.constCell(true);
    uint32_t cout = 0;
    bv.addInto(a, b, out, cin, &cout);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const uint32_t sum = r + (0xFF - r + (r % 2)) + 1;
        EXPECT_EQ(peekBV(0, r, out), sum & 0xFF) << "row " << r;
        EXPECT_EQ(peekCell(0, r, cout), sum > 0xFF) << "row " << r;
    }
}

TEST_F(BitVecTest, SubMatchesHost)
{
    BV a = bv.alloc(32), b = bv.alloc(32), out = bv.alloc(32);
    std::vector<uint32_t> av(geo.rows), bvv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        av[r] = rng.word();
        bvv[r] = rng.word();
    }
    load(a, [&](uint32_t r) { return av[r]; });
    load(b, [&](uint32_t r) { return bvv[r]; });
    uint32_t noBorrow = 0;
    bv.subInto(a, b, out, &noBorrow);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        EXPECT_EQ(peekBV(0, r, out),
                  (uint64_t(av[r]) - bvv[r]) & 0xFFFFFFFF);
        EXPECT_EQ(peekCell(0, r, noBorrow), av[r] >= bvv[r]);
    }
}

TEST_F(BitVecTest, AddShiftedInPlaceAccumulates)
{
    // acc(16) += x(4) << 7, emulating one multiplier step.
    BV acc = bv.alloc(16), x = bv.alloc(4);
    std::vector<uint32_t> accv(geo.rows), xv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        accv[r] = rng.word() & 0x07FF;  // headroom for the carry bit
        xv[r] = rng.word() & 0xF;
    }
    load(acc, [&](uint32_t r) { return accv[r]; });
    load(x, [&](uint32_t r) { return xv[r]; });
    bv.addShiftedInPlace(acc, x, 7, 1);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekBV(0, r, acc),
                  (accv[r] + (xv[r] << 7)) & 0xFFFF) << "row " << r;
}

TEST_F(BitVecTest, IncInto)
{
    BV x = bv.alloc(12), out = bv.alloc(12);
    load(x, [&](uint32_t r) { return (r * 341) & 0xFFF; });
    const uint32_t cond = builder.pool().allocBitIn(0);
    for (uint32_t r = 0; r < geo.rows; ++r)
        sim.crossbar(0).setBit(r, cond, r % 2);
    bv.incInto(x, cond, out);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekBV(0, r, out), ((r * 341) + (r % 2)) & 0xFFF);
}

TEST_F(BitVecTest, ReductionsAndCompares)
{
    BV a = bv.alloc(16), b = bv.alloc(16);
    std::vector<uint32_t> av(geo.rows), bvv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        av[r] = (r % 4 == 0) ? 0 : (rng.word() & 0xFFFF);
        bvv[r] = (r % 8 < 2) ? av[r] : (rng.word() & 0xFFFF);
    }
    load(a, [&](uint32_t r) { return av[r]; });
    load(b, [&](uint32_t r) { return bvv[r]; });
    const uint32_t any = bv.orTree(a);
    const uint32_t zero = bv.isZero(a);
    const uint32_t all = bv.andTree(a);
    const uint32_t lt = bv.ltU(a, b);
    const uint32_t equal = bv.eq(a, b);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        EXPECT_EQ(peekCell(0, r, any), av[r] != 0) << "row " << r;
        EXPECT_EQ(peekCell(0, r, zero), av[r] == 0) << "row " << r;
        EXPECT_EQ(peekCell(0, r, all), av[r] == 0xFFFF) << "row " << r;
        EXPECT_EQ(peekCell(0, r, lt), av[r] < bvv[r]) << "row " << r;
        EXPECT_EQ(peekCell(0, r, equal), av[r] == bvv[r]) << "row " << r;
    }
}

TEST_F(BitVecTest, MuxSelectsPerRow)
{
    BV a = bv.alloc(20), b = bv.alloc(20), out = bv.alloc(20);
    load(a, [&](uint32_t r) { return r | 0x10000; });
    load(b, [&](uint32_t r) { return r * 3; });
    const uint32_t s = builder.pool().allocBitIn(0);
    for (uint32_t r = 0; r < geo.rows; ++r)
        sim.crossbar(0).setBit(r, s, r % 3 == 0);
    SelLanes sel = bv.broadcastSelect(s);
    bv.muxInto(sel, a, b, out);
    bv.freeSelect(sel);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const uint64_t expect =
            (r % 3 == 0) ? (r | 0x10000) : ((r * 3) & 0xFFFFF);
        EXPECT_EQ(peekBV(0, r, out), expect) << "row " << r;
    }
}

TEST_F(BitVecTest, MuxCellNarrowPath)
{
    BV a = bv.alloc(4), b = bv.alloc(4);
    load(a, [&](uint32_t r) { return r & 0xF; });
    load(b, [&](uint32_t r) { return (r + 7) & 0xF; });
    const uint32_t s = builder.pool().allocBitIn(11);
    for (uint32_t r = 0; r < geo.rows; ++r)
        sim.crossbar(0).setBit(r, s, r & 1);
    BV out = bv.muxCell(s, a, b);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const uint64_t expect = (r & 1) ? (r & 0xF) : ((r + 7) & 0xF);
        EXPECT_EQ(peekBV(0, r, out), expect) << "row " << r;
    }
}

TEST_F(BitVecTest, ShiftRightVariableWithSticky)
{
    BV x = bv.alloc(27), sh = bv.alloc(5);
    std::vector<uint32_t> xvv(geo.rows), shv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        xvv[r] = rng.word() & 0x7FFFFFF;
        shv[r] = r % 32;
    }
    load(x, [&](uint32_t r) { return xvv[r]; });
    load(sh, [&](uint32_t r) { return shv[r]; });
    uint32_t sticky = bv.constCell(false);
    BV out = bv.shrVar(x, sh, &sticky);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const uint32_t expect = xvv[r] >> shv[r];
        const bool expectSticky =
            (xvv[r] & ((1u << shv[r]) - 1)) != 0;
        EXPECT_EQ(peekBV(0, r, out), expect & 0x7FFFFFF) << "row " << r;
        EXPECT_EQ(peekCell(0, r, sticky), expectSticky) << "row " << r;
    }
}

TEST_F(BitVecTest, ShiftRightOversizedGoesToZeroAndSticky)
{
    BV x = bv.alloc(8), sh = bv.alloc(8);
    load(x, [&](uint32_t r) { return (r % 5) + 1; });
    load(sh, [&](uint32_t r) { return 8 + (r % 200); });
    uint32_t sticky = bv.constCell(false);
    BV out = bv.shrVar(x, sh, &sticky);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        EXPECT_EQ(peekBV(0, r, out), 0u) << "row " << r;
        EXPECT_TRUE(peekCell(0, r, sticky)) << "row " << r;
    }
}

TEST_F(BitVecTest, ShiftLeftVariable)
{
    BV x = bv.alloc(27), sh = bv.alloc(5);
    std::vector<uint32_t> xvv(geo.rows), shv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        xvv[r] = rng.word() & 0x7FFFFFF;
        shv[r] = r % 27;
    }
    load(x, [&](uint32_t r) { return xvv[r]; });
    load(sh, [&](uint32_t r) { return shv[r]; });
    BV out = bv.shlVar(x, sh);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r)
        EXPECT_EQ(peekBV(0, r, out),
                  (uint64_t(xvv[r]) << shv[r]) & 0x7FFFFFF)
            << "row " << r;
}

TEST_F(BitVecTest, LeadingZeroCount)
{
    BV x = bv.alloc(27);
    std::vector<uint32_t> xvv(geo.rows);
    for (uint32_t r = 0; r < geo.rows; ++r) {
        // Cover values with varied leading-zero counts, nonzero only.
        xvv[r] = std::max<uint32_t>(1, rng.word() & (0x7FFFFFF >> (r % 27)));
    }
    load(x, [&](uint32_t r) { return xvv[r]; });
    BV cnt = bv.lzc(x);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        uint32_t expect = 0;
        for (int j = 26; j >= 0 && !((xvv[r] >> j) & 1); --j)
            ++expect;
        EXPECT_EQ(peekBV(0, r, cnt), expect)
            << "row " << r << " value " << xvv[r];
    }
}

TEST_F(BitVecTest, ZextSextViews)
{
    BV x = bv.alloc(8);
    load(x, [&](uint32_t r) { return (r * 37) & 0xFF; });
    const uint32_t zero = bv.constCell(false);
    BV zx = bv.zext(x, 12, zero);
    BV sx = BVOps::sext(x, 12);
    builder.flush();
    for (uint32_t r = 0; r < geo.rows; ++r) {
        const uint32_t v = (r * 37) & 0xFF;
        EXPECT_EQ(peekBV(0, r, zx), v);
        const uint32_t expectS = (v & 0x80) ? (v | 0xF00) : v;
        EXPECT_EQ(peekBV(0, r, sx), expectS);
    }
}

TEST_F(BitVecTest, ScratchIsReleasedByFree)
{
    const uint32_t before = builder.pool().slotsInUse();
    BV a = bv.alloc(32);
    BV b = bv.alloc(48);
    bv.free(a);
    bv.free(b);
    EXPECT_EQ(builder.pool().slotsInUse(), before);
}
