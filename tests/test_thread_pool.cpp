/**
 * @file
 * Tests for the sharded engine's persistent worker pool: full task
 * coverage, caller participation, reuse across generations, and
 * exception propagation.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/thread_pool.hpp"

using namespace pypim;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (uint32_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        std::vector<std::atomic<uint32_t>> hits(97);
        pool.parallelFor(97, [&](uint32_t i) { ++hits[i]; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1u);
    }
}

TEST(ThreadPool, ZeroAndFewerTasksThanThreads)
{
    ThreadPool pool(8);
    pool.parallelFor(0, [&](uint32_t) { FAIL(); });
    std::atomic<uint32_t> count{0};
    pool.parallelFor(3, [&](uint32_t) { ++count; });
    EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPool, ReusableAcrossManyGenerations)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 200; ++round)
        pool.parallelFor(16, [&](uint32_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 200ull * (15 * 16 / 2));
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<uint32_t> ran{0};
    EXPECT_THROW(pool.parallelFor(32,
                                  [&](uint32_t i) {
                                      ++ran;
                                      if (i == 7)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 32u) << "remaining tasks must still run";
    // Pool must stay usable after an exception.
    std::atomic<uint32_t> ok{0};
    pool.parallelFor(8, [&](uint32_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8u);
}

TEST(ThreadPool, ClampsZeroThreadsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    uint32_t hits = 0;
    pool.parallelFor(5, [&](uint32_t) { ++hits; });
    EXPECT_EQ(hits, 5u);
}
