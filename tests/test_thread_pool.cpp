/**
 * @file
 * Tests for the sharded engine's persistent worker pool: full task
 * coverage, caller participation, reuse across generations, and
 * exception propagation.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#if defined(__linux__) && defined(__GLIBC__)
#include <sched.h>
#endif

#include "sim/thread_pool.hpp"

using namespace pypim;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (uint32_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        std::vector<std::atomic<uint32_t>> hits(97);
        pool.parallelFor(97, [&](uint32_t i) { ++hits[i]; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1u);
    }
}

TEST(ThreadPool, ZeroAndFewerTasksThanThreads)
{
    ThreadPool pool(8);
    pool.parallelFor(0, [&](uint32_t) { FAIL(); });
    std::atomic<uint32_t> count{0};
    pool.parallelFor(3, [&](uint32_t) { ++count; });
    EXPECT_EQ(count.load(), 3u);
}

TEST(ThreadPool, ReusableAcrossManyGenerations)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 200; ++round)
        pool.parallelFor(16, [&](uint32_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 200ull * (15 * 16 / 2));
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<uint32_t> ran{0};
    EXPECT_THROW(pool.parallelFor(32,
                                  [&](uint32_t i) {
                                      ++ran;
                                      if (i == 7)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 32u) << "remaining tasks must still run";
    // Pool must stay usable after an exception.
    std::atomic<uint32_t> ok{0};
    pool.parallelFor(8, [&](uint32_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8u);
}

TEST(ThreadPool, ClampsZeroThreadsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    uint32_t hits = 0;
    pool.parallelFor(5, [&](uint32_t) { ++hits; });
    EXPECT_EQ(hits, 5u);
}

TEST(ThreadPool, AffinityPinningIsBestEffort)
{
    // The NUMA/affinity knob: a pinned pool must behave identically
    // (pinning changes scheduling, never results) and report how many
    // workers it actually pinned — best-effort by design: pinning may
    // legitimately fail where thread affinity is unsupported or the
    // process runs under a restricted cpuset (taskset / container
    // cgroups) that excludes the target cores.
    ThreadPool pool(4, /*pinWorkers=*/true);
    EXPECT_LE(pool.pinnedWorkers(), pool.size() - 1);
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(64, [&](uint32_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 64ull * 63 / 2);
#if defined(__linux__) && defined(__GLIBC__)
    // Only when the current affinity mask spans every core the pool
    // targets can full pinning be asserted.
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        bool allAllowed = true;
        for (uint32_t i = 0; i + 1 < pool.size(); ++i)
            allAllowed =
                allAllowed && CPU_ISSET((i + 1) % hw, &allowed);
        if (allAllowed) {
            EXPECT_EQ(pool.pinnedWorkers(), pool.size() - 1);
        }
    }
#endif
}

TEST(ThreadPool, UnpinnedByDefault)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.pinnedWorkers(), 0u);
}
