/**
 * @file
 * Bitwise and miscellaneous instruction tests (Table II): not/and/or/
 * xor, mux, copy, plus driver-level validation (masked execution,
 * unsupported combinations, register aliasing).
 */
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pim_test_util.hpp"

using namespace pypim;
using pypim::test::DriverFixture;

namespace
{

class BitwiseMisc : public DriverFixture
{
  protected:
    std::vector<uint32_t>
    words(uint64_t seed)
    {
        Rng r(seed);
        std::vector<uint32_t> v(threads());
        for (auto &x : v)
            x = r.word();
        return v;
    }
};

} // namespace

TEST_F(BitwiseMisc, BitwiseOpsMatchHost)
{
    const auto a = words(1);
    const auto b = words(2);
    loadReg(0, a);
    loadReg(1, b);
    run(ROp::BitAnd, DType::Int32, 2, 0, 1);
    run(ROp::BitOr, DType::Int32, 3, 0, 1);
    run(ROp::BitXor, DType::Int32, 4, 0, 1);
    run(ROp::BitNot, DType::Int32, 5, 0);
    const auto o_and = readReg(2);
    const auto o_or = readReg(3);
    const auto o_xor = readReg(4);
    const auto o_not = readReg(5);
    for (uint32_t i = 0; i < threads(); ++i) {
        ASSERT_EQ(o_and[i], a[i] & b[i]);
        ASSERT_EQ(o_or[i], a[i] | b[i]);
        ASSERT_EQ(o_xor[i], a[i] ^ b[i]);
        ASSERT_EQ(o_not[i], ~a[i]);
    }
}

TEST_F(BitwiseMisc, BitwiseWorksForFloatDtypeOnRawBits)
{
    const auto a = words(3);
    const auto b = words(4);
    loadReg(0, a);
    loadReg(1, b);
    run(ROp::BitAnd, DType::Float32, 2, 0, 1);
    const auto got = readReg(2);
    for (uint32_t i = 0; i < threads(); ++i)
        ASSERT_EQ(got[i], a[i] & b[i]);
}

TEST_F(BitwiseMisc, MuxSelectsPerThread)
{
    const auto a = words(5);
    const auto b = words(6);
    std::vector<uint32_t> c(threads());
    for (uint32_t i = 0; i < threads(); ++i)
        c[i] = i % 3 == 0;
    loadReg(0, a);
    loadReg(1, b);
    loadReg(2, c);
    run(ROp::Mux, DType::Int32, 3, 0, 1, 2);
    const auto got = readReg(3);
    for (uint32_t i = 0; i < threads(); ++i)
        ASSERT_EQ(got[i], c[i] ? a[i] : b[i]) << "thread " << i;
}

TEST_F(BitwiseMisc, CopyReplicatesRegister)
{
    const auto a = words(7);
    loadReg(0, a);
    run(ROp::Copy, DType::Int32, 9, 0);
    EXPECT_EQ(readReg(9), a);
}

TEST_F(BitwiseMisc, MaskedExecutionLeavesOtherThreadsUntouched)
{
    const auto a = words(8);
    const auto b = words(9);
    loadReg(0, a);
    loadReg(1, b);
    loadReg(2, std::vector<uint32_t>(threads(), 0xDEAD0000u));
    RTypeInstr in;
    in.op = ROp::BitXor;
    in.dtype = DType::Int32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    in.warps = Range::single(1);
    in.rows = Range(2, geo.rows - 2, 4);
    drv.execute(in);
    const auto got = readReg(2);
    for (uint32_t w = 0; w < geo.numCrossbars; ++w) {
        for (uint32_t r = 0; r < geo.rows; ++r) {
            const uint32_t i = w * geo.rows + r;
            const bool selected = w == 1 && in.rows.contains(r);
            ASSERT_EQ(got[i],
                      selected ? (a[i] ^ b[i]) : 0xDEAD0000u)
                << "warp " << w << " row " << r;
        }
    }
}

TEST_F(BitwiseMisc, WriteAndReadInstructions)
{
    WriteInstr w;
    w.reg = 4;
    w.value = 0xFEED1234;
    w.warps = Range(0, 2, 2);
    w.rows = Range(1, 61, 10);
    drv.execute(w);
    ReadInstr rd;
    rd.reg = 4;
    rd.warp = 2;
    rd.row = 31;
    EXPECT_EQ(drv.execute(rd), 0xFEED1234u);
    rd.warp = 1;
    EXPECT_EQ(drv.execute(rd), 0u);
}

TEST_F(BitwiseMisc, RejectsUnsupportedAndMalformed)
{
    RTypeInstr in;
    in.warps = Range::all(geo.numCrossbars);
    in.rows = Range::all(geo.rows);
    // Mod on float is not in Table II.
    in.op = ROp::Mod;
    in.dtype = DType::Float32;
    in.rd = 2;
    in.ra = 0;
    in.rb = 1;
    EXPECT_THROW(drv.execute(in), Error);
    // Register out of range.
    in.op = ROp::Add;
    in.dtype = DType::Int32;
    in.rd = static_cast<uint8_t>(geo.userRegs);
    EXPECT_THROW(drv.execute(in), Error);
    // Destination aliases a source.
    in.rd = 1;
    EXPECT_THROW(drv.execute(in), Error);
    // Bad row mask.
    in.rd = 2;
    in.rows = Range(0, geo.rows, 1);
    EXPECT_THROW(drv.execute(in), Error);
}

TEST_F(BitwiseMisc, ScratchPoolFullyReleasedBetweenInstructions)
{
    const auto a = words(10);
    const auto b = words(11);
    loadReg(0, a);
    loadReg(1, b);
    run(ROp::Mul, DType::Float32, 2, 0, 1);
    EXPECT_EQ(drv.builder().pool().slotsInUse(), 0u)
        << "float mul leaked scratch slots";
    run(ROp::Div, DType::Float32, 3, 0, 1);
    EXPECT_EQ(drv.builder().pool().slotsInUse(), 0u)
        << "float div leaked scratch slots";
    run(ROp::Add, DType::Float32, 4, 0, 1);
    EXPECT_EQ(drv.builder().pool().slotsInUse(), 0u)
        << "float add leaked scratch slots";
    run(ROp::Div, DType::Int32, 5, 0, 1);
    EXPECT_EQ(drv.builder().pool().slotsInUse(), 0u)
        << "int div leaked scratch slots";
}

TEST_F(BitwiseMisc, DriverCountsInstructions)
{
    const auto a = words(12);
    loadReg(0, a);
    const uint64_t before = drv.stats().instructions;
    run(ROp::BitNot, DType::Int32, 1, 0);
    run(ROp::Copy, DType::Int32, 2, 0);
    EXPECT_EQ(drv.stats().instructions, before + 2);
}
