/**
 * @file
 * Property-based sweeps over the full stack, parameterised on the RNG
 * seed (TEST_P / INSTANTIATE_TEST_SUITE_P): algebraic identities that
 * must hold bit-exactly on PIM results regardless of the data, plus
 * structural invariants (sort produces a permutation, reductions split
 * over views, scratch never leaks).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

namespace
{

class PropertyTest : public ::testing::TestWithParam<uint64_t>
{
  protected:
    PropertyTest() : dev(testGeometry()), rng(GetParam()) {}

    std::vector<int32_t>
    ints(size_t n)
    {
        std::vector<int32_t> v(n);
        for (auto &x : v)
            x = rng.int32();
        return v;
    }

    Device dev;
    Rng rng;
};

} // namespace

TEST_P(PropertyTest, IntAddCommutesAndInverts)
{
    const auto va = ints(128);
    const auto vb = ints(128);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    // a + b == b + a (bit exact)
    EXPECT_EQ((a + b).toIntVector(), (b + a).toIntVector());
    // (a + b) - b == a even with wraparound
    EXPECT_EQ(((a + b) - b).toIntVector(), va);
    // a + (-a) == 0
    const auto z = (a + (-a)).toIntVector();
    EXPECT_TRUE(std::all_of(z.begin(), z.end(),
                            [](int32_t x) { return x == 0; }));
}

TEST_P(PropertyTest, IntMulDistributesModulo32)
{
    const auto va = ints(96);
    const auto vb = ints(96);
    const auto vc = ints(96);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    Tensor c = Tensor::fromVector(vc, &dev);
    // a * (b + c) == a*b + a*c (mod 2^32)
    EXPECT_EQ((a * (b + c)).toIntVector(),
              (a * b + a * c).toIntVector());
    // a * b == b * a
    EXPECT_EQ((a * b).toIntVector(), (b * a).toIntVector());
}

TEST_P(PropertyTest, DivModReconstruction)
{
    auto va = ints(96);
    std::vector<int32_t> vb(96);
    for (size_t i = 0; i < vb.size(); ++i) {
        vb[i] = rng.int32In(-1 << 20, 1 << 20);
        if (vb[i] == 0)
            vb[i] = 11;
        if (va[i] == INT32_MIN && vb[i] == -1)
            vb[i] = 3;
    }
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    // (a / b) * b + (a % b) == a  (C identity)
    const auto rec = ((a / b) * b + (a % b)).toIntVector();
    EXPECT_EQ(rec, va);
}

TEST_P(PropertyTest, ComparisonTrichotomy)
{
    const auto va = ints(128);
    auto vb = ints(128);
    for (size_t i = 0; i < vb.size(); i += 9)
        vb[i] = va[i];
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto lt = (a < b).toIntVector();
    const auto eq = (a == b).toIntVector();
    const auto gt = (a > b).toIntVector();
    for (size_t i = 0; i < va.size(); ++i)
        EXPECT_EQ(lt[i] + eq[i] + gt[i], 1) << "trichotomy at " << i;
}

TEST_P(PropertyTest, FloatMulIdentityAndSignFlip)
{
    Rng r(GetParam() ^ 0x5555);
    std::vector<float> vf(96);
    for (auto &x : vf)
        x = r.floatIn(-1e20f, 1e20f);
    Tensor a = Tensor::fromVector(vf, &dev);
    // a * 1.0 == a bit exactly
    EXPECT_EQ((a * 1.0f).toFloatVector(), vf);
    // a * -1.0 == -a (sign flip, exact in IEEE)
    EXPECT_EQ((a * -1.0f).toFloatVector(), (-a).toFloatVector());
    // a - a == +0 for finite a
    const auto diff = (a - a).toFloatVector();
    for (float d : diff)
        EXPECT_EQ(d, 0.0f);
    // abs(a) >= 0 via sign bit
    for (float x : abs(a).toFloatVector())
        EXPECT_FALSE(std::signbit(x));
}

TEST_P(PropertyTest, FloatAddCommutes)
{
    Rng r(GetParam() ^ 0xAAAA);
    std::vector<uint32_t> bitsA(96), bitsB(96);
    std::vector<float> va(96), vb(96);
    for (size_t i = 0; i < va.size(); ++i) {
        bitsA[i] = r.word();
        bitsB[i] = r.word();
        va[i] = std::bit_cast<float>(bitsA[i]);
        vb[i] = std::bit_cast<float>(bitsB[i]);
    }
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    const auto ab = (a + b).toFloatVector();
    const auto ba = (b + a).toFloatVector();
    for (size_t i = 0; i < ab.size(); ++i) {
        if (std::isnan(ab[i]))
            EXPECT_TRUE(std::isnan(ba[i])) << i;
        else
            EXPECT_EQ(ab[i], ba[i]) << i;
    }
}

TEST_P(PropertyTest, SortIsASortedPermutation)
{
    std::vector<int32_t> v(256);
    for (auto &x : v)
        x = rng.int32In(-50, 50);  // plenty of duplicates
    Tensor t = Tensor::fromVector(v, &dev);
    t.sort();
    auto got = t.toIntVector();
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect);  // same multiset
    // Idempotence.
    t.sort();
    EXPECT_EQ(t.toIntVector(), expect);
}

TEST_P(PropertyTest, SumSplitsOverViews)
{
    std::vector<int32_t> v(120);
    for (auto &x : v)
        x = rng.int32In(-100000, 100000);
    Tensor t = Tensor::fromVector(v, &dev);
    EXPECT_EQ(t.sum<int32_t>(),
              t.every(2).sum<int32_t>() + t.every(2, 1).sum<int32_t>());
    EXPECT_EQ(t.sum<int32_t>(),
              t.slice(0, 60).sum<int32_t>() +
                  t.slice(60, 120).sum<int32_t>());
}

TEST_P(PropertyTest, MinMaxAreElementsAndOrdered)
{
    std::vector<int32_t> v(100);
    for (auto &x : v)
        x = rng.int32();
    Tensor t = Tensor::fromVector(v, &dev);
    const int32_t mn = t.min<int32_t>();
    const int32_t mx = t.max<int32_t>();
    EXPECT_LE(mn, mx);
    EXPECT_NE(std::find(v.begin(), v.end(), mn), v.end());
    EXPECT_NE(std::find(v.begin(), v.end(), mx), v.end());
    EXPECT_EQ(mn, *std::min_element(v.begin(), v.end()));
    EXPECT_EQ(mx, *std::max_element(v.begin(), v.end()));
}

TEST_P(PropertyTest, WhereSelectsExactly)
{
    const auto va = ints(128);
    const auto vb = ints(128);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    Tensor c = a < b;
    // where(c, a, b) union where(!c, a, b) covers both sides.
    const auto lo = where(c, a, b).toIntVector();
    const auto hi = where(c, b, a).toIntVector();
    for (size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(std::min(va[i], vb[i]), std::min(lo[i], hi[i]));
        EXPECT_EQ(lo[i] + hi[i],
                  static_cast<int32_t>(
                      static_cast<int64_t>(va[i]) + vb[i]));
    }
}

TEST_P(PropertyTest, BitwiseDeMorgan)
{
    const auto va = ints(128);
    const auto vb = ints(128);
    Tensor a = Tensor::fromVector(va, &dev);
    Tensor b = Tensor::fromVector(vb, &dev);
    // ~(a & b) == ~a | ~b
    EXPECT_EQ((~(a & b)).toIntVector(), ((~a) | (~b)).toIntVector());
    // a ^ b == (a | b) & ~(a & b)
    EXPECT_EQ((a ^ b).toIntVector(),
              ((a | b) & (~(a & b))).toIntVector());
}

TEST_P(PropertyTest, NoScratchOrStorageLeaks)
{
    const uint32_t live0 = dev.allocator().liveAllocations();
    {
        const auto va = ints(256);
        Tensor a = Tensor::fromVector(va, &dev);
        Tensor b = a * a;
        Tensor c = where(a < b, a, b);
        (void)c.sum<int32_t>();
        Tensor s = c.sorted();
        EXPECT_EQ(dev.driver().builder().pool().slotsInUse(), 0u);
    }
    EXPECT_EQ(dev.allocator().liveAllocations(), live0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1ull, 42ull, 0xBEEFull,
                                           777ull, 31415926ull));
