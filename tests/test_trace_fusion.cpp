/**
 * @file
 * Directed tests for the trace cache and the window fusion pass
 * (sim/batch_trace.hpp): WAW dead-store elimination, INIT1 chain
 * merging and windowed INIT1->NOR/NOT fusion must fire exactly on the
 * legal patterns (counters checked), never on the alias/conflict
 * negatives, and every prepared trace — fused or not — must replay
 * bit-identically to the serial oracle, repeatedly, on synchronous
 * and pipelined simulators.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/batch_trace.hpp"
#include "sim/simulator.hpp"

using namespace pypim;

namespace
{

Geometry
fusionGeometry()
{
    Geometry g = testGeometry();
    g.numCrossbars = 16;
    return g;
}

/** Self-contained stream: full masks first, then the body. */
std::vector<Word>
withMasks(const Geometry &g, std::vector<Word> body)
{
    std::vector<Word> ops = {
        MicroOp::crossbarMask(Range::all(g.numCrossbars)).encode(),
        MicroOp::rowMask(Range::all(g.rows)).encode(),
    };
    ops.insert(ops.end(), body.begin(), body.end());
    return ops;
}

void
seedState(Simulator &a, Simulator &b, uint64_t seed)
{
    const Geometry &g = a.geometry();
    Rng rng(seed);
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        for (uint32_t row = 0; row < g.rows; ++row)
            for (uint32_t slot = 0; slot < g.slots(); ++slot) {
                const uint32_t v = rng.word();
                a.crossbar(xb).writeRow(slot, v, row);
                b.crossbar(xb).writeRow(slot, v, row);
            }
}

::testing::AssertionResult
sameCrossbarState(const Simulator &a, const Simulator &b)
{
    for (uint32_t xb = 0; xb < a.geometry().numCrossbars; ++xb)
        if (!a.crossbar(xb).sameState(b.crossbar(xb)))
            return ::testing::AssertionFailure()
                   << "crossbar " << xb << " state diverged";
    return ::testing::AssertionSuccess();
}

/**
 * Prepare the stream fused and unfused, check the fusion counters,
 * and assert both replay bit-identically to the serial oracle (state
 * and architectural stats).
 */
void
expectFusionParity(const std::vector<Word> &ops, uint64_t waw,
                   uint64_t initChain, uint64_t window,
                   uint64_t writeStripe = 0)
{
    const Geometry g = fusionGeometry();
    Simulator oracle(g);
    for (const bool fuse : {false, true}) {
        Simulator cand(g);
        seedState(oracle, cand, 99);
        const auto trace =
            cand.prepareTrace(ops.data(), ops.size(), fuse);
        ASSERT_TRUE(trace != nullptr);
        if (fuse) {
            EXPECT_EQ(trace->fusion.waw, waw);
            EXPECT_EQ(trace->fusion.initChain, initChain);
            EXPECT_EQ(trace->fusion.window, window);
            EXPECT_EQ(trace->fusion.writeStripe, writeStripe);
        } else {
            EXPECT_EQ(trace->fusion.waw, 0u);
            EXPECT_EQ(trace->fusion.initChain, 0u);
            EXPECT_EQ(trace->fusion.window, 0u);
            EXPECT_EQ(trace->fusion.writeStripe, 0u);
        }
        oracle.performBatch(ops.data(), ops.size());
        cand.submitTrace(trace);
        EXPECT_TRUE(sameCrossbarState(oracle, cand))
            << (fuse ? "fused" : "unfused");
        EXPECT_EQ(oracle.stats(), cand.stats())
            << (fuse ? "fused" : "unfused");
        EXPECT_EQ(oracle.crossbarMask(), cand.crossbarMask());
        EXPECT_EQ(oracle.rowMask(), cand.rowMask());
        oracle.stats().clear();
    }
}

Word
laneInit1(const Geometry &g, uint32_t slot)
{
    return MicroOp::logicH(Gate::Init1, 0, 0, g.column(slot, 0),
                           g.partitions - 1, 1)
        .encode();
}

Word
laneNor(const Geometry &g, uint32_t a, uint32_t b, uint32_t out)
{
    return MicroOp::logicH(Gate::Nor, g.column(a, 0), g.column(b, 0),
                           g.column(out, 0), g.partitions - 1, 1)
        .encode();
}

} // namespace

TEST(TraceFusion, WawSameSlotEliminated)
{
    const Geometry g = fusionGeometry();
    expectFusionParity(
        withMasks(g, {MicroOp::write(2, 0x11111111u).encode(),
                      MicroOp::write(2, 0x22222222u).encode(),
                      MicroOp::write(2, 0x33333333u).encode()}),
        /*waw=*/2, 0, 0);
}

TEST(TraceFusion, WawWiderMasksCoverNarrower)
{
    const Geometry g = fusionGeometry();
    // Narrow write (strided rows, two crossbars) then a full-mask
    // write to the same slot: the narrow one is dead.
    expectFusionParity(
        withMasks(g,
                  {MicroOp::rowMask(Range(2, g.rows - 2, 4)).encode(),
                   MicroOp::crossbarMask(Range(0, 2, 2)).encode(),
                   MicroOp::write(5, 0xAAAA5555u).encode(),
                   MicroOp::rowMask(Range::all(g.rows)).encode(),
                   MicroOp::crossbarMask(
                       Range::all(g.numCrossbars)).encode(),
                   MicroOp::write(5, 0x12345678u).encode()}),
        /*waw=*/1, 0, 0);
}

TEST(TraceFusion, WawNarrowerMasksDoNotEliminate)
{
    const Geometry g = fusionGeometry();
    // Full write then a narrower write: rows outside the second mask
    // must keep the first value, so nothing may be eliminated.
    expectFusionParity(
        withMasks(g,
                  {MicroOp::write(5, 0xAAAA5555u).encode(),
                   MicroOp::rowMask(Range(0, g.rows / 2 - 1, 1))
                       .encode(),
                   MicroOp::write(5, 0x12345678u).encode()}),
        /*waw=*/0, 0, 0);
}

TEST(TraceFusion, WawBlockedByInterveningReader)
{
    const Geometry g = fusionGeometry();
    // The NOR reads slot 2 between the writes: the first write is
    // observed and must survive.
    expectFusionParity(
        withMasks(g, {MicroOp::write(2, 0x0F0F0F0Fu).encode(),
                      laneInit1(g, 6),
                      laneNor(g, 2, 3, 6),
                      MicroOp::write(2, 0xF0F0F0F0u).encode()}),
        /*waw=*/0, 0, 0);
}

TEST(TraceFusion, InitChainsMerge)
{
    const Geometry g = fusionGeometry();
    // Three full INIT1 lanes on independent slots under one mask: a
    // full lane is one section per partition, so merging two fills
    // the 64-section half-gate arena exactly — the pair merges, the
    // third op survives on the capacity guard.
    expectFusionParity(withMasks(g, {laneInit1(g, 3), laneInit1(g, 4),
                                     laneInit1(g, 7)}),
                       0, /*initChain=*/1, 0);
}

TEST(TraceFusion, PartialInitChainsMergeFully)
{
    const Geometry g = fusionGeometry();
    // Quarter-lane INITs (8 sections each) fit the arena three deep:
    // both earlier ops fold into the last.
    const auto partialInit = [&](uint32_t slot) {
        return MicroOp::logicH(Gate::Init1, 0, 0, g.column(slot, 0),
                               7, 1)
            .encode();
    };
    expectFusionParity(withMasks(g, {partialInit(3), partialInit(4),
                                     partialInit(7)}),
                       0, /*initChain=*/2, 0);
}

TEST(TraceFusion, InitChainMergedOpsReplayOnce)
{
    const Geometry g = fusionGeometry();
    const auto ops =
        withMasks(g, {laneInit1(g, 3), laneInit1(g, 4)});
    Simulator sim(g);
    const auto trace = sim.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_TRUE(trace != nullptr);
    ASSERT_EQ(trace->used, 1u);
    // Two architectural LogicH ops, one surviving replay op.
    EXPECT_EQ(trace->segments[0].ops.size(), 1u);
    EXPECT_EQ(trace->stats.opCount[size_t(OpClass::LogicH)], 2u);
}

TEST(TraceFusion, InitChainBlockedByMaskChange)
{
    const Geometry g = fusionGeometry();
    expectFusionParity(
        withMasks(g,
                  {laneInit1(g, 3),
                   MicroOp::rowMask(Range(0, g.rows - 2, 2)).encode(),
                   laneInit1(g, 4)}),
        0, /*initChain=*/0, 0);
}

TEST(TraceFusion, InitChainBlockedByInterveningTouch)
{
    const Geometry g = fusionGeometry();
    // The write lands in slot 3's columns: moving the first INIT1
    // past it would clobber the write, so the chain must not merge.
    expectFusionParity(
        withMasks(g, {laneInit1(g, 3),
                      MicroOp::write(3, 0xDEADBEEFu).encode(),
                      laneInit1(g, 4)}),
        0, /*initChain=*/0, 0);
}

TEST(TraceFusion, WindowFusesAcrossUnrelatedOps)
{
    const Geometry g = fusionGeometry();
    // INIT1 of slot 5, an unrelated write, then the NOR into slot 5:
    // the builder's adjacent fusion is defeated, the window pass is
    // not.
    expectFusionParity(
        withMasks(g, {laneInit1(g, 5),
                      MicroOp::write(0, 0x13579BDFu).encode(),
                      laneNor(g, 1, 2, 5)}),
        0, 0, /*window=*/1);
}

TEST(TraceFusion, WindowAliasGuardRejectsInputAliasingOutput)
{
    const Geometry g = fusionGeometry();
    // NOR input aliases the initialised output: fusing would read
    // post-INIT state; must stay two passes.
    expectFusionParity(
        withMasks(g, {laneInit1(g, 5),
                      MicroOp::write(0, 0x13579BDFu).encode(),
                      laneNor(g, 5, 2, 5)}),
        0, 0, /*window=*/0);
}

TEST(TraceFusion, WindowBlockedByTouchedOutputs)
{
    const Geometry g = fusionGeometry();
    // A LogicV on slot 5 touches the INIT's output columns in
    // between: the INIT must not move past it.
    expectFusionParity(
        withMasks(g,
                  {laneInit1(g, 5),
                   MicroOp::logicV(Gate::Init0, 0, 1, 5).encode(),
                   laneNor(g, 1, 2, 5)}),
        0, 0, /*window=*/0);
}

TEST(TraceFusion, WindowBlockedByMaskMismatch)
{
    const Geometry g = fusionGeometry();
    expectFusionParity(
        withMasks(g,
                  {laneInit1(g, 5),
                   MicroOp::crossbarMask(Range(0, g.numCrossbars - 2, 2))
                       .encode(),
                   laneNor(g, 1, 2, 5)}),
        0, 0, /*window=*/0);
}

TEST(TraceFusion, MixedStreamWithBarriersStaysParity)
{
    const Geometry g = fusionGeometry();
    std::vector<Word> body = {
        MicroOp::write(2, 0x01020304u).encode(),
        MicroOp::write(2, 0x05060708u).encode(),  // WAW
        laneInit1(g, 3),
        laneInit1(g, 4),                          // chain
        // NOR into a third slot: does not consume either INIT (the
        // merged INIT no longer output-matches anything), and without
        // its own INIT it computes device-accurate garbage — which
        // both replay paths must reproduce identically.
        laneNor(g, 0, 1, 8),
        // Barrier: a move splits the batch into two segments.
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode(),
        MicroOp::move(g.numCrossbars / 2, 1, 2, 0, 1).encode(),
        laneInit1(g, 6),
        MicroOp::write(7, 0x99999999u).encode(),
        laneNor(g, 1, 2, 6),                      // window fusion
    };
    expectFusionParity(withMasks(g, std::move(body)), 1, 1, 1);
}

TEST(TraceFusion, StripeMergesAdjacentDistinctSlotWrites)
{
    const Geometry g = fusionGeometry();
    // Three adjacent full-mask writes to pairwise-distinct slots: one
    // stripe op replaces all three (two ops eliminated).
    expectFusionParity(
        withMasks(g, {MicroOp::write(2, 0x11111111u).encode(),
                      MicroOp::write(3, 0x22222222u).encode(),
                      MicroOp::write(4, 0x33333333u).encode()}),
        0, 0, 0, /*writeStripe=*/2);
}

TEST(TraceFusion, StripeAndWawCompose)
{
    const Geometry g = fusionGeometry();
    // write(2) write(3) write(2): WAW kills the first write(2) — the
    // intervening write(3) touches disjoint columns — and the two
    // survivors (distinct slots, same masks) merge into one stripe.
    expectFusionParity(
        withMasks(g, {MicroOp::write(2, 0xAAAAAAAAu).encode(),
                      MicroOp::write(3, 0xBBBBBBBBu).encode(),
                      MicroOp::write(2, 0xCCCCCCCCu).encode()}),
        /*waw=*/1, 0, 0, /*writeStripe=*/1);
}

TEST(TraceFusion, StripeBlockedByRowMaskChange)
{
    const Geometry g = fusionGeometry();
    // The second write runs under genuinely different row-mask bits:
    // merging would widen (or narrow) one of the writes.
    expectFusionParity(
        withMasks(g,
                  {MicroOp::write(2, 0x11111111u).encode(),
                   MicroOp::rowMask(Range(0, g.rows - 2, 2)).encode(),
                   MicroOp::write(3, 0x22222222u).encode()}),
        0, 0, 0, /*writeStripe=*/0);
}

TEST(TraceFusion, StripeBlockedByCrossbarMaskChange)
{
    const Geometry g = fusionGeometry();
    expectFusionParity(
        withMasks(g,
                  {MicroOp::write(2, 0x11111111u).encode(),
                   MicroOp::crossbarMask(Range(0, g.numCrossbars - 2, 2))
                       .encode(),
                   MicroOp::write(3, 0x22222222u).encode()}),
        0, 0, 0, /*writeStripe=*/0);
}

TEST(TraceFusion, StripeMergesAcrossEquivalentRowMaskReissue)
{
    const Geometry g = fusionGeometry();
    // Range(5,5,1) and Range(5,5,3) are different encodings of the
    // same single-row mask: the snapshot table dedups by CONTENT, so
    // the re-issued mask costs no snapshot and no stripe break.
    expectFusionParity(
        withMasks(g,
                  {MicroOp::rowMask(Range(5, 5, 1)).encode(),
                   MicroOp::write(2, 0x11111111u).encode(),
                   MicroOp::rowMask(Range(5, 5, 3)).encode(),
                   MicroOp::write(3, 0x22222222u).encode()}),
        0, 0, 0, /*writeStripe=*/1);
}

TEST(TraceFusion, EquivalentRangeDedupEnablesBuilderInitNorFusion)
{
    const Geometry g = fusionGeometry();
    // INIT1 under Range(5,5,1), NOR under the equivalent Range(5,5,3):
    // the builder's adjacent INIT1->NOR fusion compares row-snapshot
    // ids, so content dedup must make the pair fuse even though the
    // Range encodings differ.
    const std::vector<Word> ops = {
        MicroOp::crossbarMask(Range::all(g.numCrossbars)).encode(),
        MicroOp::rowMask(Range(5, 5, 1)).encode(),
        laneInit1(g, 5),
        MicroOp::rowMask(Range(5, 5, 3)).encode(),
        laneNor(g, 1, 2, 5),
    };
    Simulator sim(g);
    const auto trace = sim.prepareTrace(ops.data(), ops.size(),
                                        /*fuse=*/false);
    ASSERT_TRUE(trace != nullptr);
    ASSERT_EQ(trace->used, 1u);
    const SegmentTrace &seg = trace->segments[0];
    ASSERT_EQ(seg.ops.size(), 1u);
    EXPECT_TRUE(seg.ops[0].fusedInit);
    // One realised bit pattern => exactly one snapshot in the arena.
    EXPECT_EQ(seg.rowWords.size(), seg.wordsPerMask);
    // And the stream still replays bit-identically to the oracle.
    expectFusionParity(ops, 0, 0, 0, 0);
}

TEST(TraceFusion, PreparedTraceReplaysRepeatedly)
{
    const Geometry g = fusionGeometry();
    const auto ops = withMasks(
        g, {MicroOp::write(2, 0xCAFED00Du).encode(), laneInit1(g, 3),
            laneNor(g, 0, 2, 3), laneInit1(g, 5),
            MicroOp::write(6, 0x42424242u).encode(),
            laneNor(g, 3, 6, 5)});
    Simulator oracle(g);
    Simulator cand(g);
    seedState(oracle, cand, 4242);
    const auto trace = cand.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_TRUE(trace != nullptr);
    for (int rep = 0; rep < 3; ++rep) {
        oracle.performBatch(ops.data(), ops.size());
        cand.submitTrace(trace);
    }
    EXPECT_TRUE(sameCrossbarState(oracle, cand));
    EXPECT_EQ(oracle.stats(), cand.stats());
}

TEST(TraceFusion, PipelinedSubmitTraceMatchesOracle)
{
    const Geometry g = fusionGeometry();
    const auto ops = withMasks(
        g, {MicroOp::write(2, 0xCAFED00Du).encode(), laneInit1(g, 3),
            MicroOp::write(4, 0x10101010u).encode(),
            laneNor(g, 0, 2, 3)});
    Simulator oracle(g);
    Simulator cand(g, EngineConfig::sharded(2).withPipeline());
    seedState(oracle, cand, 777);
    const auto trace = cand.prepareTrace(ops.data(), ops.size(), true);
    ASSERT_TRUE(trace != nullptr);
    for (int rep = 0; rep < 4; ++rep) {
        oracle.performBatch(ops.data(), ops.size());
        cand.submitTrace(trace);  // queues asynchronously
    }
    cand.flush();
    EXPECT_TRUE(sameCrossbarState(oracle, cand));
    EXPECT_EQ(oracle.stats(), cand.stats());
}

TEST(TraceFusion, PrepareRefusesNonSelfContainedStreams)
{
    const Geometry g = fusionGeometry();
    Simulator sim(g);
    const std::vector<Word> noMasks = {
        MicroOp::write(2, 1u).encode(),
    };
    EXPECT_EQ(sim.prepareTrace(noMasks.data(), noMasks.size(), true),
              nullptr);
    const std::vector<Word> onlyRowMask = {
        MicroOp::rowMask(Range::all(g.rows)).encode(),
        MicroOp::write(2, 1u).encode(),
    };
    EXPECT_EQ(sim.prepareTrace(onlyRowMask.data(), onlyRowMask.size(),
                               true),
              nullptr);
    // prepareTrace must not have advanced any architectural state.
    EXPECT_EQ(sim.stats().totalOps(), 0u);
}
