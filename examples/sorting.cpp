/**
 * @file
 * Sorting and views (the paper's §VI "Sorting" benchmark and the
 * artifact's interactive session, appendix §G): bitonic sort through
 * the tensor API, including sorting a strided view in place — the
 * odd-indexed elements are untouched.
 *
 * Build: cmake --build build && ./build/examples/sorting
 */
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

int
main()
{
    Device &dev = Device::defaultDevice();
    Rng rng(2024);

    // --- artifact appendix G transcript -----------------------------
    Tensor x = Tensor::zeros(8, DType::Float32);
    x.set(2, 2.5f);
    x.set(3, 1.25f);
    x.set(4, 2.25f);
    std::printf("%s\n", x.toString().c_str());
    Tensor view = x.every(2);
    std::printf("%s\n", view.toString().c_str());
    std::printf("x[::2].sum() = %g\n", view.sum<float>());
    view.sort();
    std::printf("after x[::2].sort():\n%s\n", view.toString().c_str());
    std::printf("full tensor (odd elements untouched):\n%s\n\n",
                x.toString().c_str());

    // --- a full-size sort with profiling ------------------------------
    const uint64_t n = 1024;
    std::vector<float> v(n);
    for (auto &f : v)
        f = rng.floatIn(-1e3f, 1e3f);
    Tensor t = Tensor::fromVector(v);
    Profiler prof(dev);
    t.sort();
    std::printf("bitonic sort of %llu floats: %llu PIM cycles "
                "(%.2f ms), %llu micro-ops\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(prof.cycles()),
                prof.pimSeconds() * 1e3,
                static_cast<unsigned long long>(prof.microOps()));

    const auto got = t.toFloatVector();
    std::sort(v.begin(), v.end());
    if (got != v) {
        std::fprintf(stderr, "sort mismatch!\n");
        return 1;
    }
    std::printf("verified against std::sort: OK\n");
    std::printf("min = %g, max = %g, median = %g\n", got.front(),
                got.back(), got[n / 2]);
    return 0;
}
