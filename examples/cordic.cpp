/**
 * @file
 * CORDIC sine/cosine on PIM tensors (the paper's §VI "CORDIC
 * Sine/Cosine" benchmark): rotation-mode CORDIC expressed purely with
 * the tensor API — comparisons, scalar multiplies, adds/subs and
 * muxes — computing sin and cos of a whole vector of angles in
 * parallel inside the memory.
 *
 * Build: cmake --build build && ./build/examples/cordic
 */
#include <cmath>
#include <cstdio>

#include "pim/pypim.hpp"

using namespace pypim;

int
main()
{
    Device &dev = Device::defaultDevice();
    const uint64_t n = 4096;

    // Angles spread over [-pi/2, pi/2].
    std::vector<float> angles(n);
    for (uint64_t i = 0; i < n; ++i)
        angles[i] = -1.5707963f +
                    3.1415926f * static_cast<float>(i) /
                        static_cast<float>(n - 1);
    Tensor z = Tensor::fromVector(angles);

    const int iters = 24;
    double kinv = 1.0;
    for (int k = 0; k < iters; ++k)
        kinv *= std::sqrt(1.0 + std::ldexp(1.0, -2 * k));

    Profiler prof(dev);
    Tensor x = Tensor::full(n, static_cast<float>(1.0 / kinv));
    Tensor y = Tensor::zeros(n, DType::Float32);
    for (int k = 0; k < iters; ++k) {
        const float ang =
            static_cast<float>(std::atan(std::ldexp(1.0, -k)));
        const float p2 = static_cast<float>(std::ldexp(1.0, -k));
        // Rotate towards zero residual angle; the per-element
        // direction comes from the sign of z (a 0/1 mask tensor).
        Tensor d = z >= 0.0f;
        Tensor xs = x * p2;
        Tensor ys = y * p2;
        Tensor xn = where(d, x - ys, x + ys);
        Tensor yn = where(d, y + xs, y - xs);
        Tensor zn = where(d, z - ang, z + ang);
        x = xn;
        y = yn;
        z = zn;
    }
    std::printf("CORDIC (%d iterations, %llu angles): %llu PIM cycles "
                "(%.2f ms at %.0f MHz)\n",
                iters, static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(prof.cycles()),
                prof.pimSeconds() * 1e3, dev.geometry().clockHz / 1e6);

    // Accuracy against the host libm.
    const auto sines = y.toFloatVector();
    const auto cosines = x.toFloatVector();
    double maxErr = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
        maxErr = std::max(
            maxErr, std::fabs(double(sines[i]) - std::sin(angles[i])));
        maxErr = std::max(
            maxErr,
            std::fabs(double(cosines[i]) - std::cos(angles[i])));
    }
    std::printf("max |error| vs libm over sin and cos: %.3g\n", maxErr);
    std::printf("samples: sin(%+.4f) = %+.6f, cos(%+.4f) = %+.6f\n",
                angles[n / 3], sines[n / 3], angles[n / 3],
                cosines[n / 3]);
    return maxErr < 1e-4 ? 0 : 1;
}
