/**
 * @file
 * Hybrid CPU-PIM pipeline (paper §V-A: "PIM to be easily integrated
 * within larger applications"): a rectified dot product
 * sum(relu(a) * b) computed entirely in memory — comparison, mux,
 * element-parallel multiply, then logarithmic-time reduction — with
 * only the final scalar crossing back to the host.
 *
 * Also demonstrates the int pipeline: a histogram-style predicate
 * count using comparisons and sum().
 *
 * Build: cmake --build build && ./build/examples/dotproduct
 */
#include <cstdio>

#include "common/rng.hpp"
#include "pim/pypim.hpp"

using namespace pypim;

int
main()
{
    Device &dev = Device::defaultDevice();
    Rng rng(7);
    const uint64_t n = 8192;

    // --- float path: sum(relu(a) * b) ------------------------------
    std::vector<float> va = rng.floatVec(n, -10.f, 10.f);
    std::vector<float> vb = rng.floatVec(n, -1.f, 1.f);
    Tensor a = Tensor::fromVector(va);
    Tensor b = Tensor::fromVector(vb);

    Profiler prof(dev);
    Tensor zero = Tensor::zeros(n, DType::Float32);
    Tensor relu = where(a < zero, zero, a);
    const float dot = (relu * b).sum<float>();
    std::printf("sum(relu(a) * b) over %llu elements = %g "
                "(%llu PIM cycles, %.2f ms)\n",
                static_cast<unsigned long long>(n), dot,
                static_cast<unsigned long long>(prof.cycles()),
                prof.pimSeconds() * 1e3);

    // Host reference with the same pairwise fold order as the PIM
    // reduction is complex; a double accumulation gives a tight check.
    double expect = 0.0;
    for (uint64_t i = 0; i < n; ++i)
        expect += (va[i] > 0 ? va[i] : 0.0f) * vb[i];
    std::printf("host reference (double): %g, relative error %.2e\n",
                expect,
                expect != 0.0 ? std::abs(dot - expect) /
                                    std::abs(expect)
                              : 0.0);

    // --- int path: predicate counting -------------------------------
    std::vector<int32_t> vi(n);
    for (auto &x : vi)
        x = rng.int32In(-100, 100);
    Tensor t = Tensor::fromVector(vi);
    Tensor threshold = Tensor::full(n, int32_t{42});
    const int32_t count = (t > threshold).sum<int32_t>();
    int32_t expectCount = 0;
    for (int32_t x : vi)
        expectCount += x > 42;
    std::printf("count(x > 42) = %d (host: %d)\n", count, expectCount);

    return count == expectCount ? 0 : 1;
}
