/**
 * @file
 * Quickstart: the paper's end-to-end example program (Fig. 12),
 * ported line-for-line from the Python library to the C++ API.
 *
 *   import pypim as pim
 *   def myFunc(a, b): return a * b + a
 *   x = pim.zeros(2**20, dtype=pim.float32)
 *   y = pim.zeros(2**20, dtype=pim.float32)
 *   x[4], y[4] = 8.0, 0.5
 *   x[5], y[5] = 20.0, 1.0
 *   x[8], y[8] = 10.0, 1.0
 *   z = myFunc(x, y)
 *   print(z[::2].sum())   # 32.0 = 8 * 1.5 + 10 * 2
 *
 * Build: cmake --build build && ./build/examples/quickstart
 */
#include <cstdio>

#include "pim/pypim.hpp"

using namespace pypim;

/** The paper's myFunc: parallel multiplication and addition. */
static Tensor
myFunc(const Tensor &a, const Tensor &b)
{
    return a * b + a;
}

int
main()
{
    Device &dev = Device::defaultDevice();
    std::printf("PyPIM quickstart on a simulated %u-crossbar digital "
                "PIM memory (%llu threads)\n",
                dev.geometry().numCrossbars,
                static_cast<unsigned long long>(
                    dev.geometry().totalRows()));

    // Tensor initialization (the paper uses 2**20 elements on an 8 GB
    // memory; the default simulated device holds 16k threads).
    const uint64_t n = 16384;
    Tensor x = Tensor::zeros(n, DType::Float32);
    Tensor y = Tensor::zeros(n, DType::Float32);
    x.set(4, 8.0f);
    y.set(4, 0.5f);
    x.set(5, 20.0f);
    y.set(5, 1.0f);
    x.set(8, 10.0f);
    y.set(8, 1.0f);

    // Custom function call: tensors pass by reference, arithmetic runs
    // element-parallel across every thread that holds the tensors.
    Profiler prof(dev);
    Tensor z = myFunc(x, y);
    std::printf("myFunc(x, y) executed in %llu PIM cycles "
                "(%.2f us at %.0f MHz) for all %llu elements\n",
                static_cast<unsigned long long>(prof.cycles()),
                prof.pimSeconds() * 1e6,
                dev.geometry().clockHz / 1e6,
                static_cast<unsigned long long>(n));

    std::printf("z[4] = %g, z[5] = %g, z[8] = %g\n", z.getF(4),
                z.getF(5), z.getF(8));

    // Logarithmic-time reduction of the even indices.
    const float sum = z.every(2).sum<float>();
    std::printf("z[::2].sum() = %g (expected 32.0 = 8*1.5 + 10*2)\n",
                sum);
    return sum == 32.0f ? 0 : 1;
}
