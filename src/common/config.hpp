/**
 * @file
 * PIM architecture geometry and clocking parameters.
 *
 * Default values follow Table III of the PyPIM paper: 1024x1024
 * crossbars with 32 transistor-delimited partitions, a 32-bit word,
 * and a 300 MHz broadcast clock. The full-scale memory has 64 k
 * crossbars (8 GB); tests and benches use smaller counts — cycle
 * counts of broadcast operations are independent of the crossbar
 * count, so throughput is reported via the paper's Eq. (1) using a
 * configurable "deployment parallelism".
 */
#ifndef PYPIM_COMMON_CONFIG_HPP
#define PYPIM_COMMON_CONFIG_HPP

#include <cstdint>
#include <string>

namespace pypim
{

/**
 * Geometry and clocking of a digital memristive PIM memory.
 *
 * Invariants (checked by validate()):
 *  - rows, cols, partitions are powers of two; cols % partitions == 0
 *  - wordBits == partitions (the paper's N; generalising to
 *    partitions != N is future work, paper §III-A)
 *  - numCrossbars is a power of four (H-tree arity, paper §III-F)
 *  - userRegs <= cols / partitions (register slots available per row)
 */
struct Geometry
{
    /** Rows per crossbar (h): threads per warp. */
    uint32_t rows = 1024;
    /** Columns per crossbar (w): bitlines. */
    uint32_t cols = 1024;
    /** Number of dynamically-connected partitions per row (N). */
    uint32_t partitions = 32;
    /** Architectural word size in bits; must equal partitions. */
    uint32_t wordBits = 32;
    /** Number of crossbar arrays (warps); power of 4 for the H-tree. */
    uint32_t numCrossbars = 16;
    /** Broadcast clock frequency in Hz (Table III: 300 MHz). */
    uint64_t clockHz = 300'000'000;
    /**
     * ISA-visible registers per thread (R, chosen at compile time
     * under w >= R*N, paper §IV fn. 3). The remaining cols/partitions
     * - userRegs slots are host-driver scratch; the floating-point
     * routines need at least 17 scratch lanes at their peak.
     */
    uint32_t userRegs = 14;

    /** Register slots per row (user + scratch). */
    uint32_t slots() const { return cols / partitions; }
    /** Scratch slots per row available to the driver. */
    uint32_t scratchSlots() const { return slots() - userRegs; }
    /** Columns per partition. */
    uint32_t partitionWidth() const { return cols / partitions; }

    /**
     * Column address of bit @p bit of register slot @p slot.
     * Strided format (paper Fig. 6): bit b lives in partition b.
     */
    uint32_t
    column(uint32_t slot, uint32_t bit) const
    {
        return bit * partitionWidth() + slot;
    }

    /** Register slot a column belongs to (inverse of column()). */
    uint32_t slotOf(uint32_t col) const
    {
        return col % partitionWidth();
    }

    /** Total threads (rows across all crossbars). */
    uint64_t totalRows() const
    {
        return static_cast<uint64_t>(rows) * numCrossbars;
    }

    /** Throw pypim::Error if any invariant is violated. */
    void validate() const;
};

/** Full-scale deployment of Table III: 64 k crossbars, 8 GB, 64 M rows. */
Geometry tableIIIGeometry();

/** Small geometry for fast unit tests (64 rows, 4 crossbars). */
Geometry testGeometry();

/**
 * Execution-engine backend of the simulator (sim/engine.hpp).
 *
 * All engines are bit-accurate and produce identical crossbar state
 * and statistics; they differ only in how the host simulates the
 * broadcast: Serial replays every micro-op over all mask-selected
 * crossbars on the calling thread (op-major; the reference oracle),
 * Trace decodes each barrier-free segment once and replays it
 * crossbar-major on the calling thread (one crossbar's state stays
 * hot in cache for the whole segment), and Sharded partitions the
 * crossbars across a persistent worker pool and replays segment
 * traces crossbar-major within each shard (serialising only at
 * cross-crossbar ops).
 */
enum class EngineKind : uint8_t
{
    Serial = 0,
    Sharded,
    Trace
};

const char *engineKindName(EngineKind k);

/**
 * Crossbar state representation (sim/crossbar.hpp).
 *
 * Dense keeps every column as a flat ceil(rows/64)-word slab — host
 * RSS scales with geometry. Paged keeps each column as fixed-size
 * blocks behind a per-column block table where an all-zero block
 * costs zero bytes (BitMagic-style zero elision with transparent
 * densification on first non-zero write), so RSS scales with LIVE
 * data and untouched crossbars cost almost nothing. Both are
 * bit-identical by construction (dense is the parity oracle); they
 * differ only in memory footprint and in the replay fast-path that
 * skips absent blocks.
 */
enum class XbarStorage : uint8_t
{
    Dense = 0,
    Paged
};

const char *xbarStorageName(XbarStorage s);

/**
 * Shard transport behind the SimulatorGroup seam (sim/transport.hpp).
 *
 * Inproc (the default) is the classic in-process fan-out: sub-device
 * Simulators are owned directly and called through virtual dispatch.
 * Socket forks one shard worker PROCESS per sub-device and drives it
 * over a Unix-domain socket with length-prefixed CRC32-framed
 * messages: micro-op batches, content-addressed BatchTrace wire
 * images (each frozen trace crosses the wire once per worker),
 * boundary-Move exchanges, bulk gather/scatter payloads, Stats
 * collection and checkpoint/restore all go over the protocol — the
 * porting surface for cross-host fleets. Results, state and
 * architectural Stats are bit-identical across transports
 * (tests/test_transport.cpp).
 */
enum class TransportKind : uint8_t
{
    Inproc = 0,
    Socket
};

const char *transportKindName(TransportKind t);

/** Simulator execution-engine selection knob. */
struct EngineConfig
{
    EngineKind kind = EngineKind::Serial;
    /** Worker threads for Sharded (0 = hardware concurrency). */
    uint32_t threads = 0;
    /**
     * Asynchronous pipelined execution (sim/pipeline.hpp): submitted
     * batches are decoded into segment traces on the caller thread and
     * replayed by a dedicated consumer thread, overlapping driver
     * translation of batch k+1 with replay of batch k. Off by default;
     * `performBatch` stays synchronous either way, and reads, host
     * readback, stats queries and engine swaps drain the pipeline.
     */
    bool pipeline = false;
    /**
     * Driver-level trace cache (sim/batch_trace.hpp): on a stream-
     * cache hit the driver submits a shared pre-built, fusion-
     * optimised BatchTrace instead of re-translating the memoised
     * micro-op stream — decode and optimise once per instruction
     * signature, replay forever. On by default; Device forwards the
     * flag to its Driver. Fused+cached replay is bit-identical to
     * fresh translation on every engine (test_engine_parity,
     * test_trace_fusion).
     */
    bool traceCache = true;
    /**
     * Number of sub-devices one logical Device shards its crossbar
     * space across (sim/device_group.hpp): the crossbar array is cut
     * into equal contiguous slices at 4-ary H-tree group boundaries
     * and each slice is simulated by an independent Simulator with its
     * own engine (and pipeline queue when enabled). Must be a power of
     * two; clamped to the geometry's crossbar count at construction.
     * 1 (the default) is the classic monolithic device. The sharded
     * engine's thread budget (@ref threads) applies to the LOGICAL
     * device and is divided across the sub-device pools.
     */
    uint32_t devices = 1;
    /**
     * Pin the sharded engine's pool workers to distinct host cores
     * (pthread_setaffinity_np; silently a no-op on platforms without
     * it). Off by default — pinning helps steady-state NUMA locality
     * but hurts on oversubscribed hosts.
     */
    bool affinity = false;
    /**
     * Crossbar state representation of every sub-device simulator.
     * Paged (the default) allocates column blocks on first non-zero
     * write, so host RSS tracks live data instead of geometry; Dense
     * is the flat-slab parity oracle the CI matrix keeps honest.
     * Selecting one over the other never changes results, state
     * checksums or architectural statistics (test_crossbar,
     * test_geometry_sweep storage parity).
     */
    XbarStorage storage = XbarStorage::Paged;
    /**
     * Bulk host I/O (sim/bulk_io.hpp): tensor readback/upload moves
     * whole row blocks through the crossbars' 64x64 bit-transpose
     * gather/scatter kernels with ONE pipeline drain per transfer,
     * instead of one ReadInstr/WriteInstr dispatch (and one drain)
     * per element. On by default; Device forwards the flag to its
     * Driver. The element-wise path stays the parity oracle: both
     * paths produce bit-identical values AND bit-identical
     * architectural Stats (test_bulk_io).
     */
    bool bulkIo = true;
    /**
     * Compiled trace replay (sim/replay_program.hpp): when a
     * BatchTrace is frozen into the trace cache, each segment is
     * additionally lowered into a flat ReplayProgram — row-mask
     * handles resolved to arena offsets, consecutive LogicH ops under
     * one mask merged into multi-section passes, stripes and LogicV
     * runs pre-chunked, per-crossbar Stats charges precomputed — and
     * replay dispatches into storage- and mask-specialized executors
     * instead of the per-op interpreter. On by default; the
     * interpreter stays live as the parity oracle (and serves the
     * uncached one-shot pipeline path either way). Bit-identical
     * state and architectural Stats on both settings
     * (test_replay_program).
     */
    bool compiledReplay = true;
    /**
     * Deterministic fault injection (sim/fault.hpp): a colon-
     * separated "key=value" spec, e.g. "seed=7:flip=25:stuck=2:
     * fail=3:poison=5:dev=1", parsed and validated by
     * FaultSpec::parse at device construction (a typo throws, it
     * never silently runs un-faulted). Empty (the default) disables
     * injection. Faults alone are INJECTED but not DETECTED — pair
     * with @ref verifyState for the detect-and-recover path, or
     * leave it off to exercise the sticky-error contract.
     */
    std::string faults;
    /**
     * Per-crossbar state checksums verified at batch and drain
     * points (sim/simulator.hpp), with journaled retry-with-restore
     * recovery in Device on detection. Off by default: the verify
     * pass walks live blocks, so it costs O(resident data) per
     * batch.
     */
    bool verifyState = false;
    /**
     * Shard transport of the SimulatorGroup (PYPIM_TRANSPORT):
     * Inproc (the default) runs sub-devices in-process; Socket runs
     * each sub-device in a forked worker process behind the framed
     * wire protocol of sim/transport.hpp. The worker count is
     * @ref devices — the transport shards exactly the crossbar slices
     * the in-process group would.
     */
    TransportKind transport = TransportKind::Inproc;

    static EngineConfig serial() { return {}; }

    static EngineConfig
    sharded(uint32_t threads = 0)
    {
        EngineConfig c;
        c.kind = EngineKind::Sharded;
        c.threads = threads;
        return c;
    }

    static EngineConfig
    trace()
    {
        EngineConfig c;
        c.kind = EngineKind::Trace;
        return c;
    }

    /** Copy of this config with the pipeline toggled. */
    EngineConfig
    withPipeline(bool on = true) const
    {
        EngineConfig c = *this;
        c.pipeline = on;
        return c;
    }

    /** Copy of this config sharded across @p n sub-devices. */
    EngineConfig
    withDevices(uint32_t n) const
    {
        EngineConfig c = *this;
        c.devices = n;
        return c;
    }

    /** Copy of this config with the given crossbar storage. */
    EngineConfig
    withStorage(XbarStorage s) const
    {
        EngineConfig c = *this;
        c.storage = s;
        return c;
    }

    /** Copy of this config with compiled trace replay toggled. */
    EngineConfig
    withCompiledReplay(bool on) const
    {
        EngineConfig c = *this;
        c.compiledReplay = on;
        return c;
    }

    /** Copy of this config with the given fault-injection spec. */
    EngineConfig
    withFaults(const std::string &spec) const
    {
        EngineConfig c = *this;
        c.faults = spec;
        return c;
    }

    /** Copy of this config with checksum verification toggled. */
    EngineConfig
    withVerifyState(bool on = true) const
    {
        EngineConfig c = *this;
        c.verifyState = on;
        return c;
    }

    /** Copy of this config with the given shard transport. */
    EngineConfig
    withTransport(TransportKind t) const
    {
        EngineConfig c = *this;
        c.transport = t;
        return c;
    }

    /**
     * Engine selection from the environment: PYPIM_ENGINE=serial|
     * sharded|trace, PYPIM_THREADS=N, PYPIM_PIPELINE=on|off,
     * PYPIM_TRACE_CACHE=on|off|1|0, PYPIM_DEVICES=N (power of two),
     * PYPIM_AFFINITY=on|off, PYPIM_XBAR_STORAGE=dense|paged,
     * PYPIM_BULK_IO=on|off|1|0, PYPIM_COMPILED_REPLAY=on|off|1|0,
     * PYPIM_FAULTS=<spec>, PYPIM_VERIFY_STATE=on|off|1|0 and
     * PYPIM_TRANSPORT=inproc|socket (worker count via PYPIM_DEVICES).
     * Unset values fall back to the defaults (serial, synchronous,
     * trace cache on, one device, no pinning, paged storage, inproc
     * transport), so
     * existing callers are unaffected; unrecognised or malformed
     * values throw pypim::Error — a typo must never silently
     * misconfigure the stack.
     */
    static EngineConfig fromEnv();

    /** Worker count after resolving 0 to the hardware concurrency. */
    uint32_t resolvedThreads() const;
};

} // namespace pypim

#endif // PYPIM_COMMON_CONFIG_HPP
