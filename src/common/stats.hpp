/**
 * @file
 * Execution statistics collected by the simulator and the driver.
 *
 * The simulator counts micro-operations by type and accumulates the
 * cycle cost of each (1 cycle per broadcast op; H-tree moves may take
 * several cycles, see sim/htree.hpp). The paper's Figure 13 derives
 * throughput from exactly these counters via Eq. (1).
 */
#ifndef PYPIM_COMMON_STATS_HPP
#define PYPIM_COMMON_STATS_HPP

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace pypim
{

/** Micro-operation families (paper Fig. 5). */
enum class OpClass : uint8_t
{
    CrossbarMask = 0,
    RowMask,
    Read,
    Write,
    LogicH,
    LogicV,
    Move,
    NumClasses
};

/** Human-readable name of an OpClass. */
const char *opClassName(OpClass c);

/** Counter block for one execution window. */
struct Stats
{
    static constexpr size_t numClasses =
        static_cast<size_t>(OpClass::NumClasses);

    /** Micro-operations performed, by class. */
    std::array<uint64_t, numClasses> opCount{};
    /** Cycles consumed, by class (moves may cost >1 cycle). */
    std::array<uint64_t, numClasses> cycleCount{};
    /** Logic micro-ops performing NOR/NOT gates. */
    uint64_t logicGates = 0;
    /** Logic micro-ops performing INIT0/INIT1 initialisation. */
    uint64_t logicInits = 0;
    /** Macro-instructions executed by the driver. */
    uint64_t instructions = 0;

    // --- host-side trace-cache / fusion observability ----------------
    // Recorded by the DRIVER (which owns the trace cache), never by
    // the simulator: the simulator's architectural counters stay
    // engine- and cache-independent, which the parity suite checks by
    // exact equality.

    /** Stream-cache hits replayed via a pre-built trace. */
    uint64_t traceCacheHits = 0;
    /** Traces built (decode + fusion ran once for these). */
    uint64_t traceCacheMisses = 0;
    /** Writes eliminated by Write-after-Write fusion. */
    uint64_t fusionWaw = 0;
    /** INIT1 micro-ops merged into a chain peer. */
    uint64_t fusionInitChain = 0;
    /** INIT1 micro-ops window-fused into a following NOR/NOT. */
    uint64_t fusionWindow = 0;
    /** Writes merged into an adjacent-Write partition stripe. */
    uint64_t fusionWriteStripe = 0;

    // --- host-side bulk-I/O observability ----------------------------
    // Also driver-only: the bulk transfer path records the SAME
    // architectural counters as the element-wise loop (the
    // stats-identity invariant, tests/test_bulk_io.cpp), so these
    // count host-side mechanics, not architecture.

    /** Bulk read transfers taken by the gather path. */
    uint64_t bulkReads = 0;
    /** Bulk write transfers taken by the scatter path. */
    uint64_t bulkWrites = 0;
    /** 64-bit words moved through the 64x64 bit transpose. */
    uint64_t ioWordsTransposed = 0;
    /** Pipeline drain points taken by bulk transfers (one per
     *  transfer per sub-device). */
    uint64_t ioDrains = 0;

    // --- host-side fault-tolerance observability ---------------------
    // Recorded by the recovery layer (pim/device + sim/checkpoint),
    // not by the replay loops: like the cache/bulk counters above,
    // the simulator's architectural counters stay fault-independent,
    // which the fault suite checks by exact equality against a
    // fault-free run.

    /** Faults the deterministic injector applied (PYPIM_FAULTS). */
    uint64_t faultsInjected = 0;
    /** Faults caught by checksum verify or replay failure. */
    uint64_t faultsDetected = 0;
    /** Successful restore + journal-replay recoveries. */
    uint64_t recoveries = 0;
    /** Bytes written by Device::checkpoint. */
    uint64_t checkpointBytes = 0;

    // --- host-side shard-transport observability ---------------------
    // Recorded by the socket transport (sim/transport.hpp), never by
    // the workers: the architectural counters stay transport-
    // independent, which the N-process parity suite checks by exact
    // equality against the inproc monolith. All zero under inproc.

    /** Payload + frame bytes sent to shard workers. */
    uint64_t wireBytesTx = 0;
    /** Payload + frame bytes received from shard workers. */
    uint64_t wireBytesRx = 0;
    /** Synchronous request/response round-trips taken. */
    uint64_t wireRoundTrips = 0;
    /** Trace replays served from a worker's signature cache (the
     *  trace image did NOT cross the wire again). */
    uint64_t wireTraceHits = 0;

    /** Record one micro-op of class @p c costing @p cycles cycles. */
    void
    record(OpClass c, uint64_t cycles = 1)
    {
        opCount[static_cast<size_t>(c)] += 1;
        cycleCount[static_cast<size_t>(c)] += cycles;
    }

    /**
     * Record @p n one-cycle micro-ops of class @p c in one counter
     * bump — the replay loops' bulk form (a write stripe applies wn
     * architectural Writes; a compiled pass applies a precomputed op
     * count per crossbar). Equivalent to calling record(c) n times.
     */
    void
    recordN(OpClass c, uint64_t n)
    {
        opCount[static_cast<size_t>(c)] += n;
        cycleCount[static_cast<size_t>(c)] += n;
    }

    /** Total micro-operations across all classes. */
    uint64_t totalOps() const;
    /** Total cycles across all classes. */
    uint64_t totalCycles() const;

    /** Reset all counters to zero. */
    void clear();

    /** this - other, element-wise (for profiling windows). */
    Stats operator-(const Stats &other) const;
    Stats &operator+=(const Stats &other);

    /** Exact equality (engine-parity tests compare whole blocks). */
    bool operator==(const Stats &other) const = default;

    /**
     * Element-wise sum of per-shard counter blocks. The sharded
     * execution engine keeps one Stats per worker shard so the hot
     * path records without synchronisation; merge when reporting.
     */
    static Stats merged(std::span<const Stats> shards);

    /** Multi-line human-readable summary. */
    std::string summary() const;
};

} // namespace pypim

#endif // PYPIM_COMMON_STATS_HPP
