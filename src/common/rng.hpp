/**
 * @file
 * Deterministic random data generation for tests and benchmarks.
 *
 * The paper evaluates correctness and performance on randomly-generated
 * tensors (artifact §C-4). A fixed-seed xoshiro-style generator keeps
 * test failures reproducible.
 */
#ifndef PYPIM_COMMON_RNG_HPP
#define PYPIM_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace pypim
{

/** Deterministic pseudo-random source for tests/benches. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : gen_(seed) {}

    /** Uniform 32-bit word. */
    uint32_t
    word()
    {
        return static_cast<uint32_t>(gen_());
    }

    /** Uniform int32 over the full range. */
    int32_t
    int32()
    {
        return static_cast<int32_t>(word());
    }

    /** Uniform int32 in [lo, hi] inclusive. */
    int32_t
    int32In(int32_t lo, int32_t hi)
    {
        std::uniform_int_distribution<int64_t> d(lo, hi);
        return static_cast<int32_t>(d(gen_));
    }

    /**
     * Random float32 with uniformly random bit pattern — exercises
     * subnormals, infinities and NaNs as well as normal values.
     */
    float
    rawFloat()
    {
        union { uint32_t u; float f; } v;
        v.u = word();
        return v.f;
    }

    /** Random finite float32 drawn uniformly from [lo, hi]. */
    float
    floatIn(float lo, float hi)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        return d(gen_);
    }

    /** Vector of uniform int32 values. */
    std::vector<int32_t>
    int32Vec(size_t n)
    {
        std::vector<int32_t> v(n);
        for (auto &x : v)
            x = int32();
        return v;
    }

    /** Vector of finite floats in [lo, hi]. */
    std::vector<float>
    floatVec(size_t n, float lo, float hi)
    {
        std::vector<float> v(n);
        for (auto &x : v)
            x = floatIn(lo, hi);
        return v;
    }

    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace pypim

#endif // PYPIM_COMMON_RNG_HPP
