#include "common/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace pypim
{

void
Geometry::validate() const
{
    fatalIf(!isPow2(rows), "geometry: rows must be a power of two");
    fatalIf(!isPow2(cols), "geometry: cols must be a power of two");
    fatalIf(!isPow2(partitions),
            "geometry: partitions must be a power of two");
    fatalIf(cols % partitions != 0,
            "geometry: cols must be divisible by partitions");
    fatalIf(wordBits != partitions,
            "geometry: wordBits must equal partitions (paper N); "
            "got wordBits=" + std::to_string(wordBits) +
            " partitions=" + std::to_string(partitions));
    fatalIf(!isPow4(numCrossbars),
            "geometry: numCrossbars must be a power of four "
            "(H-tree arity)");
    fatalIf(userRegs == 0 || userRegs > slots(),
            "geometry: userRegs must be in [1, cols/partitions]");
    fatalIf(scratchSlots() < 4,
            "geometry: at least 4 scratch slots are required by the "
            "host driver");
    fatalIf(clockHz == 0, "geometry: clockHz must be nonzero");
    fatalIf(rows < 2, "geometry: at least two rows are required");
    // Micro-op bit-field capacities (uarch/microop.hpp fmt constants).
    fatalIf(cols > 1024,
            "geometry: cols > 1024 exceeds the 10-bit column fields "
            "of the micro-op format");
    fatalIf(rows > 65536,
            "geometry: rows > 65536 exceeds the 16-bit row fields");
    fatalIf(numCrossbars > 65536,
            "geometry: numCrossbars > 65536 exceeds the 16-bit "
            "crossbar mask fields");
    fatalIf(partitions > 64,
            "geometry: partitions > 64 exceeds the expansion buffers");
    fatalIf(slots() > 64,
            "geometry: more than 64 register slots exceeds the 6-bit "
            "index fields");
}

Geometry
tableIIIGeometry()
{
    Geometry g;
    g.rows = 1024;
    g.cols = 1024;
    g.partitions = 32;
    g.wordBits = 32;
    g.numCrossbars = 65536;  // 8 GB / (1024 * 1024 / 8) bytes
    g.clockHz = 300'000'000;
    g.userRegs = 14;
    return g;
}

const char *
engineKindName(EngineKind k)
{
    switch (k) {
      case EngineKind::Serial:  return "serial";
      case EngineKind::Sharded: return "sharded";
      case EngineKind::Trace:   return "trace";
      default:                  return "unknown";
    }
}

const char *
xbarStorageName(XbarStorage s)
{
    switch (s) {
      case XbarStorage::Dense: return "dense";
      case XbarStorage::Paged: return "paged";
      default:                 return "unknown";
    }
}

const char *
transportKindName(TransportKind t)
{
    switch (t) {
      case TransportKind::Inproc: return "inproc";
      case TransportKind::Socket: return "socket";
      default:                    return "unknown";
    }
}

namespace
{

/**
 * Strict decimal parse of a count-valued environment variable:
 * rejects empty strings, trailing junk ("8x"), signs, and values
 * outside [min, max] with a clear Error naming the variable — a
 * malformed knob must never silently misconfigure the stack (atol
 * would read "abc" as 0 and "12abc" as 12).
 */
uint32_t
parseCountEnv(const char *name, const char *value, uint32_t minV,
              uint32_t maxV)
{
    const std::string s(value);
    errno = 0;
    char *end = nullptr;
    const long long n = std::strtoll(s.c_str(), &end, 10);
    // First character must be a digit: strtoll itself skips leading
    // whitespace (any kind) and accepts signs, both of which the
    // strictness contract rejects.
    fatalIf(s.empty() ||
                !std::isdigit(static_cast<unsigned char>(s[0])) ||
                end != s.c_str() + s.size() || errno == ERANGE ||
                n < 0,
            std::string(name) + ": '" + s +
                "' is not a non-negative integer");
    fatalIf(n < static_cast<long long>(minV) ||
                n > static_cast<long long>(maxV),
            std::string(name) + ": " + s + " out of range [" +
                std::to_string(minV) + ", " + std::to_string(maxV) +
                "]");
    return static_cast<uint32_t>(n);
}

/** Strict on|off|1|0 parse of a boolean environment variable. */
bool
parseSwitchEnv(const char *name, const char *value, bool fallback)
{
    const std::string s(value);
    if (s == "on" || s == "1")
        return true;
    if (s == "off" || s == "0")
        return false;
    fatalIf(!s.empty(), std::string(name) + ": unknown value '" + s +
                            "' (expected on|off)");
    return fallback;
}

} // namespace

EngineConfig
EngineConfig::fromEnv()
{
    EngineConfig c;
    if (const char *e = std::getenv("PYPIM_ENGINE")) {
        const std::string s(e);
        if (s == "sharded")
            c.kind = EngineKind::Sharded;
        else if (s == "trace")
            c.kind = EngineKind::Trace;
        else if (!s.empty() && s != "serial")
            fatal("PYPIM_ENGINE: unknown engine '" + s +
                  "' (expected serial|sharded|trace)");
    }
    if (const char *t = std::getenv("PYPIM_THREADS"))
        c.threads = parseCountEnv("PYPIM_THREADS", t, 0, 1u << 20);
    if (const char *p = std::getenv("PYPIM_PIPELINE"))
        c.pipeline = parseSwitchEnv("PYPIM_PIPELINE", p, c.pipeline);
    if (const char *tc = std::getenv("PYPIM_TRACE_CACHE"))
        c.traceCache =
            parseSwitchEnv("PYPIM_TRACE_CACHE", tc, c.traceCache);
    if (const char *d = std::getenv("PYPIM_DEVICES")) {
        c.devices = parseCountEnv("PYPIM_DEVICES", d, 1, 1u << 16);
        fatalIf(!isPow2(c.devices),
                "PYPIM_DEVICES: " + std::string(d) +
                    " is not a power of two (sub-devices cut the "
                    "crossbar space at H-tree group boundaries)");
    }
    if (const char *a = std::getenv("PYPIM_AFFINITY"))
        c.affinity = parseSwitchEnv("PYPIM_AFFINITY", a, c.affinity);
    if (const char *st = std::getenv("PYPIM_XBAR_STORAGE")) {
        const std::string s(st);
        if (s == "dense")
            c.storage = XbarStorage::Dense;
        else if (s == "paged")
            c.storage = XbarStorage::Paged;
        else if (!s.empty())
            fatal("PYPIM_XBAR_STORAGE: unknown value '" + s +
                  "' (expected dense|paged)");
    }
    if (const char *b = std::getenv("PYPIM_BULK_IO"))
        c.bulkIo = parseSwitchEnv("PYPIM_BULK_IO", b, c.bulkIo);
    if (const char *cr = std::getenv("PYPIM_COMPILED_REPLAY"))
        c.compiledReplay = parseSwitchEnv("PYPIM_COMPILED_REPLAY", cr,
                                          c.compiledReplay);
    // Validated by FaultSpec::parse at device-group construction, so
    // the error names the bad key/value rather than the variable.
    if (const char *f = std::getenv("PYPIM_FAULTS"))
        c.faults = f;
    if (const char *vs = std::getenv("PYPIM_VERIFY_STATE"))
        c.verifyState =
            parseSwitchEnv("PYPIM_VERIFY_STATE", vs, c.verifyState);
    if (const char *tr = std::getenv("PYPIM_TRANSPORT")) {
        const std::string s(tr);
        if (s == "socket")
            c.transport = TransportKind::Socket;
        else if (s != "inproc")
            fatal("PYPIM_TRANSPORT: unknown transport '" + s +
                  "' (expected inproc|socket)");
    }
    return c;
}

uint32_t
EngineConfig::resolvedThreads() const
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

Geometry
testGeometry()
{
    Geometry g;
    g.rows = 64;
    g.cols = 1024;
    g.partitions = 32;
    g.wordBits = 32;
    g.numCrossbars = 4;
    g.clockHz = 300'000'000;
    g.userRegs = 14;
    return g;
}

} // namespace pypim
