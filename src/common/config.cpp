#include "common/config.hpp"

#include <cstdlib>
#include <string>
#include <thread>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace pypim
{

void
Geometry::validate() const
{
    fatalIf(!isPow2(rows), "geometry: rows must be a power of two");
    fatalIf(!isPow2(cols), "geometry: cols must be a power of two");
    fatalIf(!isPow2(partitions),
            "geometry: partitions must be a power of two");
    fatalIf(cols % partitions != 0,
            "geometry: cols must be divisible by partitions");
    fatalIf(wordBits != partitions,
            "geometry: wordBits must equal partitions (paper N); "
            "got wordBits=" + std::to_string(wordBits) +
            " partitions=" + std::to_string(partitions));
    fatalIf(!isPow4(numCrossbars),
            "geometry: numCrossbars must be a power of four "
            "(H-tree arity)");
    fatalIf(userRegs == 0 || userRegs > slots(),
            "geometry: userRegs must be in [1, cols/partitions]");
    fatalIf(scratchSlots() < 4,
            "geometry: at least 4 scratch slots are required by the "
            "host driver");
    fatalIf(clockHz == 0, "geometry: clockHz must be nonzero");
    fatalIf(rows < 2, "geometry: at least two rows are required");
    // Micro-op bit-field capacities (uarch/microop.hpp fmt constants).
    fatalIf(cols > 1024,
            "geometry: cols > 1024 exceeds the 10-bit column fields "
            "of the micro-op format");
    fatalIf(rows > 65536,
            "geometry: rows > 65536 exceeds the 16-bit row fields");
    fatalIf(numCrossbars > 65536,
            "geometry: numCrossbars > 65536 exceeds the 16-bit "
            "crossbar mask fields");
    fatalIf(partitions > 64,
            "geometry: partitions > 64 exceeds the expansion buffers");
    fatalIf(slots() > 64,
            "geometry: more than 64 register slots exceeds the 6-bit "
            "index fields");
}

Geometry
tableIIIGeometry()
{
    Geometry g;
    g.rows = 1024;
    g.cols = 1024;
    g.partitions = 32;
    g.wordBits = 32;
    g.numCrossbars = 65536;  // 8 GB / (1024 * 1024 / 8) bytes
    g.clockHz = 300'000'000;
    g.userRegs = 14;
    return g;
}

const char *
engineKindName(EngineKind k)
{
    switch (k) {
      case EngineKind::Serial:  return "serial";
      case EngineKind::Sharded: return "sharded";
      case EngineKind::Trace:   return "trace";
      default:                  return "unknown";
    }
}

EngineConfig
EngineConfig::fromEnv()
{
    EngineConfig c;
    if (const char *e = std::getenv("PYPIM_ENGINE")) {
        const std::string s(e);
        if (s == "sharded")
            c.kind = EngineKind::Sharded;
        else if (s == "trace")
            c.kind = EngineKind::Trace;
        else if (!s.empty() && s != "serial")
            fatal("PYPIM_ENGINE: unknown engine '" + s +
                  "' (expected serial|sharded|trace)");
    }
    if (const char *t = std::getenv("PYPIM_THREADS")) {
        const long n = std::atol(t);
        fatalIf(n < 0, "PYPIM_THREADS: must be >= 0");
        c.threads = static_cast<uint32_t>(n);
    }
    if (const char *p = std::getenv("PYPIM_PIPELINE")) {
        const std::string s(p);
        if (s == "on" || s == "1")
            c.pipeline = true;
        else if (!s.empty() && s != "off" && s != "0")
            fatal("PYPIM_PIPELINE: unknown value '" + s +
                  "' (expected on|off)");
    }
    if (const char *tc = std::getenv("PYPIM_TRACE_CACHE")) {
        const std::string s(tc);
        if (s == "off" || s == "0")
            c.traceCache = false;
        else if (!s.empty() && s != "on" && s != "1")
            fatal("PYPIM_TRACE_CACHE: unknown value '" + s +
                  "' (expected on|off)");
    }
    return c;
}

uint32_t
EngineConfig::resolvedThreads() const
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

Geometry
testGeometry()
{
    Geometry g;
    g.rows = 64;
    g.cols = 1024;
    g.partitions = 32;
    g.wordBits = 32;
    g.numCrossbars = 4;
    g.clockHz = 300'000'000;
    g.userRegs = 14;
    return g;
}

} // namespace pypim
