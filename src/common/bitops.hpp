/**
 * @file
 * Small bit-manipulation helpers shared across the stack.
 */
#ifndef PYPIM_COMMON_BITOPS_HPP
#define PYPIM_COMMON_BITOPS_HPP

#include <bit>
#include <cstdint>

namespace pypim
{

/** True iff @p x is a power of two (zero is not). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** True iff @p x is a power of four (zero is not). */
constexpr bool
isPow4(uint64_t x)
{
    return isPow2(x) && (std::countr_zero(x) % 2 == 0);
}

/** floor(log2(x)); @p x must be nonzero. */
constexpr uint32_t
log2Floor(uint64_t x)
{
    return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

/** ceil(log2(x)); @p x must be nonzero. */
constexpr uint32_t
log2Ceil(uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/** ceil(a / b) for nonzero b. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Extract the bit field [lo, lo+width) from @p word. */
constexpr uint64_t
bitsGet(uint64_t word, uint32_t lo, uint32_t width)
{
    return (word >> lo) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

/**
 * Insert @p value into bit field [lo, lo+width) of @p word.
 * @p value must fit in @p width bits (checked by the micro-op encoder).
 */
constexpr uint64_t
bitsSet(uint64_t word, uint32_t lo, uint32_t width, uint64_t value)
{
    const uint64_t mask =
        ((width >= 64) ? ~0ull : ((1ull << width) - 1)) << lo;
    return (word & ~mask) | ((value << lo) & mask);
}

/** True iff @p value fits in @p width bits. */
constexpr bool
fitsIn(uint64_t value, uint32_t width)
{
    return width >= 64 || value < (1ull << width);
}

} // namespace pypim

#endif // PYPIM_COMMON_BITOPS_HPP
