#include "common/error.hpp"

namespace pypim
{

void
fatal(const std::string &msg)
{
    throw Error("pypim: " + msg);
}

void
panic(const std::string &msg)
{
    throw InternalError("pypim internal error: " + msg);
}

} // namespace pypim
