/**
 * @file
 * Error reporting for the PyPIM stack.
 *
 * Two classes of failure, following the gem5 fatal/panic convention:
 *
 *  - pypim::Error (thrown by pypim::fatal): the caller misused the
 *    library (bad configuration, invalid arguments, out-of-memory in
 *    the PIM allocator, ...). Recoverable by the caller.
 *  - pypim::InternalError (thrown by pypim::panic): an internal
 *    invariant was violated — a bug in PyPIM itself, e.g. the driver
 *    emitted a malformed micro-operation. Never the user's fault.
 */
#ifndef PYPIM_COMMON_ERROR_HPP
#define PYPIM_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace pypim
{

/** Exception for user-caused errors (bad arguments, configuration). */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception for internal invariant violations (PyPIM bugs). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Throw an Error with a printf-free formatted message. */
[[noreturn]] void fatal(const std::string &msg);

/** Throw an InternalError; use for conditions that indicate a bug. */
[[noreturn]] void panic(const std::string &msg);

/** Throw an Error unless @p cond holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Throw an InternalError unless @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace pypim

#endif // PYPIM_COMMON_ERROR_HPP
