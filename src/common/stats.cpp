#include "common/stats.hpp"

#include <sstream>

namespace pypim
{

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::CrossbarMask: return "crossbar_mask";
      case OpClass::RowMask:      return "row_mask";
      case OpClass::Read:         return "read";
      case OpClass::Write:        return "write";
      case OpClass::LogicH:       return "logic_h";
      case OpClass::LogicV:       return "logic_v";
      case OpClass::Move:         return "move";
      default:                    return "unknown";
    }
}

uint64_t
Stats::totalOps() const
{
    uint64_t sum = 0;
    for (auto v : opCount)
        sum += v;
    return sum;
}

uint64_t
Stats::totalCycles() const
{
    uint64_t sum = 0;
    for (auto v : cycleCount)
        sum += v;
    return sum;
}

void
Stats::clear()
{
    opCount.fill(0);
    cycleCount.fill(0);
    logicGates = 0;
    logicInits = 0;
    instructions = 0;
    traceCacheHits = 0;
    traceCacheMisses = 0;
    fusionWaw = 0;
    fusionInitChain = 0;
    fusionWindow = 0;
    fusionWriteStripe = 0;
    bulkReads = 0;
    bulkWrites = 0;
    ioWordsTransposed = 0;
    ioDrains = 0;
    faultsInjected = 0;
    faultsDetected = 0;
    recoveries = 0;
    checkpointBytes = 0;
    wireBytesTx = 0;
    wireBytesRx = 0;
    wireRoundTrips = 0;
    wireTraceHits = 0;
}

Stats
Stats::operator-(const Stats &other) const
{
    Stats out;
    for (size_t i = 0; i < numClasses; ++i) {
        out.opCount[i] = opCount[i] - other.opCount[i];
        out.cycleCount[i] = cycleCount[i] - other.cycleCount[i];
    }
    out.logicGates = logicGates - other.logicGates;
    out.logicInits = logicInits - other.logicInits;
    out.instructions = instructions - other.instructions;
    out.traceCacheHits = traceCacheHits - other.traceCacheHits;
    out.traceCacheMisses = traceCacheMisses - other.traceCacheMisses;
    out.fusionWaw = fusionWaw - other.fusionWaw;
    out.fusionInitChain = fusionInitChain - other.fusionInitChain;
    out.fusionWindow = fusionWindow - other.fusionWindow;
    out.fusionWriteStripe =
        fusionWriteStripe - other.fusionWriteStripe;
    out.bulkReads = bulkReads - other.bulkReads;
    out.bulkWrites = bulkWrites - other.bulkWrites;
    out.ioWordsTransposed = ioWordsTransposed - other.ioWordsTransposed;
    out.ioDrains = ioDrains - other.ioDrains;
    out.faultsInjected = faultsInjected - other.faultsInjected;
    out.faultsDetected = faultsDetected - other.faultsDetected;
    out.recoveries = recoveries - other.recoveries;
    out.checkpointBytes = checkpointBytes - other.checkpointBytes;
    out.wireBytesTx = wireBytesTx - other.wireBytesTx;
    out.wireBytesRx = wireBytesRx - other.wireBytesRx;
    out.wireRoundTrips = wireRoundTrips - other.wireRoundTrips;
    out.wireTraceHits = wireTraceHits - other.wireTraceHits;
    return out;
}

Stats &
Stats::operator+=(const Stats &other)
{
    for (size_t i = 0; i < numClasses; ++i) {
        opCount[i] += other.opCount[i];
        cycleCount[i] += other.cycleCount[i];
    }
    logicGates += other.logicGates;
    logicInits += other.logicInits;
    instructions += other.instructions;
    traceCacheHits += other.traceCacheHits;
    traceCacheMisses += other.traceCacheMisses;
    fusionWaw += other.fusionWaw;
    fusionInitChain += other.fusionInitChain;
    fusionWindow += other.fusionWindow;
    fusionWriteStripe += other.fusionWriteStripe;
    bulkReads += other.bulkReads;
    bulkWrites += other.bulkWrites;
    ioWordsTransposed += other.ioWordsTransposed;
    ioDrains += other.ioDrains;
    faultsInjected += other.faultsInjected;
    faultsDetected += other.faultsDetected;
    recoveries += other.recoveries;
    checkpointBytes += other.checkpointBytes;
    wireBytesTx += other.wireBytesTx;
    wireBytesRx += other.wireBytesRx;
    wireRoundTrips += other.wireRoundTrips;
    wireTraceHits += other.wireTraceHits;
    return *this;
}

Stats
Stats::merged(std::span<const Stats> shards)
{
    Stats out;
    for (const Stats &s : shards)
        out += s;
    return out;
}

std::string
Stats::summary() const
{
    std::ostringstream os;
    os << "micro-ops by class (ops / cycles):\n";
    for (size_t i = 0; i < numClasses; ++i) {
        if (opCount[i] == 0)
            continue;
        os << "  " << opClassName(static_cast<OpClass>(i)) << ": "
           << opCount[i] << " / " << cycleCount[i] << "\n";
    }
    os << "  total: " << totalOps() << " / " << totalCycles() << "\n";
    os << "  logic gates / inits: " << logicGates << " / "
       << logicInits << "\n";
    os << "  macro-instructions: " << instructions << "\n";
    if (traceCacheHits || traceCacheMisses)
        os << "  trace cache: " << traceCacheHits << " hits / "
           << traceCacheMisses << " misses\n";
    if (fusionWaw || fusionInitChain || fusionWindow ||
        fusionWriteStripe)
        os << "  fusion eliminated: " << fusionWaw << " WAW writes, "
           << fusionInitChain << " INIT-chain ops, " << fusionWindow
           << " window INIT+gate ops, " << fusionWriteStripe
           << " stripe-merged writes\n";
    if (bulkReads || bulkWrites)
        os << "  bulk I/O: " << bulkReads << " reads / " << bulkWrites
           << " writes, " << ioWordsTransposed << " words transposed, "
           << ioDrains << " drains\n";
    if (faultsInjected || faultsDetected || recoveries ||
        checkpointBytes)
        os << "  fault tolerance: " << faultsInjected << " injected / "
           << faultsDetected << " detected, " << recoveries
           << " recoveries, " << checkpointBytes
           << " checkpoint bytes\n";
    if (wireBytesTx || wireBytesRx || wireRoundTrips || wireTraceHits)
        os << "  shard transport: " << wireBytesTx << " B tx / "
           << wireBytesRx << " B rx, " << wireRoundTrips
           << " round-trips, " << wireTraceHits
           << " trace wire hits\n";
    return os.str();
}

} // namespace pypim
