/**
 * @file
 * Persistent worker pool for the sharded execution engine.
 *
 * Batch execution dispatches one task per shard many thousands of
 * times per second, so workers must be persistent (spawning threads
 * per batch would dwarf the simulation work). The pool spawns
 * size()-1 workers and the calling thread executes its own share
 * inside parallelFor, so a pool of size 1 degenerates to an inline
 * loop with zero synchronisation — which is how the sharded engine
 * stays usable (and testable) on single-core hosts.
 */
#ifndef PYPIM_SIM_THREAD_POOL_HPP
#define PYPIM_SIM_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pypim
{

/** Fixed-size fork-join pool with a work-stealing parallel-for. */
class ThreadPool
{
  public:
    /**
     * @p threads is the TOTAL parallelism including the calling
     * thread; the pool spawns threads-1 workers. 0 is clamped to 1.
     * @p pinWorkers pins each spawned worker to a distinct host core
     * (worker i to core (pinBase + i + 1) mod hardware_concurrency;
     * the calling thread is never pinned — it belongs to the
     * application). @p pinBase staggers multiple pools in one process
     * onto disjoint cores (the multi-device sharded engine passes its
     * sub-device offset; see sharded_engine.cpp). A no-op on
     * platforms without pthread_setaffinity_np; whether pinning
     * actually took is reported by pinnedWorkers().
     */
    explicit ThreadPool(uint32_t threads, bool pinWorkers = false,
                        uint32_t pinBase = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + calling thread). */
    uint32_t size() const { return nThreads_; }

    /** Workers successfully pinned to a core (0 when not requested
     *  or unsupported on this platform). */
    uint32_t pinnedWorkers() const { return pinned_; }

    /**
     * Invoke fn(i) for every i in [0, tasks), distributing indices
     * over the workers and the calling thread; returns when all
     * invocations completed. The first exception thrown by any fn is
     * rethrown here (remaining tasks still run to completion).
     * Not reentrant: one parallelFor at a time per pool.
     */
    void parallelFor(uint32_t tasks,
                     const std::function<void(uint32_t)> &fn);

  private:
    void workerLoop();
    void runTasks();

    const uint32_t nThreads_;
    uint32_t pinned_ = 0;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    uint64_t generation_ = 0;
    uint32_t tasks_ = 0;
    uint32_t busyWorkers_ = 0;
    const std::function<void(uint32_t)> *fn_ = nullptr;
    std::atomic<uint32_t> next_{0};
    std::exception_ptr error_;
    bool stop_ = false;
};

} // namespace pypim

#endif // PYPIM_SIM_THREAD_POOL_HPP
