#include "sim/simulator.hpp"

#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/fault.hpp"
#include "sim/replay_program.hpp"

namespace pypim
{

Simulator::Simulator(const Geometry &geo, const EngineConfig &ec)
    : Simulator(geo, ec, 0, geo.numCrossbars)
{
}

Simulator::Simulator(const Geometry &geo, const EngineConfig &ec,
                     uint32_t sliceLo, uint32_t sliceCount)
    : geo_(geo),
      sliceLo_(sliceLo),
      htree_(geo.numCrossbars)
{
    geo_.validate();
    fatalIf(sliceCount == 0 || sliceCount > geo_.numCrossbars ||
                sliceLo > geo_.numCrossbars - sliceCount,
            "simulator: crossbar slice [" + std::to_string(sliceLo) +
                ", " + std::to_string(sliceLo + sliceCount) +
                ") outside the geometry");
    xbs_.reserve(sliceCount);
    for (uint32_t i = 0; i < sliceCount; ++i)
        xbs_.emplace_back(geo_, ec.storage);
    mask_.reset(geo_);
    compiledReplay_ = ec.compiledReplay;
    engine_ =
        makeEngine(ec, geo_, xbs_, sliceLo_, htree_, mask_, stats_);
    if (ec.pipeline)
        makePipeline();
}

void
Simulator::makePipeline()
{
    pipeline_ = std::make_unique<SimulatorPipeline>(
        geo_, htree_, mask_, stats_, engine_,
        [this] { verifyChecksums(); }, [this] { postReplayHook(); });
    // Satellite contract enforcement: snapshot()/restore() panic if a
    // replay is in flight instead of silently racing it.
    for (Crossbar &xb : xbs_)
        xb.setBusyFlag(&pipeline_->busyFlag());
}

Simulator::~Simulator() = default;

void
Simulator::checkOwned(uint32_t i) const
{
    fatalIf(!ownsCrossbar(i),
            "crossbar " + std::to_string(i) +
                " is outside this simulator's slice [" +
                std::to_string(sliceLo_) + ", " +
                std::to_string(sliceLo_ + sliceCount()) +
                "); route through the owning sub-device "
                "(SimulatorGroup::crossbar)");
}

StorageGauges
Simulator::storageGauges() const
{
    drainPipeline();
    StorageGauges g;
    for (const Crossbar &xb : xbs_)
        g += xb.storageGauges();
    return g;
}

uint64_t
Simulator::compactStorage()
{
    drainPipeline();
    uint64_t elided = 0;
    for (Crossbar &xb : xbs_)
        elided += xb.compact();
    return elided;
}

void
Simulator::setEngine(const EngineConfig &ec)
{
    // The crossbar state (and with it the storage representation)
    // survives the swap: ec.storage is applied at construction only.
    drainPipeline();
    compiledReplay_ = ec.compiledReplay;
    engine_ =
        makeEngine(ec, geo_, xbs_, sliceLo_, htree_, mask_, stats_);
    if (ec.pipeline && !pipeline_) {
        makePipeline();
    } else if (!ec.pipeline) {
        pipeline_.reset();
        for (Crossbar &xb : xbs_)
            xb.setBusyFlag(nullptr);
    }
}

// --- fault-tolerance plumbing -------------------------------------------

void
Simulator::verifyChecksums()
{
    if (!verifyState_)
        return;
    if (checksumsStale_) {
        // The host mutated state directly (non-const crossbar());
        // adopt what it left rather than flagging it as corruption.
        blessChecksums();
        return;
    }
    for (size_t i = 0; i < xbs_.size(); ++i) {
        if (xbs_[i].stateChecksum() != checksums_[i])
            throw StateCorruption(
                "state corruption detected: crossbar " +
                std::to_string(sliceLo_ + i) +
                " diverged from its blessed checksum");
    }
}

void
Simulator::blessChecksums()
{
    checksums_.resize(xbs_.size());
    for (size_t i = 0; i < xbs_.size(); ++i)
        checksums_[i] = xbs_[i].stateChecksum();
    checksumsStale_ = false;
}

void
Simulator::postReplayHook()
{
    if (verifyState_)
        blessChecksums();
    if (injector_) {
        injector_->maybeFail();
        injector_->corrupt(xbs_);
    }
}

template <typename Fn>
void
Simulator::replayGuarded(Fn &&fn)
{
    // The synchronous mirror of the pipeline consumer's hook path.
    verifyChecksums();
    try {
        fn();
    } catch (...) {
        // A malformed op threw after its valid prefix replayed: that
        // prefix is legitimate state, not corruption — bless it so
        // the error stays a user error at the next verify point.
        if (verifyState_)
            blessChecksums();
        throw;
    }
    postReplayHook();
}

void
Simulator::setVerifyState(bool on)
{
    drainPipeline();
    verifyState_ = on;
    if (on)
        blessChecksums();
    else
        checksums_.clear();
}

void
Simulator::setFaultInjector(std::shared_ptr<FaultInjector> inj)
{
    drainPipeline();
    injector_ = std::move(inj);
}

void
Simulator::clearPipelineError()
{
    if (pipeline_)
        pipeline_->clearError();
}

void
Simulator::restoreArchState(const Range &maskXb, const Range &maskRow,
                            const Stats &stats)
{
    drainPipeline();
    mask_.xb = maskXb;
    mask_.setRow(maskRow, geo_.rows);
    stats_ = stats;
}

void
Simulator::rebaselineChecksums()
{
    drainPipeline();
    if (verifyState_)
        blessChecksums();
}

void
Simulator::performBatch(const Word *ops, size_t n)
{
    if (pipeline_) {
        pipeline_->submit(ops, n);
        pipeline_->drain();
        verifyChecksums();
        return;
    }
    replayGuarded([&] { engine_->execute(ops, n); });
}

void
Simulator::submitBatch(const Word *ops, size_t n)
{
    if (pipeline_) {
        pipeline_->submit(ops, n);
        return;
    }
    replayGuarded([&] { engine_->execute(ops, n); });
}

void
Simulator::flush()
{
    drainPipeline();
    // Drain-point verify: faults injected after the last batch's
    // bless (or corruption from any other source) surface here, at a
    // sync point, never silently.
    verifyChecksums();
}

std::shared_ptr<const BatchTrace>
Simulator::prepareTrace(const Word *ops, size_t n, bool fuse)
{
    if (!leadsWithMasks(ops, n))
        return nullptr;
    auto batch = std::make_shared<BatchTrace>();
    // The stream re-establishes both masks before using them, so a
    // local power-on mask state decodes it exactly as any entry state
    // would — prepareTrace never touches the live mask.
    MaskState local;
    local.reset(geo_);
    try {
        buildBatchTrace(ops, n, geo_, htree_, local, *batch);
    } catch (...) {
        // Match the accounting of an uncached submit, which records
        // the valid prefix before throwing.
        stats_ += batch->stats;
        throw;
    }
    if (fuse)
        fuseBatchTrace(*batch, geo_);
    // Second compilation tier: lower the (possibly fused) segments
    // into flat replay programs before the batch freezes. Prepared
    // traces are the cached, replayed-many-times objects — the
    // pipeline's one-shot arena batches never come through here and
    // stay interpreted.
    if (compiledReplay_)
        compileBatchTrace(*batch, geo_);
    return batch;
}

void
Simulator::submitTrace(std::shared_ptr<const BatchTrace> trace)
{
    panicIf(trace == nullptr, "submitTrace: null trace");
    panicIf(trace->geoRows != geo_.rows ||
                trace->geoCols != geo_.cols ||
                trace->geoPartitions != geo_.partitions ||
                trace->geoCrossbars != geo_.numCrossbars,
            "submitTrace: trace was built for a different geometry");
    if (pipeline_) {
        pipeline_->submitShared(std::move(trace));
        return;
    }
    stats_ += trace->stats;
    mask_.xb = trace->finalXb;
    mask_.setRow(trace->finalRow, geo_.rows);
    replayGuarded([&] { engine_->replayBatch(*trace); });
}

bool
Simulator::readBulk(const BulkIoSpec &spec, uint32_t *out,
                    BulkIoTelemetry &tel)
{
    // The one drain of the transfer: the array is quiescent for the
    // whole gather, exactly as it would be after the first
    // per-element performRead of the oracle loop.
    drainPipeline();
    verifyChecksums();
    // Apply the pre-planned architectural effect — the submitTrace
    // pattern: the stats delta and final mask state were computed by
    // the planner, identically on every sub-device.
    stats_ += spec.stats;
    mask_.xb = spec.finalXb;
    mask_.setRow(spec.finalRow, geo_.rows);
    tel.wordsTransposed += engine_->executeReadBulk(spec, out);
    tel.drains += 1;
    return true;
}

bool
Simulator::writeBulk(const BulkIoSpec &spec, const uint32_t *values,
                     BulkIoTelemetry &tel)
{
    drainPipeline();
    verifyChecksums();
    stats_ += spec.stats;
    mask_.xb = spec.finalXb;
    mask_.setRow(spec.finalRow, geo_.rows);
    tel.wordsTransposed += engine_->applyWriteBulk(spec, values);
    tel.drains += 1;
    // The scatter is a legitimate host mutation: re-bless.
    if (verifyState_)
        blessChecksums();
    return true;
}

uint32_t
Simulator::performRead(Word op)
{
    drainPipeline();
    verifyChecksums();
    return engine_->executeRead(MicroOp::decode(op));
}

void
Simulator::perform(const MicroOp &op)
{
    const Word w = op.encode();
    performBatch(&w, 1);
}

uint32_t
Simulator::read(const MicroOp &op)
{
    drainPipeline();
    return engine_->executeRead(op);
}

} // namespace pypim
