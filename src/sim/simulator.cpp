#include "sim/simulator.hpp"

#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/replay_program.hpp"

namespace pypim
{

Simulator::Simulator(const Geometry &geo, const EngineConfig &ec)
    : Simulator(geo, ec, 0, geo.numCrossbars)
{
}

Simulator::Simulator(const Geometry &geo, const EngineConfig &ec,
                     uint32_t sliceLo, uint32_t sliceCount)
    : geo_(geo),
      sliceLo_(sliceLo),
      htree_(geo.numCrossbars)
{
    geo_.validate();
    fatalIf(sliceCount == 0 || sliceCount > geo_.numCrossbars ||
                sliceLo > geo_.numCrossbars - sliceCount,
            "simulator: crossbar slice [" + std::to_string(sliceLo) +
                ", " + std::to_string(sliceLo + sliceCount) +
                ") outside the geometry");
    xbs_.reserve(sliceCount);
    for (uint32_t i = 0; i < sliceCount; ++i)
        xbs_.emplace_back(geo_, ec.storage);
    mask_.reset(geo_);
    compiledReplay_ = ec.compiledReplay;
    engine_ =
        makeEngine(ec, geo_, xbs_, sliceLo_, htree_, mask_, stats_);
    if (ec.pipeline)
        pipeline_ = std::make_unique<SimulatorPipeline>(
            geo_, htree_, mask_, stats_, engine_);
}

Simulator::~Simulator() = default;

void
Simulator::checkOwned(uint32_t i) const
{
    fatalIf(!ownsCrossbar(i),
            "crossbar " + std::to_string(i) +
                " is outside this simulator's slice [" +
                std::to_string(sliceLo_) + ", " +
                std::to_string(sliceLo_ + sliceCount()) +
                "); route through the owning sub-device "
                "(SimulatorGroup::crossbar)");
}

StorageGauges
Simulator::storageGauges() const
{
    drainPipeline();
    StorageGauges g;
    for (const Crossbar &xb : xbs_)
        g += xb.storageGauges();
    return g;
}

uint64_t
Simulator::compactStorage()
{
    drainPipeline();
    uint64_t elided = 0;
    for (Crossbar &xb : xbs_)
        elided += xb.compact();
    return elided;
}

void
Simulator::setEngine(const EngineConfig &ec)
{
    // The crossbar state (and with it the storage representation)
    // survives the swap: ec.storage is applied at construction only.
    drainPipeline();
    compiledReplay_ = ec.compiledReplay;
    engine_ =
        makeEngine(ec, geo_, xbs_, sliceLo_, htree_, mask_, stats_);
    if (ec.pipeline && !pipeline_)
        pipeline_ = std::make_unique<SimulatorPipeline>(
            geo_, htree_, mask_, stats_, engine_);
    else if (!ec.pipeline)
        pipeline_.reset();
}

void
Simulator::performBatch(const Word *ops, size_t n)
{
    if (pipeline_) {
        pipeline_->submit(ops, n);
        pipeline_->drain();
        return;
    }
    engine_->execute(ops, n);
}

void
Simulator::submitBatch(const Word *ops, size_t n)
{
    if (pipeline_) {
        pipeline_->submit(ops, n);
        return;
    }
    engine_->execute(ops, n);
}

void
Simulator::flush()
{
    drainPipeline();
}

std::shared_ptr<const BatchTrace>
Simulator::prepareTrace(const Word *ops, size_t n, bool fuse)
{
    if (!leadsWithMasks(ops, n))
        return nullptr;
    auto batch = std::make_shared<BatchTrace>();
    // The stream re-establishes both masks before using them, so a
    // local power-on mask state decodes it exactly as any entry state
    // would — prepareTrace never touches the live mask.
    MaskState local;
    local.reset(geo_);
    try {
        buildBatchTrace(ops, n, geo_, htree_, local, *batch);
    } catch (...) {
        // Match the accounting of an uncached submit, which records
        // the valid prefix before throwing.
        stats_ += batch->stats;
        throw;
    }
    if (fuse)
        fuseBatchTrace(*batch, geo_);
    // Second compilation tier: lower the (possibly fused) segments
    // into flat replay programs before the batch freezes. Prepared
    // traces are the cached, replayed-many-times objects — the
    // pipeline's one-shot arena batches never come through here and
    // stay interpreted.
    if (compiledReplay_)
        compileBatchTrace(*batch, geo_);
    return batch;
}

void
Simulator::submitTrace(std::shared_ptr<const BatchTrace> trace)
{
    panicIf(trace == nullptr, "submitTrace: null trace");
    panicIf(trace->geoRows != geo_.rows ||
                trace->geoCols != geo_.cols ||
                trace->geoPartitions != geo_.partitions ||
                trace->geoCrossbars != geo_.numCrossbars,
            "submitTrace: trace was built for a different geometry");
    if (pipeline_) {
        pipeline_->submitShared(std::move(trace));
        return;
    }
    stats_ += trace->stats;
    mask_.xb = trace->finalXb;
    mask_.setRow(trace->finalRow, geo_.rows);
    engine_->replayBatch(*trace);
}

bool
Simulator::readBulk(const BulkIoSpec &spec, uint32_t *out,
                    BulkIoTelemetry &tel)
{
    // The one drain of the transfer: the array is quiescent for the
    // whole gather, exactly as it would be after the first
    // per-element performRead of the oracle loop.
    drainPipeline();
    // Apply the pre-planned architectural effect — the submitTrace
    // pattern: the stats delta and final mask state were computed by
    // the planner, identically on every sub-device.
    stats_ += spec.stats;
    mask_.xb = spec.finalXb;
    mask_.setRow(spec.finalRow, geo_.rows);
    tel.wordsTransposed += engine_->executeReadBulk(spec, out);
    tel.drains += 1;
    return true;
}

bool
Simulator::writeBulk(const BulkIoSpec &spec, const uint32_t *values,
                     BulkIoTelemetry &tel)
{
    drainPipeline();
    stats_ += spec.stats;
    mask_.xb = spec.finalXb;
    mask_.setRow(spec.finalRow, geo_.rows);
    tel.wordsTransposed += engine_->applyWriteBulk(spec, values);
    tel.drains += 1;
    return true;
}

uint32_t
Simulator::performRead(Word op)
{
    drainPipeline();
    return engine_->executeRead(MicroOp::decode(op));
}

void
Simulator::perform(const MicroOp &op)
{
    const Word w = op.encode();
    performBatch(&w, 1);
}

uint32_t
Simulator::read(const MicroOp &op)
{
    drainPipeline();
    return engine_->executeRead(op);
}

} // namespace pypim
