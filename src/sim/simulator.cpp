#include "sim/simulator.hpp"

#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

Simulator::Simulator(const Geometry &geo)
    : geo_(geo),
      htree_(geo.numCrossbars)
{
    geo_.validate();
    xbs_.reserve(geo_.numCrossbars);
    for (uint32_t i = 0; i < geo_.numCrossbars; ++i)
        xbs_.emplace_back(geo_);
    xbMask_ = Range::all(geo_.numCrossbars);
    rowMask_ = Range::all(geo_.rows);
    rowMaskWords_ = rowMask_.expand(geo_.rows);
}

void
Simulator::performBatch(const Word *ops, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        perform(MicroOp::decode(ops[i]));
}

uint32_t
Simulator::performRead(Word op)
{
    return read(MicroOp::decode(op));
}

void
Simulator::perform(const MicroOp &op)
{
    switch (op.type) {
      case OpType::CrossbarMask:
        doCrossbarMask(op);
        break;
      case OpType::RowMask:
        doRowMask(op);
        break;
      case OpType::Read:
        // A read issued through the data-less path: execute it for its
        // cycle cost and drop the response.
        read(op);
        return;
      case OpType::Write:
        doWrite(op);
        break;
      case OpType::LogicH:
        doLogicH(op);
        break;
      case OpType::LogicV:
        doLogicV(op);
        break;
      case OpType::Move:
        doMove(op);
        break;
    }
}

void
Simulator::doCrossbarMask(const MicroOp &op)
{
    op.range.validate(geo_.numCrossbars, "crossbar");
    xbMask_ = op.range;
    stats_.record(OpClass::CrossbarMask);
}

void
Simulator::doRowMask(const MicroOp &op)
{
    op.range.validate(geo_.rows, "row");
    rowMask_ = op.range;
    rowMaskWords_ = rowMask_.expand(geo_.rows);
    stats_.record(OpClass::RowMask);
}

uint32_t
Simulator::read(const MicroOp &op)
{
    panicIf(op.type != OpType::Read, "read: wrong op type");
    fatalIf(op.index >= geo_.slots(), "read: slot index out of range");
    fatalIf(xbMask_.count() != 1,
            "read: crossbar mask must select exactly one crossbar "
            "(paper III-C), selects " + std::to_string(xbMask_.count()));
    fatalIf(rowMask_.count() != 1,
            "read: row mask must select exactly one row (paper III-C), "
            "selects " + std::to_string(rowMask_.count()));
    stats_.record(OpClass::Read);
    return xbs_[xbMask_.start].read(op.index, rowMask_.start);
}

void
Simulator::doWrite(const MicroOp &op)
{
    fatalIf(op.index >= geo_.slots(), "write: slot index out of range");
    xbMask_.forEach([&](uint32_t xb) {
        xbs_[xb].write(op.index, op.value, rowMaskWords_);
    });
    stats_.record(OpClass::Write);
}

void
Simulator::doLogicH(const MicroOp &op)
{
    const HalfGates hg = expandLogicH(op, geo_);
    xbMask_.forEach([&](uint32_t xb) {
        xbs_[xb].logicH(hg, rowMaskWords_);
    });
    stats_.record(OpClass::LogicH);
    if (op.gate == Gate::Nor || op.gate == Gate::Not)
        ++stats_.logicGates;
    else
        ++stats_.logicInits;
}

void
Simulator::doLogicV(const MicroOp &op)
{
    fatalIf(op.index >= geo_.slots(), "logicV: slot index out of range");
    fatalIf(op.rowIn >= geo_.rows || op.rowOut >= geo_.rows,
            "logicV: row out of range");
    xbMask_.forEach([&](uint32_t xb) {
        xbs_[xb].logicV(op.gate, op.rowIn, op.rowOut, op.index);
    });
    stats_.record(OpClass::LogicV);
    if (op.gate == Gate::Not)
        ++stats_.logicGates;
    else
        ++stats_.logicInits;
}

void
Simulator::doMove(const MicroOp &op)
{
    fatalIf(!isPow4(xbMask_.step),
            "move: crossbar mask step must be a power of four "
            "(paper III-F)");
    fatalIf(op.srcIdx >= geo_.slots() || op.dstIdx >= geo_.slots(),
            "move: slot index out of range");
    fatalIf(op.srcRow >= geo_.rows || op.dstRow >= geo_.rows,
            "move: row out of range");
    const int64_t dist = static_cast<int64_t>(op.dstStart) -
                         static_cast<int64_t>(xbMask_.start);
    // Read-all-then-write-all semantics: overlapping source and
    // destination sets (shift chains) behave as a parallel transfer.
    std::vector<uint32_t> values;
    values.reserve(xbMask_.count());
    xbMask_.forEach([&](uint32_t src) {
        const int64_t dst = static_cast<int64_t>(src) + dist;
        fatalIf(dst < 0 || dst >= geo_.numCrossbars,
                "move: destination crossbar out of range");
        values.push_back(xbs_[src].read(op.srcIdx, op.srcRow));
    });
    size_t i = 0;
    xbMask_.forEach([&](uint32_t src) {
        const uint32_t dst = static_cast<uint32_t>(src + dist);
        xbs_[dst].writeRow(op.dstIdx, values[i++], op.dstRow);
    });
    stats_.record(OpClass::Move, htree_.moveCycles(xbMask_, dist));
}

} // namespace pypim
