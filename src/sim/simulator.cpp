#include "sim/simulator.hpp"

namespace pypim
{

Simulator::Simulator(const Geometry &geo, const EngineConfig &ec)
    : geo_(geo),
      htree_(geo.numCrossbars)
{
    geo_.validate();
    xbs_.reserve(geo_.numCrossbars);
    for (uint32_t i = 0; i < geo_.numCrossbars; ++i)
        xbs_.emplace_back(geo_);
    mask_.reset(geo_);
    engine_ = makeEngine(ec, geo_, xbs_, htree_, mask_, stats_);
}

void
Simulator::setEngine(const EngineConfig &ec)
{
    engine_ = makeEngine(ec, geo_, xbs_, htree_, mask_, stats_);
}

void
Simulator::performBatch(const Word *ops, size_t n)
{
    engine_->execute(ops, n);
}

uint32_t
Simulator::performRead(Word op)
{
    return engine_->executeRead(MicroOp::decode(op));
}

void
Simulator::perform(const MicroOp &op)
{
    const Word w = op.encode();
    engine_->execute(&w, 1);
}

uint32_t
Simulator::read(const MicroOp &op)
{
    return engine_->executeRead(op);
}

} // namespace pypim
