#include "sim/simulator.hpp"

namespace pypim
{

Simulator::Simulator(const Geometry &geo, const EngineConfig &ec)
    : geo_(geo),
      htree_(geo.numCrossbars)
{
    geo_.validate();
    xbs_.reserve(geo_.numCrossbars);
    for (uint32_t i = 0; i < geo_.numCrossbars; ++i)
        xbs_.emplace_back(geo_);
    mask_.reset(geo_);
    engine_ = makeEngine(ec, geo_, xbs_, htree_, mask_, stats_);
    if (ec.pipeline)
        pipeline_ = std::make_unique<SimulatorPipeline>(
            geo_, htree_, mask_, stats_, engine_);
}

Simulator::~Simulator() = default;

void
Simulator::setEngine(const EngineConfig &ec)
{
    drainPipeline();
    engine_ = makeEngine(ec, geo_, xbs_, htree_, mask_, stats_);
    if (ec.pipeline && !pipeline_)
        pipeline_ = std::make_unique<SimulatorPipeline>(
            geo_, htree_, mask_, stats_, engine_);
    else if (!ec.pipeline)
        pipeline_.reset();
}

void
Simulator::performBatch(const Word *ops, size_t n)
{
    if (pipeline_) {
        pipeline_->submit(ops, n);
        pipeline_->drain();
        return;
    }
    engine_->execute(ops, n);
}

void
Simulator::submitBatch(const Word *ops, size_t n)
{
    if (pipeline_) {
        pipeline_->submit(ops, n);
        return;
    }
    engine_->execute(ops, n);
}

void
Simulator::flush()
{
    drainPipeline();
}

uint32_t
Simulator::performRead(Word op)
{
    drainPipeline();
    return engine_->executeRead(MicroOp::decode(op));
}

void
Simulator::perform(const MicroOp &op)
{
    const Word w = op.encode();
    performBatch(&w, 1);
}

uint32_t
Simulator::read(const MicroOp &op)
{
    drainPipeline();
    return engine_->executeRead(op);
}

} // namespace pypim
