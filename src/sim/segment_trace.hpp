/**
 * @file
 * Decode-once segment traces for loop-interchanged (crossbar-major)
 * replay.
 *
 * A batch of micro-ops splits into SEGMENTS at every cross-crossbar
 * barrier op (Read, H-tree Move). Within a segment every op is a
 * broadcast over independent crossbars, so the order of the loops
 * "for op / for crossbar" may be interchanged freely. The engines'
 * historical replay was op-major: each op swept the whole crossbar
 * array before the next op, streaming a multi-megabyte working set
 * through the cache once PER OP at large crossbar counts, and
 * re-decoding (and re-expanding every LogicH) once per batch replay
 * even though the decoded form is loop-invariant across crossbars.
 *
 * SegmentTrace is the loop-invariant part, computed exactly once per
 * segment by buildSegmentTrace():
 *
 *  - decoded work ops (Write / LogicH / LogicV) with their LogicH
 *    half-gate expansions pre-computed into an arena;
 *  - mask ops ABSORBED: each work op carries a snapshot of the
 *    effective crossbar mask and a handle to the expanded row-mask
 *    bit-vector in force when it executed (snapshots are deduplicated
 *    while the mask is unchanged), so replay never re-tracks mask
 *    state;
 *  - consecutive INIT1 -> NOR/NOT pairs on the same output columns
 *    under identical masks fused into a single pass over the column
 *    words (the driver's canonical stateful-logic idiom);
 *  - the hull [xbLo, xbHi) of crossbars the segment can touch.
 *
 * Replay then runs crossbar-major (Crossbar::replaySegment): for each
 * crossbar, apply the ENTIRE segment before moving on, keeping that
 * crossbar's condensed column-major state hot in L1/L2. The trace is
 * also the natural hand-off unit for pipelined or device-offloaded
 * backends (ROADMAP: double-buffered driver overlap, GPU engine) —
 * it is self-contained, immutable after building, and free of host
 * pointers into mutable simulator state.
 *
 * All storage is arena-style and reused across segments/batches via
 * clear(), so steady-state building is allocation-free.
 */
#ifndef PYPIM_SIM_SEGMENT_TRACE_HPP
#define PYPIM_SIM_SEGMENT_TRACE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "uarch/microop.hpp"
#include "uarch/partition.hpp"
#include "uarch/range.hpp"

namespace pypim
{

/**
 * In-stream mask state (paper §III-B): the crossbar activation range
 * and the stored row mask, kept together with the row mask's expanded
 * bit-vector realisation so read/write/logic ops reuse it.
 */
struct MaskState
{
    Range xb;
    Range row;
    std::vector<uint64_t> rowWords;

    /** Power-on state: all crossbars and all rows selected. */
    void
    reset(const Geometry &geo)
    {
        xb = Range::all(geo.numCrossbars);
        setRow(Range::all(geo.rows), geo.rows);
    }

    /** Install a new row mask and (re)expand it, reusing rowWords. */
    void
    setRow(const Range &r, uint32_t rows)
    {
        row = r;
        row.expandInto(rows, rowWords);
    }
};

/** True iff the op must serialise the whole crossbar array. */
inline bool
isBarrierOp(OpType t)
{
    return t == OpType::Move || t == OpType::Read;
}

/**
 * One decoded work op of a segment with its effective masks. Only the
 * fields of the op's type are meaningful (as in MicroOp).
 */
struct TraceOp
{
    OpType type = OpType::Write;
    Gate gate = Gate::Init0;    //!< logicV gate
    /** LogicH with a preceding INIT1 of the same outputs folded in. */
    bool fusedInit = false;
    uint32_t index = 0;         //!< write / logicV slot
    uint32_t value = 0;         //!< write payload
    uint32_t hg = 0;            //!< LogicH: SegmentTrace::halfGates index
    uint32_t rowMask = 0;       //!< write/logicH: row-snapshot id
    uint32_t rowIn = 0, rowOut = 0;  //!< logicV rows
    /**
     * Write only: number of adjacent Writes merged into this op by
     * the trace fuser's stripe pass (1 = a plain un-merged Write).
     * When > 1, @p wrun indexes the first of wn pairwise-distinct
     * {slot, value} pairs in SegmentTrace::writePairs, all applied
     * under this op's masks by Crossbar::writeStripe.
     */
    uint32_t wn = 1;
    uint32_t wrun = 0;          //!< SegmentTrace::writePairs offset
    Range xb;                   //!< effective crossbar mask snapshot
};

/** One decoded, replay-ready barrier-free segment. */
struct SegmentTrace
{
    std::vector<TraceOp> ops;
    /** LogicH expansions referenced by TraceOp::hg. */
    std::vector<HalfGates> halfGates;
    /** Row-mask snapshots, wordsPerMask words each, back to back. */
    std::vector<uint64_t> rowWords;
    /**
     * One flag per row-mask snapshot, set iff every realized word is
     * all-ones (the all-rows mask of a geometry with rows a multiple
     * of 64 — the overwhelmingly common case). Replay kernels then
     * skip the `& mask` blend entirely: out |= ~0 / out &= 0 collapse
     * to fills, gates drop the blend term. A full mask over fewer
     * than 64 rows realizes a partial tail word and is deliberately
     * NOT flagged — the blend is what keeps the padding bits clear.
     */
    std::vector<uint8_t> rowMaskFull;
    /** Stripe arena: merged-Write pairs referenced by TraceOp::wrun. */
    std::vector<StripeWrite> writePairs;
    uint32_t wordsPerMask = 0;
    /** Hull of crossbars any op can touch: [xbLo, xbHi). */
    uint32_t xbLo = 0, xbHi = 0;

    /** Reset for a new segment, keeping all arena capacity. */
    void
    clear(uint32_t rows)
    {
        wordsPerMask = (rows + 63) / 64;
        ops.clear();
        halfGates.clear();
        rowWords.clear();
        rowMaskFull.clear();
        writePairs.clear();
        xbLo = 0;
        xbHi = 0;
    }

    /** Expanded row-mask bit vector of snapshot @p id. */
    std::span<const uint64_t>
    rowMask(uint32_t id) const
    {
        return {rowWords.data() +
                    static_cast<size_t>(id) * wordsPerMask,
                wordsPerMask};
    }

    bool empty() const { return ops.empty(); }
};

struct HalfGates;

/**
 * True iff an INIT1 LogicH may be folded into the NOR/NOT @p nor:
 * both must drive exactly the same set of output columns, and no
 * input column of the NOR/NOT may alias any of those outputs (the
 * gate must read pre-INIT state of nothing it initialises). Shared
 * between the builder's adjacent fusion and the window fusion pass
 * (sim/batch_trace.hpp).
 */
bool fusableInitNor(const HalfGates &init, const HalfGates &nor);

/**
 * Decode the barrier-free segment @p ops[0..n) into @p trace.
 *
 * This is the engines' shared pre-pass: it validates every op exactly
 * as the serial reference would (so a malformed op aborts BEFORE any
 * crossbar is touched), records the architectural @p stats, and
 * advances the authoritative @p mask state past the segment. It
 * touches no crossbar: O(n), not O(n * crossbars).
 *
 * Panics (InternalError) on a barrier op — callers split at
 * isBarrierOp() first.
 */
void buildSegmentTrace(const Word *ops, size_t n, const Geometry &geo,
                       MaskState &mask, Stats &stats,
                       SegmentTrace &trace);

} // namespace pypim

#endif // PYPIM_SIM_SEGMENT_TRACE_HPP
