/**
 * @file
 * Bulk host I/O: the block-transfer seam between the driver and the
 * simulator stack.
 *
 * The PIM architecture keeps the standard memory read/write interface
 * as the host's window into the arrays (paper §III-C). The scalar
 * path models it one element at a time: every element costs a full
 * pipeline drain (performRead) plus 32 single-bit column probes. A
 * bulk transfer moves the same values with ONE drain per transfer and
 * a 64x64 word-level bit-matrix transpose per 64 rows
 * (Crossbar::gatherRows / scatterRows), while recording architectural
 * Stats identical to the element-wise instruction loop — the cost
 * model is unchanged, only the host-side simulation of it is faster.
 *
 * Split of responsibilities:
 *  - the DRIVER plans the transfer (this header's planBulkRead /
 *    planBulkWrite): it owns the GateBuilder's cached mask state, so
 *    only it can compute which mask micro-ops the element-wise oracle
 *    would have emitted. The plan is a BulkIoSpec: addressing plus
 *    the architectural stats delta and final mask state.
 *  - the SINK applies it (OperationSink::readBulk / writeBulk): the
 *    Simulator drains its pipeline once, adds the delta, installs the
 *    final masks (exactly the submitTrace pattern) and hands the
 *    gather/scatter to its ExecutionEngine, which clips to its owned
 *    crossbar slice. A SimulatorGroup broadcasts the spec to every
 *    sub-device — stats and mask state stay replicated bit-identically
 *    while each sub-device fills only its owned warps of the shared
 *    host buffer.
 *
 * Stats-identity contract (asserted by tests/test_bulk_io.cpp):
 *  - READS replicate the per-element GateBuilder::readWord loop
 *    exactly: per element, 2 CrossbarMask ops when the element's warp
 *    mask differs from the entry mask (narrow + restore), 2 RowMask
 *    ops likewise, and 1 Read; the entry masks are restored at the
 *    end. Mask comparisons are exact Range equality — the
 *    GateBuilder's dedup rule.
 *  - WRITES replicate the canonical coalesced stream that the
 *    PYPIM_BULK_IO=0 fallback actually emits: maximal runs of
 *    consecutive same-warp equal-value elements become one
 *    setMasks+Write (runs of length 1 — the general case of distinct
 *    values — degenerate to exactly the historical per-element
 *    WriteInstr stream, masks evolving with GateBuilder dedup).
 *    Equal-value runs (zeros/full uploads) deliberately cost one
 *    masked broadcast Write instead of k writes — the architecture's
 *    native strength (paper Fig. 6), and precisely what the
 *    constant-fill factories already emit.
 */
#ifndef PYPIM_SIM_BULK_IO_HPP
#define PYPIM_SIM_BULK_IO_HPP

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "uarch/range.hpp"

namespace pypim
{

/**
 * One planned bulk transfer. Addressing is in storage coordinates:
 * element i lives at storage row rowStart + i*rowStep of the
 * allocation starting at global crossbar warpStart — warp
 * warpStart + row/geo.rows, in-crossbar row row%geo.rows (the tensor
 * layout, pim/tensor.hpp).
 */
struct BulkIoSpec
{
    uint32_t slot = 0;       //!< register slot holding the values
    uint32_t warpStart = 0;  //!< first global crossbar of the allocation
    uint64_t rowStart = 0;   //!< storage row of element 0
    uint64_t rowStep = 1;    //!< storage rows between elements (>= 1)
    uint64_t count = 0;      //!< elements to transfer (> 0)

    // Architectural effect, computed by the planner and applied
    // verbatim by every (sub-)device sink — the replication invariant
    // of the multi-device group holds by construction.
    Stats stats;     //!< delta the transfer adds to the counters
    Range finalXb;   //!< crossbar mask state after the transfer
    Range finalRow;  //!< row mask state after the transfer
};

/** Host-side observability of one bulk transfer (driver Stats). */
struct BulkIoTelemetry
{
    uint64_t wordsTransposed = 0;  //!< 64-bit words through transpose64
    uint64_t drains = 0;           //!< pipeline drain points taken
};

/** One coalesced write run: consecutive same-warp equal-value
 *  elements, lowered to one setMasks + Write. */
struct BulkWriteRun
{
    uint32_t warp = 0;         //!< global crossbar
    Range rows;                //!< in-crossbar row mask of the run
    uint32_t value = 0;        //!< word written to every masked row
    uint64_t firstElement = 0; //!< index of the run's first element
    uint64_t count = 0;        //!< elements in the run
};

/**
 * Enumerate the canonical write runs of @p spec over @p values in
 * element order: maximal runs of consecutive elements sharing one
 * warp and one value. Shared by the stats planner, the
 * PYPIM_BULK_IO=0 emission fallback and nothing else — one source of
 * truth, so the two knob settings can never drift.
 */
template <typename Fn>
void
forEachBulkWriteRun(const Geometry &geo, const BulkIoSpec &spec,
                    const uint32_t *values, Fn &&fn)
{
    const uint32_t rows = geo.rows;
    uint64_t i = 0;
    while (i < spec.count) {
        const uint64_t s = spec.rowStart + i * spec.rowStep;
        const uint32_t warp =
            spec.warpStart + static_cast<uint32_t>(s / rows);
        const uint32_t r0 = static_cast<uint32_t>(s % rows);
        // Elements whose storage row stays inside this crossbar.
        const uint64_t inWarp = std::min<uint64_t>(
            spec.count - i,
            (rows - r0 + spec.rowStep - 1) / spec.rowStep);
        uint64_t e = 0;
        while (e < inWarp) {
            const uint32_t v = values[i + e];
            uint64_t run = 1;
            while (e + run < inWarp && values[i + e + run] == v)
                ++run;
            BulkWriteRun w;
            w.warp = warp;
            w.value = v;
            w.firstElement = i + e;
            w.count = run;
            const uint32_t first =
                r0 + static_cast<uint32_t>(e * spec.rowStep);
            // Canonical masks: a 1-element run is Range::single — the
            // exact Range the per-element oracle emits, so the
            // GateBuilder dedup (exact equality) behaves identically.
            w.rows = run == 1
                         ? Range::single(first)
                         : Range(first,
                                 first + static_cast<uint32_t>(
                                             (run - 1) * spec.rowStep),
                                 static_cast<uint32_t>(spec.rowStep));
            fn(w);
            e += run;
        }
        i += inWarp;
    }
}

/**
 * Fill @p spec's stats delta and final mask state for a bulk READ
 * entered with builder mask state (@p entryXb, @p entryRow) — the
 * exact per-element narrow/flush/read/restore accounting of
 * GateBuilder::readWord, summed without executing anything. The entry
 * masks are also the final masks (the oracle restores them).
 */
void planBulkRead(const Geometry &geo, const Range &entryXb,
                  const Range &entryRow, BulkIoSpec &spec);

/**
 * Fill @p spec's stats delta and final mask state for a bulk WRITE of
 * @p values entered with (possibly unknown) builder mask state, by
 * walking the canonical run stream. Returns the number of runs (the
 * macro-instruction count both knob paths record).
 */
uint64_t planBulkWrite(const Geometry &geo,
                       const std::optional<Range> &entryXb,
                       const std::optional<Range> &entryRow,
                       const uint32_t *values, BulkIoSpec &spec);

} // namespace pypim

#endif // PYPIM_SIM_BULK_IO_HPP
