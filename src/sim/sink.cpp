#include "sim/sink.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace pypim
{

void
OperationSink::submitTrace(std::shared_ptr<const BatchTrace> trace)
{
    (void)trace;
    panic("submitTrace: this sink does not support trace replay "
          "(its prepareTrace returns null)");
}

BufferSink::BufferSink(size_t capacity) : buf_(capacity, 0)
{
}

void
BufferSink::performBatch(const Word *ops, size_t n)
{
    total_ += n;
    const size_t cap = buf_.size();
    if (n >= cap) {
        std::memcpy(buf_.data(), ops + (n - cap), cap * sizeof(Word));
        pos_ = 0;
        return;
    }
    const size_t first = std::min(n, cap - pos_);
    std::memcpy(buf_.data() + pos_, ops, first * sizeof(Word));
    if (n > first) {
        std::memcpy(buf_.data(), ops + first,
                    (n - first) * sizeof(Word));
        pos_ = n - first;
    } else {
        pos_ += first;
        if (pos_ == cap)
            pos_ = 0;
    }
}

uint32_t
BufferSink::performRead(Word op)
{
    perform(op);
    return 0;
}

void
CountingSink::performBatch(const Word *ops, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        stats_.record(static_cast<OpClass>(enc::peekType(ops[i])));
}

uint32_t
CountingSink::performRead(Word op)
{
    perform(op);
    return 0;
}

} // namespace pypim
