#include "sim/pipeline.hpp"

#include "sim/engine.hpp"
#include "sim/htree.hpp"

namespace pypim
{

SimulatorPipeline::SimulatorPipeline(
    const Geometry &geo, const HTree &htree, MaskState &mask,
    Stats &stats, std::unique_ptr<ExecutionEngine> &engine,
    std::function<void()> preReplay, std::function<void()> postReplay)
    : geo_(geo),
      htree_(htree),
      mask_(mask),
      stats_(stats),
      engine_(engine),
      preReplay_(std::move(preReplay)),
      postReplay_(std::move(postReplay))
{
    free_.reserve(kBuffers);
    for (uint32_t i = 0; i < kBuffers; ++i)
        free_.push_back(i);
    consumer_ = std::thread([this] { consumerLoop(); });
}

SimulatorPipeline::~SimulatorPipeline()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvConsumer_.notify_one();
    consumer_.join();
}

void
SimulatorPipeline::submit(const Word *ops, size_t n)
{
    uint32_t buf;
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (error_)
            std::rethrow_exception(error_);
        cvProducer_.wait(lock, [&] { return !free_.empty(); });
        buf = free_.back();
        free_.pop_back();
    }
    BatchTrace &batch = buffers_[buf];
    batch.clear();
    try {
        buildBatchTrace(ops, n, geo_, htree_, mask_, batch);
    } catch (...) {
        // Report the malformed op at the submitBatch that contained
        // it; none of this batch reached a crossbar, but the valid
        // prefix was recorded, exactly like the synchronous trace
        // engines.
        stats_ += batch.stats;
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(buf);
        cvProducer_.notify_all();
        throw;
    }
    stats_ += batch.stats;
    if (batch.items.empty()) {
        // Fully absorbed (mask-only and data-less-read traffic).
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(buf);
        cvProducer_.notify_all();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queued_.push_back(Pending{buf, nullptr});
    }
    cvConsumer_.notify_one();
}

void
SimulatorPipeline::submitShared(std::shared_ptr<const BatchTrace> trace)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (error_)
            std::rethrow_exception(error_);
        cvProducer_.wait(lock,
                         [&] { return queued_.size() < kMaxQueued; });
    }
    // Producer-side effects, same as a freshly built batch: the
    // pre-recorded architectural stats and the stream's final mask
    // state apply at submit time (the consumer applies pre-validated
    // crossbar changes only).
    stats_ += trace->stats;
    mask_.xb = trace->finalXb;
    mask_.setRow(trace->finalRow, geo_.rows);
    if (trace->items.empty())
        return;  // mask-only stream: nothing to replay
    {
        std::lock_guard<std::mutex> lock(mu_);
        queued_.push_back(Pending{kNoBuffer, std::move(trace)});
    }
    cvConsumer_.notify_one();
}

void
SimulatorPipeline::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvProducer_.wait(lock,
                     [&] { return queued_.empty() && !replaying_; });
    if (error_)
        std::rethrow_exception(error_);
}

void
SimulatorPipeline::clearError()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvProducer_.wait(lock,
                     [&] { return queued_.empty() && !replaying_; });
    error_ = nullptr;
}

void
SimulatorPipeline::consumerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cvConsumer_.wait(lock,
                         [&] { return stop_ || !queued_.empty(); });
        if (queued_.empty())
            return;  // stop requested and nothing left to replay
        Pending p = std::move(queued_.front());
        queued_.pop_front();
        replaying_ = true;
        const bool skip = static_cast<bool>(error_);
        lock.unlock();
        const BatchTrace &batch =
            p.shared ? *p.shared : buffers_[p.buf];
        std::exception_ptr err;
        if (!skip) {
            try {
                if (preReplay_)
                    preReplay_();
                busy_.store(true, std::memory_order_release);
                engine_->replayBatch(batch);
                busy_.store(false, std::memory_order_release);
                if (postReplay_)
                    postReplay_();
            } catch (...) {
                busy_.store(false, std::memory_order_release);
                err = std::current_exception();
            }
        }
        p.shared.reset();  // release the refcount outside the lock
        lock.lock();
        if (err && !error_)
            error_ = err;  // sticky: rethrown at every sync point
        replaying_ = false;
        if (p.buf != kNoBuffer)
            free_.push_back(p.buf);
        cvProducer_.notify_all();
    }
}

} // namespace pypim
