#include "sim/pipeline.hpp"

#include "sim/engine.hpp"
#include "sim/htree.hpp"

namespace pypim
{

SimulatorPipeline::SimulatorPipeline(
    const Geometry &geo, const HTree &htree, MaskState &mask,
    Stats &stats, std::unique_ptr<ExecutionEngine> &engine)
    : geo_(geo),
      htree_(htree),
      mask_(mask),
      stats_(stats),
      engine_(engine)
{
    free_.reserve(kBuffers);
    for (uint32_t i = 0; i < kBuffers; ++i)
        free_.push_back(i);
    consumer_ = std::thread([this] { consumerLoop(); });
}

SimulatorPipeline::~SimulatorPipeline()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvConsumer_.notify_one();
    consumer_.join();
}

void
SimulatorPipeline::buildBatch(BatchTrace &batch, const Word *ops,
                              size_t n)
{
    size_t i = 0;
    while (i < n) {
        const OpType type = enc::peekType(ops[i]);
        if (isBarrierOp(type)) {
            const MicroOp op = MicroOp::decode(ops[i]);
            if (type == OpType::Read) {
                // Data-less read: the response is dropped and no state
                // changes, so validating and counting it here absorbs
                // the op entirely — nothing to queue.
                validateRead(op, mask_.xb, mask_.row, geo_);
                stats_.record(OpClass::Read);
            } else {
                const int64_t dist = validateMove(op, mask_.xb, geo_);
                stats_.record(OpClass::Move,
                              htree_.moveCycles(mask_.xb, dist));
                BatchTrace::Item item;
                item.kind = BatchTrace::Item::Kind::Move;
                item.op = op;
                item.xb = mask_.xb;
                batch.items.push_back(item);
            }
            ++i;
            continue;
        }
        size_t j = i + 1;
        while (j < n && !isBarrierOp(enc::peekType(ops[j])))
            ++j;
        SegmentTrace &trace = batch.nextSegment(geo_.rows);
        buildSegmentTrace(ops + i, j - i, geo_, mask_, stats_, trace);
        if (trace.empty()) {
            --batch.used;  // mask-only segment: arena back to the pool
        } else {
            BatchTrace::Item item;
            item.kind = BatchTrace::Item::Kind::Segment;
            item.seg = batch.used - 1;
            batch.items.push_back(item);
        }
        i = j;
    }
}

void
SimulatorPipeline::submit(const Word *ops, size_t n)
{
    uint32_t buf;
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (error_)
            std::rethrow_exception(error_);
        cvProducer_.wait(lock, [&] { return !free_.empty(); });
        buf = free_.back();
        free_.pop_back();
    }
    BatchTrace &batch = buffers_[buf];
    batch.clear();
    try {
        buildBatch(batch, ops, n);
    } catch (...) {
        // Report the malformed op at the submitBatch that contained
        // it; none of this batch reached a crossbar.
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(buf);
        cvProducer_.notify_all();
        throw;
    }
    if (batch.items.empty()) {
        // Fully absorbed (mask-only and data-less-read traffic).
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(buf);
        cvProducer_.notify_all();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        queued_.push_back(buf);
    }
    cvConsumer_.notify_one();
}

void
SimulatorPipeline::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvProducer_.wait(lock,
                     [&] { return queued_.empty() && !replaying_; });
    if (error_)
        std::rethrow_exception(error_);
}

void
SimulatorPipeline::replayBatch(const BatchTrace &batch)
{
    for (const BatchTrace::Item &item : batch.items) {
        if (item.kind == BatchTrace::Item::Kind::Segment)
            engine_->replayTrace(batch.segments[item.seg]);
        else
            engine_->applyMove(item.op, item.xb);
    }
}

void
SimulatorPipeline::consumerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cvConsumer_.wait(lock,
                         [&] { return stop_ || !queued_.empty(); });
        if (queued_.empty())
            return;  // stop requested and nothing left to replay
        const uint32_t buf = queued_.front();
        queued_.pop_front();
        replaying_ = true;
        const bool skip = static_cast<bool>(error_);
        lock.unlock();
        std::exception_ptr err;
        if (!skip) {
            try {
                replayBatch(buffers_[buf]);
            } catch (...) {
                err = std::current_exception();
            }
        }
        lock.lock();
        if (err && !error_)
            error_ = err;  // sticky: rethrown at every sync point
        replaying_ = false;
        free_.push_back(buf);
        cvProducer_.notify_all();
    }
}

} // namespace pypim
