#include "sim/segment_trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pypim
{

/**
 * True iff an INIT1 LogicH may be folded into the NOR/NOT that
 * follows it: both must drive exactly the same set of output columns,
 * and no input column of the NOR/NOT may alias any of those outputs
 * (the gate must read pre-INIT state of nothing it initialises —
 * otherwise the fused single pass would observe un-initialised
 * inputs). Active sections are emitted in ascending partition order by
 * expandLogicH, so the output sets compare positionally.
 */
bool
fusableInitNor(const HalfGates &init, const HalfGates &nor)
{
    if (init.gate != Gate::Init1)
        return false;
    int32_t outs[maxPartitions];
    uint32_t n = 0;
    for (uint32_t s = 0; s < init.numSections; ++s) {
        const Section &sec = init.sections[s];
        if (sec.active())
            outs[n++] = sec.outCol;
    }
    uint32_t m = 0;
    for (uint32_t s = 0; s < nor.numSections; ++s) {
        const Section &sec = nor.sections[s];
        if (!sec.active())
            continue;
        if (m >= n || outs[m] != sec.outCol)
            return false;
        ++m;
    }
    if (m != n)
        return false;
    for (uint32_t s = 0; s < nor.numSections; ++s) {
        const Section &sec = nor.sections[s];
        for (uint32_t i = 0; i < sec.numIn; ++i)
            for (uint32_t j = 0; j < n; ++j)
                if (sec.inCol[i] == outs[j])
                    return false;
    }
    return true;
}

void
buildSegmentTrace(const Word *ops, size_t n, const Geometry &geo,
                  MaskState &mask, Stats &stats, SegmentTrace &trace)
{
    trace.clear(geo.rows);

    // Lazily-materialised row-mask snapshot: snapId identifies the
    // snapshot in force; snapCurrent says the live mask still matches
    // it, so consecutive work ops share one snapshot. After a RowMask
    // op the next work op re-resolves by CONTENT: a re-issued Range
    // that realizes the same row-mask bits — even via a different
    // start/stop/step encoding — reuses the existing id, so the
    // id-comparing fusions downstream (the builder's adjacent
    // INIT1->NOR here, the window pass in batch_trace.cpp) fire
    // across equivalent-Range reissues. The search is linear over the
    // segment's snapshots, but building runs once per cached
    // signature, never per replay.
    int64_t snapId = -1;
    bool snapCurrent = false;
    const auto rowSnapshot = [&]() -> uint32_t {
        if (!snapCurrent) {
            const size_t count =
                trace.rowWords.size() / trace.wordsPerMask;
            snapId = -1;
            for (size_t k = 0; k < count; ++k) {
                if (std::equal(mask.rowWords.begin(),
                               mask.rowWords.end(),
                               trace.rowWords.begin() +
                                   k * trace.wordsPerMask)) {
                    snapId = static_cast<int64_t>(k);
                    break;
                }
            }
            if (snapId < 0) {
                snapId = static_cast<int64_t>(count);
                trace.rowWords.insert(trace.rowWords.end(),
                                      mask.rowWords.begin(),
                                      mask.rowWords.end());
                trace.rowMaskFull.push_back(
                    std::all_of(mask.rowWords.begin(),
                                mask.rowWords.end(),
                                [](uint64_t w) { return w == ~0ull; })
                        ? 1
                        : 0);
            }
            snapCurrent = true;
        }
        return static_cast<uint32_t>(snapId);
    };

    // Index of the trailing op iff it is a fusable (un-fused) INIT1
    // LogicH; any other emission clears it. Intervening mask ops are
    // fine: fusion compares the ops' effective mask snapshots.
    int64_t lastInit = -1;

    uint32_t lo = UINT32_MAX, hi = 0;
    const auto emit = [&](const TraceOp &t) {
        lo = std::min(lo, t.xb.start);
        hi = std::max(hi, t.xb.stop + 1);
        trace.ops.push_back(t);
    };

    for (size_t i = 0; i < n; ++i) {
        const MicroOp op = MicroOp::decode(ops[i]);
        switch (op.type) {
          case OpType::CrossbarMask:
            op.range.validate(geo.numCrossbars, "crossbar");
            mask.xb = op.range;
            stats.record(OpClass::CrossbarMask);
            break;
          case OpType::RowMask:
            op.range.validate(geo.rows, "row");
            mask.setRow(op.range, geo.rows);
            stats.record(OpClass::RowMask);
            snapCurrent = false;  // next work op re-resolves by content
            break;
          case OpType::Write: {
            fatalIf(op.index >= geo.slots(),
                    "write: slot index out of range");
            stats.record(OpClass::Write);
            TraceOp t;
            t.type = OpType::Write;
            t.index = op.index;
            t.value = op.value;
            t.rowMask = rowSnapshot();
            t.xb = mask.xb;
            emit(t);
            lastInit = -1;
            break;
          }
          case OpType::LogicH: {
            stats.record(OpClass::LogicH);
            if (op.gate == Gate::Nor || op.gate == Gate::Not)
                ++stats.logicGates;
            else
                ++stats.logicInits;
            TraceOp t;
            t.type = OpType::LogicH;
            t.hg = static_cast<uint32_t>(trace.halfGates.size());
            trace.halfGates.push_back(expandLogicH(op, geo));
            t.rowMask = rowSnapshot();
            t.xb = mask.xb;
            if ((op.gate == Gate::Nor || op.gate == Gate::Not) &&
                lastInit >= 0) {
                const TraceOp &init = trace.ops[lastInit];
                if (init.xb == t.xb && init.rowMask == t.rowMask &&
                    fusableInitNor(trace.halfGates[init.hg],
                                   trace.halfGates[t.hg])) {
                    trace.ops.pop_back();
                    t.fusedInit = true;
                }
            }
            emit(t);
            lastInit = (op.gate == Gate::Init1 && !t.fusedInit)
                           ? static_cast<int64_t>(trace.ops.size()) - 1
                           : -1;
            break;
          }
          case OpType::LogicV: {
            fatalIf(op.index >= geo.slots(),
                    "logicV: slot index out of range");
            fatalIf(op.rowIn >= geo.rows || op.rowOut >= geo.rows,
                    "logicV: row out of range");
            panicIf(op.gate == Gate::Nor,
                    "logicV: NOR is not supported vertically");
            stats.record(OpClass::LogicV);
            if (op.gate == Gate::Not)
                ++stats.logicGates;
            else
                ++stats.logicInits;
            TraceOp t;
            t.type = OpType::LogicV;
            t.gate = op.gate;
            t.rowIn = op.rowIn;
            t.rowOut = op.rowOut;
            t.index = op.index;
            t.xb = mask.xb;
            emit(t);
            lastInit = -1;
            break;
          }
          default:
            panic("segment trace: barrier op inside a segment");
        }
    }
    if (!trace.ops.empty()) {
        trace.xbLo = lo;
        trace.xbHi = hi;
    }
}

} // namespace pypim
