#include "sim/segment_trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pypim
{

/**
 * True iff an INIT1 LogicH may be folded into the NOR/NOT that
 * follows it: both must drive exactly the same set of output columns,
 * and no input column of the NOR/NOT may alias any of those outputs
 * (the gate must read pre-INIT state of nothing it initialises —
 * otherwise the fused single pass would observe un-initialised
 * inputs). Active sections are emitted in ascending partition order by
 * expandLogicH, so the output sets compare positionally.
 */
bool
fusableInitNor(const HalfGates &init, const HalfGates &nor)
{
    if (init.gate != Gate::Init1)
        return false;
    int32_t outs[maxPartitions];
    uint32_t n = 0;
    for (uint32_t s = 0; s < init.numSections; ++s) {
        const Section &sec = init.sections[s];
        if (sec.active())
            outs[n++] = sec.outCol;
    }
    uint32_t m = 0;
    for (uint32_t s = 0; s < nor.numSections; ++s) {
        const Section &sec = nor.sections[s];
        if (!sec.active())
            continue;
        if (m >= n || outs[m] != sec.outCol)
            return false;
        ++m;
    }
    if (m != n)
        return false;
    for (uint32_t s = 0; s < nor.numSections; ++s) {
        const Section &sec = nor.sections[s];
        for (uint32_t i = 0; i < sec.numIn; ++i)
            for (uint32_t j = 0; j < n; ++j)
                if (sec.inCol[i] == outs[j])
                    return false;
    }
    return true;
}

void
buildSegmentTrace(const Word *ops, size_t n, const Geometry &geo,
                  MaskState &mask, Stats &stats, SegmentTrace &trace)
{
    trace.clear(geo.rows);

    // Lazily-materialised row-mask snapshot: snapId/snapRange identify
    // the last snapshot appended to the arena; snapCurrent says the
    // live mask still matches it, so consecutive work ops (and
    // re-issued identical row masks) share one snapshot.
    int64_t snapId = -1;
    Range snapRange;
    bool snapCurrent = false;
    const auto rowSnapshot = [&]() -> uint32_t {
        if (!snapCurrent) {
            snapId = static_cast<int64_t>(
                trace.rowWords.size() / trace.wordsPerMask);
            trace.rowWords.insert(trace.rowWords.end(),
                                  mask.rowWords.begin(),
                                  mask.rowWords.end());
            snapRange = mask.row;
            snapCurrent = true;
        }
        return static_cast<uint32_t>(snapId);
    };

    // Index of the trailing op iff it is a fusable (un-fused) INIT1
    // LogicH; any other emission clears it. Intervening mask ops are
    // fine: fusion compares the ops' effective mask snapshots.
    int64_t lastInit = -1;

    uint32_t lo = UINT32_MAX, hi = 0;
    const auto emit = [&](const TraceOp &t) {
        lo = std::min(lo, t.xb.start);
        hi = std::max(hi, t.xb.stop + 1);
        trace.ops.push_back(t);
    };

    for (size_t i = 0; i < n; ++i) {
        const MicroOp op = MicroOp::decode(ops[i]);
        switch (op.type) {
          case OpType::CrossbarMask:
            op.range.validate(geo.numCrossbars, "crossbar");
            mask.xb = op.range;
            stats.record(OpClass::CrossbarMask);
            break;
          case OpType::RowMask:
            op.range.validate(geo.rows, "row");
            mask.setRow(op.range, geo.rows);
            stats.record(OpClass::RowMask);
            snapCurrent = snapId >= 0 && op.range == snapRange;
            break;
          case OpType::Write: {
            fatalIf(op.index >= geo.slots(),
                    "write: slot index out of range");
            stats.record(OpClass::Write);
            TraceOp t;
            t.type = OpType::Write;
            t.index = op.index;
            t.value = op.value;
            t.rowMask = rowSnapshot();
            t.xb = mask.xb;
            emit(t);
            lastInit = -1;
            break;
          }
          case OpType::LogicH: {
            stats.record(OpClass::LogicH);
            if (op.gate == Gate::Nor || op.gate == Gate::Not)
                ++stats.logicGates;
            else
                ++stats.logicInits;
            TraceOp t;
            t.type = OpType::LogicH;
            t.hg = static_cast<uint32_t>(trace.halfGates.size());
            trace.halfGates.push_back(expandLogicH(op, geo));
            t.rowMask = rowSnapshot();
            t.xb = mask.xb;
            if ((op.gate == Gate::Nor || op.gate == Gate::Not) &&
                lastInit >= 0) {
                const TraceOp &init = trace.ops[lastInit];
                if (init.xb == t.xb && init.rowMask == t.rowMask &&
                    fusableInitNor(trace.halfGates[init.hg],
                                   trace.halfGates[t.hg])) {
                    trace.ops.pop_back();
                    t.fusedInit = true;
                }
            }
            emit(t);
            lastInit = (op.gate == Gate::Init1 && !t.fusedInit)
                           ? static_cast<int64_t>(trace.ops.size()) - 1
                           : -1;
            break;
          }
          case OpType::LogicV: {
            fatalIf(op.index >= geo.slots(),
                    "logicV: slot index out of range");
            fatalIf(op.rowIn >= geo.rows || op.rowOut >= geo.rows,
                    "logicV: row out of range");
            panicIf(op.gate == Gate::Nor,
                    "logicV: NOR is not supported vertically");
            stats.record(OpClass::LogicV);
            if (op.gate == Gate::Not)
                ++stats.logicGates;
            else
                ++stats.logicInits;
            TraceOp t;
            t.type = OpType::LogicV;
            t.gate = op.gate;
            t.rowIn = op.rowIn;
            t.rowOut = op.rowOut;
            t.index = op.index;
            t.xb = mask.xb;
            emit(t);
            lastInit = -1;
            break;
          }
          default:
            panic("segment trace: barrier op inside a segment");
        }
    }
    if (!trace.ops.empty()) {
        trace.xbLo = lo;
        trace.xbHi = hi;
    }
}

} // namespace pypim
