#include "sim/serial_engine.hpp"

namespace pypim
{

void
SerialEngine::execute(const Word *ops, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        serialPerform(MicroOp::decode(ops[i]));
}

} // namespace pypim
