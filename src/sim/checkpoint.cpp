#include "sim/checkpoint.hpp"

#include <string>

#include "common/error.hpp"
#include "sim/device_group.hpp"
#include "sim/fault.hpp"

namespace pypim
{

namespace
{

bool
sameGeometry(const Geometry &a, const Geometry &b)
{
    return a.rows == b.rows && a.cols == b.cols &&
           a.partitions == b.partitions && a.wordBits == b.wordBits &&
           a.numCrossbars == b.numCrossbars &&
           a.clockHz == b.clockHz && a.userRegs == b.userRegs;
}

} // namespace

CheckpointImage
buildGroupImage(const SimulatorGroup &group)
{
    // Socket transport: the slices live in worker processes; each
    // contributes its owned crossbars' canonical records over the
    // wire and worker 0 speaks for the replicated masks and stats.
    if (group.remote())
        return group.fetchRemoteImage();

    CheckpointImage img;
    const Simulator &sub0 = group.sub(0);
    img.geo = sub0.geometry();
    img.deviceCount = group.devices();
    // Replicated across sub-devices: sub-device 0's view is the
    // logical device's (the group invariant).
    img.maskXb = sub0.crossbarMask();
    img.maskRow = sub0.rowMask();
    img.archStats = group.stats();
    for (uint32_t xb = 0; xb < img.geo.numCrossbars; ++xb) {
        // The const accessor drains the owning sub-device — after the
        // first crossbar of a slice this is a no-op, so the whole
        // walk quiesces each pipeline exactly once.
        const Crossbar &cxb = group.crossbar(xb);
        if (xb == 0)
            img.storage = cxb.storage();
        // The issue's cheap-checkpoint contract: a COW snapshot per
        // crossbar (shared blocks, no slab copies for paged storage),
        // walked canonically so dense and paged produce the identical
        // image.
        const Crossbar::Snapshot snap = cxb.snapshot();
        CrossbarImage ci;
        ci.xb = xb;
        snap.forEachNonZeroBlock([&](uint32_t col, uint32_t b,
                                     const uint64_t *w, uint32_t n) {
            ci.blocks.push_back(BlockRecord{
                col, b, std::vector<uint64_t>(w, w + n)});
        });
        if (!ci.blocks.empty())
            img.crossbars.push_back(std::move(ci));
    }
    return img;
}

void
restoreGroupImage(SimulatorGroup &group, const CheckpointImage &img)
{
    fatalIf(!sameGeometry(group.geometry(), img.geo),
            "restore: checkpoint geometry does not match this device");
    // Socket transport: broadcast the image — each worker restores its
    // owned slice (respawning any dead worker first, which is the
    // WorkerDied recovery path).
    if (group.remote()) {
        group.restoreRemoteImage(img);
        return;
    }
    // 1. Clear sticky pipeline errors FIRST: the restore below drains
    // every pipeline, and a drain rethrows — but restoring IS the
    // recovery from whatever made the error sticky.
    for (uint32_t d = 0; d < group.devices(); ++d)
        group.sub(d).clearPipelineError();
    // 2. Replicated architectural state on every sub-device.
    for (uint32_t d = 0; d < group.devices(); ++d)
        group.sub(d).restoreArchState(img.maskXb, img.maskRow,
                                      img.archStats);
    // 3. Crossbar state: zero everything owned, then load the image's
    // non-zero blocks into the owning slices. Global-coordinate
    // records make any source-to-target device count reassembly plain
    // deviceOf() routing.
    for (uint32_t xb = 0; xb < img.geo.numCrossbars; ++xb)
        group.crossbar(xb).resetState();
    for (const CrossbarImage &ci : img.crossbars) {
        fatalIf(ci.xb >= img.geo.numCrossbars,
                "restore: crossbar record " + std::to_string(ci.xb) +
                    " outside the geometry");
        Crossbar &xb = group.crossbar(ci.xb);
        for (const BlockRecord &rec : ci.blocks)
            xb.loadBlock(rec.col, rec.block, rec.words.data(),
                         static_cast<uint32_t>(rec.words.size()));
    }
    // 4. The rewrite went through non-const crossbar() (which marks
    // the checksum baseline stale); re-bless so verification resumes
    // from the restored state.
    for (uint32_t d = 0; d < group.devices(); ++d)
        group.sub(d).rebaselineChecksums();
}

RecoverySink::RecoverySink(SimulatorGroup &group,
                           const EngineConfig &ec)
    : group_(group), enabled_(ec.verifyState)
{
    if (enabled_)
        baseline_ = buildGroupImage(group_);
}

void
RecoverySink::rebaseline()
{
    if (!enabled_)
        return;
    baseline_ = buildGroupImage(group_);
    journal_.clear();
    terminal_ = nullptr;
    needRecover_ = false;
}

void
RecoverySink::setSuppressed(bool on)
{
    group_.suppressFaults(on);
}

void
RecoverySink::applyCall(const Call &c)
{
    switch (c.kind) {
      case Call::Kind::Batch:
        group_.submitBatch(c.ops.data(), c.ops.size());
        break;
      case Call::Kind::Trace:
        group_.submitTrace(c.trace);
        break;
      case Call::Kind::Read:
        group_.performRead(c.readOp);  // response discarded: only the
        break;                         // stats/mask effect matters
      case Call::Kind::BulkRead: {
        std::vector<uint32_t> scratch(c.spec.count);
        BulkIoTelemetry tel;
        group_.readBulk(c.spec, scratch.data(), tel);
        break;
      }
      case Call::Kind::BulkWrite: {
        BulkIoTelemetry tel;
        group_.writeBulk(c.spec, c.values.data(), tel);
        break;
      }
    }
}

void
RecoverySink::recover()
{
    // One-shot and random fault classes are suppressed during the
    // re-replay (a retry models a re-run that does not hit the same
    // transient); stuck-at pins stay active — persistent damage does
    // not heal because the host retried, which is exactly how the
    // retry cap gets exhausted and the failure goes terminal.
    setSuppressed(true);
    try {
        restoreGroupImage(group_, baseline_);
        for (const Call &c : journal_)
            applyCall(c);
        // Surface re-replay faults here (inside the retry loop), not
        // at some later unrelated call.
        group_.flush();
    } catch (...) {
        setSuppressed(false);
        throw;
    }
    setSuppressed(false);
    needRecover_ = false;
    ++stats_.recoveries;
    // The flush above verified the re-replayed state, so it is a
    // known-good rollback point: advance the baseline and drop the
    // journal. Without this, every recovery re-replays from the LAST
    // CHECKPOINT — quadratic in program length under a sustained
    // fault rate; with it, each re-replay covers only the calls since
    // the previous fault. (Cost: one COW snapshot walk per recovery,
    // O(live data).)
    baseline_ = buildGroupImage(group_);
    journal_.clear();
}

template <typename Fn>
auto
RecoverySink::runRecovered(Fn &&fn)
{
    if (terminal_)
        std::rethrow_exception(terminal_);
    for (uint32_t attempt = 0;; ++attempt) {
        try {
            if (needRecover_)
                recover();
            return fn();
        } catch (const DeviceFault &) {
            // Detected corruption or an injected failure — the
            // recoverable family. Anything else (user Error,
            // InternalError) propagates untouched.
            ++stats_.faultsDetected;
            needRecover_ = true;
            if (attempt + 1 >= kRetryCap) {
                terminal_ = std::current_exception();
                std::rethrow_exception(terminal_);
            }
        }
    }
}

void
RecoverySink::performBatch(const Word *ops, size_t n)
{
    if (!enabled_) {
        group_.performBatch(ops, n);
        return;
    }
    runRecovered([&] { group_.performBatch(ops, n); });
    Call c;
    c.kind = Call::Kind::Batch;
    c.ops.assign(ops, ops + n);
    journal_.push_back(std::move(c));
}

void
RecoverySink::submitBatch(const Word *ops, size_t n)
{
    if (!enabled_) {
        group_.submitBatch(ops, n);
        return;
    }
    runRecovered([&] { group_.submitBatch(ops, n); });
    Call c;
    c.kind = Call::Kind::Batch;
    c.ops.assign(ops, ops + n);
    journal_.push_back(std::move(c));
}

void
RecoverySink::flush()
{
    if (!enabled_) {
        group_.flush();
        return;
    }
    // No journal entry: a flush has no architectural effect, but its
    // drain is where pipelined faults surface — the retry loop is
    // what turns that sticky error into a recovery.
    runRecovered([&] { group_.flush(); });
}

uint32_t
RecoverySink::performRead(Word op)
{
    if (!enabled_)
        return group_.performRead(op);
    const uint32_t v = runRecovered([&] { return group_.performRead(op); });
    Call c;
    c.kind = Call::Kind::Read;
    c.readOp = op;
    journal_.push_back(std::move(c));
    return v;
}

std::shared_ptr<const BatchTrace>
RecoverySink::prepareTrace(const Word *ops, size_t n, bool fuse)
{
    // Builds touch no architectural state: no journal, no guard.
    return group_.prepareTrace(ops, n, fuse);
}

void
RecoverySink::submitTrace(std::shared_ptr<const BatchTrace> trace)
{
    if (!enabled_) {
        group_.submitTrace(std::move(trace));
        return;
    }
    runRecovered([&] { group_.submitTrace(trace); });
    Call c;
    c.kind = Call::Kind::Trace;
    c.trace = std::move(trace);
    journal_.push_back(std::move(c));
}

bool
RecoverySink::readBulk(const BulkIoSpec &spec, uint32_t *out,
                       BulkIoTelemetry &tel)
{
    if (!enabled_)
        return group_.readBulk(spec, out, tel);
    const bool ok =
        runRecovered([&] { return group_.readBulk(spec, out, tel); });
    if (ok) {
        Call c;
        c.kind = Call::Kind::BulkRead;
        c.spec = spec;
        journal_.push_back(std::move(c));
    }
    return ok;
}

bool
RecoverySink::writeBulk(const BulkIoSpec &spec,
                        const uint32_t *values, BulkIoTelemetry &tel)
{
    if (!enabled_)
        return group_.writeBulk(spec, values, tel);
    const bool ok = runRecovered(
        [&] { return group_.writeBulk(spec, values, tel); });
    if (ok) {
        Call c;
        c.kind = Call::Kind::BulkWrite;
        c.spec = spec;
        c.values.assign(values, values + spec.count);
        journal_.push_back(std::move(c));
    }
    return ok;
}

} // namespace pypim
