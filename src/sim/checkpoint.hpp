/**
 * @file
 * Crash-consistent checkpoint/restore and journaled recovery.
 *
 * Three pieces sit here, all at group level (global crossbar
 * coordinates, any PYPIM_DEVICES count):
 *
 *  - buildGroupImage: quiesce every sub-device at its drain point,
 *    take a COW snapshot of every owned crossbar (cheap: shared
 *    blocks, no slab copies — sim/crossbar.hpp) and walk the
 *    snapshots into a canonical CheckpointImage (sim/serialize.hpp).
 *    Mask state and architectural Stats are replicated across
 *    sub-devices, so sub-device 0's view is the device's.
 *
 *  - restoreGroupImage: the inverse — clear any sticky pipeline
 *    errors, rewrite mask + Stats on every sub-device, reset every
 *    owned crossbar and reload the image's non-zero blocks into the
 *    owning slices, then re-bless the state checksums. Because the
 *    image is global-coordinate and canonical, a checkpoint taken at
 *    one device count restores into any other (slice reassembly is
 *    just deviceOf() routing), and dense/paged sources are
 *    interchangeable.
 *
 *  - RecoverySink: the retry-with-restore policy behind the
 *    OperationSink seam, sitting between the Device's driver and its
 *    SimulatorGroup. When EngineConfig::verifyState is on it keeps a
 *    rollback baseline (group-state-only CheckpointImage) plus a
 *    journal of every state-affecting call since, and wraps each
 *    forwarded call in a bounded retry loop: a DeviceFault
 *    (sim/fault.hpp — a failed checksum verify or an injected replay
 *    abort, including one rethrown from a pipeline's sticky error)
 *    triggers restore-baseline + re-replay-journal with the
 *    injector's one-shot/transient classes suppressed, then the call
 *    retries. Unrecoverable damage (stuck-at pins re-corrupting every
 *    re-replay) exhausts kRetryCap and becomes a STICKY terminal
 *    error rethrown at this and every later call — the PR 3
 *    report-at-sync contract, never silent corruption. When
 *    verifyState is off the sink is a zero-overhead forwarder: faults
 *    are injected but undetected, and a failed replay surfaces as the
 *    pipeline's own sticky error until Device::restore clears it.
 */
#ifndef PYPIM_SIM_CHECKPOINT_HPP
#define PYPIM_SIM_CHECKPOINT_HPP

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/bulk_io.hpp"
#include "sim/serialize.hpp"
#include "sim/sink.hpp"

namespace pypim
{

class SimulatorGroup;

/**
 * Snapshot the group's architectural state (crossbars, mask, Stats)
 * into a canonical global-coordinate image. Drains every sub-device;
 * the opaque host-layer blobs (allocator, driver cache) stay empty —
 * Device::checkpoint fills them. @p group is mutated only through
 * drain points (const access would also drain, but snapshot() is
 * routed through the owning sub-device's crossbar accessor).
 */
CheckpointImage buildGroupImage(const SimulatorGroup &group);

/**
 * Rewrite the group's architectural state from @p img (which must
 * match the group's geometry; device count and storage mode of the
 * source are free). Clears sticky pipeline errors first — restoring
 * IS the recovery from whatever made them sticky.
 */
void restoreGroupImage(SimulatorGroup &group,
                       const CheckpointImage &img);

/**
 * Journaling retry-with-restore sink wrapping a SimulatorGroup (see
 * file header). Active only when ec.verifyState is set; otherwise a
 * transparent forwarder.
 */
class RecoverySink : public OperationSink
{
  public:
    /** Recovery attempts per forwarded call before the failure goes
     *  terminal. */
    static constexpr uint32_t kRetryCap = 3;

    RecoverySink(SimulatorGroup &group, const EngineConfig &ec);

    bool enabled() const { return enabled_; }

    /**
     * Adopt the CURRENT group state as the rollback baseline (called
     * after Device::checkpoint and Device::restore): empties the
     * journal and clears any terminal error — a restored device is a
     * healthy device.
     */
    void rebaseline();

    /** Host-side fault counters: faultsDetected / recoveries /
     *  checkpointBytes (injected counts live with the injectors —
     *  SimulatorGroup::faultsInjected). */
    Stats &recoveryStats() { return stats_; }
    const Stats &recoveryStats() const { return stats_; }

    /** Journaled state-affecting calls since the last baseline. */
    uint64_t journaledCalls() const { return journal_.size(); }

    // --- OperationSink -----------------------------------------------
    void performBatch(const Word *ops, size_t n) override;
    void submitBatch(const Word *ops, size_t n) override;
    void flush() override;
    uint32_t performRead(Word op) override;
    std::shared_ptr<const BatchTrace>
    prepareTrace(const Word *ops, size_t n, bool fuse) override;
    void submitTrace(std::shared_ptr<const BatchTrace> trace) override;
    bool readBulk(const BulkIoSpec &spec, uint32_t *out,
                  BulkIoTelemetry &tel) override;
    bool writeBulk(const BulkIoSpec &spec, const uint32_t *values,
                   BulkIoTelemetry &tel) override;

  private:
    /** One journaled call, replayed verbatim during recovery. Reads
     *  are journaled too: they carry architectural stats/mask effects
     *  that the restored baseline no longer contains. */
    struct Call
    {
        enum class Kind : uint8_t
        {
            Batch,     //!< raw micro-op stream
            Trace,     //!< shared pre-built trace handle
            Read,      //!< single Read op (response discarded)
            BulkRead,  //!< bulk gather (into scratch)
            BulkWrite  //!< bulk scatter
        };
        Kind kind = Kind::Batch;
        std::vector<Word> ops;
        std::shared_ptr<const BatchTrace> trace;
        Word readOp = 0;
        BulkIoSpec spec;
        std::vector<uint32_t> values;
    };

    /** Run @p fn under the bounded retry-with-restore policy. */
    template <typename Fn> auto runRecovered(Fn &&fn);
    /** Restore baseline + re-replay the journal (injector one-shot
     *  classes suppressed). Throws if the re-replay itself faults. */
    void recover();
    /** Apply one journaled call directly to the group. */
    void applyCall(const Call &c);
    void setSuppressed(bool on);

    SimulatorGroup &group_;
    bool enabled_ = false;
    CheckpointImage baseline_;
    std::vector<Call> journal_;
    bool needRecover_ = false;
    std::exception_ptr terminal_;  //!< sticky: retry cap exhausted
    Stats stats_;
};

} // namespace pypim

#endif // PYPIM_SIM_CHECKPOINT_HPP
