/**
 * @file
 * Seeded deterministic fault injection (PYPIM_FAULTS).
 *
 * Real PIM deployments are host runtimes feeding thousands of
 * accelerator arrays where bit errors and unit loss are operational
 * facts; this injector models them INSIDE the simulator stack, behind
 * the OperationSink seam, so every engine x storage x device
 * combination is injectable with no code path of its own:
 *
 *  - flip=P   : with probability P% after each replayed batch, toggle
 *               one stored bit of a random owned crossbar (transient
 *               upset; recoverable by restore + journal replay);
 *  - stuck=K  : pin K bits stuck at a fixed value, re-applied after
 *               every batch (persistent device damage: re-appears
 *               even after a successful recovery, so a workload that
 *               keeps writing the opposing value exhausts the retry
 *               budget and surfaces the sticky terminal error);
 *  - fail=N   : abort the N-th replayed batch with an InjectedFault
 *               (a sub-device dying mid-batch; one-shot, so the
 *               journaled re-replay succeeds);
 *  - poison=N : silently scribble a multi-bit pattern over the state
 *               after the N-th batch (a corrupted pipeline hand-off;
 *               one-shot, caught by the next checksum verify);
 *  - dev=K    : restrict injection to sub-device K (default: all);
 *  - seed=S   : base RNG seed; each sub-device derives its own stream
 *               from (S, deviceIndex), so runs are reproducible at
 *               any device count.
 *
 * Injection happens AFTER the simulator blesses its per-crossbar
 * checksums (sim/simulator.hpp), through the same setBit mutation API
 * replay uses (COW-safe) but WITHOUT blessing — exactly how silent
 * hardware corruption differs from legitimate work, and exactly what
 * the PYPIM_VERIFY_STATE checksum verify detects on the next batch or
 * drain point.
 *
 * Error taxonomy: DeviceFault (a recoverable pypim::Error) is the
 * base the RecoverySink's retry-with-restore policy catches;
 * StateCorruption is a failed checksum verify, InjectedFault an
 * injector-triggered replay abort. Everything else (user Error,
 * InternalError) passes through recovery untouched.
 */
#ifndef PYPIM_SIM_FAULT_HPP
#define PYPIM_SIM_FAULT_HPP

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"

namespace pypim
{

class Crossbar;

/** Base of the recoverable fault family (retry-with-restore target). */
class DeviceFault : public Error
{
  public:
    explicit DeviceFault(const std::string &msg) : Error(msg) {}
};

/** A checksum verify found state no legitimate path produced. */
class StateCorruption : public DeviceFault
{
  public:
    explicit StateCorruption(const std::string &msg) : DeviceFault(msg)
    {
    }
};

/** The injector aborted a replay (simulated sub-device failure). */
class InjectedFault : public DeviceFault
{
  public:
    explicit InjectedFault(const std::string &msg) : DeviceFault(msg)
    {
    }
};

/** Parsed PYPIM_FAULTS specification (see file header). */
struct FaultSpec
{
    uint64_t seed = 1;
    uint32_t flipPct = 0;       //!< per-batch transient-flip chance [%]
    uint32_t stuckBits = 0;     //!< persistent stuck-at pins
    uint64_t failAtBatch = 0;   //!< 1-based batch to abort (0 = never)
    uint64_t poisonAtBatch = 0; //!< 1-based batch to poison (0 = never)
    int32_t device = -1;        //!< target sub-device (-1 = all)

    bool
    any() const
    {
        return flipPct || stuckBits || failAtBatch || poisonAtBatch;
    }

    /**
     * Parse a colon-separated "key=value" list, e.g.
     * "seed=7:flip=25:fail=3:dev=1". Unknown keys, malformed values
     * and out-of-range numbers throw pypim::Error — a typo must never
     * silently run an un-faulted soak.
     */
    static FaultSpec parse(const std::string &s);
};

/**
 * Per-sub-device deterministic injector. Owned by the SimulatorGroup,
 * driven by the Simulator's post-replay hook; all methods run on
 * whichever thread replays batches (the pipeline consumer when
 * pipelined), never concurrently with each other.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultSpec &spec, uint32_t deviceIndex,
                  uint32_t sliceLo, uint32_t sliceCount,
                  const Geometry &geo);

    /** True iff this sub-device is targeted by the spec. */
    bool active() const { return active_; }

    /**
     * Count the batch and throw InjectedFault at the configured
     * fail point. Called before the batch's checksums are blessed;
     * one-shot, so the journaled re-replay of the same batch
     * succeeds.
     */
    void maybeFail();

    /**
     * Apply the corrupting fault classes (flip / poison / stuck) to
     * the owned crossbars — after blessing, without blessing, so the
     * next verify sees them. @p xbs is the owning simulator's slice.
     */
    void corrupt(std::vector<Crossbar> &xbs);

    /**
     * Suppress one-shot/random classes during recovery replay (the
     * retry models a re-run that does not hit the same transient).
     * Stuck pins stay applied either way: persistent damage does not
     * heal because the host retried.
     */
    void setSuppressed(bool on) { suppressed_ = on; }

    /** Faults injected so far (flips + poisons + fails + stuck-at
     *  applications that changed a bit). */
    uint64_t injected() const { return injected_; }

  private:
    struct StuckPin
    {
        uint32_t xb;   //!< slice-local crossbar index
        uint32_t row;
        uint32_t col;
        bool value;
    };

    FaultSpec spec_;
    bool active_ = false;
    uint32_t sliceCount_;
    const Geometry *geo_;
    std::mt19937_64 rng_;
    uint64_t batch_ = 0;
    bool failFired_ = false;
    bool poisonFired_ = false;
    bool suppressed_ = false;
    std::vector<StuckPin> stuck_;  //!< chosen lazily on first corrupt
    uint64_t injected_ = 0;
};

} // namespace pypim

#endif // PYPIM_SIM_FAULT_HPP
