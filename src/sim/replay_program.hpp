/**
 * @file
 * Compiled replay programs: the second compilation tier of the trace
 * cache.
 *
 * A SegmentTrace is already decode-once, but REPLAY of it is still an
 * interpreter: Crossbar::replaySegment runs a per-op switch per
 * crossbar, re-resolves the row-mask handle per op, re-scans write
 * stripes and LogicV runs per crossbar, branches dense-vs-paged
 * inside every kernel, and charges Stats once per architectural op.
 * For a trace frozen into the per-signature cache that overhead is
 * paid on every one of the thousands of replays the entry serves.
 *
 * compileBatchTrace() lowers every segment of a frozen BatchTrace
 * into a flat SoA ReplayProgram whose instructions are fully
 * pre-resolved:
 *
 *  - row-mask snapshot ids become direct word offsets into the
 *    program's own mask arena, resolved once at compile time, with a
 *    per-instruction all-ones flag so the executors can drop the
 *    `& mask` blend from the inner word loops (the all-rows mask is
 *    the overwhelmingly common case);
 *  - consecutive LogicH ops under an identical mask and crossbar
 *    range merge into ONE multi-section column pass — one mask load
 *    (and, paged, one mask-nonzero block scan) shared by all
 *    sections. Merging requires the sections to be pairwise
 *    independent (no op may read or write a column an earlier merged
 *    op wrote, or write one it read), so the merged pass is
 *    order-free — the generalisation of the INIT1->NOR fusion
 *    legality to whole passes, and the property a future data-
 *    parallel (GPU) executor needs;
 *  - write stripes arrive pre-chunked ({slot, value} pairs in a flat
 *    arena; a plain Write is a stripe of one) and LogicV runs arrive
 *    pre-decoded (word index / bit mask forms in a flat arena), so
 *    replay never re-derives either per crossbar;
 *  - per-instruction applied-op counts are precomputed, so the
 *    work-stealing engine's load diagnostics charge Stats once per
 *    instruction — or, when every instruction shares one crossbar
 *    range (uniformXb), once per CROSSBAR — instead of once per op.
 *
 * Replay dispatches once per segment into Crossbar::replayProgram,
 * which selects a template-specialized executor over {Dense, Paged}
 * x {all masks full, some partial}; see crossbar.cpp. Programs are
 * pointer-free flat arrays — deliberately the shape of an
 * upload-once device-side object for the ROADMAP's GPU engine.
 *
 * The one-shot arena path (the asynchronous pipeline's uncached
 * batches) keeps the interpreter: those traces replay exactly once,
 * so compile time there is pure loss. The interpreter also stays the
 * parity oracle behind PYPIM_COMPILED_REPLAY=0
 * (tests/test_replay_program.cpp).
 */
#ifndef PYPIM_SIM_REPLAY_PROGRAM_HPP
#define PYPIM_SIM_REPLAY_PROGRAM_HPP

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "uarch/microop.hpp"
#include "uarch/range.hpp"

namespace pypim
{

struct BatchTrace;
struct SegmentTrace;

/** One segment lowered into flat, fully pre-resolved form. */
struct ReplayProgram
{
    /** What one section of a merged column pass computes. */
    enum class SecKind : uint8_t
    {
        Init0,      //!< out &= ~mask (full: out = 0)
        Init1,      //!< out |= mask (full: out = ~0)
        NotNor,     //!< out &= ~((a|b) & mask)
        FusedNotNor //!< out = (out & ~mask) | (~(a|b) & mask)
    };

    /** One column of a merged LogicH pass, fully resolved. */
    struct PSection
    {
        SecKind kind = SecKind::Init0;
        uint16_t outCol = 0;
        uint16_t inA = 0, inB = 0;  //!< NotNor/FusedNotNor only
    };

    /** One pre-decoded LogicV gate of a run (replay-ready form). */
    struct VGate
    {
        Gate gate = Gate::Init0;
        uint32_t inWord = 0, inShift = 0;
        uint32_t outWord = 0;
        uint64_t outBit = 0;
    };

    enum class Kind : uint8_t
    {
        HPass,   //!< count sections at sections[off] under one mask
        WStripe, //!< count {slot,value} pairs at pairs[off]
        VRun     //!< count pre-decoded gates at vgates[off] on slot
    };

    /** Instr::passKind sentinel: the pass mixes section kinds. */
    static constexpr uint8_t kMixedPass = 0xFF;

    /** One replay instruction; all operands pre-resolved. */
    struct Instr
    {
        Kind kind = Kind::HPass;
        OpClass cls = OpClass::LogicH;  //!< applied-work class
        /** Realized row mask is all-ones words: blend-free kernels. */
        uint8_t maskFull = 0;
        /**
         * HPass only: the one SecKind every section of the pass
         * computes, or kMixedPass. One op's sections always share
         * their gate, and most merges chain the same gate (the
         * INIT1+NOR idiom fuses into all-FusedNotNor passes first),
         * so homogeneous passes are the common case — the executors
         * hoist the per-section kind switch out of the column loop
         * for them (crossbar.cpp).
         */
        uint8_t passKind = kMixedPass;
        uint32_t off = 0;      //!< first section / pair / vgate
        uint32_t count = 0;    //!< sections / pairs / vgates
        uint32_t maskOff = 0;  //!< word offset into maskWords
        uint32_t slot = 0;     //!< VRun: intra-partition index
        uint32_t work = 0;     //!< architectural ops this applies
        Range xb;              //!< crossbar-mask snapshot (uniform)
    };

    std::vector<Instr> instrs;
    std::vector<PSection> sections;
    std::vector<StripeWrite> pairs;
    std::vector<VGate> vgates;
    /** Row-mask snapshots, wordsPerMask words each (own arena — the
     *  program is self-contained and pointer-free). */
    std::vector<uint64_t> maskWords;
    uint32_t wordsPerMask = 0;
    /** Crossbar hull, as SegmentTrace::xbLo/xbHi. */
    uint32_t xbLo = 0, xbHi = 0;
    /** Every masked instruction's realized mask is all-ones: dispatch
     *  to the blend-free executor specialization. */
    bool allMasksFull = false;
    /**
     * Every instruction carries the SAME crossbar range @ref xb: the
     * executor tests containment once per crossbar and charges the
     * per-class totals below in three counter bumps, skipping every
     * per-instruction check.
     */
    bool uniformXb = false;
    Range xb;
    uint64_t workWrites = 0, workLogicH = 0, workLogicV = 0;

    bool empty() const { return instrs.empty(); }
};

/**
 * Lower @p trace into @p prog (cleared first). Pure function of the
 * trace: never touches crossbar state, runs once per frozen
 * signature. The merge pass is conservative — an op that cannot
 * legally join the open pass (mask or crossbar-range change, section
 * capacity, column aliasing) starts a new instruction, never changes
 * semantics: compiled replay is bit-identical to the interpreter on
 * every storage mode (tests/test_replay_program.cpp).
 */
void compileSegmentProgram(const SegmentTrace &trace,
                           const Geometry &geo, ReplayProgram &prog);

/**
 * Compile every segment of @p batch into BatchTrace::programs —
 * called by Simulator::prepareTrace after window fusion, just before
 * the batch is frozen behind shared_ptr<const>. Engines then
 * dispatch each segment item to the compiled program when present
 * (ExecutionEngine::replayBatch).
 */
void compileBatchTrace(BatchTrace &batch, const Geometry &geo);

} // namespace pypim

#endif // PYPIM_SIM_REPLAY_PROGRAM_HPP
