/**
 * @file
 * Micro-operation sinks.
 *
 * The host driver emits encoded micro-operations into an
 * OperationSink. The cycle-accurate Simulator is the drop-in
 * replacement for a physical PIM chip (paper §VI); BufferSink models
 * the "ideal chip" used to measure the host driver's maximal
 * throughput (artifact appendix E: micro-ops are rerouted to a memory
 * buffer); CountingSink merely classifies ops for quick profiling.
 *
 * Batching: the driver accumulates the micro-ops of one
 * macro-instruction and forwards them in one performBatch call,
 * mirroring the paper's batching optimisation (§VI "the
 * micro-operations are performed in batches"). Batches are also the
 * unit of parallelism below this seam: the Simulator hands each batch
 * to a pluggable ExecutionEngine (sim/engine.hpp), which may replay
 * it shard-parallel across host threads.
 */
#ifndef PYPIM_SIM_SINK_HPP
#define PYPIM_SIM_SINK_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

struct BatchTrace;
struct BulkIoSpec;
struct BulkIoTelemetry;

/** Abstract consumer of encoded micro-operations. */
class OperationSink
{
  public:
    virtual ~OperationSink() = default;

    /** Execute @p n encoded micro-operations in order. */
    virtual void performBatch(const Word *ops, size_t n) = 0;

    /**
     * Submit @p n encoded micro-operations for (possibly asynchronous)
     * execution. The ops buffer is only read during the call; the
     * call may return before the ops have taken effect. Effects become
     * observable in submission order, at the latest after flush().
     * performRead is an implicit flush. The default forwards to the
     * synchronous performBatch, so plain sinks need not care; the
     * pipelined Simulator overrides it (sim/pipeline.hpp).
     */
    virtual void
    submitBatch(const Word *ops, size_t n)
    {
        performBatch(ops, n);
    }

    /** Drain any pending submitted work (no-op for synchronous sinks). */
    virtual void flush() {}

    /**
     * Build a shared, immutable, replay-ready trace of @p n micro-ops
     * (the trace-cache entry behind the driver's stream cache,
     * sim/batch_trace.hpp): decoded, validated, fusion-optimised once,
     * then replayed forever through submitTrace with zero decode work.
     * Does NOT execute anything and leaves the sink's architectural
     * state untouched. Returns null when the sink does not support
     * trace replay (plain sinks keep consuming raw streams) or when
     * the stream is not self-contained (it must set both masks before
     * its first non-mask op, so the decoded snapshots are independent
     * of the sink's mask state — see leadsWithMasks).
     */
    virtual std::shared_ptr<const BatchTrace>
    prepareTrace(const Word *ops, size_t n, bool fuse)
    {
        (void)ops;
        (void)n;
        (void)fuse;
        return nullptr;
    }

    /**
     * Submit a trace previously built by prepareTrace ON THIS SINK
     * for (possibly asynchronous) execution, equivalent to
     * submitBatch of the stream it was built from: the batch's
     * architectural stats and final mask state apply at the submit,
     * replay is ordered against surrounding submitBatch calls, and
     * flush()/performRead drain it. Panics on sinks whose
     * prepareTrace returned null (the caller holds no valid handle).
     */
    virtual void submitTrace(std::shared_ptr<const BatchTrace> trace);

    /**
     * Bulk block-transfer read (sim/bulk_io.hpp): drain pending work
     * ONCE, apply the spec's pre-planned architectural stats delta and
     * final mask state, then gather the addressed values into @p out
     * via the crossbars' 64x64 transpose kernels — equivalent to the
     * per-element performRead loop the spec was planned from, at a
     * fraction of the host cost. Returns false when the sink has no
     * bulk path (the default): the caller falls back to the
     * element-wise stream, which stays the parity oracle.
     */
    virtual bool
    readBulk(const BulkIoSpec &spec, uint32_t *out, BulkIoTelemetry &tel)
    {
        (void)spec;
        (void)out;
        (void)tel;
        return false;
    }

    /**
     * Bulk block-transfer write: the scatter mirror of readBulk,
     * equivalent to submitting the spec's canonical run stream.
     * Returns false when unsupported (caller emits the stream).
     */
    virtual bool
    writeBulk(const BulkIoSpec &spec, const uint32_t *values,
              BulkIoTelemetry &tel)
    {
        (void)spec;
        (void)values;
        (void)tel;
        return false;
    }

    /**
     * Execute a Read micro-op and return its N-bit response.
     * Non-simulating sinks return 0.
     */
    virtual uint32_t performRead(Word op) = 0;

    /** Convenience single-op path. */
    void perform(Word op) { performBatch(&op, 1); }
};

/**
 * Stores micro-ops into a fixed ring buffer without executing them.
 * Used by bench_driver to measure the generation rate of the host
 * driver against the chip's consumption rate (1 op/cycle at clockHz).
 */
class BufferSink : public OperationSink
{
  public:
    explicit BufferSink(size_t capacity = 1 << 16);

    void performBatch(const Word *ops, size_t n) override;
    uint32_t performRead(Word op) override;

    /** Total micro-ops received (including wrapped-over ones). */
    uint64_t total() const { return total_; }
    /** Ring buffer contents (most recent ops). */
    const std::vector<Word> &buffer() const { return buf_; }

  private:
    std::vector<Word> buf_;
    size_t pos_ = 0;
    uint64_t total_ = 0;
};

/** Counts micro-ops by class without executing them. */
class CountingSink : public OperationSink
{
  public:
    void performBatch(const Word *ops, size_t n) override;
    uint32_t performRead(Word op) override;

    const Stats &stats() const { return stats_; }
    void clear() { stats_.clear(); }

  private:
    Stats stats_;
};

} // namespace pypim

#endif // PYPIM_SIM_SINK_HPP
