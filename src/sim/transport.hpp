/**
 * @file
 * Shard transport: sub-devices as worker PROCESSES behind the
 * SimulatorGroup seam (PYPIM_TRANSPORT=socket).
 *
 * The in-process SimulatorGroup calls its slice Simulators directly;
 * the socket transport replaces those calls with a framed wire
 * protocol over per-worker Unix-domain socketpairs. Each worker is a
 * forked process running runShardWorker (sim/shard_worker.hpp) around
 * one slice Simulator; the host-side SocketTransport ports the full
 * OperationSink surface onto messages:
 *
 *  - submit/flush: micro-op batches stream asynchronously; errors a
 *    worker hits go sticky and surface at the next synchronous
 *    message (the pipelined report-at-sync contract), never silently;
 *  - frozen traces: content-addressed by traceSignature — the trace
 *    image (sim/trace_wire.hpp) crosses the wire ONCE per worker and
 *    replays from the worker's signature cache thereafter (the
 *    telemetry's traceHits counts cache-served replays);
 *  - boundary-Move exchange: stage reads and land writes batch into
 *    one message per involved worker per exchange;
 *  - bulk I/O: PR 7's packed images are the payload format;
 *  - Stats, storage gauges, compaction: synchronous queries;
 *  - checkpoint/restore: PR 9's canonical images fetched from /
 *    broadcast to the fleet — also the recovery path: a worker that
 *    dies mid-batch is detected by its broken pipe (WorkerDied, a
 *    DeviceFault), respawned fresh by the next restore, and rebuilt
 *    through the RecoverySink's journaled retry-with-restore.
 *
 * FRAMING. Every message is one frame:
 *
 *   u32 magic "PWFR" | u32 protocol version | u32 type |
 *   u64 payloadLen | u32 crc | payload
 *
 * using sim/serialize.hpp's ByteWriter/ByteReader; the checksum is
 * crc32(header prefix) ^ crc32(payload), so a single bit flip
 * ANYWHERE in the frame is detected even when it lands on another
 * valid field value. A damaged frame (bad magic/version/type, CRC
 * mismatch, truncation, trailing bytes) throws pypim::Error before
 * any state is applied —
 * fuzzed by tests/test_transport.cpp. Synchronous requests are
 * answered with a frame of the SAME type on success or kMsgErr
 * carrying the worker's typed exception, which the host rethrows as
 * the matching pypim error class.
 */
#ifndef PYPIM_SIM_TRANSPORT_HPP
#define PYPIM_SIM_TRANSPORT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/fault.hpp"
#include "sim/serialize.hpp"
#include "uarch/microop.hpp"
#include "uarch/range.hpp"

namespace pypim
{

struct BatchTrace;
struct BulkIoSpec;
struct BulkIoTelemetry;
struct StorageGauges;

/** A shard worker process exited or its socket broke mid-protocol.
 *  A DeviceFault: the journaled retry-with-restore policy recovers
 *  it against a respawned worker. */
class WorkerDied : public DeviceFault
{
  public:
    using DeviceFault::DeviceFault;
};

// --- wire protocol constants (shared with the worker loop) -------------

constexpr uint32_t kFrameMagic = 0x50574652;  // "PWFR"
constexpr uint32_t kWireVersion = 1;
/** Frame header bytes: magic, version, type, payloadLen, crc. */
constexpr size_t kFrameHeader = 4 + 4 + 4 + 8 + 4;

enum : uint32_t
{
    kMsgSubmit = 1,        //!< u64 n | n op words (async)
    kMsgFlush = 2,         //!< empty -> kMsgFlush
    kMsgRead = 3,          //!< u64 op -> kMsgRead(u32 value)
    kMsgTraceInstall = 4,  //!< trace image (async)
    kMsgTraceReplay = 5,   //!< u64 sig (async)
    kMsgBulkRead = 6,      //!< spec -> values + telemetry
    kMsgBulkWrite = 7,     //!< spec + values -> telemetry
    kMsgCellRead = 8,      //!< staged boundary reads -> values
    kMsgCellWrite = 9,     //!< boundary landing writes (async)
    kMsgStats = 10,        //!< empty -> stats + masks + faults
    kMsgClearStats = 11,   //!< empty (async)
    kMsgStateFetch = 12,   //!< empty -> slice checkpoint section
    kMsgStateRestore = 13, //!< encoded CheckpointImage -> kMsgStateRestore
    kMsgGauges = 14,       //!< empty -> StorageGauges
    kMsgCompact = 15,      //!< empty -> u64 elided
    kMsgSuppress = 16,     //!< u8 on (async)
    kMsgShutdown = 17,     //!< empty (async; worker exits)
    kMsgErr = 100          //!< u8 kind | u64 len | message bytes
};

/** Worker-side exception classes carried by kMsgErr frames. */
enum : uint8_t
{
    kErrUser = 0,        //!< pypim::Error
    kErrInternal = 1,    //!< pypim::InternalError
    kErrFault = 2,       //!< pypim::DeviceFault
    kErrCorruption = 3,  //!< pypim::StateCorruption
    kErrInjected = 4     //!< pypim::InjectedFault
};

/** One decoded frame. */
struct WireFrame
{
    uint32_t type = 0;
    std::vector<uint8_t> payload;
};

/** Encode one frame (header + CRC + payload) into a byte image —
 *  exactly what crosses the socket. */
std::vector<uint8_t> encodeFrame(uint32_t type, const uint8_t *payload,
                                 size_t n);

/**
 * Decode a complete frame image, throwing pypim::Error on bad magic,
 * version, unknown type, length/truncation mismatch, CRC damage or
 * trailing bytes — the corruption surface the wire fuzz suite
 * bit-flips. Socket reads go through the same validation.
 */
WireFrame decodeFrame(const uint8_t *bytes, size_t n);

/** Throw the typed pypim exception a kMsgErr payload carries. */
[[noreturn]] void rethrowWireError(const std::vector<uint8_t> &payload);
/** Encode an exception kind + message as a kMsgErr payload. */
std::vector<uint8_t> encodeWireError(uint8_t kind,
                                     const std::string &message);

/** Blocking framed I/O over a socket fd (both sides use these).
 *  Throws pypim::Error on EOF / broken pipe. */
void sendFrame(int fd, uint32_t type, const uint8_t *payload, size_t n);
WireFrame recvFrame(int fd);

/** Bulk-transfer spec codec shared by host and worker (the payload of
 *  kMsgBulkRead / kMsgBulkWrite, ahead of any value words). */
void writeBulkSpec(ByteWriter &w, const BulkIoSpec &spec);
BulkIoSpec readBulkSpec(ByteReader &r);

/** Host-side transport counters (SimulatorGroup::wireTelemetry). */
struct WireTelemetry
{
    uint64_t bytesTx = 0;      //!< frame bytes sent to workers
    uint64_t bytesRx = 0;      //!< frame bytes received from workers
    uint64_t roundTrips = 0;   //!< synchronous request/response pairs
    uint64_t traceInstalls = 0; //!< trace images that crossed the wire
    uint64_t traceHits = 0;    //!< replays served from a worker cache
    uint64_t exchanges = 0;    //!< boundary-Move exchange wire phases
    uint64_t exchangeNs = 0;   //!< wall time spent in those phases
};

/**
 * Host side of the socket shard transport: owns N forked worker
 * processes (one per sub-device slice) and speaks the framed protocol
 * with each. Created by SimulatorGroup when
 * EngineConfig::transport == TransportKind::Socket.
 */
class SocketTransport
{
  public:
    /** Fork @p devices workers, each simulating the slice
     *  [d*perDevice, (d+1)*perDevice) of @p geo with config @p sub
     *  (the group's per-sub-device config, faults included). */
    SocketTransport(const Geometry &geo, const EngineConfig &sub,
                    uint32_t devices, uint32_t perDevice);
    ~SocketTransport();

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    uint32_t devices() const
    {
        return static_cast<uint32_t>(workers_.size());
    }

    // --- OperationSink surface -------------------------------------
    void submitAll(const Word *ops, size_t n);
    void flushAll();
    /** Broadcast the Read; return the owning worker's response. */
    uint32_t readAll(Word op, uint32_t owner);
    /** Install-once-replay-forever: send the trace image to workers
     *  that lack the signature, then replay by signature. */
    void submitTraceAll(const BatchTrace &trace);
    void bulkReadAll(const BulkIoSpec &spec, uint32_t *out,
                     BulkIoTelemetry &tel);
    void bulkWriteAll(const BulkIoSpec &spec, const uint32_t *values,
                      BulkIoTelemetry &tel);

    // --- boundary-Move exchange ------------------------------------
    struct CellAddr
    {
        uint32_t xb = 0, slot = 0, row = 0;
    };
    struct CellPut
    {
        uint32_t xb = 0, slot = 0, value = 0, row = 0;
    };
    /** Stage: read @p addrs from worker @p d (one round trip). */
    void readCells(uint32_t d, const std::vector<CellAddr> &addrs,
                   std::vector<uint32_t> &values);
    /** Land: write @p puts into worker @p d (async). */
    void writeCells(uint32_t d, const std::vector<CellPut> &puts);
    /** Charge one boundary exchange's wall time to the telemetry. */
    void chargeExchange(uint64_t ns);

    // --- observability / state -------------------------------------
    /** Fetch worker @p d's replicated Stats block (drains it). */
    Stats fetchStats(uint32_t d, Range *maskXb = nullptr,
                     Range *maskRow = nullptr,
                     uint64_t *faultsInjected = nullptr);
    void clearStatsAll();
    uint64_t faultsInjectedAll();
    StorageGauges gaugesAll();
    uint64_t compactAll();
    void suppressFaultsAll(bool on);

    /** Assemble the logical device's CheckpointImage from every
     *  worker's owned slice (masks/stats from worker 0 — the
     *  replication invariant). */
    CheckpointImage fetchImage();
    /** Respawn any dead worker (fresh state, empty trace cache) and
     *  broadcast @p img for each to restore its owned slice — the
     *  fleet recovery path. */
    void restoreImage(const CheckpointImage &img);

    const WireTelemetry &telemetry() const { return telemetry_; }

  private:
    struct Worker
    {
        int fd = -1;
        int64_t pid = -1;
        bool alive = false;
        /** Trace signatures installed in this worker's cache. */
        std::unordered_set<uint64_t> installed;
    };

    void spawn(uint32_t d);
    /** Mark worker @p d dead and throw WorkerDied. */
    [[noreturn]] void died(uint32_t d, const std::string &what);
    void send(uint32_t d, uint32_t type, const uint8_t *payload,
              size_t n);
    WireFrame recv(uint32_t d);
    /** Synchronous request: send, await the echo-typed reply, rethrow
     *  kMsgErr as the matching exception class. */
    WireFrame roundTrip(uint32_t d, uint32_t type,
                        const uint8_t *payload, size_t n);

    Geometry geo_;
    EngineConfig sub_;
    uint32_t perDevice_;
    bool suppressed_ = false;
    std::vector<Worker> workers_;
    WireTelemetry telemetry_;
};

} // namespace pypim

#endif // PYPIM_SIM_TRANSPORT_HPP
