#include "sim/shard_worker.hpp"

#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/crossbar.hpp"
#include "sim/fault.hpp"
#include "sim/serialize.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_wire.hpp"
#include "sim/transport.hpp"

namespace pypim
{

namespace
{

/** Map the in-flight exception to its wire kind (most derived first). */
uint8_t
classifyCurrent(std::string &msg)
{
    try {
        throw;
    } catch (const StateCorruption &e) {
        msg = e.what();
        return kErrCorruption;
    } catch (const InjectedFault &e) {
        msg = e.what();
        return kErrInjected;
    } catch (const DeviceFault &e) {
        msg = e.what();
        return kErrFault;
    } catch (const InternalError &e) {
        msg = e.what();
        return kErrInternal;
    } catch (const std::exception &e) {
        msg = e.what();
        return kErrUser;
    } catch (...) {
        msg = "unknown worker exception";
        return kErrInternal;
    }
}

bool
sameGeometry(const Geometry &a, const Geometry &b)
{
    return a.rows == b.rows && a.cols == b.cols &&
           a.partitions == b.partitions && a.wordBits == b.wordBits &&
           a.numCrossbars == b.numCrossbars &&
           a.userRegs == b.userRegs && a.clockHz == b.clockHz;
}

/** Everything one worker process owns. */
struct WorkerContext
{
    WorkerContext(const Geometry &geo, const EngineConfig &sub,
                  uint32_t sliceLo, uint32_t sliceCount,
                  uint32_t deviceIndex)
        : geo(geo), sim(geo, sub, sliceLo, sliceCount),
          sliceLo(sliceLo), sliceCount(sliceCount)
    {
        // Mirror the in-process group's per-sub-device wiring: the
        // injector keys on (deviceIndex, slice) so the socket fleet
        // sees the same deterministic fault schedule.
        if (!sub.faults.empty()) {
            const FaultSpec spec = FaultSpec::parse(sub.faults);
            auto i = std::make_shared<FaultInjector>(
                spec, deviceIndex, sliceLo, sliceCount, geo);
            if (i->active()) {
                sim.setFaultInjector(i);
                injector = std::move(i);
            }
        }
        if (sub.verifyState)
            sim.setVerifyState(true);
    }

    Geometry geo;
    Simulator sim;
    uint32_t sliceLo;
    uint32_t sliceCount;
    std::shared_ptr<FaultInjector> injector;
    /** Content-addressed trace cache: each signature installed once. */
    std::unordered_map<uint64_t, std::shared_ptr<const BatchTrace>>
        traces;
};

// --- async handlers (no reply; errors go sticky) -----------------------

void
handleSubmit(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const uint64_t n = r.u64();
    fatalIf(n * 8 != r.remaining(), "submit: op count mismatch");
    std::vector<Word> ops(static_cast<size_t>(n));
    for (Word &op : ops)
        op = r.u64();
    ctx.sim.submitBatch(ops.data(), ops.size());
}

void
handleTraceInstall(WorkerContext &ctx, const WireFrame &f)
{
    auto trace = decodeTraceWire(f.payload.data(), f.payload.size(),
                                 ctx.geo, ctx.sim.htree());
    ctx.traces[trace->wireSig] = std::move(trace);
}

void
handleTraceReplay(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const uint64_t sig = r.u64();
    r.expectEnd("trace replay");
    const auto it = ctx.traces.find(sig);
    panicIf(it == ctx.traces.end(),
            "trace replay: signature never installed in this worker");
    ctx.sim.submitTrace(it->second);
}

void
handleCellWrite(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
        const uint32_t xb = r.u32();
        const uint32_t slot = r.u32();
        const uint32_t value = r.u32();
        const uint32_t row = r.u32();
        ctx.sim.crossbar(xb).writeRow(slot, value, row);
    }
    r.expectEnd("cell write");
}

// --- sync handlers (build the reply payload; errors reply kMsgErr) -----

std::vector<uint8_t>
handleFlush(WorkerContext &ctx)
{
    ctx.sim.flush();
    return {};
}

std::vector<uint8_t>
handleRead(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const Word op = r.u64();
    r.expectEnd("read");
    ByteWriter w;
    w.u32(ctx.sim.performRead(op));
    return w.take();
}

std::vector<uint8_t>
handleBulkRead(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const BulkIoSpec spec = readBulkSpec(r);
    r.expectEnd("bulk read");
    // Elements outside the owned slice stay zero; the host ORs the
    // per-worker buffers together.
    std::vector<uint32_t> values(static_cast<size_t>(spec.count), 0);
    BulkIoTelemetry tel;
    ctx.sim.readBulk(spec, values.data(), tel);
    ByteWriter w;
    w.u64(spec.count);
    for (uint32_t v : values)
        w.u32(v);
    w.u64(tel.wordsTransposed);
    w.u64(tel.drains);
    return w.take();
}

std::vector<uint8_t>
handleBulkWrite(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const BulkIoSpec spec = readBulkSpec(r);
    std::vector<uint32_t> values(static_cast<size_t>(spec.count));
    for (uint32_t &v : values)
        v = r.u32();
    r.expectEnd("bulk write");
    BulkIoTelemetry tel;
    ctx.sim.writeBulk(spec, values.data(), tel);
    ByteWriter w;
    w.u64(tel.wordsTransposed);
    w.u64(tel.drains);
    return w.take();
}

std::vector<uint8_t>
handleCellRead(WorkerContext &ctx, const WireFrame &f)
{
    ByteReader r(f.payload);
    const uint32_t n = r.u32();
    struct Addr
    {
        uint32_t xb, slot, row;
    };
    std::vector<Addr> addrs(n);
    for (Addr &a : addrs) {
        a.xb = r.u32();
        a.slot = r.u32();
        a.row = r.u32();
    }
    r.expectEnd("cell read");
    ByteWriter w;
    w.u32(n);
    for (const Addr &a : addrs)
        w.u32(ctx.sim.crossbar(a.xb).read(a.slot, a.row));
    return w.take();
}

std::vector<uint8_t>
handleStats(WorkerContext &ctx)
{
    const Stats &s = ctx.sim.stats();  // drains the pipeline
    ByteWriter w;
    writeStats(w, s);
    writeRange(w, ctx.sim.crossbarMask());
    writeRange(w, ctx.sim.rowMask());
    w.u64(ctx.injector ? ctx.injector->injected() : 0);
    return w.take();
}

std::vector<uint8_t>
handleStateFetch(WorkerContext &ctx)
{
    (void)ctx.sim.stats();  // drain so the image reflects every submit
    const Simulator &cs = ctx.sim;
    std::vector<CrossbarImage> images;
    for (uint32_t i = 0; i < ctx.sliceCount; ++i) {
        const uint32_t xb = ctx.sliceLo + i;
        const Crossbar::Snapshot snap = cs.crossbar(xb).snapshot();
        CrossbarImage ci;
        ci.xb = xb;
        snap.forEachNonZeroBlock([&](uint32_t col, uint32_t b,
                                     const uint64_t *words, uint32_t n) {
            ci.blocks.push_back(BlockRecord{
                col, b, std::vector<uint64_t>(words, words + n)});
        });
        if (!ci.blocks.empty())
            images.push_back(std::move(ci));
    }
    ByteWriter w;
    writeRange(w, ctx.sim.crossbarMask());
    writeRange(w, ctx.sim.rowMask());
    writeStats(w, cs.stats());
    w.u32(static_cast<uint32_t>(images.size()));
    for (const CrossbarImage &ci : images) {
        w.u32(ci.xb);
        w.u32(static_cast<uint32_t>(ci.blocks.size()));
        for (const BlockRecord &rec : ci.blocks) {
            w.u32(rec.col);
            w.u32(rec.block);
            w.u32(static_cast<uint32_t>(rec.words.size()));
            for (uint64_t word : rec.words)
                w.u64(word);
        }
    }
    return w.take();
}

std::vector<uint8_t>
handleStateRestore(WorkerContext &ctx, const WireFrame &f)
{
    const CheckpointImage img = decodeCheckpoint(f.payload);
    fatalIf(!sameGeometry(img.geo, ctx.geo),
            "state restore: image geometry does not match this worker");
    // The worker-side mirror of restoreGroupImage, clipped to the
    // owned slice: clear any pipeline error, rewrite the architectural
    // state, rebuild owned crossbars from the canonical records, and
    // re-bless the checksums.
    ctx.sim.clearPipelineError();
    ctx.sim.restoreArchState(img.maskXb, img.maskRow, img.archStats);
    for (uint32_t i = 0; i < ctx.sliceCount; ++i)
        ctx.sim.crossbar(ctx.sliceLo + i).resetState();
    for (const CrossbarImage &ci : img.crossbars) {
        if (!ctx.sim.ownsCrossbar(ci.xb))
            continue;
        Crossbar &cxb = ctx.sim.crossbar(ci.xb);
        for (const BlockRecord &rec : ci.blocks)
            cxb.loadBlock(rec.col, rec.block, rec.words.data(),
                          static_cast<uint32_t>(rec.words.size()));
    }
    ctx.sim.rebaselineChecksums();
    return {};
}

std::vector<uint8_t>
handleGauges(WorkerContext &ctx)
{
    const StorageGauges g = ctx.sim.storageGauges();
    ByteWriter w;
    w.u64(g.blocksTotal);
    w.u64(g.blocksPresent);
    w.u64(g.blocksElided);
    w.u64(g.cowShared);
    w.u64(g.residentBytes);
    return w.take();
}

std::vector<uint8_t>
handleCompact(WorkerContext &ctx)
{
    ByteWriter w;
    w.u64(ctx.sim.compactStorage());
    return w.take();
}

void
workerLoop(int fd, WorkerContext &ctx)
{
    bool sticky = false;
    uint8_t stickyKind = kErrUser;
    std::string stickyMsg;

    for (;;) {
        WireFrame f;
        try {
            f = recvFrame(fd);
        } catch (...) {
            // EOF or stream damage: nothing on this socket can be
            // trusted any more. Exit; the host sees a broken pipe.
            return;
        }

        switch (f.type) {
          // --- asynchronous: no reply, failures go sticky ------------
          case kMsgShutdown:
            return;
          case kMsgSuppress:
            // Applied even while sticky: recovery opens the
            // suppression window BEFORE it restores state.
            try {
                ByteReader r(f.payload);
                const bool on = r.u8() != 0;
                r.expectEnd("suppress");
                if (ctx.injector)
                    ctx.injector->setSuppressed(on);
            } catch (...) {
                if (!sticky) {
                    sticky = true;
                    stickyKind = classifyCurrent(stickyMsg);
                }
            }
            continue;
          case kMsgTraceInstall:
            // Applied even while sticky: pure cache data, and the host
            // tracks which signatures this worker holds.
            try {
                handleTraceInstall(ctx, f);
            } catch (...) {
                if (!sticky) {
                    sticky = true;
                    stickyKind = classifyCurrent(stickyMsg);
                }
            }
            continue;
          case kMsgSubmit:
          case kMsgTraceReplay:
          case kMsgCellWrite:
          case kMsgClearStats:
            if (sticky)
                continue;  // hold diverged state for the restore
            try {
                if (f.type == kMsgSubmit)
                    handleSubmit(ctx, f);
                else if (f.type == kMsgTraceReplay)
                    handleTraceReplay(ctx, f);
                else if (f.type == kMsgCellWrite)
                    handleCellWrite(ctx, f);
                else
                    ctx.sim.stats().clear();
            } catch (...) {
                sticky = true;
                stickyKind = classifyCurrent(stickyMsg);
            }
            continue;
          default:
            break;
        }

        // --- synchronous: reply in kind, or kMsgErr ------------------
        if (f.type == kMsgStateRestore) {
            // The recovery message: drop the sticky error and let the
            // restore rebuild the slice from the image.
            sticky = false;
        } else if (sticky) {
            try {
                const std::vector<uint8_t> err =
                    encodeWireError(stickyKind, stickyMsg);
                sendFrame(fd, kMsgErr, err.data(), err.size());
            } catch (...) {
                return;
            }
            continue;
        }

        std::vector<uint8_t> reply;
        bool ok = true;
        try {
            switch (f.type) {
              case kMsgFlush:
                reply = handleFlush(ctx);
                break;
              case kMsgRead:
                reply = handleRead(ctx, f);
                break;
              case kMsgBulkRead:
                reply = handleBulkRead(ctx, f);
                break;
              case kMsgBulkWrite:
                reply = handleBulkWrite(ctx, f);
                break;
              case kMsgCellRead:
                reply = handleCellRead(ctx, f);
                break;
              case kMsgStats:
                reply = handleStats(ctx);
                break;
              case kMsgStateFetch:
                reply = handleStateFetch(ctx);
                break;
              case kMsgStateRestore:
                reply = handleStateRestore(ctx, f);
                break;
              case kMsgGauges:
                reply = handleGauges(ctx);
                break;
              case kMsgCompact:
                reply = handleCompact(ctx);
                break;
              default:
                panic("shard worker: unhandled message type " +
                      std::to_string(f.type));
            }
        } catch (...) {
            ok = false;
            std::string msg;
            const uint8_t kind = classifyCurrent(msg);
            // Only the fault family poisons the worker (plus a failed
            // restore, which leaves half-rebuilt state): a plain user
            // Error leaves it serviceable, like the in-process sink.
            if (kind == kErrFault || kind == kErrCorruption ||
                kind == kErrInjected || f.type == kMsgStateRestore) {
                sticky = true;
                stickyKind = kind;
                stickyMsg = msg;
            }
            reply = encodeWireError(kind, msg);
        }
        try {
            sendFrame(fd, ok ? f.type : kMsgErr, reply.data(),
                      reply.size());
        } catch (...) {
            return;
        }
    }
}

} // namespace

void
runShardWorker(int fd, const Geometry &geo, const EngineConfig &sub,
               uint32_t sliceLo, uint32_t sliceCount,
               uint32_t deviceIndex) noexcept
{
    try {
        WorkerContext ctx(geo, sub, sliceLo, sliceCount, deviceIndex);
        workerLoop(fd, ctx);
    } catch (...) {
        // Construction failed: die silently; the host's next message
        // hits the broken pipe and surfaces WorkerDied.
    }
    ::close(fd);
}

} // namespace pypim
