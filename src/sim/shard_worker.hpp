/**
 * @file
 * Shard worker: the process-side half of the socket transport
 * (sim/transport.hpp).
 *
 * A worker is one slice Simulator wrapped in a framed message loop
 * over a Unix-domain socket. It is forked (not exec'd) by the host's
 * SocketTransport, services messages until Shutdown or EOF, and
 * _exit()s — it never returns control to the host's code paths.
 *
 * ERROR CONTRACT (the report-at-sync rule). Asynchronous messages
 * (submit, trace install/replay, landing writes) cannot carry a reply,
 * so a failure there goes STICKY: the worker stops applying
 * state-mutating messages and answers every synchronous request with
 * kMsgErr carrying the original typed exception, until a StateRestore
 * — the recovery path — clears the sticky error and rebuilds the
 * slice. Synchronous failures reply kMsgErr immediately; only the
 * DeviceFault family (corruption, injected faults) goes sticky, a
 * plain user Error leaves the worker serviceable, mirroring the
 * in-process sink. Trace INSTALLS are processed even while sticky:
 * the host tracks each worker's cache contents, and the cache is pure
 * data — installing it touches no simulator state.
 */
#ifndef PYPIM_SIM_SHARD_WORKER_HPP
#define PYPIM_SIM_SHARD_WORKER_HPP

#include <cstdint>

#include "common/config.hpp"

namespace pypim
{

/**
 * Run the worker message loop for the slice
 * [@p sliceLo, @p sliceLo + @p sliceCount) of @p geo, speaking the
 * framed protocol on @p fd. @p sub is the group's per-sub-device
 * config (faults, verify-state and pipeline flags included);
 * @p deviceIndex seeds the fault injector exactly as the in-process
 * group would. Returns only when the host shuts the channel down (or
 * the stream is damaged beyond recovery); never throws.
 */
void runShardWorker(int fd, const Geometry &geo, const EngineConfig &sub,
                    uint32_t sliceLo, uint32_t sliceCount,
                    uint32_t deviceIndex) noexcept;

} // namespace pypim

#endif // PYPIM_SIM_SHARD_WORKER_HPP
