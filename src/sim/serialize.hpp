/**
 * @file
 * Compact, versioned wire format for device checkpoints.
 *
 * The ROADMAP's "serialize the paged blocks" item: a crossbar image
 * serializes PRESENT-BLOCKS-ONLY — per crossbar, the ascending
 * (column, block) records of every non-zero kBlockWords-word block,
 * word-aligned (the BitMagic `bmserial.h` shape: a block table plus
 * raw word payloads). The image is CANONICAL: an all-zero block is
 * never written, whether it is elided (paged) or materialised (dense),
 * so the same state produces byte-identical files from either storage
 * representation — the property the checkpoint bit-identity suite
 * asserts. Cost is O(live data), never O(geometry).
 *
 * File layout (all integers little-endian):
 *
 *   magic "PYPIMCK1" | u32 version | geometry (7 fields) |
 *   u8 storage | u32 deviceCount | u32 sectionCount |
 *   sections: [u32 tag | u64 payloadLen | u32 crc32 | payload]*
 *
 * Each section carries its own CRC32; loadCheckpoint fails LOUDLY
 * (pypim::Error) on a bad magic, unknown version, corrupt CRC,
 * truncated payload or trailing junk — a damaged checkpoint must
 * never silently restore garbage. Geometry is recorded so a restore
 * into a mismatched device is refused; storage mode and source device
 * count are informational only (the image is global-coordinate and
 * canonical, so any PYPIM_DEVICES count and either storage mode can
 * load it).
 *
 * The allocator and driver sections are OPAQUE BLOBS produced by
 * MemoryManager::exportState and Driver::exportStreamCache with the
 * ByteWriter/ByteReader helpers below: the sim layer frames and
 * checksums them without depending on the host layers above it.
 */
#ifndef PYPIM_SIM_SERIALIZE_HPP
#define PYPIM_SIM_SERIALIZE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "uarch/range.hpp"

namespace pypim
{

/** Little-endian append-only byte buffer (serialization producer). */
class ByteWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    bytes(const uint8_t *p, size_t n)
    {
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<uint8_t> &data() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian reader; overruns throw pypim::Error. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *p, size_t n) : p_(p), n_(n) {}
    explicit ByteReader(const std::vector<uint8_t> &v)
        : ByteReader(v.data(), v.size()) {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    void bytes(uint8_t *out, size_t n);

    size_t remaining() const { return n_ - pos_; }
    /** Throw unless the payload was consumed exactly. */
    void expectEnd(const char *what) const;

  private:
    void need(size_t n) const;

    const uint8_t *p_;
    size_t n_;
    size_t pos_ = 0;
};

/** CRC-32 (IEEE 802.3, reflected) of @p n bytes. */
uint32_t crc32(const uint8_t *p, size_t n);

/** Serialize / deserialize one full Stats counter block. */
void writeStats(ByteWriter &w, const Stats &s);
Stats readStats(ByteReader &r);

/** Serialize / deserialize an inclusive Range mask. */
void writeRange(ByteWriter &w, const Range &r);
Range readRange(ByteReader &r);

/** One non-zero block of a crossbar image: words of block @p block of
 *  column @p col (the tail block of a column may be short). */
struct BlockRecord
{
    uint32_t col = 0;
    uint32_t block = 0;
    std::vector<uint64_t> words;
};

/** Present-blocks-only image of one crossbar (global id @p xb).
 *  Records are ascending (col, block) and never all-zero. */
struct CrossbarImage
{
    uint32_t xb = 0;
    std::vector<BlockRecord> blocks;
};

/**
 * In-memory checkpoint of one logical device: the unit saveCheckpoint
 * streams out and the RecoverySink keeps as its rollback baseline.
 * Crossbar coordinates are GLOBAL, so the image is independent of the
 * sub-device count it was captured from.
 */
struct CheckpointImage
{
    Geometry geo;
    XbarStorage storage = XbarStorage::Paged;  //!< source (informational)
    uint32_t deviceCount = 1;                  //!< source (informational)
    Range maskXb;   //!< live crossbar mask at the drain point
    Range maskRow;  //!< live row mask at the drain point
    Stats archStats;
    /** Crossbars with at least one non-zero block, ascending by id. */
    std::vector<CrossbarImage> crossbars;
    /** Opaque MemoryManager::exportState blob (may be empty). */
    std::vector<uint8_t> allocState;
    /** Opaque Driver::exportStreamCache blob (may be empty). */
    std::vector<uint8_t> driverCache;
    /** Serialized driver-side Stats (may be empty). */
    std::vector<uint8_t> driverStats;
};

/** Write @p img to @p path; returns bytes written. Throws on I/O. */
uint64_t saveCheckpoint(const CheckpointImage &img,
                        const std::string &path);

/** Parse @p path, failing loudly on any corruption (see file header). */
CheckpointImage loadCheckpoint(const std::string &path);

/** Encode @p img to bytes (saveCheckpoint without the file). */
std::vector<uint8_t> encodeCheckpoint(const CheckpointImage &img);
/** Decode bytes produced by encodeCheckpoint. */
CheckpointImage decodeCheckpoint(const std::vector<uint8_t> &bytes);

} // namespace pypim

#endif // PYPIM_SIM_SERIALIZE_HPP
