#include "sim/trace_engine.hpp"

namespace pypim
{

void
TraceEngine::execute(const Word *ops, size_t n)
{
    forEachSegment(ops, n, [&](const Word *seg, size_t len) {
        buildSegmentTrace(seg, len, geo_, mask_, stats_, trace_);
        replayTrace(trace_);
    });
}

} // namespace pypim
