/**
 * @file
 * Shard-parallel execution engine.
 *
 * Crossbars are independent for every broadcast micro-op except the
 * cross-crossbar ones (Read and the H-tree Move) — the same structural
 * property the paper's GPU simulator exploits (§VI). The engine
 * partitions the crossbar array into contiguous per-worker shards and
 * replays whole batches shard-parallel on a persistent thread pool:
 *
 *  1. The batch is split into SEGMENTS at each Move/Read op.
 *  2. For each segment the coordinator (calling thread) first
 *     pre-scans it serially: decodes every op once into a reusable
 *     buffer, validates it exactly as the serial engine would,
 *     pre-expands LogicH half-gates, records the architectural
 *     statistics, and advances the authoritative mask state. This
 *     pass touches no crossbar, so it is O(segment), not O(segment *
 *     crossbars).
 *  3. The workers then each replay the segment over their own shard,
 *     starting from a snapshot of the segment-entry mask state and
 *     tracking mask ops in a private MaskState replica — no shared
 *     mutable state, no locks, no false sharing on the hot path.
 *  4. Move/Read ops form a barrier: they run on the coordinator over
 *     the full array via the shared base-class implementation.
 *
 * Guarantees for well-formed streams: crossbar state is bit-identical
 * to SerialEngine at any thread count (workers apply the same ops
 * under the same masks, just partitioned by crossbar id), and Stats
 * are identical by construction (only the coordinator records them).
 * Error streams differ intentionally: the pre-scan rejects a bad op
 * BEFORE the segment touches any crossbar, whereas the serial engine
 * applies the prefix first.
 */
#ifndef PYPIM_SIM_SHARDED_ENGINE_HPP
#define PYPIM_SIM_SHARDED_ENGINE_HPP

#include <vector>

#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

/** Multi-threaded backend executing batches shard-parallel. */
class ShardedEngine : public ExecutionEngine
{
  public:
    ShardedEngine(const Geometry &geo, std::vector<Crossbar> &xbs,
                  const HTree &htree, MaskState &mask, Stats &stats,
                  uint32_t threads);

    const char *name() const override { return "sharded"; }
    uint32_t threads() const override { return pool_.size(); }

    void execute(const Word *ops, size_t n) override;

    /**
     * Per-shard applied-work counters (one op recorded per crossbar
     * actually touched by that shard): a load-balance diagnostic, NOT
     * the architectural stats. Merge with Stats::merged.
     */
    const std::vector<Stats> &shardWork() const { return work_; }

  private:
    struct Shard
    {
        uint32_t lo = 0;  //!< first owned crossbar (inclusive)
        uint32_t hi = 0;  //!< last owned crossbar (exclusive)
        MaskState mask;   //!< private replica of the in-stream masks
    };

    /** Coordinator pass 2-3: run one Move/Read-free segment. */
    void runSegment(const Word *ops, size_t n);

    /** Worker body: replay the decoded segment over one shard. */
    void applySegment(Shard &s, Stats &work, size_t n) const;

    ThreadPool pool_;
    std::vector<Shard> shards_;
    std::vector<Stats> work_;

    // Segment-scoped scratch, reused across batches.
    std::vector<MicroOp> decoded_;
    std::vector<HalfGates> halfGates_;  //!< aligned with decoded_
    Range entryXb_;
    Range entryRow_;
    std::vector<uint64_t> entryRowWords_;
};

} // namespace pypim

#endif // PYPIM_SIM_SHARDED_ENGINE_HPP
