/**
 * @file
 * Shard-parallel execution engine.
 *
 * Crossbars are independent for every broadcast micro-op except the
 * cross-crossbar ones (Read and the H-tree Move) — the same structural
 * property the paper's GPU simulator exploits (§VI). The engine
 * replays whole batches crossbar-parallel on a persistent thread pool:
 *
 *  1. The batch is split into SEGMENTS at each Move/Read op.
 *  2. The coordinator decodes each segment exactly once into a
 *     SegmentTrace via the shared pre-pass (sim/segment_trace.hpp):
 *     decoded ops with pre-expanded LogicH half-gates, mask ops
 *     absorbed into per-op crossbar-mask and row-mask snapshots,
 *     INIT+gate pairs fused. The pre-pass validates everything exactly
 *     as the serial engine would, records the architectural statistics
 *     and advances the authoritative mask state; it touches no
 *     crossbar, so it is O(segment), not O(segment * crossbars).
 *  3. The workers replay the trace CROSSBAR-MAJOR under a
 *     WORK-STEALING schedule: the segment's crossbar hull is carved
 *     into small chunks claimed from a shared atomic counter, so a
 *     strided crossbar mask (where fixed contiguous blocks would give
 *     some workers mostly masked-out crossbars) still load-balances —
 *     each crossbar's entire segment is applied while its condensed
 *     column-major state is hot in cache (Crossbar::replaySegment),
 *     with no shared mutable state, no locks, no mask tracking on the
 *     hot path.
 *  4. Move/Read ops form a barrier: they run on the coordinator over
 *     the full array via the shared base-class implementation.
 *
 * In the pipelined path (sim/pipeline.hpp) the consumer thread plays
 * the coordinator role, handing pre-built traces to replayTrace while
 * the caller thread translates and decodes the next batch.
 *
 * Guarantees for well-formed streams: crossbar state is bit-identical
 * to SerialEngine at any thread count (each crossbar sees the same
 * ops under the same mask snapshots, in segment order), and Stats
 * are identical by construction (only the pre-pass records them).
 * Error streams differ intentionally: the pre-pass rejects a bad op
 * BEFORE the segment touches any crossbar, whereas the serial engine
 * applies the prefix first.
 */
#ifndef PYPIM_SIM_SHARDED_ENGINE_HPP
#define PYPIM_SIM_SHARDED_ENGINE_HPP

#include <atomic>
#include <vector>

#include "sim/engine.hpp"
#include "sim/thread_pool.hpp"

namespace pypim
{

/** Multi-threaded backend executing batches crossbar-parallel. */
class ShardedEngine : public ExecutionEngine
{
  public:
    /**
     * @p pinWorkers pins the spawned pool workers to distinct host
     * cores (EngineConfig::affinity); a no-op on platforms without
     * thread-affinity support.
     */
    ShardedEngine(const Geometry &geo, std::vector<Crossbar> &xbs,
                  uint32_t xbBase, const HTree &htree, MaskState &mask,
                  Stats &stats, uint32_t threads,
                  bool pinWorkers = false);

    const char *name() const override { return "sharded"; }
    uint32_t threads() const override { return pool_.size(); }
    /** Workers actually pinned to a core (0 unless requested and
     *  supported). */
    uint32_t pinnedWorkers() const { return pool_.pinnedWorkers(); }

    void execute(const Word *ops, size_t n) override;

    /** Work-stealing crossbar-major replay over the worker pool. */
    void replayTrace(const SegmentTrace &trace) override;

    /** Compiled-program replay under the same work-stealing schedule;
     *  per-crossbar work charges through ReplayProgram's precomputed
     *  counts (once per crossbar, not once per op). */
    void replayProgram(const ReplayProgram &prog) override;

    /**
     * Per-worker applied-work counters (one op recorded per crossbar
     * actually touched by that worker): a load-balance diagnostic, NOT
     * the architectural stats. Which worker claims which chunk is
     * scheduling-dependent, but the merged total (Stats::merged)
     * always equals architectural work ops x touched crossbars.
     */
    const std::vector<Stats> &shardWork() const { return work_; }

  private:
    ThreadPool pool_;
    std::vector<Stats> work_;
    std::atomic<uint32_t> next_{0};  //!< chunk claim counter
    SegmentTrace trace_;  //!< arena reused across batches
};

} // namespace pypim

#endif // PYPIM_SIM_SHARDED_ENGINE_HPP
