/**
 * @file
 * Single-threaded trace-replay engine: decode once, replay
 * crossbar-major.
 *
 * Each batch splits into barrier-free segments (at Read / H-tree Move
 * ops). A segment is decoded exactly once into a SegmentTrace
 * (sim/segment_trace.hpp) by the shared pre-pass — decoded ops,
 * pre-expanded LogicH half-gates, per-op mask snapshots, INIT+gate
 * fusion — and then replayed with the loops interchanged: for each
 * crossbar, the ENTIRE segment is applied before moving to the next
 * (Crossbar::replaySegment), so one crossbar's condensed column-major
 * state (the cache-sized block of columns) stays hot in L1/L2 instead
 * of being streamed through the cache once per op. At the ROADMAP's
 * 1024+-crossbar scale this turns an O(segment * array) cache sweep
 * into O(array) with an O(segment) working set.
 *
 * The trace arena is a member reused across batches, so steady-state
 * execution is allocation-free. Barrier ops run through the shared
 * reference implementation. Bit-identical state and identical Stats
 * versus SerialEngine are enforced by tests/test_engine_parity.cpp.
 */
#ifndef PYPIM_SIM_TRACE_ENGINE_HPP
#define PYPIM_SIM_TRACE_ENGINE_HPP

#include "sim/engine.hpp"

namespace pypim
{

/** Serial decode-once, crossbar-major replay backend. */
class TraceEngine : public ExecutionEngine
{
  public:
    using ExecutionEngine::ExecutionEngine;

    const char *name() const override { return "trace"; }

    void execute(const Word *ops, size_t n) override;

  private:
    SegmentTrace trace_;  //!< arena reused across batches
};

} // namespace pypim

#endif // PYPIM_SIM_TRACE_ENGINE_HPP
