/**
 * @file
 * Double-buffered asynchronous execution pipeline (driver/replay
 * overlap).
 *
 * The evaluation of the paper (§VII, reproduced by bench_driver) shows
 * the host driver's translation rate competing with the chip's
 * 1-op/cycle consumption; running the two strictly in sequence leaves
 * one side of a multi-core host idle at all times. The pipeline splits
 * the sink into two stages connected by a bounded hand-off queue of
 * decoded batch buffers:
 *
 *   caller thread (producer)             consumer thread
 *   ------------------------             -----------------------------
 *   submitBatch(ops, n)
 *     acquire a free BatchTrace   ---.
 *     buildSegmentTrace per segment   \   dequeue BatchTrace k
 *     (validate, record stats,         `> replay items in order:
 *      advance the mask state)            - SegmentTrace -> engine->
 *     enqueue; return immediately           replayTrace (sharded: fan
 *                                           out over the worker pool)
 *   ... translate batch k+1 ...           - Move -> engine->applyMove
 *                                        release the buffer
 *
 * Double buffering: kBuffers (two) independent SegmentTrace arenas
 * cycle through the queue, so the pre-pass for batch k+1 runs while
 * the engine replays trace k; the producer blocks only when both
 * buffers are in flight. Trace-cache hits bypass the arenas entirely:
 * submitShared enqueues a shared immutable pre-built BatchTrace
 * (sim/batch_trace.hpp) in FIFO order with the arena batches, with
 * its own backpressure bound — the consumer replays it with zero
 * decode work and the shared_ptr keeps it alive even if the owning
 * cache is cleared mid-flight. All validation and architectural Stats
 * recording happen on the producer inside submitBatch — a malformed
 * op therefore throws at the submitBatch that contained it, before
 * the batch touches any crossbar (the same error-stream semantics as
 * the trace-based engines), and the consumer applies pre-validated
 * state changes only, so the two threads share no mutable state
 * outside the queue.
 *
 * Reads have no architectural state effect on the data-less path
 * (validate + count, response dropped), so they are absorbed at
 * submit time and never queued; performRead and every other
 * synchronous access drain the pipeline first (Simulator::flush).
 */
#ifndef PYPIM_SIM_PIPELINE_HPP
#define PYPIM_SIM_PIPELINE_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/batch_trace.hpp"
#include "sim/segment_trace.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

class ExecutionEngine;
class HTree;
class Crossbar;

/**
 * The Simulator's asynchronous execution stage: owns the bounded
 * hand-off queue, the double-buffered trace arenas and the consumer
 * thread. Producer-side methods (submit, drain) must be called from
 * one thread at a time — the same contract as OperationSink itself.
 */
class SimulatorPipeline
{
  public:
    /**
     * @p preReplay / @p postReplay (either may be null) run on the
     * consumer thread around every engine replayBatch, inside the
     * same try whose failure becomes the sticky error — the
     * fault-tolerance hook points (sim/simulator.hpp): verify the
     * pre-batch state checksums, then bless the post-batch state and
     * let the fault injector corrupt it.
     */
    SimulatorPipeline(const Geometry &geo, const HTree &htree,
                      MaskState &mask, Stats &stats,
                      std::unique_ptr<ExecutionEngine> &engine,
                      std::function<void()> preReplay = nullptr,
                      std::function<void()> postReplay = nullptr);

    /** Drains remaining batches, then joins the consumer. */
    ~SimulatorPipeline();

    SimulatorPipeline(const SimulatorPipeline &) = delete;
    SimulatorPipeline &operator=(const SimulatorPipeline &) = delete;

    /**
     * Decode @p ops into the next free batch buffer and enqueue it for
     * asynchronous replay. Blocks only while both buffers are in
     * flight. Throws (on this thread) if any op is malformed — before
     * the batch touches any crossbar — or if a previous batch failed
     * on the consumer.
     */
    void submit(const Word *ops, size_t n);

    /**
     * Enqueue a pre-built shared immutable trace (the trace-cache hit
     * path, sim/batch_trace.hpp) for asynchronous replay: the batch's
     * stats and final mask state apply here on the producer, the
     * consumer replays with zero decode work, and the shared_ptr
     * keeps the trace alive even if the owning cache is cleared while
     * the batch is in flight. Ordered FIFO with submit()ed batches;
     * blocks only when kMaxQueued traces are already pending.
     */
    void submitShared(std::shared_ptr<const BatchTrace> trace);

    /**
     * Block until every queued batch has been replayed; rethrows any
     * pending consumer-side error. The synchronisation point behind
     * performRead, host readback, stats queries and setEngine.
     */
    void drain();

    /**
     * Clear the sticky consumer-side error after the queue has gone
     * idle (remaining batches are skipped, not replayed — the state
     * is being rolled back anyway). The recovery path's first step:
     * without it, every subsequent sync point rethrows and a fresh
     * Device is the only way out (tests/test_fault.cpp asserts both
     * behaviours).
     */
    void clearError();

    /** True while the consumer is inside engine replay — the flag
     *  Crossbar::setBusyFlag points snapshot/restore asserts at. */
    const std::atomic<bool> &busyFlag() const { return busy_; }

  private:
    static constexpr uint32_t kBuffers = 2;   // double buffering
    static constexpr uint32_t kNoBuffer = UINT32_MAX;
    /** Backpressure bound for decode-free (shared-trace) submits. */
    static constexpr size_t kMaxQueued = 8;

    /** One hand-off queue entry: a cycling arena or a shared trace. */
    struct Pending
    {
        uint32_t buf = kNoBuffer;
        std::shared_ptr<const BatchTrace> shared;
    };

    void consumerLoop();

    const Geometry &geo_;
    const HTree &htree_;
    MaskState &mask_;
    Stats &stats_;
    /** Owned by the Simulator; swapped only while the queue is idle. */
    std::unique_ptr<ExecutionEngine> &engine_;

    std::array<BatchTrace, kBuffers> buffers_;

    std::mutex mu_;
    std::condition_variable cvProducer_;  //!< buffer freed / idle
    std::condition_variable cvConsumer_;  //!< batch queued / stop
    std::vector<uint32_t> free_;          //!< buffers ready for reuse
    std::deque<Pending> queued_;          //!< FIFO of submitted batches
    bool replaying_ = false;
    bool stop_ = false;
    std::exception_ptr error_;  //!< first consumer-side failure (sticky)
    std::atomic<bool> busy_{false};  //!< consumer inside engine replay
    std::function<void()> preReplay_;
    std::function<void()> postReplay_;

    std::thread consumer_;
};

} // namespace pypim

#endif // PYPIM_SIM_PIPELINE_HPP
