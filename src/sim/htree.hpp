/**
 * @file
 * Hierarchical H-tree interconnect model (paper §III-F, Fig. 9).
 *
 * Crossbars are numbered so that each group of the recursive 4-ary
 * hierarchy shares an id prefix (group 10xx = crossbars 1000..1011 in
 * base 2 — i.e. base-4 digit prefixes). A distributed move op
 * transfers one N-bit register per (source, destination) crossbar
 * pair, where the source set is the current crossbar mask (step must
 * be a power of 4) and every pair has the same signed distance.
 *
 * Latency model (the paper does not fix one; documented here):
 *  - an N-bit beat crosses one link (child group <-> parent group)
 *    in 1 cycle;
 *  - a transfer with lowest-common-ancestor level L traverses 2L
 *    links (L up, L down);
 *  - links serve beats serially but the tree is pipelined, so a move
 *    op costs  2 * maxL + (maxLinkLoad - 1)  cycles, where
 *    maxLinkLoad is the worst number of transfers crossing any
 *    single link.
 *
 * For the paper's canonical pattern (crossbars xx01 -> xx10 for all
 * xx) every pair stays inside its own level-1 group: maxL = 1,
 * load = 1, cost = 2 cycles, fully parallel across groups — matching
 * §III-F's description of intra-group parallelism.
 */
#ifndef PYPIM_SIM_HTREE_HPP
#define PYPIM_SIM_HTREE_HPP

#include <cstdint>
#include <unordered_map>

#include "uarch/range.hpp"

namespace pypim
{

/** Latency/contention model of the inter-crossbar H-tree. */
class HTree
{
  public:
    /** @p numCrossbars must be a power of four. */
    explicit HTree(uint32_t numCrossbars);

    uint32_t numCrossbars() const { return numCrossbars_; }
    /** Tree depth in 4-ary levels (log4 of the crossbar count). */
    uint32_t levels() const { return levels_; }

    /**
     * Lowest level L >= 0 such that @p a and @p b belong to the same
     * level-L group (L = 0 iff a == b).
     */
    static uint32_t lcaLevel(uint32_t a, uint32_t b);

    /**
     * Cycle cost of one distributed move op: sources @p src (crossbar
     * mask), each transferring to source + @p dist. Caches the last
     * query since tensor-level shifts repeat the same pattern per row.
     */
    uint64_t moveCycles(const Range &src, int64_t dist) const;

  private:
    uint64_t computeMoveCycles(const Range &src, int64_t dist) const;

    uint32_t numCrossbars_;
    uint32_t levels_;

    struct CacheKey
    {
        Range src;
        int64_t dist;
        bool operator==(const CacheKey &) const = default;
    };
    mutable CacheKey cacheKey_{};
    mutable uint64_t cacheVal_ = 0;
    mutable bool cacheValid_ = false;
};

} // namespace pypim

#endif // PYPIM_SIM_HTREE_HPP
