#include "sim/serialize.hpp"

#include <array>
#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace pypim
{

namespace
{

constexpr char kMagic[8] = {'P', 'Y', 'P', 'I', 'M', 'C', 'K', '1'};
// v2: the Stats block grew the shard-transport wire counters.
constexpr uint32_t kVersion = 2;

// Section tags. New sections get new tags; unknown tags are an error
// (version bumps cover format evolution — a checkpoint is a precise
// artifact, not a forward-compatible container).
constexpr uint32_t kSecMask = 1;
constexpr uint32_t kSecStats = 2;
constexpr uint32_t kSecCrossbars = 3;
constexpr uint32_t kSecAlloc = 4;
constexpr uint32_t kSecDriverCache = 5;
constexpr uint32_t kSecDriverStats = 6;

const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
writeSection(ByteWriter &w, uint32_t tag,
             const std::vector<uint8_t> &payload)
{
    w.u32(tag);
    w.u64(payload.size());
    w.u32(crc32(payload.data(), payload.size()));
    w.bytes(payload.data(), payload.size());
}

} // namespace

// --- ByteReader ---------------------------------------------------------

void
ByteReader::need(size_t n) const
{
    fatalIf(pos_ + n > n_,
            "checkpoint: truncated payload (need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + " of " +
                std::to_string(n_) + ")");
}

uint8_t
ByteReader::u8()
{
    need(1);
    return p_[pos_++];
}

uint32_t
ByteReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p_[pos_++]) << (8 * i);
    return v;
}

uint64_t
ByteReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p_[pos_++]) << (8 * i);
    return v;
}

void
ByteReader::bytes(uint8_t *out, size_t n)
{
    need(n);
    std::copy(p_ + pos_, p_ + pos_ + n, out);
    pos_ += n;
}

void
ByteReader::expectEnd(const char *what) const
{
    fatalIf(pos_ != n_, std::string("checkpoint: trailing bytes in ") +
                            what + " section");
}

uint32_t
crc32(const uint8_t *p, size_t n)
{
    const auto &t = crcTable();
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

// --- shared codecs ------------------------------------------------------

void
writeStats(ByteWriter &w, const Stats &s)
{
    for (uint64_t v : s.opCount)
        w.u64(v);
    for (uint64_t v : s.cycleCount)
        w.u64(v);
    w.u64(s.logicGates);
    w.u64(s.logicInits);
    w.u64(s.instructions);
    w.u64(s.traceCacheHits);
    w.u64(s.traceCacheMisses);
    w.u64(s.fusionWaw);
    w.u64(s.fusionInitChain);
    w.u64(s.fusionWindow);
    w.u64(s.fusionWriteStripe);
    w.u64(s.bulkReads);
    w.u64(s.bulkWrites);
    w.u64(s.ioWordsTransposed);
    w.u64(s.ioDrains);
    w.u64(s.faultsInjected);
    w.u64(s.faultsDetected);
    w.u64(s.recoveries);
    w.u64(s.checkpointBytes);
    w.u64(s.wireBytesTx);
    w.u64(s.wireBytesRx);
    w.u64(s.wireRoundTrips);
    w.u64(s.wireTraceHits);
}

Stats
readStats(ByteReader &r)
{
    Stats s;
    for (uint64_t &v : s.opCount)
        v = r.u64();
    for (uint64_t &v : s.cycleCount)
        v = r.u64();
    s.logicGates = r.u64();
    s.logicInits = r.u64();
    s.instructions = r.u64();
    s.traceCacheHits = r.u64();
    s.traceCacheMisses = r.u64();
    s.fusionWaw = r.u64();
    s.fusionInitChain = r.u64();
    s.fusionWindow = r.u64();
    s.fusionWriteStripe = r.u64();
    s.bulkReads = r.u64();
    s.bulkWrites = r.u64();
    s.ioWordsTransposed = r.u64();
    s.ioDrains = r.u64();
    s.faultsInjected = r.u64();
    s.faultsDetected = r.u64();
    s.recoveries = r.u64();
    s.checkpointBytes = r.u64();
    s.wireBytesTx = r.u64();
    s.wireBytesRx = r.u64();
    s.wireRoundTrips = r.u64();
    s.wireTraceHits = r.u64();
    return s;
}

void
writeRange(ByteWriter &w, const Range &r)
{
    w.u32(r.start);
    w.u32(r.stop);
    w.u32(r.step);
}

Range
readRange(ByteReader &r)
{
    Range out;
    out.start = r.u32();
    out.stop = r.u32();
    out.step = r.u32();
    return out;
}

// --- checkpoint encode / decode -----------------------------------------

std::vector<uint8_t>
encodeCheckpoint(const CheckpointImage &img)
{
    ByteWriter w;
    w.bytes(reinterpret_cast<const uint8_t *>(kMagic), sizeof(kMagic));
    w.u32(kVersion);
    w.u32(img.geo.rows);
    w.u32(img.geo.cols);
    w.u32(img.geo.partitions);
    w.u32(img.geo.wordBits);
    w.u32(img.geo.numCrossbars);
    w.u32(img.geo.userRegs);
    w.u64(img.geo.clockHz);
    w.u8(static_cast<uint8_t>(img.storage));
    w.u32(img.deviceCount);

    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections;
    {
        ByteWriter p;
        writeRange(p, img.maskXb);
        writeRange(p, img.maskRow);
        sections.emplace_back(kSecMask, p.take());
    }
    {
        ByteWriter p;
        writeStats(p, img.archStats);
        sections.emplace_back(kSecStats, p.take());
    }
    {
        ByteWriter p;
        p.u32(static_cast<uint32_t>(img.crossbars.size()));
        for (const CrossbarImage &ci : img.crossbars) {
            p.u32(ci.xb);
            p.u32(static_cast<uint32_t>(ci.blocks.size()));
            for (const BlockRecord &b : ci.blocks) {
                p.u32(b.col);
                p.u32(b.block);
                p.u32(static_cast<uint32_t>(b.words.size()));
                for (uint64_t word : b.words)
                    p.u64(word);
            }
        }
        sections.emplace_back(kSecCrossbars, p.take());
    }
    if (!img.allocState.empty())
        sections.emplace_back(kSecAlloc, img.allocState);
    if (!img.driverCache.empty())
        sections.emplace_back(kSecDriverCache, img.driverCache);
    if (!img.driverStats.empty())
        sections.emplace_back(kSecDriverStats, img.driverStats);

    w.u32(static_cast<uint32_t>(sections.size()));
    for (const auto &[tag, payload] : sections)
        writeSection(w, tag, payload);
    return w.take();
}

CheckpointImage
decodeCheckpoint(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    char magic[8];
    r.bytes(reinterpret_cast<uint8_t *>(magic), sizeof(magic));
    fatalIf(!std::equal(magic, magic + sizeof(magic), kMagic),
            "checkpoint: bad magic (not a PyPIM checkpoint file)");
    const uint32_t version = r.u32();
    fatalIf(version != kVersion,
            "checkpoint: unsupported format version " +
                std::to_string(version) + " (expected " +
                std::to_string(kVersion) + ")");
    CheckpointImage img;
    img.geo.rows = r.u32();
    img.geo.cols = r.u32();
    img.geo.partitions = r.u32();
    img.geo.wordBits = r.u32();
    img.geo.numCrossbars = r.u32();
    img.geo.userRegs = r.u32();
    img.geo.clockHz = r.u64();
    const uint8_t storage = r.u8();
    fatalIf(storage > static_cast<uint8_t>(XbarStorage::Paged),
            "checkpoint: unknown storage mode " +
                std::to_string(storage));
    img.storage = static_cast<XbarStorage>(storage);
    img.deviceCount = r.u32();
    img.geo.validate();

    const uint32_t sectionCount = r.u32();
    bool sawMask = false, sawStats = false, sawCrossbars = false;
    for (uint32_t s = 0; s < sectionCount; ++s) {
        const uint32_t tag = r.u32();
        const uint64_t len = r.u64();
        const uint32_t crc = r.u32();
        std::vector<uint8_t> payload(len);
        r.bytes(payload.data(), payload.size());
        fatalIf(crc32(payload.data(), payload.size()) != crc,
                "checkpoint: CRC mismatch in section " +
                    std::to_string(tag) + " (corrupt file)");
        ByteReader p(payload);
        switch (tag) {
          case kSecMask:
            img.maskXb = readRange(p);
            img.maskRow = readRange(p);
            p.expectEnd("mask");
            img.maskXb.validate(img.geo.numCrossbars,
                                "checkpoint crossbar mask");
            img.maskRow.validate(img.geo.rows, "checkpoint row mask");
            sawMask = true;
            break;
          case kSecStats:
            img.archStats = readStats(p);
            p.expectEnd("stats");
            sawStats = true;
            break;
          case kSecCrossbars: {
            const uint32_t nXb = p.u32();
            img.crossbars.reserve(nXb);
            for (uint32_t i = 0; i < nXb; ++i) {
                CrossbarImage ci;
                ci.xb = p.u32();
                fatalIf(ci.xb >= img.geo.numCrossbars,
                        "checkpoint: crossbar id " +
                            std::to_string(ci.xb) +
                            " outside the geometry");
                const uint32_t nBlocks = p.u32();
                ci.blocks.reserve(nBlocks);
                for (uint32_t b = 0; b < nBlocks; ++b) {
                    BlockRecord rec;
                    rec.col = p.u32();
                    rec.block = p.u32();
                    fatalIf(rec.col >= img.geo.cols,
                            "checkpoint: block column out of range");
                    const uint32_t nWords = p.u32();
                    fatalIf(nWords == 0 || nWords > 8,
                            "checkpoint: bad block word count " +
                                std::to_string(nWords));
                    rec.words.resize(nWords);
                    for (uint64_t &word : rec.words)
                        word = p.u64();
                    ci.blocks.push_back(std::move(rec));
                }
                img.crossbars.push_back(std::move(ci));
            }
            p.expectEnd("crossbars");
            sawCrossbars = true;
            break;
          }
          case kSecAlloc:
            img.allocState = std::move(payload);
            break;
          case kSecDriverCache:
            img.driverCache = std::move(payload);
            break;
          case kSecDriverStats:
            img.driverStats = std::move(payload);
            break;
          default:
            fatal("checkpoint: unknown section tag " +
                  std::to_string(tag));
        }
    }
    fatalIf(r.remaining() != 0,
            "checkpoint: trailing bytes after the last section");
    fatalIf(!sawMask || !sawStats || !sawCrossbars,
            "checkpoint: missing a mandatory section "
            "(mask/stats/crossbars)");
    return img;
}

uint64_t
saveCheckpoint(const CheckpointImage &img, const std::string &path)
{
    const std::vector<uint8_t> bytes = encodeCheckpoint(img);
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "wb"), &std::fclose);
    fatalIf(!f, "checkpoint: cannot open '" + path + "' for writing");
    const size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f.get());
    fatalIf(written != bytes.size(),
            "checkpoint: short write to '" + path + "'");
    return bytes.size();
}

CheckpointImage
loadCheckpoint(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    fatalIf(!f, "checkpoint: cannot open '" + path + "'");
    std::fseek(f.get(), 0, SEEK_END);
    const long size = std::ftell(f.get());
    fatalIf(size < 0, "checkpoint: cannot stat '" + path + "'");
    std::fseek(f.get(), 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    const size_t got =
        std::fread(bytes.data(), 1, bytes.size(), f.get());
    fatalIf(got != bytes.size(),
            "checkpoint: short read from '" + path + "'");
    return decodeCheckpoint(bytes);
}

} // namespace pypim
