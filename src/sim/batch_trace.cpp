#include "sim/batch_trace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "sim/htree.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

bool
leadsWithMasks(const Word *ops, size_t n)
{
    bool xb = false, row = false;
    for (size_t i = 0; i < n; ++i) {
        const OpType t = enc::peekType(ops[i]);
        if (t == OpType::CrossbarMask)
            xb = true;
        else if (t == OpType::RowMask)
            row = true;
        else
            return xb && row;
        if (xb && row)
            return true;
    }
    return xb && row;
}

void
buildBatchTrace(const Word *ops, size_t n, const Geometry &geo,
                const HTree &htree, MaskState &mask, BatchTrace &batch)
{
    batch.geoRows = geo.rows;
    batch.geoCols = geo.cols;
    batch.geoPartitions = geo.partitions;
    batch.geoCrossbars = geo.numCrossbars;
    size_t i = 0;
    while (i < n) {
        const OpType type = enc::peekType(ops[i]);
        if (isBarrierOp(type)) {
            const MicroOp op = MicroOp::decode(ops[i]);
            if (type == OpType::Read) {
                // Data-less read: the response is dropped and no state
                // changes, so validating and counting it here absorbs
                // the op entirely — nothing to queue.
                validateRead(op, mask.xb, mask.row, geo);
                batch.stats.record(OpClass::Read);
            } else {
                const int64_t dist = validateMove(op, mask.xb, geo);
                batch.stats.record(OpClass::Move,
                                   htree.moveCycles(mask.xb, dist));
                BatchTrace::Item item;
                item.kind = BatchTrace::Item::Kind::Move;
                item.op = op;
                item.xb = mask.xb;
                batch.items.push_back(item);
            }
            ++i;
            continue;
        }
        size_t j = i + 1;
        while (j < n && !isBarrierOp(enc::peekType(ops[j])))
            ++j;
        SegmentTrace &trace = batch.nextSegment(geo.rows);
        buildSegmentTrace(ops + i, j - i, geo, mask, batch.stats,
                          trace);
        if (trace.empty()) {
            --batch.used;  // mask-only segment: arena back to the pool
        } else {
            BatchTrace::Item item;
            item.kind = BatchTrace::Item::Kind::Segment;
            item.seg = batch.used - 1;
            batch.items.push_back(item);
        }
        i = j;
    }
    batch.finalXb = mask.xb;
    batch.finalRow = mask.row;
}

namespace
{

/**
 * Window-fuse one segment (see fuseBatchTrace for the legality
 * rules). Single forward pass; candidates and conflicts are tracked
 * at COLUMN granularity through touched[] (index of the last live op
 * that read or wrote each column — a stateful NOR/NOT reads its
 * output too, and conservatism about rows/crossbars only costs missed
 * fusions, never correctness).
 */
void
fuseSegment(SegmentTrace &t, const Geometry &geo,
            BatchTrace::Fusion &fusion)
{
    // Candidates more than kWindow ops back are dropped: the driver's
    // INIT/compute idiom is local, and a bounded window keeps the
    // pass O(n * window).
    constexpr size_t kWindow = 32;

    const size_t n = t.ops.size();
    if (n < 2)
        return;
    const uint32_t pw = geo.partitionWidth();
    std::vector<int64_t> touched(geo.cols, -1);
    std::vector<int64_t> lastWrite(geo.slots(), -1);
    std::vector<uint8_t> dead(n, 0);
    std::vector<size_t> initWindow;  //!< live un-fused INIT1 indices

    // Every column op index j reads or writes.
    const auto forEachCol = [&](const TraceOp &op, auto &&fn) {
        switch (op.type) {
          case OpType::Write:
            for (uint32_t b = 0; b < geo.wordBits; ++b)
                fn(geo.column(op.index, b));
            break;
          case OpType::LogicV:
            for (uint32_t p = 0; p < geo.partitions; ++p)
                fn(p * pw + op.index);
            break;
          case OpType::LogicH: {
            const HalfGates &hg = t.halfGates[op.hg];
            for (uint32_t s = 0; s < hg.numSections; ++s) {
                const Section &sec = hg.sections[s];
                if (!sec.active())
                    continue;
                if (sec.outCol >= 0)
                    fn(static_cast<uint32_t>(sec.outCol));
                for (uint32_t k = 0; k < sec.numIn; ++k)
                    fn(static_cast<uint32_t>(sec.inCol[k]));
            }
            break;
          }
          default:
            break;
        }
    };

    const auto rowContains = [&](uint32_t sup, uint32_t sub) {
        if (sup == sub)
            return true;
        const auto a = t.rowMask(sup);
        const auto b = t.rowMask(sub);
        for (size_t w = 0; w < a.size(); ++w)
            if (b[w] & ~a[w])
                return false;
        return true;
    };
    const auto rowEqual = [&](uint32_t a, uint32_t b) {
        if (a == b)
            return true;
        const auto x = t.rowMask(a);
        const auto y = t.rowMask(b);
        return std::equal(x.begin(), x.end(), y.begin());
    };

    // True iff no live op after index i touched any active output
    // column of INIT half-gates @p hg (i.e. the INIT may legally move
    // forward past everything since).
    const auto outsUntouchedSince = [&](const HalfGates &hg,
                                        int64_t i) {
        for (uint32_t s = 0; s < hg.numSections; ++s) {
            const Section &sec = hg.sections[s];
            if (sec.active() &&
                touched[static_cast<uint32_t>(sec.outCol)] > i)
                return false;
        }
        return true;
    };

    for (size_t j = 0; j < n; ++j) {
        TraceOp &op = t.ops[j];
        const Gate hgGate = op.type == OpType::LogicH
                                ? t.halfGates[op.hg].gate
                                : Gate::Init0;
        const bool isInit1 = op.type == OpType::LogicH &&
                             !op.fusedInit && hgGate == Gate::Init1;
        const bool isGate =
            op.type == OpType::LogicH && !op.fusedInit &&
            (hgGate == Gate::Nor || hgGate == Gate::Not);

        // Drop window candidates that fell out of range.
        while (!initWindow.empty() && j - initWindow.front() > kWindow)
            initWindow.erase(initWindow.begin());

        if (op.type == OpType::Write) {
            // WAW: the previous Write to this slot is dead if this one
            // covers it and nothing touched the slot in between
            // (lastWrite is invalidated below on any such touch).
            int64_t &prev = lastWrite[op.index];
            if (prev >= 0) {
                const TraceOp &p = t.ops[prev];
                if (op.xb.containsAll(p.xb) &&
                    rowContains(op.rowMask, p.rowMask)) {
                    dead[prev] = 1;
                    ++fusion.waw;
                }
            }
            prev = static_cast<int64_t>(j);
        } else if (isGate) {
            // Windowed INIT1 -> NOR/NOT: same as the builder's
            // adjacent fusion, but the INIT may sit anywhere in the
            // window as long as its outputs were not touched since.
            for (auto it = initWindow.rbegin();
                 it != initWindow.rend(); ++it) {
                const size_t i = *it;
                if (dead[i])
                    continue;
                const TraceOp &init = t.ops[i];
                if (init.xb != op.xb ||
                    !rowEqual(init.rowMask, op.rowMask))
                    continue;
                const HalfGates &ih = t.halfGates[init.hg];
                if (!fusableInitNor(ih, t.halfGates[op.hg]))
                    continue;
                if (!outsUntouchedSince(ih,
                                        static_cast<int64_t>(i)))
                    continue;
                dead[i] = 1;
                op.fusedInit = true;
                ++fusion.window;
                break;
            }
        } else if (isInit1) {
            // INIT1 chain: fold an earlier INIT1 into this one by
            // appending its sections (independent columns; INIT1 on a
            // shared column is idempotent, so overlap is harmless).
            for (auto it = initWindow.rbegin();
                 it != initWindow.rend(); ++it) {
                const size_t i = *it;
                if (dead[i] || i == j)
                    continue;
                const TraceOp &init = t.ops[i];
                if (init.xb != op.xb ||
                    !rowEqual(init.rowMask, op.rowMask))
                    continue;
                const HalfGates &src = t.halfGates[init.hg];
                HalfGates &dst = t.halfGates[op.hg];
                uint32_t active = 0;
                for (uint32_t s = 0; s < src.numSections; ++s)
                    active += src.sections[s].active() ? 1 : 0;
                if (dst.numSections + active > maxPartitions)
                    continue;  // section arena full: skip this pair
                if (!outsUntouchedSince(src,
                                        static_cast<int64_t>(i)))
                    continue;
                for (uint32_t s = 0; s < src.numSections; ++s)
                    if (src.sections[s].active())
                        dst.sections[dst.numSections++] =
                            src.sections[s];
                dead[i] = 1;
                ++fusion.initChain;
                break;
            }
        }

        // Record this op's footprint. Conflicting touches invalidate
        // WAW candidates of the slots they land in — except a Write's
        // own slot, whose candidacy was just installed above.
        forEachCol(op, [&](uint32_t col) {
            touched[col] = static_cast<int64_t>(j);
            if (op.type != OpType::Write)
                lastWrite[geo.slotOf(col)] = -1;
        });
        if (isInit1)
            initWindow.push_back(j);
    }

    // Compact the survivors and refresh the crossbar hull.
    size_t w = 0;
    uint32_t lo = UINT32_MAX, hi = 0;
    for (size_t j = 0; j < n; ++j) {
        if (dead[j])
            continue;
        lo = std::min(lo, t.ops[j].xb.start);
        hi = std::max(hi, t.ops[j].xb.stop + 1);
        t.ops[w++] = t.ops[j];
    }
    if (w != n) {
        t.ops.resize(w);
        t.xbLo = w ? lo : 0;
        t.xbHi = w ? hi : 0;
    }
}

/**
 * Stripe-merge pass over the compacted ops (see fuseBatchTrace):
 * maximal runs of consecutive Writes under the same crossbar Range
 * and row-mask snapshot with pairwise-distinct slots collapse into
 * one TraceOp with wn = run length, the {slot, value} pairs parked in
 * the segment's writePairs arena. Row-mask ids compare exactly: the
 * builder's content dedup guarantees one id per realized bit pattern
 * within a segment. A repeated slot ends the run — under equal masks
 * the second write would fully overwrite the first sequentially,
 * while a stripe applies both; WAW elimination has already removed
 * the covered one in every such pair, so this guard is belt and
 * braces, not a fusion loss in practice. Runs after fusion, so dead
 * ops can never glue a stripe together.
 */
void
mergeWriteStripes(SegmentTrace &t, BatchTrace::Fusion &fusion)
{
    const size_t n = t.ops.size();
    if (n < 2)
        return;
    size_t w = 0;
    size_t i = 0;
    while (i < n) {
        TraceOp op = t.ops[i];
        if (op.type != OpType::Write) {
            t.ops[w++] = op;
            ++i;
            continue;
        }
        size_t j = i + 1;
        while (j < n) {
            const TraceOp &nx = t.ops[j];
            if (nx.type != OpType::Write || !(nx.xb == op.xb) ||
                nx.rowMask != op.rowMask)
                break;
            bool dupSlot = false;
            for (size_t k = i; k < j && !dupSlot; ++k)
                dupSlot = t.ops[k].index == nx.index;
            if (dupSlot)
                break;
            ++j;
        }
        if (j - i >= 2) {
            op.wn = static_cast<uint32_t>(j - i);
            op.wrun = static_cast<uint32_t>(t.writePairs.size());
            for (size_t k = i; k < j; ++k)
                t.writePairs.push_back(
                    {t.ops[k].index, t.ops[k].value});
            fusion.writeStripe += (j - i) - 1;
        }
        t.ops[w++] = op;
        i = j;
    }
    t.ops.resize(w);
}

} // namespace

void
fuseBatchTrace(BatchTrace &batch, const Geometry &geo)
{
    for (uint32_t s = 0; s < batch.used; ++s) {
        fuseSegment(batch.segments[s], geo, batch.fusion);
        mergeWriteStripes(batch.segments[s], batch.fusion);
    }
}

} // namespace pypim
