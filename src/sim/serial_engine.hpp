/**
 * @file
 * The reference execution engine: the bit-accurate serial replay loop
 * that used to live inside Simulator::performBatch. Every micro-op is
 * decoded and applied to all mask-selected crossbars on the calling
 * thread, in stream order (op-major). This is the default backend and
 * the behavioural oracle every other backend (trace, sharded) is
 * tested against — deliberately free of the decode-once/fusion
 * machinery it validates.
 */
#ifndef PYPIM_SIM_SERIAL_ENGINE_HPP
#define PYPIM_SIM_SERIAL_ENGINE_HPP

#include "sim/engine.hpp"

namespace pypim
{

/** Single-threaded full-array replay backend. */
class SerialEngine : public ExecutionEngine
{
  public:
    using ExecutionEngine::ExecutionEngine;

    const char *name() const override { return "serial"; }

    void execute(const Word *ops, size_t n) override;
};

} // namespace pypim

#endif // PYPIM_SIM_SERIAL_ENGINE_HPP
