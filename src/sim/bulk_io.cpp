#include "sim/bulk_io.hpp"

namespace pypim
{

void
planBulkRead(const Geometry &geo, const Range &entryXb,
             const Range &entryRow, BulkIoSpec &spec)
{
    constexpr size_t kCm = static_cast<size_t>(OpClass::CrossbarMask);
    constexpr size_t kRm = static_cast<size_t>(OpClass::RowMask);
    constexpr size_t kRd = static_cast<size_t>(OpClass::Read);

    const uint32_t rows = geo.rows;
    // The oracle narrows to Range::single(r) — its masks only ever
    // match the entry mask when the entry mask is itself a
    // single-element step-1 Range (exact equality, the GateBuilder
    // dedup rule).
    const bool rowIsSingle =
        entryRow.start == entryRow.stop && entryRow.step == 1;

    uint64_t cm = 0, rm = 0;
    uint64_t i = 0;
    while (i < spec.count) {
        const uint64_t s = spec.rowStart + i * spec.rowStep;
        const uint32_t warp =
            spec.warpStart + static_cast<uint32_t>(s / rows);
        const uint32_t r0 = static_cast<uint32_t>(s % rows);
        const uint64_t inWarp = std::min<uint64_t>(
            spec.count - i,
            (rows - r0 + spec.rowStep - 1) / spec.rowStep);

        // Narrow + restore, each element compared against the ENTRY
        // masks: readWord restores them after every element, so the
        // cached state the next element sees is always the entry
        // state.
        if (!(entryXb == Range::single(warp)))
            cm += 2 * inWarp;
        uint64_t rowMiss = inWarp;
        if (rowIsSingle && entryRow.start >= r0 &&
            (entryRow.start - r0) % spec.rowStep == 0) {
            // At most one element of this chunk lands exactly on the
            // entry row mask and skips the narrow/restore pair.
            const uint64_t e = (entryRow.start - r0) / spec.rowStep;
            if (e < inWarp)
                rowMiss -= 1;
        }
        rm += 2 * rowMiss;
        i += inWarp;
    }

    spec.stats.opCount[kCm] += cm;
    spec.stats.cycleCount[kCm] += cm;
    spec.stats.opCount[kRm] += rm;
    spec.stats.cycleCount[kRm] += rm;
    spec.stats.opCount[kRd] += spec.count;
    spec.stats.cycleCount[kRd] += spec.count;
    spec.finalXb = entryXb;
    spec.finalRow = entryRow;
}

uint64_t
planBulkWrite(const Geometry &geo, const std::optional<Range> &entryXb,
              const std::optional<Range> &entryRow,
              const uint32_t *values, BulkIoSpec &spec)
{
    std::optional<Range> xb = entryXb;
    std::optional<Range> row = entryRow;
    uint64_t runs = 0;
    forEachBulkWriteRun(geo, spec, values, [&](const BulkWriteRun &r) {
        ++runs;
        const Range w = Range::single(r.warp);
        if (!xb || !(*xb == w)) {
            xb = w;
            spec.stats.record(OpClass::CrossbarMask);
        }
        if (!row || !(*row == r.rows)) {
            row = r.rows;
            spec.stats.record(OpClass::RowMask);
        }
        spec.stats.record(OpClass::Write);
    });
    // count > 0 is a precondition, so at least one run engaged both.
    spec.finalXb = *xb;
    spec.finalRow = *row;
    return runs;
}

} // namespace pypim
