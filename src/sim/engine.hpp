/**
 * @file
 * Pluggable micro-op execution engines for the simulator.
 *
 * The simulator's job splits cleanly in two: *what* a micro-op does to
 * the crossbar state (bit-accurate semantics, paper §III) and *how*
 * the host machine replays it over the simulated memory. ExecutionEngine
 * captures the "how" behind a narrow seam so the semantics are written
 * once (in this base class) and backends only choose a replay strategy:
 *
 *  - SerialEngine (serial_engine.hpp): the reference backend; every op
 *    is applied to all mask-selected crossbars on the calling thread,
 *    op-major.
 *  - TraceEngine (trace_engine.hpp): decodes each barrier-free segment
 *    once into a SegmentTrace (sim/segment_trace.hpp) and replays it
 *    crossbar-major on the calling thread, keeping one crossbar's
 *    state hot in cache for the whole segment.
 *  - ShardedEngine (sharded_engine.hpp): partitions the crossbars into
 *    per-worker shards and replays segment traces crossbar-major
 *    within each shard on a persistent thread pool — the host-side
 *    analogue of the paper's observation (§VI) that crossbars are
 *    independent between the cross-crossbar ops (Read, H-tree Move),
 *    which serialise.
 *
 * Engines operate on state OWNED BY the Simulator (crossbars, H-tree,
 * in-stream mask state, stats), so engines can be swapped at runtime
 * without losing memory contents, and all engines are guaranteed
 * bit-identical by the parity test suite (tests/test_engine_parity.cpp).
 */
#ifndef PYPIM_SIM_ENGINE_HPP
#define PYPIM_SIM_ENGINE_HPP

#include <algorithm>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "sim/htree.hpp"
#include "sim/segment_trace.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

struct BatchTrace;
struct BulkIoSpec;
struct ReplayProgram;

/**
 * One micro-op replay backend. Owns no simulated state; executes
 * encoded micro-op batches against the Simulator's crossbars, mask
 * state and statistics counters (all passed in by reference).
 *
 * Crossbar slices: @p xbs may hold only a contiguous SLICE of the
 * geometry's crossbar space — xbs[0] is global crossbar @p xbBase —
 * when the simulator is one sub-device of a sharded logical device
 * (sim/device_group.hpp). The micro-op stream stays in GLOBAL
 * coordinates (masks, traces and stats are identical on every
 * sub-device); the engine clips every state application to the owned
 * slice: work ops iterate the mask intersected with the slice, Moves
 * apply only transfers with both endpoints owned (boundary transfers
 * are exchanged above the simulator), and Reads outside the slice
 * validate and count but return 0. A full-array engine has xbBase 0
 * and owns everything, so the monolithic path is unchanged.
 */
class ExecutionEngine
{
  public:
    ExecutionEngine(const Geometry &geo, std::vector<Crossbar> &xbs,
                    uint32_t xbBase, const HTree &htree,
                    MaskState &mask, Stats &stats)
        : geo_(geo), xbs_(xbs), xbBase_(xbBase), htree_(htree),
          mask_(mask), stats_(stats)
    {
    }

    virtual ~ExecutionEngine() = default;

    ExecutionEngine(const ExecutionEngine &) = delete;
    ExecutionEngine &operator=(const ExecutionEngine &) = delete;

    /** Backend name ("serial", "sharded", "trace") for reporting. */
    virtual const char *name() const = 0;

    /** Host threads participating in execution (1 for serial). */
    virtual uint32_t threads() const { return 1; }

    /** Execute @p n encoded micro-operations in order. */
    virtual void execute(const Word *ops, size_t n) = 0;

    /**
     * Replay one pre-built segment trace over the crossbar array.
     * This is the hand-off entry the pipelined path (sim/pipeline.hpp)
     * feeds: the trace was already validated and recorded in the
     * architectural stats by the pre-pass, so the engine only applies
     * state changes. The default replays crossbar-major inline on the
     * calling thread; ShardedEngine fans the hull out over its pool.
     */
    virtual void replayTrace(const SegmentTrace &trace);

    /**
     * Replay one compiled replay program (sim/replay_program.hpp) —
     * the fast path replayBatch takes for segments of a frozen cached
     * trace. Same clipping and threading contract as replayTrace; the
     * per-crossbar work is Crossbar::replayProgram, whose executor is
     * specialized over storage mode and mask shape.
     */
    virtual void replayProgram(const ReplayProgram &prog);

    /**
     * Replay one pre-built batch in stream order: Moves via applyMove,
     * segments via replayProgram when the batch carries a compiled
     * program for them (frozen cache entries built with
     * EngineConfig::compiledReplay) and via the replayTrace
     * interpreter otherwise (one-shot pipeline arenas, or the knob
     * off). Shared by the pipelined consumer and the synchronous
     * trace-cache hit path — either way the batch was validated and
     * its stats recorded at build time, so this is pure state
     * application on any backend.
     */
    void replayBatch(const BatchTrace &batch);

    /**
     * Apply a pre-validated Move under the crossbar-mask snapshot
     * @p xb: pure data movement, no validation, no stats. The
     * pipelined consumer thread calls this for queued Move items
     * (validation and stats were recorded at submit time).
     */
    void applyMove(const MicroOp &op, const Range &xb);

    /**
     * Execute a Read micro-op and return the N-bit response. Reads
     * address exactly one (crossbar, row) and are inherently serial,
     * so all backends share this implementation.
     */
    uint32_t executeRead(const MicroOp &op);

    /**
     * Gather the values addressed by a bulk transfer spec
     * (sim/bulk_io.hpp) into @p out: per owned crossbar one
     * gatherRows call when the elements are row-consecutive, scalar
     * reads otherwise. Elements outside the owned slice are left
     * untouched — on a sharded device every sub-device fills its
     * disjoint share of the common host buffer. Stats were applied by
     * the caller (the spec carries the pre-planned delta). Returns
     * 64-bit words transposed. Shared by all backends: the transfer
     * runs after a drain, so the array is quiescent.
     */
    uint64_t executeReadBulk(const BulkIoSpec &spec, uint32_t *out);

    /** The scatter mirror of executeReadBulk: write @p values into
     *  the addressed rows of owned crossbars. */
    uint64_t applyWriteBulk(const BulkIoSpec &spec,
                            const uint32_t *values);

  protected:
    /** Reference semantics: apply one op to the full crossbar array. */
    void serialPerform(const MicroOp &op);

    /**
     * Split @p ops at the cross-crossbar barriers: barrier ops run
     * immediately via the reference semantics, and @p fn(seg, len) is
     * invoked for each maximal barrier-free segment in between — the
     * segmentation every trace-consuming backend shares.
     */
    template <typename Fn>
    void
    forEachSegment(const Word *ops, size_t n, Fn &&fn)
    {
        size_t i = 0;
        while (i < n) {
            if (isBarrierOp(enc::peekType(ops[i]))) {
                serialPerform(MicroOp::decode(ops[i]));
                ++i;
                continue;
            }
            size_t j = i + 1;
            while (j < n && !isBarrierOp(enc::peekType(ops[j])))
                ++j;
            fn(ops + i, j - i);
            i = j;
        }
    }

    void doCrossbarMask(const MicroOp &op);
    void doRowMask(const MicroOp &op);
    void doWrite(const MicroOp &op);
    void doLogicH(const MicroOp &op);
    void doLogicV(const MicroOp &op);
    void doMove(const MicroOp &op);

    // --- owned-slice helpers (global crossbar coordinates) -------------

    /** First global crossbar id owned by this engine. */
    uint32_t sliceLo() const { return xbBase_; }
    /** One past the last owned global crossbar id. */
    uint32_t
    sliceHi() const
    {
        return xbBase_ + static_cast<uint32_t>(xbs_.size());
    }
    /** True iff global crossbar @p g lives in the owned slice. */
    bool
    owns(uint32_t g) const
    {
        return g >= xbBase_ && g < sliceHi();
    }
    /** Owned crossbar by GLOBAL id (callers check owns() first). */
    Crossbar &xbAt(uint32_t g) { return xbs_[g - xbBase_]; }

    /**
     * Invoke @p fn(g) for every element of @p r that falls inside the
     * owned slice, ascending — the masked-broadcast inner loop of the
     * work ops, clipped to this sub-device.
     */
    template <typename Fn>
    void
    forEachOwned(const Range &r, Fn &&fn)
    {
        const uint32_t hi = sliceHi();
        if (r.start >= hi)
            return;
        uint32_t first = r.start;
        if (first < xbBase_)
            first += (xbBase_ - r.start + r.step - 1) / r.step * r.step;
        const uint32_t last = std::min(r.stop, hi - 1);
        for (uint32_t g = first; g <= last; g += r.step)
            fn(g);
    }

    const Geometry &geo_;
    std::vector<Crossbar> &xbs_;
    const uint32_t xbBase_;
    const HTree &htree_;
    MaskState &mask_;
    Stats &stats_;

  private:
    /** doMove scratch (read-all-then-write-all staging), reused so
     *  the per-op hot path never allocates. */
    std::vector<uint32_t> moveValues_;
    std::vector<uint32_t> moveDsts_;
};

/** Instantiate the backend selected by @p cfg over the given state. */
std::unique_ptr<ExecutionEngine>
makeEngine(const EngineConfig &cfg, const Geometry &geo,
           std::vector<Crossbar> &xbs, uint32_t xbBase,
           const HTree &htree, MaskState &mask, Stats &stats);

/**
 * Validate a Read against the mask state exactly as the serial
 * reference would, without touching any crossbar. Shared between
 * executeRead and the pipeline pre-pass (which validates at submit
 * time so a malformed op is reported at the submitBatch containing
 * it).
 */
void validateRead(const MicroOp &op, const Range &xb, const Range &row,
                  const Geometry &geo);

/**
 * Validate a Move against the crossbar mask @p xb exactly as the
 * serial reference would, without touching any crossbar. Returns the
 * (signed) crossbar distance of the transfer.
 */
int64_t validateMove(const MicroOp &op, const Range &xb,
                     const Geometry &geo);

} // namespace pypim

#endif // PYPIM_SIM_ENGINE_HPP
