/**
 * @file
 * Pluggable micro-op execution engines for the simulator.
 *
 * The simulator's job splits cleanly in two: *what* a micro-op does to
 * the crossbar state (bit-accurate semantics, paper §III) and *how*
 * the host machine replays it over the simulated memory. ExecutionEngine
 * captures the "how" behind a narrow seam so the semantics are written
 * once (in this base class) and backends only choose a replay strategy:
 *
 *  - SerialEngine (serial_engine.hpp): the reference backend; every op
 *    is applied to all mask-selected crossbars on the calling thread.
 *  - ShardedEngine (sharded_engine.hpp): partitions the crossbars into
 *    per-worker shards and executes whole batches shard-parallel on a
 *    persistent thread pool — the host-side analogue of the paper's
 *    observation (§VI) that crossbars are independent between the
 *    cross-crossbar ops (Read, H-tree Move), which serialise.
 *
 * Engines operate on state OWNED BY the Simulator (crossbars, H-tree,
 * in-stream mask state, stats), so engines can be swapped at runtime
 * without losing memory contents, and both engines are guaranteed
 * bit-identical by the parity test suite (tests/test_engine_parity.cpp).
 */
#ifndef PYPIM_SIM_ENGINE_HPP
#define PYPIM_SIM_ENGINE_HPP

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "sim/htree.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

/**
 * In-stream mask state (paper §III-B): the crossbar activation range
 * and the stored row mask, kept together with the row mask's expanded
 * bit-vector realisation so read/write/logic ops reuse it.
 */
struct MaskState
{
    Range xb;
    Range row;
    std::vector<uint64_t> rowWords;

    /** Power-on state: all crossbars and all rows selected. */
    void
    reset(const Geometry &geo)
    {
        xb = Range::all(geo.numCrossbars);
        setRow(Range::all(geo.rows), geo.rows);
    }

    /** Install a new row mask and (re)expand it, reusing rowWords. */
    void
    setRow(const Range &r, uint32_t rows)
    {
        row = r;
        row.expandInto(rows, rowWords);
    }
};

/**
 * One micro-op replay backend. Owns no simulated state; executes
 * encoded micro-op batches against the Simulator's crossbars, mask
 * state and statistics counters (all passed in by reference).
 */
class ExecutionEngine
{
  public:
    ExecutionEngine(const Geometry &geo, std::vector<Crossbar> &xbs,
                    const HTree &htree, MaskState &mask, Stats &stats)
        : geo_(geo), xbs_(xbs), htree_(htree), mask_(mask),
          stats_(stats)
    {
    }

    virtual ~ExecutionEngine() = default;

    ExecutionEngine(const ExecutionEngine &) = delete;
    ExecutionEngine &operator=(const ExecutionEngine &) = delete;

    /** Backend name ("serial", "sharded") for reporting. */
    virtual const char *name() const = 0;

    /** Host threads participating in execution (1 for serial). */
    virtual uint32_t threads() const { return 1; }

    /** Execute @p n encoded micro-operations in order. */
    virtual void execute(const Word *ops, size_t n) = 0;

    /**
     * Execute a Read micro-op and return the N-bit response. Reads
     * address exactly one (crossbar, row) and are inherently serial,
     * so all backends share this implementation.
     */
    uint32_t executeRead(const MicroOp &op);

  protected:
    /** Reference semantics: apply one op to the full crossbar array. */
    void serialPerform(const MicroOp &op);

    void doCrossbarMask(const MicroOp &op);
    void doRowMask(const MicroOp &op);
    void doWrite(const MicroOp &op);
    void doLogicH(const MicroOp &op);
    void doLogicV(const MicroOp &op);
    void doMove(const MicroOp &op);

    const Geometry &geo_;
    std::vector<Crossbar> &xbs_;
    const HTree &htree_;
    MaskState &mask_;
    Stats &stats_;
};

/** Instantiate the backend selected by @p cfg over the given state. */
std::unique_ptr<ExecutionEngine>
makeEngine(const EngineConfig &cfg, const Geometry &geo,
           std::vector<Crossbar> &xbs, const HTree &htree,
           MaskState &mask, Stats &stats);

} // namespace pypim

#endif // PYPIM_SIM_ENGINE_HPP
