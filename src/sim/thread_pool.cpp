#include "sim/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__) && defined(__GLIBC__)
#define PYPIM_HAVE_AFFINITY 1
#include <pthread.h>
#include <sched.h>
#endif

namespace pypim
{

namespace
{

/**
 * Pin @p t to host core @p core (NUMA/affinity knob of the sharded
 * engine): keeps each worker's shard of condensed crossbar state in
 * one core's cache hierarchy across batches instead of migrating with
 * the scheduler. Returns false where unsupported — the knob is
 * explicitly a no-op there (ROADMAP: "no-op where
 * pthread_setaffinity_np is unavailable").
 */
bool
pinThreadToCore(std::thread &t, uint32_t core)
{
#if defined(PYPIM_HAVE_AFFINITY)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % CPU_SETSIZE, &set);
    return pthread_setaffinity_np(t.native_handle(), sizeof(set),
                                  &set) == 0;
#else
    (void)t;
    (void)core;
    return false;
#endif
}

} // namespace

ThreadPool::ThreadPool(uint32_t threads, bool pinWorkers,
                       uint32_t pinBase)
    : nThreads_(std::max(1u, threads))
{
    const uint32_t hw =
        std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(nThreads_ - 1);
    for (uint32_t i = 0; i + 1 < nThreads_; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
        // Core 0 is left to the calling thread, which takes its own
        // share of every parallelFor; pinBase staggers sibling pools.
        if (pinWorkers &&
            pinThreadToCore(workers_.back(), (pinBase + i + 1) % hw))
            ++pinned_;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runTasks()
{
    for (;;) {
        const uint32_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_)
            return;
        try {
            (*fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvStart_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        runTasks();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --busyWorkers_;
        }
        cvDone_.notify_one();
    }
}

void
ThreadPool::parallelFor(uint32_t tasks,
                        const std::function<void(uint32_t)> &fn)
{
    if (tasks == 0)
        return;
    if (workers_.empty() || tasks == 1) {
        for (uint32_t i = 0; i < tasks; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        tasks_ = tasks;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        busyWorkers_ = static_cast<uint32_t>(workers_.size());
        ++generation_;
    }
    cvStart_.notify_all();
    runTasks();  // the calling thread takes its share
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvDone_.wait(lock, [&] { return busyWorkers_ == 0; });
        fn_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }
}

} // namespace pypim
