#include "sim/thread_pool.hpp"

#include <algorithm>

namespace pypim
{

ThreadPool::ThreadPool(uint32_t threads)
    : nThreads_(std::max(1u, threads))
{
    workers_.reserve(nThreads_ - 1);
    for (uint32_t i = 0; i + 1 < nThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runTasks()
{
    for (;;) {
        const uint32_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_)
            return;
        try {
            (*fn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvStart_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        runTasks();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --busyWorkers_;
        }
        cvDone_.notify_one();
    }
}

void
ThreadPool::parallelFor(uint32_t tasks,
                        const std::function<void(uint32_t)> &fn)
{
    if (tasks == 0)
        return;
    if (workers_.empty() || tasks == 1) {
        for (uint32_t i = 0; i < tasks; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        tasks_ = tasks;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        busyWorkers_ = static_cast<uint32_t>(workers_.size());
        ++generation_;
    }
    cvStart_.notify_all();
    runTasks();  // the calling thread takes its share
    {
        std::unique_lock<std::mutex> lock(mu_);
        cvDone_.wait(lock, [&] { return busyWorkers_ == 0; });
        fn_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }
}

} // namespace pypim
