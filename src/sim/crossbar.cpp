#include "sim/crossbar.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/replay_program.hpp"
#include "sim/segment_trace.hpp"

namespace pypim
{

namespace
{

/** Max blocks per column: rows <= 65536 (geometry invariant) gives
 *  <= 1024 words <= 128 blocks — small enough for stack bitmaps. */
constexpr uint32_t kMaxBlocksPerCol =
    (65536 / 64 + Crossbar::kBlockWords - 1) / Crossbar::kBlockWords;

/** All-zero block every absent read resolves to. */
constexpr uint64_t kZeroBlock[Crossbar::kBlockWords] = {};

bool
allZero(const uint64_t *w, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        if (w[i])
            return false;
    return true;
}

/**
 * In-place 64x64 bit-matrix transpose: on return, bit p of x[k]
 * equals bit k of the old x[p]. Hacker's Delight 7-3 with the shift
 * directions flipped for this codebase's LSB-0 bit numbering (the
 * textbook form assumes MSB-0 and would compute the anti-diagonal
 * transpose here).
 */
void
transpose64(uint64_t x[64])
{
    uint64_t m = 0x00000000FFFFFFFFull;
    for (uint32_t j = 32; j; j >>= 1, m ^= m << j) {
        for (uint32_t k = 0; k < 64; k = (k + j + 1) & ~j) {
            const uint64_t t = ((x[k] >> j) ^ x[k | j]) & m;
            x[k] ^= t << j;
            x[k | j] ^= t;
        }
    }
}

/** 64-bit word mask selecting bits [off, off+take). */
uint64_t
windowMask(uint32_t off, uint32_t take)
{
    // take == 64 implies off == 0 (windows are 64-aligned after the
    // first), and 1ull << 64 would be UB.
    return take == 64 ? ~0ull : ((1ull << take) - 1) << off;
}

} // namespace

/**
 * Refcounted pool of kBlockWords-word blocks backing one paged
 * crossbar and every snapshot taken from it. Freed slots are recycled
 * through a free list; alloc() always returns an all-zero block (the
 * invariant every densification relies on). Refcounts are plain
 * integers — see the synchronisation contract in crossbar.hpp.
 */
class BlockPool
{
  public:
    /** A fresh all-zero block with refcount 1. */
    uint32_t
    alloc()
    {
        if (!free_.empty()) {
            const uint32_t id = free_.back();
            free_.pop_back();
            refs_[id] = 1;
            uint64_t *w = words(id);
            std::fill(w, w + Crossbar::kBlockWords, 0);
            return id;
        }
        const uint32_t id = static_cast<uint32_t>(refs_.size());
        refs_.push_back(1);
        words_.resize(words_.size() + Crossbar::kBlockWords, 0);
        return id;
    }

    /** A copy of block @p id with refcount 1 (copy-on-write step). */
    uint32_t
    clone(uint32_t id)
    {
        const uint32_t nid = alloc();  // may grow words_: copy by index
        std::copy(words_.begin() +
                      static_cast<size_t>(id) * Crossbar::kBlockWords,
                  words_.begin() +
                      static_cast<size_t>(id + 1) * Crossbar::kBlockWords,
                  words_.begin() +
                      static_cast<size_t>(nid) * Crossbar::kBlockWords);
        return nid;
    }

    void ref(uint32_t id) { ++refs_[id]; }

    void
    unref(uint32_t id)
    {
        if (--refs_[id] == 0)
            free_.push_back(id);
    }

    uint32_t refCount(uint32_t id) const { return refs_[id]; }

    uint64_t *
    words(uint32_t id)
    {
        return words_.data() +
               static_cast<size_t>(id) * Crossbar::kBlockWords;
    }
    const uint64_t *
    words(uint32_t id) const
    {
        return words_.data() +
               static_cast<size_t>(id) * Crossbar::kBlockWords;
    }

    /** Bytes this pool holds allocated (block words + bookkeeping). */
    uint64_t
    residentBytes() const
    {
        return words_.capacity() * sizeof(uint64_t) +
               refs_.capacity() * sizeof(uint32_t) +
               free_.capacity() * sizeof(uint32_t);
    }

  private:
    std::vector<uint64_t> words_;
    std::vector<uint32_t> refs_;
    std::vector<uint32_t> free_;
};

Crossbar::Crossbar(const Geometry &geo, XbarStorage storage)
    : geo_(&geo),
      wordsPerCol_((geo.rows + 63) / 64),
      blocksPerCol_((wordsPerCol_ + kBlockWords - 1) / kBlockWords),
      storage_(storage),
      state_(storage == XbarStorage::Dense
                 ? static_cast<size_t>(geo.cols) * wordsPerCol_
                 : 0,
             0)
{
    panicIf(blocksPerCol_ > kMaxBlocksPerCol,
            "crossbar: block table exceeds the geometry bound");
    // Paged: table_ and pool_ stay empty until the first
    // densification, so an untouched crossbar costs O(1) bytes — the
    // property the max-geometry sweep (bench_simulator) relies on.
}

// --- paged block plumbing -----------------------------------------------

void
Crossbar::ensureTable()
{
    if (!table_.empty())
        return;
    table_.assign(static_cast<size_t>(geo_->cols) * blocksPerCol_,
                  kAbsent);
    if (!pool_)
        pool_ = std::make_shared<BlockPool>();
}

const uint64_t *
Crossbar::blockRO(uint32_t col, uint32_t b) const
{
    if (table_.empty())
        return nullptr;
    const uint32_t id = table_[tableIndex(col, b)];
    return id == kAbsent ? nullptr : pool_->words(id);
}

uint64_t *
Crossbar::blockRW(uint32_t col, uint32_t b)
{
    ensureTable();
    uint32_t &id = table_[tableIndex(col, b)];
    if (id == kAbsent) {
        id = pool_->alloc();
    } else if (pool_->refCount(id) > 1) {
        const uint32_t nid = pool_->clone(id);
        pool_->unref(id);
        id = nid;
    }
    return pool_->words(id);
}

uint64_t *
Crossbar::blockIfPresent(uint32_t col, uint32_t b)
{
    if (table_.empty())
        return nullptr;
    uint32_t &id = table_[tableIndex(col, b)];
    if (id == kAbsent)
        return nullptr;
    if (pool_->refCount(id) > 1) {
        const uint32_t nid = pool_->clone(id);
        pool_->unref(id);
        id = nid;
    }
    return pool_->words(id);
}

// --- horizontal logic ---------------------------------------------------

void
Crossbar::logicH(const HalfGates &hg, std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "logicH: row mask width mismatch");
    if (storage_ == XbarStorage::Paged) {
        logicHPaged(hg, rowMask);
        return;
    }
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        uint64_t *out = colWords(static_cast<uint32_t>(sec.outCol));
        switch (hg.gate) {
          case Gate::Init0:
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] &= ~rowMask[w];
            break;
          case Gate::Init1:
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] |= rowMask[w];
            break;
          case Gate::Not:
          case Gate::Nor: {
            const uint64_t *inA =
                colWords(static_cast<uint32_t>(sec.inCol[0]));
            const uint64_t *inB = sec.numIn == 2
                ? colWords(static_cast<uint32_t>(sec.inCol[1]))
                : inA;
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] &= ~((inA[w] | inB[w]) & rowMask[w]);
            break;
          }
        }
    }
}

void
Crossbar::logicHPaged(const HalfGates &hg,
                      std::span<const uint64_t> rowMask)
{
    // A block where the realized row mask is all-zero is untouched by
    // every gate kind, so presence never has to change there; hoist
    // that test out of the section loop (the mask is shared).
    uint8_t maskNZ[kMaxBlocksPerCol];
    for (uint32_t b = 0; b < blocksPerCol_; ++b)
        maskNZ[b] =
            !allZero(rowMask.data() + b * kBlockWords, blockWords(b));

    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        const uint32_t outCol = static_cast<uint32_t>(sec.outCol);
        switch (hg.gate) {
          case Gate::Init0:
            // Can only clear bits: an absent output stays absent.
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                if (!maskNZ[b])
                    continue;
                uint64_t *out = blockIfPresent(outCol, b);
                if (!out)
                    continue;
                const uint64_t *m = rowMask.data() + b * kBlockWords;
                const uint32_t used = blockWords(b);
                for (uint32_t w = 0; w < used; ++w)
                    out[w] &= ~m[w];
            }
            break;
          case Gate::Init1:
            // Sets bits wherever the mask selects: densify exactly
            // the blocks the mask reaches into.
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                if (!maskNZ[b])
                    continue;
                uint64_t *out = blockRW(outCol, b);
                const uint64_t *m = rowMask.data() + b * kBlockWords;
                const uint32_t used = blockWords(b);
                for (uint32_t w = 0; w < used; ++w)
                    out[w] |= m[w];
            }
            break;
          case Gate::Not:
          case Gate::Nor: {
            const uint32_t inA = static_cast<uint32_t>(sec.inCol[0]);
            const uint32_t inB = sec.numIn == 2
                ? static_cast<uint32_t>(sec.inCol[1])
                : inA;
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                if (!maskNZ[b])
                    continue;
                // Absent inputs read as zero, so with both absent
                // out &= ~0 leaves the output block untouched — skip
                // before cloning anything. Absent output: stateful
                // logic only clears bits, stays absent.
                const bool aIn = blockRO(inA, b) != nullptr;
                const bool bIn = blockRO(inB, b) != nullptr;
                if (!aIn && !bIn)
                    continue;
                uint64_t *out = blockIfPresent(outCol, b);
                if (!out)
                    continue;
                // Fetch inputs AFTER the output's clone step: cloning
                // may grow the pool and move every block.
                const uint64_t *a =
                    aIn ? blockRO(inA, b) : kZeroBlock;
                const uint64_t *bb =
                    bIn ? blockRO(inB, b) : kZeroBlock;
                const uint64_t *m = rowMask.data() + b * kBlockWords;
                const uint32_t used = blockWords(b);
                for (uint32_t w = 0; w < used; ++w)
                    out[w] &= ~((a[w] | bb[w]) & m[w]);
            }
            break;
          }
        }
    }
}

void
Crossbar::logicHFusedInit1(const HalfGates &hg,
                           std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "logicH: row mask width mismatch");
    if (storage_ == XbarStorage::Paged) {
        logicHFusedInit1Paged(hg, rowMask);
        return;
    }
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        uint64_t *out = colWords(static_cast<uint32_t>(sec.outCol));
        const uint64_t *inA =
            colWords(static_cast<uint32_t>(sec.inCol[0]));
        const uint64_t *inB = sec.numIn == 2
            ? colWords(static_cast<uint32_t>(sec.inCol[1]))
            : inA;
        for (uint32_t w = 0; w < wordsPerCol_; ++w)
            out[w] = (out[w] & ~rowMask[w]) |
                     (~(inA[w] | inB[w]) & rowMask[w]);
    }
}

void
Crossbar::logicHFusedInit1Paged(const HalfGates &hg,
                                std::span<const uint64_t> rowMask)
{
    uint8_t maskNZ[kMaxBlocksPerCol];
    for (uint32_t b = 0; b < blocksPerCol_; ++b)
        maskNZ[b] =
            !allZero(rowMask.data() + b * kBlockWords, blockWords(b));

    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        const uint32_t outCol = static_cast<uint32_t>(sec.outCol);
        const uint32_t inA = static_cast<uint32_t>(sec.inCol[0]);
        const uint32_t inB = sec.numIn == 2
            ? static_cast<uint32_t>(sec.inCol[1])
            : inA;
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            // Where the mask is zero the fused form reduces to
            // out = out: block untouched. Where it is nonzero the
            // result sets a bit wherever both inputs read zero, so
            // the output block must materialise even when every
            // operand is absent (absent inputs ⇒ out |= mask).
            if (!maskNZ[b])
                continue;
            uint64_t *out = blockRW(outCol, b);
            const uint64_t *a = blockRO(inA, b);
            const uint64_t *bb = blockRO(inB, b);
            if (!a)
                a = kZeroBlock;
            if (!bb)
                bb = kZeroBlock;
            const uint64_t *m = rowMask.data() + b * kBlockWords;
            const uint32_t used = blockWords(b);
            for (uint32_t w = 0; w < used; ++w)
                out[w] = (out[w] & ~m[w]) | (~(a[w] | bb[w]) & m[w]);
        }
    }
}

void
Crossbar::logicHFull(const HalfGates &hg)
{
    if (storage_ == XbarStorage::Paged) {
        logicHFullPaged(hg);
        return;
    }
    // All-ones realized mask: INIT is a fill and the gates drop the
    // blend — bit-identical to logicH under that mask.
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        uint64_t *out = colWords(static_cast<uint32_t>(sec.outCol));
        switch (hg.gate) {
          case Gate::Init0:
            std::fill(out, out + wordsPerCol_, 0);
            break;
          case Gate::Init1:
            std::fill(out, out + wordsPerCol_, ~0ull);
            break;
          case Gate::Not:
          case Gate::Nor: {
            const uint64_t *inA =
                colWords(static_cast<uint32_t>(sec.inCol[0]));
            const uint64_t *inB = sec.numIn == 2
                ? colWords(static_cast<uint32_t>(sec.inCol[1]))
                : inA;
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] &= ~(inA[w] | inB[w]);
            break;
          }
        }
    }
}

void
Crossbar::logicHFullPaged(const HalfGates &hg)
{
    // Every block is mask-selected, so the per-block mask-nonzero
    // scan of the masked kernel disappears entirely.
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        const uint32_t outCol = static_cast<uint32_t>(sec.outCol);
        switch (hg.gate) {
          case Gate::Init0:
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                uint64_t *out = blockIfPresent(outCol, b);
                if (out)
                    std::fill(out, out + blockWords(b), 0);
            }
            break;
          case Gate::Init1:
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                uint64_t *out = blockRW(outCol, b);
                std::fill(out, out + blockWords(b), ~0ull);
            }
            break;
          case Gate::Not:
          case Gate::Nor: {
            const uint32_t inA = static_cast<uint32_t>(sec.inCol[0]);
            const uint32_t inB = sec.numIn == 2
                ? static_cast<uint32_t>(sec.inCol[1])
                : inA;
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                const bool aIn = blockRO(inA, b) != nullptr;
                const bool bIn = blockRO(inB, b) != nullptr;
                if (!aIn && !bIn)
                    continue;  // out &= ~0: untouched
                uint64_t *out = blockIfPresent(outCol, b);
                if (!out)
                    continue;  // only clears: absent stays absent
                // Inputs AFTER the output's clone (pool may move).
                const uint64_t *a = aIn ? blockRO(inA, b) : kZeroBlock;
                const uint64_t *bb =
                    bIn ? blockRO(inB, b) : kZeroBlock;
                const uint32_t used = blockWords(b);
                for (uint32_t w = 0; w < used; ++w)
                    out[w] &= ~(a[w] | bb[w]);
            }
            break;
          }
        }
    }
}

void
Crossbar::logicHFusedInit1Full(const HalfGates &hg)
{
    if (storage_ == XbarStorage::Paged) {
        logicHFusedInit1FullPaged(hg);
        return;
    }
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        uint64_t *out = colWords(static_cast<uint32_t>(sec.outCol));
        const uint64_t *inA =
            colWords(static_cast<uint32_t>(sec.inCol[0]));
        const uint64_t *inB = sec.numIn == 2
            ? colWords(static_cast<uint32_t>(sec.inCol[1]))
            : inA;
        for (uint32_t w = 0; w < wordsPerCol_; ++w)
            out[w] = ~(inA[w] | inB[w]);
    }
}

void
Crossbar::logicHFusedInit1FullPaged(const HalfGates &hg)
{
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        const uint32_t outCol = static_cast<uint32_t>(sec.outCol);
        const uint32_t inA = static_cast<uint32_t>(sec.inCol[0]);
        const uint32_t inB = sec.numIn == 2
            ? static_cast<uint32_t>(sec.inCol[1])
            : inA;
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            // out = ~(a|b) sets bits wherever both inputs read zero,
            // so the output block materialises unconditionally.
            uint64_t *out = blockRW(outCol, b);
            const uint64_t *a = blockRO(inA, b);
            const uint64_t *bb = blockRO(inB, b);
            if (!a)
                a = kZeroBlock;
            if (!bb)
                bb = kZeroBlock;
            const uint32_t used = blockWords(b);
            for (uint32_t w = 0; w < used; ++w)
                out[w] = ~(a[w] | bb[w]);
        }
    }
}

// --- vertical logic -----------------------------------------------------

void
Crossbar::logicV(Gate g, uint32_t rowIn, uint32_t rowOut, uint32_t slot)
{
    if (storage_ == XbarStorage::Paged) {
        logicVPaged(g, rowIn, rowOut, slot);
        return;
    }
    // All loop-invariants hoisted: word indices, bit masks and the
    // gate dispatch are identical for every partition.
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t numPart = geo_->partitions;
    const uint32_t outWord = rowOut / 64;
    const uint64_t outBit = 1ull << (rowOut % 64);
    switch (g) {
      case Gate::Init0:
        for (uint32_t p = 0; p < numPart; ++p)
            colWords(p * pw + slot)[outWord] &= ~outBit;
        break;
      case Gate::Init1:
        for (uint32_t p = 0; p < numPart; ++p)
            colWords(p * pw + slot)[outWord] |= outBit;
        break;
      case Gate::Not: {
        const uint32_t inWord = rowIn / 64;
        const uint32_t inShift = rowIn % 64;
        for (uint32_t p = 0; p < numPart; ++p) {
            uint64_t *words = colWords(p * pw + slot);
            if ((words[inWord] >> inShift) & 1)
                words[outWord] &= ~outBit;
        }
        break;
      }
      case Gate::Nor:
        panic("logicV: NOR is not supported vertically");
    }
}

void
Crossbar::logicVPaged(Gate g, uint32_t rowIn, uint32_t rowOut,
                      uint32_t slot)
{
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t numPart = geo_->partitions;
    const uint32_t outWord = rowOut / 64;
    const uint32_t bOut = outWord / kBlockWords;
    const uint32_t relOut = outWord % kBlockWords;
    const uint64_t outBit = 1ull << (rowOut % 64);
    switch (g) {
      case Gate::Init0:
        for (uint32_t p = 0; p < numPart; ++p) {
            uint64_t *blk = blockIfPresent(p * pw + slot, bOut);
            if (blk)
                blk[relOut] &= ~outBit;
        }
        break;
      case Gate::Init1:
        for (uint32_t p = 0; p < numPart; ++p)
            blockRW(p * pw + slot, bOut)[relOut] |= outBit;
        break;
      case Gate::Not: {
        const uint32_t inWord = rowIn / 64;
        const uint32_t bIn = inWord / kBlockWords;
        const uint32_t relIn = inWord % kBlockWords;
        const uint32_t inShift = rowIn % 64;
        for (uint32_t p = 0; p < numPart; ++p) {
            const uint32_t col = p * pw + slot;
            const uint64_t *in = blockRO(col, bIn);
            // Extract the input bit BEFORE any clone can move blocks.
            const bool v = in && ((in[relIn] >> inShift) & 1);
            if (!v)
                continue;  // NOT(0)=1 cannot switch a stateful output
            uint64_t *out = blockIfPresent(col, bOut);
            if (out)
                out[relOut] &= ~outBit;
        }
        break;
      }
      case Gate::Nor:
        panic("logicV: NOR is not supported vertically");
    }
}

// --- trace replay -------------------------------------------------------

void
Crossbar::replaySegment(const SegmentTrace &trace, uint32_t self,
                        Stats *work)
{
    const size_t n = trace.ops.size();
    for (size_t i = 0; i < n;) {
        const TraceOp &op = trace.ops[i];
        if (op.type == OpType::LogicV) {
            // Runs of consecutive LogicV ops on the same
            // intra-partition index address the same partition
            // columns; replay the whole run column-major in one pass.
            size_t j = i + 1;
            while (j < n && trace.ops[j].type == OpType::LogicV &&
                   trace.ops[j].index == op.index)
                ++j;
            replayLogicVRun(trace.ops.data() + i, j - i, self, work);
            i = j;
            continue;
        }
        ++i;
        if (!op.xb.contains(self))
            continue;
        switch (op.type) {
          case OpType::Write: {
            const bool full = trace.rowMaskFull[op.rowMask] != 0;
            if (op.wn > 1) {
                // Stripe of adjacent Writes merged by the trace
                // fuser: distinct slots under one shared row mask.
                const std::span<const StripeWrite> ws{
                    trace.writePairs.data() + op.wrun, op.wn};
                if (full)
                    writeStripeFull(ws);
                else
                    writeStripe(ws, trace.rowMask(op.rowMask));
                // Work conservation: the stripe applies wn
                // architectural Writes.
                if (work)
                    work->recordN(OpClass::Write, op.wn);
            } else {
                if (full)
                    writeFull(op.index, op.value);
                else
                    write(op.index, op.value,
                          trace.rowMask(op.rowMask));
                if (work)
                    work->record(OpClass::Write);
            }
            break;
          }
          case OpType::LogicH: {
            const HalfGates &hg = trace.halfGates[op.hg];
            const bool full = trace.rowMaskFull[op.rowMask] != 0;
            if (op.fusedInit) {
                if (full)
                    logicHFusedInit1Full(hg);
                else
                    logicHFusedInit1(hg, trace.rowMask(op.rowMask));
                // Two architectural ops applied in one pass.
                if (work)
                    work->recordN(OpClass::LogicH, 2);
            } else {
                if (full)
                    logicHFull(hg);
                else
                    logicH(hg, trace.rowMask(op.rowMask));
                if (work)
                    work->record(OpClass::LogicH);
            }
            break;
          }
          default:
            break;  // unreachable: the builder emits work ops only
        }
    }
}

void
Crossbar::replayLogicVRun(const TraceOp *run, size_t n, uint32_t self,
                          Stats *work)
{
    // A LogicV op addresses two single rows of one column per
    // partition, so op-major replay touches every partition column
    // for two bits per op. Interchanging the loops applies the whole
    // run to one column while its words are hot. The run is
    // processed in fixed-size chunks of decoded gate descriptors so
    // no scratch allocation is needed; chunk order preserves stream
    // order within each column, and columns are independent.
    struct VGate
    {
        Gate gate;
        uint32_t inWord, inShift;
        uint32_t outWord;
        uint64_t outBit;
    };
    constexpr size_t kChunk = 64;
    VGate gates[kChunk];
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t numPart = geo_->partitions;
    const uint32_t slot = run[0].index;
    const bool paged = storage_ == XbarStorage::Paged;

    size_t i = 0;
    while (i < n) {
        size_t m = 0;
        for (; i < n && m < kChunk; ++i) {
            const TraceOp &op = run[i];
            if (!op.xb.contains(self))
                continue;
            gates[m].gate = op.gate;
            gates[m].inWord = op.rowIn / 64;
            gates[m].inShift = op.rowIn % 64;
            gates[m].outWord = op.rowOut / 64;
            gates[m].outBit = 1ull << (op.rowOut % 64);
            ++m;
            if (work)
                work->record(OpClass::LogicV);
        }
        if (m == 0)
            continue;
        for (uint32_t p = 0; p < numPart; ++p) {
            const uint32_t col = p * pw + slot;
            if (paged) {
                for (size_t k = 0; k < m; ++k) {
                    const VGate &g = gates[k];
                    const uint32_t bOut = g.outWord / kBlockWords;
                    const uint32_t relOut = g.outWord % kBlockWords;
                    switch (g.gate) {
                      case Gate::Init0: {
                        uint64_t *blk = blockIfPresent(col, bOut);
                        if (blk)
                            blk[relOut] &= ~g.outBit;
                        break;
                      }
                      case Gate::Init1:
                        blockRW(col, bOut)[relOut] |= g.outBit;
                        break;
                      case Gate::Not: {
                        const uint64_t *in =
                            blockRO(col, g.inWord / kBlockWords);
                        const bool v =
                            in && ((in[g.inWord % kBlockWords] >>
                                    g.inShift) &
                                   1);
                        if (!v)
                            break;
                        uint64_t *out = blockIfPresent(col, bOut);
                        if (out)
                            out[relOut] &= ~g.outBit;
                        break;
                      }
                      case Gate::Nor:
                        break;  // unreachable: rejected at emission
                    }
                }
                continue;
            }
            uint64_t *words = colWords(col);
            for (size_t k = 0; k < m; ++k) {
                const VGate &g = gates[k];
                switch (g.gate) {
                  case Gate::Init0:
                    words[g.outWord] &= ~g.outBit;
                    break;
                  case Gate::Init1:
                    words[g.outWord] |= g.outBit;
                    break;
                  case Gate::Not:
                    if ((words[g.inWord] >> g.inShift) & 1)
                        words[g.outWord] &= ~g.outBit;
                    break;
                  case Gate::Nor:
                    break;  // unreachable: rejected at emission
                }
            }
        }
    }
}

// --- compiled-program replay --------------------------------------------

void
Crossbar::replayProgram(const ReplayProgram &prog, uint32_t self,
                        Stats *work)
{
    // One dispatch per (segment, crossbar) into the specialization
    // lattice — every per-op branch the interpreter pays (op switch,
    // storage test, mask-handle resolution, blend-vs-fill) is decided
    // here, outside the hot loops.
    if (storage_ == XbarStorage::Paged) {
        if (prog.allMasksFull)
            replayProgramT<true, true>(prog, self, work);
        else
            replayProgramT<true, false>(prog, self, work);
    } else {
        if (prog.allMasksFull)
            replayProgramT<false, true>(prog, self, work);
        else
            replayProgramT<false, false>(prog, self, work);
    }
}

template <bool kPaged, bool kFull>
void
Crossbar::replayProgramT(const ReplayProgram &prog, uint32_t self,
                         Stats *work)
{
    using SecKind = ReplayProgram::SecKind;
    const bool uni = prog.uniformXb;
    if (uni && !prog.xb.contains(self))
        return;
    if (work && uni) {
        // One crossbar range shared by every instruction: the whole
        // program's applied work charges in three counter bumps.
        if (prog.workWrites)
            work->recordN(OpClass::Write, prog.workWrites);
        if (prog.workLogicH)
            work->recordN(OpClass::LogicH, prog.workLogicH);
        if (prog.workLogicV)
            work->recordN(OpClass::LogicV, prog.workLogicV);
    }
    const uint32_t wpc = wordsPerCol_;
    const uint32_t pw = geo_->partitionWidth();
    uint8_t maskNZ[kMaxBlocksPerCol];
    for (const ReplayProgram::Instr &in : prog.instrs) {
        if (!uni) {
            if (!in.xb.contains(self))
                continue;
            if (work)
                work->recordN(in.cls, in.work);
        }
        switch (in.kind) {
          case ReplayProgram::Kind::HPass: {
            const ReplayProgram::PSection *secs =
                prog.sections.data() + in.off;
            const uint64_t *m = prog.maskWords.data() + in.maskOff;
            if ((kFull || in.maskFull) &&
                in.passKind != ReplayProgram::kMixedPass) {
                // Kind-homogeneous blend-free pass (the common case:
                // one op's sections share their gate, and merges
                // chain gates of one kind): the section-kind switch
                // hoists out of the column loop, leaving tight
                // per-kind loops — with a single-word body for
                // shallow (<= 64-row) dense columns.
                const auto pk = static_cast<SecKind>(in.passKind);
                if (!kPaged) {
                    uint64_t *base = colWords(0);
                    switch (pk) {
                      case SecKind::Init0:
                        for (uint32_t s = 0; s < in.count; ++s) {
                            uint64_t *out =
                                base +
                                static_cast<size_t>(secs[s].outCol) *
                                    wpc;
                            std::fill(out, out + wpc, 0);
                        }
                        break;
                      case SecKind::Init1:
                        for (uint32_t s = 0; s < in.count; ++s) {
                            uint64_t *out =
                                base +
                                static_cast<size_t>(secs[s].outCol) *
                                    wpc;
                            std::fill(out, out + wpc, ~0ull);
                        }
                        break;
                      case SecKind::NotNor:
                        if (wpc == 1) {
                            for (uint32_t s = 0; s < in.count; ++s)
                                base[secs[s].outCol] &=
                                    ~(base[secs[s].inA] |
                                      base[secs[s].inB]);
                            break;
                        }
                        for (uint32_t s = 0; s < in.count; ++s) {
                            const ReplayProgram::PSection &sec =
                                secs[s];
                            uint64_t *out =
                                base +
                                static_cast<size_t>(sec.outCol) * wpc;
                            const uint64_t *a =
                                base +
                                static_cast<size_t>(sec.inA) * wpc;
                            const uint64_t *b =
                                base +
                                static_cast<size_t>(sec.inB) * wpc;
                            for (uint32_t w = 0; w < wpc; ++w)
                                out[w] &= ~(a[w] | b[w]);
                        }
                        break;
                      case SecKind::FusedNotNor:
                        if (wpc == 1) {
                            for (uint32_t s = 0; s < in.count; ++s)
                                base[secs[s].outCol] =
                                    ~(base[secs[s].inA] |
                                      base[secs[s].inB]);
                            break;
                        }
                        for (uint32_t s = 0; s < in.count; ++s) {
                            const ReplayProgram::PSection &sec =
                                secs[s];
                            uint64_t *out =
                                base +
                                static_cast<size_t>(sec.outCol) * wpc;
                            const uint64_t *a =
                                base +
                                static_cast<size_t>(sec.inA) * wpc;
                            const uint64_t *b =
                                base +
                                static_cast<size_t>(sec.inB) * wpc;
                            for (uint32_t w = 0; w < wpc; ++w)
                                out[w] = ~(a[w] | b[w]);
                        }
                        break;
                    }
                    break;
                }
                switch (pk) {
                  case SecKind::Init0:
                    for (uint32_t s = 0; s < in.count; ++s)
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            uint64_t *out =
                                blockIfPresent(secs[s].outCol, b);
                            if (out)
                                std::fill(out, out + blockWords(b),
                                          0);
                        }
                    break;
                  case SecKind::Init1:
                    for (uint32_t s = 0; s < in.count; ++s)
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            uint64_t *out = blockRW(secs[s].outCol, b);
                            std::fill(out, out + blockWords(b),
                                      ~0ull);
                        }
                    break;
                  case SecKind::NotNor:
                    for (uint32_t s = 0; s < in.count; ++s) {
                        const ReplayProgram::PSection &sec = secs[s];
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            const bool aIn =
                                blockRO(sec.inA, b) != nullptr;
                            const bool bIn =
                                blockRO(sec.inB, b) != nullptr;
                            if (!aIn && !bIn)
                                continue;
                            uint64_t *out =
                                blockIfPresent(sec.outCol, b);
                            if (!out)
                                continue;
                            // Inputs AFTER the output clone step.
                            const uint64_t *a =
                                aIn ? blockRO(sec.inA, b)
                                    : kZeroBlock;
                            const uint64_t *bb =
                                bIn ? blockRO(sec.inB, b)
                                    : kZeroBlock;
                            const uint32_t used = blockWords(b);
                            for (uint32_t w = 0; w < used; ++w)
                                out[w] &= ~(a[w] | bb[w]);
                        }
                    }
                    break;
                  case SecKind::FusedNotNor:
                    if (blocksPerCol_ == 1) {
                        // Shallow columns: one block per column, so
                        // the block loop and tail-length reload
                        // vanish from the hot path.
                        const uint32_t used = blockWords(0);
                        for (uint32_t s = 0; s < in.count; ++s) {
                            const ReplayProgram::PSection &sec =
                                secs[s];
                            uint64_t *out = blockRW(sec.outCol, 0);
                            const uint64_t *a = blockRO(sec.inA, 0);
                            const uint64_t *bb = blockRO(sec.inB, 0);
                            if (!a)
                                a = kZeroBlock;
                            if (!bb)
                                bb = kZeroBlock;
                            for (uint32_t w = 0; w < used; ++w)
                                out[w] = ~(a[w] | bb[w]);
                        }
                        break;
                    }
                    for (uint32_t s = 0; s < in.count; ++s) {
                        const ReplayProgram::PSection &sec = secs[s];
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            uint64_t *out = blockRW(sec.outCol, b);
                            const uint64_t *a = blockRO(sec.inA, b);
                            const uint64_t *bb = blockRO(sec.inB, b);
                            if (!a)
                                a = kZeroBlock;
                            if (!bb)
                                bb = kZeroBlock;
                            const uint32_t used = blockWords(b);
                            for (uint32_t w = 0; w < used; ++w)
                                out[w] = ~(a[w] | bb[w]);
                        }
                    }
                    break;
                }
                break;
            }
            if (kFull || in.maskFull) {
                // Blend-free pass: one section loop, no mask loads.
                for (uint32_t s = 0; s < in.count; ++s) {
                    const ReplayProgram::PSection &sec = secs[s];
                    if (!kPaged) {
                        uint64_t *out = colWords(sec.outCol);
                        switch (sec.kind) {
                          case SecKind::Init0:
                            std::fill(out, out + wpc, 0);
                            break;
                          case SecKind::Init1:
                            std::fill(out, out + wpc, ~0ull);
                            break;
                          case SecKind::NotNor: {
                            const uint64_t *a = colWords(sec.inA);
                            const uint64_t *b = colWords(sec.inB);
                            for (uint32_t w = 0; w < wpc; ++w)
                                out[w] &= ~(a[w] | b[w]);
                            break;
                          }
                          case SecKind::FusedNotNor: {
                            const uint64_t *a = colWords(sec.inA);
                            const uint64_t *b = colWords(sec.inB);
                            for (uint32_t w = 0; w < wpc; ++w)
                                out[w] = ~(a[w] | b[w]);
                            break;
                          }
                        }
                        continue;
                    }
                    switch (sec.kind) {
                      case SecKind::Init0:
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            uint64_t *out =
                                blockIfPresent(sec.outCol, b);
                            if (out)
                                std::fill(out, out + blockWords(b),
                                          0);
                        }
                        break;
                      case SecKind::Init1:
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            uint64_t *out = blockRW(sec.outCol, b);
                            std::fill(out, out + blockWords(b),
                                      ~0ull);
                        }
                        break;
                      case SecKind::NotNor:
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            const bool aIn =
                                blockRO(sec.inA, b) != nullptr;
                            const bool bIn =
                                blockRO(sec.inB, b) != nullptr;
                            if (!aIn && !bIn)
                                continue;
                            uint64_t *out =
                                blockIfPresent(sec.outCol, b);
                            if (!out)
                                continue;
                            // Inputs AFTER the output clone step.
                            const uint64_t *a =
                                aIn ? blockRO(sec.inA, b)
                                    : kZeroBlock;
                            const uint64_t *bb =
                                bIn ? blockRO(sec.inB, b)
                                    : kZeroBlock;
                            const uint32_t used = blockWords(b);
                            for (uint32_t w = 0; w < used; ++w)
                                out[w] &= ~(a[w] | bb[w]);
                        }
                        break;
                      case SecKind::FusedNotNor:
                        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                            uint64_t *out = blockRW(sec.outCol, b);
                            const uint64_t *a = blockRO(sec.inA, b);
                            const uint64_t *bb = blockRO(sec.inB, b);
                            if (!a)
                                a = kZeroBlock;
                            if (!bb)
                                bb = kZeroBlock;
                            const uint32_t used = blockWords(b);
                            for (uint32_t w = 0; w < used; ++w)
                                out[w] = ~(a[w] | bb[w]);
                        }
                        break;
                    }
                }
                break;
            }
            // Partial mask: the mask-nonzero block scan runs once for
            // the whole pass (the interpreter pays it once PER OP).
            if (kPaged)
                for (uint32_t b = 0; b < blocksPerCol_; ++b)
                    maskNZ[b] = !allZero(m + b * kBlockWords,
                                         blockWords(b));
            for (uint32_t s = 0; s < in.count; ++s) {
                const ReplayProgram::PSection &sec = secs[s];
                if (!kPaged) {
                    uint64_t *out = colWords(sec.outCol);
                    switch (sec.kind) {
                      case SecKind::Init0:
                        for (uint32_t w = 0; w < wpc; ++w)
                            out[w] &= ~m[w];
                        break;
                      case SecKind::Init1:
                        for (uint32_t w = 0; w < wpc; ++w)
                            out[w] |= m[w];
                        break;
                      case SecKind::NotNor: {
                        const uint64_t *a = colWords(sec.inA);
                        const uint64_t *b = colWords(sec.inB);
                        for (uint32_t w = 0; w < wpc; ++w)
                            out[w] &= ~((a[w] | b[w]) & m[w]);
                        break;
                      }
                      case SecKind::FusedNotNor: {
                        const uint64_t *a = colWords(sec.inA);
                        const uint64_t *b = colWords(sec.inB);
                        for (uint32_t w = 0; w < wpc; ++w)
                            out[w] = (out[w] & ~m[w]) |
                                     (~(a[w] | b[w]) & m[w]);
                        break;
                      }
                    }
                    continue;
                }
                switch (sec.kind) {
                  case SecKind::Init0:
                    for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                        if (!maskNZ[b])
                            continue;
                        uint64_t *out = blockIfPresent(sec.outCol, b);
                        if (!out)
                            continue;
                        const uint64_t *mb = m + b * kBlockWords;
                        const uint32_t used = blockWords(b);
                        for (uint32_t w = 0; w < used; ++w)
                            out[w] &= ~mb[w];
                    }
                    break;
                  case SecKind::Init1:
                    for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                        if (!maskNZ[b])
                            continue;
                        uint64_t *out = blockRW(sec.outCol, b);
                        const uint64_t *mb = m + b * kBlockWords;
                        const uint32_t used = blockWords(b);
                        for (uint32_t w = 0; w < used; ++w)
                            out[w] |= mb[w];
                    }
                    break;
                  case SecKind::NotNor:
                    for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                        if (!maskNZ[b])
                            continue;
                        const bool aIn =
                            blockRO(sec.inA, b) != nullptr;
                        const bool bIn =
                            blockRO(sec.inB, b) != nullptr;
                        if (!aIn && !bIn)
                            continue;
                        uint64_t *out = blockIfPresent(sec.outCol, b);
                        if (!out)
                            continue;
                        const uint64_t *a =
                            aIn ? blockRO(sec.inA, b) : kZeroBlock;
                        const uint64_t *bb =
                            bIn ? blockRO(sec.inB, b) : kZeroBlock;
                        const uint64_t *mb = m + b * kBlockWords;
                        const uint32_t used = blockWords(b);
                        for (uint32_t w = 0; w < used; ++w)
                            out[w] &= ~((a[w] | bb[w]) & mb[w]);
                    }
                    break;
                  case SecKind::FusedNotNor:
                    for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                        if (!maskNZ[b])
                            continue;
                        uint64_t *out = blockRW(sec.outCol, b);
                        const uint64_t *a = blockRO(sec.inA, b);
                        const uint64_t *bb = blockRO(sec.inB, b);
                        if (!a)
                            a = kZeroBlock;
                        if (!bb)
                            bb = kZeroBlock;
                        const uint64_t *mb = m + b * kBlockWords;
                        const uint32_t used = blockWords(b);
                        for (uint32_t w = 0; w < used; ++w)
                            out[w] = (out[w] & ~mb[w]) |
                                     (~(a[w] | bb[w]) & mb[w]);
                    }
                    break;
                }
            }
            break;
          }
          case ReplayProgram::Kind::WStripe: {
            const std::span<const StripeWrite> ws{
                prog.pairs.data() + in.off, in.count};
            if (kFull || in.maskFull)
                writeStripeFull(ws);
            else
                writeStripe(ws,
                            {prog.maskWords.data() + in.maskOff,
                             wpc});
            break;
          }
          case ReplayProgram::Kind::VRun: {
            // Pre-decoded run, column-major (replayLogicVRun without
            // the per-crossbar chunked re-decode and per-op mask
            // checks — the compiler made the run's range uniform).
            const ReplayProgram::VGate *gs =
                prog.vgates.data() + in.off;
            for (uint32_t part = 0; part < geo_->partitions; ++part) {
                const uint32_t col = part * pw + in.slot;
                if (kPaged) {
                    for (uint32_t k = 0; k < in.count; ++k) {
                        const ReplayProgram::VGate &g = gs[k];
                        const uint32_t bOut =
                            g.outWord / kBlockWords;
                        const uint32_t relOut =
                            g.outWord % kBlockWords;
                        switch (g.gate) {
                          case Gate::Init0: {
                            uint64_t *blk = blockIfPresent(col, bOut);
                            if (blk)
                                blk[relOut] &= ~g.outBit;
                            break;
                          }
                          case Gate::Init1:
                            blockRW(col, bOut)[relOut] |= g.outBit;
                            break;
                          case Gate::Not: {
                            const uint64_t *inb =
                                blockRO(col, g.inWord / kBlockWords);
                            const bool v =
                                inb &&
                                ((inb[g.inWord % kBlockWords] >>
                                  g.inShift) &
                                 1);
                            if (!v)
                                break;
                            uint64_t *out = blockIfPresent(col, bOut);
                            if (out)
                                out[relOut] &= ~g.outBit;
                            break;
                          }
                          case Gate::Nor:
                            break;  // unreachable: rejected earlier
                        }
                    }
                    continue;
                }
                uint64_t *words = colWords(col);
                for (uint32_t k = 0; k < in.count; ++k) {
                    const ReplayProgram::VGate &g = gs[k];
                    switch (g.gate) {
                      case Gate::Init0:
                        words[g.outWord] &= ~g.outBit;
                        break;
                      case Gate::Init1:
                        words[g.outWord] |= g.outBit;
                        break;
                      case Gate::Not:
                        if ((words[g.inWord] >> g.inShift) & 1)
                            words[g.outWord] &= ~g.outBit;
                        break;
                      case Gate::Nor:
                        break;  // unreachable: rejected earlier
                    }
                }
            }
            break;
          }
        }
    }
}

// --- strided read/write -------------------------------------------------

void
Crossbar::write(uint32_t slot, uint32_t value,
                std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "write: row mask width mismatch");
    if (storage_ == XbarStorage::Paged) {
        writePaged(slot, value, rowMask);
        return;
    }
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        uint64_t *words = colWords(p * pw + slot);
        if ((value >> p) & 1) {
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                words[w] |= rowMask[w];
        } else {
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                words[w] &= ~rowMask[w];
        }
    }
}

void
Crossbar::writePaged(uint32_t slot, uint32_t value,
                     std::span<const uint64_t> rowMask)
{
    uint8_t maskNZ[kMaxBlocksPerCol];
    for (uint32_t b = 0; b < blocksPerCol_; ++b)
        maskNZ[b] =
            !allZero(rowMask.data() + b * kBlockWords, blockWords(b));
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        const uint32_t col = p * pw + slot;
        const bool set = (value >> p) & 1;
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            if (!maskNZ[b])
                continue;  // no selected row in this block
            const uint64_t *m = rowMask.data() + b * kBlockWords;
            const uint32_t used = blockWords(b);
            if (set) {
                uint64_t *blk = blockRW(col, b);
                for (uint32_t w = 0; w < used; ++w)
                    blk[w] |= m[w];
            } else {
                // Writing a 0 bit only clears: absent stays absent.
                uint64_t *blk = blockIfPresent(col, b);
                if (!blk)
                    continue;
                for (uint32_t w = 0; w < used; ++w)
                    blk[w] &= ~m[w];
            }
        }
    }
}

void
Crossbar::writeStripe(std::span<const StripeWrite> ws,
                      std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "writeStripe: row mask width mismatch");
    if (storage_ == XbarStorage::Paged) {
        writeStripePaged(ws, rowMask);
        return;
    }
    // Partition-major: every stripe column of partition p is written
    // while the mask words are hot. The slots are pairwise distinct
    // (fuser invariant), so the column sets are disjoint and this
    // order is bit-identical to sequential application.
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        for (const StripeWrite &sw : ws) {
            uint64_t *words = colWords(p * pw + sw.slot);
            if ((sw.value >> p) & 1) {
                for (uint32_t w = 0; w < wordsPerCol_; ++w)
                    words[w] |= rowMask[w];
            } else {
                for (uint32_t w = 0; w < wordsPerCol_; ++w)
                    words[w] &= ~rowMask[w];
            }
        }
    }
}

void
Crossbar::writeStripePaged(std::span<const StripeWrite> ws,
                           std::span<const uint64_t> rowMask)
{
    uint8_t maskNZ[kMaxBlocksPerCol];
    for (uint32_t b = 0; b < blocksPerCol_; ++b)
        maskNZ[b] =
            !allZero(rowMask.data() + b * kBlockWords, blockWords(b));
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        for (const StripeWrite &sw : ws) {
            const uint32_t col = p * pw + sw.slot;
            const bool set = (sw.value >> p) & 1;
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                if (!maskNZ[b])
                    continue;
                const uint64_t *m = rowMask.data() + b * kBlockWords;
                const uint32_t used = blockWords(b);
                if (set) {
                    uint64_t *blk = blockRW(col, b);
                    for (uint32_t w = 0; w < used; ++w)
                        blk[w] |= m[w];
                } else {
                    uint64_t *blk = blockIfPresent(col, b);
                    if (!blk)
                        continue;
                    for (uint32_t w = 0; w < used; ++w)
                        blk[w] &= ~m[w];
                }
            }
        }
    }
}

void
Crossbar::writeFull(uint32_t slot, uint32_t value)
{
    if (storage_ == XbarStorage::Paged) {
        writeFullPaged(slot, value);
        return;
    }
    // All-ones mask: every plane column becomes a pure fill.
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        uint64_t *words = colWords(p * pw + slot);
        std::fill(words, words + wordsPerCol_,
                  (value >> p) & 1 ? ~0ull : 0);
    }
}

void
Crossbar::writeFullPaged(uint32_t slot, uint32_t value)
{
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        const uint32_t col = p * pw + slot;
        if ((value >> p) & 1) {
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                uint64_t *blk = blockRW(col, b);
                std::fill(blk, blk + blockWords(b), ~0ull);
            }
        } else {
            // A 0 bit only clears: absent stays absent.
            for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                uint64_t *blk = blockIfPresent(col, b);
                if (blk)
                    std::fill(blk, blk + blockWords(b), 0);
            }
        }
    }
}

void
Crossbar::writeStripeFull(std::span<const StripeWrite> ws)
{
    if (storage_ == XbarStorage::Paged) {
        writeStripeFullPaged(ws);
        return;
    }
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        for (const StripeWrite &sw : ws) {
            uint64_t *words = colWords(p * pw + sw.slot);
            std::fill(words, words + wordsPerCol_,
                      (sw.value >> p) & 1 ? ~0ull : 0);
        }
    }
}

void
Crossbar::writeStripeFullPaged(std::span<const StripeWrite> ws)
{
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        for (const StripeWrite &sw : ws) {
            const uint32_t col = p * pw + sw.slot;
            if ((sw.value >> p) & 1) {
                for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                    uint64_t *blk = blockRW(col, b);
                    std::fill(blk, blk + blockWords(b), ~0ull);
                }
            } else {
                for (uint32_t b = 0; b < blocksPerCol_; ++b) {
                    uint64_t *blk = blockIfPresent(col, b);
                    if (blk)
                        std::fill(blk, blk + blockWords(b), 0);
                }
            }
        }
    }
}

uint32_t
Crossbar::read(uint32_t slot, uint32_t row) const
{
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t off = row % 64;
    uint32_t value = 0;
    if (storage_ == XbarStorage::Paged) {
        if (table_.empty())
            return 0;  // never densified: architectural zeros
        const uint32_t wIdx = row / 64;
        const uint32_t b = wIdx / kBlockWords;
        const uint32_t rel = wIdx % kBlockWords;
        // The planes' table entries are a constant stride apart —
        // index directly instead of re-deriving the block pointer
        // through blockRO per bit.
        const size_t base =
            static_cast<size_t>(slot) * blocksPerCol_ + b;
        const size_t stride =
            static_cast<size_t>(pw) * blocksPerCol_;
        const BlockPool &pool = *pool_;
        for (uint32_t p = 0; p < geo_->wordBits; ++p) {
            const uint32_t id = table_[base + p * stride];
            if (id != kAbsent)
                value |= static_cast<uint32_t>(
                             (pool.words(id)[rel] >> off) & 1)
                         << p;
        }
        return value;
    }
    // Same hoist for the dense slab: one base pointer + plane stride.
    const uint64_t *word =
        state_.data() + static_cast<size_t>(slot) * wordsPerCol_ +
        row / 64;
    const size_t stride = static_cast<size_t>(pw) * wordsPerCol_;
    for (uint32_t p = 0; p < geo_->wordBits; ++p)
        value |= static_cast<uint32_t>((word[p * stride] >> off) & 1)
                 << p;
    return value;
}

void
Crossbar::writeRow(uint32_t slot, uint32_t value, uint32_t row)
{
    const uint32_t pw = geo_->partitionWidth();
    const uint64_t bit = 1ull << (row % 64);
    if (storage_ == XbarStorage::Paged) {
        if (value == 0 && table_.empty())
            return;  // clearing architectural zeros: no-op
        const uint32_t wIdx = row / 64;
        const uint32_t b = wIdx / kBlockWords;
        const uint32_t rel = wIdx % kBlockWords;
        for (uint32_t p = 0; p < geo_->wordBits; ++p) {
            const uint32_t col = p * pw + slot;
            if ((value >> p) & 1) {
                blockRW(col, b)[rel] |= bit;
            } else {
                uint64_t *blk = blockIfPresent(col, b);
                if (blk)
                    blk[rel] &= ~bit;
            }
        }
        return;
    }
    uint64_t *word =
        state_.data() + static_cast<size_t>(slot) * wordsPerCol_ +
        row / 64;
    const size_t stride = static_cast<size_t>(pw) * wordsPerCol_;
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        if ((value >> p) & 1)
            word[p * stride] |= bit;
        else
            word[p * stride] &= ~bit;
    }
}

// --- bulk gather/scatter ------------------------------------------------

uint64_t
Crossbar::gatherRows(uint32_t slot, uint32_t row, uint32_t count,
                     uint32_t *out) const
{
    panicIf(static_cast<uint64_t>(row) + count > geo_->rows,
            "gatherRows: row window exceeds crossbar height");
    if (count == 0)
        return 0;
    if (storage_ == XbarStorage::Paged)
        return gatherRowsPaged(slot, row, count, out);

    const uint32_t pw = geo_->partitionWidth();
    const uint64_t *col0 =
        state_.data() + static_cast<size_t>(slot) * wordsPerCol_;
    const size_t stride = static_cast<size_t>(pw) * wordsPerCol_;
    uint64_t transposed = 0;
    uint32_t done = 0;
    while (done < count) {
        const uint32_t r = row + done;
        const uint32_t wIdx = r / 64;
        const uint32_t off = r % 64;
        const uint32_t take = std::min<uint32_t>(64 - off, count - done);
        uint64_t m[64];
        uint32_t p = 0;
        for (; p < geo_->wordBits; ++p)
            m[p] = col0[p * stride + wIdx];
        for (; p < 64; ++p)
            m[p] = 0;
        transpose64(m);
        transposed += 64;
        for (uint32_t k = 0; k < take; ++k)
            out[done + k] = static_cast<uint32_t>(m[off + k]);
        done += take;
    }
    return transposed;
}

uint64_t
Crossbar::gatherRowsPaged(uint32_t slot, uint32_t row, uint32_t count,
                          uint32_t *out) const
{
    if (table_.empty()) {
        std::fill(out, out + count, 0u);
        return 0;
    }
    const uint32_t pw = geo_->partitionWidth();
    const size_t stride = static_cast<size_t>(pw) * blocksPerCol_;
    const BlockPool &pool = *pool_;
    uint64_t transposed = 0;
    uint32_t done = 0;
    while (done < count) {
        const uint32_t r = row + done;
        const uint32_t wIdx = r / 64;
        const uint32_t off = r % 64;
        const uint32_t take = std::min<uint32_t>(64 - off, count - done);
        const uint32_t b = wIdx / kBlockWords;
        const uint32_t rel = wIdx % kBlockWords;
        const size_t base =
            static_cast<size_t>(slot) * blocksPerCol_ + b;
        uint64_t m[64];
        uint64_t any = 0;
        uint32_t p = 0;
        for (; p < geo_->wordBits; ++p) {
            const uint32_t id = table_[base + p * stride];
            m[p] = id == kAbsent ? 0 : pool.words(id)[rel];
            any |= m[p];
        }
        for (; p < 64; ++p)
            m[p] = 0;
        if (!any) {
            // Absent (or decayed-to-zero) source window: the values
            // are architectural zeros — no transpose needed.
            std::fill(out + done, out + done + take, 0u);
            done += take;
            continue;
        }
        transpose64(m);
        transposed += 64;
        for (uint32_t k = 0; k < take; ++k)
            out[done + k] = static_cast<uint32_t>(m[off + k]);
        done += take;
    }
    return transposed;
}

uint64_t
Crossbar::scatterRows(uint32_t slot, uint32_t row, uint32_t count,
                      const uint32_t *values)
{
    panicIf(static_cast<uint64_t>(row) + count > geo_->rows,
            "scatterRows: row window exceeds crossbar height");
    if (count == 0)
        return 0;
    if (storage_ == XbarStorage::Paged)
        return scatterRowsPaged(slot, row, count, values);

    const uint32_t pw = geo_->partitionWidth();
    uint64_t *col0 =
        state_.data() + static_cast<size_t>(slot) * wordsPerCol_;
    const size_t stride = static_cast<size_t>(pw) * wordsPerCol_;
    uint64_t transposed = 0;
    uint32_t done = 0;
    while (done < count) {
        const uint32_t r = row + done;
        const uint32_t wIdx = r / 64;
        const uint32_t off = r % 64;
        const uint32_t take = std::min<uint32_t>(64 - off, count - done);
        const uint64_t wmask = windowMask(off, take);
        uint64_t m[64] = {};
        uint64_t any = 0;
        for (uint32_t k = 0; k < take; ++k) {
            m[off + k] = values[done + k];
            any |= m[off + k];
        }
        if (!any) {
            // All-zero input window: pure clear, no transpose.
            for (uint32_t p = 0; p < geo_->wordBits; ++p)
                col0[p * stride + wIdx] &= ~wmask;
            done += take;
            continue;
        }
        transpose64(m);
        transposed += 64;
        for (uint32_t p = 0; p < geo_->wordBits; ++p) {
            uint64_t &w = col0[p * stride + wIdx];
            w = (w & ~wmask) | m[p];
        }
        done += take;
    }
    return transposed;
}

uint64_t
Crossbar::scatterRowsPaged(uint32_t slot, uint32_t row, uint32_t count,
                           const uint32_t *values)
{
    const uint32_t pw = geo_->partitionWidth();
    uint64_t transposed = 0;
    uint32_t done = 0;
    while (done < count) {
        const uint32_t r = row + done;
        const uint32_t wIdx = r / 64;
        const uint32_t off = r % 64;
        const uint32_t take = std::min<uint32_t>(64 - off, count - done);
        const uint64_t wmask = windowMask(off, take);
        const uint32_t b = wIdx / kBlockWords;
        const uint32_t rel = wIdx % kBlockWords;
        uint64_t m[64] = {};
        uint64_t any = 0;
        for (uint32_t k = 0; k < take; ++k) {
            m[off + k] = values[done + k];
            any |= m[off + k];
        }
        if (!any) {
            // All-zero input window clears present blocks only —
            // absent blocks stay absent (elision preserved).
            for (uint32_t p = 0; p < geo_->wordBits; ++p) {
                uint64_t *blk = blockIfPresent(p * pw + slot, b);
                if (blk)
                    blk[rel] &= ~wmask;
            }
            done += take;
            continue;
        }
        transpose64(m);
        transposed += 64;
        for (uint32_t p = 0; p < geo_->wordBits; ++p) {
            const uint32_t col = p * pw + slot;
            if (m[p]) {
                // blockRW may relocate the pool — no caching across
                // planes.
                uint64_t *blk = blockRW(col, b);
                blk[rel] = (blk[rel] & ~wmask) | m[p];
            } else {
                uint64_t *blk = blockIfPresent(col, b);
                if (blk)
                    blk[rel] &= ~wmask;
            }
        }
        done += take;
    }
    return transposed;
}

bool
Crossbar::bit(uint32_t row, uint32_t col) const
{
    if (storage_ == XbarStorage::Paged) {
        const uint32_t wIdx = row / 64;
        const uint64_t *blk = blockRO(col, wIdx / kBlockWords);
        return blk &&
               ((blk[wIdx % kBlockWords] >> (row % 64)) & 1);
    }
    return (colWords(col)[row / 64] >> (row % 64)) & 1;
}

void
Crossbar::setBit(uint32_t row, uint32_t col, bool v)
{
    const uint64_t bit = 1ull << (row % 64);
    if (storage_ == XbarStorage::Paged) {
        const uint32_t wIdx = row / 64;
        const uint32_t b = wIdx / kBlockWords;
        const uint32_t rel = wIdx % kBlockWords;
        if (v) {
            blockRW(col, b)[rel] |= bit;
        } else {
            uint64_t *blk = blockIfPresent(col, b);
            if (blk)
                blk[rel] &= ~bit;
        }
        return;
    }
    uint64_t *words = colWords(col);
    if (v)
        words[row / 64] |= bit;
    else
        words[row / 64] &= ~bit;
}

// --- snapshots, compaction, comparison ----------------------------------

Crossbar::Snapshot::Snapshot(const Snapshot &o)
    : geo_(o.geo_),
      wordsPerCol_(o.wordsPerCol_),
      blocksPerCol_(o.blocksPerCol_),
      pool_(o.pool_),
      table_(o.table_),
      dense_(o.dense_)
{
    if (pool_)
        for (const uint32_t id : table_)
            if (id != kAbsent)
                pool_->ref(id);
}

Crossbar::Snapshot &
Crossbar::Snapshot::operator=(const Snapshot &o)
{
    if (this != &o) {
        Snapshot tmp(o);
        *this = std::move(tmp);
    }
    return *this;
}

Crossbar::Snapshot::Snapshot(Snapshot &&o) noexcept
    : geo_(o.geo_),
      wordsPerCol_(o.wordsPerCol_),
      blocksPerCol_(o.blocksPerCol_),
      pool_(std::move(o.pool_)),
      table_(std::move(o.table_)),
      dense_(std::move(o.dense_))
{
    o.table_.clear();  // the destructor must not double-unref
    o.dense_.clear();
}

Crossbar::Snapshot &
Crossbar::Snapshot::operator=(Snapshot &&o) noexcept
{
    if (this != &o) {
        release();
        geo_ = o.geo_;
        wordsPerCol_ = o.wordsPerCol_;
        blocksPerCol_ = o.blocksPerCol_;
        pool_ = std::move(o.pool_);
        table_ = std::move(o.table_);
        dense_ = std::move(o.dense_);
        o.table_.clear();
        o.dense_.clear();
    }
    return *this;
}

Crossbar::Snapshot::~Snapshot() { release(); }

void
Crossbar::Snapshot::release()
{
    if (pool_)
        for (const uint32_t id : table_)
            if (id != kAbsent)
                pool_->unref(id);
    pool_.reset();
    table_.clear();
    dense_.clear();
}

const uint64_t *
Crossbar::Snapshot::blockRO(uint32_t col, uint32_t b) const
{
    if (!dense_.empty())
        return dense_.data() +
               static_cast<size_t>(col) * wordsPerCol_ +
               static_cast<size_t>(b) * kBlockWords;
    if (table_.empty())
        return nullptr;
    const uint32_t id =
        table_[static_cast<size_t>(col) * blocksPerCol_ + b];
    return id == kAbsent ? nullptr : pool_->words(id);
}

uint32_t
Crossbar::Snapshot::read(uint32_t slot, uint32_t row) const
{
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t wIdx = row / 64;
    const uint32_t b = wIdx / kBlockWords;
    const uint32_t rel = wIdx % kBlockWords;
    uint32_t value = 0;
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        const uint64_t *blk = blockRO(p * pw + slot, b);
        const uint32_t v =
            blk ? static_cast<uint32_t>((blk[rel] >> (row % 64)) & 1)
                : 0;
        value |= v << p;
    }
    return value;
}

bool
Crossbar::Snapshot::bit(uint32_t row, uint32_t col) const
{
    const uint32_t wIdx = row / 64;
    const uint64_t *blk = blockRO(col, wIdx / kBlockWords);
    return blk && ((blk[wIdx % kBlockWords] >> (row % 64)) & 1);
}

Crossbar::Snapshot
Crossbar::snapshot() const
{
    panicIf(busy_ && busy_->load(std::memory_order_acquire),
            "snapshot: pipeline replay in flight (snapshots are only "
            "valid at drain points)");
    Snapshot s;
    s.geo_ = geo_;
    s.wordsPerCol_ = wordsPerCol_;
    s.blocksPerCol_ = blocksPerCol_;
    if (storage_ == XbarStorage::Dense) {
        s.dense_ = state_;
        return s;
    }
    // O(live data): share every present block, bumping its refcount.
    // Subsequent mutation of the source clones exactly the blocks it
    // touches (blockRW/blockIfPresent check refCount > 1).
    s.pool_ = pool_;
    s.table_ = table_;
    if (pool_)
        for (const uint32_t id : s.table_)
            if (id != kAbsent)
                pool_->ref(id);
    return s;
}

void
Crossbar::restore(const Snapshot &s)
{
    panicIf(busy_ && busy_->load(std::memory_order_acquire),
            "restore: pipeline replay in flight (restores are only "
            "valid at drain points)");
    panicIf(s.wordsPerCol_ != wordsPerCol_ ||
                (s.geo_ && s.geo_->cols != geo_->cols),
            "restore: snapshot from a different geometry");
    if (storage_ == XbarStorage::Dense) {
        panicIf(s.dense_.empty() && !s.table_.empty(),
                "restore: paged snapshot into a dense crossbar");
        if (s.dense_.empty())
            std::fill(state_.begin(), state_.end(), 0);
        else
            state_ = s.dense_;
        return;
    }
    panicIf(!s.dense_.empty(),
            "restore: dense snapshot into a paged crossbar");
    panicIf(s.pool_ && pool_ && s.pool_ != pool_,
            "restore: snapshot was taken from a different crossbar");
    // Re-adopt the snapshot's shared blocks: ref the incoming set
    // first so self-restore never transiently frees a block.
    if (s.pool_)
        for (const uint32_t id : s.table_)
            if (id != kAbsent)
                s.pool_->ref(id);
    if (pool_)
        for (const uint32_t id : table_)
            if (id != kAbsent)
                pool_->unref(id);
    table_ = s.table_;
    if (!pool_)
        pool_ = s.pool_;
}

uint64_t
Crossbar::compact()
{
    if (storage_ == XbarStorage::Dense || table_.empty())
        return 0;
    uint64_t elided = 0;
    for (uint32_t col = 0; col < geo_->cols; ++col) {
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            uint32_t &id = table_[tableIndex(col, b)];
            if (id == kAbsent)
                continue;
            if (allZero(pool_->words(id), blockWords(b))) {
                pool_->unref(id);
                id = kAbsent;
                ++elided;
            }
        }
    }
    return elided;
}

void
Crossbar::forEachNonZeroBlock(
    const std::function<void(uint32_t col, uint32_t b,
                             const uint64_t *w, uint32_t n)> &fn) const
{
    for (uint32_t col = 0; col < geo_->cols; ++col) {
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            const uint64_t *w = storage_ == XbarStorage::Dense
                ? colWords(col) + b * kBlockWords
                : blockRO(col, b);
            if (!w)
                continue;
            const uint32_t used = blockWords(b);
            if (allZero(w, used))
                continue;
            fn(col, b, w, used);
        }
    }
}

void
Crossbar::Snapshot::forEachNonZeroBlock(
    const std::function<void(uint32_t col, uint32_t b,
                             const uint64_t *w, uint32_t n)> &fn) const
{
    for (uint32_t col = 0; col < (geo_ ? geo_->cols : 0); ++col) {
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            const uint64_t *w = blockRO(col, b);
            if (!w)
                continue;
            const uint32_t base = b * kBlockWords;
            const uint32_t used = wordsPerCol_ - base < kBlockWords
                ? wordsPerCol_ - base
                : kBlockWords;
            if (allZero(w, used))
                continue;
            fn(col, b, w, used);
        }
    }
}

uint64_t
Crossbar::stateChecksum() const
{
    // FNV-1a over (col, block, words): position-sensitive so a block
    // moving columns changes the digest, and canonical-walk-based so
    // dense and paged in equal state digest equal.
    uint64_t h = 0xCBF29CE484222325ull;
    const auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001B3ull;
        }
    };
    forEachNonZeroBlock(
        [&](uint32_t col, uint32_t b, const uint64_t *w, uint32_t n) {
            mix((static_cast<uint64_t>(col) << 32) | b);
            for (uint32_t i = 0; i < n; ++i)
                mix(w[i]);
        });
    return h;
}

void
Crossbar::resetState()
{
    if (storage_ == XbarStorage::Dense) {
        std::fill(state_.begin(), state_.end(), 0);
        return;
    }
    for (uint32_t &id : table_) {
        if (id != kAbsent) {
            pool_->unref(id);
            id = kAbsent;
        }
    }
}

void
Crossbar::loadBlock(uint32_t col, uint32_t b, const uint64_t *w,
                    uint32_t n)
{
    panicIf(col >= geo_->cols || b >= blocksPerCol_ ||
                n > blockWords(b),
            "loadBlock: record outside this crossbar's geometry");
    if (allZero(w, n))
        return;  // canonical images never carry these anyway
    if (storage_ == XbarStorage::Dense) {
        uint64_t *dst = colWords(col) + b * kBlockWords;
        std::copy(w, w + n, dst);
        return;
    }
    uint64_t *dst = blockRW(col, b);
    std::copy(w, w + n, dst);
    // A short tail record leaves the block's trailing words whatever
    // blockRW materialised; alloc() zeroes fresh blocks, and restore
    // resets state first, so the tail is zero either way.
}

StorageGauges
Crossbar::storageGauges() const
{
    StorageGauges g;
    const uint64_t total =
        static_cast<uint64_t>(geo_->cols) * blocksPerCol_;
    g.blocksTotal = total;
    if (storage_ == XbarStorage::Dense) {
        // The flat slab materialises everything.
        g.blocksPresent = total;
        g.residentBytes = state_.capacity() * sizeof(uint64_t);
        return g;
    }
    for (const uint32_t id : table_) {
        if (id == kAbsent)
            continue;
        ++g.blocksPresent;
        if (pool_->refCount(id) > 1)
            ++g.cowShared;
    }
    g.blocksElided = total - g.blocksPresent;
    g.residentBytes = table_.capacity() * sizeof(uint32_t) +
                      (pool_ ? pool_->residentBytes() : 0);
    return g;
}

bool
Crossbar::sameState(const Crossbar &other) const
{
    if (storage_ == XbarStorage::Dense &&
        other.storage_ == XbarStorage::Dense)
        return state_ == other.state_;
    // Canonical per-block walk: an absent block equals an all-zero
    // materialised one, so dense-vs-paged comparison is direct and
    // paged-vs-paged touches only present blocks.
    for (uint32_t col = 0; col < geo_->cols; ++col) {
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            const uint64_t *a = storage_ == XbarStorage::Dense
                ? colWords(col) + b * kBlockWords
                : blockRO(col, b);
            const uint64_t *bw =
                other.storage_ == XbarStorage::Dense
                    ? other.colWords(col) + b * kBlockWords
                    : other.blockRO(col, b);
            if (a == bw)
                continue;  // shared block (or both absent)
            const uint32_t used = blockWords(b);
            if (!a) {
                if (!allZero(bw, used))
                    return false;
            } else if (!bw) {
                if (!allZero(a, used))
                    return false;
            } else if (!std::equal(a, a + used, bw)) {
                return false;
            }
        }
    }
    return true;
}

bool
Crossbar::sameState(const Snapshot &s) const
{
    for (uint32_t col = 0; col < geo_->cols; ++col) {
        for (uint32_t b = 0; b < blocksPerCol_; ++b) {
            const uint64_t *a = storage_ == XbarStorage::Dense
                ? colWords(col) + b * kBlockWords
                : blockRO(col, b);
            const uint64_t *bw = s.blockRO(col, b);
            if (a == bw)
                continue;
            const uint32_t used = blockWords(b);
            if (!a) {
                if (!allZero(bw, used))
                    return false;
            } else if (!bw) {
                if (!allZero(a, used))
                    return false;
            } else if (!std::equal(a, a + used, bw)) {
                return false;
            }
        }
    }
    return true;
}

} // namespace pypim
