#include "sim/crossbar.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/segment_trace.hpp"

namespace pypim
{

Crossbar::Crossbar(const Geometry &geo)
    : geo_(&geo),
      wordsPerCol_((geo.rows + 63) / 64),
      state_(static_cast<size_t>(geo.cols) * wordsPerCol_, 0)
{
}

void
Crossbar::logicH(const HalfGates &hg, std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "logicH: row mask width mismatch");
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        uint64_t *out = colWords(static_cast<uint32_t>(sec.outCol));
        switch (hg.gate) {
          case Gate::Init0:
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] &= ~rowMask[w];
            break;
          case Gate::Init1:
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] |= rowMask[w];
            break;
          case Gate::Not:
          case Gate::Nor: {
            const uint64_t *inA =
                colWords(static_cast<uint32_t>(sec.inCol[0]));
            const uint64_t *inB = sec.numIn == 2
                ? colWords(static_cast<uint32_t>(sec.inCol[1]))
                : inA;
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                out[w] &= ~((inA[w] | inB[w]) & rowMask[w]);
            break;
          }
        }
    }
}

void
Crossbar::logicHFusedInit1(const HalfGates &hg,
                           std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "logicH: row mask width mismatch");
    for (uint32_t s = 0; s < hg.numSections; ++s) {
        const Section &sec = hg.sections[s];
        if (!sec.active())
            continue;
        uint64_t *out = colWords(static_cast<uint32_t>(sec.outCol));
        const uint64_t *inA =
            colWords(static_cast<uint32_t>(sec.inCol[0]));
        const uint64_t *inB = sec.numIn == 2
            ? colWords(static_cast<uint32_t>(sec.inCol[1]))
            : inA;
        for (uint32_t w = 0; w < wordsPerCol_; ++w)
            out[w] = (out[w] & ~rowMask[w]) |
                     (~(inA[w] | inB[w]) & rowMask[w]);
    }
}

void
Crossbar::logicV(Gate g, uint32_t rowIn, uint32_t rowOut, uint32_t slot)
{
    // All loop-invariants hoisted: word indices, bit masks and the
    // gate dispatch are identical for every partition.
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t numPart = geo_->partitions;
    const uint32_t outWord = rowOut / 64;
    const uint64_t outBit = 1ull << (rowOut % 64);
    switch (g) {
      case Gate::Init0:
        for (uint32_t p = 0; p < numPart; ++p)
            colWords(p * pw + slot)[outWord] &= ~outBit;
        break;
      case Gate::Init1:
        for (uint32_t p = 0; p < numPart; ++p)
            colWords(p * pw + slot)[outWord] |= outBit;
        break;
      case Gate::Not: {
        const uint32_t inWord = rowIn / 64;
        const uint32_t inShift = rowIn % 64;
        for (uint32_t p = 0; p < numPart; ++p) {
            uint64_t *words = colWords(p * pw + slot);
            if ((words[inWord] >> inShift) & 1)
                words[outWord] &= ~outBit;
        }
        break;
      }
      case Gate::Nor:
        panic("logicV: NOR is not supported vertically");
    }
}

void
Crossbar::replaySegment(const SegmentTrace &trace, uint32_t self,
                        Stats *work)
{
    const size_t n = trace.ops.size();
    for (size_t i = 0; i < n;) {
        const TraceOp &op = trace.ops[i];
        if (op.type == OpType::LogicV) {
            // Runs of consecutive LogicV ops on the same
            // intra-partition index address the same partition
            // columns; replay the whole run column-major in one pass.
            size_t j = i + 1;
            while (j < n && trace.ops[j].type == OpType::LogicV &&
                   trace.ops[j].index == op.index)
                ++j;
            replayLogicVRun(trace.ops.data() + i, j - i, self, work);
            i = j;
            continue;
        }
        ++i;
        if (!op.xb.contains(self))
            continue;
        switch (op.type) {
          case OpType::Write:
            write(op.index, op.value, trace.rowMask(op.rowMask));
            if (work)
                work->record(OpClass::Write);
            break;
          case OpType::LogicH: {
            const HalfGates &hg = trace.halfGates[op.hg];
            const auto rm = trace.rowMask(op.rowMask);
            if (op.fusedInit) {
                logicHFusedInit1(hg, rm);
                // Two architectural ops applied in one pass.
                if (work) {
                    work->record(OpClass::LogicH);
                    work->record(OpClass::LogicH);
                }
            } else {
                logicH(hg, rm);
                if (work)
                    work->record(OpClass::LogicH);
            }
            break;
          }
          default:
            break;  // unreachable: the builder emits work ops only
        }
    }
}

void
Crossbar::replayLogicVRun(const TraceOp *run, size_t n, uint32_t self,
                          Stats *work)
{
    // A LogicV op addresses two single rows of one column per
    // partition, so op-major replay touches every partition column
    // for two bits per op. Interchanging the loops applies the whole
    // run to one column while its words stay hot. The run is
    // processed in fixed-size chunks of decoded gate descriptors so
    // no scratch allocation is needed; chunk order preserves stream
    // order within each column, and columns are independent.
    struct VGate
    {
        Gate gate;
        uint32_t inWord, inShift;
        uint32_t outWord;
        uint64_t outBit;
    };
    constexpr size_t kChunk = 64;
    VGate gates[kChunk];
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t numPart = geo_->partitions;
    const uint32_t slot = run[0].index;

    size_t i = 0;
    while (i < n) {
        size_t m = 0;
        for (; i < n && m < kChunk; ++i) {
            const TraceOp &op = run[i];
            if (!op.xb.contains(self))
                continue;
            gates[m].gate = op.gate;
            gates[m].inWord = op.rowIn / 64;
            gates[m].inShift = op.rowIn % 64;
            gates[m].outWord = op.rowOut / 64;
            gates[m].outBit = 1ull << (op.rowOut % 64);
            ++m;
            if (work)
                work->record(OpClass::LogicV);
        }
        if (m == 0)
            continue;
        for (uint32_t p = 0; p < numPart; ++p) {
            uint64_t *words = colWords(p * pw + slot);
            for (size_t k = 0; k < m; ++k) {
                const VGate &g = gates[k];
                switch (g.gate) {
                  case Gate::Init0:
                    words[g.outWord] &= ~g.outBit;
                    break;
                  case Gate::Init1:
                    words[g.outWord] |= g.outBit;
                    break;
                  case Gate::Not:
                    if ((words[g.inWord] >> g.inShift) & 1)
                        words[g.outWord] &= ~g.outBit;
                    break;
                  case Gate::Nor:
                    break;  // unreachable: rejected at emission
                }
            }
        }
    }
}

void
Crossbar::write(uint32_t slot, uint32_t value,
                std::span<const uint64_t> rowMask)
{
    panicIf(rowMask.size() != wordsPerCol_,
            "write: row mask width mismatch");
    const uint32_t pw = geo_->partitionWidth();
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        uint64_t *words = colWords(p * pw + slot);
        if ((value >> p) & 1) {
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                words[w] |= rowMask[w];
        } else {
            for (uint32_t w = 0; w < wordsPerCol_; ++w)
                words[w] &= ~rowMask[w];
        }
    }
}

uint32_t
Crossbar::read(uint32_t slot, uint32_t row) const
{
    const uint32_t pw = geo_->partitionWidth();
    uint32_t value = 0;
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        const uint64_t *words = colWords(p * pw + slot);
        const uint32_t b =
            static_cast<uint32_t>((words[row / 64] >> (row % 64)) & 1);
        value |= b << p;
    }
    return value;
}

void
Crossbar::writeRow(uint32_t slot, uint32_t value, uint32_t row)
{
    const uint32_t pw = geo_->partitionWidth();
    const uint64_t bit = 1ull << (row % 64);
    for (uint32_t p = 0; p < geo_->wordBits; ++p) {
        uint64_t *words = colWords(p * pw + slot);
        if ((value >> p) & 1)
            words[row / 64] |= bit;
        else
            words[row / 64] &= ~bit;
    }
}

bool
Crossbar::bit(uint32_t row, uint32_t col) const
{
    return (colWords(col)[row / 64] >> (row % 64)) & 1;
}

void
Crossbar::setBit(uint32_t row, uint32_t col, bool v)
{
    uint64_t *words = colWords(col);
    if (v)
        words[row / 64] |= 1ull << (row % 64);
    else
        words[row / 64] &= ~(1ull << (row % 64));
}

} // namespace pypim
