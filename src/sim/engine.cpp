#include "sim/engine.hpp"

#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/serial_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/trace_engine.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

void
ExecutionEngine::serialPerform(const MicroOp &op)
{
    switch (op.type) {
      case OpType::CrossbarMask:
        doCrossbarMask(op);
        break;
      case OpType::RowMask:
        doRowMask(op);
        break;
      case OpType::Read:
        // A read issued through the data-less path: execute it for its
        // cycle cost and drop the response.
        executeRead(op);
        return;
      case OpType::Write:
        doWrite(op);
        break;
      case OpType::LogicH:
        doLogicH(op);
        break;
      case OpType::LogicV:
        doLogicV(op);
        break;
      case OpType::Move:
        doMove(op);
        break;
    }
}

void
ExecutionEngine::doCrossbarMask(const MicroOp &op)
{
    op.range.validate(geo_.numCrossbars, "crossbar");
    mask_.xb = op.range;
    stats_.record(OpClass::CrossbarMask);
}

void
ExecutionEngine::doRowMask(const MicroOp &op)
{
    op.range.validate(geo_.rows, "row");
    mask_.setRow(op.range, geo_.rows);
    stats_.record(OpClass::RowMask);
}

void
validateRead(const MicroOp &op, const Range &xb, const Range &row,
             const Geometry &geo)
{
    panicIf(op.type != OpType::Read, "read: wrong op type");
    fatalIf(op.index >= geo.slots(), "read: slot index out of range");
    fatalIf(xb.count() != 1,
            "read: crossbar mask must select exactly one crossbar "
            "(paper III-C), selects " + std::to_string(xb.count()));
    fatalIf(row.count() != 1,
            "read: row mask must select exactly one row (paper III-C), "
            "selects " + std::to_string(row.count()));
}

int64_t
validateMove(const MicroOp &op, const Range &xb, const Geometry &geo)
{
    fatalIf(!isPow4(xb.step),
            "move: crossbar mask step must be a power of four "
            "(paper III-F)");
    fatalIf(op.srcIdx >= geo.slots() || op.dstIdx >= geo.slots(),
            "move: slot index out of range");
    fatalIf(op.srcRow >= geo.rows || op.dstRow >= geo.rows,
            "move: row out of range");
    const int64_t dist = static_cast<int64_t>(op.dstStart) -
                         static_cast<int64_t>(xb.start);
    // The destination set is the source Range shifted by dist, so the
    // endpoints bound every element.
    const int64_t lastDst = static_cast<int64_t>(xb.stop) + dist;
    fatalIf(lastDst < 0 || lastDst >= geo.numCrossbars,
            "move: destination crossbar out of range");
    return dist;
}

uint32_t
ExecutionEngine::executeRead(const MicroOp &op)
{
    validateRead(op, mask_.xb, mask_.row, geo_);
    stats_.record(OpClass::Read);
    // A sub-device engine validates and counts reads outside its
    // slice (keeping the architectural stats replicated across
    // sub-devices) but has no data for them; the device group routes
    // the response from the owning sub-device.
    if (!owns(mask_.xb.start))
        return 0;
    return xbAt(mask_.xb.start).read(op.index, mask_.row.start);
}

uint64_t
ExecutionEngine::executeReadBulk(const BulkIoSpec &spec, uint32_t *out)
{
    fatalIf(spec.slot >= geo_.slots(),
            "bulk read: slot index out of range");
    uint64_t transposed = 0;
    uint64_t i = 0;
    while (i < spec.count) {
        const uint64_t s = spec.rowStart + i * spec.rowStep;
        const uint32_t g =
            spec.warpStart + static_cast<uint32_t>(s / geo_.rows);
        const uint32_t r0 = static_cast<uint32_t>(s % geo_.rows);
        const uint64_t k = std::min<uint64_t>(
            spec.count - i,
            (geo_.rows - r0 + spec.rowStep - 1) / spec.rowStep);
        fatalIf(g >= geo_.numCrossbars,
                "bulk read: crossbar out of range");
        if (owns(g)) {
            Crossbar &xb = xbAt(g);
            if (spec.rowStep == 1) {
                transposed += xb.gatherRows(
                    spec.slot, r0, static_cast<uint32_t>(k), out + i);
            } else {
                for (uint64_t e = 0; e < k; ++e)
                    out[i + e] = xb.read(
                        spec.slot,
                        r0 + static_cast<uint32_t>(e * spec.rowStep));
            }
        }
        i += k;
    }
    return transposed;
}

uint64_t
ExecutionEngine::applyWriteBulk(const BulkIoSpec &spec,
                                const uint32_t *values)
{
    fatalIf(spec.slot >= geo_.slots(),
            "bulk write: slot index out of range");
    uint64_t transposed = 0;
    uint64_t i = 0;
    while (i < spec.count) {
        const uint64_t s = spec.rowStart + i * spec.rowStep;
        const uint32_t g =
            spec.warpStart + static_cast<uint32_t>(s / geo_.rows);
        const uint32_t r0 = static_cast<uint32_t>(s % geo_.rows);
        const uint64_t k = std::min<uint64_t>(
            spec.count - i,
            (geo_.rows - r0 + spec.rowStep - 1) / spec.rowStep);
        fatalIf(g >= geo_.numCrossbars,
                "bulk write: crossbar out of range");
        if (owns(g)) {
            Crossbar &xb = xbAt(g);
            if (spec.rowStep == 1) {
                transposed += xb.scatterRows(
                    spec.slot, r0, static_cast<uint32_t>(k),
                    values + i);
            } else {
                for (uint64_t e = 0; e < k; ++e)
                    xb.writeRow(
                        spec.slot, values[i + e],
                        r0 + static_cast<uint32_t>(e * spec.rowStep));
            }
        }
        i += k;
    }
    return transposed;
}

void
ExecutionEngine::replayTrace(const SegmentTrace &trace)
{
    const uint32_t lo = std::max(trace.xbLo, sliceLo());
    const uint32_t hi = std::min(trace.xbHi, sliceHi());
    for (uint32_t xb = lo; xb < hi; ++xb)
        xbAt(xb).replaySegment(trace, xb, nullptr);
}

void
ExecutionEngine::replayProgram(const ReplayProgram &prog)
{
    const uint32_t lo = std::max(prog.xbLo, sliceLo());
    const uint32_t hi = std::min(prog.xbHi, sliceHi());
    for (uint32_t xb = lo; xb < hi; ++xb)
        xbAt(xb).replayProgram(prog, xb, nullptr);
}

void
ExecutionEngine::replayBatch(const BatchTrace &batch)
{
    for (const BatchTrace::Item &item : batch.items) {
        if (item.kind == BatchTrace::Item::Kind::Segment) {
            if (const ReplayProgram *p = batch.program(item.seg))
                replayProgram(*p);
            else
                replayTrace(batch.segments[item.seg]);
        } else {
            applyMove(item.op, item.xb);
        }
    }
}

void
ExecutionEngine::doWrite(const MicroOp &op)
{
    fatalIf(op.index >= geo_.slots(), "write: slot index out of range");
    forEachOwned(mask_.xb, [&](uint32_t xb) {
        xbAt(xb).write(op.index, op.value, mask_.rowWords);
    });
    stats_.record(OpClass::Write);
}

void
ExecutionEngine::doLogicH(const MicroOp &op)
{
    const HalfGates hg = expandLogicH(op, geo_);
    forEachOwned(mask_.xb, [&](uint32_t xb) {
        xbAt(xb).logicH(hg, mask_.rowWords);
    });
    stats_.record(OpClass::LogicH);
    if (op.gate == Gate::Nor || op.gate == Gate::Not)
        ++stats_.logicGates;
    else
        ++stats_.logicInits;
}

void
ExecutionEngine::doLogicV(const MicroOp &op)
{
    fatalIf(op.index >= geo_.slots(), "logicV: slot index out of range");
    fatalIf(op.rowIn >= geo_.rows || op.rowOut >= geo_.rows,
            "logicV: row out of range");
    forEachOwned(mask_.xb, [&](uint32_t xb) {
        xbAt(xb).logicV(op.gate, op.rowIn, op.rowOut, op.index);
    });
    stats_.record(OpClass::LogicV);
    if (op.gate == Gate::Not)
        ++stats_.logicGates;
    else
        ++stats_.logicInits;
}

void
ExecutionEngine::doMove(const MicroOp &op)
{
    const int64_t dist = validateMove(op, mask_.xb, geo_);
    applyMove(op, mask_.xb);
    stats_.record(OpClass::Move, htree_.moveCycles(mask_.xb, dist));
}

void
ExecutionEngine::applyMove(const MicroOp &op, const Range &xb)
{
    const int64_t dist = static_cast<int64_t>(op.dstStart) -
                         static_cast<int64_t>(xb.start);
    // Read-all-then-write-all semantics: overlapping source and
    // destination sets (shift chains) behave as a parallel transfer.
    // A sub-device engine applies only the transfers with BOTH
    // endpoints in its slice; boundary-crossing transfers are the
    // device group's explicit exchange step (sim/device_group.hpp),
    // which stages its reads before this runs and lands its writes
    // after. The staging buffers are reused members: clear() keeps
    // capacity, so steady-state moves never allocate.
    moveValues_.clear();
    moveDsts_.clear();
    forEachOwned(xb, [&](uint32_t src) {
        const int64_t dst = static_cast<int64_t>(src) + dist;
        if (dst < sliceLo() || dst >= sliceHi())
            return;
        moveValues_.push_back(xbAt(src).read(op.srcIdx, op.srcRow));
        moveDsts_.push_back(static_cast<uint32_t>(dst));
    });
    for (size_t i = 0; i < moveDsts_.size(); ++i)
        xbAt(moveDsts_[i]).writeRow(op.dstIdx, moveValues_[i],
                                    op.dstRow);
}

std::unique_ptr<ExecutionEngine>
makeEngine(const EngineConfig &cfg, const Geometry &geo,
           std::vector<Crossbar> &xbs, uint32_t xbBase,
           const HTree &htree, MaskState &mask, Stats &stats)
{
    switch (cfg.kind) {
      case EngineKind::Sharded:
        return std::make_unique<ShardedEngine>(
            geo, xbs, xbBase, htree, mask, stats,
            cfg.resolvedThreads(), cfg.affinity);
      case EngineKind::Trace:
        return std::make_unique<TraceEngine>(geo, xbs, xbBase, htree,
                                             mask, stats);
      case EngineKind::Serial:
      default:
        return std::make_unique<SerialEngine>(geo, xbs, xbBase, htree,
                                              mask, stats);
    }
}

} // namespace pypim
