#include "sim/engine.hpp"

#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/serial_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/trace_engine.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

void
ExecutionEngine::serialPerform(const MicroOp &op)
{
    switch (op.type) {
      case OpType::CrossbarMask:
        doCrossbarMask(op);
        break;
      case OpType::RowMask:
        doRowMask(op);
        break;
      case OpType::Read:
        // A read issued through the data-less path: execute it for its
        // cycle cost and drop the response.
        executeRead(op);
        return;
      case OpType::Write:
        doWrite(op);
        break;
      case OpType::LogicH:
        doLogicH(op);
        break;
      case OpType::LogicV:
        doLogicV(op);
        break;
      case OpType::Move:
        doMove(op);
        break;
    }
}

void
ExecutionEngine::doCrossbarMask(const MicroOp &op)
{
    op.range.validate(geo_.numCrossbars, "crossbar");
    mask_.xb = op.range;
    stats_.record(OpClass::CrossbarMask);
}

void
ExecutionEngine::doRowMask(const MicroOp &op)
{
    op.range.validate(geo_.rows, "row");
    mask_.setRow(op.range, geo_.rows);
    stats_.record(OpClass::RowMask);
}

void
validateRead(const MicroOp &op, const Range &xb, const Range &row,
             const Geometry &geo)
{
    panicIf(op.type != OpType::Read, "read: wrong op type");
    fatalIf(op.index >= geo.slots(), "read: slot index out of range");
    fatalIf(xb.count() != 1,
            "read: crossbar mask must select exactly one crossbar "
            "(paper III-C), selects " + std::to_string(xb.count()));
    fatalIf(row.count() != 1,
            "read: row mask must select exactly one row (paper III-C), "
            "selects " + std::to_string(row.count()));
}

int64_t
validateMove(const MicroOp &op, const Range &xb, const Geometry &geo)
{
    fatalIf(!isPow4(xb.step),
            "move: crossbar mask step must be a power of four "
            "(paper III-F)");
    fatalIf(op.srcIdx >= geo.slots() || op.dstIdx >= geo.slots(),
            "move: slot index out of range");
    fatalIf(op.srcRow >= geo.rows || op.dstRow >= geo.rows,
            "move: row out of range");
    const int64_t dist = static_cast<int64_t>(op.dstStart) -
                         static_cast<int64_t>(xb.start);
    // The destination set is the source Range shifted by dist, so the
    // endpoints bound every element.
    const int64_t lastDst = static_cast<int64_t>(xb.stop) + dist;
    fatalIf(lastDst < 0 || lastDst >= geo.numCrossbars,
            "move: destination crossbar out of range");
    return dist;
}

uint32_t
ExecutionEngine::executeRead(const MicroOp &op)
{
    validateRead(op, mask_.xb, mask_.row, geo_);
    stats_.record(OpClass::Read);
    return xbs_[mask_.xb.start].read(op.index, mask_.row.start);
}

void
ExecutionEngine::replayTrace(const SegmentTrace &trace)
{
    for (uint32_t xb = trace.xbLo; xb < trace.xbHi; ++xb)
        xbs_[xb].replaySegment(trace, xb, nullptr);
}

void
ExecutionEngine::replayBatch(const BatchTrace &batch)
{
    for (const BatchTrace::Item &item : batch.items) {
        if (item.kind == BatchTrace::Item::Kind::Segment)
            replayTrace(batch.segments[item.seg]);
        else
            applyMove(item.op, item.xb);
    }
}

void
ExecutionEngine::doWrite(const MicroOp &op)
{
    fatalIf(op.index >= geo_.slots(), "write: slot index out of range");
    mask_.xb.forEach([&](uint32_t xb) {
        xbs_[xb].write(op.index, op.value, mask_.rowWords);
    });
    stats_.record(OpClass::Write);
}

void
ExecutionEngine::doLogicH(const MicroOp &op)
{
    const HalfGates hg = expandLogicH(op, geo_);
    mask_.xb.forEach([&](uint32_t xb) {
        xbs_[xb].logicH(hg, mask_.rowWords);
    });
    stats_.record(OpClass::LogicH);
    if (op.gate == Gate::Nor || op.gate == Gate::Not)
        ++stats_.logicGates;
    else
        ++stats_.logicInits;
}

void
ExecutionEngine::doLogicV(const MicroOp &op)
{
    fatalIf(op.index >= geo_.slots(), "logicV: slot index out of range");
    fatalIf(op.rowIn >= geo_.rows || op.rowOut >= geo_.rows,
            "logicV: row out of range");
    mask_.xb.forEach([&](uint32_t xb) {
        xbs_[xb].logicV(op.gate, op.rowIn, op.rowOut, op.index);
    });
    stats_.record(OpClass::LogicV);
    if (op.gate == Gate::Not)
        ++stats_.logicGates;
    else
        ++stats_.logicInits;
}

void
ExecutionEngine::doMove(const MicroOp &op)
{
    const int64_t dist = validateMove(op, mask_.xb, geo_);
    applyMove(op, mask_.xb);
    stats_.record(OpClass::Move, htree_.moveCycles(mask_.xb, dist));
}

void
ExecutionEngine::applyMove(const MicroOp &op, const Range &xb)
{
    const int64_t dist = static_cast<int64_t>(op.dstStart) -
                         static_cast<int64_t>(xb.start);
    // Read-all-then-write-all semantics: overlapping source and
    // destination sets (shift chains) behave as a parallel transfer.
    // The staging buffer is a reused member: clear() keeps capacity,
    // so steady-state moves never allocate.
    moveValues_.clear();
    moveValues_.reserve(xb.count());
    xb.forEach([&](uint32_t src) {
        moveValues_.push_back(xbs_[src].read(op.srcIdx, op.srcRow));
    });
    size_t i = 0;
    xb.forEach([&](uint32_t src) {
        const uint32_t dst = static_cast<uint32_t>(src + dist);
        xbs_[dst].writeRow(op.dstIdx, moveValues_[i++], op.dstRow);
    });
}

std::unique_ptr<ExecutionEngine>
makeEngine(const EngineConfig &cfg, const Geometry &geo,
           std::vector<Crossbar> &xbs, const HTree &htree,
           MaskState &mask, Stats &stats)
{
    switch (cfg.kind) {
      case EngineKind::Sharded:
        return std::make_unique<ShardedEngine>(geo, xbs, htree, mask,
                                               stats,
                                               cfg.resolvedThreads());
      case EngineKind::Trace:
        return std::make_unique<TraceEngine>(geo, xbs, htree, mask,
                                             stats);
      case EngineKind::Serial:
      default:
        return std::make_unique<SerialEngine>(geo, xbs, htree, mask,
                                              stats);
    }
}

} // namespace pypim
