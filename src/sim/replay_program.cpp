#include "sim/replay_program.hpp"

#include <algorithm>

#include "sim/batch_trace.hpp"
#include "sim/segment_trace.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

namespace
{

/** Sections per merged pass: bounds the pass-local footprint so an
 *  executor (host or device) can stage a pass in fixed storage. */
constexpr uint32_t kMaxPassSections = 256;

/** Small column bitset (cols <= 1024 by the micro-op format). */
struct ColSet
{
    uint64_t w[1024 / 64] = {};

    void
    clear(uint32_t words)
    {
        std::fill(w, w + words, 0);
    }
    void set(uint32_t c) { w[c / 64] |= 1ull << (c % 64); }
    bool
    intersects(const ColSet &o, uint32_t words) const
    {
        for (uint32_t i = 0; i < words; ++i)
            if (w[i] & o.w[i])
                return true;
        return false;
    }
    void
    merge(const ColSet &o, uint32_t words)
    {
        for (uint32_t i = 0; i < words; ++i)
            w[i] |= o.w[i];
    }
};

ReplayProgram::SecKind
sectionKind(const HalfGates &hg, bool fusedInit)
{
    if (fusedInit)
        return ReplayProgram::SecKind::FusedNotNor;
    switch (hg.gate) {
      case Gate::Init0: return ReplayProgram::SecKind::Init0;
      case Gate::Init1: return ReplayProgram::SecKind::Init1;
      default:          return ReplayProgram::SecKind::NotNor;
    }
}

} // namespace

void
compileSegmentProgram(const SegmentTrace &t, const Geometry &geo,
                      ReplayProgram &p)
{
    p.instrs.clear();
    p.sections.clear();
    p.pairs.clear();
    p.vgates.clear();
    p.wordsPerMask = t.wordsPerMask;
    p.xbLo = t.xbLo;
    p.xbHi = t.xbHi;
    // Snapshot ids become direct word offsets into the program's own
    // arena: id k lives at k * wordsPerMask, resolved once here.
    p.maskWords = t.rowWords;

    const uint32_t colWords = (geo.cols + 63) / 64;
    // Column footprint of the OPEN pass: merging keeps every merged
    // op's reads and writes pairwise disjoint from the others', so
    // the pass's sections are order-independent (see header).
    ColSet passOuts, passIns;
    int64_t open = -1;  //!< index of the growing HPass, or -1

    for (const TraceOp &op : t.ops) {
        switch (op.type) {
          case OpType::Write: {
            open = -1;
            ReplayProgram::Instr in;
            in.kind = ReplayProgram::Kind::WStripe;
            in.cls = OpClass::Write;
            in.maskOff = op.rowMask * t.wordsPerMask;
            in.maskFull = t.rowMaskFull[op.rowMask];
            in.off = static_cast<uint32_t>(p.pairs.size());
            in.count = op.wn;
            in.work = op.wn;
            in.xb = op.xb;
            if (op.wn > 1)
                p.pairs.insert(p.pairs.end(),
                               t.writePairs.begin() + op.wrun,
                               t.writePairs.begin() + op.wrun + op.wn);
            else
                p.pairs.push_back({op.index, op.value});
            p.instrs.push_back(in);
            break;
          }
          case OpType::LogicH: {
            const HalfGates &hg = t.halfGates[op.hg];
            const ReplayProgram::SecKind kind =
                sectionKind(hg, op.fusedInit);
            // Candidate footprint. A stateful gate also READS its
            // output (out_new = out_old & ...), but only its OWN —
            // covered by keeping candidate outs disjoint from
            // everything already in the pass.
            ColSet candOuts, candIns;
            candOuts.clear(colWords);
            candIns.clear(colWords);
            uint32_t nActive = 0;
            for (uint32_t s = 0; s < hg.numSections; ++s) {
                const Section &sec = hg.sections[s];
                if (!sec.active())
                    continue;
                ++nActive;
                candOuts.set(static_cast<uint32_t>(sec.outCol));
                for (uint32_t k = 0; k < sec.numIn; ++k)
                    candIns.set(static_cast<uint32_t>(sec.inCol[k]));
            }
            const uint32_t maskOff = op.rowMask * t.wordsPerMask;
            bool merged = false;
            if (open >= 0) {
                ReplayProgram::Instr &pass = p.instrs[open];
                merged = pass.maskOff == maskOff && pass.xb == op.xb &&
                         pass.count + nActive <= kMaxPassSections &&
                         !candIns.intersects(passOuts, colWords) &&
                         !candOuts.intersects(passOuts, colWords) &&
                         !candOuts.intersects(passIns, colWords);
            }
            if (!merged) {
                ReplayProgram::Instr in;
                in.kind = ReplayProgram::Kind::HPass;
                in.cls = OpClass::LogicH;
                in.maskOff = maskOff;
                in.maskFull = t.rowMaskFull[op.rowMask];
                in.off = static_cast<uint32_t>(p.sections.size());
                in.passKind = static_cast<uint8_t>(kind);
                in.xb = op.xb;
                p.instrs.push_back(in);
                open = static_cast<int64_t>(p.instrs.size()) - 1;
                passOuts.clear(colWords);
                passIns.clear(colWords);
            }
            ReplayProgram::Instr &pass = p.instrs[open];
            if (pass.passKind != static_cast<uint8_t>(kind))
                pass.passKind = ReplayProgram::kMixedPass;
            for (uint32_t s = 0; s < hg.numSections; ++s) {
                const Section &sec = hg.sections[s];
                if (!sec.active())
                    continue;
                ReplayProgram::PSection ps;
                ps.kind = kind;
                ps.outCol =
                    static_cast<uint16_t>(sec.outCol);
                ps.inA = static_cast<uint16_t>(
                    sec.numIn >= 1 ? sec.inCol[0] : sec.outCol);
                ps.inB = static_cast<uint16_t>(
                    sec.numIn == 2 ? sec.inCol[1] : ps.inA);
                p.sections.push_back(ps);
                ++pass.count;
            }
            pass.work += op.fusedInit ? 2 : 1;
            passOuts.merge(candOuts, colWords);
            passIns.merge(candIns, colWords);
            break;
          }
          case OpType::LogicV: {
            open = -1;
            ReplayProgram::VGate g;
            g.gate = op.gate;
            g.inWord = op.rowIn / 64;
            g.inShift = op.rowIn % 64;
            g.outWord = op.rowOut / 64;
            g.outBit = 1ull << (op.rowOut % 64);
            // Extend the trailing run when slot and crossbar range
            // match; any grouping is bit-identical (each gate touches
            // one column, and per-column order is preserved), so
            // breaking at an xb change keeps instructions uniform.
            if (!p.instrs.empty() &&
                p.instrs.back().kind == ReplayProgram::Kind::VRun &&
                p.instrs.back().slot == op.index &&
                p.instrs.back().xb == op.xb) {
                ReplayProgram::Instr &run = p.instrs.back();
                ++run.count;
                ++run.work;
            } else {
                ReplayProgram::Instr in;
                in.kind = ReplayProgram::Kind::VRun;
                in.cls = OpClass::LogicV;
                in.maskFull = 1;  // LogicV addresses rows directly
                in.off = static_cast<uint32_t>(p.vgates.size());
                in.count = 1;
                in.slot = op.index;
                in.work = 1;
                in.xb = op.xb;
                p.instrs.push_back(in);
            }
            p.vgates.push_back(g);
            break;
          }
          default:
            break;  // unreachable: segments hold work ops only
        }
    }

    p.allMasksFull =
        std::all_of(p.instrs.begin(), p.instrs.end(),
                    [](const ReplayProgram::Instr &in) {
                        return in.maskFull != 0;
                    });
    p.uniformXb =
        !p.instrs.empty() &&
        std::all_of(p.instrs.begin(), p.instrs.end(),
                    [&](const ReplayProgram::Instr &in) {
                        return in.xb == p.instrs.front().xb;
                    });
    p.xb = p.instrs.empty() ? Range() : p.instrs.front().xb;
    p.workWrites = p.workLogicH = p.workLogicV = 0;
    for (const ReplayProgram::Instr &in : p.instrs) {
        switch (in.cls) {
          case OpClass::Write:  p.workWrites += in.work; break;
          case OpClass::LogicH: p.workLogicH += in.work; break;
          default:              p.workLogicV += in.work; break;
        }
    }
}

void
compileBatchTrace(BatchTrace &batch, const Geometry &geo)
{
    batch.programs.resize(batch.used);
    for (uint32_t s = 0; s < batch.used; ++s)
        compileSegmentProgram(batch.segments[s], geo,
                              batch.programs[s]);
}

} // namespace pypim
