/**
 * @file
 * Decoded, replay-ready batches: the hand-off unit between the
 * translation pre-pass and the execution engines.
 *
 * A BatchTrace is one submitted micro-op batch after the shared
 * pre-pass (sim/segment_trace.hpp): segment traces and pre-validated
 * barrier Moves in stream order, plus the architectural Stats the
 * batch records and the mask state it leaves behind. It exists in two
 * ownership regimes:
 *
 *  - ARENA: the asynchronous pipeline (sim/pipeline.hpp) cycles two
 *    mutable BatchTrace arenas through its hand-off queue; clear()
 *    keeps capacity, so one-shot batches build allocation-free.
 *  - SHARED IMMUTABLE: the trace cache (Driver stream cache +
 *    Simulator::prepareTrace) builds a BatchTrace once per instruction
 *    signature, freezes it behind shared_ptr<const BatchTrace>, and
 *    replays the same object forever — OperationSink::submitTrace is
 *    pure replay with zero decode work. Refcounting keeps in-flight
 *    pipelined replays alive even if the owning cache is cleared.
 *
 * Because the expensive translation now runs once per signature, it
 * can afford a real optimisation pass: fuseBatchTrace() is a
 * window-based peephole over each segment that eliminates
 * Write-after-Write to the same slot, merges INIT1 chains across
 * independent columns into one op, and extends the builder's adjacent
 * INIT1->NOR/NOT fusion across intervening unrelated ops. Fused
 * traces replay bit-identically to unfused ones (see the legality
 * notes at fuseBatchTrace) but touch fewer column words per crossbar.
 */
#ifndef PYPIM_SIM_BATCH_TRACE_HPP
#define PYPIM_SIM_BATCH_TRACE_HPP

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/replay_program.hpp"
#include "sim/segment_trace.hpp"
#include "uarch/microop.hpp"
#include "uarch/range.hpp"

namespace pypim
{

class HTree;

/**
 * One decoded, replay-ready batch: segment traces and pre-validated
 * barrier Moves in stream order. The segment arenas are reused across
 * batches (clear() keeps capacity), so steady-state building is
 * allocation-free.
 */
struct BatchTrace
{
    /** One replay step of the batch. */
    struct Item
    {
        enum class Kind : uint8_t
        {
            Segment,  //!< replay segments[seg]
            Move      //!< apply op under the crossbar-mask snapshot xb
        };
        Kind kind = Kind::Segment;
        uint32_t seg = 0;
        MicroOp op;
        Range xb;
    };

    /** Ops eliminated by the window fusion pass (fuseBatchTrace). */
    struct Fusion
    {
        uint64_t waw = 0;        //!< dead Writes (Write-after-Write)
        uint64_t initChain = 0;  //!< INIT1 ops merged into a chain peer
        uint64_t window = 0;     //!< INIT1 ops window-fused into a gate
        uint64_t writeStripe = 0;  //!< Writes merged into a stripe peer
    };

    std::vector<Item> items;
    std::vector<SegmentTrace> segments;
    uint32_t used = 0;  //!< segment arenas in use this batch
    /**
     * Compiled form of segments[0..used), filled by compileBatchTrace
     * (sim/replay_program.hpp) for traces about to be frozen into the
     * cache. Empty on the pipeline's one-shot arena batches — those
     * replay once, through the interpreter.
     */
    std::vector<ReplayProgram> programs;

    /**
     * Architectural Stats of the whole batch, recorded once by the
     * build pre-pass. Folded into the simulator's counters at every
     * submit (cached replays never re-decode), so fusion — which only
     * changes the applied work — cannot perturb the architectural
     * counters.
     */
    Stats stats;
    /** Mask state after the batch's last op (installed at submit). */
    Range finalXb, finalRow;
    Fusion fusion;
    /** Geometry guard: a trace only replays on the array it was built
     *  for (decoded column/row/crossbar indices are layout-bound). */
    uint32_t geoRows = 0, geoCols = 0, geoPartitions = 0,
             geoCrossbars = 0;

    // --- shard-transport wire identity (sim/trace_wire.hpp) ----------
    // Filled only by the socket transport's prepareTrace path: the
    // content address under which this frozen trace is installed in
    // each shard worker's cache (FNV-1a of the source op words + the
    // fuse flag), and the source stream itself — the wire image ships
    // the raw ops so a worker can rebuild the trace deterministically
    // with its own arenas (the raw-trace fallback), cross-checked
    // against the shipped stats/mask epilogue. Empty/zero on inproc
    // traces: the in-process group shares the handle by pointer.
    uint64_t wireSig = 0;
    std::vector<Word> sourceOps;
    bool sourceFuse = false;

    /** Fresh (cleared) segment arena for the next segment. */
    SegmentTrace &
    nextSegment(uint32_t rows)
    {
        if (used == segments.size())
            segments.emplace_back();
        SegmentTrace &t = segments[used++];
        t.clear(rows);
        return t;
    }

    /** Compiled program for segment @p seg, or null (interpret). */
    const ReplayProgram *
    program(uint32_t seg) const
    {
        return seg < programs.size() ? &programs[seg] : nullptr;
    }

    void
    clear()
    {
        items.clear();
        used = 0;
        programs.clear();
        stats.clear();
        finalXb = Range();
        finalRow = Range();
        fusion = Fusion();
        wireSig = 0;
        sourceOps.clear();
        sourceFuse = false;
    }
};

/**
 * True iff the stream sets both the crossbar and the row mask before
 * its first non-mask op. Such a stream is SELF-CONTAINED: every mask
 * snapshot the pre-pass takes derives from in-stream values, so the
 * decoded trace is independent of the mask state at build time and
 * may be replayed under any entry state. The driver's recorded
 * stream-cache entries have this shape by construction; prepareTrace
 * refuses (returns null for) anything else.
 */
bool leadsWithMasks(const Word *ops, size_t n);

/**
 * Decode the batch @p ops[0..n) into @p batch (which the caller has
 * clear()ed): segments via buildSegmentTrace, barrier Moves validated
 * and snapshotted, data-less Reads validated and absorbed. Records
 * the architectural stats into batch.stats — including the valid
 * prefix when a malformed op throws — and advances @p mask past the
 * stream, capturing the final state in the batch.
 */
void buildBatchTrace(const Word *ops, size_t n, const Geometry &geo,
                     const HTree &htree, MaskState &mask,
                     BatchTrace &batch);

/**
 * Window-based peephole fusion over every segment of @p batch; run
 * once, before the trace is frozen and cached. Four rewrites, all
 * producing bit-identical replay:
 *
 *  - WAW elimination: a Write to slot s is dead when a later Write to
 *    the same slot covers it (crossbar-mask superset, row-mask
 *    superset) and no op in between touches any column of s.
 *  - INIT1 chain merging: an INIT1 is folded into a later INIT1 under
 *    identical masks by appending its half-gate sections (INIT
 *    sections are independent per column and INIT1 is idempotent), as
 *    long as nothing touches its output columns in between.
 *  - Windowed INIT1->NOR/NOT fusion: the builder's adjacent fusion
 *    generalised — the INIT may sit several ops back, provided masks
 *    match, the alias guard holds (fusableInitNor) and no intervening
 *    op reads or writes the INIT's output columns. Moving the INIT
 *    forward to the gate is then unobservable: stateful gates read
 *    their output (out_new = out_old & ...), so "touches" includes
 *    every gate output, and the guard is conservative at column
 *    granularity, ignoring row masks and crossbar masks of the
 *    intervening ops.
 *  - Write-stripe merging: a maximal run of CONSECUTIVE surviving
 *    Writes under identical crossbar and row masks with pairwise-
 *    distinct slots collapses into one stripe op (TraceOp::wn > 1)
 *    replayed partition-major by Crossbar::writeStripe. Distinct
 *    slots address disjoint strided column sets, so any application
 *    order is bit-identical; a repeated slot ends the run.
 *
 * Counters for the eliminated ops accumulate into batch.fusion;
 * batch.stats is untouched (fusion changes applied work only).
 */
void fuseBatchTrace(BatchTrace &batch, const Geometry &geo);

} // namespace pypim

#endif // PYPIM_SIM_BATCH_TRACE_HPP
