#include "sim/device_group.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/trace_wire.hpp"

namespace pypim
{

SimulatorGroup::SimulatorGroup(const Geometry &geo,
                               const EngineConfig &ec)
    : geo_(geo)
{
    geo_.validate();
    uint32_t n = std::max(1u, ec.devices);
    fatalIf(!isPow2(n),
            "devices: " + std::to_string(n) +
                " is not a power of two (slices cut the crossbar "
                "space at H-tree group boundaries)");
    // Clamp instead of failing: the knob is a deployment-scale
    // setting, and a 4-crossbar test geometry under PYPIM_DEVICES=16
    // should shard as far as the geometry allows (one crossbar per
    // sub-device), not abort the suite.
    n = std::min(n, geo_.numCrossbars);
    perDevice_ = geo_.numCrossbars / n;
    // The sharded engine's thread budget is per LOGICAL device:
    // divide it across the sub-device pools so devices=N never
    // oversubscribes the host N-fold (each pool further clamps to
    // its slice size).
    EngineConfig sub = ec;
    if (ec.kind == EngineKind::Sharded && n > 1)
        sub.threads = std::max(1u, ec.resolvedThreads() / n);
    devices_ = n;

    if (ec.transport == TransportKind::Socket) {
        // Validate the fault spec HERE, pre-fork: a PYPIM_FAULTS typo
        // must throw at device construction, not surface later as a
        // mysteriously dead worker.
        if (!ec.faults.empty())
            (void)FaultSpec::parse(ec.faults);
        // The slices live in worker processes (each mirrors the
        // per-sub-device wiring below for its own Simulator); the host
        // keeps a trace-build mirror and the power-on shadow mask.
        htree_ = std::make_unique<HTree>(geo_.numCrossbars);
        remoteCompiled_ = sub.compiledReplay;
        shadowXb_ = Range::all(geo_.numCrossbars);
        transport_ =
            std::make_unique<SocketTransport>(geo_, sub, n, perDevice_);
        return;
    }

    sims_.reserve(n);
    for (uint32_t d = 0; d < n; ++d)
        sims_.push_back(std::make_unique<Simulator>(
            geo_, sub, d * perDevice_, perDevice_));

    // Fault tolerance: the spec is validated HERE (a PYPIM_FAULTS
    // typo throws at device construction, never silently runs
    // un-faulted), and checksum verification is enabled per
    // sub-device. Injection without verifyState is INJECTED but not
    // DETECTED — the configuration the sticky-error tests exercise.
    if (!ec.faults.empty()) {
        const FaultSpec spec = FaultSpec::parse(ec.faults);
        for (uint32_t d = 0; d < n; ++d) {
            auto inj = std::make_shared<FaultInjector>(
                spec, d, d * perDevice_, perDevice_, geo_);
            if (inj->active()) {
                sims_[d]->setFaultInjector(inj);
                injectors_.push_back(std::move(inj));
            }
        }
    }
    if (ec.verifyState)
        for (auto &s : sims_)
            s->setVerifyState(true);
}

uint64_t
SimulatorGroup::faultsInjected() const
{
    if (remote())
        return transport_->faultsInjectedAll();
    uint64_t total = 0;
    for (const auto &inj : injectors_)
        total += inj->injected();
    return total;
}

void
SimulatorGroup::suppressFaults(bool on)
{
    if (remote()) {
        transport_->suppressFaultsAll(on);
        return;
    }
    for (const auto &inj : injectors_)
        inj->setSuppressed(on);
}

CheckpointImage
SimulatorGroup::fetchRemoteImage() const
{
    panicIf(!remote(),
            "fetchRemoteImage: inproc state is walked directly");
    return transport_->fetchImage();
}

void
SimulatorGroup::restoreRemoteImage(const CheckpointImage &img)
{
    panicIf(!remote(),
            "restoreRemoteImage: inproc state is walked directly");
    transport_->restoreImage(img);
    shadowXb_ = img.maskXb;
}

void
SimulatorGroup::forwardAll(const Word *ops, size_t n)
{
    if (n == 0)
        return;
    if (remote()) {
        transport_->submitAll(ops, n);
        return;
    }
    for (auto &s : sims_)
        s->submitBatch(ops, n);
}

void
SimulatorGroup::updateShadowMask(const Word *ops, size_t n)
{
    for (size_t i = n; i-- > 0;) {
        if (enc::peekType(ops[i]) != OpType::CrossbarMask)
            continue;
        const Range r = MicroOp::decode(ops[i]).range;
        if (validXbMask(r)) {
            shadowXb_ = r;
            return;
        }
        // An ill-formed mask op throws in the workers; keep walking
        // for the last valid one before it (best effort — an error
        // stream leaves sub-device state diverged anyway).
    }
}

bool
SimulatorGroup::validXbMask(const Range &r) const
{
    return r.step != 0 && r.start <= r.stop &&
           (r.stop - r.start) % r.step == 0 &&
           r.stop < geo_.numCrossbars;
}

bool
SimulatorGroup::crossesBoundary(const Range &xb, int64_t dist) const
{
    if (dist == 0)
        return false;
    for (uint64_t src = xb.start; src <= xb.stop; src += xb.step) {
        const int64_t dst = static_cast<int64_t>(src) + dist;
        if (dst < 0 || dst >= geo_.numCrossbars ||
            deviceOf(static_cast<uint32_t>(dst)) !=
                deviceOf(static_cast<uint32_t>(src)))
            return true;
    }
    return false;
}

void
SimulatorGroup::exchangeMove(Word w, const MicroOp &op,
                             const Range &xb)
{
    // Same validation (and failure point) as the engines' doMove: an
    // invalid Move throws here, before any crossbar is touched by it.
    const int64_t dist = validateMove(op, xb, geo_);

    if (remote()) {
        exchangeMoveRemote(w, op, xb, dist);
        return;
    }

    // 1. Stage boundary-crossing source values. crossbar() drains the
    // owning sub-device, so every op preceding this Move has landed;
    // nothing after it has been submitted yet, so the values read are
    // the pre-move (read-all) state. Storage-transparent: with paged
    // crossbars a read of a still-absent block yields 0 and landing
    // densifies exactly the destination blocks written, so staging
    // through cold state needs no special casing.
    staged_.clear();
    xb.forEach([&](uint32_t src) {
        const uint32_t dst = static_cast<uint32_t>(src + dist);
        const uint32_t sd = deviceOf(src);
        if (sd == deviceOf(dst))
            return;
        staged_.push_back(
            {dst, sims_[sd]->crossbar(src).read(op.srcIdx, op.srcRow)});
    });

    // 2. Broadcast the Move op: every sub-device re-validates it,
    // records the identical full-mask H-tree cycle cost (the top-level
    // interconnect model is per-op, not per-slice), and applies its
    // intra-slice transfers.
    forwardAll(&w, 1);

    // 3. Land the staged values. crossbar() drains the destination
    // sub-device first: its local application of the Move — which may
    // legitimately READ a boundary destination as the source of a
    // chained intra-slice transfer — is complete, and destination
    // crossbars are unique per transfer, so landing cannot collide
    // with a local write.
    for (const Staged &t : staged_)
        sims_[deviceOf(t.dst)]->crossbar(t.dst).writeRow(
            op.dstIdx, t.value, op.dstRow);

    ++traffic_.boundaryMoves;
    traffic_.boundaryTransfers += staged_.size();
}

void
SimulatorGroup::exchangeMoveRemote(Word w, const MicroOp &op,
                                   const Range &xb, int64_t dist)
{
    const auto t0 = std::chrono::steady_clock::now();

    // 1. Stage: batch the boundary-crossing reads into ONE round trip
    // per owning worker. The worker-side cell read drains its own
    // pipeline first, and FIFO framing means every prior submit on
    // that socket has been applied — the same pre-move-state guarantee
    // the inproc crossbar() drain gives.
    std::vector<std::vector<SocketTransport::CellAddr>> addrs(devices_);
    std::vector<std::vector<uint32_t>> dsts(devices_);
    xb.forEach([&](uint32_t src) {
        const uint32_t dst = static_cast<uint32_t>(src + dist);
        const uint32_t sd = deviceOf(src);
        if (sd == deviceOf(dst))
            return;
        addrs[sd].push_back({src, op.srcIdx, op.srcRow});
        dsts[sd].push_back(dst);
    });
    staged_.clear();
    std::vector<uint32_t> values;
    for (uint32_t d = 0; d < devices_; ++d) {
        if (addrs[d].empty())
            continue;
        transport_->readCells(d, addrs[d], values);
        for (size_t k = 0; k < values.size(); ++k)
            staged_.push_back({dsts[d][k], values[k]});
    }

    // 2. Broadcast the Move op itself (identical full-mask H-tree
    // cost on every worker — the replicated-stats invariant).
    transport_->submitAll(&w, 1);

    // 3. Land: batch the staged values into one (asynchronous) wire
    // message per destination worker. FIFO ordering lands them after
    // the worker applied its intra-slice transfers, mirroring the
    // inproc drain-before-land.
    std::vector<std::vector<SocketTransport::CellPut>> puts(devices_);
    for (const Staged &t : staged_)
        puts[deviceOf(t.dst)].push_back(
            {t.dst, op.dstIdx, t.value, op.dstRow});
    for (uint32_t d = 0; d < devices_; ++d)
        if (!puts[d].empty())
            transport_->writeCells(d, puts[d]);

    transport_->chargeExchange(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    ++traffic_.boundaryMoves;
    traffic_.boundaryTransfers += staged_.size();
}

void
SimulatorGroup::submitBatch(const Word *ops, size_t n)
{
    if (devices_ == 1) {
        if (remote()) {
            forwardAll(ops, n);
            updateShadowMask(ops, n);
        } else {
            sims_[0]->submitBatch(ops, n);
        }
        return;
    }
    // Split the batch at every boundary-crossing Move (one peek per
    // word; decode only for mask and Move ops): everything between
    // two cuts is a plain broadcast, the cuts themselves go through
    // the host-mediated exchange.
    size_t chunk = 0;  // start of the not-yet-forwarded tail
    scanMoves(ops, n,
              [&](size_t i, const MicroOp &op, const Range &xb,
                  bool crossing) {
                  ++traffic_.moveOps;
                  traffic_.moveTransfers += xb.count();
                  if (crossing) {
                      forwardAll(ops + chunk, i - chunk);
                      exchangeMove(ops[i], op, xb);
                      chunk = i + 1;
                  }
                  return true;
              });
    forwardAll(ops + chunk, n - chunk);
    if (remote())
        updateShadowMask(ops, n);
}

void
SimulatorGroup::performBatch(const Word *ops, size_t n)
{
    submitBatch(ops, n);
    flush();
}

void
SimulatorGroup::flush()
{
    if (remote()) {
        transport_->flushAll();
        return;
    }
    for (auto &s : sims_)
        s->flush();
}

uint32_t
SimulatorGroup::performRead(Word op)
{
    // Broadcast: every sub-device drains, validates and counts the
    // Read (keeping the replicated-stats invariant); only the slice
    // owning the masked crossbar holds the data.
    if (remote())
        return transport_->readAll(op, deviceOf(shadowXb_.start));
    const uint32_t owner = deviceOf(sims_[0]->crossbarMask().start);
    uint32_t value = 0;
    for (uint32_t d = 0; d < sims_.size(); ++d) {
        const uint32_t v = sims_[d]->performRead(op);
        if (d == owner)
            value = v;
    }
    return value;
}

bool
SimulatorGroup::readBulk(const BulkIoSpec &spec, uint32_t *out,
                         BulkIoTelemetry &tel)
{
    // Broadcast: every sub-device applies the identical stats/mask
    // delta and gathers its owned warps into the shared buffer.
    if (remote()) {
        transport_->bulkReadAll(spec, out, tel);
        shadowXb_ = spec.finalXb;
        return true;
    }
    for (auto &s : sims_)
        if (!s->readBulk(spec, out, tel))
            return false;
    return true;
}

bool
SimulatorGroup::writeBulk(const BulkIoSpec &spec,
                          const uint32_t *values, BulkIoTelemetry &tel)
{
    if (remote()) {
        transport_->bulkWriteAll(spec, values, tel);
        shadowXb_ = spec.finalXb;
        return true;
    }
    for (auto &s : sims_)
        if (!s->writeBulk(spec, values, tel))
            return false;
    return true;
}

bool
SimulatorGroup::streamCrossesBoundary(const Word *ops,
                                      size_t n) const
{
    bool found = false;
    scanMoves(ops, n,
              [&](size_t, const MicroOp &, const Range &,
                  bool crossing) {
                  found = crossing;
                  return !found;  // stop at the first crossing
              });
    return found;
}

std::shared_ptr<const BatchTrace>
SimulatorGroup::prepareTrace(const Word *ops, size_t n, bool fuse)
{
    // A trace replays blindly on every slice; a boundary-crossing
    // Move needs the scanning exchange, so such streams stay on the
    // raw path (the caller falls back transparently). The cheap raw
    // scan runs BEFORE the expensive build+fuse, so a refused
    // signature costs one peek pass per attempt, not a discarded
    // trace construction. (Unreachable from the driver today — only
    // R-type streams are cached and they contain no Moves — but the
    // sink contract allows any self-contained stream.)
    if (devices_ > 1 && streamCrossesBoundary(ops, n))
        return nullptr;
    // Under the socket transport the trace is built on the host's
    // mirror and stamped with its wire identity, so submitTrace can
    // install it once per worker and replay by signature thereafter.
    if (remote())
        return buildWireTrace(ops, n, fuse, remoteCompiled_, geo_,
                              *htree_);
    // Building touches no simulated state, and the handle is bound to
    // the (shared) geometry, not a slice: build once via sub-device 0.
    return sims_[0]->prepareTrace(ops, n, fuse);
}

void
SimulatorGroup::submitTrace(std::shared_ptr<const BatchTrace> trace)
{
    panicIf(trace == nullptr, "submitTrace: null trace");
    if (devices_ > 1) {
        for (const BatchTrace::Item &item : trace->items) {
            if (item.kind != BatchTrace::Item::Kind::Move)
                continue;
            ++traffic_.moveOps;
            traffic_.moveTransfers += item.xb.count();
        }
    }
    if (remote()) {
        transport_->submitTraceAll(*trace);
        // A prepared trace is self-contained (leads with both masks),
        // so its final mask state is the stream's.
        shadowXb_ = trace->finalXb;
        return;
    }
    for (auto &s : sims_)
        s->submitTrace(trace);
}

} // namespace pypim
