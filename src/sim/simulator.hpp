/**
 * @file
 * Cycle-accurate bit-level digital PIM simulator (paper §VI).
 *
 * The simulator is a drop-in replacement for a physical PIM chip: its
 * only interface with the libraries above it is the encoded micro-op
 * stream (OperationSink), it models every micro-operation bit-by-bit
 * exactly as the crossbar periphery would, and it keeps per-op-type
 * profiling counters from which the evaluation derives throughput via
 * the paper's Eq. (1).
 *
 * The simulator owns the simulated state — crossbar arrays, H-tree,
 * the in-stream mask state (the volatile crossbar activation bit and
 * the stored row mask of §III-B, expanded once per row-mask op), and
 * statistics — while HOW a micro-op stream is replayed over that
 * state is delegated to a pluggable ExecutionEngine (sim/engine.hpp):
 * the serial reference backend, a decode-once crossbar-major trace
 * backend, or a sharded multi-threaded backend that scales with host
 * cores like real PIM scales with crossbars. Engines can be swapped
 * at runtime without losing memory contents.
 */
#ifndef PYPIM_SIM_SIMULATOR_HPP
#define PYPIM_SIM_SIMULATOR_HPP

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "sim/engine.hpp"
#include "sim/htree.hpp"
#include "sim/sink.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

/** Full-memory digital PIM simulator. */
class Simulator : public OperationSink
{
  public:
    /** @p ec selects the execution backend (default: serial). */
    explicit Simulator(const Geometry &geo,
                       const EngineConfig &ec = {});

    // The engine holds references into the simulator's state.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    // OperationSink interface
    void performBatch(const Word *ops, size_t n) override;
    uint32_t performRead(Word op) override;

    /** Execute one decoded micro-op (test convenience). */
    void perform(const MicroOp &op);

    /** Execute a Read micro-op and return the N-bit response. */
    uint32_t read(const MicroOp &op);

    const Geometry &geometry() const { return geo_; }
    const HTree &htree() const { return htree_; }

    /** Direct crossbar state access (tests and host-side loaders). */
    Crossbar &crossbar(uint32_t i) { return xbs_.at(i); }
    const Crossbar &crossbar(uint32_t i) const { return xbs_.at(i); }

    const Range &crossbarMask() const { return mask_.xb; }
    const Range &rowMask() const { return mask_.row; }

    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

    /** Active execution backend. */
    ExecutionEngine &engine() { return *engine_; }
    const ExecutionEngine &engine() const { return *engine_; }

    /**
     * Replace the execution backend. Crossbar contents, mask state
     * and statistics are owned by the simulator and survive the swap.
     */
    void setEngine(const EngineConfig &ec);

  private:
    Geometry geo_;
    std::vector<Crossbar> xbs_;
    HTree htree_;
    MaskState mask_;
    Stats stats_;
    std::unique_ptr<ExecutionEngine> engine_;
};

} // namespace pypim

#endif // PYPIM_SIM_SIMULATOR_HPP
