/**
 * @file
 * Cycle-accurate bit-level digital PIM simulator (paper §VI).
 *
 * The simulator is a drop-in replacement for a physical PIM chip: its
 * only interface with the libraries above it is the encoded micro-op
 * stream (OperationSink), it models every micro-operation bit-by-bit
 * exactly as the crossbar periphery would, and it keeps per-op-type
 * profiling counters from which the evaluation derives throughput via
 * the paper's Eq. (1).
 *
 * Mask state (the volatile crossbar activation bit and the stored row
 * mask start/stop/step of §III-B) lives here; the row mask is expanded
 * into a bit vector once per row-mask op and reused by subsequent
 * read/write/logic ops, exactly as described in the paper.
 */
#ifndef PYPIM_SIM_SIMULATOR_HPP
#define PYPIM_SIM_SIMULATOR_HPP

#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "sim/htree.hpp"
#include "sim/sink.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

/** Full-memory digital PIM simulator. */
class Simulator : public OperationSink
{
  public:
    explicit Simulator(const Geometry &geo);

    // OperationSink interface
    void performBatch(const Word *ops, size_t n) override;
    uint32_t performRead(Word op) override;

    /** Execute one decoded micro-op (test convenience). */
    void perform(const MicroOp &op);

    /** Execute a Read micro-op and return the N-bit response. */
    uint32_t read(const MicroOp &op);

    const Geometry &geometry() const { return geo_; }
    const HTree &htree() const { return htree_; }

    /** Direct crossbar state access (tests and host-side loaders). */
    Crossbar &crossbar(uint32_t i) { return xbs_.at(i); }
    const Crossbar &crossbar(uint32_t i) const { return xbs_.at(i); }

    const Range &crossbarMask() const { return xbMask_; }
    const Range &rowMask() const { return rowMask_; }

    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

  private:
    void doCrossbarMask(const MicroOp &op);
    void doRowMask(const MicroOp &op);
    void doWrite(const MicroOp &op);
    void doLogicH(const MicroOp &op);
    void doLogicV(const MicroOp &op);
    void doMove(const MicroOp &op);

    Geometry geo_;
    std::vector<Crossbar> xbs_;
    HTree htree_;
    Range xbMask_;
    Range rowMask_;
    std::vector<uint64_t> rowMaskWords_;
    Stats stats_;
};

} // namespace pypim

#endif // PYPIM_SIM_SIMULATOR_HPP
