/**
 * @file
 * Cycle-accurate bit-level digital PIM simulator (paper §VI).
 *
 * The simulator is a drop-in replacement for a physical PIM chip: its
 * only interface with the libraries above it is the encoded micro-op
 * stream (OperationSink), it models every micro-operation bit-by-bit
 * exactly as the crossbar periphery would, and it keeps per-op-type
 * profiling counters from which the evaluation derives throughput via
 * the paper's Eq. (1).
 *
 * The simulator owns the simulated state — crossbar arrays, H-tree,
 * the in-stream mask state (the volatile crossbar activation bit and
 * the stored row mask of §III-B, expanded once per row-mask op), and
 * statistics — while HOW a micro-op stream is replayed over that
 * state is delegated to a pluggable ExecutionEngine (sim/engine.hpp):
 * the serial reference backend, a decode-once crossbar-major trace
 * backend, or a sharded multi-threaded backend that scales with host
 * cores like real PIM scales with crossbars. Engines can be swapped
 * at runtime without losing memory contents.
 *
 * With EngineConfig::pipeline enabled the simulator additionally owns
 * an asynchronous execution pipeline (sim/pipeline.hpp): submitBatch
 * decodes batches into segment traces on the caller thread and a
 * consumer thread replays them, overlapping driver translation with
 * engine replay. Reads, direct state access, stats queries and engine
 * swaps drain the pipeline, so synchronous callers observe identical
 * behaviour.
 */
#ifndef PYPIM_SIM_SIMULATOR_HPP
#define PYPIM_SIM_SIMULATOR_HPP

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/crossbar.hpp"
#include "sim/engine.hpp"
#include "sim/htree.hpp"
#include "sim/pipeline.hpp"
#include "sim/sink.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

class FaultInjector;

/** Full-memory digital PIM simulator. */
class Simulator : public OperationSink
{
  public:
    /** @p ec selects the execution backend (default: serial). */
    explicit Simulator(const Geometry &geo,
                       const EngineConfig &ec = {});

    /**
     * Sub-device simulator owning only the crossbar slice
     * [@p sliceLo, @p sliceLo + @p sliceCount) of @p geo's crossbar
     * space (sim/device_group.hpp). The micro-op interface stays in
     * GLOBAL coordinates — masks, traces, the H-tree cost model and
     * all architectural statistics are identical to a full-array
     * simulator fed the same stream — but crossbar STATE is allocated
     * and mutated only for the owned slice: work ops clip their
     * broadcast to it, Moves apply only intra-slice transfers, and
     * Reads outside the slice validate, count and return 0. Cached
     * BatchTrace handles built by any same-geometry simulator replay
     * unchanged on every slice.
     */
    Simulator(const Geometry &geo, const EngineConfig &ec,
              uint32_t sliceLo, uint32_t sliceCount);

    // The engine holds references into the simulator's state.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    ~Simulator() override;

    // OperationSink interface. With the pipeline enabled
    // (EngineConfig::pipeline), submitBatch decodes on the calling
    // thread and replays asynchronously; performBatch remains the
    // synchronous wrapper (submit + flush), and performRead, direct
    // crossbar access, stats queries and setEngine drain the pipeline
    // first.
    void performBatch(const Word *ops, size_t n) override;
    void submitBatch(const Word *ops, size_t n) override;
    void flush() override;
    uint32_t performRead(Word op) override;

    /**
     * Build a shared immutable replay-ready trace of a self-contained
     * stream (one that sets both masks before its first non-mask op;
     * returns null otherwise): the pre-pass decodes, validates and
     * records stats once, and — when @p fuse is set — the window
     * fusion pass (sim/batch_trace.hpp) optimises the trace before it
     * is frozen. Does not execute and does not advance the mask
     * state; replay it (any number of times) through submitTrace.
     */
    std::shared_ptr<const BatchTrace>
    prepareTrace(const Word *ops, size_t n, bool fuse) override;

    /**
     * Execute a trace built by prepareTrace on this simulator:
     * equivalent to submitBatch of the original stream — stats and
     * final mask state apply at submit, replay is enqueued behind the
     * pipeline when enabled and runs inline otherwise — but with zero
     * decode work.
     */
    void submitTrace(std::shared_ptr<const BatchTrace> trace) override;

    /**
     * Bulk block-transfer read: drain the pipeline ONCE (the drain
     * contract — one drain per transfer, not one per element), apply
     * the spec's pre-planned stats delta and final mask state exactly
     * as a submitTrace would, then gather via the engine's transpose
     * kernels. Elements outside the owned slice are left untouched in
     * @p out (the device group assembles the full buffer from its
     * sub-devices). Always returns true.
     */
    bool readBulk(const BulkIoSpec &spec, uint32_t *out,
                  BulkIoTelemetry &tel) override;

    /** Bulk block-transfer write: the scatter mirror of readBulk. */
    bool writeBulk(const BulkIoSpec &spec, const uint32_t *values,
                   BulkIoTelemetry &tel) override;

    /** Execute one decoded micro-op (test convenience). */
    void perform(const MicroOp &op);

    /** Execute a Read micro-op and return the N-bit response. */
    uint32_t read(const MicroOp &op);

    const Geometry &geometry() const { return geo_; }
    const HTree &htree() const { return htree_; }

    /** First GLOBAL crossbar id this simulator owns (0 unless it is a
     *  sub-device slice). */
    uint32_t sliceLo() const { return sliceLo_; }
    /** Owned crossbars (geometry().numCrossbars unless sliced). */
    uint32_t
    sliceCount() const
    {
        return static_cast<uint32_t>(xbs_.size());
    }
    /** True iff global crossbar @p i is simulated by this instance. */
    bool
    ownsCrossbar(uint32_t i) const
    {
        return i >= sliceLo_ && i - sliceLo_ < xbs_.size();
    }

    /**
     * Direct crossbar state access by GLOBAL id (tests and host-side
     * loaders); throws pypim::Error for crossbars outside the owned
     * slice. Drains the pipeline so the returned state reflects every
     * submitted batch.
     */
    Crossbar &
    crossbar(uint32_t i)
    {
        checkOwned(i);
        drainPipeline();
        // The caller may mutate state the checksum machinery never
        // sees (direct test writes, the group's Move landing writes):
        // the next verify point re-blesses instead of comparing.
        checksumsStale_ = true;
        return xbs_[i - sliceLo_];
    }
    const Crossbar &
    crossbar(uint32_t i) const
    {
        checkOwned(i);
        drainPipeline();
        return xbs_[i - sliceLo_];
    }

    // The mask state is advanced at submit time, so it reflects the
    // whole submitted stream without a drain.
    const Range &crossbarMask() const { return mask_.xb; }
    const Range &rowMask() const { return mask_.row; }

    /**
     * Aggregate storage footprint of every owned crossbar (drains
     * the pipeline first). Pure observability: never part of the
     * architectural Stats the parity suites compare exactly.
     */
    StorageGauges storageGauges() const;

    /**
     * Re-elide every materialised block that has decayed to all-zero
     * across the owned slice (paged storage; no-op for dense). Drains
     * the pipeline — compaction must not race replay. Returns the
     * number of blocks returned to the pool.
     */
    uint64_t compactStorage();

    /** Statistics queries drain the pipeline. */
    Stats &
    stats()
    {
        drainPipeline();
        return stats_;
    }
    const Stats &
    stats() const
    {
        drainPipeline();
        return stats_;
    }

    /** True iff the asynchronous pipeline is active. */
    bool pipelined() const { return pipeline_ != nullptr; }

    /**
     * Active execution backend. Drains the pipeline: the engine's
     * per-worker diagnostics (e.g. ShardedEngine::shardWork) are
     * written by the consumer thread while batches are in flight.
     */
    ExecutionEngine &
    engine()
    {
        drainPipeline();
        return *engine_;
    }
    const ExecutionEngine &
    engine() const
    {
        drainPipeline();
        return *engine_;
    }

    /**
     * Replace the execution backend (draining the pipeline first).
     * Crossbar contents, mask state and statistics are owned by the
     * simulator and survive the swap; the pipeline is enabled or
     * disabled per @p ec.
     */
    void setEngine(const EngineConfig &ec);

    // --- fault tolerance (sim/fault.hpp, sim/checkpoint.hpp) --------

    /**
     * Enable per-crossbar state checksums (PYPIM_VERIFY_STATE):
     * verified before every batch replay and at every drain point,
     * re-blessed after every legitimate mutation. A mismatch throws
     * StateCorruption — the signal the RecoverySink's retry-with-
     * restore policy acts on. Drains and blesses the current state.
     */
    void setVerifyState(bool on);
    bool verifyState() const { return verifyState_; }

    /** Install the deterministic fault injector (drains first). */
    void setFaultInjector(std::shared_ptr<FaultInjector> inj);
    const std::shared_ptr<FaultInjector> &
    faultInjector() const
    {
        return injector_;
    }

    /**
     * Drop the pipeline's sticky error once the queue is idle (no-op
     * when not pipelined) — the recovery path's first step before it
     * restores state through crossbar(), whose drain would otherwise
     * rethrow.
     */
    void clearPipelineError();

    /**
     * Checkpoint-restore of the non-crossbar architectural state:
     * mask ranges and the Stats block (drains first). Crossbar state
     * is restored separately via resetState + loadBlock.
     */
    void restoreArchState(const Range &maskXb, const Range &maskRow,
                          const Stats &stats);

    /** Re-bless the checksums after an external state rewrite (the
     *  restore path's last step; drains first). */
    void rebaselineChecksums();

  private:
    /** Synchronise with the consumer thread (no-op when pipeline off). */
    void
    drainPipeline() const
    {
        if (pipeline_)
            pipeline_->drain();
    }

    void checkOwned(uint32_t i) const;

    /**
     * Pre-replay hook (and drain-point verify): compare every owned
     * crossbar's checksum against the blessed set, throwing
     * StateCorruption on mismatch. A stale baseline (direct host
     * mutation through non-const crossbar()) blesses instead.
     */
    void verifyChecksums();
    /** Recompute and store the blessed per-crossbar checksums. */
    void blessChecksums();
    /**
     * Post-replay hook: bless the legitimate post-batch state, then
     * let the injector fail the batch and/or corrupt state WITHOUT
     * re-blessing (sim/fault.hpp) — so the next verify detects it.
     */
    void postReplayHook();
    /** Run @p fn between the verify and post-replay hooks — the
     *  synchronous (non-pipelined) mirror of the consumer's path. */
    template <typename Fn> void replayGuarded(Fn &&fn);
    /** Construct the pipeline with the hook lambdas installed and
     *  point every owned crossbar at its busy flag. */
    void makePipeline();

    Geometry geo_;
    uint32_t sliceLo_ = 0;
    /** Lower prepared traces into compiled replay programs at freeze
     *  (EngineConfig::compiledReplay; follows setEngine swaps). */
    bool compiledReplay_ = true;
    std::vector<Crossbar> xbs_;
    HTree htree_;
    MaskState mask_;
    Stats stats_;
    std::unique_ptr<ExecutionEngine> engine_;
    bool verifyState_ = false;
    /** Blessed per-crossbar state digests (empty until enabled). */
    std::vector<uint64_t> checksums_;
    /** Host mutated state directly: next verify blesses, not compares. */
    bool checksumsStale_ = false;
    std::shared_ptr<FaultInjector> injector_;
    // Declared after engine_/xbs_ so the consumer thread is joined
    // before the state it replays into is destroyed. Mutable: draining
    // is not an observable state change, and const accessors
    // synchronise through it.
    mutable std::unique_ptr<SimulatorPipeline> pipeline_;
};

} // namespace pypim

#endif // PYPIM_SIM_SIMULATOR_HPP
