/**
 * @file
 * Bit-level state of one memristive crossbar array.
 *
 * Storage is column-major: each bitline (column) is kept as
 * ceil(rows/64) 64-bit words, so one horizontal stateful-logic gate
 * over all rows costs O(rows/64) word operations — the CPU analogue of
 * the paper's condensed-format GPU optimisation (§VI "Memory"/"Logic").
 *
 * Two representations exist behind one interface (XbarStorage):
 *
 *  - DENSE: one flat cols x wordsPerCol slab, the historical layout
 *    and the parity oracle. RSS scales with geometry.
 *  - PAGED: each column is a run of kBlockWords-word BLOCKS behind a
 *    per-column block table. An all-zero block is represented by the
 *    sentinel entry kAbsent and costs zero bytes; it densifies
 *    transparently on the first write that could set a bit in it, and
 *    an explicit compact() sweep re-elides blocks that have decayed
 *    back to all-zero. The table itself is allocated lazily on the
 *    first densification, so a never-written crossbar costs O(1)
 *    bytes — RSS scales with LIVE data, not with geometry
 *    (BitMagic-style zero elision; ROADMAP capacity item).
 *
 * Zero-elision gives the replay loops a fast path for free: reading
 * an absent block yields zeros, so NOR/NOT with all-absent inputs
 * reduces to algebra on the output block (out &= ~mask needs no input
 * materialisation, and skips entirely when the output is absent too,
 * since stateful logic can only clear bits). Writes densify a block
 * only when the row mask actually selects a row inside it.
 *
 * On top of the block table, snapshot() returns a refcounted
 * copy-on-write image sharing every present block with the live
 * crossbar: O(live data) checkpoint, O(shared blocks) compare, with
 * mutation after the snapshot cloning only the blocks it touches.
 * Refcounts are NOT atomic: snapshots must be created, restored and
 * destroyed only while no replay is mutating the source crossbar
 * (the Simulator's drain points provide exactly this), and a
 * crossbar's blocks are only ever mutated by one thread at a time
 * (the sharded engine partitions work by crossbar), so block cloning
 * during concurrent replay of DIFFERENT crossbars is race-free.
 *
 * Stateful-logic fidelity: NOT/NOR can only switch the output memristor
 * from 1 towards 0 (paper §II-A — the output is expected to be
 * initialised to logical one first). We model exactly that:
 * out_new = out_old AND NOT(OR of inputs). A driver that forgets the
 * INIT therefore computes device-accurate garbage, which the test
 * suite detects.
 */
#ifndef PYPIM_SIM_CROSSBAR_HPP
#define PYPIM_SIM_CROSSBAR_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "uarch/microop.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

struct ReplayProgram;
struct SegmentTrace;
struct Stats;
struct TraceOp;
class BlockPool;

/** One strided write of a stripe: slot @p slot takes @p value. */
struct StripeWrite
{
    uint32_t slot = 0;
    uint32_t value = 0;
};

/** Point-in-time storage footprint of a crossbar (or a sum of them).
 *  Pure observability — never part of the architectural Stats, whose
 *  exact equality the parity suites assert across storage modes. */
struct StorageGauges
{
    uint64_t blocksTotal = 0;    //!< cols * blocksPerCol (paged; 0 dense)
    uint64_t blocksPresent = 0;  //!< materialised (non-elided) blocks
    uint64_t blocksElided = 0;   //!< absent blocks costing zero bytes
    uint64_t cowShared = 0;      //!< present blocks shared with snapshots
    uint64_t residentBytes = 0;  //!< bytes actually allocated for state

    StorageGauges &
    operator+=(const StorageGauges &o)
    {
        blocksTotal += o.blocksTotal;
        blocksPresent += o.blocksPresent;
        blocksElided += o.blocksElided;
        cowShared += o.cowShared;
        residentBytes += o.residentBytes;
        return *this;
    }
};

/** One h x w crossbar array with stateful-logic semantics. */
class Crossbar
{
  public:
    /** Words per paged block: 8 words = 512 rows of one column. */
    static constexpr uint32_t kBlockWords = 8;
    /** Block-table sentinel for an elided (all-zero) block. */
    static constexpr uint32_t kAbsent = UINT32_MAX;

    /**
     * @p storage defaults to Dense so direct constructions (unit
     * tests, host tooling) get the reference slab layout; the engine
     * stack passes EngineConfig::storage, whose default is Paged.
     */
    explicit Crossbar(const Geometry &geo,
                      XbarStorage storage = XbarStorage::Dense);

    // The pool is refcounted state: a bitwise copy would alias blocks
    // without owning them. Moves are fine (the source is emptied).
    Crossbar(const Crossbar &) = delete;
    Crossbar &operator=(const Crossbar &) = delete;
    Crossbar(Crossbar &&) = default;
    Crossbar &operator=(Crossbar &&) = default;

    /**
     * Execute an expanded horizontal logic op on all mask-selected
     * rows (@p rowMask is the realized row-mask bit vector).
     */
    void logicH(const HalfGates &hg, std::span<const uint64_t> rowMask);

    /**
     * INIT1 of the output columns fused with the NOR/NOT expanded in
     * @p hg: one pass computing out = (out & ~mask) | (~(inA|inB) &
     * mask), bit-identical to logicH(INIT1) followed by logicH(@p hg)
     * when no input aliases an output (the trace builder's fusion
     * precondition).
     */
    void logicHFusedInit1(const HalfGates &hg,
                          std::span<const uint64_t> rowMask);

    /**
     * Blend-free variants for an ALL-ONES realized row mask (every
     * mask word == ~0; SegmentTrace::rowMaskFull): INIT collapses to
     * a fill, gates and writes drop the `& mask` term from the inner
     * word loop. Bit-identical to the masked forms under that mask.
     */
    void logicHFull(const HalfGates &hg);
    void logicHFusedInit1Full(const HalfGates &hg);
    void writeFull(uint32_t slot, uint32_t value);
    void writeStripeFull(std::span<const StripeWrite> ws);

    /**
     * Replay one compiled program (sim/replay_program.hpp) on this
     * crossbar (index @p self): the pre-resolved, specialized form of
     * replaySegment used for frozen cached traces. Dispatches once
     * into a {Dense, Paged} x {all-full masks, partial} template
     * executor; @p work accumulates applied-op counts exactly as
     * replaySegment would (conserved across compilation).
     */
    void replayProgram(const ReplayProgram &prog, uint32_t self,
                       Stats *work);

    /**
     * Crossbar-major replay: apply every op of @p trace whose
     * crossbar-mask snapshot selects this crossbar (index @p self),
     * in segment order, while this crossbar's column-major state is
     * hot in cache. The inner loop of the trace-based engines
     * (sim/segment_trace.hpp). @p work, if non-null, accumulates one
     * op per application (two for fused INIT+gate pairs, one per
     * merged Write of a stripe) — the sharded engine's load-balance
     * diagnostic, conserved exactly across fusion.
     */
    void replaySegment(const SegmentTrace &trace, uint32_t self,
                       Stats *work);

    /**
     * Replay a run of consecutive LogicV trace ops sharing one
     * intra-partition index column-major: the whole run is applied to
     * each partition column while its words are hot, instead of
     * sweeping all partitions once per op. Ops whose crossbar-mask
     * snapshot does not select @p self are skipped.
     */
    void replayLogicVRun(const TraceOp *run, size_t n, uint32_t self,
                         Stats *work);

    /**
     * Execute a vertical logic op: gate from @p rowIn to @p rowOut on
     * the column at intra-partition index @p slot of every partition.
     */
    void logicV(Gate g, uint32_t rowIn, uint32_t rowOut, uint32_t slot);

    /** Strided N-bit write to all mask-selected rows (paper Fig. 6). */
    void write(uint32_t slot, uint32_t value,
               std::span<const uint64_t> rowMask);

    /**
     * Apply a stripe of distinct-slot strided writes under one shared
     * row mask, partition-major: for each partition, all stripe
     * columns are written while the realized mask word is loaded once
     * (the replay form of the trace fuser's adjacent-Write merge).
     * Bit-identical to applying the writes in order — the slots are
     * pairwise distinct, so the strided column sets are disjoint.
     */
    void writeStripe(std::span<const StripeWrite> ws,
                     std::span<const uint64_t> rowMask);

    /** Strided N-bit read of one row. */
    uint32_t read(uint32_t slot, uint32_t row) const;

    /** Unconditional single-row N-bit write (used by move ops). */
    void writeRow(uint32_t slot, uint32_t value, uint32_t row);

    /**
     * Bulk strided read: the values of @p count consecutive rows
     * [row, row+count) of slot @p slot into @p out, converted from
     * column-major storage to the row-major host buffer 64 rows at a
     * time via an in-register 64x64 bit-matrix transpose (Hacker's
     * Delight 7-3 adapted to LSB-0 numbering) — ~64 word ops per 64
     * values instead of 64*wordBits single-bit probes. Paged fast
     * path: a window whose source blocks are all absent (or all zero)
     * zero-fills the output with no transpose and no block probes.
     * Returns the 64-bit words moved through the transpose
     * (observability; 64 per transposed window).
     */
    uint64_t gatherRows(uint32_t slot, uint32_t row, uint32_t count,
                        uint32_t *out) const;

    /**
     * Bulk strided write of @p count consecutive rows from the
     * row-major @p values — the scatter inverse of gatherRows,
     * bit-identical to count writeRow calls. Zero-elision is
     * preserved: a plane word receiving no set bit only clears, so
     * absent paged blocks stay absent (an all-zero upload never
     * densifies anything), and an all-zero window skips the transpose
     * entirely. Returns words transposed.
     */
    uint64_t scatterRows(uint32_t slot, uint32_t row, uint32_t count,
                         const uint32_t *values);

    /** Raw bit access for tests. */
    bool bit(uint32_t row, uint32_t col) const;
    void setBit(uint32_t row, uint32_t col, bool v);

    /**
     * Refcounted copy-on-write image of the crossbar's full state at
     * the instant of the snapshot() call. Paged snapshots share every
     * present block with the source (O(live data) to take, zero block
     * copies); dense snapshots deep-copy the slab. A snapshot stays
     * valid after the source crossbar mutates or is destroyed.
     * Synchronisation contract: create/restore/destroy only while no
     * replay is mutating the SOURCE crossbar (see file header).
     */
    class Snapshot
    {
      public:
        Snapshot() = default;
        Snapshot(const Snapshot &o);
        Snapshot &operator=(const Snapshot &o);
        Snapshot(Snapshot &&o) noexcept;
        Snapshot &operator=(Snapshot &&o) noexcept;
        ~Snapshot();

        /** Strided N-bit read of one row, as Crossbar::read. */
        uint32_t read(uint32_t slot, uint32_t row) const;
        /** Raw bit access, as Crossbar::bit. */
        bool bit(uint32_t row, uint32_t col) const;

        /** Canonical non-zero-block walk of the snapshot image, as
         *  Crossbar::forEachNonZeroBlock. */
        void forEachNonZeroBlock(
            const std::function<void(uint32_t col, uint32_t b,
                                     const uint64_t *w, uint32_t n)>
                &fn) const;

      private:
        friend class Crossbar;
        /** Drop every block reference and empty the image. */
        void release();
        /** Words of block @p b of column @p col, or null if elided
         *  (dense snapshots are never elided). */
        const uint64_t *blockRO(uint32_t col, uint32_t b) const;

        const Geometry *geo_ = nullptr;
        uint32_t wordsPerCol_ = 0;
        uint32_t blocksPerCol_ = 0;
        std::shared_ptr<BlockPool> pool_;  //!< paged: shared block pool
        std::vector<uint32_t> table_;      //!< paged: refcounted ids
        std::vector<uint64_t> dense_;      //!< dense: deep slab copy
    };

    /** Checkpoint the current state (see Snapshot). */
    Snapshot snapshot() const;

    /**
     * Restore the state captured by @p s (which must come from a
     * crossbar of the same geometry and storage mode). Paged restore
     * is O(live data): the block table re-adopts the snapshot's
     * shared blocks, and subsequent mutation clones on write.
     */
    void restore(const Snapshot &s);

    /**
     * Re-elide every materialised block that has decayed to all-zero
     * (writes clear bits in place — elision is never checked on the
     * hot path). No-op for dense storage. Returns blocks elided.
     */
    uint64_t compact();

    /** Point-in-time storage footprint (never architectural state). */
    StorageGauges storageGauges() const;

    /**
     * CANONICAL walk of the state for serialization and checksums:
     * invoke @p fn for every block that holds at least one set bit,
     * ascending (col, block), with its words and used word count (the
     * tail block of a column may be short). A materialised all-zero
     * block is SKIPPED, and dense storage walks the same block grid —
     * so two crossbars in equal state produce the identical call
     * sequence regardless of storage mode or elision history (the
     * property that makes checkpoint images and state checksums
     * storage-independent).
     */
    void forEachNonZeroBlock(
        const std::function<void(uint32_t col, uint32_t b,
                                 const uint64_t *w, uint32_t n)> &fn)
        const;

    /**
     * Order-sensitive FNV-1a digest over the canonical non-zero-block
     * walk (positions + words). Equal states hash equal across
     * storage modes; the PYPIM_VERIFY_STATE machinery compares these
     * at batch and drain points to detect silent corruption.
     */
    uint64_t stateChecksum() const;

    /**
     * Reset to all-zero: dense zero-fills the slab; paged drops every
     * present block reference (keeping the table and pool for reuse).
     * The restore path's first step before loadBlock replays an image.
     */
    void resetState();

    /**
     * Overwrite block @p b of column @p col with @p n words from
     * @p w (checkpoint restore; COW-safe via blockRW). All-zero
     * payloads are skipped rather than densified.
     */
    void loadBlock(uint32_t col, uint32_t b, const uint64_t *w,
                   uint32_t n);

    /**
     * Install the owning pipeline's replaying flag: snapshot() and
     * restore() then panic if called while a batch replay is in
     * flight — enforcing the drain-point synchronisation contract
     * (file header) instead of relying on it.
     */
    void setBusyFlag(const std::atomic<bool> *busy) { busy_ = busy; }

    /**
     * Bit-exact state comparison (engine-parity tests). Both crossbars
     * must share a geometry; storage modes may differ — an absent
     * block compares equal to an all-zero dense region, so a paged
     * crossbar checks against the dense oracle directly.
     */
    bool sameState(const Crossbar &other) const;
    /** Bit-exact comparison against a snapshot of same geometry. */
    bool sameState(const Snapshot &s) const;

    const Geometry &geometry() const { return *geo_; }
    XbarStorage storage() const { return storage_; }

  private:
    uint64_t *colWords(uint32_t col)
    {
        return state_.data() + static_cast<size_t>(col) * wordsPerCol_;
    }
    const uint64_t *
    colWords(uint32_t col) const
    {
        return state_.data() + static_cast<size_t>(col) * wordsPerCol_;
    }

    /** Words in block @p b of a column (the tail block may be short). */
    uint32_t
    blockWords(uint32_t b) const
    {
        const uint32_t base = b * kBlockWords;
        return wordsPerCol_ - base < kBlockWords ? wordsPerCol_ - base
                                                 : kBlockWords;
    }

    /** Block id slot of (col, block) in the table. */
    size_t
    tableIndex(uint32_t col, uint32_t b) const
    {
        return static_cast<size_t>(col) * blocksPerCol_ + b;
    }

    /** Read-only block words, or null if absent. Never allocates. */
    const uint64_t *blockRO(uint32_t col, uint32_t b) const;
    /**
     * Mutable block words, materialising a zeroed block if absent and
     * cloning first if shared with a snapshot (copy-on-write). May
     * grow the pool: fetch ALL read-only input pointers AFTER the
     * output's blockRW within one (section, block) step.
     */
    uint64_t *blockRW(uint32_t col, uint32_t b);
    /**
     * Mutable block words of a PRESENT block, or null if absent —
     * for ops that can only clear bits (Init0, NOR/NOT outputs),
     * where an absent output stays absent. Clones if shared.
     */
    uint64_t *blockIfPresent(uint32_t col, uint32_t b);

    /** Allocate the lazy block table / pool on first densification. */
    void ensureTable();

    // Paged op bodies (crossbar.cpp); the public entry points branch
    // once per op so the dense loops stay byte-identical to the
    // historical implementation.
    void logicHPaged(const HalfGates &hg,
                     std::span<const uint64_t> rowMask);
    void logicHFusedInit1Paged(const HalfGates &hg,
                               std::span<const uint64_t> rowMask);
    void logicHFullPaged(const HalfGates &hg);
    void logicHFusedInit1FullPaged(const HalfGates &hg);
    void writeFullPaged(uint32_t slot, uint32_t value);
    void writeStripeFullPaged(std::span<const StripeWrite> ws);
    /**
     * The compiled-replay executor, specialized over the storage
     * representation and the all-masks-full fast path (crossbar.cpp
     * instantiates all four). kFull deletes the mask blend from every
     * inner loop; the kFull=false body still takes the blend-free
     * kernels per instruction when that instruction's mask is full.
     */
    template <bool kPaged, bool kFull>
    void replayProgramT(const ReplayProgram &prog, uint32_t self,
                        Stats *work);
    void writePaged(uint32_t slot, uint32_t value,
                    std::span<const uint64_t> rowMask);
    void writeStripePaged(std::span<const StripeWrite> ws,
                          std::span<const uint64_t> rowMask);
    void logicVPaged(Gate g, uint32_t rowIn, uint32_t rowOut,
                     uint32_t slot);
    uint64_t gatherRowsPaged(uint32_t slot, uint32_t row,
                             uint32_t count, uint32_t *out) const;
    uint64_t scatterRowsPaged(uint32_t slot, uint32_t row,
                              uint32_t count, const uint32_t *values);

    const Geometry *geo_;
    uint32_t wordsPerCol_;
    uint32_t blocksPerCol_;
    XbarStorage storage_;
    std::vector<uint64_t> state_;      //!< dense slab (empty if paged)
    std::vector<uint32_t> table_;      //!< paged block ids (lazy)
    std::shared_ptr<BlockPool> pool_;  //!< paged block pool (lazy)
    /** Pipeline's replaying flag (null when not pipelined). */
    const std::atomic<bool> *busy_ = nullptr;
};

} // namespace pypim

#endif // PYPIM_SIM_CROSSBAR_HPP
