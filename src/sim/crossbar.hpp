/**
 * @file
 * Bit-level state of one memristive crossbar array.
 *
 * Storage is column-major: each bitline (column) is kept as
 * ceil(rows/64) 64-bit words, so one horizontal stateful-logic gate
 * over all rows costs O(rows/64) word operations — the CPU analogue of
 * the paper's condensed-format GPU optimisation (§VI "Memory"/"Logic").
 *
 * Stateful-logic fidelity: NOT/NOR can only switch the output memristor
 * from 1 towards 0 (paper §II-A — the output is expected to be
 * initialised to logical one first). We model exactly that:
 * out_new = out_old AND NOT(OR of inputs). A driver that forgets the
 * INIT therefore computes device-accurate garbage, which the test
 * suite detects.
 */
#ifndef PYPIM_SIM_CROSSBAR_HPP
#define PYPIM_SIM_CROSSBAR_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "uarch/microop.hpp"
#include "uarch/partition.hpp"

namespace pypim
{

struct SegmentTrace;
struct Stats;
struct TraceOp;

/** One h x w crossbar array with stateful-logic semantics. */
class Crossbar
{
  public:
    explicit Crossbar(const Geometry &geo);

    /**
     * Execute an expanded horizontal logic op on all mask-selected
     * rows (@p rowMask is the realized row-mask bit vector).
     */
    void logicH(const HalfGates &hg, std::span<const uint64_t> rowMask);

    /**
     * INIT1 of the output columns fused with the NOR/NOT expanded in
     * @p hg: one pass computing out = (out & ~mask) | (~(inA|inB) &
     * mask), bit-identical to logicH(INIT1) followed by logicH(@p hg)
     * when no input aliases an output (the trace builder's fusion
     * precondition).
     */
    void logicHFusedInit1(const HalfGates &hg,
                          std::span<const uint64_t> rowMask);

    /**
     * Crossbar-major replay: apply every op of @p trace whose
     * crossbar-mask snapshot selects this crossbar (index @p self),
     * in segment order, while this crossbar's column-major state is
     * hot in cache. The inner loop of the trace-based engines
     * (sim/segment_trace.hpp). @p work, if non-null, accumulates one
     * op per application (two for fused INIT+gate pairs) — the
     * sharded engine's load-balance diagnostic.
     */
    void replaySegment(const SegmentTrace &trace, uint32_t self,
                       Stats *work);

    /**
     * Replay a run of consecutive LogicV trace ops sharing one
     * intra-partition index column-major: the whole run is applied to
     * each partition column while its words are hot, instead of
     * sweeping all partitions once per op. Ops whose crossbar-mask
     * snapshot does not select @p self are skipped.
     */
    void replayLogicVRun(const TraceOp *run, size_t n, uint32_t self,
                         Stats *work);

    /**
     * Execute a vertical logic op: gate from @p rowIn to @p rowOut on
     * the column at intra-partition index @p slot of every partition.
     */
    void logicV(Gate g, uint32_t rowIn, uint32_t rowOut, uint32_t slot);

    /** Strided N-bit write to all mask-selected rows (paper Fig. 6). */
    void write(uint32_t slot, uint32_t value,
               std::span<const uint64_t> rowMask);

    /** Strided N-bit read of one row. */
    uint32_t read(uint32_t slot, uint32_t row) const;

    /** Unconditional single-row N-bit write (used by move ops). */
    void writeRow(uint32_t slot, uint32_t value, uint32_t row);

    /** Raw bit access for tests. */
    bool bit(uint32_t row, uint32_t col) const;
    void setBit(uint32_t row, uint32_t col, bool v);

    /**
     * Bit-exact state comparison (engine-parity tests). Both crossbars
     * must share a geometry.
     */
    bool sameState(const Crossbar &other) const
    {
        return state_ == other.state_;
    }

    const Geometry &geometry() const { return *geo_; }

  private:
    uint64_t *colWords(uint32_t col)
    {
        return state_.data() + static_cast<size_t>(col) * wordsPerCol_;
    }
    const uint64_t *
    colWords(uint32_t col) const
    {
        return state_.data() + static_cast<size_t>(col) * wordsPerCol_;
    }

    const Geometry *geo_;
    uint32_t wordsPerCol_;
    std::vector<uint64_t> state_;
};

} // namespace pypim

#endif // PYPIM_SIM_CROSSBAR_HPP
