#include "sim/sharded_engine.hpp"

#include <algorithm>

#include "sim/replay_program.hpp"

namespace pypim
{

namespace
{

/** More workers than OWNED crossbars can never help: a sub-device
 *  engine shards only its slice. */
uint32_t
clampWorkers(uint32_t threads, size_t owned)
{
    return std::min(std::max(1u, threads),
                    std::max(1u, static_cast<uint32_t>(owned)));
}

/** Stagger sibling sub-device pools onto disjoint cores: sub-device
 *  d (slice index xbBase / sliceSize) starts after the d * width
 *  cores of the pools before it. 0 for a monolithic engine. */
uint32_t
pinBaseOf(uint32_t xbBase, size_t owned, uint32_t width)
{
    return owned == 0
               ? 0
               : xbBase / static_cast<uint32_t>(owned) * width;
}

} // namespace

ShardedEngine::ShardedEngine(const Geometry &geo,
                             std::vector<Crossbar> &xbs,
                             uint32_t xbBase, const HTree &htree,
                             MaskState &mask, Stats &stats,
                             uint32_t threads, bool pinWorkers)
    : ExecutionEngine(geo, xbs, xbBase, htree, mask, stats),
      pool_(clampWorkers(threads, xbs.size()), pinWorkers,
            pinBaseOf(xbBase, xbs.size(),
                      clampWorkers(threads, xbs.size()))),
      work_(pool_.size())
{
}

void
ShardedEngine::execute(const Word *ops, size_t n)
{
    forEachSegment(ops, n, [&](const Word *seg, size_t len) {
        buildSegmentTrace(seg, len, geo_, mask_, stats_, trace_);
        replayTrace(trace_);
    });
}

void
ShardedEngine::replayTrace(const SegmentTrace &trace)
{
    if (trace.empty())
        return;  // mask-only segment: fully absorbed by the pre-pass
    const uint32_t lo = std::max(trace.xbLo, sliceLo());
    const uint32_t hi = std::min(trace.xbHi, sliceHi());
    if (lo >= hi)
        return;  // hull entirely outside this sub-device's slice
    const uint32_t workers = pool_.size();
    if (workers == 1 || hi - lo <= 1) {
        Stats local;
        for (uint32_t xb = lo; xb < hi; ++xb)
            xbAt(xb).replaySegment(trace, xb, &local);
        work_[0] += local;
        return;
    }
    // Work-stealing schedule over the segment's crossbar hull: chunks
    // are claimed from a shared atomic counter instead of fixed
    // contiguous per-worker blocks, so a strided crossbar mask (which
    // leaves some blocks mostly masked-out) cannot load-imbalance the
    // workers. The chunk is kept a few crossbars wide: small enough
    // that expensive crossbars spread over the pool, large enough to
    // amortise the atomic claim and preserve block locality.
    const uint32_t chunk =
        std::max(1u, (hi - lo) / (workers * 8));
    next_.store(lo, std::memory_order_relaxed);
    pool_.parallelFor(workers, [&](uint32_t w) {
        // Accumulate the applied-work diagnostics on the stack and
        // flush once per segment: work_ entries are adjacent in
        // memory, and per-application increments there would
        // ping-pong cache lines between workers.
        Stats local;
        for (;;) {
            const uint32_t start =
                next_.fetch_add(chunk, std::memory_order_relaxed);
            if (start >= hi)
                break;
            const uint32_t end = std::min(start + chunk, hi);
            for (uint32_t xb = start; xb < end; ++xb)
                xbAt(xb).replaySegment(trace, xb, &local);
        }
        work_[w] += local;
    });
}

void
ShardedEngine::replayProgram(const ReplayProgram &prog)
{
    if (prog.empty())
        return;
    const uint32_t lo = std::max(prog.xbLo, sliceLo());
    const uint32_t hi = std::min(prog.xbHi, sliceHi());
    if (lo >= hi)
        return;
    const uint32_t workers = pool_.size();
    if (workers == 1 || hi - lo <= 1) {
        Stats local;
        for (uint32_t xb = lo; xb < hi; ++xb)
            xbAt(xb).replayProgram(prog, xb, &local);
        work_[0] += local;
        return;
    }
    const uint32_t chunk = std::max(1u, (hi - lo) / (workers * 8));
    next_.store(lo, std::memory_order_relaxed);
    pool_.parallelFor(workers, [&](uint32_t w) {
        Stats local;
        for (;;) {
            const uint32_t start =
                next_.fetch_add(chunk, std::memory_order_relaxed);
            if (start >= hi)
                break;
            const uint32_t end = std::min(start + chunk, hi);
            for (uint32_t xb = start; xb < end; ++xb)
                xbAt(xb).replayProgram(prog, xb, &local);
        }
        work_[w] += local;
    });
}

} // namespace pypim
