#include "sim/sharded_engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pypim
{

namespace
{

/** True iff the op must serialise the whole crossbar array. */
inline bool
isBarrier(OpType t)
{
    return t == OpType::Move || t == OpType::Read;
}

} // namespace

ShardedEngine::ShardedEngine(const Geometry &geo,
                             std::vector<Crossbar> &xbs,
                             const HTree &htree, MaskState &mask,
                             Stats &stats, uint32_t threads)
    : ExecutionEngine(geo, xbs, htree, mask, stats),
      pool_(std::min(std::max(1u, threads), geo.numCrossbars))
{
    // Contiguous blocks of ceil(crossbars / shards) crossbars: dense
    // crossbar masks (the common case) balance exactly, and block
    // locality keeps each worker inside its own slice of the state.
    const uint32_t nShards = pool_.size();
    const uint32_t per = (geo.numCrossbars + nShards - 1) / nShards;
    shards_.resize(nShards);
    work_.resize(nShards);
    for (uint32_t s = 0; s < nShards; ++s) {
        shards_[s].lo = std::min(s * per, geo.numCrossbars);
        shards_[s].hi = std::min((s + 1) * per, geo.numCrossbars);
        shards_[s].mask.reset(geo);
    }
}

void
ShardedEngine::execute(const Word *ops, size_t n)
{
    size_t i = 0;
    while (i < n) {
        if (isBarrier(enc::peekType(ops[i]))) {
            serialPerform(MicroOp::decode(ops[i]));
            ++i;
            continue;
        }
        size_t j = i + 1;
        while (j < n && !isBarrier(enc::peekType(ops[j])))
            ++j;
        runSegment(ops + i, j - i);
        i = j;
    }
}

void
ShardedEngine::runSegment(const Word *ops, size_t n)
{
    // Segment-entry snapshot: the workers' replicas start here, while
    // the authoritative mask state advances during the pre-scan.
    entryXb_ = mask_.xb;
    entryRow_ = mask_.row;
    entryRowWords_ = mask_.rowWords;

    // Pre-scan: decode once, validate everything (so a malformed op
    // aborts before any crossbar is touched), pre-expand half-gates,
    // record the architectural stats and advance the mask state.
    decoded_.resize(n);
    halfGates_.clear();
    size_t workOps = 0;
    for (size_t i = 0; i < n; ++i) {
        MicroOp &op = decoded_[i];
        op = MicroOp::decode(ops[i]);
        switch (op.type) {
          case OpType::CrossbarMask:
            op.range.validate(geo_.numCrossbars, "crossbar");
            mask_.xb = op.range;
            stats_.record(OpClass::CrossbarMask);
            break;
          case OpType::RowMask:
            op.range.validate(geo_.rows, "row");
            mask_.setRow(op.range, geo_.rows);
            stats_.record(OpClass::RowMask);
            break;
          case OpType::Write:
            fatalIf(op.index >= geo_.slots(),
                    "write: slot index out of range");
            stats_.record(OpClass::Write);
            ++workOps;
            break;
          case OpType::LogicH:
            // Stash the expansion index in the decoded op's unused
            // value field so workers can look it up without a map.
            op.value = static_cast<uint32_t>(halfGates_.size());
            halfGates_.push_back(expandLogicH(op, geo_));
            stats_.record(OpClass::LogicH);
            if (op.gate == Gate::Nor || op.gate == Gate::Not)
                ++stats_.logicGates;
            else
                ++stats_.logicInits;
            ++workOps;
            break;
          case OpType::LogicV:
            fatalIf(op.index >= geo_.slots(),
                    "logicV: slot index out of range");
            fatalIf(op.rowIn >= geo_.rows || op.rowOut >= geo_.rows,
                    "logicV: row out of range");
            stats_.record(OpClass::LogicV);
            if (op.gate == Gate::Not)
                ++stats_.logicGates;
            else
                ++stats_.logicInits;
            ++workOps;
            break;
          default:
            panic("sharded: barrier op inside a segment");
        }
    }
    if (workOps == 0)
        return;  // mask-only segment: already fully applied above

    pool_.parallelFor(
        static_cast<uint32_t>(shards_.size()), [&](uint32_t s) {
            Shard &shard = shards_[s];
            shard.mask.xb = entryXb_;
            shard.mask.row = entryRow_;
            shard.mask.rowWords = entryRowWords_;
            applySegment(shard, work_[s], n);
        });
}

void
ShardedEngine::applySegment(Shard &s, Stats &work, size_t n) const
{
    // Accumulate the applied-work diagnostics on the stack and flush
    // once per segment: work_ entries are adjacent in memory, and
    // per-application increments there would ping-pong cache lines
    // between workers at shard boundaries.
    Stats local;
    // Iterate the selected crossbars of the shard's current mask that
    // fall inside the shard's block [lo, hi).
    const auto forEachOwned = [&](auto &&fn) {
        const Range &r = s.mask.xb;
        if (r.start >= s.hi || r.stop < s.lo)
            return;
        uint64_t first = r.start;
        if (first < s.lo)
            first += (s.lo - r.start + r.step - 1) / r.step *
                     static_cast<uint64_t>(r.step);
        for (uint64_t i = first; i <= r.stop && i < s.hi; i += r.step)
            fn(static_cast<uint32_t>(i));
    };

    for (size_t i = 0; i < n; ++i) {
        const MicroOp &op = decoded_[i];
        switch (op.type) {
          case OpType::CrossbarMask:
            s.mask.xb = op.range;
            break;
          case OpType::RowMask:
            s.mask.setRow(op.range, geo_.rows);
            break;
          case OpType::Write:
            forEachOwned([&](uint32_t xb) {
                xbs_[xb].write(op.index, op.value, s.mask.rowWords);
                local.record(OpClass::Write);
            });
            break;
          case OpType::LogicH: {
            const HalfGates &hg = halfGates_[op.value];
            forEachOwned([&](uint32_t xb) {
                xbs_[xb].logicH(hg, s.mask.rowWords);
                local.record(OpClass::LogicH);
            });
            break;
          }
          case OpType::LogicV:
            forEachOwned([&](uint32_t xb) {
                xbs_[xb].logicV(op.gate, op.rowIn, op.rowOut,
                                op.index);
                local.record(OpClass::LogicV);
            });
            break;
          default:
            break;  // unreachable: pre-scan rejected barrier ops
        }
    }
    work += local;
}

} // namespace pypim
