#include "sim/sharded_engine.hpp"

#include <algorithm>

namespace pypim
{

ShardedEngine::ShardedEngine(const Geometry &geo,
                             std::vector<Crossbar> &xbs,
                             const HTree &htree, MaskState &mask,
                             Stats &stats, uint32_t threads)
    : ExecutionEngine(geo, xbs, htree, mask, stats),
      pool_(std::min(std::max(1u, threads), geo.numCrossbars))
{
    // Contiguous blocks of ceil(crossbars / shards) crossbars: dense
    // crossbar masks (the common case) balance exactly, and block
    // locality keeps each worker inside its own slice of the state.
    const uint32_t nShards = pool_.size();
    const uint32_t per = (geo.numCrossbars + nShards - 1) / nShards;
    shards_.resize(nShards);
    work_.resize(nShards);
    for (uint32_t s = 0; s < nShards; ++s) {
        shards_[s].lo = std::min(s * per, geo.numCrossbars);
        shards_[s].hi = std::min((s + 1) * per, geo.numCrossbars);
    }
}

void
ShardedEngine::execute(const Word *ops, size_t n)
{
    forEachSegment(ops, n, [&](const Word *seg, size_t len) {
        runSegment(seg, len);
    });
}

void
ShardedEngine::runSegment(const Word *ops, size_t n)
{
    buildSegmentTrace(ops, n, geo_, mask_, stats_, trace_);
    if (trace_.empty())
        return;  // mask-only segment: fully absorbed by the pre-pass

    pool_.parallelFor(
        static_cast<uint32_t>(shards_.size()), [&](uint32_t s) {
            const Shard &shard = shards_[s];
            const uint32_t lo = std::max(shard.lo, trace_.xbLo);
            const uint32_t hi = std::min(shard.hi, trace_.xbHi);
            if (lo >= hi)
                return;
            // Accumulate the applied-work diagnostics on the stack
            // and flush once per segment: work_ entries are adjacent
            // in memory, and per-application increments there would
            // ping-pong cache lines between workers at shard
            // boundaries.
            Stats local;
            for (uint32_t xb = lo; xb < hi; ++xb)
                xbs_[xb].replaySegment(trace_, xb, &local);
            work_[s] += local;
        });
}

} // namespace pypim
