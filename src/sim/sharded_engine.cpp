#include "sim/sharded_engine.hpp"

#include <algorithm>

namespace pypim
{

ShardedEngine::ShardedEngine(const Geometry &geo,
                             std::vector<Crossbar> &xbs,
                             const HTree &htree, MaskState &mask,
                             Stats &stats, uint32_t threads)
    : ExecutionEngine(geo, xbs, htree, mask, stats),
      pool_(std::min(std::max(1u, threads), geo.numCrossbars)),
      work_(pool_.size())
{
}

void
ShardedEngine::execute(const Word *ops, size_t n)
{
    forEachSegment(ops, n, [&](const Word *seg, size_t len) {
        buildSegmentTrace(seg, len, geo_, mask_, stats_, trace_);
        replayTrace(trace_);
    });
}

void
ShardedEngine::replayTrace(const SegmentTrace &trace)
{
    if (trace.empty())
        return;  // mask-only segment: fully absorbed by the pre-pass
    const uint32_t lo = trace.xbLo;
    const uint32_t hi = trace.xbHi;
    const uint32_t workers = pool_.size();
    if (workers == 1 || hi - lo <= 1) {
        Stats local;
        for (uint32_t xb = lo; xb < hi; ++xb)
            xbs_[xb].replaySegment(trace, xb, &local);
        work_[0] += local;
        return;
    }
    // Work-stealing schedule over the segment's crossbar hull: chunks
    // are claimed from a shared atomic counter instead of fixed
    // contiguous per-worker blocks, so a strided crossbar mask (which
    // leaves some blocks mostly masked-out) cannot load-imbalance the
    // workers. The chunk is kept a few crossbars wide: small enough
    // that expensive crossbars spread over the pool, large enough to
    // amortise the atomic claim and preserve block locality.
    const uint32_t chunk =
        std::max(1u, (hi - lo) / (workers * 8));
    next_.store(lo, std::memory_order_relaxed);
    pool_.parallelFor(workers, [&](uint32_t w) {
        // Accumulate the applied-work diagnostics on the stack and
        // flush once per segment: work_ entries are adjacent in
        // memory, and per-application increments there would
        // ping-pong cache lines between workers.
        Stats local;
        for (;;) {
            const uint32_t start =
                next_.fetch_add(chunk, std::memory_order_relaxed);
            if (start >= hi)
                break;
            const uint32_t end = std::min(start + chunk, hi);
            for (uint32_t xb = start; xb < end; ++xb)
                xbs_[xb].replaySegment(trace, xb, &local);
        }
        work_[w] += local;
    });
}

} // namespace pypim
