#include "sim/fault.hpp"

#include <cstdlib>

#include "sim/crossbar.hpp"

namespace pypim
{

namespace
{

uint64_t
parseU64(const std::string &key, const std::string &val)
{
    fatalIf(val.empty(), "PYPIM_FAULTS: empty value for '" + key + "'");
    errno = 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(val.c_str(), &end, 10);
    fatalIf(end != val.c_str() + val.size() || errno == ERANGE ||
                val[0] == '-' || val[0] == '+',
            "PYPIM_FAULTS: '" + val + "' is not a non-negative integer "
            "(key '" + key + "')");
    return n;
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &s)
{
    FaultSpec spec;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t colon = s.find(':', pos);
        if (colon == std::string::npos)
            colon = s.size();
        const std::string field = s.substr(pos, colon - pos);
        pos = colon + 1;
        if (field.empty())
            continue;
        const size_t eq = field.find('=');
        fatalIf(eq == std::string::npos,
                "PYPIM_FAULTS: field '" + field +
                    "' is not key=value");
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        if (key == "seed") {
            spec.seed = parseU64(key, val);
        } else if (key == "flip") {
            const uint64_t p = parseU64(key, val);
            fatalIf(p > 100,
                    "PYPIM_FAULTS: flip=" + val +
                        " is not a percentage in [0, 100]");
            spec.flipPct = static_cast<uint32_t>(p);
        } else if (key == "stuck") {
            const uint64_t k = parseU64(key, val);
            fatalIf(k > 1024,
                    "PYPIM_FAULTS: stuck=" + val +
                        " exceeds 1024 pins");
            spec.stuckBits = static_cast<uint32_t>(k);
        } else if (key == "fail") {
            spec.failAtBatch = parseU64(key, val);
        } else if (key == "poison") {
            spec.poisonAtBatch = parseU64(key, val);
        } else if (key == "dev") {
            const uint64_t d = parseU64(key, val);
            fatalIf(d > INT32_MAX, "PYPIM_FAULTS: dev=" + val +
                                       " out of range");
            spec.device = static_cast<int32_t>(d);
        } else {
            fatal("PYPIM_FAULTS: unknown key '" + key +
                  "' (expected seed|flip|stuck|fail|poison|dev)");
        }
    }
    return spec;
}

FaultInjector::FaultInjector(const FaultSpec &spec,
                             uint32_t deviceIndex, uint32_t sliceLo,
                             uint32_t sliceCount, const Geometry &geo)
    : spec_(spec), sliceCount_(sliceCount), geo_(&geo),
      // Derive a distinct, reproducible stream per sub-device: the
      // same spec at a different PYPIM_DEVICES count targets the same
      // slice differently, but re-running the same configuration is
      // always bit-identical.
      rng_(spec.seed * 0x9E3779B97F4A7C15ull + deviceIndex + 1)
{
    (void)sliceLo;
    active_ = spec.any() && (spec.device < 0 ||
                             static_cast<uint32_t>(spec.device) ==
                                 deviceIndex);
}

void
FaultInjector::maybeFail()
{
    if (!active_)
        return;
    ++batch_;
    if (suppressed_ || failFired_ || spec_.failAtBatch == 0 ||
        batch_ != spec_.failAtBatch)
        return;
    failFired_ = true;
    ++injected_;
    throw InjectedFault("injected fault: sub-device replay failed at "
                        "batch " + std::to_string(batch_));
}

void
FaultInjector::corrupt(std::vector<Crossbar> &xbs)
{
    if (!active_ || xbs.empty())
        return;
    const uint32_t rows = geo_->rows;
    const uint32_t cols = geo_->cols;

    // Persistent stuck-at pins: chosen once, forced after EVERY batch
    // (also during recovery replay — hardware damage does not heal).
    if (spec_.stuckBits != 0 && stuck_.empty()) {
        stuck_.reserve(spec_.stuckBits);
        for (uint32_t i = 0; i < spec_.stuckBits; ++i) {
            StuckPin p;
            p.xb = static_cast<uint32_t>(rng_() % xbs.size());
            p.row = static_cast<uint32_t>(rng_() % rows);
            p.col = static_cast<uint32_t>(rng_() % cols);
            p.value = (rng_() & 1) != 0;
            stuck_.push_back(p);
        }
    }
    for (const StuckPin &p : stuck_) {
        Crossbar &xb = xbs[p.xb];
        if (xb.bit(p.row, p.col) != p.value) {
            xb.setBit(p.row, p.col, p.value);
            ++injected_;
        }
    }

    if (suppressed_)
        return;

    // Transient single-bit upset with per-batch probability flip%.
    if (spec_.flipPct != 0 &&
        rng_() % 100 < spec_.flipPct) {
        const uint32_t x = static_cast<uint32_t>(rng_() % xbs.size());
        const uint32_t r = static_cast<uint32_t>(rng_() % rows);
        const uint32_t c = static_cast<uint32_t>(rng_() % cols);
        xbs[x].setBit(r, c, !xbs[x].bit(r, c));
        ++injected_;
    }

    // One-shot multi-bit scribble (a corrupted hand-off buffer).
    if (!poisonFired_ && spec_.poisonAtBatch != 0 &&
        batch_ >= spec_.poisonAtBatch) {
        poisonFired_ = true;
        const uint32_t x = static_cast<uint32_t>(rng_() % xbs.size());
        for (int i = 0; i < 16; ++i) {
            const uint32_t r = static_cast<uint32_t>(rng_() % rows);
            const uint32_t c = static_cast<uint32_t>(rng_() % cols);
            xbs[x].setBit(r, c, !xbs[x].bit(r, c));
        }
        ++injected_;
    }
}

} // namespace pypim
