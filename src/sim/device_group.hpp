/**
 * @file
 * Multi-device fan-out: one logical PIM device sharded across N
 * independent Simulators at H-tree group boundaries.
 *
 * The ROADMAP's scale-out step: real PIM deployments aggregate
 * thousands of independent arrays, and the natural cut through the
 * paper's §III-F hierarchy is a 4-ary H-tree group boundary — the
 * crossbar space [0, numCrossbars) splits into N equal contiguous
 * slices, so each sub-device's crossbars share an id prefix and every
 * intra-slice H-tree route stays inside its sub-device.
 *
 * Execution model: BROADCAST EVERYTHING, APPLY THE OWNED SLICE.
 * Every submitted batch (and every cached shared BatchTrace handle)
 * is forwarded to all sub-devices unchanged, in GLOBAL crossbar
 * coordinates. Each sub-device advances the full mask state, records
 * the full architectural statistics (including the full-mask H-tree
 * cost of every Move — the top-level cost model is unchanged), and
 * applies state only to its slice (see Simulator's slice
 * constructor). Consequences:
 *
 *  - architectural Stats and mask state are REPLICATED — bit-identical
 *    on every sub-device and to a monolithic device, by construction;
 *  - a warm trace-cache hit submits ONE shared immutable BatchTrace
 *    to all sub-devices with zero re-decoding (the handles are
 *    geometry-bound, not slice-bound);
 *  - with the pipeline enabled every sub-device is an independent
 *    trace consumer with its own hand-off queue and engine — replay
 *    of the N slices overlaps across N consumer threads.
 *
 * The ONLY inter-device traffic is a Move whose (source, destination)
 * pair straddles a slice boundary. The group scans each raw batch
 * (tracking the in-stream crossbar mask), splits it at every such
 * Move, and performs an explicit host-mediated exchange that
 * preserves the op's read-all-then-write-all semantics:
 *
 *   1. stage: read every boundary-crossing source value from its
 *      owning sub-device (draining it first — all prior ops have
 *      landed, nothing later has been submitted, so this observes the
 *      pre-move state);
 *   2. broadcast the Move op itself to all sub-devices: each one
 *      validates it, records the identical full-mask H-tree cycle
 *      cost, and applies its intra-slice transfers;
 *   3. land: write the staged values into the destination
 *      sub-devices (draining each first, so the local application —
 *      which may READ a boundary destination as the source of a
 *      chained transfer — is complete).
 *
 * Boundary traffic is counted in traffic() — the observability and
 * test hook for "intra-group traffic never leaves its sub-device".
 * prepareTrace refuses (returns null for) streams containing a
 * boundary-crossing Move, so cached traces are always pure
 * broadcast; the driver transparently falls back to raw-stream replay
 * for such signatures (R-type translations contain no Moves, so this
 * is a robustness guard, not a hot path).
 *
 * Error streams: a malformed op throws at the submit containing it,
 * after the valid prefix was forwarded (the serial engine's
 * semantics). Sub-devices not yet fed when the first one throws may
 * diverge from that point on — error recovery across shards is
 * explicitly out of scope, as it is for the engines.
 *
 * TRANSPORT. The fan-out above is a TRANSPORT decision, selected by
 * EngineConfig::transport (PYPIM_TRANSPORT):
 *
 *  - INPROC (default): the N Simulators live in this process and are
 *    called directly — everything described so far.
 *  - SOCKET: the N slices live in forked worker processes behind
 *    sim/transport.hpp's framed protocol. sims_ stays EMPTY; the
 *    group keeps a host-side shadow of the replicated crossbar mask
 *    (seeding the same Move scan, so traffic() counts identically), a
 *    trace-build mirror for prepareTrace (sim/trace_wire.hpp — each
 *    frozen trace crosses the wire once per worker, then replays by
 *    signature), and the boundary exchange stages/lands cell values
 *    through batched wire messages. Architectural Stats, masks and
 *    state parity with inproc is bit-exact (the multi-device parity
 *    suite asserts it); the one contract difference is error TIMING:
 *    a worker-side submit error surfaces at the next synchronous
 *    message (flush/read/stats — the report-at-sync rule), not at the
 *    submit call itself. Direct state access (sub(), crossbar())
 *    throws — use the checkpoint-image path instead. A dead worker
 *    process surfaces as WorkerDied (a DeviceFault) and is respawned
 *    and rebuilt by the recovery layer's restore.
 */
#ifndef PYPIM_SIM_DEVICE_GROUP_HPP
#define PYPIM_SIM_DEVICE_GROUP_HPP

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "sim/simulator.hpp"
#include "sim/sink.hpp"
#include "sim/transport.hpp"

namespace pypim
{

/** N-Simulator shard of one logical device behind the sink seam. */
class SimulatorGroup : public OperationSink
{
  public:
    /**
     * Shard @p geo's crossbar space across ec.devices sub-devices
     * (power of two; clamped to the crossbar count, so small test
     * geometries degrade gracefully instead of failing). Every
     * sub-device runs the engine/pipeline configuration of @p ec.
     */
    SimulatorGroup(const Geometry &geo, const EngineConfig &ec);

    /** Cross-device traffic counters (scanned submissions; all zero
     *  while devices() == 1, where no scanning happens). */
    struct Traffic
    {
        uint64_t moveOps = 0;           //!< Move ops observed
        uint64_t moveTransfers = 0;     //!< per-crossbar-pair transfers
        uint64_t boundaryMoves = 0;     //!< Moves needing an exchange
        uint64_t boundaryTransfers = 0; //!< pairs crossing a boundary
    };

    uint32_t devices() const { return devices_; }
    /** Crossbars per slice (numCrossbars / devices). */
    uint32_t crossbarsPerDevice() const { return perDevice_; }
    /** Sub-device owning global crossbar @p xb. */
    uint32_t deviceOf(uint32_t xb) const { return xb / perDevice_; }

    /** True iff the sub-devices live in worker processes (socket
     *  transport): direct state access — sub(), crossbar() — is
     *  unavailable; use fetchRemoteImage()/restoreRemoteImage(). */
    bool remote() const { return transport_ != nullptr; }
    const Geometry &geometry() const { return geo_; }

    Simulator &
    sub(uint32_t d)
    {
        fatalIf(remote(), "sub: state lives in worker processes under "
                          "the socket transport");
        return *sims_.at(d);
    }
    const Simulator &
    sub(uint32_t d) const
    {
        fatalIf(remote(), "sub: state lives in worker processes under "
                          "the socket transport");
        return *sims_.at(d);
    }

    /** Crossbar state by GLOBAL id, routed to the owning sub-device
     *  (which drains its pipeline first). */
    Crossbar &
    crossbar(uint32_t xb)
    {
        fatalIf(remote(), "crossbar: state lives in worker processes "
                          "under the socket transport");
        return sims_.at(deviceOf(xb))->crossbar(xb);
    }
    const Crossbar &
    crossbar(uint32_t xb) const
    {
        fatalIf(remote(), "crossbar: state lives in worker processes "
                          "under the socket transport");
        return sims_.at(deviceOf(xb))->crossbar(xb);
    }

    /**
     * Architectural statistics of the logical device: the counters
     * are replicated across sub-devices (every one sees the whole
     * stream), so this is sub-device 0's view — identical to a
     * monolithic device fed the same program. Read-only: mutating one
     * replica would break the invariant; reset with clearStats().
     */
    const Stats &
    stats()
    {
        if (remote()) {
            statsCache_ = transport_->fetchStats(0);
            return statsCache_;
        }
        return sims_[0]->stats();
    }
    const Stats &
    stats() const
    {
        if (remote()) {
            statsCache_ = transport_->fetchStats(0);
            return statsCache_;
        }
        return sims_[0]->stats();
    }

    /**
     * Clear the architectural counters on EVERY sub-device — the only
     * way to reset a sharded device without breaking the replicated-
     * stats invariant (clearing stats() alone would touch just
     * sub-device 0's view) — and the traffic() counters with them, so
     * a clear-then-measure phase deltas both consistently.
     */
    void
    clearStats()
    {
        if (remote())
            transport_->clearStatsAll();
        else
            for (auto &s : sims_)
                s->stats().clear();
        traffic_ = Traffic();
    }

    const Traffic &traffic() const { return traffic_; }

    /** Host-side wire counters: bytes, round trips, trace-cache wire
     *  hits, exchange latency (all zero under the inproc transport). */
    WireTelemetry
    wireTelemetry() const
    {
        return remote() ? transport_->telemetry() : WireTelemetry();
    }
    /** Copy the wire counters into @p s's shard-transport fields. */
    void
    foldWireStats(Stats &s) const
    {
        const WireTelemetry t = wireTelemetry();
        s.wireBytesTx = t.bytesTx;
        s.wireBytesRx = t.bytesRx;
        s.wireRoundTrips = t.roundTrips;
        s.wireTraceHits = t.traceHits;
    }

    /** Suppress/unsuppress every sub-device's fault injector — the
     *  recovery layer's re-replay window (works on both transports). */
    void suppressFaults(bool on);

    /** Assemble / restore the logical device's CheckpointImage over
     *  the wire — the socket transport's only state-access path (the
     *  checkpoint layer branches here instead of walking crossbar()).
     *  Restore also respawns any dead worker first. */
    CheckpointImage fetchRemoteImage() const;
    void restoreRemoteImage(const CheckpointImage &img);

    /** Faults injected so far across every sub-device's injector
     *  (EngineConfig::faults; 0 when injection is off). */
    uint64_t faultsInjected() const;

    /** Aggregate storage footprint across every sub-device (each
     *  drains its pipeline). Observability only — see Simulator. */
    StorageGauges
    storageGauges() const
    {
        if (remote())
            return transport_->gaugesAll();
        StorageGauges g;
        for (const auto &s : sims_)
            g += s->storageGauges();
        return g;
    }

    /** Re-elide decayed all-zero blocks on every sub-device; returns
     *  the total number of blocks elided (0 for dense storage). */
    uint64_t
    compactStorage()
    {
        if (remote())
            return transport_->compactAll();
        uint64_t elided = 0;
        for (auto &s : sims_)
            elided += s->compactStorage();
        return elided;
    }

    // --- OperationSink ------------------------------------------------

    void performBatch(const Word *ops, size_t n) override;
    /** Fan out to every sub-device, splitting at boundary Moves. */
    void submitBatch(const Word *ops, size_t n) override;
    /** Drain every sub-device's pipeline. */
    void flush() override;
    /** Broadcast for stats parity; response from the owning slice. */
    uint32_t performRead(Word op) override;
    /**
     * Build one shared trace (via sub-device 0; builds touch no
     * state) for broadcast replay on every slice. Returns null for
     * streams containing a boundary-crossing Move — those must go
     * through the scanning submitBatch path.
     */
    std::shared_ptr<const BatchTrace>
    prepareTrace(const Word *ops, size_t n, bool fuse) override;
    /** Submit the SAME shared handle to every sub-device. */
    void submitTrace(std::shared_ptr<const BatchTrace> trace) override;
    /**
     * Broadcast the bulk read to every sub-device: each applies the
     * identical pre-planned stats/mask delta (the replication
     * invariant) and fills only its owned warps of the shared @p out
     * buffer — the slices are disjoint and cover the geometry, so the
     * buffer is assembled exactly once with no copying. Telemetry
     * accumulates across sub-devices (N drains per transfer).
     */
    bool readBulk(const BulkIoSpec &spec, uint32_t *out,
                  BulkIoTelemetry &tel) override;
    /** Broadcast the bulk write (scatter mirror of readBulk). */
    bool writeBulk(const BulkIoSpec &spec, const uint32_t *values,
                   BulkIoTelemetry &tel) override;

  private:
    void forwardAll(const Word *ops, size_t n);
    /** True iff any (src, src+dist) pair leaves its slice (or the
     *  destination set leaves the geometry — forcing the exchange
     *  path, whose validation throws the standard error). Stops at
     *  the first crossing. */
    bool crossesBoundary(const Range &xb, int64_t dist) const;
    /** True iff @p r is a well-formed crossbar mask within the
     *  geometry — the predicate Range::validate enforces when the
     *  mask op is applied, evaluated non-throwing for stream scans. */
    bool validXbMask(const Range &r) const;
    /** Raw-stream scan: does any Move in @p ops cross a boundary? */
    bool streamCrossesBoundary(const Word *ops, size_t n) const;
    void exchangeMove(Word w, const MicroOp &op, const Range &xb);
    /** The socket-transport exchange: stage reads and landing writes
     *  batch into one wire message per involved worker. */
    void exchangeMoveRemote(Word w, const MicroOp &op, const Range &xb,
                            int64_t dist);
    /** Advance the shadow crossbar mask past a remotely-submitted
     *  stream (backward walk for its last valid CrossbarMask). */
    void updateShadowMask(const Word *ops, size_t n);

    /**
     * THE raw-stream Move scan, shared by submitBatch (exchange
     * splitting + traffic counting) and prepareTrace (boundary
     * refusal) so the two can never drift: tracks the in-stream
     * crossbar mask seeded from sub-device 0's live state (mask state
     * advances at submit time, so it is current even mid-pipeline),
     * skipping Moves under an ill-formed mask (the sub-devices throw
     * at the mask op when the stream is forwarded). Invokes
     * fn(i, op, xb, crossing) for every analysable Move op; fn
     * returns false to stop the scan early.
     */
    template <typename Fn>
    void
    scanMoves(const Word *ops, size_t n, Fn &&fn) const
    {
        // Under the socket transport the seed is the host-side shadow
        // of the (replicated) mask — same value, no wire query.
        Range xb = remote() ? shadowXb_ : sims_[0]->crossbarMask();
        bool maskOk = true;  // the seed was validated when applied
        for (size_t i = 0; i < n; ++i) {
            const OpType t = enc::peekType(ops[i]);
            if (t == OpType::CrossbarMask) {
                xb = MicroOp::decode(ops[i]).range;
                maskOk = validXbMask(xb);
                continue;
            }
            if (t != OpType::Move || !maskOk)
                continue;
            const MicroOp op = MicroOp::decode(ops[i]);
            const int64_t dist =
                static_cast<int64_t>(op.dstStart) -
                static_cast<int64_t>(xb.start);
            if (!fn(i, op, xb, crossesBoundary(xb, dist)))
                return;
        }
    }

    Geometry geo_;
    uint32_t perDevice_;
    uint32_t devices_ = 1;
    /** In-process sub-devices; EMPTY under the socket transport. */
    std::vector<std::unique_ptr<Simulator>> sims_;
    /** Socket transport (PYPIM_TRANSPORT=socket). Mutable: wire round
     *  trips bump telemetry even on const observability queries. */
    mutable std::unique_ptr<SocketTransport> transport_;
    /** Host-side trace-build mirror for prepareTrace (socket mode). */
    std::unique_ptr<HTree> htree_;
    /** Lower wire traces into compiled replay programs at freeze
     *  (EngineConfig::compiledReplay; socket mode). */
    bool remoteCompiled_ = true;
    /** Host shadow of the replicated crossbar mask (socket mode):
     *  seeds the Move scan and the performRead owner. Best-effort on
     *  error streams, like the sub-device state itself. */
    Range shadowXb_;
    /** Scratch for stats() under the socket transport (fetched per
     *  query; the replicated block is worker 0's). */
    mutable Stats statsCache_;
    /** Per-sub-device fault injectors (empty when faults are off);
     *  also held by the sub-device that drives them. */
    std::vector<std::shared_ptr<FaultInjector>> injectors_;
    Traffic traffic_;

    struct Staged
    {
        uint32_t dst;
        uint32_t value;
    };
    std::vector<Staged> staged_;  //!< exchange scratch (reused)
};

} // namespace pypim

#endif // PYPIM_SIM_DEVICE_GROUP_HPP
