/**
 * @file
 * Versioned BatchTrace wire format — the other half of the fleet wire
 * protocol (sim/serialize.hpp built the state half in PR 9).
 *
 * A frozen BatchTrace crosses a shard-transport link as one
 * self-contained image, content-addressed by traceSignature() (FNV-1a
 * of the source micro-op words plus the fusion flag — the same
 * identity the driver's stream cache keys on, so identical workloads
 * produce identical wire addresses). The image carries:
 *
 *  - the RAW SOURCE STREAM: the receiver rebuilds the trace
 *    deterministically with buildBatchTrace/fuseBatchTrace on its own
 *    arenas — the raw-trace fallback that keeps the format valid for
 *    any receiver, compiled replay or not;
 *  - the batch's architectural epilogue (Stats, final masks) as a
 *    CROSS-CHECK: the rebuilt trace must reproduce it exactly, so a
 *    sender/receiver decode divergence fails loudly instead of
 *    silently corrupting the replicated-stats invariant;
 *  - the compiled ReplayProgram SoA arenas (instructions, merged
 *    column-pass sections, pre-chunked write stripes, pre-decoded
 *    LogicV runs, row-mask words) when the sender compiled them: the
 *    receiver installs these VERBATIM instead of recompiling, so the
 *    executed program is bit-for-bit the sender's.
 *
 * Framing (CRC, length prefix) is the transport's job
 * (sim/transport.hpp); this codec still magic/version-guards and
 * bounds-checks every field and throws pypim::Error on any damage —
 * a corrupt trace image must never install partial state.
 */
#ifndef PYPIM_SIM_TRACE_WIRE_HPP
#define PYPIM_SIM_TRACE_WIRE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

struct BatchTrace;
class HTree;

/** Content address of a frozen trace: FNV-1a over the source micro-op
 *  words plus the fusion flag. */
uint64_t traceSignature(const Word *ops, size_t n, bool fuse);

/**
 * Build a frozen, wire-addressable BatchTrace from a self-contained
 * stream WITHOUT a Simulator: the host-side mirror of
 * Simulator::prepareTrace for transports whose sub-device state lives
 * elsewhere. Returns null when the stream does not lead with both
 * masks; otherwise the trace is built, optionally fused and compiled,
 * and stamped with its wire identity (BatchTrace::wireSig/sourceOps/
 * sourceFuse). Unlike the Simulator path, a malformed stream throws
 * without any stats side effect — the caller owns no counters.
 */
std::shared_ptr<const BatchTrace>
buildWireTrace(const Word *ops, size_t n, bool fuse, bool compiled,
               const Geometry &geo, const HTree &htree);

/** Encode @p trace (which must carry its wire identity) into one
 *  self-contained image. */
std::vector<uint8_t> encodeTraceWire(const BatchTrace &trace);

/**
 * Decode an image produced by encodeTraceWire into a freshly rebuilt
 * frozen trace for @p geo, verifying the magic/version/geometry
 * guards, the signature, and the architectural epilogue cross-check.
 * Shipped ReplayPrograms are installed verbatim. Throws pypim::Error
 * on any mismatch or truncation.
 */
std::shared_ptr<const BatchTrace>
decodeTraceWire(const uint8_t *bytes, size_t n, const Geometry &geo,
                const HTree &htree);

} // namespace pypim

#endif // PYPIM_SIM_TRACE_WIRE_HPP
