#include "sim/htree.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace pypim
{

HTree::HTree(uint32_t numCrossbars)
    : numCrossbars_(numCrossbars)
{
    fatalIf(!isPow4(numCrossbars),
            "htree: crossbar count must be a power of four");
    levels_ = log2Floor(numCrossbars) / 2;
}

uint32_t
HTree::lcaLevel(uint32_t a, uint32_t b)
{
    uint32_t level = 0;
    while (a != b) {
        a >>= 2;
        b >>= 2;
        ++level;
    }
    return level;
}

uint64_t
HTree::moveCycles(const Range &src, int64_t dist) const
{
    const CacheKey key{src, dist};
    if (cacheValid_ && key == cacheKey_)
        return cacheVal_;
    cacheKey_ = key;
    cacheVal_ = computeMoveCycles(src, dist);
    cacheValid_ = true;
    return cacheVal_;
}

uint64_t
HTree::computeMoveCycles(const Range &src, int64_t dist) const
{
    // Link id: (level l, child group id at level l-1). A transfer
    // s -> d with LCA level L uses the uplinks of s's ancestors and
    // the downlinks of d's ancestors for l = 1..L; up- and downlink
    // of the same child group are distinct wires, but since every
    // transfer in one op flows in a single direction per link we can
    // key both by the child group id without double counting.
    std::unordered_map<uint64_t, uint32_t> load;
    uint32_t maxLevel = 0;
    src.forEach([&](uint32_t s) {
        const uint32_t d = static_cast<uint32_t>(s + dist);
        const uint32_t lca = lcaLevel(s, d);
        maxLevel = std::max(maxLevel, lca);
        for (uint32_t l = 1; l <= lca; ++l) {
            const uint64_t upKey =
                (static_cast<uint64_t>(l) << 32) | (s >> (2 * (l - 1)));
            const uint64_t downKey =
                (static_cast<uint64_t>(l) << 48) | (d >> (2 * (l - 1)));
            ++load[upKey];
            ++load[downKey];
        }
    });
    if (maxLevel == 0)
        return 1;  // degenerate same-crossbar move
    uint32_t maxLoad = 0;
    for (const auto &[key, n] : load)
        maxLoad = std::max(maxLoad, n);
    return 2ull * maxLevel + (maxLoad - 1);
}

} // namespace pypim
