#include "sim/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/crossbar.hpp"
#include "sim/shard_worker.hpp"
#include "sim/trace_wire.hpp"

namespace pypim
{

namespace
{

/** A frame this large means stream damage, not a big message: even a
 *  full checkpoint of a maximal array stays far below 4 GiB. */
constexpr uint64_t kMaxPayload = 1ull << 32;

/** Full write over a stream socket; EINTR-safe, SIGPIPE-free (the
 *  host must see a dead worker as EPIPE, not a process kill). */
bool
writeFull(int fd, const uint8_t *p, size_t n)
{
    while (n) {
        const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += k;
        n -= static_cast<size_t>(k);
    }
    return true;
}

/** Full read; false on EOF or error (the broken-pipe detection). */
bool
readFull(int fd, uint8_t *p, size_t n)
{
    while (n) {
        const ssize_t k = ::recv(fd, p, n, 0);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (k == 0)
            return false;
        p += k;
        n -= static_cast<size_t>(k);
    }
    return true;
}

bool
knownType(uint32_t type)
{
    return (type >= kMsgSubmit && type <= kMsgShutdown) ||
           type == kMsgErr;
}

std::string
errnoName()
{
    return std::string(std::strerror(errno));
}

} // namespace

// --- frame codec -------------------------------------------------------

std::vector<uint8_t>
encodeFrame(uint32_t type, const uint8_t *payload, size_t n)
{
    panicIf(!knownType(type),
            "wire frame: encoding unknown message type " +
                std::to_string(type));
    ByteWriter w;
    w.u32(kFrameMagic);
    w.u32(kWireVersion);
    w.u32(type);
    w.u64(n);
    // The checksum guards the header prefix as well as the payload: a
    // bit flip in the type or length fields could otherwise land on
    // another valid value and decode silently.
    w.u32(crc32(w.data().data(), w.data().size()) ^ crc32(payload, n));
    if (n)
        w.bytes(payload, n);
    return w.take();
}

WireFrame
decodeFrame(const uint8_t *bytes, size_t n)
{
    fatalIf(n < kFrameHeader, "wire frame: truncated header");
    ByteReader r(bytes, n);
    fatalIf(r.u32() != kFrameMagic,
            "wire frame: bad magic (not a transport frame)");
    const uint32_t version = r.u32();
    fatalIf(version != kWireVersion,
            "wire frame: unsupported protocol version " +
                std::to_string(version));
    const uint32_t type = r.u32();
    fatalIf(!knownType(type),
            "wire frame: unknown message type " + std::to_string(type));
    const uint64_t len = r.u64();
    const uint32_t crc = r.u32();
    fatalIf(len != r.remaining(),
            "wire frame: payload length mismatch (header says " +
                std::to_string(len) + ", frame carries " +
                std::to_string(r.remaining()) + ")");
    WireFrame f;
    f.type = type;
    f.payload.assign(bytes + kFrameHeader, bytes + n);
    const uint32_t want = crc32(bytes, kFrameHeader - 4) ^
                          crc32(f.payload.data(), f.payload.size());
    fatalIf(want != crc,
            "wire frame: CRC mismatch (frame damaged in transit)");
    return f;
}

std::vector<uint8_t>
encodeWireError(uint8_t kind, const std::string &message)
{
    ByteWriter w;
    w.u8(kind);
    w.u64(message.size());
    w.bytes(reinterpret_cast<const uint8_t *>(message.data()),
            message.size());
    return w.take();
}

void
rethrowWireError(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    const uint8_t kind = r.u8();
    const uint64_t len = r.u64();
    fatalIf(len != r.remaining(), "wire error: malformed payload");
    std::string msg(static_cast<size_t>(len), '\0');
    if (len)
        r.bytes(reinterpret_cast<uint8_t *>(&msg[0]),
                static_cast<size_t>(len));
    switch (kind) {
      case kErrInternal:
        throw InternalError(msg);
      case kErrFault:
        throw DeviceFault(msg);
      case kErrCorruption:
        throw StateCorruption(msg);
      case kErrInjected:
        throw InjectedFault(msg);
      case kErrUser:
      default:
        throw Error(msg);
    }
}

void
sendFrame(int fd, uint32_t type, const uint8_t *payload, size_t n)
{
    const std::vector<uint8_t> frame = encodeFrame(type, payload, n);
    fatalIf(!writeFull(fd, frame.data(), frame.size()),
            "wire send: " + errnoName());
}

WireFrame
recvFrame(int fd)
{
    uint8_t hdr[kFrameHeader];
    fatalIf(!readFull(fd, hdr, sizeof(hdr)),
            "wire recv: connection closed");
    uint64_t len = 0;
    for (int i = 0; i < 8; ++i)
        len |= static_cast<uint64_t>(hdr[12 + i]) << (8 * i);
    fatalIf(len > kMaxPayload,
            "wire recv: implausible frame length " + std::to_string(len));
    std::vector<uint8_t> buf(kFrameHeader + static_cast<size_t>(len));
    std::memcpy(buf.data(), hdr, kFrameHeader);
    if (len)
        fatalIf(!readFull(fd, buf.data() + kFrameHeader,
                          static_cast<size_t>(len)),
                "wire recv: connection closed mid-frame");
    return decodeFrame(buf.data(), buf.size());
}

// --- bulk spec codec ---------------------------------------------------

void
writeBulkSpec(ByteWriter &w, const BulkIoSpec &spec)
{
    w.u32(spec.slot);
    w.u32(spec.warpStart);
    w.u64(spec.rowStart);
    w.u64(spec.rowStep);
    w.u64(spec.count);
    writeStats(w, spec.stats);
    writeRange(w, spec.finalXb);
    writeRange(w, spec.finalRow);
}

BulkIoSpec
readBulkSpec(ByteReader &r)
{
    BulkIoSpec spec;
    spec.slot = r.u32();
    spec.warpStart = r.u32();
    spec.rowStart = r.u64();
    spec.rowStep = r.u64();
    spec.count = r.u64();
    spec.stats = readStats(r);
    spec.finalXb = readRange(r);
    spec.finalRow = readRange(r);
    return spec;
}

// --- SocketTransport ---------------------------------------------------

SocketTransport::SocketTransport(const Geometry &geo,
                                 const EngineConfig &sub,
                                 uint32_t devices, uint32_t perDevice)
    : geo_(geo), sub_(sub), perDevice_(perDevice)
{
    panicIf(devices == 0 || perDevice == 0,
            "SocketTransport: empty fleet");
    workers_.resize(devices);
    for (uint32_t d = 0; d < devices; ++d)
        spawn(d);
}

SocketTransport::~SocketTransport()
{
    for (Worker &w : workers_) {
        if (w.fd >= 0) {
            if (w.alive) {
                try {
                    sendFrame(w.fd, kMsgShutdown, nullptr, 0);
                } catch (...) {
                    // Best effort; the close below unblocks the worker.
                }
            }
            ::close(w.fd);
            w.fd = -1;
        }
        if (w.pid > 0) {
            int status = 0;
            ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
            w.pid = -1;
        }
    }
}

void
SocketTransport::spawn(uint32_t d)
{
    int sv[2];
    fatalIf(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0,
            "shard transport: socketpair failed: " + errnoName());
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        fatal("shard transport: fork failed: " + errnoName());
    }
    if (pid == 0) {
        // Worker process. Close the host end of this channel and every
        // OTHER worker's host-side fd inherited across the fork, so a
        // sibling's death surfaces as EOF to the host alone.
        ::close(sv[0]);
        for (const Worker &w : workers_)
            if (w.fd >= 0)
                ::close(w.fd);
        runShardWorker(sv[1], geo_, sub_, d * perDevice_, perDevice_, d);
        ::_exit(0);
    }
    ::close(sv[1]);
    Worker &w = workers_[d];
    w.fd = sv[0];
    w.pid = pid;
    w.alive = true;
    w.installed.clear();
    // A respawned worker starts with the injector unsuppressed;
    // re-apply the fleet's current suppression window.
    if (suppressed_) {
        ByteWriter sw;
        sw.u8(1);
        const std::vector<uint8_t> p = sw.take();
        send(d, kMsgSuppress, p.data(), p.size());
    }
}

void
SocketTransport::died(uint32_t d, const std::string &what)
{
    Worker &w = workers_[d];
    if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
    }
    w.alive = false;
    w.installed.clear();
    if (w.pid > 0) {
        // Protocol desync can leave the process technically alive;
        // make the reap below unconditional and non-blocking.
        ::kill(static_cast<pid_t>(w.pid), SIGKILL);
        int status = 0;
        ::waitpid(static_cast<pid_t>(w.pid), &status, 0);
        w.pid = -1;
    }
    throw WorkerDied("shard worker " + std::to_string(d) +
                     " died: " + what);
}

void
SocketTransport::send(uint32_t d, uint32_t type, const uint8_t *payload,
                      size_t n)
{
    Worker &w = workers_[d];
    if (!w.alive)
        throw WorkerDied("shard worker " + std::to_string(d) +
                         " is dead (awaiting restore)");
    const std::vector<uint8_t> frame = encodeFrame(type, payload, n);
    if (!writeFull(w.fd, frame.data(), frame.size()))
        died(d, "send failed: " + errnoName());
    telemetry_.bytesTx += frame.size();
}

WireFrame
SocketTransport::recv(uint32_t d)
{
    Worker &w = workers_[d];
    if (!w.alive)
        throw WorkerDied("shard worker " + std::to_string(d) +
                         " is dead (awaiting restore)");
    uint8_t hdr[kFrameHeader];
    if (!readFull(w.fd, hdr, sizeof(hdr)))
        died(d, "connection closed");
    uint64_t len = 0;
    for (int i = 0; i < 8; ++i)
        len |= static_cast<uint64_t>(hdr[12 + i]) << (8 * i);
    if (len > kMaxPayload)
        died(d, "implausible frame length " + std::to_string(len));
    std::vector<uint8_t> buf(kFrameHeader + static_cast<size_t>(len));
    std::memcpy(buf.data(), hdr, kFrameHeader);
    if (len && !readFull(w.fd, buf.data() + kFrameHeader,
                         static_cast<size_t>(len)))
        died(d, "connection closed mid-frame");
    telemetry_.bytesRx += buf.size();
    try {
        return decodeFrame(buf.data(), buf.size());
    } catch (const Error &e) {
        // A reply we cannot trust means the stream is beyond resync.
        died(d, std::string("frame damage: ") + e.what());
    }
}

WireFrame
SocketTransport::roundTrip(uint32_t d, uint32_t type,
                           const uint8_t *payload, size_t n)
{
    send(d, type, payload, n);
    WireFrame reply = recv(d);
    ++telemetry_.roundTrips;
    if (reply.type == kMsgErr)
        rethrowWireError(reply.payload);
    panicIf(reply.type != type,
            "shard transport: protocol desync (reply type " +
                std::to_string(reply.type) + " to request " +
                std::to_string(type) + ")");
    return reply;
}

void
SocketTransport::submitAll(const Word *ops, size_t n)
{
    ByteWriter w;
    w.u64(n);
    for (size_t i = 0; i < n; ++i)
        w.u64(ops[i]);
    const std::vector<uint8_t> payload = w.take();
    for (uint32_t d = 0; d < devices(); ++d)
        send(d, kMsgSubmit, payload.data(), payload.size());
}

void
SocketTransport::flushAll()
{
    for (uint32_t d = 0; d < devices(); ++d)
        roundTrip(d, kMsgFlush, nullptr, 0);
}

uint32_t
SocketTransport::readAll(Word op, uint32_t owner)
{
    ByteWriter w;
    w.u64(op);
    const std::vector<uint8_t> payload = w.take();
    uint32_t value = 0;
    for (uint32_t d = 0; d < devices(); ++d) {
        WireFrame reply =
            roundTrip(d, kMsgRead, payload.data(), payload.size());
        ByteReader r(reply.payload);
        const uint32_t v = r.u32();
        r.expectEnd("read reply");
        if (d == owner)
            value = v;
    }
    return value;
}

void
SocketTransport::submitTraceAll(const BatchTrace &trace)
{
    panicIf(trace.wireSig == 0 || trace.sourceOps.empty(),
            "submitTrace: trace carries no wire identity (not built by "
            "this transport's prepareTrace)");
    std::vector<uint8_t> image;  // encoded lazily, at most once per call
    ByteWriter sw;
    sw.u64(trace.wireSig);
    const std::vector<uint8_t> sig = sw.take();
    for (uint32_t d = 0; d < devices(); ++d) {
        Worker &w = workers_[d];
        if (w.installed.count(trace.wireSig)) {
            ++telemetry_.traceHits;
        } else {
            if (image.empty())
                image = encodeTraceWire(trace);
            send(d, kMsgTraceInstall, image.data(), image.size());
            w.installed.insert(trace.wireSig);
            ++telemetry_.traceInstalls;
        }
        // FIFO per socket: the replay may chase the install.
        send(d, kMsgTraceReplay, sig.data(), sig.size());
    }
}

void
SocketTransport::bulkReadAll(const BulkIoSpec &spec, uint32_t *out,
                             BulkIoTelemetry &tel)
{
    ByteWriter w;
    writeBulkSpec(w, spec);
    const std::vector<uint8_t> payload = w.take();
    std::fill(out, out + spec.count, 0u);
    for (uint32_t d = 0; d < devices(); ++d) {
        WireFrame reply =
            roundTrip(d, kMsgBulkRead, payload.data(), payload.size());
        ByteReader r(reply.payload);
        fatalIf(r.u64() != spec.count,
                "bulk read reply: element count mismatch");
        // Each element is owned by exactly one worker; the others left
        // it zero, so OR assembles the full buffer.
        for (uint64_t i = 0; i < spec.count; ++i)
            out[i] |= r.u32();
        tel.wordsTransposed += r.u64();
        tel.drains += r.u64();
        r.expectEnd("bulk read reply");
    }
}

void
SocketTransport::bulkWriteAll(const BulkIoSpec &spec,
                              const uint32_t *values,
                              BulkIoTelemetry &tel)
{
    ByteWriter w;
    writeBulkSpec(w, spec);
    for (uint64_t i = 0; i < spec.count; ++i)
        w.u32(values[i]);
    const std::vector<uint8_t> payload = w.take();
    for (uint32_t d = 0; d < devices(); ++d) {
        WireFrame reply =
            roundTrip(d, kMsgBulkWrite, payload.data(), payload.size());
        ByteReader r(reply.payload);
        tel.wordsTransposed += r.u64();
        tel.drains += r.u64();
        r.expectEnd("bulk write reply");
    }
}

void
SocketTransport::readCells(uint32_t d,
                           const std::vector<CellAddr> &addrs,
                           std::vector<uint32_t> &values)
{
    values.clear();
    if (addrs.empty())
        return;
    ByteWriter w;
    w.u32(static_cast<uint32_t>(addrs.size()));
    for (const CellAddr &a : addrs) {
        w.u32(a.xb);
        w.u32(a.slot);
        w.u32(a.row);
    }
    const std::vector<uint8_t> payload = w.take();
    WireFrame reply =
        roundTrip(d, kMsgCellRead, payload.data(), payload.size());
    ByteReader r(reply.payload);
    fatalIf(r.u32() != addrs.size(), "cell read reply: count mismatch");
    values.resize(addrs.size());
    for (uint32_t &v : values)
        v = r.u32();
    r.expectEnd("cell read reply");
}

void
SocketTransport::writeCells(uint32_t d, const std::vector<CellPut> &puts)
{
    if (puts.empty())
        return;
    ByteWriter w;
    w.u32(static_cast<uint32_t>(puts.size()));
    for (const CellPut &p : puts) {
        w.u32(p.xb);
        w.u32(p.slot);
        w.u32(p.value);
        w.u32(p.row);
    }
    const std::vector<uint8_t> payload = w.take();
    send(d, kMsgCellWrite, payload.data(), payload.size());
}

void
SocketTransport::chargeExchange(uint64_t ns)
{
    ++telemetry_.exchanges;
    telemetry_.exchangeNs += ns;
}

Stats
SocketTransport::fetchStats(uint32_t d, Range *maskXb, Range *maskRow,
                            uint64_t *faultsInjected)
{
    WireFrame reply = roundTrip(d, kMsgStats, nullptr, 0);
    ByteReader r(reply.payload);
    Stats s = readStats(r);
    const Range xb = readRange(r);
    const Range row = readRange(r);
    const uint64_t inj = r.u64();
    r.expectEnd("stats reply");
    if (maskXb)
        *maskXb = xb;
    if (maskRow)
        *maskRow = row;
    if (faultsInjected)
        *faultsInjected = inj;
    return s;
}

void
SocketTransport::clearStatsAll()
{
    for (uint32_t d = 0; d < devices(); ++d)
        send(d, kMsgClearStats, nullptr, 0);
}

uint64_t
SocketTransport::faultsInjectedAll()
{
    uint64_t total = 0;
    for (uint32_t d = 0; d < devices(); ++d) {
        uint64_t inj = 0;
        fetchStats(d, nullptr, nullptr, &inj);
        total += inj;
    }
    return total;
}

StorageGauges
SocketTransport::gaugesAll()
{
    StorageGauges g;
    for (uint32_t d = 0; d < devices(); ++d) {
        WireFrame reply = roundTrip(d, kMsgGauges, nullptr, 0);
        ByteReader r(reply.payload);
        StorageGauges one;
        one.blocksTotal = r.u64();
        one.blocksPresent = r.u64();
        one.blocksElided = r.u64();
        one.cowShared = r.u64();
        one.residentBytes = r.u64();
        r.expectEnd("gauges reply");
        g += one;
    }
    return g;
}

uint64_t
SocketTransport::compactAll()
{
    uint64_t total = 0;
    for (uint32_t d = 0; d < devices(); ++d) {
        WireFrame reply = roundTrip(d, kMsgCompact, nullptr, 0);
        ByteReader r(reply.payload);
        total += r.u64();
        r.expectEnd("compact reply");
    }
    return total;
}

void
SocketTransport::suppressFaultsAll(bool on)
{
    suppressed_ = on;
    ByteWriter w;
    w.u8(on ? 1 : 0);
    const std::vector<uint8_t> payload = w.take();
    for (uint32_t d = 0; d < devices(); ++d)
        if (workers_[d].alive)
            send(d, kMsgSuppress, payload.data(), payload.size());
}

CheckpointImage
SocketTransport::fetchImage()
{
    CheckpointImage img;
    img.geo = geo_;
    img.storage = sub_.storage;
    img.deviceCount = devices();
    for (uint32_t d = 0; d < devices(); ++d) {
        WireFrame reply = roundTrip(d, kMsgStateFetch, nullptr, 0);
        ByteReader r(reply.payload);
        const Range xb = readRange(r);
        const Range row = readRange(r);
        const Stats s = readStats(r);
        const uint32_t nXb = r.u32();
        for (uint32_t i = 0; i < nXb; ++i) {
            CrossbarImage ci;
            ci.xb = r.u32();
            const uint32_t nBlocks = r.u32();
            ci.blocks.reserve(nBlocks);
            for (uint32_t b = 0; b < nBlocks; ++b) {
                BlockRecord rec;
                rec.col = r.u32();
                rec.block = r.u32();
                const uint32_t nWords = r.u32();
                fatalIf(nWords == 0 || nWords > Crossbar::kBlockWords,
                        "state fetch reply: bad block word count " +
                            std::to_string(nWords));
                rec.words.resize(nWords);
                for (uint64_t &word : rec.words)
                    word = r.u64();
                ci.blocks.push_back(std::move(rec));
            }
            img.crossbars.push_back(std::move(ci));
        }
        r.expectEnd("state fetch reply");
        // Masks and Stats are REPLICATED bit-identically across the
        // fleet; worker 0 speaks for the logical device.
        if (d == 0) {
            img.maskXb = xb;
            img.maskRow = row;
            img.archStats = s;
        }
    }
    // Workers answer in ascending slice order and each emits its owned
    // crossbars ascending, so the image is already canonical.
    return img;
}

void
SocketTransport::restoreImage(const CheckpointImage &img)
{
    // Respawn the fallen: a fresh process is power-on state plus an
    // empty trace cache (the host-side installed set was cleared when
    // the death was detected).
    for (uint32_t d = 0; d < devices(); ++d)
        if (!workers_[d].alive)
            spawn(d);
    const std::vector<uint8_t> bytes = encodeCheckpoint(img);
    for (uint32_t d = 0; d < devices(); ++d) {
        try {
            roundTrip(d, kMsgStateRestore, bytes.data(), bytes.size());
        } catch (const WorkerDied &) {
            // A worker that died since its last message only reveals
            // itself when the broadcast hits its broken pipe — fold
            // that discovery into the restore (respawn, resend) so one
            // call rebuilds the whole fleet. A second failure is a
            // genuinely broken environment and propagates.
            spawn(d);
            roundTrip(d, kMsgStateRestore, bytes.data(), bytes.size());
        }
    }
}

} // namespace pypim
