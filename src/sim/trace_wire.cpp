#include "sim/trace_wire.hpp"

#include <string>

#include "common/error.hpp"
#include "sim/batch_trace.hpp"
#include "sim/serialize.hpp"

namespace pypim
{

namespace
{

constexpr uint32_t kTraceMagic = 0x50575452;  // "PWTR"
constexpr uint32_t kTraceVersion = 1;

void
writeProgram(ByteWriter &w, const ReplayProgram &p)
{
    w.u32(static_cast<uint32_t>(p.instrs.size()));
    for (const ReplayProgram::Instr &in : p.instrs) {
        w.u8(static_cast<uint8_t>(in.kind));
        w.u8(static_cast<uint8_t>(in.cls));
        w.u8(in.maskFull);
        w.u8(in.passKind);
        w.u32(in.off);
        w.u32(in.count);
        w.u32(in.maskOff);
        w.u32(in.slot);
        w.u32(in.work);
        writeRange(w, in.xb);
    }
    w.u32(static_cast<uint32_t>(p.sections.size()));
    for (const ReplayProgram::PSection &s : p.sections) {
        w.u8(static_cast<uint8_t>(s.kind));
        w.u32(s.outCol);
        w.u32(s.inA);
        w.u32(s.inB);
    }
    w.u32(static_cast<uint32_t>(p.pairs.size()));
    for (const StripeWrite &sw : p.pairs) {
        w.u32(sw.slot);
        w.u32(sw.value);
    }
    w.u32(static_cast<uint32_t>(p.vgates.size()));
    for (const ReplayProgram::VGate &g : p.vgates) {
        w.u8(static_cast<uint8_t>(g.gate));
        w.u32(g.inWord);
        w.u32(g.inShift);
        w.u32(g.outWord);
        w.u64(g.outBit);
    }
    w.u32(static_cast<uint32_t>(p.maskWords.size()));
    for (uint64_t word : p.maskWords)
        w.u64(word);
    w.u32(p.wordsPerMask);
    w.u32(p.xbLo);
    w.u32(p.xbHi);
    w.u8(p.allMasksFull ? 1 : 0);
    w.u8(p.uniformXb ? 1 : 0);
    writeRange(w, p.xb);
    w.u64(p.workWrites);
    w.u64(p.workLogicH);
    w.u64(p.workLogicV);
}

/** Read an element count and bound it by the bytes actually left in
 *  the image (each element costs at least @p minBytes on the wire):
 *  a damaged count must throw, not drive a huge allocation. */
uint32_t
wireCount(ByteReader &r, uint32_t minBytes, const char *what)
{
    const uint32_t n = r.u32();
    fatalIf(n > r.remaining() / minBytes,
            std::string("trace wire: implausible ") + what +
                " count " + std::to_string(n));
    return n;
}

ReplayProgram
readProgram(ByteReader &r)
{
    ReplayProgram p;
    const uint32_t nInstrs = wireCount(r, 36, "instruction");
    p.instrs.reserve(nInstrs);
    for (uint32_t i = 0; i < nInstrs; ++i) {
        ReplayProgram::Instr in;
        const uint8_t kind = r.u8();
        fatalIf(kind > static_cast<uint8_t>(ReplayProgram::Kind::VRun),
                "trace wire: bad replay instruction kind " +
                    std::to_string(kind));
        in.kind = static_cast<ReplayProgram::Kind>(kind);
        const uint8_t cls = r.u8();
        fatalIf(cls >= static_cast<uint8_t>(OpClass::NumClasses),
                "trace wire: bad op class " + std::to_string(cls));
        in.cls = static_cast<OpClass>(cls);
        in.maskFull = r.u8();
        in.passKind = r.u8();
        in.off = r.u32();
        in.count = r.u32();
        in.maskOff = r.u32();
        in.slot = r.u32();
        in.work = r.u32();
        in.xb = readRange(r);
        p.instrs.push_back(in);
    }
    const uint32_t nSections = wireCount(r, 13, "pass-section");
    p.sections.reserve(nSections);
    for (uint32_t i = 0; i < nSections; ++i) {
        ReplayProgram::PSection s;
        const uint8_t kind = r.u8();
        fatalIf(kind > static_cast<uint8_t>(
                           ReplayProgram::SecKind::FusedNotNor),
                "trace wire: bad pass-section kind " +
                    std::to_string(kind));
        s.kind = static_cast<ReplayProgram::SecKind>(kind);
        s.outCol = static_cast<uint16_t>(r.u32());
        s.inA = static_cast<uint16_t>(r.u32());
        s.inB = static_cast<uint16_t>(r.u32());
        p.sections.push_back(s);
    }
    const uint32_t nPairs = wireCount(r, 8, "write-stripe");
    p.pairs.reserve(nPairs);
    for (uint32_t i = 0; i < nPairs; ++i) {
        StripeWrite sw;
        sw.slot = r.u32();
        sw.value = r.u32();
        p.pairs.push_back(sw);
    }
    const uint32_t nVgates = wireCount(r, 21, "LogicV gate");
    p.vgates.reserve(nVgates);
    for (uint32_t i = 0; i < nVgates; ++i) {
        ReplayProgram::VGate g;
        const uint8_t gate = r.u8();
        fatalIf(gate > static_cast<uint8_t>(Gate::Nor),
                "trace wire: bad LogicV gate " + std::to_string(gate));
        g.gate = static_cast<Gate>(gate);
        g.inWord = r.u32();
        g.inShift = r.u32();
        g.outWord = r.u32();
        g.outBit = r.u64();
        p.vgates.push_back(g);
    }
    const uint32_t nMaskWords = wireCount(r, 8, "mask-word");
    p.maskWords.resize(nMaskWords);
    for (uint64_t &word : p.maskWords)
        word = r.u64();
    p.wordsPerMask = r.u32();
    p.xbLo = r.u32();
    p.xbHi = r.u32();
    p.allMasksFull = r.u8() != 0;
    p.uniformXb = r.u8() != 0;
    p.xb = readRange(r);
    p.workWrites = r.u64();
    p.workLogicH = r.u64();
    p.workLogicV = r.u64();
    return p;
}

} // namespace

uint64_t
traceSignature(const Word *ops, size_t n, bool fuse)
{
    // FNV-1a, the stream-cache convention: cheap, deterministic and
    // stable across processes (no pointer or seed dependence).
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (size_t i = 0; i < n; ++i)
        mix(ops[i]);
    mix(fuse ? 1 : 0);
    return h;
}

std::shared_ptr<const BatchTrace>
buildWireTrace(const Word *ops, size_t n, bool fuse, bool compiled,
               const Geometry &geo, const HTree &htree)
{
    if (!leadsWithMasks(ops, n))
        return nullptr;
    auto batch = std::make_shared<BatchTrace>();
    // A self-contained stream decodes identically from the power-on
    // mask state (Simulator::prepareTrace's local-MaskState mirror).
    MaskState local;
    local.reset(geo);
    buildBatchTrace(ops, n, geo, htree, local, *batch);
    if (fuse)
        fuseBatchTrace(*batch, geo);
    if (compiled)
        compileBatchTrace(*batch, geo);
    batch->wireSig = traceSignature(ops, n, fuse);
    batch->sourceOps.assign(ops, ops + n);
    batch->sourceFuse = fuse;
    return batch;
}

std::vector<uint8_t>
encodeTraceWire(const BatchTrace &trace)
{
    panicIf(trace.sourceOps.empty(),
            "encodeTraceWire: trace carries no source stream (not a "
            "wire-built trace)");
    ByteWriter w;
    w.u32(kTraceMagic);
    w.u32(kTraceVersion);
    w.u64(trace.wireSig);
    w.u32(trace.geoRows);
    w.u32(trace.geoCols);
    w.u32(trace.geoPartitions);
    w.u32(trace.geoCrossbars);
    w.u8(trace.sourceFuse ? 1 : 0);
    // The architectural epilogue — shipped as a decode cross-check.
    writeStats(w, trace.stats);
    writeRange(w, trace.finalXb);
    writeRange(w, trace.finalRow);
    w.u64(trace.sourceOps.size());
    for (Word op : trace.sourceOps)
        w.u64(op);
    w.u32(static_cast<uint32_t>(trace.programs.size()));
    for (const ReplayProgram &p : trace.programs)
        writeProgram(w, p);
    return w.take();
}

std::shared_ptr<const BatchTrace>
decodeTraceWire(const uint8_t *bytes, size_t n, const Geometry &geo,
                const HTree &htree)
{
    ByteReader r(bytes, n);
    fatalIf(r.u32() != kTraceMagic,
            "trace wire: bad magic (not a trace image)");
    const uint32_t version = r.u32();
    fatalIf(version != kTraceVersion,
            "trace wire: unsupported version " +
                std::to_string(version));
    const uint64_t sig = r.u64();
    fatalIf(r.u32() != geo.rows || r.u32() != geo.cols ||
                r.u32() != geo.partitions ||
                r.u32() != geo.numCrossbars,
            "trace wire: image was built for a different geometry");
    const uint8_t fuseByte = r.u8();
    // Canonical encoding only: a non-0/1 flag byte is damage even
    // when its truthiness would decode to the same trace.
    fatalIf(fuseByte > 1, "trace wire: malformed fusion flag");
    const bool fuse = fuseByte == 1;
    const Stats wireStats = readStats(r);
    const Range wireXb = readRange(r);
    const Range wireRow = readRange(r);
    const uint64_t nOps = r.u64();
    // Divide, don't multiply: nOps * 8 can wrap for a damaged count
    // and slip a huge allocation past the bound.
    fatalIf(nOps == 0 || nOps > r.remaining() / 8,
            "trace wire: implausible op count " + std::to_string(nOps));
    std::vector<Word> ops(nOps);
    for (Word &op : ops)
        op = r.u64();

    fatalIf(traceSignature(ops.data(), ops.size(), fuse) != sig,
            "trace wire: signature does not match the source stream");
    fatalIf(!leadsWithMasks(ops.data(), ops.size()),
            "trace wire: source stream is not self-contained");

    // Rebuild deterministically on local arenas (fusion included; the
    // compiled programs, when shipped, are installed verbatim below).
    auto batch = std::make_shared<BatchTrace>();
    MaskState local;
    local.reset(geo);
    buildBatchTrace(ops.data(), ops.size(), geo, htree, local, *batch);
    if (fuse)
        fuseBatchTrace(*batch, geo);

    // The cross-check: a rebuilt trace that does not reproduce the
    // sender's architectural epilogue would silently break the
    // replicated-stats invariant — fail loudly instead.
    fatalIf(!(batch->stats == wireStats),
            "trace wire: rebuilt trace diverges from the sender's "
            "architectural stats");
    fatalIf(!(batch->finalXb == wireXb) || !(batch->finalRow == wireRow),
            "trace wire: rebuilt trace diverges from the sender's "
            "final mask state");

    const uint32_t nPrograms = r.u32();
    fatalIf(nPrograms != 0 && nPrograms != batch->used,
            "trace wire: program count " + std::to_string(nPrograms) +
                " does not match " + std::to_string(batch->used) +
                " segments");
    batch->programs.clear();
    batch->programs.reserve(nPrograms);
    for (uint32_t i = 0; i < nPrograms; ++i)
        batch->programs.push_back(readProgram(r));
    r.expectEnd("trace image");

    batch->wireSig = sig;
    batch->sourceOps = std::move(ops);
    batch->sourceFuse = fuse;
    return batch;
}

} // namespace pypim
