#include "driver/bitvec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pypim
{

BVOps::BVOps(GateBuilder &b)
    : b_(&b),
      geo_(&b.geometry())
{
}

uint32_t
BVOps::slotOf(uint32_t cell) const
{
    return cell % geo_->partitionWidth();
}

uint32_t
BVOps::partOf(uint32_t cell) const
{
    return cell / geo_->partitionWidth();
}

// --- construction -----------------------------------------------------

BV
BVOps::alloc(uint32_t width)
{
    BV x;
    const uint32_t perLane = geo_->partitions;
    const uint32_t lanes = (width + perLane - 1) / perLane;
    x.ownedLanes.reserve(lanes);
    for (uint32_t l = 0; l < lanes; ++l)
        x.ownedLanes.push_back(b_->pool().allocLane());
    x.cells.reserve(width);
    for (uint32_t j = 0; j < width; ++j)
        x.cells.push_back(b_->cell(x.ownedLanes[j / perLane], j % perLane));
    return x;
}

void
BVOps::free(BV &x)
{
    for (uint32_t lane : x.ownedLanes)
        b_->pool().freeLane(lane);
    x.ownedLanes.clear();
    x.cells.clear();
}

BV
BVOps::reg(uint32_t slot) const
{
    BV x;
    x.cells.reserve(geo_->wordBits);
    for (uint32_t j = 0; j < geo_->wordBits; ++j)
        x.cells.push_back(geo_->column(slot, j));
    return x;
}

BV
BVOps::slice(const BV &x, uint32_t lo, uint32_t hi)
{
    panicIf(lo > hi || hi > x.width(), "BV slice out of range");
    BV v;
    v.cells.assign(x.cells.begin() + lo, x.cells.begin() + hi);
    return v;
}

BV
BVOps::concat(const BV &lo, const BV &hi)
{
    BV v;
    v.cells = lo.cells;
    v.cells.insert(v.cells.end(), hi.cells.begin(), hi.cells.end());
    return v;
}

BV
BVOps::repeat(uint32_t cell, uint32_t n)
{
    BV v;
    v.cells.assign(n, cell);
    return v;
}

uint32_t
BVOps::constCell(bool v)
{
    const uint32_t c = b_->pool().allocBitOutside(0, 0);
    b_->initCell(c, v);
    return c;
}

BV
BVOps::constant(uint32_t width, uint64_t value)
{
    BV x = alloc(width);
    setConst(x, value);
    return x;
}

void
BVOps::setConst(BV &x, uint64_t value)
{
    // Compress consecutive same-valued bits in the same slot with
    // consecutive partitions into single periodic INIT runs.
    uint32_t j = 0;
    while (j < x.width()) {
        const bool v = (value >> j) & 1;
        const uint32_t slot = slotOf(x[j]);
        const uint32_t p0 = partOf(x[j]);
        uint32_t k = j + 1;
        while (k < x.width() && (((value >> k) & 1) == v) &&
               slotOf(x[k]) == slot && partOf(x[k]) == p0 + (k - j)) {
            ++k;
        }
        if (k - j >= 2)
            b_->runInit(slot, p0, p0 + (k - j) - 1, v);
        else
            b_->initCell(x[j], v);
        j = k;
    }
}

BV
BVOps::zext(const BV &x, uint32_t width, uint32_t zeroCell) const
{
    panicIf(width < x.width(), "zext: narrowing");
    return concat(x, repeat(zeroCell, width - x.width()));
}

BV
BVOps::sext(const BV &x, uint32_t width)
{
    panicIf(width < x.width() || x.width() == 0, "sext: bad widths");
    return concat(x, repeat(x.cells.back(), width - x.width()));
}

// --- bitwise ----------------------------------------------------------

void
BVOps::gateInto(Gate g, const BV *a, const BV *b, BV &out)
{
    const uint32_t w = out.width();
    panicIf(g == Gate::Nor ? (!a || !b) : (g == Gate::Not ? !a : true),
            "gateInto: operand arity mismatch");
    panicIf((a && a->width() != w) || (b && b->width() != w),
            "gateInto: width mismatch");
    uint32_t j = 0;
    while (j < w) {
        // Detect a lane-aligned run: constant slots, identical and
        // consecutive partitions for every operand and the output.
        const uint32_t p0 = partOf(out[j]);
        const uint32_t oSlot = slotOf(out[j]);
        uint32_t k = j;
        if (b_->partitionsEnabled()) {
            auto aligned = [&](uint32_t i) {
                const uint32_t p = p0 + (i - j);
                if (p >= geo_->partitions)
                    return false;
                if (partOf(out[i]) != p || slotOf(out[i]) != oSlot)
                    return false;
                if (a && (partOf((*a)[i]) != p ||
                          slotOf((*a)[i]) != slotOf((*a)[j])))
                    return false;
                if (b && (partOf((*b)[i]) != p ||
                          slotOf((*b)[i]) != slotOf((*b)[j])))
                    return false;
                return true;
            };
            while (k < w && aligned(k))
                ++k;
        }
        if (k - j >= 2) {
            const uint32_t p1 = p0 + (k - j) - 1;
            switch (g) {
              case Gate::Init0:
              case Gate::Init1:
                b_->runInit(oSlot, p0, p1, g == Gate::Init1);
                break;
              case Gate::Not:
                b_->runNot(slotOf((*a)[j]), oSlot, p0, p1);
                break;
              case Gate::Nor:
                b_->runNor(slotOf((*a)[j]), slotOf((*b)[j]), oSlot,
                           p0, p1);
                break;
            }
            j = k;
            continue;
        }
        switch (g) {
          case Gate::Init0:
          case Gate::Init1:
            b_->initCell(out[j], g == Gate::Init1);
            break;
          case Gate::Not:
            b_->notInto((*a)[j], out[j]);
            break;
          case Gate::Nor:
            b_->norInto((*a)[j], (*b)[j], out[j]);
            break;
        }
        ++j;
    }
}

BV
BVOps::nor_(const BV &x, const BV &y)
{
    BV out = alloc(x.width());
    gateInto(Gate::Nor, &x, &y, out);
    return out;
}

BV
BVOps::not_(const BV &x)
{
    BV out = alloc(x.width());
    gateInto(Gate::Not, &x, nullptr, out);
    return out;
}

BV
BVOps::or_(const BV &x, const BV &y)
{
    BV t = nor_(x, y);
    BV out = alloc(x.width());
    gateInto(Gate::Not, &t, nullptr, out);
    free(t);
    return out;
}

BV
BVOps::and_(const BV &x, const BV &y)
{
    BV nx = not_(x);
    BV ny = not_(y);
    BV out = nor_(nx, ny);
    free(nx);
    free(ny);
    return out;
}

BV
BVOps::xnor_(const BV &x, const BV &y)
{
    BV x1 = nor_(x, y);
    BV x2 = nor_(x, x1);
    BV x3 = nor_(y, x1);
    BV out = nor_(x2, x3);
    free(x1);
    free(x2);
    free(x3);
    return out;
}

BV
BVOps::xor_(const BV &x, const BV &y)
{
    BV t = xnor_(x, y);
    BV out = alloc(x.width());
    gateInto(Gate::Not, &t, nullptr, out);
    free(t);
    return out;
}

void
BVOps::copyInto(const BV &src, BV &dst)
{
    panicIf(src.width() != dst.width(), "copyInto: width mismatch");
    BV t = not_(src);
    gateInto(Gate::Not, &t, nullptr, dst);
    free(t);
}

BV
BVOps::copy(const BV &x)
{
    BV out = alloc(x.width());
    copyInto(x, out);
    return out;
}

// --- select / mux -----------------------------------------------------

SelLanes
BVOps::broadcastSelect(uint32_t sCell)
{
    SelLanes sel;
    sel.ns = b_->pool().allocLane();
    sel.s = b_->pool().allocLane();
    // ns[p] <- NOT(s) for every partition (N single gates), then
    // s-lane <- lane NOT of ns.
    b_->initLane(sel.ns, true);
    for (uint32_t p = 0; p < geo_->partitions; ++p)
        b_->notInto(sCell, b_->cell(sel.ns, p), false);
    b_->laneNot(sel.ns, sel.s);
    return sel;
}

void
BVOps::freeSelect(SelLanes sel)
{
    b_->pool().freeLane(sel.s);
    b_->pool().freeLane(sel.ns);
}

BV
BVOps::selBV(uint32_t laneSlot, const BV &like) const
{
    BV v;
    v.cells.reserve(like.width());
    for (uint32_t j = 0; j < like.width(); ++j) {
        const uint32_t part = like[j] / geo_->partitionWidth();
        v.cells.push_back(geo_->column(laneSlot, part));
    }
    return v;
}

void
BVOps::muxInto(const SelLanes &sel, const BV &a, const BV &b, BV &out)
{
    panicIf(a.width() != b.width() || a.width() != out.width(),
            "muxInto: width mismatch");
    const BV nsA = selBV(sel.ns, a);
    const BV sB = selBV(sel.s, b);
    BV t1 = nor_(a, nsA);   // s ? ~a : 0
    BV t2 = nor_(b, sB);    // s ? 0 : ~b
    gateInto(Gate::Nor, &t1, &t2, out);
    free(t1);
    free(t2);
}

BV
BVOps::mux(const SelLanes &sel, const BV &a, const BV &b)
{
    BV out = alloc(a.width());
    muxInto(sel, a, b, out);
    return out;
}

BV
BVOps::muxCell(uint32_t sCell, const BV &a, const BV &b)
{
    if (a.width() >= 8 && b_->partitionsEnabled()) {
        SelLanes sel = broadcastSelect(sCell);
        BV out = mux(sel, a, b);
        freeSelect(sel);
        return out;
    }
    BV out = alloc(a.width());
    const uint32_t ns = b_->not_(sCell);
    for (uint32_t j = 0; j < a.width(); ++j) {
        const uint32_t t1 = b_->nor(a[j], ns);
        const uint32_t t2 = b_->nor(b[j], sCell);
        b_->norInto(t1, t2, out[j]);
        b_->pool().freeBit(t1);
        b_->pool().freeBit(t2);
    }
    b_->pool().freeBit(ns);
    return out;
}

// --- arithmetic ---------------------------------------------------------

namespace
{

/** The eight scratch lanes of a lane-aligned ripple adder. */
struct FaLanes
{
    explicit FaLanes(GateBuilder &b) : b_(&b)
    {
        for (auto &l : lanes)
            l = b.pool().allocLane();
    }
    ~FaLanes()
    {
        for (auto l : lanes)
            b_->pool().freeLane(l);
    }
    GateBuilder *b_;
    uint32_t lanes[8] = {};  // x1..x4, y1..y3, carry
};

} // namespace

void
BVOps::addInto(const BV &x, const BV &y, BV &out,
               uint32_t cinCell, uint32_t *coutCell)
{
    const uint32_t w = out.width();
    panicIf(x.width() != w || y.width() != w, "addInto: width mismatch");

    // Lane fast path: when every bit's operands and output share one
    // partition (the strided layout guarantee), the 9 NOR gates per
    // full adder can run against bulk-initialised scratch lanes —
    // 9 micro-ops per bit instead of ~19. In-place accumulation must
    // keep the loose path (bulk INIT would destroy operand bits).
    bool laneable = b_->partitionsEnabled();
    for (uint32_t j = 0; laneable && j < w; ++j) {
        const uint32_t p = partOf(out[j]);
        if (partOf(x[j]) != p || partOf(y[j]) != p ||
            out[j] == x[j] || out[j] == y[j])
            laneable = false;
    }
    if (laneable) {
        const uint32_t parts = geo_->partitions;
        FaLanes L(*b_);
        const uint32_t carryL = L.lanes[7];
        uint32_t c = cinCell != noCell ? cinCell : constCell(false);
        for (uint32_t j = 0; j < w; ++j) {
            if (j % parts == 0) {
                // Re-arm the scratch lanes for this chunk of bits. The
                // carry lane keeps the incoming carry's cell intact.
                for (uint32_t k = 0; k < 7; ++k)
                    b_->initLane(L.lanes[k], true);
                if (j == 0)
                    b_->initLane(carryL, true);
                else
                    b_->runInit(carryL, 0, parts - 2, true);
            }
            const uint32_t p = partOf(out[j]);
            auto cl = [&](uint32_t k) { return b_->cell(L.lanes[k], p); };
            // The carry cell of a chunk's last bit recycles the cell
            // that held the previous chunk's incoming carry: re-INIT.
            const bool recycledCout =
                (j % parts == parts - 1) && j >= parts;
            const uint32_t cn = cl(7);
            b_->norInto(x[j], y[j], cl(0), false);
            b_->norInto(x[j], cl(0), cl(1), false);
            b_->norInto(y[j], cl(0), cl(2), false);
            b_->norInto(cl(1), cl(2), cl(3), false);   // XNOR
            b_->norInto(cl(3), c, cl(4), false);
            b_->norInto(cl(3), cl(4), cl(5), false);
            b_->norInto(c, cl(4), cl(6), false);
            b_->norInto(cl(5), cl(6), out[j], true);   // sum
            b_->norInto(cl(0), cl(4), cn, recycledCout);
            if (j == 0 && cinCell == noCell)
                b_->pool().freeBit(c);  // lane cells are not pool-owned
            c = cn;
        }
        if (coutCell) {
            // Export the final carry as a caller-owned loose cell.
            const uint32_t p = partOf(out[w - 1]);
            const uint32_t cc = b_->pool().allocBitOutside(p, p);
            b_->copyCell(c, cc);
            *coutCell = cc;
        }
        return;
    }

    uint32_t c = cinCell != noCell ? cinCell : constCell(false);
    for (uint32_t j = 0; j < w; ++j) {
        const uint32_t pj = partOf(out[j]);
        const uint32_t cn = b_->pool().allocBitOutside(pj, pj);
        b_->fullAdder(x[j], y[j], c, out[j], cn);
        if (j > 0 || cinCell == noCell)
            b_->pool().freeBit(c);
        c = cn;
    }
    if (coutCell)
        *coutCell = c;
    else
        b_->pool().freeBit(c);
}

BV
BVOps::add(const BV &x, const BV &y)
{
    BV out = alloc(x.width());
    addInto(x, y, out);
    return out;
}

void
BVOps::subInto(const BV &x, const BV &y, BV &out, uint32_t *carryOut)
{
    BV ny = not_(y);
    const uint32_t one = constCell(true);
    addInto(x, ny, out, one, carryOut);
    b_->pool().freeBit(one);
    free(ny);
}

BV
BVOps::sub(const BV &x, const BV &y)
{
    BV out = alloc(x.width());
    subInto(x, y, out);
    return out;
}

namespace
{

/** out <- a XOR b, write-after-read safe for out aliasing a or b. */
void
xorInto(GateBuilder &b, uint32_t a, uint32_t c, uint32_t out)
{
    const uint32_t x1 = b.nor(a, c);
    const uint32_t x2 = b.nor(a, x1);
    const uint32_t x3 = b.nor(c, x1);
    const uint32_t x4 = b.nor(x2, x3);  // XNOR
    b.notInto(x4, out);
    b.pool().freeBit(x1);
    b.pool().freeBit(x2);
    b.pool().freeBit(x3);
    b.pool().freeBit(x4);
}

} // namespace

void
BVOps::addShiftedInPlace(BV &acc, const BV &x, uint32_t offset,
                         uint32_t carryBits)
{
    panicIf(offset + x.width() > acc.width(),
            "addShiftedInPlace: x exceeds accumulator");
    uint32_t c = constCell(false);
    for (uint32_t j = 0; j < x.width(); ++j) {
        const uint32_t aCell = acc[offset + j];
        const uint32_t pj = partOf(aCell);
        const uint32_t cn = b_->pool().allocBitOutside(pj, pj);
        // fullAdder reads acc before norInto overwrites it (x-stage
        // first), so in-place accumulation is safe.
        b_->fullAdder(aCell, x[j], c, aCell, cn);
        b_->pool().freeBit(c);
        c = cn;
    }
    // Ripple the final carry through carryBits more positions; the
    // caller guarantees it cannot escape beyond them.
    for (uint32_t k = 0; k < carryBits; ++k) {
        const uint32_t pos = offset + x.width() + k;
        if (pos >= acc.width())
            break;
        const uint32_t aCell = acc[pos];
        const uint32_t cn = b_->and_(aCell, c);
        xorInto(*b_, aCell, c, aCell);
        b_->pool().freeBit(c);
        c = cn;
    }
    b_->pool().freeBit(c);
}

void
BVOps::incInto(const BV &x, uint32_t condCell, BV &out)
{
    panicIf(x.width() != out.width(), "incInto: width mismatch");
    uint32_t c = condCell;
    for (uint32_t j = 0; j < x.width(); ++j) {
        const uint32_t cn = b_->and_(x[j], c);
        xorInto(*b_, x[j], c, out[j]);
        if (c != condCell)
            b_->pool().freeBit(c);
        c = cn;
    }
    if (c != condCell)
        b_->pool().freeBit(c);
}

// --- reductions / comparisons -------------------------------------------

uint32_t
BVOps::orTree(const BV &x)
{
    panicIf(x.width() == 0, "orTree: empty");
    if (x.width() == 1) {
        const uint32_t t = b_->not_(x[0]);
        const uint32_t r = b_->not_(t);
        b_->pool().freeBit(t);
        return r;
    }
    uint32_t acc = b_->or_(x[0], x[1]);
    for (uint32_t j = 2; j < x.width(); ++j) {
        const uint32_t next = b_->or_(acc, x[j]);
        b_->pool().freeBit(acc);
        acc = next;
    }
    return acc;
}

uint32_t
BVOps::isZero(const BV &x)
{
    const uint32_t t = orTree(x);
    const uint32_t r = b_->not_(t);
    b_->pool().freeBit(t);
    return r;
}

uint32_t
BVOps::andTree(const BV &x)
{
    panicIf(x.width() == 0, "andTree: empty");
    if (x.width() == 1) {
        const uint32_t t = b_->not_(x[0]);
        const uint32_t r = b_->not_(t);
        b_->pool().freeBit(t);
        return r;
    }
    uint32_t acc = b_->and_(x[0], x[1]);
    for (uint32_t j = 2; j < x.width(); ++j) {
        const uint32_t next = b_->and_(acc, x[j]);
        b_->pool().freeBit(acc);
        acc = next;
    }
    return acc;
}

uint32_t
BVOps::ltU(const BV &x, const BV &y)
{
    panicIf(x.width() != y.width(), "ltU: width mismatch");
    // x < y  iff  x + ~y + 1 produces no carry out. The sum itself is
    // discarded; routing through addInto keeps the lane fast path.
    BV ny = not_(y);
    BV trash = alloc(x.width());
    const uint32_t one = constCell(true);
    uint32_t cout = 0;
    addInto(x, ny, trash, one, &cout);
    b_->pool().freeBit(one);
    free(ny);
    free(trash);
    const uint32_t lt = b_->not_(cout);
    b_->pool().freeBit(cout);
    return lt;
}

uint32_t
BVOps::eq(const BV &x, const BV &y)
{
    panicIf(x.width() != y.width(), "eq: width mismatch");
    uint32_t acc = b_->xnor_(x[0], y[0]);
    for (uint32_t j = 1; j < x.width(); ++j) {
        const uint32_t t = b_->xnor_(x[j], y[j]);
        const uint32_t next = b_->and_(acc, t);
        b_->pool().freeBit(acc);
        b_->pool().freeBit(t);
        acc = next;
    }
    return acc;
}

// --- shifts ----------------------------------------------------------

BV
BVOps::shrVar(const BV &x, const BV &sh, uint32_t *stickyCell)
{
    const uint32_t w = x.width();
    uint32_t stages = 0;
    while ((1u << stages) < w)
        ++stages;
    stages = std::min(stages, sh.width());

    const uint32_t zero = constCell(false);
    BV cur = copy(x);
    for (uint32_t k = 0; k < stages; ++k) {
        const uint32_t d = 1u << k;
        if (stickyCell) {
            // sticky |= sel & OR(bits about to fall off)
            const BV dropped = slice(cur, 0, std::min(d, w));
            const uint32_t any = orTree(dropped);
            const uint32_t contrib = b_->and_(any, sh[k]);
            const uint32_t ns = b_->or_(*stickyCell, contrib);
            b_->pool().freeBit(*stickyCell);
            b_->pool().freeBit(any);
            b_->pool().freeBit(contrib);
            *stickyCell = ns;
        }
        // shifted view: bit j <- x[j+d], zeros above
        BV shifted;
        shifted.cells.reserve(w);
        for (uint32_t j = 0; j < w; ++j)
            shifted.cells.push_back(j + d < w ? cur[j + d] : zero);
        SelLanes sel = broadcastSelect(sh[k]);
        BV next = mux(sel, shifted, cur);
        freeSelect(sel);
        free(cur);
        cur = next;
    }
    // Oversized shift: any set bit of sh above the handled stages
    // zeroes the result (and feeds sticky).
    if (sh.width() > stages) {
        const BV high = slice(sh, stages, sh.width());
        const uint32_t over = orTree(high);
        if (stickyCell) {
            const uint32_t any = orTree(cur);
            const uint32_t contrib = b_->and_(any, over);
            const uint32_t ns = b_->or_(*stickyCell, contrib);
            b_->pool().freeBit(*stickyCell);
            b_->pool().freeBit(any);
            b_->pool().freeBit(contrib);
            *stickyCell = ns;
        }
        SelLanes sel = broadcastSelect(over);
        const BV zeros = repeat(zero, w);
        BV next = mux(sel, zeros, cur);
        freeSelect(sel);
        b_->pool().freeBit(over);
        free(cur);
        cur = next;
    }
    b_->pool().freeBit(zero);
    return cur;
}

BV
BVOps::shlVar(const BV &x, const BV &sh)
{
    const uint32_t w = x.width();
    uint32_t stages = 0;
    while ((1u << stages) < w)
        ++stages;
    stages = std::min(stages, sh.width());

    const uint32_t zero = constCell(false);
    BV cur = copy(x);
    for (uint32_t k = 0; k < stages; ++k) {
        const uint32_t d = 1u << k;
        BV shifted;
        shifted.cells.reserve(w);
        for (uint32_t j = 0; j < w; ++j)
            shifted.cells.push_back(j >= d ? cur[j - d] : zero);
        SelLanes sel = broadcastSelect(sh[k]);
        BV next = mux(sel, shifted, cur);
        freeSelect(sel);
        free(cur);
        cur = next;
    }
    if (sh.width() > stages) {
        const BV high = slice(sh, stages, sh.width());
        const uint32_t over = orTree(high);
        SelLanes sel = broadcastSelect(over);
        const BV zeros = repeat(zero, w);
        BV next = mux(sel, zeros, cur);
        freeSelect(sel);
        b_->pool().freeBit(over);
        free(cur);
        cur = next;
    }
    b_->pool().freeBit(zero);
    return cur;
}

BV
BVOps::lzc(const BV &x)
{
    uint32_t stages = 0;
    while ((1u << stages) < x.width())
        ++stages;
    const uint32_t padded = 1u << stages;

    const uint32_t zero = constCell(false);
    // Pad at the LSB side: leading zeros are unchanged for nonzero x.
    BV view = concat(repeat(zero, padded - x.width()), x);
    BV cur = copy(view);
    BV count = alloc(stages);
    for (uint32_t kk = 0; kk < stages; ++kk) {
        const uint32_t k = stages - 1 - kk;
        const uint32_t d = 1u << k;
        const BV top = slice(cur, padded - d, padded);
        const uint32_t z = isZero(top);
        // if top 2^k bits are zero: cur <<= 2^k
        BV shifted;
        shifted.cells.reserve(padded);
        for (uint32_t j = 0; j < padded; ++j)
            shifted.cells.push_back(j >= d ? cur[j - d] : zero);
        SelLanes sel = broadcastSelect(z);
        BV next = mux(sel, shifted, cur);
        freeSelect(sel);
        b_->copyCell(z, count[k]);
        b_->pool().freeBit(z);
        free(cur);
        cur = next;
    }
    free(cur);
    b_->pool().freeBit(zero);
    return count;
}

} // namespace pypim
