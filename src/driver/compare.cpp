/**
 * @file
 * Comparison emitters (Table II: <, <=, >, >=, ==, != for int32 and
 * float32). Results are written as a 0/1 Int32 register.
 *
 * Signed integer comparison flips the sign bits and compares
 * unsigned. Float comparison follows IEEE-754 totally: any NaN makes
 * the ordered predicates false (and != true), and ±0 compare equal.
 */
#include "driver/emit.hpp"

#include "common/error.hpp"

namespace pypim::emit
{

void
writeBoolResult(BVOps &v, uint32_t rd, uint32_t cell)
{
    GateBuilder &b = v.builder();
    b.initLane(rd, false);
    b.copyCell(cell, v.reg(rd)[0]);
}

void
intCompare(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    const uint32_t n = b.geometry().wordBits;
    const BV a = v.reg(in.ra);
    const BV y = v.reg(in.rb);

    uint32_t result = 0;
    if (in.op == ROp::Eq || in.op == ROp::Ne) {
        const uint32_t e = v.eq(a, y);
        if (in.op == ROp::Eq) {
            result = e;
        } else {
            result = b.not_(e);
            b.pool().freeBit(e);
        }
    } else {
        // Signed compare: flip the sign bits, compare unsigned.
        const uint32_t nsa = b.not_(a[n - 1]);
        const uint32_t nsb = b.not_(y[n - 1]);
        const BV au = BVOps::concat(BVOps::slice(a, 0, n - 1),
                                    BVOps::repeat(nsa, 1));
        const BV bu = BVOps::concat(BVOps::slice(y, 0, n - 1),
                                    BVOps::repeat(nsb, 1));
        uint32_t t = 0;
        switch (in.op) {
          case ROp::Lt:
            result = v.ltU(au, bu);
            break;
          case ROp::Gt:
            result = v.ltU(bu, au);
            break;
          case ROp::Ge:
            t = v.ltU(au, bu);
            result = b.not_(t);
            break;
          case ROp::Le:
            t = v.ltU(bu, au);
            result = b.not_(t);
            break;
          default:
            panic("intCompare: not a comparison op");
        }
        if (t)
            b.pool().freeBit(t);
        b.pool().freeBit(nsa);
        b.pool().freeBit(nsb);
    }
    writeBoolResult(v, in.rd, result);
    b.pool().freeBit(result);
}

namespace
{

/** Cell <- 1 iff float register @p x is a NaN. */
uint32_t
isNaNCell(BVOps &v, const BV &x)
{
    GateBuilder &b = v.builder();
    const uint32_t expOnes = v.andTree(BVOps::slice(x, 23, 31));
    const uint32_t fracAny = v.orTree(BVOps::slice(x, 0, 23));
    const uint32_t nan = b.and_(expOnes, fracAny);
    b.pool().freeBit(expOnes);
    b.pool().freeBit(fracAny);
    return nan;
}

/**
 * Cell <- 1 iff a < b for floats (IEEE ordered less-than, both
 * operands known non-NaN; bothZero handled by the caller's mask).
 */
uint32_t
floatLtRaw(BVOps &v, const BV &a, const BV &b2)
{
    GateBuilder &b = v.builder();
    const BV magA = BVOps::slice(a, 0, 31);
    const BV magB = BVOps::slice(b2, 0, 31);
    const uint32_t sa = a[31];
    const uint32_t sb = b2[31];
    const uint32_t nsa = b.not_(sa);
    const uint32_t nsb = b.not_(sb);
    const uint32_t ltAB = v.ltU(magA, magB);
    const uint32_t ltBA = v.ltU(magB, magA);
    // a negative, b non-negative (bothZero excluded by the caller).
    const uint32_t c1 = b.and_(sa, nsb);
    // both non-negative: |a| < |b|
    const uint32_t t2 = b.and_(nsa, nsb);
    const uint32_t c2 = b.and_(t2, ltAB);
    // both negative: |b| < |a|
    const uint32_t t3 = b.and_(sa, sb);
    const uint32_t c3 = b.and_(t3, ltBA);
    const uint32_t c12 = b.or_(c1, c2);
    const uint32_t lt = b.or_(c12, c3);
    for (uint32_t c : {nsa, nsb, ltAB, ltBA, c1, t2, c2, t3, c3, c12})
        b.pool().freeBit(c);
    return lt;
}

} // namespace

void
floatCompare(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    const BV a = v.reg(in.ra);
    const BV y = v.reg(in.rb);

    const uint32_t nanA = isNaNCell(v, a);
    const uint32_t nanB = isNaNCell(v, y);
    const uint32_t anyNaN = b.or_(nanA, nanB);
    const uint32_t noNaN = b.not_(anyNaN);
    const uint32_t zA = v.isZero(BVOps::slice(a, 0, 31));
    const uint32_t zB = v.isZero(BVOps::slice(y, 0, 31));
    const uint32_t bothZero = b.and_(zA, zB);

    auto orderedLt = [&](const BV &x1, const BV &x2) {
        const uint32_t raw = floatLtRaw(v, x1, x2);
        const uint32_t nz = b.not_(bothZero);
        const uint32_t t = b.and_(raw, nz);
        const uint32_t lt = b.and_(t, noNaN);
        b.pool().freeBit(raw);
        b.pool().freeBit(nz);
        b.pool().freeBit(t);
        return lt;
    };
    auto orderedEq = [&]() {
        const uint32_t bits = v.eq(a, y);
        const uint32_t e0 = b.or_(bits, bothZero);
        const uint32_t e = b.and_(e0, noNaN);
        b.pool().freeBit(bits);
        b.pool().freeBit(e0);
        return e;
    };

    uint32_t result = 0;
    switch (in.op) {
      case ROp::Lt:
        result = orderedLt(a, y);
        break;
      case ROp::Gt:
        result = orderedLt(y, a);
        break;
      case ROp::Le: {
        const uint32_t lt = orderedLt(a, y);
        const uint32_t e = orderedEq();
        result = b.or_(lt, e);
        b.pool().freeBit(lt);
        b.pool().freeBit(e);
        break;
      }
      case ROp::Ge: {
        const uint32_t gt = orderedLt(y, a);
        const uint32_t e = orderedEq();
        result = b.or_(gt, e);
        b.pool().freeBit(gt);
        b.pool().freeBit(e);
        break;
      }
      case ROp::Eq:
        result = orderedEq();
        break;
      case ROp::Ne: {
        const uint32_t e = orderedEq();
        result = b.not_(e);  // NaN != anything, including itself
        b.pool().freeBit(e);
        break;
      }
      default:
        panic("floatCompare: not a comparison op");
    }
    writeBoolResult(v, in.rd, result);
    for (uint32_t c : {result, nanA, nanB, anyNaN, noNaN, zA, zB,
                       bothZero})
        b.pool().freeBit(c);
}

} // namespace pypim::emit
