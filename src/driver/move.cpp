/**
 * @file
 * Move-instruction lowering (paper §III-E, §III-F, §IV).
 *
 * Intra-warp moves transfer one register between two threads of every
 * mask-selected warp using vertical (transposed) stateful logic. A
 * stateful NOT inverts, so the copy needs an even number of
 * inversions; the lowering uses four NOT stages (two horizontal lane
 * NOTs, one vertical NOT, one horizontal pair on the destination row):
 *
 *   srcRow:  tmp  <- NOT reg      (horizontal lane NOT)
 *   vert:    dstRow.tmp <- NOT srcRow.tmp
 *   dstRow:  tmp2 <- NOT tmp;  dstReg <- NOT tmp2
 *
 * Inter-warp moves lower to a single H-tree move micro-op: the
 * crossbar mask names the source warps (step must be a power of 4,
 * paper §III-F) and the op carries the destination start, rows and
 * register indices. One op transfers one thread per warp pair —
 * warp-parallel, thread-serial, exactly the ISA's move semantics.
 */
#include "driver/driver.hpp"

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace pypim
{

void
Driver::execute(const MoveInstr &in)
{
    fatalIf(in.srcReg >= geo_->userRegs || in.dstReg >= geo_->userRegs,
            "move register out of range");
    fatalIf(in.srcRow >= geo_->rows || in.dstRow >= geo_->rows,
            "move row out of range");
    in.warps.validate(geo_->numCrossbars, "warp");
    builder_.pool().reset();

    if (in.kind == MoveInstr::Kind::InterWarp) {
        fatalIf(!isPow2(in.warps.step) ||
                (log2Floor(in.warps.step) % 2) != 0,
                "inter-warp move: warp step must be a power of 4");
        const int64_t dist = static_cast<int64_t>(in.dstStartWarp) -
                             static_cast<int64_t>(in.warps.start);
        const int64_t last = static_cast<int64_t>(in.warps.stop) + dist;
        fatalIf(in.dstStartWarp >= geo_->numCrossbars || last < 0 ||
                last >= geo_->numCrossbars,
                "inter-warp move: destination out of range");
        builder_.setWarpMask(in.warps);
        builder_.emit(enc::move(in.dstStartWarp, in.srcRow, in.dstRow,
                                in.srcReg, in.dstReg));
        builder_.flush();
        ++stats_.instructions;
        return;
    }

    // Intra-warp move.
    if (in.srcRow == in.dstRow) {
        if (in.srcReg != in.dstReg) {
            builder_.setWarpMask(in.warps);
            builder_.setRowMask(Range::single(in.srcRow));
            builder_.laneCopy(in.srcReg, in.dstReg);
        }
        builder_.flush();
        ++stats_.instructions;
        return;
    }

    const uint32_t tmp = builder_.pool().allocLane();
    const uint32_t tmp2 = builder_.pool().allocLane();
    builder_.setWarpMask(in.warps);
    // Stage 1 (source row): tmp <- NOT(srcReg).
    builder_.setRowMask(Range::single(in.srcRow));
    builder_.laneNot(in.srcReg, tmp);
    // Stage 2 (vertical): dstRow.tmp <- NOT(srcRow.tmp). Vertical ops
    // name their rows explicitly; the row mask does not apply.
    builder_.emit(enc::logicV(Gate::Init1, 0, in.dstRow, tmp));
    builder_.emit(enc::logicV(Gate::Not, in.srcRow, in.dstRow, tmp));
    // Stage 3 (destination row): dstReg <- NOT(NOT(tmp)).
    builder_.setRowMask(Range::single(in.dstRow));
    builder_.laneNot(tmp, tmp2);
    builder_.laneNot(tmp2, in.dstReg);
    builder_.pool().freeLane(tmp);
    builder_.pool().freeLane(tmp2);
    builder_.flush();
    ++stats_.instructions;
}

} // namespace pypim
