#include "driver/mulcore.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pypim::emit
{

BV
shiftAddMultiply(BVOps &v, const BV &a, const BV &b,
                 const std::vector<uint32_t> &lowOut,
                 uint32_t truncateTo, bool keepHigh)
{
    GateBuilder &g = v.builder();
    const Geometry &geo = g.geometry();
    const uint32_t pw = geo.partitionWidth();
    const uint32_t wa = a.width();
    const uint32_t wb = b.width();
    panicIf(wa > geo.partitions, "shiftAddMultiply: multiplicand wider "
            "than the partition count");
    for (uint32_t j = 0; j < wa; ++j)
        panicIf(a[j] / pw != j,
                "shiftAddMultiply: multiplicand is not lane-aligned");
    panicIf(lowOut.size() <
            std::min<uint64_t>(wb, truncateTo),
            "shiftAddMultiply: lowOut too small");

    const uint32_t aSlot = a[0] % pw;
    uint32_t accCur = g.pool().allocLane();
    uint32_t accNext = g.pool().allocLane();
    g.initLane(accCur, false);  // accumulator starts at 0
    const uint32_t pp = g.pool().allocLane();
    // ~b_i broadcast lane (only the complement is needed).
    const uint32_t nsLane = g.pool().allocLane();
    // x1..x4, y1..y3, carry
    uint32_t fa[8];
    for (auto &l : fa)
        l = g.pool().allocLane();
    const uint32_t zeroCin = v.constCell(false);

    for (uint32_t i = 0; i < wb && i < truncateTo; ++i) {
        const uint32_t u =
            std::min(wa, truncateTo - i);  // useful sum width
        const bool dropCout = i + u >= truncateTo;
        // ns[p] <- ~b_i everywhere.
        g.initLane(nsLane, true);
        for (uint32_t p = 0; p < geo.partitions; ++p)
            g.notInto(b[i], g.cell(nsLane, p), false);
        // pp[j] = a[j] AND b_i = NOR(NOR(a[j], ns[j]), ns[j]),
        // borrowing the x1 lane for the intermediate (re-armed below).
        g.runInit(fa[0], 0, u - 1, true);
        g.runNor(aSlot, nsLane, fa[0], 0, u - 1, false);
        g.runInit(pp, 0, u - 1, true);
        g.runNor(fa[0], nsLane, pp, 0, u - 1, false);
        // Re-arm the scratch lanes.
        for (uint32_t k = 0; k < 7; ++k)
            g.runInit(fa[k], 0, u - 1, true);
        if (u >= 2) {
            g.runInit(fa[7], 0, u - 2, true);      // carries
            g.runInit(accNext, 0, u - 1, true);    // next accumulator
        } else {
            g.runInit(accNext, 0, 0, true);
        }
        uint32_t c = zeroCin;
        for (uint32_t j = 0; j < u; ++j) {
            auto cl = [&](uint32_t k) { return g.cell(fa[k], j); };
            const uint32_t aj = g.cell(accCur, j);
            const uint32_t pj = g.cell(pp, j);
            g.norInto(aj, pj, cl(0), false);
            g.norInto(aj, cl(0), cl(1), false);
            g.norInto(pj, cl(0), cl(2), false);
            g.norInto(cl(1), cl(2), cl(3), false);  // XNOR
            g.norInto(cl(3), c, cl(4), false);
            g.norInto(cl(3), cl(4), cl(5), false);
            g.norInto(c, cl(4), cl(6), false);
            if (j == 0) {
                // Final product bit i.
                g.norInto(cl(5), cl(6), lowOut[i], true);
            } else {
                // Sum bit j lands one partition left: the free shift.
                g.norInto(cl(5), cl(6), g.cell(accNext, j - 1), false);
            }
            if (j + 1 == u) {
                if (!dropCout)
                    g.norInto(cl(0), cl(4), g.cell(accNext, u - 1),
                              false);
            } else {
                g.norInto(cl(0), cl(4), cl(7), false);
                c = cl(7);
            }
        }
        std::swap(accCur, accNext);
    }

    g.pool().freeBit(zeroCin);
    g.pool().freeLane(nsLane);
    g.pool().freeLane(pp);
    for (auto l : fa)
        g.pool().freeLane(l);
    g.pool().freeLane(accNext);
    if (!keepHigh) {
        g.pool().freeLane(accCur);
        return BV{};
    }
    BV high;
    high.ownedLanes.push_back(accCur);
    high.cells.reserve(wa);
    for (uint32_t j = 0; j < wa; ++j)
        high.cells.push_back(g.cell(accCur, j));
    return high;
}

} // namespace pypim::emit
