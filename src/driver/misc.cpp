/**
 * @file
 * Miscellaneous emitters (Table II: neg, sign, zero, abs, mux, copy
 * for int32 and float32).
 *
 * Int semantics follow C two's complement (neg(INT_MIN) wraps).
 * Float semantics follow IEEE-754: neg/abs are pure sign-bit
 * operations (valid for NaN too); sign(x) returns ±1.0 for nonzero
 * finite/infinite x, preserves signed zeros, and propagates NaN
 * (matching numpy.sign).
 */
#include "driver/emit.hpp"

#include "common/error.hpp"

namespace pypim::emit
{

void
intNeg(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    const uint32_t zero = v.constCell(false);
    const BV zeros = BVOps::repeat(zero, a.width());
    v.subInto(zeros, a, d);
    v.builder().pool().freeBit(zero);
}

void
intAbs(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    const uint32_t zero = v.constCell(false);
    const BV zeros = BVOps::repeat(zero, a.width());
    BV neg = v.sub(zeros, a);
    SelLanes sel = v.broadcastSelect(a[a.width() - 1]);
    v.muxInto(sel, neg, a, d);
    v.freeSelect(sel);
    v.free(neg);
    v.builder().pool().freeBit(zero);
}

void
intSign(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    const BV a = v.reg(in.ra);
    const BV d = v.reg(in.rd);
    const uint32_t s = a[a.width() - 1];
    // -1 (all ones) when negative, else 0: broadcast the sign bit.
    b.broadcastToLane(s, in.rd);
    // Bit 0: 1 for any nonzero value that is not negative... combined
    // with the broadcast: bit0 = s OR (a != 0).
    const uint32_t z = v.isZero(a);
    const uint32_t nz = b.not_(z);
    const uint32_t bit0 = b.or_(s, nz);
    b.copyCell(bit0, d[0]);
    for (uint32_t c : {z, nz, bit0})
        b.pool().freeBit(c);
}

void
intZero(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    const uint32_t z = v.isZero(a);
    writeBoolResult(v, in.rd, z);
    v.builder().pool().freeBit(z);
}

void
floatNeg(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    BV dMag = BVOps::slice(d, 0, 31);
    const BV aMag = BVOps::slice(a, 0, 31);
    v.copyInto(aMag, dMag);
    v.builder().notInto(a[31], d[31]);
}

void
floatAbs(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    BV dMag = BVOps::slice(d, 0, 31);
    const BV aMag = BVOps::slice(a, 0, 31);
    v.copyInto(aMag, dMag);
    v.builder().initCell(d[31], false);
}

void
floatZero(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    const uint32_t z = v.isZero(BVOps::slice(a, 0, 31));
    writeBoolResult(v, in.rd, z);
    v.builder().pool().freeBit(z);
}

void
floatSign(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    // NaN detection.
    const uint32_t expOnes = v.andTree(BVOps::slice(a, 23, 31));
    const uint32_t fracAny = v.orTree(BVOps::slice(a, 0, 23));
    const uint32_t nan = b.and_(expOnes, fracAny);
    const uint32_t magZ = v.isZero(BVOps::slice(a, 0, 31));
    // magnitude = NaN ? qNaN : (zero ? 0 : 1.0f)
    BV one31 = v.constant(31, 0x3F800000u);
    BV zero31 = v.constant(31, 0);
    BV m1 = v.muxCell(magZ, zero31, one31);
    BV nan31 = v.constant(31, 0x7FC00000u);
    BV m2 = v.muxCell(nan, nan31, m1);
    BV dMag = BVOps::slice(d, 0, 31);
    v.copyInto(m2, dMag);
    // sign preserved (also for ±0), cleared for NaN.
    const uint32_t nn = b.not_(nan);
    const uint32_t s = b.and_(a[31], nn);
    b.copyCell(s, d[31]);
    v.free(one31);
    v.free(zero31);
    v.free(m1);
    v.free(nan31);
    v.free(m2);
    for (uint32_t c : {expOnes, fracAny, nan, magZ, nn, s})
        b.pool().freeBit(c);
}

void
muxOp(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    const BV y = v.reg(in.rb);
    const BV c = v.reg(in.rc);
    BV d = v.reg(in.rd);
    SelLanes sel = v.broadcastSelect(c[0]);
    v.muxInto(sel, a, y, d);
    v.freeSelect(sel);
}

void
copyReg(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    v.copyInto(a, d);
}

} // namespace pypim::emit
