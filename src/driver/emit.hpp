/**
 * @file
 * Internal declarations of the per-operation emitters of the host
 * driver. Each function translates one R-type macro-instruction into a
 * micro-operation stream via the BitVec layer; masks are already set
 * and the scratch pool is reset by the Driver before dispatch.
 *
 * Serial emitters implement the bit-serial element-parallel algorithms
 * (paper Fig. 4(a)); the parallel emitters implement the bit-parallel
 * element-parallel algorithms using partitions (Fig. 4(b)):
 * carry-lookahead addition (Brent-Kung prefix) and a carry-save
 * multiplier, following AritPIM / MultPIM.
 */
#ifndef PYPIM_DRIVER_EMIT_HPP
#define PYPIM_DRIVER_EMIT_HPP

#include "driver/bitvec.hpp"
#include "isa/instruction.hpp"

namespace pypim::emit
{

// intserial.cpp — bit-serial fixed point
void intAddSerial(BVOps &v, const RTypeInstr &in);
void intSubSerial(BVOps &v, const RTypeInstr &in);
void intMulSerial(BVOps &v, const RTypeInstr &in);
void intDivSerial(BVOps &v, const RTypeInstr &in, bool wantMod);

// intparallel.cpp — partition-parallel fixed point
void intAddParallel(BVOps &v, const RTypeInstr &in);
void intSubParallel(BVOps &v, const RTypeInstr &in);
void intMulParallel(BVOps &v, const RTypeInstr &in);

// floatarith.cpp — IEEE-754 float32
void floatAddSub(BVOps &v, const RTypeInstr &in, bool subtract);
void floatMul(BVOps &v, const RTypeInstr &in);
void floatDiv(BVOps &v, const RTypeInstr &in);

// compare.cpp
void intCompare(BVOps &v, const RTypeInstr &in);
void floatCompare(BVOps &v, const RTypeInstr &in);

// bitwise.cpp
void bitwise(BVOps &v, const RTypeInstr &in);

// misc.cpp
void intNeg(BVOps &v, const RTypeInstr &in);
void intSign(BVOps &v, const RTypeInstr &in);
void intAbs(BVOps &v, const RTypeInstr &in);
void intZero(BVOps &v, const RTypeInstr &in);
void floatNeg(BVOps &v, const RTypeInstr &in);
void floatSign(BVOps &v, const RTypeInstr &in);
void floatAbs(BVOps &v, const RTypeInstr &in);
void floatZero(BVOps &v, const RTypeInstr &in);
void muxOp(BVOps &v, const RTypeInstr &in);
void copyReg(BVOps &v, const RTypeInstr &in);

/** Write a 0/1 cell into rd as a full-width boolean register. */
void writeBoolResult(BVOps &v, uint32_t rd, uint32_t cell);

} // namespace pypim::emit

#endif // PYPIM_DRIVER_EMIT_HPP
