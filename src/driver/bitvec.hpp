/**
 * @file
 * Multi-bit value layer of the host driver.
 *
 * A BV names a little-endian vector of cells (column addresses) that
 * together hold one multi-bit value in every mask-selected row. BVOps
 * provides word-level combinational building blocks (bitwise ops,
 * ripple add/sub, comparisons, variable shifts with sticky collection,
 * leading-zero count, multiplexing) emitted as stateful-logic gate
 * sequences through a GateBuilder. The AritPIM-style fixed-point and
 * floating-point routines (paper §V-B) are written on top of this
 * layer.
 *
 * Allocation discipline:
 *  - BVs returned by alloc()/copy()/operators own lane slots and must
 *    be released with free() (or implicitly by the driver's
 *    per-instruction ScratchPool reset).
 *  - reg()/slice()/concat()/repeat() return non-owning views.
 *  - All loose temporary cells used inside a primitive are freed
 *    before it returns.
 *
 * Everything here is data-parallel: there is no data-dependent
 * control flow, so one emitted gate sequence computes the operation
 * for every selected row simultaneously (element-parallel arithmetic,
 * paper §II-B).
 */
#ifndef PYPIM_DRIVER_BITVEC_HPP
#define PYPIM_DRIVER_BITVEC_HPP

#include <cstdint>
#include <vector>

#include "driver/gatebuilder.hpp"

namespace pypim
{

/** Little-endian vector of cells holding one value per row. */
struct BV
{
    std::vector<uint32_t> cells;       //!< LSB first, column addresses
    std::vector<uint32_t> ownedLanes;  //!< lane slots released by free()

    uint32_t width() const { return static_cast<uint32_t>(cells.size()); }
    uint32_t operator[](uint32_t i) const { return cells[i]; }
};

/** Broadcast select: a (s, ~s) lane pair for width-parallel muxing. */
struct SelLanes
{
    uint32_t s = 0;   //!< lane slot holding the select in every partition
    uint32_t ns = 0;  //!< lane slot holding its complement
};

/** Word-level combinational primitives over BVs. */
class BVOps
{
  public:
    explicit BVOps(GateBuilder &b);

    GateBuilder &builder() { return *b_; }

    // --- construction ------------------------------------------------

    /** Allocate a lane-backed, uninitialised BV of @p width bits. */
    BV alloc(uint32_t width);
    /** Release the lanes owned by @p x (views release nothing). */
    void free(BV &x);
    /** Non-owning view of an ISA register slot. */
    BV reg(uint32_t slot) const;
    /** Non-owning view of bits [lo, hi) of @p x. */
    static BV slice(const BV &x, uint32_t lo, uint32_t hi);
    /** Non-owning view concatenating @p lo (LSBs) and @p hi (MSBs). */
    static BV concat(const BV &lo, const BV &hi);
    /** Non-owning view repeating one cell @p n times (pad/extend). */
    static BV repeat(uint32_t cell, uint32_t n);
    /** Allocate and initialise to a compile-time constant. */
    BV constant(uint32_t width, uint64_t value);
    /** Initialise an existing BV to a constant (run-compressed INITs). */
    void setConst(BV &x, uint64_t value);

    /** A fresh cell initialised to @p v. */
    uint32_t constCell(bool v);

    /** Zero-extend view of @p x to @p width using a shared 0 cell. */
    BV zext(const BV &x, uint32_t width, uint32_t zeroCell) const;
    /** Sign-extend view of @p x to @p width (repeats the MSB cell). */
    static BV sext(const BV &x, uint32_t width);

    // --- bitwise -----------------------------------------------------

    /**
     * out[j] <- g(a[j], b[j]) for every bit. Detects lane-aligned runs
     * and emits them as single periodic micro-ops. @p b must be null
     * for Not. @p out must not alias @p a or @p b.
     */
    void gateInto(Gate g, const BV *a, const BV *b, BV &out);

    BV not_(const BV &x);
    BV and_(const BV &x, const BV &y);
    BV or_(const BV &x, const BV &y);
    BV xor_(const BV &x, const BV &y);
    BV xnor_(const BV &x, const BV &y);
    BV nor_(const BV &x, const BV &y);

    /** dst <- src (double-NOT; widths must match). */
    void copyInto(const BV &src, BV &dst);
    BV copy(const BV &x);

    // --- select / mux ------------------------------------------------

    /** Broadcast one cell into a (s, ~s) lane pair (~N+6 micro-ops). */
    SelLanes broadcastSelect(uint32_t sCell);
    void freeSelect(SelLanes sel);

    /**
     * Non-owning view of select lane @p laneSlot aligned to the
     * partitions of @p like (cell j sits in like[j]'s partition).
     */
    BV selBV(uint32_t laneSlot, const BV &like) const;

    /** out <- s ? a : b with a broadcast select. */
    void muxInto(const SelLanes &sel, const BV &a, const BV &b, BV &out);
    BV mux(const SelLanes &sel, const BV &a, const BV &b);
    /** Mux on a plain cell (broadcasts internally when wide). */
    BV muxCell(uint32_t sCell, const BV &a, const BV &b);

    // --- arithmetic ----------------------------------------------------

    /**
     * out <- x + y (+ cin). Widths of x, y, out must match; pass
     * coutCell to receive the carry out (caller frees).
     */
    void addInto(const BV &x, const BV &y, BV &out,
                 uint32_t cinCell = noCell, uint32_t *coutCell = nullptr);
    BV add(const BV &x, const BV &y);

    /** out <- x - y; *carryOut = 1 iff NO borrow (x >= y unsigned). */
    void subInto(const BV &x, const BV &y, BV &out,
                 uint32_t *carryOut = nullptr);
    BV sub(const BV &x, const BV &y);

    /**
     * acc[offset ..] <- acc + x * 2^offset, rippling the final carry
     * through @p carryBits positions past the top of x (the caller
     * guarantees no carry escapes further — true for multiplier
     * accumulation). In-place and read-safe per bit.
     */
    void addShiftedInPlace(BV &acc, const BV &x, uint32_t offset,
                           uint32_t carryBits);

    /** out <- x + cond (single-bit increment, half-adder chain). */
    void incInto(const BV &x, uint32_t condCell, BV &out);

    // --- reductions / comparisons ---------------------------------------

    /** Cell <- OR of all bits of x. */
    uint32_t orTree(const BV &x);
    /** Cell <- 1 iff x == 0. */
    uint32_t isZero(const BV &x);
    /** Cell <- AND of all bits of x. */
    uint32_t andTree(const BV &x);
    /** Cell <- 1 iff x < y (unsigned; equal widths). */
    uint32_t ltU(const BV &x, const BV &y);
    /** Cell <- 1 iff x == y. */
    uint32_t eq(const BV &x, const BV &y);

    // --- shifts ----------------------------------------------------------

    /**
     * out <- x >> sh (logical). Bits shifted out are OR-accumulated
     * into *stickyCell when non-null (the cell is replaced). Handles
     * sh wider than log2(width): oversized shifts yield 0 with all
     * bits going to sticky.
     */
    BV shrVar(const BV &x, const BV &sh, uint32_t *stickyCell);
    /** out <- x << sh (bits shifted past the top are dropped). */
    BV shlVar(const BV &x, const BV &sh);

    /**
     * Leading-zero count of x (from the MSB). Returns a BV of
     * ceil(log2(next pow2 width) + 1) bits; x == 0 yields the padded
     * width, which callers clamp via their own logic.
     */
    BV lzc(const BV &x);

    static constexpr uint32_t noCell = 0xFFFFFFFFu;

  private:
    uint32_t slotOf(uint32_t cell) const;
    uint32_t partOf(uint32_t cell) const;

    GateBuilder *b_;
    const Geometry *geo_;
};

} // namespace pypim

#endif // PYPIM_DRIVER_BITVEC_HPP
