#include "driver/driver.hpp"

#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "driver/emit.hpp"
#include "sim/batch_trace.hpp"
#include "sim/bulk_io.hpp"
#include "sim/serialize.hpp"

#include <algorithm>

namespace pypim
{

Driver::Driver(OperationSink &sink, const Geometry &geo, Mode mode)
    : geo_(&geo),
      sink_(&sink),
      builder_(sink, geo),
      bv_(builder_),
      mode_(mode)
{
    geo.validate();
}

Driver::StreamKey
Driver::makeKey(const RTypeInstr &in) const
{
    StreamKey k;
    k.fields = static_cast<uint64_t>(in.op) |
               (static_cast<uint64_t>(in.dtype) << 8) |
               (static_cast<uint64_t>(in.rd) << 16) |
               (static_cast<uint64_t>(in.ra) << 24) |
               (static_cast<uint64_t>(in.rb) << 32) |
               (static_cast<uint64_t>(in.rc) << 40) |
               (static_cast<uint64_t>(mode_) << 48) |
               (static_cast<uint64_t>(builder_.partitionsEnabled())
                << 56);
    k.warps = in.warps;
    k.rows = in.rows;
    return k;
}

void
Driver::setPartitionsEnabled(bool on)
{
    builder_.setPartitionsEnabled(on);
}

void
Driver::setTraceFusionEnabled(bool on)
{
    if (on == traceFusionOn_)
        return;
    traceFusionOn_ = on;
    // Handles were optimised under the old setting; keep the recorded
    // streams and rebuild traces lazily on the next hit.
    for (auto &kv : streamCache_)
        kv.second.trace.reset();
}

std::vector<uint8_t>
Driver::exportStreamCache() const
{
    // Deterministic entry order (sorted by signature), so the same
    // cache state always produces the same blob — checkpoints stay
    // byte-comparable across runs despite the unordered_map.
    std::vector<const std::pair<const StreamKey, StreamEntry> *> es;
    es.reserve(streamCache_.size());
    for (const auto &kv : streamCache_)
        es.push_back(&kv);
    std::sort(es.begin(), es.end(), [](const auto *a, const auto *b) {
        const StreamKey &x = a->first, &y = b->first;
        if (x.fields != y.fields)
            return x.fields < y.fields;
        if (x.warps.start != y.warps.start)
            return x.warps.start < y.warps.start;
        if (x.warps.stop != y.warps.stop)
            return x.warps.stop < y.warps.stop;
        if (x.rows.start != y.rows.start)
            return x.rows.start < y.rows.start;
        if (x.rows.stop != y.rows.stop)
            return x.rows.stop < y.rows.stop;
        return x.rows.step < y.rows.step;
    });
    ByteWriter w;
    w.u64(es.size());
    for (const auto *kv : es) {
        w.u64(kv->first.fields);
        writeRange(w, kv->first.warps);
        writeRange(w, kv->first.rows);
        w.u64(kv->second.ops.size());
        for (Word op : kv->second.ops)
            w.u64(op);
    }
    return w.take();
}

void
Driver::importStreamCache(const std::vector<uint8_t> &blob)
{
    streamCache_.clear();
    if (blob.empty())
        return;
    ByteReader r(blob);
    const uint64_t count = r.u64();
    for (uint64_t i = 0; i < count; ++i) {
        StreamKey k;
        k.fields = r.u64();
        k.warps = readRange(r);
        k.rows = readRange(r);
        StreamEntry e;
        const uint64_t n = r.u64();
        fatalIf(n > r.remaining() / 8,
                "driver cache restore: truncated stream");
        e.ops.reserve(n);
        for (uint64_t j = 0; j < n; ++j)
            e.ops.push_back(r.u64());
        // Traces are derived state: rebuilt lazily by replayEntry on
        // the first post-restore hit (exactly like a fusion toggle).
        streamCache_.emplace(k, std::move(e));
    }
    r.expectEnd("driver stream cache");
}

void
Driver::replayEntry(StreamEntry &e)
{
    if (traceCacheOn_) {
        if (e.trace) {
            ++stats_.traceCacheHits;
        } else {
            e.trace = sink_->prepareTrace(e.ops.data(), e.ops.size(),
                                          traceFusionOn_);
            if (e.trace) {
                ++stats_.traceCacheMisses;
                stats_.fusionWaw += e.trace->fusion.waw;
                stats_.fusionInitChain += e.trace->fusion.initChain;
                stats_.fusionWindow += e.trace->fusion.window;
                stats_.fusionWriteStripe +=
                    e.trace->fusion.writeStripe;
            }
        }
        if (e.trace) {
            sink_->submitTrace(e.trace);
            return;
        }
    }
    sink_->submitBatch(e.ops.data(), e.ops.size());
}

void
Driver::validate(const RTypeInstr &in) const
{
    // Hot path (every instruction): build messages lazily.
    if (!ropSupported(in.op, in.dtype)) {
        fatal(std::string("unsupported operation ") + ropName(in.op) +
              " for dtype " + dtypeName(in.dtype));
    }
    if (in.dtype == DType::Float32 && geo_->wordBits != 32)
        fatal("float32 operations require a 32-bit word geometry");
    in.warps.validate(geo_->numCrossbars, "warp");
    in.rows.validate(geo_->rows, "thread");
    const uint32_t arity = ropArity(in.op);
    auto checkReg = [&](uint8_t r, const char *what) {
        if (r >= geo_->userRegs)
            fatal(std::string(what) + " register out of range");
    };
    checkReg(in.rd, "destination");
    checkReg(in.ra, "source a");
    if (arity >= 2)
        checkReg(in.rb, "source b");
    if (arity >= 3)
        checkReg(in.rc, "source c");
    // The emitters bulk-initialise rd before consuming all source
    // bits, so aliasing is rejected wholesale.
    if (in.rd == in.ra || (arity >= 2 && in.rd == in.rb) ||
        (arity >= 3 && in.rd == in.rc))
        fatal("destination register must not alias a source register");
}

void
Driver::execute(const RTypeInstr &in)
{
    validate(in);
    if (streamCacheOn_) {
        const StreamKey key = makeKey(in);
        const auto it = streamCache_.find(key);
        if (it != streamCache_.end()) {
            // Replay the memoised (self-contained) translation — via
            // the pre-built trace handle when the trace cache is on:
            // the chip ends up in the instruction's mask state.
            builder_.flush();
            replayEntry(it->second);
            builder_.assumeMasks(in.warps, in.rows);
            ++stats_.instructions;
            return;
        }
        // Record a self-contained stream (mask ops always included).
        struct Recorder : OperationSink
        {
            std::vector<Word> ops;
            void
            performBatch(const Word *p, size_t n) override
            {
                ops.insert(ops.end(), p, p + n);
            }
            uint32_t performRead(Word) override { return 0; }
        } rec;
        OperationSink *real = builder_.swapSink(&rec);
        builder_.resetMaskState();
        builder_.pool().reset();
        builder_.setMasks(in.warps, in.rows);
        dispatch(in);
        builder_.flush();
        builder_.swapSink(real);
        if (streamCache_.size() >= 4096)
            streamCache_.clear();  // simple bound; signatures are few
        StreamEntry &e =
            streamCache_
                .emplace(key, StreamEntry{std::move(rec.ops), nullptr})
                .first->second;
        // Decode-once even for the first execution: the miss path
        // builds the trace and replays it, so the raw stream is never
        // translated by the sink at all.
        replayEntry(e);
        builder_.assumeMasks(in.warps, in.rows);
        ++stats_.instructions;
        return;
    }
    builder_.pool().reset();
    builder_.setMasks(in.warps, in.rows);
    dispatch(in);
    builder_.flush();
    ++stats_.instructions;
}

void
Driver::dispatch(const RTypeInstr &in)
{
    const bool isFloat = in.dtype == DType::Float32;
    const bool parallel = mode_ == Mode::Parallel;
    switch (in.op) {
      case ROp::Add:
        if (isFloat)
            emit::floatAddSub(bv_, in, false);
        else if (parallel)
            emit::intAddParallel(bv_, in);
        else
            emit::intAddSerial(bv_, in);
        return;
      case ROp::Sub:
        if (isFloat)
            emit::floatAddSub(bv_, in, true);
        else if (parallel)
            emit::intSubParallel(bv_, in);
        else
            emit::intSubSerial(bv_, in);
        return;
      case ROp::Mul:
        if (isFloat)
            emit::floatMul(bv_, in);
        else if (parallel)
            emit::intMulParallel(bv_, in);
        else
            emit::intMulSerial(bv_, in);
        return;
      case ROp::Div:
        if (isFloat)
            emit::floatDiv(bv_, in);
        else
            emit::intDivSerial(bv_, in, false);
        return;
      case ROp::Mod:
        emit::intDivSerial(bv_, in, true);
        return;
      case ROp::Neg:
        isFloat ? emit::floatNeg(bv_, in) : emit::intNeg(bv_, in);
        return;
      case ROp::Lt:
      case ROp::Le:
      case ROp::Gt:
      case ROp::Ge:
      case ROp::Eq:
      case ROp::Ne:
        isFloat ? emit::floatCompare(bv_, in) : emit::intCompare(bv_, in);
        return;
      case ROp::BitNot:
      case ROp::BitAnd:
      case ROp::BitOr:
      case ROp::BitXor:
        emit::bitwise(bv_, in);
        return;
      case ROp::Sign:
        isFloat ? emit::floatSign(bv_, in) : emit::intSign(bv_, in);
        return;
      case ROp::Zero:
        isFloat ? emit::floatZero(bv_, in) : emit::intZero(bv_, in);
        return;
      case ROp::Abs:
        isFloat ? emit::floatAbs(bv_, in) : emit::intAbs(bv_, in);
        return;
      case ROp::Mux:
        emit::muxOp(bv_, in);
        return;
      case ROp::Copy:
        emit::copyReg(bv_, in);
        return;
    }
    panic("dispatch: unknown R-type op");
}

void
Driver::execute(const WriteInstr &in)
{
    fatalIf(in.reg >= geo_->userRegs, "write register out of range");
    in.warps.validate(geo_->numCrossbars, "warp");
    in.rows.validate(geo_->rows, "thread");
    builder_.setMasks(in.warps, in.rows);
    builder_.writeWord(in.reg, in.value);
    builder_.flush();
    ++stats_.instructions;
}

uint32_t
Driver::execute(const ReadInstr &in)
{
    fatalIf(in.reg >= geo_->userRegs, "read register out of range");
    fatalIf(in.warp >= geo_->numCrossbars, "read warp out of range");
    fatalIf(in.row >= geo_->rows, "read row out of range");
    ++stats_.instructions;
    return builder_.readWord(in.warp, in.row, in.reg);
}

namespace
{

/** Shared addressing validation of a bulk transfer. */
void
validateBulk(const Geometry &geo, uint8_t reg, uint32_t warpStart,
             uint64_t rowStart, uint64_t rowStep, uint64_t count)
{
    fatalIf(reg >= geo.userRegs, "bulk I/O register out of range");
    fatalIf(rowStep == 0, "bulk I/O row step must be positive");
    const uint64_t last = rowStart + (count - 1) * rowStep;
    const uint64_t lastWarp = warpStart + last / geo.rows;
    fatalIf(lastWarp >= geo.numCrossbars,
            "bulk I/O transfer exceeds the crossbar space");
}

} // namespace

bool
Driver::readBulk(uint8_t reg, uint32_t warpStart, uint64_t rowStart,
                 uint64_t rowStep, uint64_t count, uint32_t *out)
{
    if (count == 0)
        return true;
    validateBulk(*geo_, reg, warpStart, rowStart, rowStep, count);
    // The read planner replicates readWord's narrow/restore emissions
    // against the builder's cached masks; with unknown masks the
    // element loop's (throwing) behaviour must be preserved verbatim,
    // so fall back.
    if (!bulkIoOn_ || !builder_.masksKnown())
        return false;
    BulkIoSpec spec;
    spec.slot = reg;
    spec.warpStart = warpStart;
    spec.rowStart = rowStart;
    spec.rowStep = rowStep;
    spec.count = count;
    planBulkRead(*geo_, builder_.warpMask(), builder_.rowMask(), spec);
    // Pending buffered ops (e.g. mask restores of a previous read)
    // precede the transfer, exactly as the first element's flush
    // would have pushed them.
    builder_.flush();
    BulkIoTelemetry tel;
    if (!sink_->readBulk(spec, out, tel))
        return false;  // sink without bulk support: element loop
    // The transfer restores the entry masks; the builder cache is
    // already exact. Driver accounting matches count ReadInstrs.
    stats_.instructions += count;
    stats_.bulkReads += 1;
    stats_.ioWordsTransposed += tel.wordsTransposed;
    stats_.ioDrains += tel.drains;
    return true;
}

void
Driver::writeBulk(uint8_t reg, uint32_t warpStart, uint64_t rowStart,
                  uint64_t rowStep, uint64_t count,
                  const uint32_t *values)
{
    if (count == 0)
        return;
    validateBulk(*geo_, reg, warpStart, rowStart, rowStep, count);
    BulkIoSpec spec;
    spec.slot = reg;
    spec.warpStart = warpStart;
    spec.rowStart = rowStart;
    spec.rowStep = rowStep;
    spec.count = count;
    // Plan against the builder's cached (possibly unknown) masks —
    // the same dedup decisions the emission below would make.
    const uint64_t runs =
        planBulkWrite(*geo_, builder_.knownWarpMask(),
                      builder_.knownRowMask(), values, spec);
    if (bulkIoOn_) {
        builder_.flush();
        BulkIoTelemetry tel;
        if (sink_->writeBulk(spec, values, tel)) {
            builder_.assumeMasks(spec.finalXb, spec.finalRow);
            stats_.instructions += runs;
            stats_.bulkWrites += 1;
            stats_.ioWordsTransposed += tel.wordsTransposed;
            stats_.ioDrains += tel.drains;
            return;
        }
    }
    // Fallback (knob off or plain sink): emit the canonical run
    // stream through the builder — identical micro-ops, one submitted
    // batch instead of one dispatch per element.
    forEachBulkWriteRun(*geo_, spec, values, [&](const BulkWriteRun &r) {
        builder_.setMasks(Range::single(r.warp), r.rows);
        builder_.writeWord(reg, r.value);
    });
    builder_.flush();
    stats_.instructions += runs;
}

} // namespace pypim
