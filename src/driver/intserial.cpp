/**
 * @file
 * Bit-serial element-parallel fixed-point arithmetic (paper Fig. 4(a),
 * AritPIM serial suite).
 *
 * Addition/subtraction use the 9-NOR full adder with slot-aligned
 * temporary lanes so every lane is bulk-initialised once and each of
 * the 9N gates is a single micro-op — matching AritPIM's
 * O(N)-cycles-with-small-constant serial adders. Multiplication is
 * the truncated 32-bit schoolbook accumulation (the paper's driver
 * truncates integer multiplication to 32 bits, §V fn. 4); division is
 * restoring long division with signed fix-ups matching C semantics.
 */
#include "driver/emit.hpp"

#include "common/error.hpp"
#include "driver/mulcore.hpp"

namespace pypim::emit
{

namespace
{

/**
 * Lane set for the 9-gate full-adder chain. Lanes are bulk-initialised
 * so the per-bit gates skip their INITs: cell (j, lane) is consumed
 * exactly once, by bit j.
 */
struct AdderLanes
{
    explicit AdderLanes(GateBuilder &b)
        : b_(&b)
    {
        for (auto &l : lanes)
            l = b.pool().allocLane();
    }

    ~AdderLanes()
    {
        for (auto l : lanes)
            b_->pool().freeLane(l);
    }

    void
    initAll()
    {
        for (auto l : lanes)
            b_->initLane(l, true);
    }

    GateBuilder *b_;
    // x1..x4, y1..y3, carry
    uint32_t lanes[8] = {};
    uint32_t x1() const { return lanes[0]; }
    uint32_t x2() const { return lanes[1]; }
    uint32_t x3() const { return lanes[2]; }
    uint32_t x4() const { return lanes[3]; }
    uint32_t y1() const { return lanes[4]; }
    uint32_t y2() const { return lanes[5]; }
    uint32_t y3() const { return lanes[6]; }
    uint32_t carry() const { return lanes[7]; }
};

/**
 * Emit the 9-gate full adder for bit @p j with lane temps: inputs
 * @p aCell, @p bCell and carry (carry lane, partition j); sum lands in
 * @p sumCell (pre-initialised unless @p initSum), carry-out in the
 * carry lane at partition j+1 (or @p lastCout for the final bit).
 */
void
laneFullAdder(GateBuilder &b, const AdderLanes &L, uint32_t j,
              uint32_t aCell, uint32_t bCell, uint32_t sumCell,
              uint32_t coutCell, bool initSum)
{
    const auto cl = [&](uint32_t lane) { return b.cell(lane, j); };
    const uint32_t cin = cl(L.carry());
    b.norInto(aCell, bCell, cl(L.x1()), false);
    b.norInto(aCell, cl(L.x1()), cl(L.x2()), false);
    b.norInto(bCell, cl(L.x1()), cl(L.x3()), false);
    b.norInto(cl(L.x2()), cl(L.x3()), cl(L.x4()), false);  // XNOR(a,b)
    b.norInto(cl(L.x4()), cin, cl(L.y1()), false);
    b.norInto(cl(L.x4()), cl(L.y1()), cl(L.y2()), false);
    b.norInto(cin, cl(L.y1()), cl(L.y3()), false);
    b.norInto(cl(L.y2()), cl(L.y3()), sumCell, initSum);
    b.norInto(cl(L.x1()), cl(L.y1()), coutCell, false);
}

/** Shared ripple core for add/sub: rd <- ra + (bInvert ? ~rb : rb) + c0. */
void
rippleAddSub(BVOps &v, const RTypeInstr &in, bool bInvert)
{
    GateBuilder &b = v.builder();
    const uint32_t n = b.geometry().wordBits;
    const BV a = v.reg(in.ra);
    const BV y = v.reg(in.rb);
    const BV d = v.reg(in.rd);

    AdderLanes L(b);
    uint32_t nb = 0;
    if (bInvert) {
        nb = b.pool().allocLane();
        b.laneNot(in.rb, nb);
    }
    L.initAll();
    b.initLane(in.rd, true);
    // c0 = 0 for add, 1 for subtract (two's complement +1).
    b.initCell(b.cell(L.carry(), 0), bInvert);
    // The final carry-out has nowhere to go in the carry lane; park it
    // in the (already consumed) x1 cell of bit 0 after re-init.
    const uint32_t lastCout = b.cell(L.x1(), 0);
    for (uint32_t j = 0; j < n; ++j) {
        const uint32_t bCell = bInvert ? b.cell(nb, j) : y[j];
        const bool last = j + 1 == n;
        if (last)
            b.initCell(lastCout, true);
        laneFullAdder(b, L, j, a[j], bCell,
                      d[j], last ? lastCout : b.cell(L.carry(), j + 1),
                      false);
    }
    if (bInvert)
        b.pool().freeLane(nb);
}

} // namespace

void
intAddSerial(BVOps &v, const RTypeInstr &in)
{
    rippleAddSub(v, in, false);
}

void
intSubSerial(BVOps &v, const RTypeInstr &in)
{
    rippleAddSub(v, in, true);
}

void
intMulSerial(BVOps &v, const RTypeInstr &in)
{
    // Truncated low-N-bit product (the paper's driver truncates
    // integer multiplication to 32 bits, §V fn. 4) via the shared
    // shift-add core: the low bits retire directly into rd.
    GateBuilder &b = v.builder();
    const uint32_t n = b.geometry().wordBits;
    const BV a = v.reg(in.ra);
    const BV y = v.reg(in.rb);
    const BV d = v.reg(in.rd);
    shiftAddMultiply(v, a, y, d.cells, n, /*keepHigh=*/false);
}

void
intDivSerial(BVOps &v, const RTypeInstr &in, bool wantMod)
{
    GateBuilder &b = v.builder();
    const uint32_t n = b.geometry().wordBits;
    const BV a = v.reg(in.ra);
    const BV y = v.reg(in.rb);
    BV d = v.reg(in.rd);

    const uint32_t zero = v.constCell(false);
    const BV zeros = BVOps::repeat(zero, n);

    // |a| and |b| (two's complement negation muxed on the sign bits).
    const uint32_t sA = a[n - 1];
    const uint32_t sB = y[n - 1];
    BV negA = v.sub(zeros, a);
    BV ua = v.muxCell(sA, negA, a);
    v.free(negA);
    BV negB = v.sub(zeros, y);
    BV ub = v.muxCell(sB, negB, y);
    v.free(negB);

    // Restoring long division producing floor(|a| / |b|): R tracks the
    // partial remainder in n+1 bits (R < |b| <= 2^n - 1; R<<1 | bit
    // fits in n+1 bits).
    BV ubx = v.zext(ub, n + 1, zero);
    BV r = v.alloc(n + 1);
    v.setConst(r, 0);
    BV q = v.alloc(n);
    for (uint32_t k = 0; k < n; ++k) {
        const uint32_t i = n - 1 - k;
        // rsh = (r << 1) | ua[i]  — a view, no data movement.
        BV rsh = BVOps::concat(BVOps::repeat(ua[i], 1),
                               BVOps::slice(r, 0, n));
        BV rsub = v.alloc(n + 1);
        uint32_t ge = 0;
        v.subInto(rsh, ubx, rsub, &ge);
        BV rnew = v.muxCell(ge, rsub, rsh);
        b.copyCell(ge, q[i]);
        b.pool().freeBit(ge);
        v.free(rsub);
        v.free(r);
        r = rnew;
    }

    // Signed fix-ups (C semantics): quotient sign = sA ^ sB, remainder
    // sign = sA.
    if (wantMod) {
        BV rem = BVOps::slice(r, 0, n);
        BV negR = v.sub(zeros, rem);
        BV res = v.muxCell(sA, negR, rem);
        v.copyInto(res, d);
        v.free(res);
        v.free(negR);
    } else {
        const uint32_t sQ = b.xor_(sA, sB);
        BV negQ = v.sub(zeros, q);
        BV res = v.muxCell(sQ, negQ, q);
        v.copyInto(res, d);
        v.free(res);
        v.free(negQ);
        b.pool().freeBit(sQ);
    }
    v.free(q);
    v.free(r);
    v.free(ua);
    v.free(ub);
    b.pool().freeBit(zero);
}

} // namespace pypim::emit
