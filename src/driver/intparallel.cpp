/**
 * @file
 * Bit-parallel element-parallel fixed-point arithmetic using
 * partitions (paper Fig. 4(b), §II-B; AritPIM carry-lookahead and
 * MultPIM-style carry-save multiplication).
 *
 * Layout: bit j of a register lives in partition j (the strided
 * format), so inter-bit communication is inter-partition
 * communication, and the periodic half-gate pattern executes up to N
 * aligned gates per cycle.
 *
 * Addition: Brent-Kung parallel-prefix over (generate, propagate)
 * pairs. Every prefix level touches nodes spaced 2^(k+1) partitions
 * apart combining at distance 2^k — the section span (2^k + 1) never
 * exceeds the period, so each level is a constant number of periodic
 * micro-ops: O(log N) total versus O(N) for the serial ripple adder.
 *
 * Multiplication: N carry-save steps, each a constant number of
 * lane-parallel micro-ops (log-depth partition broadcast of the
 * multiplier bit, lane AND, lane full adder, one-partition shift):
 * O(N log N) micro-ops total versus O(N^2) serially.
 */
#include "driver/emit.hpp"

#include "common/error.hpp"

namespace pypim::emit
{

namespace
{

/**
 * Broadcast one cell into a (s, ~s) lane pair in O(log N) micro-ops
 * using binary fan-out: the round with block distance d copies
 * partition p -> p + d for every multiple p of 2d, one periodic op per
 * polarity. Both polarities travel together so every partition ends
 * with a consistent inversion parity.
 */
void
logBroadcast(GateBuilder &b, uint32_t srcCell, uint32_t sLane,
             uint32_t nsLane)
{
    const uint32_t n = b.geometry().partitions;
    // Seed partition 0 with (s, ~s).
    b.initCell(b.cell(nsLane, 0), true);
    b.notInto(srcCell, b.cell(nsLane, 0), false);
    b.initCell(b.cell(sLane, 0), true);
    b.notInto(b.cell(nsLane, 0), b.cell(sLane, 0), false);
    for (uint32_t d = n / 2; d >= 1; d /= 2) {
        const uint32_t step = 2 * d;
        const uint32_t last = n - d;
        const uint32_t pStep = (d == last) ? 0 : step;
        b.periodic(Gate::Init1, 0, 0, b.cell(sLane, d), last, pStep);
        b.periodic(Gate::Init1, 0, 0, b.cell(nsLane, d), last, pStep);
        // NOT swaps polarities between the lanes.
        b.periodic(Gate::Not, b.cell(nsLane, 0), b.cell(nsLane, 0),
                   b.cell(sLane, d), last, pStep);
        b.periodic(Gate::Not, b.cell(sLane, 0), b.cell(sLane, 0),
                   b.cell(nsLane, d), last, pStep);
    }
}

/** Lanes of the Brent-Kung prefix state (both polarities). */
struct PrefixLanes
{
    uint32_t g, ng, p, np, t1;
};

/**
 * Periodic combine at nodes {first, first+step, ..., last}, each
 * reading from @p dist partitions to its left:
 *   G[j] <- G[j] OR (P[j] AND G[j-dist]),
 *   P[j] <- P[j] AND P[j-dist]            (when @p updateP).
 * Constant micro-op count regardless of the node count.
 */
void
combineNodes(GateBuilder &b, const PrefixLanes &L, uint32_t first,
             uint32_t last, uint32_t step, uint32_t dist, bool updateP)
{
    const uint32_t pStep = (first == last) ? 0 : step;
    auto init = [&](uint32_t lane) {
        b.periodic(Gate::Init1, 0, 0, b.cell(lane, first), last, pStep);
    };
    // t1 = P[j] AND G[j-dist] = NOR(nG[j-dist], nP[j])
    init(L.t1);
    b.periodic(Gate::Nor, b.cell(L.ng, first - dist),
               b.cell(L.np, first), b.cell(L.t1, first), last, pStep);
    // nG[j] = NOR(G[j], t1[j]);  G[j] = NOT(nG[j])
    init(L.ng);
    b.periodic(Gate::Nor, b.cell(L.g, first), b.cell(L.t1, first),
               b.cell(L.ng, first), last, pStep);
    init(L.g);
    b.periodic(Gate::Not, b.cell(L.ng, first), b.cell(L.ng, first),
               b.cell(L.g, first), last, pStep);
    if (!updateP)
        return;
    // P[j] = NOR(nP[j-dist], nP[j]);  nP[j] = NOT(P[j])
    init(L.p);
    b.periodic(Gate::Nor, b.cell(L.np, first - dist),
               b.cell(L.np, first), b.cell(L.p, first), last, pStep);
    init(L.np);
    b.periodic(Gate::Not, b.cell(L.p, first), b.cell(L.p, first),
               b.cell(L.np, first), last, pStep);
}

/** Carry-lookahead core: rd <- ra + (bInvert ? ~rb : rb) + bInvert. */
void
claAddSub(BVOps &v, const RTypeInstr &in, bool bInvert)
{
    GateBuilder &b = v.builder();
    const uint32_t n = b.geometry().partitions;
    panicIf((n & (n - 1)) != 0, "CLA requires pow2 partitions");

    uint32_t rbSlot = in.rb;
    uint32_t nbLane = 0;
    if (bInvert) {
        nbLane = b.pool().allocLane();
        b.laneNot(in.rb, nbLane);
        rbSlot = nbLane;
    }

    // Initial (g, p) with both polarities; px keeps the original
    // propagate (a XOR b) for the sum stage.
    const uint32_t x1 = b.pool().allocLane();
    const uint32_t x2 = b.pool().allocLane();
    const uint32_t x3 = b.pool().allocLane();
    b.laneNor(in.ra, rbSlot, x1);
    b.laneNor(in.ra, x1, x2);
    b.laneNor(rbSlot, x1, x3);
    const uint32_t npx = b.pool().allocLane();
    b.laneNor(x2, x3, npx);          // XNOR = NOT(a XOR b)
    const uint32_t px = b.pool().allocLane();
    b.laneNot(npx, px);              // propagate = a XOR b
    PrefixLanes L;
    L.g = b.pool().allocLane();
    b.laneNor(x1, px, L.g);          // generate = a AND b
    L.ng = b.pool().allocLane();
    b.laneNot(L.g, L.ng);
    // Working copies of (P, nP) — the sweeps clobber node positions.
    L.p = b.pool().allocLane();
    b.laneNot(npx, L.p);
    L.np = b.pool().allocLane();
    b.laneNot(px, L.np);
    L.t1 = b.pool().allocLane();

    if (bInvert) {
        // Carry-in of 1: g[0] <- g[0] OR p[0] (both polarities).
        b.initCell(b.cell(L.ng, 0), true);
        b.norInto(b.cell(L.g, 0), b.cell(L.p, 0), b.cell(L.ng, 0),
                  false);
        b.initCell(b.cell(L.g, 0), true);
        b.notInto(b.cell(L.ng, 0), b.cell(L.g, 0), false);
    }

    // Brent-Kung up-sweep: nodes step-1, 2*step-1, ... at distance
    // step/2; the prefix at the last node needs no P update.
    for (uint32_t step = 2; step <= n; step *= 2)
        combineNodes(b, L, step - 1, n - 1, step, step / 2, step < n);
    // Down-sweep: fill the intermediate prefixes.
    for (uint32_t dist = n / 4; dist >= 1; dist /= 2) {
        const uint32_t step = 2 * dist;
        const uint32_t first = 3 * dist - 1;
        const uint32_t last =
            first + ((n - 1 - first) / step) * step;
        combineNodes(b, L, first, last, step, dist, false);
    }

    // Carry lane: c[j] = G[j-1] for j >= 1 (two-phase one-partition
    // shift through a complement lane), c[0] = carry-in.
    const uint32_t nc = b.pool().allocLane();
    const uint32_t c = b.pool().allocLane();
    b.runInit(nc, 1, n - 1, true);
    b.periodic(Gate::Not, b.cell(L.g, 0), b.cell(L.g, 0),
               b.cell(nc, 1), n - 1, 2);
    if (n > 2)
        b.periodic(Gate::Not, b.cell(L.g, 1), b.cell(L.g, 1),
                   b.cell(nc, 2), n - 2, 2);
    b.runNot(nc, c, 1, n - 1);
    b.initCell(b.cell(c, 0), bInvert);

    // Sum: rd = px XOR c (reusing the x lanes as temporaries).
    b.laneNor(px, c, x1);
    b.laneNor(px, x1, x2);
    b.laneNor(c, x1, x3);
    b.laneNor(x2, x3, npx);
    b.laneNot(npx, in.rd);

    for (uint32_t lane : {x1, x2, x3, npx, px, L.g, L.ng, L.p, L.np,
                          L.t1, nc, c})
        b.pool().freeLane(lane);
    if (bInvert)
        b.pool().freeLane(nbLane);
}

} // namespace

void
intAddParallel(BVOps &v, const RTypeInstr &in)
{
    claAddSub(v, in, false);
}

void
intSubParallel(BVOps &v, const RTypeInstr &in)
{
    claAddSub(v, in, true);
}

void
intMulParallel(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    const uint32_t n = b.geometry().partitions;
    const BV bReg = v.reg(in.rb);
    const BV d = v.reg(in.rd);

    // na = ~a (constant across iterations).
    const uint32_t na = b.pool().allocLane();
    b.laneNot(in.ra, na);
    // Carry-save state.
    uint32_t sL = b.pool().allocLane();
    uint32_t cL = b.pool().allocLane();
    b.initLane(sL, false);
    b.initLane(cL, false);
    const uint32_t selS = b.pool().allocLane();
    const uint32_t selNs = b.pool().allocLane();
    const uint32_t pp = b.pool().allocLane();
    // Lane full-adder temporaries; x1 doubles as the shift lane.
    const uint32_t x1 = b.pool().allocLane();
    const uint32_t x2 = b.pool().allocLane();
    const uint32_t x3 = b.pool().allocLane();
    const uint32_t x4 = b.pool().allocLane();
    const uint32_t y1 = b.pool().allocLane();
    const uint32_t y2 = b.pool().allocLane();
    const uint32_t y3 = b.pool().allocLane();
    const uint32_t t = b.pool().allocLane();
    uint32_t m = b.pool().allocLane();

    for (uint32_t i = 0; i < n; ++i) {
        // pp = a AND b_i, with b_i broadcast to every partition.
        logBroadcast(b, bReg[i], selS, selNs);
        b.laneNor(na, selNs, pp);
        // Lane full adder: t = S ^ C ^ pp, m = maj(S, C, pp).
        b.laneNor(sL, cL, x1);
        b.laneNor(sL, x1, x2);
        b.laneNor(cL, x1, x3);
        b.laneNor(x2, x3, x4);
        b.laneNor(x4, pp, y1);
        b.laneNor(x4, y1, y2);
        b.laneNor(pp, y1, y3);
        b.laneNor(y2, y3, t);
        b.laneNor(x1, y1, m);
        // Product bit i = t[0] (copied with two NOTs via x2[0], which
        // is re-initialised next iteration anyway).
        b.initCell(b.cell(x2, 0), true);
        b.notInto(b.cell(t, 0), b.cell(x2, 0), false);
        b.notInto(b.cell(x2, 0), d[i]);
        // S' = t >> 1 (two-phase one-partition shift via x1),
        // C' = m (lane role swap).
        b.runInit(x1, 0, n - 1, true);
        b.periodic(Gate::Not, b.cell(t, 1), b.cell(t, 1),
                   b.cell(x1, 0), n - 2, 2);
        if (n > 2)
            b.periodic(Gate::Not, b.cell(t, 2), b.cell(t, 2),
                       b.cell(x1, 1), n - 3, 2);
        b.runNot(x1, sL, 0, n - 2);
        b.initCell(b.cell(sL, n - 1), false);
        std::swap(cL, m);
    }

    for (uint32_t lane : {na, sL, cL, selS, selNs, pp, x1, x2, x3, x4,
                          y1, y2, y3, t, m})
        b.pool().freeLane(lane);
}

} // namespace pypim::emit
