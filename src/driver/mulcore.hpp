/**
 * @file
 * Shift-add multiplication core shared by the serial integer
 * multiplier and the float significand multiplier.
 *
 * Iteration i adds the partial product (a AND b_i) to a running
 * accumulator, retires the lowest sum bit as final product bit i
 * (written to lowOut[i]) and keeps the high part in a ping-pong
 * accumulator lane with each sum bit emitted one partition to the
 * left — the "shift" costs nothing because a stateful-logic output may
 * sit at the boundary of its gate's section. All full-adder gates run
 * against bulk-initialised scratch lanes: ~9 gates per bit, the
 * AritPIM-style serial multiplication structure.
 */
#ifndef PYPIM_DRIVER_MULCORE_HPP
#define PYPIM_DRIVER_MULCORE_HPP

#include "driver/bitvec.hpp"

namespace pypim::emit
{

/**
 * Multiply @p a (lane-aligned: bit j in partition j) by the bits of
 * @p b, writing product bits [0, min(b.width, truncateTo)) into
 * @p lowOut. @p truncateTo bounds the computed product width (pass
 * a.width + b.width for the full product). When @p keepHigh, returns
 * an owned BV with product bits [b.width, b.width + a.width);
 * otherwise returns an empty BV.
 */
BV shiftAddMultiply(BVOps &v, const BV &a, const BV &b,
                    const std::vector<uint32_t> &lowOut,
                    uint32_t truncateTo, bool keepHigh);

} // namespace pypim::emit

#endif // PYPIM_DRIVER_MULCORE_HPP
