/**
 * @file
 * Gate-level IEEE-754 binary32 arithmetic (paper §V-B: the AritPIM
 * floating-point suite). Add/sub/mul/div with full subnormal support,
 * signed zeros, infinities, NaNs (canonical quiet NaN outputs) and
 * round-to-nearest-even via guard/round/sticky.
 *
 * Everything is branch-free data-parallel logic: one emitted gate
 * sequence computes the operation for every selected row. The
 * structure mirrors a classic hardware FPU:
 *
 *   unpack -> (align | multiply | divide) -> normalize -> round/pack
 *
 * with a shared round/pack stage (packRound) handling subnormal
 * results (right-shift with sticky when the signed result exponent
 * E0 <= 0), the subnormal/normal field rule (exponent field is 0
 * whenever the hidden bit is 0 — the increment trick then makes
 * subnormal-to-normal rounding carry work for free), mantissa
 * rounding overflow, and overflow to infinity.
 *
 * Internal fixed formats:
 *  - M27: 27-bit significand view [S R G m0..m23] (value * 2^26 with
 *    sticky absorbed into bit 0),
 *  - E0: signed 11-bit result exponent in IEEE bias (true exponent
 *    field the value would have were the range unbounded).
 */
#include "driver/emit.hpp"

#include "common/error.hpp"
#include "driver/mulcore.hpp"

namespace pypim::emit
{

namespace
{

/** Unpacked float operand. */
struct FloatParts
{
    BV exp;           //!< 8-bit register view
    BV frac;          //!< 23-bit register view
    uint32_t sign;    //!< register cell (not owned)
    uint32_t isSubn;  //!< owned flag cells
    uint32_t isNaN;
    uint32_t isInf;
    uint32_t isZero;
    BV mant;          //!< 24-bit owned significand (frac + hidden bit)
    BV expEff;        //!< 8-bit owned effective exponent max(exp, 1)
};

FloatParts
unpack(BVOps &v, uint32_t regSlot)
{
    GateBuilder &b = v.builder();
    const BV r = v.reg(regSlot);
    FloatParts p;
    p.exp = BVOps::slice(r, 23, 31);
    p.frac = BVOps::slice(r, 0, 23);
    p.sign = r[31];
    p.isSubn = v.isZero(p.exp);
    const uint32_t expOnes = v.andTree(p.exp);
    const uint32_t fracZero = v.isZero(p.frac);
    const uint32_t fracAny = b.not_(fracZero);
    p.isNaN = b.and_(expOnes, fracAny);
    p.isInf = b.and_(expOnes, fracZero);
    p.isZero = b.and_(p.isSubn, fracZero);
    b.pool().freeBit(expOnes);
    b.pool().freeBit(fracZero);
    b.pool().freeBit(fracAny);
    // Significand with the hidden bit (0 for subnormals).
    p.mant = v.alloc(24);
    BV mLow = BVOps::slice(p.mant, 0, 23);
    v.copyInto(p.frac, mLow);
    b.notInto(p.isSubn, p.mant[23]);
    // Effective exponent: subnormals behave as exponent 1.
    p.expEff = v.alloc(8);
    BV eHi = BVOps::slice(p.expEff, 1, 8);
    const BV xHi = BVOps::slice(p.exp, 1, 8);
    v.copyInto(xHi, eHi);
    const uint32_t t = b.nor(p.exp[0], p.isSubn);
    b.notInto(t, p.expEff[0]);
    b.pool().freeBit(t);
    return p;
}

void
freeParts(BVOps &v, FloatParts &p)
{
    v.free(p.mant);
    v.free(p.expEff);
    for (uint32_t c : {p.isSubn, p.isNaN, p.isInf, p.isZero})
        v.builder().pool().freeBit(c);
}

/**
 * Shared round/pack stage: signed 11-bit exponent @p e0 plus
 * normalized 27-bit significand @p m27 -> 31-bit magnitude
 * (exponent ‖ fraction) with RNE rounding, subnormal handling and
 * overflow to infinity. The caller overlays specials and the sign.
 */
BV
packRound(BVOps &v, const BV &e0, const BV &m27)
{
    GateBuilder &b = v.builder();
    panicIf(e0.width() != 11 || m27.width() != 27,
            "packRound: bad widths");

    // Subnormal result: E0 <= 0 -> shift right by 1 - E0 with sticky.
    const uint32_t e0zero = v.isZero(e0);
    const uint32_t uf = b.or_(e0[10], e0zero);
    b.pool().freeBit(e0zero);
    BV one11 = v.constant(11, 1);
    BV sh = v.sub(one11, e0);
    v.free(one11);
    uint32_t stk = v.constCell(false);
    BV msub = v.shrVar(m27, sh, &stk);
    v.free(sh);
    const uint32_t s0 = b.or_(msub[0], stk);
    b.pool().freeBit(stk);
    const BV msubF = BVOps::concat(BVOps::repeat(s0, 1),
                                   BVOps::slice(msub, 1, 27));
    BV m = v.muxCell(uf, msubF, m27);
    v.free(msub);
    b.pool().freeBit(s0);
    b.pool().freeBit(uf);

    // Exponent field: E0 wherever the hidden bit is set, else 0 (the
    // subnormal encoding; rounding carry restores normals for free).
    SelLanes hid = v.broadcastSelect(m[26]);
    const uint32_t zc = v.constCell(false);
    const BV e0low = BVOps::slice(e0, 0, 8);
    const BV zeros8 = BVOps::repeat(zc, 8);
    BV field = v.mux(hid, e0low, zeros8);
    v.freeSelect(hid);

    // RNE: round up iff G and (R or S or LSB).
    const uint32_t rs = b.or_(m[1], m[0]);
    const uint32_t rsl = b.or_(rs, m[3]);
    const uint32_t roundUp = b.and_(m[2], rsl);
    b.pool().freeBit(rs);
    b.pool().freeBit(rsl);

    // Increment the concatenated (fraction ‖ exponent) magnitude:
    // mantissa overflow and subnormal-to-normal promotion carry
    // naturally into the exponent field.
    const BV combined = BVOps::concat(BVOps::slice(m, 3, 26), field);
    BV inc = v.alloc(31);
    v.incInto(combined, roundUp, inc);
    b.pool().freeBit(roundUp);
    v.free(field);
    v.free(m);

    // Overflow to infinity: pre-round E0 >= 255, or the rounded
    // exponent reached 255 (RNE overflow rounds to infinity).
    BV c255 = v.constant(11, 255);
    const uint32_t lt255 = v.ltU(e0, c255);
    v.free(c255);
    const uint32_t ge255 = b.not_(lt255);
    const uint32_t nneg = b.not_(e0[10]);
    const uint32_t ovf = b.and_(nneg, ge255);
    const uint32_t postOnes = v.andTree(BVOps::slice(inc, 23, 31));
    const uint32_t toInf = b.or_(ovf, postOnes);
    for (uint32_t c : {lt255, ge255, nneg, ovf, postOnes})
        b.pool().freeBit(c);
    BV inf31 = v.constant(31, 0x7F800000u);
    BV out = v.muxCell(toInf, inf31, inc);
    v.free(inf31);
    v.free(inc);
    b.pool().freeBit(toInf);
    b.pool().freeBit(zc);
    return out;
}

/** Write (magnitude, sign) into the destination register. */
void
writeFloat(BVOps &v, uint32_t rd, const BV &mag, uint32_t signCell)
{
    BV d = v.reg(rd);
    BV dMag = BVOps::slice(d, 0, 31);
    v.copyInto(mag, dMag);
    v.builder().copyCell(signCell, d[31]);
}

/**
 * Pre-normalize a (possibly subnormal) operand for mul/div: shift the
 * hidden-bit-free significand left so mant[23] = 1, and widen the
 * exponent to signed 11 bits: e = expEff - lzc(mant).
 */
void
normalizeOperand(BVOps &v, FloatParts &p, BV &mantN, BV &e11)
{
    GateBuilder &b = v.builder();
    const uint32_t zc = v.constCell(false);
    BV cnt = v.lzc(p.mant);  // 5 bits
    mantN = v.shlVar(p.mant, cnt);
    const BV cnt11 = v.zext(cnt, 11, zc);
    const BV e0 = v.zext(p.expEff, 11, zc);
    e11 = v.sub(e0, cnt11);
    v.free(cnt);
    b.pool().freeBit(zc);
}

} // namespace

void
floatAddSub(BVOps &v, const RTypeInstr &in, bool subtract)
{
    GateBuilder &b = v.builder();
    FloatParts A = unpack(v, in.ra);
    FloatParts B = unpack(v, in.rb);
    const uint32_t sbEff =
        subtract ? b.not_(B.sign) : B.sign;

    // Order the operands so (Ebig, Mbig) >= (Esml, Msml)
    // lexicographically: the aligned difference is then non-negative.
    const uint32_t el = v.ltU(A.expEff, B.expEff);
    const uint32_t ee = v.eq(A.expEff, B.expEff);
    const uint32_t ml = v.ltU(A.mant, B.mant);
    const uint32_t eml = b.and_(ee, ml);
    const uint32_t swap = b.or_(el, eml);
    for (uint32_t c : {el, ee, ml, eml})
        b.pool().freeBit(c);
    SelLanes sw = v.broadcastSelect(swap);
    BV eBig = v.mux(sw, B.expEff, A.expEff);
    BV eSml = v.mux(sw, A.expEff, B.expEff);
    BV mBig = v.mux(sw, B.mant, A.mant);
    BV mSml = v.mux(sw, A.mant, B.mant);
    v.freeSelect(sw);
    const uint32_t sBig = b.mux(swap, sbEff, A.sign);
    b.pool().freeBit(swap);
    v.free(A.mant);
    v.free(B.mant);
    v.free(A.expEff);
    v.free(B.expEff);

    // Align the smaller significand: (mSml << 3) >> expDiff, sticky
    // absorbed into the S bit.
    BV d = v.sub(eBig, eSml);
    v.free(eSml);
    const uint32_t zc = v.constCell(false);
    const BV mSml3 = BVOps::concat(BVOps::repeat(zc, 3), mSml);
    uint32_t stk = v.constCell(false);
    BV msh = v.shrVar(mSml3, d, &stk);
    v.free(d);
    v.free(mSml);
    const uint32_t s0 = b.or_(msh[0], stk);
    b.pool().freeBit(stk);
    const BV mshF = BVOps::concat(BVOps::repeat(s0, 1),
                                  BVOps::slice(msh, 1, 27));

    // Effective subtraction: R = Mbig - Msh, else R = Mbig + Msh, as
    // a single 28-bit add of the conditionally-inverted operand.
    const uint32_t effSub = b.xor_(A.sign, sbEff);
    SelLanes es = v.broadcastSelect(effSub);
    BV x27 = v.xor_(mshF, v.selBV(es.s, mshF));
    v.freeSelect(es);
    v.free(msh);
    b.pool().freeBit(s0);
    const BV x28 = BVOps::concat(x27, BVOps::repeat(effSub, 1));
    const BV mBig28 = BVOps::concat(BVOps::repeat(zc, 3),
                                    v.zext(mBig, 25, zc));
    BV r28 = v.alloc(28);
    v.addInto(mBig28, x28, r28, effSub, nullptr);
    v.free(x27);
    v.free(mBig);
    const uint32_t rz = v.isZero(r28);

    // Normalize. Overflow path (carry into bit 27): shift right one,
    // folding the dropped bit into sticky; cancellation path: shift
    // left by min(lzc, Ebig - 1).
    const uint32_t ovfBit = r28[27];
    const uint32_t a0 = b.or_(r28[1], r28[0]);
    const BV m27a = BVOps::concat(BVOps::repeat(a0, 1),
                                  BVOps::slice(r28, 2, 28));
    const BV r27 = BVOps::slice(r28, 0, 27);
    BV cnt = v.lzc(r27);  // 5 bits
    BV one8 = v.constant(8, 1);
    BV eBigM1 = v.sub(eBig, one8);
    v.free(one8);
    const BV cnt8 = v.zext(cnt, 8, zc);
    const uint32_t clamp = v.ltU(eBigM1, cnt8);
    const BV eLow5 = BVOps::slice(eBigM1, 0, 5);
    BV shamt = v.muxCell(clamp, eLow5, cnt);
    b.pool().freeBit(clamp);
    v.free(cnt);
    BV mShift = v.shlVar(r27, shamt);
    const BV eBig11 = v.zext(eBig, 11, zc);
    const BV shamt11 = v.zext(shamt, 11, zc);
    BV e0b = v.sub(eBig11, shamt11);
    v.free(shamt);
    v.free(eBigM1);
    const uint32_t onec = v.constCell(true);
    BV e0a = v.alloc(11);
    v.incInto(eBig11, onec, e0a);
    b.pool().freeBit(onec);
    v.free(eBig);
    BV m27 = v.muxCell(ovfBit, m27a, mShift);
    BV e0 = v.muxCell(ovfBit, e0a, e0b);
    v.free(mShift);
    v.free(e0a);
    v.free(e0b);
    b.pool().freeBit(a0);
    v.free(r28);

    BV packed = packRound(v, e0, m27);
    v.free(e0);
    v.free(m27);

    // Zero result: exact cancellation gives +0 (RNE); zero inputs
    // keep the common sign. Both cases equal sign-AND.
    const uint32_t sZero = b.and_(A.sign, sbEff);
    const uint32_t sGen = b.mux(rz, sZero, sBig);
    const BV zeros31 = BVOps::repeat(zc, 31);
    BV mag1 = v.muxCell(rz, zeros31, packed);
    v.free(packed);

    // Specials: NaN in, or inf - inf -> NaN; any inf -> inf.
    const uint32_t anyNaN = b.or_(A.isNaN, B.isNaN);
    const uint32_t bothInf = b.and_(A.isInf, B.isInf);
    const uint32_t infCancel = b.and_(bothInf, effSub);
    const uint32_t nanOut = b.or_(anyNaN, infCancel);
    const uint32_t anyInf = b.or_(A.isInf, B.isInf);
    const uint32_t infSign = b.mux(A.isInf, A.sign, sbEff);
    BV inf31 = v.constant(31, 0x7F800000u);
    BV mag2 = v.muxCell(anyInf, inf31, mag1);
    v.free(inf31);
    v.free(mag1);
    BV nan31 = v.constant(31, 0x7FC00000u);
    BV mag3 = v.muxCell(nanOut, nan31, mag2);
    v.free(nan31);
    v.free(mag2);
    const uint32_t s2 = b.mux(anyInf, infSign, sGen);
    const uint32_t nn = b.not_(nanOut);
    const uint32_t sOut = b.and_(s2, nn);

    writeFloat(v, in.rd, mag3, sOut);
    v.free(mag3);
    for (uint32_t c : {sZero, sGen, anyNaN, bothInf, infCancel, nanOut,
                       anyInf, infSign, s2, nn, sOut, effSub, rz, zc,
                       sBig})
        b.pool().freeBit(c);
    if (subtract)
        b.pool().freeBit(sbEff);
    freeParts(v, A);
    freeParts(v, B);
}

void
floatMul(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    FloatParts A = unpack(v, in.ra);
    FloatParts B = unpack(v, in.rb);
    const uint32_t zc = v.constCell(false);

    BV maN, eA, mbN, eB;
    normalizeOperand(v, A, maN, eA);
    normalizeOperand(v, B, mbN, eB);
    v.free(A.mant);
    v.free(B.mant);
    v.free(A.expEff);
    v.free(B.expEff);

    // Exponent base eA + eB - 127 computed up front so its operand
    // lanes are free during the significand product.
    BV eSum = v.add(eA, eB);
    v.free(eA);
    v.free(eB);
    BV c127 = v.constant(11, 127);
    BV e0m = v.sub(eSum, c127);
    v.free(c127);
    v.free(eSum);

    // 48-bit significand product via the shared shift-add core: the
    // retired low bits and the final accumulator together form the
    // full product.
    BV accLow = v.alloc(24);
    BV accHigh = shiftAddMultiply(v, maN, mbN, accLow.cells, 48,
                                  /*keepHigh=*/true);
    const BV acc = BVOps::concat(accLow, accHigh);
    v.free(maN);
    v.free(mbN);

    // Normalize: the product of [1,2) x [1,2) is [1,4).
    const uint32_t bit47 = acc[47];
    const uint32_t stkA = v.orTree(BVOps::slice(acc, 0, 21));
    const uint32_t stkB = v.orTree(BVOps::slice(acc, 0, 20));
    const BV m27a = BVOps::slice(acc, 21, 48);
    const BV m27b = BVOps::slice(acc, 20, 47);
    BV m27x = v.muxCell(bit47, m27a, m27b);
    const uint32_t stky = b.mux(bit47, stkA, stkB);
    b.pool().freeBit(stkA);
    b.pool().freeBit(stkB);
    const uint32_t s0 = b.or_(m27x[0], stky);
    b.pool().freeBit(stky);
    const BV m27 = BVOps::concat(BVOps::repeat(s0, 1),
                                 BVOps::slice(m27x, 1, 27));

    // E0 = (eA + eB - 127) + bit47.
    BV e0 = v.alloc(11);
    v.incInto(e0m, bit47, e0);
    v.free(e0m);

    BV packed = packRound(v, e0, m27);
    v.free(e0);
    v.free(m27x);
    b.pool().freeBit(s0);
    v.free(accLow);
    v.free(accHigh);

    // Specials.
    const uint32_t pZero = b.or_(A.isZero, B.isZero);
    const BV zeros31 = BVOps::repeat(zc, 31);
    BV mag1 = v.muxCell(pZero, zeros31, packed);
    v.free(packed);
    const uint32_t anyNaN = b.or_(A.isNaN, B.isNaN);
    const uint32_t iz1 = b.and_(A.isInf, B.isZero);
    const uint32_t iz2 = b.and_(B.isInf, A.isZero);
    const uint32_t infZero = b.or_(iz1, iz2);
    const uint32_t nanOut = b.or_(anyNaN, infZero);
    const uint32_t anyInf = b.or_(A.isInf, B.isInf);
    BV inf31 = v.constant(31, 0x7F800000u);
    BV mag2 = v.muxCell(anyInf, inf31, mag1);
    v.free(inf31);
    v.free(mag1);
    BV nan31 = v.constant(31, 0x7FC00000u);
    BV mag3 = v.muxCell(nanOut, nan31, mag2);
    v.free(nan31);
    v.free(mag2);
    const uint32_t sgn = b.xor_(A.sign, B.sign);
    const uint32_t nn = b.not_(nanOut);
    const uint32_t sOut = b.and_(sgn, nn);

    writeFloat(v, in.rd, mag3, sOut);
    v.free(mag3);
    for (uint32_t c : {pZero, anyNaN, iz1, iz2, infZero, nanOut, anyInf,
                       sgn, nn, sOut, zc})
        b.pool().freeBit(c);
    freeParts(v, A);
    freeParts(v, B);
}

void
floatDiv(BVOps &v, const RTypeInstr &in)
{
    GateBuilder &b = v.builder();
    FloatParts A = unpack(v, in.ra);
    FloatParts B = unpack(v, in.rb);
    const uint32_t zc = v.constCell(false);

    BV maN, eA, mbN, eB;
    normalizeOperand(v, A, maN, eA);
    normalizeOperand(v, B, mbN, eB);
    v.free(A.mant);
    v.free(B.mant);
    v.free(A.expEff);
    v.free(B.expEff);

    // Restoring long division: Q = floor(maN * 2^28 / mbN), 29 bits,
    // with the final remainder providing the sticky.
    const BV d25 = v.zext(mbN, 25, zc);
    BV r = v.alloc(25);
    v.copyInto(v.zext(maN, 25, zc), r);
    v.free(maN);
    BV q = v.alloc(29);
    for (uint32_t k = 0; k < 29; ++k) {
        const uint32_t i = 28 - k;
        const BV rsh = (k == 0)
            ? BVOps::slice(r, 0, 25)
            : BVOps::concat(BVOps::repeat(zc, 1), BVOps::slice(r, 0, 24));
        BV rsub = v.alloc(25);
        uint32_t ge = 0;
        v.subInto(rsh, d25, rsub, &ge);
        BV rnew = v.muxCell(ge, rsub, rsh);
        b.copyCell(ge, q[i]);
        b.pool().freeBit(ge);
        v.free(rsub);
        v.free(r);
        r = rnew;
    }
    v.free(mbN);
    const uint32_t remNZ = v.orTree(r);
    v.free(r);

    // Normalize: quotient is in (2^27, 2^29).
    const uint32_t bit28 = q[28];
    const uint32_t w = b.or_(q[0], remNZ);
    const uint32_t f0b = b.or_(q[1], w);
    const uint32_t f0a = b.or_(q[2], f0b);
    const BV m27a = BVOps::concat(BVOps::repeat(f0a, 1),
                                  BVOps::slice(q, 3, 29));
    const BV m27b = BVOps::concat(BVOps::repeat(f0b, 1),
                                  BVOps::slice(q, 2, 28));
    BV m27 = v.muxCell(bit28, m27a, m27b);
    for (uint32_t c : {remNZ, w, f0b, f0a})
        b.pool().freeBit(c);

    // E0 = eA - eB + 126 + bit28.
    BV eDiff = v.sub(eA, eB);
    v.free(eA);
    v.free(eB);
    BV c126 = v.constant(11, 126);
    BV e0m = v.add(eDiff, c126);
    v.free(c126);
    v.free(eDiff);
    BV e0 = v.alloc(11);
    v.incInto(e0m, bit28, e0);
    v.free(e0m);

    BV packed = packRound(v, e0, m27);
    v.free(e0);
    v.free(m27);
    v.free(q);

    // Specials: 0/0, inf/inf, NaN -> NaN; x/0, inf/y -> inf;
    // 0/y, x/inf -> 0.
    const uint32_t anyNaN = b.or_(A.isNaN, B.isNaN);
    const uint32_t zz = b.and_(A.isZero, B.isZero);
    const uint32_t ii = b.and_(A.isInf, B.isInf);
    const uint32_t nanPre = b.or_(zz, ii);
    const uint32_t nanOut = b.or_(anyNaN, nanPre);
    const uint32_t infCond = b.or_(A.isInf, B.isZero);
    const uint32_t zeroCond = b.or_(A.isZero, B.isInf);
    const BV zeros31 = BVOps::repeat(zc, 31);
    BV mag1 = v.muxCell(zeroCond, zeros31, packed);
    v.free(packed);
    BV inf31 = v.constant(31, 0x7F800000u);
    BV mag2 = v.muxCell(infCond, inf31, mag1);
    v.free(inf31);
    v.free(mag1);
    BV nan31 = v.constant(31, 0x7FC00000u);
    BV mag3 = v.muxCell(nanOut, nan31, mag2);
    v.free(nan31);
    v.free(mag2);
    const uint32_t sgn = b.xor_(A.sign, B.sign);
    const uint32_t nn = b.not_(nanOut);
    const uint32_t sOut = b.and_(sgn, nn);

    writeFloat(v, in.rd, mag3, sOut);
    v.free(mag3);
    for (uint32_t c : {anyNaN, zz, ii, nanPre, nanOut, infCond,
                       zeroCond, sgn, nn, sOut, zc})
        b.pool().freeBit(c);
    freeParts(v, A);
    freeParts(v, B);
}

} // namespace pypim::emit
