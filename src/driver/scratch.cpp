#include "driver/scratch.hpp"

#include <string>

#include "common/error.hpp"

namespace pypim
{

ScratchPool::ScratchPool(const Geometry &geo)
    : geo_(&geo),
      slots_(geo.scratchSlots())
{
}

uint32_t
ScratchPool::takeFreeSlot(SlotKind kind)
{
    for (uint32_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].kind == SlotKind::Free) {
            slots_[i].kind = kind;
            slots_[i].usedBits = 0;
            ++slotsInUse_;
            highWater_ = std::max(highWater_, slotsInUse_);
            return i;
        }
    }
    panic("scratch pool exhausted: a driver routine exceeded its "
          "slot budget (" + std::to_string(slots_.size()) +
          " scratch slots)");
}

void
ScratchPool::releaseSlot(uint32_t idx)
{
    slots_[idx].kind = SlotKind::Free;
    slots_[idx].usedBits = 0;
    --slotsInUse_;
}

uint32_t
ScratchPool::allocLane()
{
    return takeFreeSlot(SlotKind::Lane) + geo_->userRegs;
}

void
ScratchPool::freeLane(uint32_t slot)
{
    panicIf(slot < geo_->userRegs || slot >= geo_->slots(),
            "freeLane: not a scratch slot");
    const uint32_t idx = slot - geo_->userRegs;
    panicIf(slots_[idx].kind != SlotKind::Lane,
            "freeLane: slot is not an allocated lane");
    releaseSlot(idx);
}

uint32_t
ScratchPool::allocBitIn(uint32_t part)
{
    panicIf(part >= geo_->partitions, "allocBitIn: bad partition");
    const uint64_t bit = 1ull << part;
    for (uint32_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].kind == SlotKind::Bits && !(slots_[i].usedBits & bit)) {
            slots_[i].usedBits |= bit;
            return part * geo_->partitionWidth() + geo_->userRegs + i;
        }
    }
    const uint32_t idx = takeFreeSlot(SlotKind::Bits);
    slots_[idx].usedBits = bit;
    return part * geo_->partitionWidth() + geo_->userRegs + idx;
}

uint32_t
ScratchPool::allocBitOutside(uint32_t lo, uint32_t hi)
{
    // Prefer partitions at/above hi (closest first), then at/below lo.
    for (uint32_t p = hi; p < geo_->partitions; ++p) {
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].kind == SlotKind::Bits &&
                !(slots_[i].usedBits & (1ull << p))) {
                slots_[i].usedBits |= 1ull << p;
                return p * geo_->partitionWidth() + geo_->userRegs + i;
            }
        }
    }
    for (uint32_t q = 0; q <= lo; ++q) {
        const uint32_t p = lo - q;
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].kind == SlotKind::Bits &&
                !(slots_[i].usedBits & (1ull << p))) {
                slots_[i].usedBits |= 1ull << p;
                return p * geo_->partitionWidth() + geo_->userRegs + i;
            }
        }
    }
    // No existing bit slot has room in a legal partition: take a fresh
    // slot and use partition hi.
    const uint32_t idx = takeFreeSlot(SlotKind::Bits);
    slots_[idx].usedBits = 1ull << hi;
    return hi * geo_->partitionWidth() + geo_->userRegs + idx;
}

void
ScratchPool::freeBit(uint32_t col)
{
    const uint32_t pw = geo_->partitionWidth();
    const uint32_t slot = col % pw;
    const uint32_t part = col / pw;
    panicIf(slot < geo_->userRegs || slot >= geo_->slots(),
            "freeBit: not a scratch cell");
    const uint32_t idx = slot - geo_->userRegs;
    panicIf(slots_[idx].kind != SlotKind::Bits,
            "freeBit: slot is not bit-allocated");
    panicIf(!(slots_[idx].usedBits & (1ull << part)),
            "freeBit: double free");
    slots_[idx].usedBits &= ~(1ull << part);
    if (slots_[idx].usedBits == 0)
        releaseSlot(idx);
}

void
ScratchPool::reset()
{
    for (auto &s : slots_) {
        s.kind = SlotKind::Free;
        s.usedBits = 0;
    }
    slotsInUse_ = 0;
}

} // namespace pypim
